#include "numeric/regression.hpp"

#include <cmath>

#include "numeric/leastsq.hpp"
#include "util/error.hpp"

namespace pim {

double PolynomialFit::eval(double x) const {
  double acc = 0.0;
  for (size_t i = coeff.size(); i-- > 0;) acc = acc * x + coeff[i];
  return acc;
}

double MultiLinearFit::eval(const std::vector<double>& x) const {
  require(x.size() + 1 == coeff.size(), "MultiLinearFit::eval: arity mismatch");
  double acc = coeff[0];
  for (size_t i = 0; i < x.size(); ++i) acc += coeff[i + 1] * x[i];
  return acc;
}

LinearFit fit_linear(const Vector& x, const Vector& y) {
  require(x.size() == y.size(), "fit_linear: size mismatch");
  require(x.size() >= 2, "fit_linear: need at least two points");
  Matrix a(x.size(), 2);
  for (size_t i = 0; i < x.size(); ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = x[i];
  }
  const Vector c = least_squares(a, y);
  LinearFit fit;
  fit.intercept = c[0];
  fit.slope = c[1];
  Vector pred(x.size());
  for (size_t i = 0; i < x.size(); ++i) pred[i] = fit.eval(x[i]);
  fit.r_squared = r_squared(pred, y);
  return fit;
}

LinearFit fit_linear_zero_intercept(const Vector& x, const Vector& y) {
  require(x.size() == y.size(), "fit_linear_zero_intercept: size mismatch");
  require(!x.empty(), "fit_linear_zero_intercept: need at least one point");
  double xty = 0.0;
  double xtx = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    xty += x[i] * y[i];
    xtx += x[i] * x[i];
  }
  require(xtx > 0.0, "fit_linear_zero_intercept: degenerate predictor");
  LinearFit fit;
  fit.intercept = 0.0;
  fit.slope = xty / xtx;
  Vector pred(x.size());
  for (size_t i = 0; i < x.size(); ++i) pred[i] = fit.eval(x[i]);
  fit.r_squared = r_squared(pred, y);
  return fit;
}

PolynomialFit fit_polynomial(const Vector& x, const Vector& y, int degree) {
  require(degree >= 0, "fit_polynomial: degree must be non-negative");
  require(x.size() == y.size(), "fit_polynomial: size mismatch");
  require(x.size() > static_cast<size_t>(degree), "fit_polynomial: not enough points");
  Matrix a(x.size(), static_cast<size_t>(degree) + 1);
  for (size_t i = 0; i < x.size(); ++i) {
    double p = 1.0;
    for (int d = 0; d <= degree; ++d) {
      a(i, static_cast<size_t>(d)) = p;
      p *= x[i];
    }
  }
  PolynomialFit fit;
  fit.coeff = least_squares(a, y);
  Vector pred(x.size());
  for (size_t i = 0; i < x.size(); ++i) pred[i] = fit.eval(x[i]);
  fit.r_squared = r_squared(pred, y);
  return fit;
}

MultiLinearFit fit_multilinear(const std::vector<Vector>& xs, const Vector& y) {
  require(!xs.empty(), "fit_multilinear: need at least one predictor");
  const size_t m = y.size();
  for (const auto& col : xs)
    require(col.size() == m, "fit_multilinear: predictor size mismatch");
  require(m >= xs.size() + 1, "fit_multilinear: not enough points");
  Matrix a(m, xs.size() + 1);
  for (size_t i = 0; i < m; ++i) {
    a(i, 0) = 1.0;
    for (size_t k = 0; k < xs.size(); ++k) a(i, k + 1) = xs[k][i];
  }
  MultiLinearFit fit;
  fit.coeff = least_squares(a, y);
  Vector pred(m);
  for (size_t i = 0; i < m; ++i) {
    std::vector<double> row(xs.size());
    for (size_t k = 0; k < xs.size(); ++k) row[k] = xs[k][i];
    pred[i] = fit.eval(row);
  }
  fit.r_squared = r_squared(pred, y);
  return fit;
}

double r_squared(const Vector& predicted, const Vector& observed) {
  require(predicted.size() == observed.size(), "r_squared: size mismatch");
  require(!observed.empty(), "r_squared: empty input");
  const double mu = mean(observed);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    const double r = observed[i] - predicted[i];
    const double d = observed[i] - mu;
    ss_res += r * r;
    ss_tot += d * d;
  }
  if (ss_tot <= 1e-300) {
    // Constant observations: perfect iff the residual is numerically zero
    // relative to the data's magnitude.
    return ss_res <= 1e-20 * (1.0 + mu * mu) ? 1.0 : 0.0;
  }
  return 1.0 - ss_res / ss_tot;
}

double mean(const Vector& v) {
  require(!v.empty(), "mean: empty input");
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double max_relative_error(const Vector& predicted, const Vector& observed,
                          double floor) {
  require(predicted.size() == observed.size(), "max_relative_error: size mismatch");
  double worst = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    if (std::fabs(observed[i]) <= floor) continue;
    worst = std::max(worst, std::fabs(predicted[i] - observed[i]) / std::fabs(observed[i]));
  }
  return worst;
}

}  // namespace pim
