#include "numeric/interp.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pim {
namespace {
// Index i such that axis[i] <= x < axis[i+1], clamped to valid segments so
// out-of-range x extrapolates from the first/last segment.
size_t segment_index(const Vector& axis, double x) {
  if (x <= axis.front()) return 0;
  if (x >= axis[axis.size() - 2]) return axis.size() - 2;
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  return static_cast<size_t>(it - axis.begin()) - 1;
}

void check_axis(const Vector& axis, const char* name) {
  require(axis.size() >= 2, std::string(name) + ": need at least two samples",
          ErrorCode::bad_input);
  for (size_t i = 1; i < axis.size(); ++i)
    require(axis[i] > axis[i - 1], std::string(name) + ": axis must be strictly increasing",
            ErrorCode::bad_input);
  // Strictly-increasing also rules out NaN axis entries, so only the ends
  // need an explicit finiteness check.
  require(std::isfinite(axis.front()) && std::isfinite(axis.back()),
          std::string(name) + ": axis must be finite", ErrorCode::bad_input);
}
}  // namespace

double interp_linear(const Vector& xs, const Vector& ys, double x) {
  check_axis(xs, "interp_linear");
  require(xs.size() == ys.size(), "interp_linear: size mismatch", ErrorCode::bad_input);
  require(std::isfinite(x), "interp_linear: query must be finite", ErrorCode::bad_input);
  const size_t i = segment_index(xs, x);
  const double t = (x - xs[i]) / (xs[i + 1] - xs[i]);
  return ys[i] + t * (ys[i + 1] - ys[i]);
}

Grid2D::Grid2D(Vector rows, Vector cols, Matrix values)
    : rows_(std::move(rows)), cols_(std::move(cols)), values_(std::move(values)) {
  check_axis(rows_, "Grid2D rows");
  check_axis(cols_, "Grid2D cols");
  require(values_.rows() == rows_.size() && values_.cols() == cols_.size(),
          "Grid2D: value shape does not match axes");
}

double Grid2D::eval(double r, double c) const {
  require(std::isfinite(r) && std::isfinite(c), "Grid2D::eval: query must be finite",
          ErrorCode::bad_input);
  const size_t i = segment_index(rows_, r);
  const size_t j = segment_index(cols_, c);
  const double tr = (r - rows_[i]) / (rows_[i + 1] - rows_[i]);
  const double tc = (c - cols_[j]) / (cols_[j + 1] - cols_[j]);
  const double v00 = values_(i, j);
  const double v01 = values_(i, j + 1);
  const double v10 = values_(i + 1, j);
  const double v11 = values_(i + 1, j + 1);
  const double top = v00 + tc * (v01 - v00);
  const double bottom = v10 + tc * (v11 - v10);
  return top + tr * (bottom - top);
}

}  // namespace pim
