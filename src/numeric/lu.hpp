// Dense LU factorization with partial pivoting.
//
// Used as the general-purpose linear solver for small MNA systems and as
// the fallback when the banded path is not applicable.
//
// Robustness: a singular pivot does not immediately fail. The factor step
// retries once on a column-equilibrated copy (each column scaled by its
// max magnitude), which rescues systems that are merely badly scaled; a
// genuine rank deficiency still surfaces as ErrorCode::singular_matrix
// carrying the pivot column and a condition estimate. The recoverable
// entry point is create(); the throwing constructor keeps the historical
// fail-fast contract for call sites that want it.
#pragma once

#include "numeric/matrix.hpp"
#include "util/expected.hpp"

namespace pim {

/// LU decomposition (Doolittle with partial pivoting) of a square matrix.
/// Factor once, solve many right-hand sides.
class LuDecomposition {
 public:
  /// Empty, unfactored slot. Pair with refactor(): declare the slot once
  /// per topology, refactor per Newton iteration / timestep. Solving an
  /// unfactored slot throws.
  LuDecomposition() = default;

  /// Factors `a`; throws pim::Error(singular_matrix) if the matrix is
  /// singular to working precision even after the equilibrated retry.
  explicit LuDecomposition(Matrix a);

  /// Recoverable factorization: returns the decomposition or the
  /// singular_matrix error (with pivot index and condition estimate)
  /// without throwing.
  static Expected<LuDecomposition> create(Matrix a);

  /// Numeric refactor reusing this object's storage (pivoting is
  /// value-dependent, so unlike the banded path only the workspace — not
  /// the pivot order — is reused). Runs the same attempt sequence as
  /// create(), including the column-equilibrated retry, with identical
  /// arithmetic and metric/fault behavior; no allocation after the first
  /// call at a given size.
  Expected<void> refactor(const Matrix& a);

  /// Solves A x = b for the factored A.
  Vector solve(const Vector& b) const;

  /// Solves A x = b into a caller-provided vector (resized to fit).
  /// Same arithmetic as solve(), without the per-call allocation.
  void solve_into(const Vector& b, Vector& x) const;

  /// Batched right-hand sides: solve_into for each pair.
  void solve_many_into(const std::vector<Vector>& bs,
                       std::vector<Vector>& xs) const;

  bool factored() const { return factored_; }

  size_t size() const { return lu_.rows(); }

  /// Cheap condition estimate: max|u_kk| / min|u_kk| over the U diagonal.
  /// A crude lower bound on the true condition number, good enough to
  /// flag near-singular systems in error messages and reports.
  double condition_estimate() const { return cond_; }

  /// True when the factorization only succeeded on the column-equilibrated
  /// retry.
  bool equilibrated() const { return equilibrated_; }

 private:
  /// One in-place factorization attempt over lu_/perm_.
  Expected<void> factor();

  Matrix lu_;
  std::vector<size_t> perm_;
  Vector col_scale_;  ///< empty unless equilibrated: x = scale .* y
  double cond_ = 0.0;
  bool equilibrated_ = false;
  bool factored_ = false;
};

/// One-shot convenience: factor `a` and solve for `b`. Throws on singular.
Vector solve_dense(Matrix a, const Vector& b);

/// Recoverable one-shot solve.
Expected<Vector> try_solve_dense(Matrix a, const Vector& b);

}  // namespace pim
