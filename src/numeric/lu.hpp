// Dense LU factorization with partial pivoting.
//
// Used as the general-purpose linear solver for small MNA systems and as
// the fallback when the banded path is not applicable.
#pragma once

#include "numeric/matrix.hpp"

namespace pim {

/// LU decomposition (Doolittle with partial pivoting) of a square matrix.
/// Factor once, solve many right-hand sides.
class LuDecomposition {
 public:
  /// Factors `a`; throws pim::Error if the matrix is singular to working
  /// precision.
  explicit LuDecomposition(Matrix a);

  /// Solves A x = b for the factored A.
  Vector solve(const Vector& b) const;

  size_t size() const { return lu_.rows(); }

 private:
  Matrix lu_;
  std::vector<size_t> perm_;
};

/// One-shot convenience: factor `a` and solve for `b`.
Vector solve_dense(Matrix a, const Vector& b);

}  // namespace pim
