// Banded matrix storage and LU solver.
//
// MNA matrices of buffered interconnects are spatially one-dimensional:
// when circuit nodes are numbered along the wire, every stamp touches
// nodes within a small index distance, so the matrix has a narrow band.
// A banded LU (O(n * bandwidth^2)) makes full-line transistor-level
// simulation of 15 mm buffered interconnects with explicit aggressors
// tractable where dense LU (O(n^3)) is not.
//
// The factorization does not pivot. Transient MNA matrices assembled by
// pim::spice are strongly diagonally dominant (every node carries a
// capacitor companion conductance), so this is safe in practice; a
// vanishing pivot throws and callers may fall back to the dense path.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/matrix.hpp"

namespace pim {

/// Square banded matrix with `lower` sub-diagonals and `upper`
/// super-diagonals, stored column-compressed LAPACK-style:
/// entry (r, c) lives at band_[(upper + r - c) * n + c] when
/// |r - c| is inside the band.
class BandedMatrix {
 public:
  BandedMatrix(size_t n, size_t lower, size_t upper);

  size_t size() const { return n_; }
  size_t lower() const { return lower_; }
  size_t upper() const { return upper_; }

  /// True when (r, c) lies inside the band.
  bool in_band(size_t r, size_t c) const {
    return (c <= r ? r - c <= lower_ : c - r <= upper_);
  }

  /// Adds `value` at (r, c); throws when outside the band.
  void add(size_t r, size_t c, double value);

  /// Reads the entry at (r, c); zero outside the band.
  double at(size_t r, size_t c) const;

  /// Sets every entry to zero, keeping shape and band widths.
  void set_zero();

  /// y = A x.
  Vector multiply(const Vector& x) const;

  /// Expands to a dense matrix (tests and fallbacks).
  Matrix to_dense() const;

 private:
  friend class BandedLu;
  size_t n_;
  size_t lower_;
  size_t upper_;
  std::vector<double> band_;
};

/// LU factorization of a banded matrix without pivoting.
class BandedLu {
 public:
  /// Factors `a` in place; throws pim::Error on a (near-)zero pivot.
  explicit BandedLu(BandedMatrix a);

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

 private:
  BandedMatrix lu_;
};

}  // namespace pim
