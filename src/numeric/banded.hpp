// Banded matrix storage and LU solver.
//
// MNA matrices of buffered interconnects are spatially one-dimensional:
// when circuit nodes are numbered along the wire, every stamp touches
// nodes within a small index distance, so the matrix has a narrow band.
// A banded LU (O(n * bandwidth^2)) makes full-line transistor-level
// simulation of 15 mm buffered interconnects with explicit aggressors
// tractable where dense LU (O(n^3)) is not.
//
// The factorization does not pivot. Transient MNA matrices assembled by
// pim::spice are strongly diagonally dominant (every node carries a
// capacitor companion conductance), so this is safe in practice; a
// vanishing pivot throws and callers may fall back to the dense path.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/matrix.hpp"
#include "util/expected.hpp"

namespace pim {

/// Square banded matrix with `lower` sub-diagonals and `upper`
/// super-diagonals, stored column-compressed LAPACK-style:
/// entry (r, c) lives at band_[(upper + r - c) * n + c] when
/// |r - c| is inside the band.
class BandedMatrix {
 public:
  BandedMatrix(size_t n, size_t lower, size_t upper);

  size_t size() const { return n_; }
  size_t lower() const { return lower_; }
  size_t upper() const { return upper_; }

  /// True when (r, c) lies inside the band.
  bool in_band(size_t r, size_t c) const {
    return (c <= r ? r - c <= lower_ : c - r <= upper_);
  }

  /// Adds `value` at (r, c); throws when outside the band.
  void add(size_t r, size_t c, double value);

  /// Reads the entry at (r, c); zero outside the band.
  double at(size_t r, size_t c) const;

  /// Sets every entry to zero, keeping shape and band widths.
  void set_zero();

  /// y = A x.
  Vector multiply(const Vector& x) const;

  /// Expands to a dense matrix (tests and fallbacks).
  Matrix to_dense() const;

  /// Raw column-compressed storage; entry (r, c) lives at
  /// (upper + r - c) * n + c. The batched transient engine stamps through
  /// precomputed slots of this layout (see spice/plan.hpp).
  std::vector<double>& storage() { return band_; }
  const std::vector<double>& storage() const { return band_; }

 private:
  friend class BandedLu;
  size_t n_;
  size_t lower_;
  size_t upper_;
  std::vector<double> band_;
};

/// LU factorization of a banded matrix without pivoting.
///
/// Because the elimination never pivots, the fill pattern depends only on
/// (n, lower, upper) — the symbolic analysis is the shape itself. The
/// symbolic constructor allocates factor storage once for a topology;
/// refactor() then re-runs the numeric elimination in place for each new
/// set of values (Newton iterations, timesteps) without reallocating.
class BandedLu {
 public:
  /// Factors `a` in place; throws pim::Error on a (near-)zero pivot.
  explicit BandedLu(BandedMatrix a);

  /// Symbolic-only constructor: allocates factor storage for matrices of
  /// this shape without factoring. Call refactor() before solving.
  BandedLu(size_t n, size_t lower, size_t upper);

  /// Numeric refactor: copies `a`'s values into the preallocated storage
  /// and re-runs the elimination. Identical arithmetic (and identical
  /// metric/fault behavior) to constructing a fresh BandedLu, but with no
  /// allocation. Returns singular_matrix instead of throwing.
  Expected<void> refactor(const BandedMatrix& a);

  /// The factor's raw column-compressed storage, laid out exactly like
  /// BandedMatrix::storage(). Callers on a hot path may assemble matrix
  /// values directly here and call refactor() with no arguments, skipping
  /// the copy that refactor(const BandedMatrix&) performs.
  std::vector<double>& values() { return lu_.band_; }

  /// In-place numeric refactor: eliminates whatever values() currently
  /// holds. Same arithmetic and metric/fault behavior as the copying
  /// overload.
  Expected<void> refactor() { return eliminate(); }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// Solves A x = b in place: `x` holds b on entry, the solution on exit.
  /// Same arithmetic as solve(), without the allocation.
  void solve_in_place(Vector& x) const;

  /// Batched right-hand sides: solve_in_place over every vector.
  void solve_many_in_place(std::vector<Vector>& xs) const;

  bool factored() const { return factored_; }

 private:
  /// Shared elimination loop; both the throwing constructor and
  /// refactor() run exactly this code.
  Expected<void> eliminate();

  BandedMatrix lu_;
  bool factored_ = false;
};

}  // namespace pim
