// Linear least-squares via Householder QR.
//
// All model-fitting in pim::charlib reduces to min ||A x - b||_2 for small
// dense A (tens to hundreds of rows, <= 4 columns). QR is preferred over
// normal equations for its numerical robustness at negligible cost.
#pragma once

#include "numeric/matrix.hpp"

namespace pim {

/// Solves min ||A x - b||_2 for full-column-rank A (rows >= cols).
/// Throws pim::Error if A is rank-deficient to working precision.
Vector least_squares(const Matrix& a, const Vector& b);

/// Residual norm ||A x - b||_2 for a candidate solution.
double residual_norm(const Matrix& a, const Vector& x, const Vector& b);

}  // namespace pim
