// Linear least-squares via Householder QR.
//
// All model-fitting in pim::charlib reduces to min ||A x - b||_2 for small
// dense A (tens to hundreds of rows, <= 4 columns). QR is preferred over
// normal equations for its numerical robustness at negligible cost.
//
// Robustness: a rank-deficient system does not immediately fail. The
// solver retries with Tikhonov regularization — solving
// (A^T A + lambda^2 I) x = A^T b for a small lambda scaled to ||A|| —
// which returns the minimum-norm-flavored solution the fitting flows can
// keep working with. A system that is still unsolvable surfaces as
// ErrorCode::singular_matrix.
#pragma once

#include "numeric/matrix.hpp"
#include "util/expected.hpp"

namespace pim {

/// Solves min ||A x - b||_2 (rows >= cols). Falls back to Tikhonov
/// regularization when A is rank-deficient to working precision; throws
/// pim::Error only when even the regularized system cannot be solved.
Vector least_squares(const Matrix& a, const Vector& b);

/// Recoverable variant of least_squares(): returns the solution or the
/// error without throwing.
Expected<Vector> try_least_squares(const Matrix& a, const Vector& b);

/// Ridge solve (A^T A + lambda^2 I) x = A^T b — the fallback
/// least_squares() uses, exposed for callers that want explicit damping.
Expected<Vector> least_squares_regularized(const Matrix& a, const Vector& b,
                                           double lambda);

/// Residual norm ||A x - b||_2 for a candidate solution.
double residual_norm(const Matrix& a, const Vector& x, const Vector& b);

}  // namespace pim
