// Piecewise-linear interpolation, 1-D and on rectangular grids.
//
// NLDM-style cell tables (delay/slew indexed by input slew x load) are
// evaluated by bilinear interpolation with linear extrapolation at the
// edges — the same convention Liberty-consuming timers use.
#pragma once

#include <vector>

#include "numeric/matrix.hpp"

namespace pim {

/// Linear interpolation of (xs, ys) samples at `x`; extrapolates linearly
/// beyond the ends. xs must be strictly increasing with >= 2 entries.
double interp_linear(const Vector& xs, const Vector& ys, double x);

/// Rectangular-grid bilinear interpolator with edge extrapolation.
class Grid2D {
 public:
  /// `values(i, j)` corresponds to (rows[i], cols[j]). Both axes must be
  /// strictly increasing with >= 2 entries.
  Grid2D(Vector rows, Vector cols, Matrix values);

  /// Bilinear interpolation at (r, c), extrapolating at the boundary.
  double eval(double r, double c) const;

  const Vector& row_axis() const { return rows_; }
  const Vector& col_axis() const { return cols_; }
  const Matrix& values() const { return values_; }

 private:
  Vector rows_;
  Vector cols_;
  Matrix values_;
};

}  // namespace pim
