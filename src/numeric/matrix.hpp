// Dense row-major matrix and free-function vector helpers.
//
// The simulator and the regression code only need modest sizes (up to a
// few thousand rows), so a plain dense container with explicit loops keeps
// the numerics transparent and dependency-free.
#pragma once

#include <cstddef>
#include <vector>

namespace pim {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(size_t rows, size_t cols);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Sets every entry to zero, keeping the shape.
  void set_zero();

  /// Identity matrix of size n.
  static Matrix identity(size_t n);

  /// Matrix-vector product; `x.size()` must equal `cols()`.
  Vector multiply(const Vector& x) const;

  /// Matrix-matrix product; `other.rows()` must equal `cols()`.
  Matrix multiply(const Matrix& other) const;

  /// Transposed copy.
  Matrix transposed() const;

  /// Raw row-major storage; entry (r, c) lives at r * cols() + c. The
  /// batched transient engine stamps through precomputed slots of this
  /// layout (see spice/plan.hpp).
  std::vector<double>& storage() { return data_; }
  const std::vector<double>& storage() const { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm.
double norm2(const Vector& v);

/// Largest |v_i|.
double norm_inf(const Vector& v);

/// Element-wise a - b; sizes must match.
Vector subtract(const Vector& a, const Vector& b);

/// Dot product; sizes must match.
double dot(const Vector& a, const Vector& b);

}  // namespace pim
