#include "numeric/matrix.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pim {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void Matrix::set_zero() { data_.assign(data_.size(), 0.0); }

Matrix Matrix::identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::multiply(const Vector& x) const {
  require(x.size() == cols_, "Matrix::multiply: dimension mismatch");
  Vector y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& other) const {
  require(other.rows_ == cols_, "Matrix::multiply: dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) out(r, c) += a * other(k, c);
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

double norm2(const Vector& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double norm_inf(const Vector& v) {
  double best = 0.0;
  for (double x : v) best = std::max(best, std::fabs(x));
  return best;
}

Vector subtract(const Vector& a, const Vector& b) {
  require(a.size() == b.size(), "subtract: dimension mismatch");
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

double dot(const Vector& a, const Vector& b) {
  require(a.size() == b.size(), "dot: dimension mismatch");
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace pim
