#include "numeric/lu.hpp"

#include <cmath>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/strings.hpp"

namespace pim {

Expected<void> LuDecomposition::factor() {
  PIM_COUNT("numeric.lu.factorizations");
  factored_ = false;
  const size_t n = lu_.rows();
  perm_.resize(n);
  for (size_t i = 0; i < n; ++i) perm_[i] = i;

  const bool inject = fault::should_fire(fault::kLuSingular);
  double diag_max = 0.0;
  double diag_min = 0.0;
  for (size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    size_t pivot = k;
    double best = std::fabs(lu_(k, k));
    for (size_t r = k + 1; r < n; ++r) {
      const double mag = std::fabs(lu_(r, k));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (inject && k == n - 1) best = 0.0;
    if (!(best > 0.0)) {
      const std::string cond =
          diag_max > 0.0 && diag_min > 0.0 ? format_sig(diag_max / diag_min, 3) : "inf";
      return Error("LuDecomposition: singular matrix (zero pivot at column " +
                       std::to_string(k) + " of " + std::to_string(n) +
                       ", condition estimate >= " + cond + ")" +
                       (inject ? " [injected]" : ""),
                   ErrorCode::singular_matrix);
    }
    diag_max = k == 0 ? best : std::max(diag_max, best);
    diag_min = k == 0 ? best : std::min(diag_min, best);
    if (pivot != k) {
      for (size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
    }
    const double inv = 1.0 / lu_(k, k);
    for (size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
  cond_ = n == 0 || diag_min == 0.0 ? 0.0 : diag_max / diag_min;
  factored_ = true;
  return {};
}

Expected<void> LuDecomposition::refactor(const Matrix& a) {
  require(a.rows() == a.cols(), "LuDecomposition: matrix must be square",
          ErrorCode::bad_input);
  const size_t n = a.rows();
  lu_ = a;
  col_scale_.clear();
  equilibrated_ = false;
  Expected<void> first = factor();
  if (first.ok()) return {};

  // Same guardrail as create(): retry on a column-equilibrated copy,
  // scaling directly into the reused factor storage.
  PIM_COUNT("numeric.lu.error");
  PIM_COUNT("numeric.lu.equilibrate.retries");
  col_scale_.assign(n, 1.0);
  for (size_t c = 0; c < n; ++c) {
    double mag = 0.0;
    for (size_t r = 0; r < n; ++r) mag = std::max(mag, std::fabs(a(r, c)));
    if (mag > 0.0) col_scale_[c] = 1.0 / mag;
    for (size_t r = 0; r < n; ++r) lu_(r, c) = a(r, c) * col_scale_[c];
  }
  equilibrated_ = true;
  Expected<void> second = factor();
  if (!second.ok())
    return std::move(second).with_context(
        "retrying the factorization with column equilibration");
  PIM_COUNT("numeric.lu.recovered");
  return {};
}

Expected<LuDecomposition> LuDecomposition::create(Matrix a) {
  require(a.rows() == a.cols(), "LuDecomposition: matrix must be square",
          ErrorCode::bad_input);
  const size_t n = a.rows();

  LuDecomposition d;
  d.lu_ = a;  // keep `a` intact for the equilibrated retry
  Expected<void> first = d.factor();
  if (first.ok()) return d;

  // Guardrail: re-factor a column-equilibrated copy. This rescues systems
  // whose columns live at wildly different magnitudes (conductances vs
  // capacitor companions), where the plain pivot search underflows to an
  // exact zero even though the matrix has full rank.
  PIM_COUNT("numeric.lu.error");
  PIM_COUNT("numeric.lu.equilibrate.retries");
  LuDecomposition eq;
  eq.col_scale_.assign(n, 1.0);
  for (size_t c = 0; c < n; ++c) {
    double mag = 0.0;
    for (size_t r = 0; r < n; ++r) mag = std::max(mag, std::fabs(a(r, c)));
    if (mag > 0.0) eq.col_scale_[c] = 1.0 / mag;
    for (size_t r = 0; r < n; ++r) a(r, c) *= eq.col_scale_[c];
  }
  eq.lu_ = std::move(a);
  eq.equilibrated_ = true;
  Expected<void> second = eq.factor();
  if (!second.ok())
    return second.error().with_context(
        "retrying the factorization with column equilibration");
  PIM_COUNT("numeric.lu.recovered");
  return eq;
}

LuDecomposition::LuDecomposition(Matrix a) : LuDecomposition(create(std::move(a)).take()) {}

Vector LuDecomposition::solve(const Vector& b) const {
  Vector x;
  solve_into(b, x);
  return x;
}

void LuDecomposition::solve_into(const Vector& b, Vector& x) const {
  const size_t n = lu_.rows();
  require(b.size() == n, "LuDecomposition::solve: dimension mismatch",
          ErrorCode::bad_input);
  require(factored_, "LuDecomposition::solve: factorization missing (call refactor)",
          ErrorCode::internal);
  x.resize(n);
  // Forward substitution with the permuted right-hand side.
  for (size_t r = 0; r < n; ++r) {
    double acc = b[perm_[r]];
    for (size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  // Back substitution.
  for (size_t ri = n; ri-- > 0;) {
    double acc = x[ri];
    for (size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
  // Undo column scaling: the factored system was A*diag(s), so the true
  // solution is s .* y.
  if (!col_scale_.empty())
    for (size_t i = 0; i < n; ++i) x[i] *= col_scale_[i];
}

void LuDecomposition::solve_many_into(const std::vector<Vector>& bs,
                                      std::vector<Vector>& xs) const {
  xs.resize(bs.size());
  for (size_t i = 0; i < bs.size(); ++i) solve_into(bs[i], xs[i]);
}

Vector solve_dense(Matrix a, const Vector& b) {
  return LuDecomposition(std::move(a)).solve(b);
}

Expected<Vector> try_solve_dense(Matrix a, const Vector& b) {
  Expected<LuDecomposition> d = LuDecomposition::create(std::move(a));
  if (!d.ok()) return d.error();
  if (b.size() != d.value().size())
    return Error("try_solve_dense: dimension mismatch", ErrorCode::bad_input);
  return d.value().solve(b);
}

}  // namespace pim
