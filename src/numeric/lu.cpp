#include "numeric/lu.hpp"

#include <cmath>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pim {

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  require(lu_.rows() == lu_.cols(), "LuDecomposition: matrix must be square");
  PIM_COUNT("numeric.lu.factorizations");
  const size_t n = lu_.rows();
  perm_.resize(n);
  for (size_t i = 0; i < n; ++i) perm_[i] = i;

  for (size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    size_t pivot = k;
    double best = std::fabs(lu_(k, k));
    for (size_t r = k + 1; r < n; ++r) {
      const double mag = std::fabs(lu_(r, k));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    require(best > 0.0, "LuDecomposition: singular matrix");
    if (pivot != k) {
      for (size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
    }
    const double inv = 1.0 / lu_(k, k);
    for (size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  const size_t n = lu_.rows();
  require(b.size() == n, "LuDecomposition::solve: dimension mismatch");
  Vector x(n);
  // Forward substitution with the permuted right-hand side.
  for (size_t r = 0; r < n; ++r) {
    double acc = b[perm_[r]];
    for (size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  // Back substitution.
  for (size_t ri = n; ri-- > 0;) {
    double acc = x[ri];
    for (size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
  return x;
}

Vector solve_dense(Matrix a, const Vector& b) {
  return LuDecomposition(std::move(a)).solve(b);
}

}  // namespace pim
