// Regression helpers in the exact shapes the paper's methodology uses:
// linear, linear with zero intercept, quadratic (polynomial), and multiple
// linear regression, plus goodness-of-fit statistics.
#pragma once

#include <vector>

#include "numeric/matrix.hpp"

namespace pim {

/// y ~= intercept + slope * x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;

  double eval(double x) const { return intercept + slope * x; }
};

/// y ~= c[0] + c[1] x + ... + c[d] x^d.
struct PolynomialFit {
  std::vector<double> coeff;  // lowest order first
  double r_squared = 0.0;

  double eval(double x) const;
};

/// y ~= c[0] + c[1] x1 + c[2] x2 + ... (c[0] is the intercept).
struct MultiLinearFit {
  std::vector<double> coeff;  // coeff[0] = intercept
  double r_squared = 0.0;

  double eval(const std::vector<double>& x) const;
};

/// Ordinary least squares line; needs >= 2 points.
LinearFit fit_linear(const Vector& x, const Vector& y);

/// Least squares line forced through the origin (y ~= slope * x), the form
/// the paper uses for 1/size-proportional coefficients; needs >= 1 point.
LinearFit fit_linear_zero_intercept(const Vector& x, const Vector& y);

/// Least squares polynomial of the given degree; needs > degree points.
PolynomialFit fit_polynomial(const Vector& x, const Vector& y, int degree);

/// Multiple linear regression on predictor columns xs[0..k-1];
/// needs >= k + 1 points.
MultiLinearFit fit_multilinear(const std::vector<Vector>& xs, const Vector& y);

/// Coefficient of determination of predictions vs. observations.
double r_squared(const Vector& predicted, const Vector& observed);

/// Mean of a sample; throws on empty input.
double mean(const Vector& v);

/// Largest |predicted - observed| / |observed| over samples where
/// |observed| > floor; returns 0 for empty input.
double max_relative_error(const Vector& predicted, const Vector& observed,
                          double floor = 1e-30);

}  // namespace pim
