// One-dimensional minimization helpers used by the buffering optimizer.
#pragma once

#include <functional>

namespace pim {

/// Result of a scalar minimization.
struct MinimizeResult {
  double x = 0.0;
  double value = 0.0;
};

/// Golden-section search for the minimum of a unimodal function on
/// [lo, hi]; stops when the bracket is below `tolerance`.
MinimizeResult golden_section_minimize(const std::function<double(double)>& f,
                                       double lo, double hi, double tolerance);

/// Result of an integer-domain minimization.
struct MinimizeIntResult {
  long x = 0;
  double value = 0.0;
};

/// Ternary search over integers for a unimodal f on [lo, hi] (inclusive).
/// Falls back to scanning the final small bracket, so it is exact for
/// unimodal inputs.
MinimizeIntResult ternary_search_min(const std::function<double(long)>& f,
                                     long lo, long hi);

/// Exhaustive scan over [lo, hi] (inclusive): always exact, O(hi - lo).
MinimizeIntResult scan_min(const std::function<double(long)>& f, long lo, long hi);

}  // namespace pim
