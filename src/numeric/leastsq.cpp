#include "numeric/leastsq.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pim {

Vector least_squares(const Matrix& a, const Vector& b) {
  PIM_COUNT("numeric.leastsq.solves");
  const size_t m = a.rows();
  const size_t n = a.cols();
  require(m >= n && n > 0, "least_squares: need rows >= cols >= 1");
  require(b.size() == m, "least_squares: dimension mismatch");

  // Householder QR, transforming a working copy of [A | b] in place.
  Matrix r = a;
  Vector y = b;
  for (size_t k = 0; k < n; ++k) {
    // Build the Householder vector for column k below the diagonal.
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    require(norm > 1e-300, "least_squares: rank-deficient design matrix");
    const double alpha = (r(k, k) >= 0.0) ? -norm : norm;
    Vector v(m - k);
    v[0] = r(k, k) - alpha;
    for (size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vtv = 0.0;
    for (double vi : v) vtv += vi * vi;
    if (vtv > 0.0) {
      const double beta = 2.0 / vtv;
      // Apply the reflector to the remaining columns of R.
      for (size_t c = k; c < n; ++c) {
        double proj = 0.0;
        for (size_t i = k; i < m; ++i) proj += v[i - k] * r(i, c);
        proj *= beta;
        for (size_t i = k; i < m; ++i) r(i, c) -= proj * v[i - k];
      }
      // And to the right-hand side.
      double proj = 0.0;
      for (size_t i = k; i < m; ++i) proj += v[i - k] * y[i];
      proj *= beta;
      for (size_t i = k; i < m; ++i) y[i] -= proj * v[i - k];
    }
  }

  // Back-substitute the upper-triangular system R x = y.
  Vector x(n);
  for (size_t ki = n; ki-- > 0;) {
    double acc = y[ki];
    for (size_t c = ki + 1; c < n; ++c) acc -= r(ki, c) * x[c];
    require(std::fabs(r(ki, ki)) > 1e-300, "least_squares: rank-deficient design matrix");
    x[ki] = acc / r(ki, ki);
  }
  return x;
}

double residual_norm(const Matrix& a, const Vector& x, const Vector& b) {
  return norm2(subtract(a.multiply(x), b));
}

}  // namespace pim
