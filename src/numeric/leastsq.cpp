#include "numeric/leastsq.hpp"

#include <cmath>

#include "numeric/lu.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pim {
namespace {

// Householder QR on working copies of [A | b]; returns the solution or a
// singular_matrix error naming the deficient column.
Expected<Vector> qr_solve(const Matrix& a, const Vector& b) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  Matrix r = a;
  Vector y = b;
  for (size_t k = 0; k < n; ++k) {
    // Build the Householder vector for column k below the diagonal.
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (!(norm > 1e-300))
      return Error("least_squares: rank-deficient design matrix (column " +
                       std::to_string(k) + " of " + std::to_string(n) + ")",
                   ErrorCode::singular_matrix);
    const double alpha = (r(k, k) >= 0.0) ? -norm : norm;
    Vector v(m - k);
    v[0] = r(k, k) - alpha;
    for (size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vtv = 0.0;
    for (double vi : v) vtv += vi * vi;
    if (vtv > 0.0) {
      const double beta = 2.0 / vtv;
      // Apply the reflector to the remaining columns of R.
      for (size_t c = k; c < n; ++c) {
        double proj = 0.0;
        for (size_t i = k; i < m; ++i) proj += v[i - k] * r(i, c);
        proj *= beta;
        for (size_t i = k; i < m; ++i) r(i, c) -= proj * v[i - k];
      }
      // And to the right-hand side.
      double proj = 0.0;
      for (size_t i = k; i < m; ++i) proj += v[i - k] * y[i];
      proj *= beta;
      for (size_t i = k; i < m; ++i) y[i] -= proj * v[i - k];
    }
  }

  // Back-substitute the upper-triangular system R x = y.
  Vector x(n);
  for (size_t ki = n; ki-- > 0;) {
    double acc = y[ki];
    for (size_t c = ki + 1; c < n; ++c) acc -= r(ki, c) * x[c];
    if (!(std::fabs(r(ki, ki)) > 1e-300))
      return Error("least_squares: rank-deficient design matrix (column " +
                       std::to_string(ki) + " of " + std::to_string(n) + ")",
                   ErrorCode::singular_matrix);
    x[ki] = acc / r(ki, ki);
  }
  return x;
}

}  // namespace

Expected<Vector> least_squares_regularized(const Matrix& a, const Vector& b,
                                           double lambda) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (!(m >= n && n > 0))
    return Error("least_squares_regularized: need rows >= cols >= 1",
                 ErrorCode::bad_input);
  if (b.size() != m)
    return Error("least_squares_regularized: dimension mismatch", ErrorCode::bad_input);
  // Normal equations with ridge damping: fine here because lambda bounds
  // the conditioning by construction.
  Matrix ata(n, n);
  Vector atb(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t r = 0; r < m; ++r) acc += a(r, i) * a(r, j);
      ata(i, j) = acc;
    }
    ata(i, i) += lambda * lambda;
    double acc = 0.0;
    for (size_t r = 0; r < m; ++r) acc += a(r, i) * b[r];
    atb[i] = acc;
  }
  return try_solve_dense(std::move(ata), atb);
}

Expected<Vector> try_least_squares(const Matrix& a, const Vector& b) {
  PIM_COUNT("numeric.leastsq.solves");
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (!(m >= n && n > 0))
    return Error("least_squares: need rows >= cols >= 1", ErrorCode::bad_input);
  if (b.size() != m)
    return Error("least_squares: dimension mismatch", ErrorCode::bad_input);

  Expected<Vector> direct = qr_solve(a, b);
  if (direct.ok()) return direct;

  // Guardrail: rank-deficient fits retry with Tikhonov damping sized to
  // the matrix scale, so a collapsed predictor column yields a usable
  // (damped) coefficient instead of aborting the whole fit.
  PIM_COUNT("numeric.leastsq.error");
  PIM_COUNT("numeric.leastsq.regularized");
  double frob = 0.0;
  for (size_t r = 0; r < m; ++r)
    for (size_t c = 0; c < n; ++c) frob += a(r, c) * a(r, c);
  const double lambda = 1e-7 * std::max(std::sqrt(frob), 1e-300);
  return least_squares_regularized(a, b, lambda)
      .with_context("retrying the rank-deficient system with Tikhonov "
                    "regularization (lambda = " +
                    std::to_string(lambda) + "): " + direct.error().message());
}

Vector least_squares(const Matrix& a, const Vector& b) {
  return try_least_squares(a, b).take();
}

double residual_norm(const Matrix& a, const Vector& x, const Vector& b) {
  return norm2(subtract(a.multiply(x), b));
}

}  // namespace pim
