#include "numeric/optimize.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pim {

MinimizeResult golden_section_minimize(const std::function<double(double)>& f,
                                       double lo, double hi, double tolerance) {
  require(lo <= hi, "golden_section_minimize: empty interval");
  require(tolerance > 0.0, "golden_section_minimize: tolerance must be positive");
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;  // 0.618...
  double a = lo;
  double b = hi;
  double x1 = b - phi * (b - a);
  double x2 = a + phi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  while (b - a > tolerance) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - phi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + phi * (b - a);
      f2 = f(x2);
    }
  }
  const double xm = 0.5 * (a + b);
  return {xm, f(xm)};
}

MinimizeIntResult ternary_search_min(const std::function<double(long)>& f,
                                     long lo, long hi) {
  require(lo <= hi, "ternary_search_min: empty interval");
  while (hi - lo > 3) {
    const long m1 = lo + (hi - lo) / 3;
    const long m2 = hi - (hi - lo) / 3;
    if (f(m1) <= f(m2)) {
      hi = m2 - 1;
    } else {
      lo = m1 + 1;
    }
  }
  return scan_min(f, lo, hi);
}

MinimizeIntResult scan_min(const std::function<double(long)>& f, long lo, long hi) {
  require(lo <= hi, "scan_min: empty interval");
  MinimizeIntResult best{lo, f(lo)};
  for (long x = lo + 1; x <= hi; ++x) {
    const double v = f(x);
    if (v < best.value) best = {x, v};
  }
  return best;
}

}  // namespace pim
