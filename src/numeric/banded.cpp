#include "numeric/banded.hpp"

#include <cmath>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"

namespace pim {

BandedMatrix::BandedMatrix(size_t n, size_t lower, size_t upper)
    : n_(n), lower_(lower), upper_(upper),
      band_((lower + upper + 1) * n, 0.0) {
  require(n > 0, "BandedMatrix: size must be positive");
}

void BandedMatrix::add(size_t r, size_t c, double value) {
  require(r < n_ && c < n_, "BandedMatrix::add: index out of range");
  require(in_band(r, c), "BandedMatrix::add: entry outside band");
  band_[(upper_ + r - c) * n_ + c] += value;
}

double BandedMatrix::at(size_t r, size_t c) const {
  if (r >= n_ || c >= n_ || !in_band(r, c)) return 0.0;
  return band_[(upper_ + r - c) * n_ + c];
}

void BandedMatrix::set_zero() { band_.assign(band_.size(), 0.0); }

Vector BandedMatrix::multiply(const Vector& x) const {
  require(x.size() == n_, "BandedMatrix::multiply: dimension mismatch");
  Vector y(n_, 0.0);
  for (size_t r = 0; r < n_; ++r) {
    const size_t c_lo = r > lower_ ? r - lower_ : 0;
    const size_t c_hi = std::min(n_ - 1, r + upper_);
    double acc = 0.0;
    for (size_t c = c_lo; c <= c_hi; ++c) acc += at(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix BandedMatrix::to_dense() const {
  Matrix m(n_, n_);
  for (size_t r = 0; r < n_; ++r) {
    const size_t c_lo = r > lower_ ? r - lower_ : 0;
    const size_t c_hi = std::min(n_ - 1, r + upper_);
    for (size_t c = c_lo; c <= c_hi; ++c) m(r, c) = at(r, c);
  }
  return m;
}

BandedLu::BandedLu(BandedMatrix a) : lu_(std::move(a)) {
  Expected<void> done = eliminate();
  if (!done.ok()) throw done.error();
}

BandedLu::BandedLu(size_t n, size_t lower, size_t upper)
    : lu_(n, lower, upper) {}

Expected<void> BandedLu::refactor(const BandedMatrix& a) {
  // Not require(): this runs per Newton iteration, and require's message
  // argument would build a heap std::string on every call.
  if (a.n_ != lu_.n_ || a.lower_ != lu_.lower_ || a.upper_ != lu_.upper_)
    fail("BandedLu::refactor: shape mismatch with symbolic analysis",
         ErrorCode::bad_input);
  lu_.band_ = a.band_;  // value copy into preallocated storage
  return eliminate();
}

Expected<void> BandedLu::eliminate() {
  PIM_COUNT("numeric.banded.factorizations");
  factored_ = false;
  const size_t n = lu_.n_;
  const size_t kl = lu_.lower_;
  const size_t ku = lu_.upper_;
  auto entry = [&](size_t r, size_t c) -> double& {
    return lu_.band_[(ku + r - c) * n + c];
  };
  // Fault site: pretend the final pivot vanished, as a genuinely singular
  // (or pivoting-starved) system would. Callers with a retry path — the
  // transient solver halves its timestep, which rebuilds the companion
  // conductances — get to exercise their recovery deterministically.
  const bool inject = fault::should_fire(fault::kLuSingular);
  for (size_t k = 0; k < n; ++k) {
    double pivot = entry(k, k);
    if (inject && k == n - 1) pivot = 0.0;
    if (!(std::fabs(pivot) > 1e-300)) {
      PIM_COUNT("numeric.lu.error");
      return Error("BandedLu: zero pivot at column " + std::to_string(k) +
                       " of " + std::to_string(n) +
                       " (matrix singular or needs pivoting)" +
                       (inject ? " [injected]" : ""),
                   ErrorCode::singular_matrix);
    }
    const double inv = 1.0 / pivot;
    const size_t r_hi = std::min(n - 1, k + kl);
    const size_t c_hi = std::min(n - 1, k + ku);
    for (size_t r = k + 1; r <= r_hi; ++r) {
      const double factor = entry(r, k) * inv;
      entry(r, k) = factor;
      if (factor == 0.0) continue;
      for (size_t c = k + 1; c <= c_hi; ++c) entry(r, c) -= factor * entry(k, c);
    }
  }
  factored_ = true;
  return {};
}

Vector BandedLu::solve(const Vector& b) const {
  require(b.size() == lu_.n_, "BandedLu::solve: dimension mismatch");
  Vector x = b;
  solve_in_place(x);
  return x;
}

void BandedLu::solve_in_place(Vector& x) const {
  const size_t n = lu_.n_;
  // Lazy-built messages: this is the per-iteration hot path.
  if (x.size() != n) fail("BandedLu::solve: dimension mismatch");
  if (!factored_)
    fail("BandedLu::solve: factorization missing (call refactor)",
         ErrorCode::internal);
  const size_t kl = lu_.lower_;
  const size_t ku = lu_.upper_;
  // Forward substitution (unit-lower factor).
  for (size_t k = 0; k < n; ++k) {
    const double xk = x[k];
    if (xk == 0.0) continue;
    const size_t r_hi = std::min(n - 1, k + kl);
    for (size_t r = k + 1; r <= r_hi; ++r) x[r] -= lu_.at(r, k) * xk;
  }
  // Back substitution (upper factor).
  for (size_t ri = n; ri-- > 0;) {
    double acc = x[ri];
    const size_t c_hi = std::min(n - 1, ri + ku);
    for (size_t c = ri + 1; c <= c_hi; ++c) acc -= lu_.at(ri, c) * x[c];
    x[ri] = acc / lu_.at(ri, ri);
  }
}

void BandedLu::solve_many_in_place(std::vector<Vector>& xs) const {
  for (Vector& x : xs) solve_in_place(x);
}

}  // namespace pim
