// pim::api::wire — the canonical JSON wire codec for the facade.
//
// Every pim::api request and result struct has exactly one JSON object
// shape here, produced and consumed by one shared field-binding per
// struct, so serialization and parsing cannot drift apart. The daemon
// (pimd), the `pim serve` client, and in-process callers all speak this
// codec; a warm daemon response is byte-identical to a direct
// pim::api call serialized with the same functions.
//
// Protocol (docs/serving.md): one JSON object per line, no pretty
// printing. Requests are a flat envelope — the request struct's fields
// spread alongside the routing keys:
//
//   {"op":"evaluate","id":7,"api_version":3,"deadline_ms":0,
//    "link":{"tech":"65nm","length_mm":5},"golden":false}
//
// Responses echo the id and op:
//
//   {"id":7,"op":"evaluate","ok":true,"result":{...}}
//   {"id":7,"op":"evaluate","ok":false,"error":{"code":"bad_input",
//    "exit_code":2,"message":"...","context":[]}}
//
// Contract:
//  - Absent request fields keep the struct defaults, so additive API
//    evolution never breaks an old client.
//  - Unknown or duplicate fields are rejected as bad_input — a typo'd
//    field name fails loudly instead of silently running the default.
//  - api_version is validated during decode, before any dispatch.
//  - Integers ride JSON numbers (doubles): exact up to 2^53, which
//    covers every count/seed/byte total the API carries in practice.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "api/pim_api.hpp"
#include "obs/report.hpp"

namespace pim::api::wire {

/// Stable wire op name of a request/result alternative ("techfile",
/// "charlib", "fit", "evaluate", "buffer", "yield", "noise", "timer",
/// "corners", "export", "synthesis", "invalidate", "cache").
std::string op_of(const AnyRequest& request);
std::string op_of(const AnyResult& result);

/// The batch envelope op ({"op":"batch","items":[...]}).
inline constexpr const char* kBatchOp = "batch";

/// Canonical JSON object text for one struct (no envelope, no
/// whitespace, fields in declaration order). Instantiated for every
/// pim::api request/result struct plus LinkSpec and the row structs.
template <typename T>
std::string to_json(const T& value);

/// Decodes one struct from a parsed JSON object. Absent members keep
/// the struct defaults; unknown members, duplicate members, and type
/// mismatches throw Error(bad_input). `who` prefixes error messages.
template <typename T>
T from_json_object(const obs::JsonValue& object, const std::string& who);

/// from_json_object over a full document.
template <typename T>
T from_json(const std::string& text, const std::string& who);

// ---------------------------------------------------------------------------
// Request lines
// ---------------------------------------------------------------------------

/// One parsed request line: the routing identity plus either a single
/// request or a batch, depending on the op.
struct RequestLine {
  bool has_id = false;
  int64_t id = 0;
  std::string op;
  bool is_batch = false;
  AnyRequest request;  ///< when !is_batch
  BatchRequest batch;  ///< when is_batch
};

/// Serializes one request (or batch) as a canonical envelope line
/// (without the trailing newline). Batch items are nested envelopes
/// carrying their op but no id.
std::string write_request_line(int64_t id, const AnyRequest& request);
std::string write_request_line(int64_t id, const BatchRequest& request);

/// Parses a request envelope. Throws Error(bad_input) on malformed
/// JSON, a missing/unknown op, unknown fields, or an api_version
/// mismatch — validated here, before any dispatch.
RequestLine parse_request_line(const std::string& line);
RequestLine request_from_envelope(const obs::JsonValue& envelope);

// ---------------------------------------------------------------------------
// Response lines
// ---------------------------------------------------------------------------

/// Serializes one response envelope for a single request.
std::string write_result_line(const RequestLine& request,
                              const Expected<AnyResult>& result);

/// Serializes a batch response: the result object carries the batch
/// counters plus an order-aligned "items" array of per-item envelopes
/// ({"op":...,"ok":...,"result"/"error":...}).
std::string write_batch_result_line(const RequestLine& request,
                                    const Expected<BatchResult>& result);

/// Serializes an error response for a request whose identity may only
/// be partially known (e.g. a malformed line). `op` may be empty.
std::string write_error_line(bool has_id, int64_t id, const std::string& op,
                             const Error& error);

/// The single error shape every surface shares (daemon responses,
/// batch items, CLI diagnostics):
///   {"code":"bad_input","exit_code":2,"message":"...","context":[...]}
std::string error_to_json(const Error& error);

/// The process exit code the CLI maps `code` to: bad_input -> 2,
/// internal -> 4, deadline_exceeded/cancelled -> 5 (partial), every
/// other failure (io_parse, solver codes, overloaded) -> 3. Wire
/// responses embed the same number as "exit_code", so scripted callers
/// apply one contract to both surfaces (docs/api.md).
int exit_code_for(ErrorCode code);

/// Executes one request line in-process: parse -> run_any / run_batch
/// -> response line. Never throws: every failure, including a malformed
/// line, becomes an error response echoing whatever identity could be
/// recovered. The pimd worker and `pim serve --local` share this
/// function, which is what makes a warm daemon response byte-identical
/// to a direct in-process call.
std::string execute_line(const std::string& line);

/// As execute_line, but runs the dispatch (run_any / run_batch) inside
/// `around`, which receives whether the parsed request (or any batch
/// item) carries a deadline_ms budget and MUST invoke `dispatch`
/// exactly once. The daemon uses this to isolate deadline-carrying
/// requests from concurrent workers: the deadline scope is process-wide
/// ambient state (src/deadline), so two workers arming different
/// budgets would truncate each other. Parsing happens outside `around`;
/// dispatch and response serialization happen inside it.
std::string execute_line(
    const std::string& line,
    const std::function<void(bool uses_deadline, const std::function<void()>& dispatch)>&
        around);

}  // namespace pim::api::wire
