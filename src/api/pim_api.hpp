// pim::api — the stable, single-include facade over the library.
//
// Everything a front end (the pim CLI, a notebook binding, a driver
// script) needs is behind versioned request/result structs and functions
// returning pim::Expected<T>:
//
//   pim::api::YieldRequest req;
//   req.link.tech = "65nm";
//   req.link.length_mm = 5.0;
//   auto result = pim::api::run_yield(req);
//   if (!result) { /* result.error() carries the ErrorCode taxonomy */ }
//
// Contract (docs/api.md):
//  - Every request struct starts with `api_version`; a mismatch against
//    kApiVersion is rejected as bad_input rather than misinterpreted.
//    Additive evolution (new fields with defaults) keeps the version;
//    any change in meaning bumps it.
//  - Results carry plain doubles in display units (ps, mW, um2, mm2) —
//    no pim-internal types leak through this header, so the facade is
//    insulated from internal refactors.
//  - Functions never throw: all failures come back as Expected errors
//    with the pim::ErrorCode taxonomy (bad_input -> exit 2 in the CLI).
//  - Every request carries a `deadline_ms` wall-clock budget (0 =
//    unlimited) armed for exactly the duration of the call. Flows with a
//    sound partial semantics (yield, charlib, synthesis) degrade to a
//    `partial = true` result; the rest return a deadline_exceeded /
//    cancelled error. Reports and ledger records still flush either way
//    (the CLI maps both to exit code 5 — docs/robustness.md).
//  - Flows behind the facade consult the content-addressed result cache
//    (docs/caching.md); warm calls are bit-identical to cold ones.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/expected.hpp"
#include "util/version.hpp"

namespace pim::api {

/// Version of the request/result structs in this header. The number
/// itself lives in util/version.hpp so artifact stamping (ledger, bench
/// harness) can read it without pulling in the facade.
inline constexpr int kApiVersion = kApiVersionNumber;

// ---------------------------------------------------------------------------
// Shared request pieces
// ---------------------------------------------------------------------------

/// One point-to-point wire plus its repeaters — the unit the paper's
/// models evaluate. Used by the link-level requests below.
struct LinkSpec {
  std::string tech;          ///< "90nm" ... "16nm", or a .tech file path
  double length_mm = 0.0;    ///< wire length [mm]; must be positive
  std::string style = "SS";  ///< "SS", "DS", or "SH" (docs/cli.md)
  double input_slew_ps = 100.0;
  int drive = 12;            ///< repeater drive strength
  int repeaters = 0;         ///< 0 = one per mm (at least one)
  std::string coeffs_path;   ///< optional .pimfit file cache (load-or-save)
  std::string corner;        ///< process corner name; "" = nominal (docs/corners.md)
};

// ---------------------------------------------------------------------------
// Technology + characterization
// ---------------------------------------------------------------------------

struct TechfileRequest {
  int api_version = kApiVersion;
  /// Wall-clock budget for this request in milliseconds; 0 = unlimited.
  /// On expiry (or SIGINT/SIGTERM cancellation) flows that can degrade
  /// return a partial result with `partial = true`; others come back as
  /// a typed deadline_exceeded/cancelled error (docs/api.md).
  int64_t deadline_ms = 0;
  std::string tech;
};
struct TechfileResult {
  std::string text;  ///< canonical tech-file serialization
};
Expected<TechfileResult> run_techfile(const TechfileRequest& request);

struct CharlibRequest {
  int api_version = kApiVersion;
  /// Wall-clock budget for this request in milliseconds; 0 = unlimited.
  /// On expiry (or SIGINT/SIGTERM cancellation) flows that can degrade
  /// return a partial result with `partial = true`; others come back as
  /// a typed deadline_exceeded/cancelled error (docs/api.md).
  int64_t deadline_ms = 0;
  std::string tech;
  std::vector<int> drives;  ///< empty = characterization defaults
  bool want_fit = false;    ///< also fit + calibrate the coefficient tables
  std::string corner;       ///< process corner to characterize at; "" = nominal
};
struct CharlibResult {
  std::string liberty_text;  ///< Liberty-lite library of the cells
  std::string fit_text;      ///< coefficient tables (when want_fit)
  /// True when a deadline/cancel stop truncated a characterization
  /// sweep: the affected tables were neighbor-patched (quorum
  /// permitting), so values are usable but biased.
  bool partial = false;
};
Expected<CharlibResult> run_charlib(const CharlibRequest& request);

struct FitRequest {
  int api_version = kApiVersion;
  /// Wall-clock budget for this request in milliseconds; 0 = unlimited.
  /// On expiry (or SIGINT/SIGTERM cancellation) flows that can degrade
  /// return a partial result with `partial = true`; others come back as
  /// a typed deadline_exceeded/cancelled error (docs/api.md).
  int64_t deadline_ms = 0;
  std::string tech;
  std::string coeffs_path;  ///< optional .pimfit file cache (load-or-save)
  std::string corner;       ///< process corner to calibrate at; "" = nominal
};
struct FitResult {
  std::string fit_text;  ///< canonical coefficient-table serialization
};
Expected<FitResult> run_fit(const FitRequest& request);

// ---------------------------------------------------------------------------
// Link-level flows
// ---------------------------------------------------------------------------

struct LinkEvalRequest {
  int api_version = kApiVersion;
  /// Wall-clock budget for this request in milliseconds; 0 = unlimited.
  /// On expiry (or SIGINT/SIGTERM cancellation) flows that can degrade
  /// return a partial result with `partial = true`; others come back as
  /// a typed deadline_exceeded/cancelled error (docs/api.md).
  int64_t deadline_ms = 0;
  LinkSpec link;
  bool golden = false;  ///< also run the transistor-level signoff
};
struct LinkEvalResult {
  std::string tech_name;   ///< display name, e.g. "65nm"
  std::string style_name;  ///< display name of the spacing style
  int repeaters = 0;  ///< resolved repeater count (after the 0 default)
  double miller_factor = 0.0;
  double delay_ps = 0.0;
  double output_slew_ps = 0.0;
  double power_mw = 0.0;
  double area_um2 = 0.0;
  bool has_golden = false;
  double golden_delay_ps = 0.0;
  double golden_slew_ps = 0.0;
  uint64_t golden_nodes = 0;
  double model_error_pct = 0.0;  ///< (model - golden) / golden * 100
};
Expected<LinkEvalResult> run_evaluate(const LinkEvalRequest& request);

struct BufferRequest {
  int api_version = kApiVersion;
  /// Wall-clock budget for this request in milliseconds; 0 = unlimited.
  /// On expiry (or SIGINT/SIGTERM cancellation) flows that can degrade
  /// return a partial result with `partial = true`; others come back as
  /// a typed deadline_exceeded/cancelled error (docs/api.md).
  int64_t deadline_ms = 0;
  LinkSpec link;         ///< drive/repeaters ignored — the search picks them
  double weight = 0.6;   ///< cost = delay^w * power^(1-w)
  double budget_ps = 0;  ///< hard delay constraint; 0 = unconstrained
};
struct BufferResult {
  bool feasible = false;
  std::string kind;  ///< "INV" or "BUF"
  int drive = 0;
  int repeaters = 0;
  double miller_factor = 0.0;
  long evaluations = 0;
  double delay_ps = 0.0;
  double power_mw = 0.0;
  double area_um2 = 0.0;
};
Expected<BufferResult> run_buffer(const BufferRequest& request);

struct YieldRequest {
  int api_version = kApiVersion;
  /// Wall-clock budget for this request in milliseconds; 0 = unlimited.
  /// On expiry (or SIGINT/SIGTERM cancellation) flows that can degrade
  /// return a partial result with `partial = true`; others come back as
  /// a typed deadline_exceeded/cancelled error (docs/api.md).
  int64_t deadline_ms = 0;
  LinkSpec link;
  int samples = 1000;
  uint64_t seed = 2026;
};
struct YieldResult {
  int samples = 0;        ///< surviving samples
  int failed_samples = 0;
  int requested_samples = 0;  ///< the sampling plan the caller asked for
  double nominal_delay_ps = 0.0;
  double mean_delay_ps = 0.0;
  double sigma_delay_ps = 0.0;
  double p90_delay_ps = 0.0;
  double p99_delay_ps = 0.0;
  double yield_at_nominal = 0.0;  ///< fraction in [0, 1]
  /// 95 % binomial confidence halfwidth of yield_at_nominal over the
  /// surviving samples — widens when a partial run completed fewer.
  double yield_ci95 = 0.0;
  /// True when the run was truncated by a deadline/cancel stop: the
  /// statistics cover the completed sample prefix only (deterministic at
  /// any --threads) and the result was not cached.
  bool partial = false;
};
Expected<YieldResult> run_yield(const YieldRequest& request);

struct NoiseRequest {
  int api_version = kApiVersion;
  /// Wall-clock budget for this request in milliseconds; 0 = unlimited.
  /// On expiry (or SIGINT/SIGTERM cancellation) flows that can degrade
  /// return a partial result with `partial = true`; others come back as
  /// a typed deadline_exceeded/cancelled error (docs/api.md).
  int64_t deadline_ms = 0;
  LinkSpec link;  ///< repeaters ignored — noise is per wire segment
};
struct NoiseResult {
  std::string tech_name;
  std::string style_name;
  double golden_peak_mv = 0.0;
  double golden_peak_pct_vdd = 0.0;
  double model_peak_mv = 0.0;
  double model_error_pct = 0.0;
};
Expected<NoiseResult> run_noise(const NoiseRequest& request);

struct TimerRequest {
  int api_version = kApiVersion;
  /// Wall-clock budget for this request in milliseconds; 0 = unlimited.
  /// On expiry (or SIGINT/SIGTERM cancellation) flows that can degrade
  /// return a partial result with `partial = true`; others come back as
  /// a typed deadline_exceeded/cancelled error (docs/api.md).
  int64_t deadline_ms = 0;
  LinkSpec link;
};
struct TimerResult {
  std::string tech_name;
  int repeaters = 0;  ///< resolved repeater count
  double awe_delay_ps = 0.0;
  double awe_slew_ps = 0.0;
  double elmore_delay_ps = 0.0;
  bool partial = false;  ///< library characterization was truncated/patched
};
Expected<TimerResult> run_timer(const TimerRequest& request);

/// Multi-corner signoff of one link: per-corner delay/slack/noise plus
/// the dominating (minimum-slack) corner. The models are calibrated per
/// corner (cached independently; see docs/corners.md).
struct CornersRequest {
  int api_version = kApiVersion;
  /// Wall-clock budget for this request in milliseconds; 0 = unlimited.
  /// On expiry (or SIGINT/SIGTERM cancellation) flows that can degrade
  /// return a partial result with `partial = true`; others come back as
  /// a typed deadline_exceeded/cancelled error (docs/api.md).
  int64_t deadline_ms = 0;
  LinkSpec link;                ///< link.corner is ignored — `corners` decides
  std::string corners = "all";  ///< "all" or a comma list of corner names
  double target_period_ps = 0.0;  ///< slack target; 0 = one clock period
};
struct CornerTimingRow {
  std::string corner;
  double delay_ps = 0.0;
  double output_slew_ps = 0.0;
  double slack_ps = 0.0;
  double noise_peak_mv = 0.0;
};
struct CornersResult {
  std::string tech_name;
  std::string style_name;
  int repeaters = 0;
  double target_period_ps = 0.0;
  std::vector<CornerTimingRow> corners;  ///< in resolution order
  std::string worst_corner;              ///< dominating (minimum-slack) corner
  double worst_slack_ps = 0.0;
};
Expected<CornersResult> run_corners(const CornersRequest& request);

struct ExportRequest {
  int api_version = kApiVersion;
  /// Wall-clock budget for this request in milliseconds; 0 = unlimited.
  /// On expiry (or SIGINT/SIGTERM cancellation) flows that can degrade
  /// return a partial result with `partial = true`; others come back as
  /// a typed deadline_exceeded/cancelled error (docs/api.md).
  int64_t deadline_ms = 0;
  LinkSpec link;
  bool want_deck = false;  ///< SPICE deck of the implemented line
  bool want_spef = false;  ///< SPEF parasitics of the wire
};
struct ExportResult {
  std::string deck_text;
  uint64_t deck_nodes = 0;
  std::string spef_text;
};
Expected<ExportResult> run_export(const ExportRequest& request);

// ---------------------------------------------------------------------------
// NoC synthesis
// ---------------------------------------------------------------------------

struct SynthesisRequest {
  int api_version = kApiVersion;
  /// Wall-clock budget for this request in milliseconds; 0 = unlimited.
  /// On expiry (or SIGINT/SIGTERM cancellation) flows that can degrade
  /// return a partial result with `partial = true`; others come back as
  /// a typed deadline_exceeded/cancelled error (docs/api.md).
  int64_t deadline_ms = 0;
  std::string spec;   ///< "dvopd", "vproc", "mpeg4", "mwd", or a .soc path
  std::string tech;
  std::string model = "proposed";  ///< or "bakoglu" / "pamunuwa"
  bool mesh = false;  ///< regular mesh instead of application-specific
  int rows = 0;       ///< mesh shape; 0 = automatic
  int cols = 0;
  bool want_dot = false;  ///< also render the topology as Graphviz
  std::string coeffs_path;
  /// Corner spec ("all" or a comma list) to size/buffer links against the
  /// worst corner of; "" keeps the single-corner (nominal) flow. Only the
  /// proposed model carries per-corner calibration.
  std::string corners;
};
struct SynthesisResult {
  std::string spec_name;
  std::string tech_name;
  std::string model_name;
  double dynamic_power_mw = 0.0;
  double leakage_power_mw = 0.0;
  double worst_link_delay_ps = 0.0;
  double delay_budget_ps = 0.0;
  double area_mm2 = 0.0;
  int num_links = 0;
  int num_routers = 0;
  double avg_hops = 0.0;
  int max_hops = 0;
  int merges_applied = 0;
  /// True when a deadline/cancel stop ended the optimization early: the
  /// reported architecture is the best feasible sizing found in budget.
  bool partial = false;
  std::string dot_text;  ///< when want_dot
};
Expected<SynthesisResult> run_synthesis(const SynthesisRequest& request);

// ---------------------------------------------------------------------------
// Incremental recomputation: provenance diff + cache administration
// ---------------------------------------------------------------------------

/// Diffs the provenance facets of `tech` (typically an edited tech file)
/// against every recorded cache manifest and partitions the cached
/// artifact graph into the dirty cone (fits, buffering searches,
/// Monte-Carlo runs whose inputs the edit changed, plus everything
/// derived from them) and the reusable remainder. With `apply` the dirty
/// cone is evicted, so the next run recomputes exactly the delta — see
/// docs/caching.md.
struct InvalidateRequest {
  int api_version = kApiVersion;
  /// Wall-clock budget for this request in milliseconds; 0 = unlimited.
  int64_t deadline_ms = 0;
  /// The edited technology: a .tech file path or a built-in node name.
  /// Its per-corner facets define the "new" state manifests diff against.
  std::string tech;
  /// false = report the dirty/reuse partition only; true = also evict
  /// the dirty cone from the cache.
  bool apply = false;
};
struct InvalidateKindRow {
  std::string kind;  ///< artifact kind ("fit", "buffering", "yield", ...)
  int dirty = 0;
  int reuse = 0;
};
struct InvalidateResult {
  int manifests = 0;   ///< provenance records scanned
  int dirty_keys = 0;  ///< stale artifacts (also the cache.dirty.keys metric)
  int reuse_keys = 0;  ///< still-valid artifacts (cache.reuse.keys metric)
  int evicted = 0;     ///< entries removed (apply only)
  bool applied = false;
  std::vector<InvalidateKindRow> kinds;  ///< kind-sorted breakdown
};
Expected<InvalidateResult> run_invalidate(const InvalidateRequest& request);

/// Cache administration: per-kind census, disk prune to a byte budget,
/// and manifest<->entry consistency verification (docs/caching.md).
struct CacheAdminRequest {
  int api_version = kApiVersion;
  /// Wall-clock budget for this request in milliseconds; 0 = unlimited.
  int64_t deadline_ms = 0;
  std::string action;        ///< "stats" | "prune" | "verify"
  int64_t budget_bytes = 0;  ///< prune: target total (entry + manifest) bytes
};
struct CacheKindRow {
  std::string kind;
  int64_t entries = 0;
  int64_t payload_bytes = 0;
  int64_t manifest_bytes = 0;
};
struct CacheAdminResult {
  std::string action;
  std::string dir;  ///< the cache root the action ran against
  // stats
  std::vector<CacheKindRow> kinds;  ///< kind-sorted census
  int64_t total_bytes = 0;          ///< entry + manifest bytes across kinds
  // prune
  int64_t scanned_entries = 0;
  int64_t removed_entries = 0;
  int64_t removed_bytes = 0;
  int64_t kept_bytes = 0;
  // verify
  int64_t entries = 0;
  int64_t manifests = 0;
  int64_t orphan_manifests = 0;
  int64_t unmanifested_entries = 0;
  int64_t corrupt_manifests = 0;
  int64_t scrubbed = 0;
};
Expected<CacheAdminResult> run_cache_admin(const CacheAdminRequest& request);

// ---------------------------------------------------------------------------
// Batched execution
// ---------------------------------------------------------------------------

/// Any single request the facade accepts. Batches hold these; a batch
/// cannot nest another batch (the variant has no BatchRequest member), so
/// the shared-budget semantics below stay one level deep by construction.
using AnyRequest =
    std::variant<TechfileRequest, CharlibRequest, FitRequest, LinkEvalRequest,
                 BufferRequest, YieldRequest, NoiseRequest, TimerRequest,
                 CornersRequest, ExportRequest, SynthesisRequest,
                 InvalidateRequest, CacheAdminRequest>;

/// The matching result alternatives, index-aligned with AnyRequest.
using AnyResult =
    std::variant<TechfileResult, CharlibResult, FitResult, LinkEvalResult,
                 BufferResult, YieldResult, NoiseResult, TimerResult,
                 CornersResult, ExportResult, SynthesisResult,
                 InvalidateResult, CacheAdminResult>;

/// Dispatches one AnyRequest to its run_* entry point. The item's own
/// api_version / deadline_ms fields apply exactly as in a direct call.
Expected<AnyResult> run_any(const AnyRequest& request);

/// A heterogeneous batch executed in order under ONE shared wall-clock
/// budget. Per-item outcomes are independent: item 3 failing bad_input
/// does not stop item 4. When the shared budget expires (or the process
/// is cancelled) mid-batch, items already completed keep their results,
/// the in-flight item degrades by its own flow's partial semantics, and
/// every not-yet-started item comes back as a typed deadline_exceeded /
/// cancelled error without starting work — so a batch always returns in
/// bounded time with exactly `items.size()` entries.
struct BatchRequest {
  int api_version = kApiVersion;
  /// Shared budget across ALL items, in milliseconds; 0 = unlimited.
  /// Item-level deadline_ms fields still apply (the tighter one wins
  /// while that item runs).
  int64_t deadline_ms = 0;
  std::vector<AnyRequest> items;
};
struct BatchResult {
  /// One entry per request item, order-preserving.
  std::vector<Expected<AnyResult>> items;
  int failed = 0;         ///< items that came back as errors
  int partial_items = 0;  ///< items whose result carries partial = true
  /// True when the shared budget truncated the batch: at least one item
  /// was skipped or degraded by the deadline/cancel stop.
  bool partial = false;
};
Expected<BatchResult> run_batch(const BatchRequest& request);

}  // namespace pim::api
