#include "api/wire.hpp"

#include <cmath>
#include <concepts>
#include <vector>

#include "util/error.hpp"

namespace pim::api::wire {
namespace {

using obs::JsonValue;
using obs::json_number;
using obs::json_quote;

// ---------------------------------------------------------------------------
// Field bindings: one function per struct, shared verbatim by the
// writer and the reader, so the two directions cannot disagree on a
// field name or ordering. Adding a struct member means adding exactly
// one line here (and nothing else) — absent members keep defaults on
// decode, which is the additive-evolution rule from docs/api.md.
// ---------------------------------------------------------------------------

class JsonWriter;
class JsonReader;

template <typename B> void bind(B& b, LinkSpec& v);
template <typename B> void bind(B& b, TechfileRequest& v);
template <typename B> void bind(B& b, CharlibRequest& v);
template <typename B> void bind(B& b, FitRequest& v);
template <typename B> void bind(B& b, LinkEvalRequest& v);
template <typename B> void bind(B& b, BufferRequest& v);
template <typename B> void bind(B& b, YieldRequest& v);
template <typename B> void bind(B& b, NoiseRequest& v);
template <typename B> void bind(B& b, TimerRequest& v);
template <typename B> void bind(B& b, CornersRequest& v);
template <typename B> void bind(B& b, ExportRequest& v);
template <typename B> void bind(B& b, SynthesisRequest& v);
template <typename B> void bind(B& b, InvalidateRequest& v);
template <typename B> void bind(B& b, CacheAdminRequest& v);
template <typename B> void bind(B& b, TechfileResult& v);
template <typename B> void bind(B& b, CharlibResult& v);
template <typename B> void bind(B& b, FitResult& v);
template <typename B> void bind(B& b, LinkEvalResult& v);
template <typename B> void bind(B& b, BufferResult& v);
template <typename B> void bind(B& b, YieldResult& v);
template <typename B> void bind(B& b, NoiseResult& v);
template <typename B> void bind(B& b, TimerResult& v);
template <typename B> void bind(B& b, CornerTimingRow& v);
template <typename B> void bind(B& b, CornersResult& v);
template <typename B> void bind(B& b, ExportResult& v);
template <typename B> void bind(B& b, SynthesisResult& v);
template <typename B> void bind(B& b, InvalidateKindRow& v);
template <typename B> void bind(B& b, InvalidateResult& v);
template <typename B> void bind(B& b, CacheKindRow& v);
template <typename B> void bind(B& b, CacheAdminResult& v);

template <typename T> std::string struct_text(T& value);
template <typename T> T decode_struct(const JsonValue& object, const std::string& who);

// Integral wire fields, excluding bool (which has its own JSON kind).
template <typename T>
concept WireInt = std::integral<T> && !std::same_as<T, bool>;

// ---------------------------------------------------------------------------
// Writer: canonical object text — no whitespace, declaration order.
// ---------------------------------------------------------------------------

class JsonWriter {
 public:
  void field(const char* name, const std::string& v) { key(name); out_ += json_quote(v); }
  void field(const char* name, bool v) { key(name); out_ += v ? "true" : "false"; }
  void field(const char* name, double v) { key(name); out_ += json_number(v); }
  template <WireInt T>
  void field(const char* name, T v) {
    key(name);
    out_ += std::to_string(v);
  }
  void field(const char* name, LinkSpec& v) { key(name); out_ += struct_text(v); }
  template <typename T>
  void field(const char* name, std::vector<T>& v) {
    key(name);
    out_ += '[';
    bool first = true;
    for (T& item : v) {
      if (!first) out_ += ',';
      first = false;
      if constexpr (WireInt<T>)
        out_ += std::to_string(item);
      else
        out_ += struct_text(item);
    }
    out_ += ']';
  }
  /// Pre-serialized JSON (nested envelopes, error objects).
  void raw(const char* name, const std::string& json) { key(name); out_ += json; }

  std::string finish() { return out_ + "}"; }

 private:
  void key(const char* name) {
    if (!first_) out_ += ',';
    first_ = false;
    out_ += json_quote(name);
    out_ += ':';
  }

  std::string out_ = "{";
  bool first_ = true;
};

// ---------------------------------------------------------------------------
// Reader: strict object decode. Absent members keep defaults; unknown
// and duplicate members are rejected in finish(), so a typo'd request
// field fails loudly instead of silently running the default.
// ---------------------------------------------------------------------------

class JsonReader {
 public:
  JsonReader(const JsonValue& object, std::string who)
      : object_(object), who_(std::move(who)), used_(object.members.size(), false) {
    require(object_.kind == JsonValue::Kind::Object, who_ + ": expected a JSON object",
            ErrorCode::bad_input);
  }

  /// Marks an envelope routing key (op, id) as consumed without
  /// binding it to a struct field.
  void consume(const char* name) { (void)lookup(name); }

  void field(const char* name, std::string& v) {
    if (const JsonValue* m = lookup(name)) {
      expect(*m, JsonValue::Kind::String, name, "a string");
      v = m->text;
    }
  }
  void field(const char* name, bool& v) {
    if (const JsonValue* m = lookup(name)) {
      expect(*m, JsonValue::Kind::Bool, name, "a boolean");
      v = m->boolean;
    }
  }
  void field(const char* name, double& v) {
    if (const JsonValue* m = lookup(name)) {
      expect(*m, JsonValue::Kind::Number, name, "a number");
      v = m->number;
    }
  }
  template <WireInt T>
  void field(const char* name, T& v) {
    if (const JsonValue* m = lookup(name)) v = integer<T>(*m, name);
  }
  void field(const char* name, LinkSpec& v) {
    if (const JsonValue* m = lookup(name))
      v = decode_struct<LinkSpec>(*m, who_ + "." + name);
  }
  template <typename T>
  void field(const char* name, std::vector<T>& v) {
    const JsonValue* m = lookup(name);
    if (m == nullptr) return;
    expect(*m, JsonValue::Kind::Array, name, "an array");
    v.clear();
    for (const JsonValue& item : m->items) {
      if constexpr (WireInt<T>)
        v.push_back(integer<T>(item, name));
      else
        v.push_back(decode_struct<T>(item, who_ + "." + name));
    }
  }

  /// Rejects every member no field()/consume() claimed.
  void finish() const {
    for (size_t i = 0; i < object_.members.size(); ++i)
      require(used_[i],
              who_ + ": unknown field '" + object_.members[i].first + "'",
              ErrorCode::bad_input);
  }

 private:
  const JsonValue* lookup(const char* name) {
    for (size_t i = 0; i < object_.members.size(); ++i) {
      if (!used_[i] && object_.members[i].first == name) {
        used_[i] = true;
        return &object_.members[i].second;
      }
    }
    return nullptr;
  }

  void expect(const JsonValue& value, JsonValue::Kind kind, const char* name,
              const char* what) const {
    require(value.kind == kind,
            who_ + ": field '" + std::string(name) + "' must be " + what,
            ErrorCode::bad_input);
  }

  template <WireInt T>
  T integer(const JsonValue& value, const char* name) const {
    expect(value, JsonValue::Kind::Number, name, "an integer");
    const double d = value.number;
    require(std::nearbyint(d) == d,
            who_ + ": field '" + std::string(name) + "' must be an integer",
            ErrorCode::bad_input);
    return static_cast<T>(d);
  }

  const JsonValue& object_;
  std::string who_;
  std::vector<bool> used_;
};

// ---------------------------------------------------------------------------
// Per-struct bindings
// ---------------------------------------------------------------------------

template <typename B> void bind(B& b, LinkSpec& v) {
  b.field("tech", v.tech);
  b.field("length_mm", v.length_mm);
  b.field("style", v.style);
  b.field("input_slew_ps", v.input_slew_ps);
  b.field("drive", v.drive);
  b.field("repeaters", v.repeaters);
  b.field("coeffs_path", v.coeffs_path);
  b.field("corner", v.corner);
}

template <typename B> void bind(B& b, TechfileRequest& v) {
  b.field("api_version", v.api_version);
  b.field("deadline_ms", v.deadline_ms);
  b.field("tech", v.tech);
}

template <typename B> void bind(B& b, CharlibRequest& v) {
  b.field("api_version", v.api_version);
  b.field("deadline_ms", v.deadline_ms);
  b.field("tech", v.tech);
  b.field("drives", v.drives);
  b.field("want_fit", v.want_fit);
  b.field("corner", v.corner);
}

template <typename B> void bind(B& b, FitRequest& v) {
  b.field("api_version", v.api_version);
  b.field("deadline_ms", v.deadline_ms);
  b.field("tech", v.tech);
  b.field("coeffs_path", v.coeffs_path);
  b.field("corner", v.corner);
}

template <typename B> void bind(B& b, LinkEvalRequest& v) {
  b.field("api_version", v.api_version);
  b.field("deadline_ms", v.deadline_ms);
  b.field("link", v.link);
  b.field("golden", v.golden);
}

template <typename B> void bind(B& b, BufferRequest& v) {
  b.field("api_version", v.api_version);
  b.field("deadline_ms", v.deadline_ms);
  b.field("link", v.link);
  b.field("weight", v.weight);
  b.field("budget_ps", v.budget_ps);
}

template <typename B> void bind(B& b, YieldRequest& v) {
  b.field("api_version", v.api_version);
  b.field("deadline_ms", v.deadline_ms);
  b.field("link", v.link);
  b.field("samples", v.samples);
  b.field("seed", v.seed);
}

template <typename B> void bind(B& b, NoiseRequest& v) {
  b.field("api_version", v.api_version);
  b.field("deadline_ms", v.deadline_ms);
  b.field("link", v.link);
}

template <typename B> void bind(B& b, TimerRequest& v) {
  b.field("api_version", v.api_version);
  b.field("deadline_ms", v.deadline_ms);
  b.field("link", v.link);
}

template <typename B> void bind(B& b, CornersRequest& v) {
  b.field("api_version", v.api_version);
  b.field("deadline_ms", v.deadline_ms);
  b.field("link", v.link);
  b.field("corners", v.corners);
  b.field("target_period_ps", v.target_period_ps);
}

template <typename B> void bind(B& b, ExportRequest& v) {
  b.field("api_version", v.api_version);
  b.field("deadline_ms", v.deadline_ms);
  b.field("link", v.link);
  b.field("want_deck", v.want_deck);
  b.field("want_spef", v.want_spef);
}

template <typename B> void bind(B& b, SynthesisRequest& v) {
  b.field("api_version", v.api_version);
  b.field("deadline_ms", v.deadline_ms);
  b.field("spec", v.spec);
  b.field("tech", v.tech);
  b.field("model", v.model);
  b.field("mesh", v.mesh);
  b.field("rows", v.rows);
  b.field("cols", v.cols);
  b.field("want_dot", v.want_dot);
  b.field("coeffs_path", v.coeffs_path);
  b.field("corners", v.corners);
}

template <typename B> void bind(B& b, InvalidateRequest& v) {
  b.field("api_version", v.api_version);
  b.field("deadline_ms", v.deadline_ms);
  b.field("tech", v.tech);
  b.field("apply", v.apply);
}

template <typename B> void bind(B& b, CacheAdminRequest& v) {
  b.field("api_version", v.api_version);
  b.field("deadline_ms", v.deadline_ms);
  b.field("action", v.action);
  b.field("budget_bytes", v.budget_bytes);
}

template <typename B> void bind(B& b, TechfileResult& v) {
  b.field("text", v.text);
}

template <typename B> void bind(B& b, CharlibResult& v) {
  b.field("liberty_text", v.liberty_text);
  b.field("fit_text", v.fit_text);
  b.field("partial", v.partial);
}

template <typename B> void bind(B& b, FitResult& v) {
  b.field("fit_text", v.fit_text);
}

template <typename B> void bind(B& b, LinkEvalResult& v) {
  b.field("tech_name", v.tech_name);
  b.field("style_name", v.style_name);
  b.field("repeaters", v.repeaters);
  b.field("miller_factor", v.miller_factor);
  b.field("delay_ps", v.delay_ps);
  b.field("output_slew_ps", v.output_slew_ps);
  b.field("power_mw", v.power_mw);
  b.field("area_um2", v.area_um2);
  b.field("has_golden", v.has_golden);
  b.field("golden_delay_ps", v.golden_delay_ps);
  b.field("golden_slew_ps", v.golden_slew_ps);
  b.field("golden_nodes", v.golden_nodes);
  b.field("model_error_pct", v.model_error_pct);
}

template <typename B> void bind(B& b, BufferResult& v) {
  b.field("feasible", v.feasible);
  b.field("kind", v.kind);
  b.field("drive", v.drive);
  b.field("repeaters", v.repeaters);
  b.field("miller_factor", v.miller_factor);
  b.field("evaluations", v.evaluations);
  b.field("delay_ps", v.delay_ps);
  b.field("power_mw", v.power_mw);
  b.field("area_um2", v.area_um2);
}

template <typename B> void bind(B& b, YieldResult& v) {
  b.field("samples", v.samples);
  b.field("failed_samples", v.failed_samples);
  b.field("requested_samples", v.requested_samples);
  b.field("nominal_delay_ps", v.nominal_delay_ps);
  b.field("mean_delay_ps", v.mean_delay_ps);
  b.field("sigma_delay_ps", v.sigma_delay_ps);
  b.field("p90_delay_ps", v.p90_delay_ps);
  b.field("p99_delay_ps", v.p99_delay_ps);
  b.field("yield_at_nominal", v.yield_at_nominal);
  b.field("yield_ci95", v.yield_ci95);
  b.field("partial", v.partial);
}

template <typename B> void bind(B& b, NoiseResult& v) {
  b.field("tech_name", v.tech_name);
  b.field("style_name", v.style_name);
  b.field("golden_peak_mv", v.golden_peak_mv);
  b.field("golden_peak_pct_vdd", v.golden_peak_pct_vdd);
  b.field("model_peak_mv", v.model_peak_mv);
  b.field("model_error_pct", v.model_error_pct);
}

template <typename B> void bind(B& b, TimerResult& v) {
  b.field("tech_name", v.tech_name);
  b.field("repeaters", v.repeaters);
  b.field("awe_delay_ps", v.awe_delay_ps);
  b.field("awe_slew_ps", v.awe_slew_ps);
  b.field("elmore_delay_ps", v.elmore_delay_ps);
  b.field("partial", v.partial);
}

template <typename B> void bind(B& b, CornerTimingRow& v) {
  b.field("corner", v.corner);
  b.field("delay_ps", v.delay_ps);
  b.field("output_slew_ps", v.output_slew_ps);
  b.field("slack_ps", v.slack_ps);
  b.field("noise_peak_mv", v.noise_peak_mv);
}

template <typename B> void bind(B& b, CornersResult& v) {
  b.field("tech_name", v.tech_name);
  b.field("style_name", v.style_name);
  b.field("repeaters", v.repeaters);
  b.field("target_period_ps", v.target_period_ps);
  b.field("corners", v.corners);
  b.field("worst_corner", v.worst_corner);
  b.field("worst_slack_ps", v.worst_slack_ps);
}

template <typename B> void bind(B& b, ExportResult& v) {
  b.field("deck_text", v.deck_text);
  b.field("deck_nodes", v.deck_nodes);
  b.field("spef_text", v.spef_text);
}

template <typename B> void bind(B& b, SynthesisResult& v) {
  b.field("spec_name", v.spec_name);
  b.field("tech_name", v.tech_name);
  b.field("model_name", v.model_name);
  b.field("dynamic_power_mw", v.dynamic_power_mw);
  b.field("leakage_power_mw", v.leakage_power_mw);
  b.field("worst_link_delay_ps", v.worst_link_delay_ps);
  b.field("delay_budget_ps", v.delay_budget_ps);
  b.field("area_mm2", v.area_mm2);
  b.field("num_links", v.num_links);
  b.field("num_routers", v.num_routers);
  b.field("avg_hops", v.avg_hops);
  b.field("max_hops", v.max_hops);
  b.field("merges_applied", v.merges_applied);
  b.field("partial", v.partial);
  b.field("dot_text", v.dot_text);
}

template <typename B> void bind(B& b, InvalidateKindRow& v) {
  b.field("kind", v.kind);
  b.field("dirty", v.dirty);
  b.field("reuse", v.reuse);
}

template <typename B> void bind(B& b, InvalidateResult& v) {
  b.field("manifests", v.manifests);
  b.field("dirty_keys", v.dirty_keys);
  b.field("reuse_keys", v.reuse_keys);
  b.field("evicted", v.evicted);
  b.field("applied", v.applied);
  b.field("kinds", v.kinds);
}

template <typename B> void bind(B& b, CacheKindRow& v) {
  b.field("kind", v.kind);
  b.field("entries", v.entries);
  b.field("payload_bytes", v.payload_bytes);
  b.field("manifest_bytes", v.manifest_bytes);
}

template <typename B> void bind(B& b, CacheAdminResult& v) {
  b.field("action", v.action);
  b.field("dir", v.dir);
  b.field("kinds", v.kinds);
  b.field("total_bytes", v.total_bytes);
  b.field("scanned_entries", v.scanned_entries);
  b.field("removed_entries", v.removed_entries);
  b.field("removed_bytes", v.removed_bytes);
  b.field("kept_bytes", v.kept_bytes);
  b.field("entries", v.entries);
  b.field("manifests", v.manifests);
  b.field("orphan_manifests", v.orphan_manifests);
  b.field("unmanifested_entries", v.unmanifested_entries);
  b.field("corrupt_manifests", v.corrupt_manifests);
  b.field("scrubbed", v.scrubbed);
}

template <typename T>
std::string struct_text(T& value) {
  JsonWriter w;
  bind(w, value);
  return w.finish();
}

template <typename T>
T decode_struct(const JsonValue& object, const std::string& who) {
  JsonReader r(object, who);
  T value{};
  bind(r, value);
  r.finish();
  return value;
}

// ---------------------------------------------------------------------------
// Op table
// ---------------------------------------------------------------------------

const char* op_name(const TechfileRequest&) { return "techfile"; }
const char* op_name(const CharlibRequest&) { return "charlib"; }
const char* op_name(const FitRequest&) { return "fit"; }
const char* op_name(const LinkEvalRequest&) { return "evaluate"; }
const char* op_name(const BufferRequest&) { return "buffer"; }
const char* op_name(const YieldRequest&) { return "yield"; }
const char* op_name(const NoiseRequest&) { return "noise"; }
const char* op_name(const TimerRequest&) { return "timer"; }
const char* op_name(const CornersRequest&) { return "corners"; }
const char* op_name(const ExportRequest&) { return "export"; }
const char* op_name(const SynthesisRequest&) { return "synthesis"; }
const char* op_name(const InvalidateRequest&) { return "invalidate"; }
const char* op_name(const CacheAdminRequest&) { return "cache"; }
const char* op_name(const TechfileResult&) { return "techfile"; }
const char* op_name(const CharlibResult&) { return "charlib"; }
const char* op_name(const FitResult&) { return "fit"; }
const char* op_name(const LinkEvalResult&) { return "evaluate"; }
const char* op_name(const BufferResult&) { return "buffer"; }
const char* op_name(const YieldResult&) { return "yield"; }
const char* op_name(const NoiseResult&) { return "noise"; }
const char* op_name(const TimerResult&) { return "timer"; }
const char* op_name(const CornersResult&) { return "corners"; }
const char* op_name(const ExportResult&) { return "export"; }
const char* op_name(const SynthesisResult&) { return "synthesis"; }
const char* op_name(const InvalidateResult&) { return "invalidate"; }
const char* op_name(const CacheAdminResult&) { return "cache"; }

void check_wire_version(int version, const std::string& who) {
  require(version == kApiVersion,
          who + ": request api_version " + std::to_string(version) +
              " does not match pim::api::kApiVersion " + std::to_string(kApiVersion),
          ErrorCode::bad_input);
}

// Decodes one request envelope into its struct. `top_level` envelopes
// own the routing keys (op, id); batch item envelopes carry an op but
// no id (the batch response is index-aligned instead).
template <typename T>
T decode_request(const JsonValue& envelope, const std::string& who, bool top_level) {
  JsonReader r(envelope, who);
  r.consume("op");
  if (top_level) r.consume("id");
  T value{};
  bind(r, value);
  r.finish();
  check_wire_version(value.api_version, who);
  return value;
}

AnyRequest decode_any(const std::string& op, const JsonValue& envelope,
                      const std::string& who, bool top_level) {
  if (op == "techfile") return decode_request<TechfileRequest>(envelope, who, top_level);
  if (op == "charlib") return decode_request<CharlibRequest>(envelope, who, top_level);
  if (op == "fit") return decode_request<FitRequest>(envelope, who, top_level);
  if (op == "evaluate") return decode_request<LinkEvalRequest>(envelope, who, top_level);
  if (op == "buffer") return decode_request<BufferRequest>(envelope, who, top_level);
  if (op == "yield") return decode_request<YieldRequest>(envelope, who, top_level);
  if (op == "noise") return decode_request<NoiseRequest>(envelope, who, top_level);
  if (op == "timer") return decode_request<TimerRequest>(envelope, who, top_level);
  if (op == "corners") return decode_request<CornersRequest>(envelope, who, top_level);
  if (op == "export") return decode_request<ExportRequest>(envelope, who, top_level);
  if (op == "synthesis") return decode_request<SynthesisRequest>(envelope, who, top_level);
  if (op == "invalidate") return decode_request<InvalidateRequest>(envelope, who, top_level);
  if (op == "cache") return decode_request<CacheAdminRequest>(envelope, who, top_level);
  fail(who + ": unknown op '" + op +
           "' (expected techfile, charlib, fit, evaluate, buffer, yield, noise, "
           "timer, corners, export, synthesis, invalidate, cache, or batch)",
       ErrorCode::bad_input);
}

BatchRequest decode_batch(const JsonValue& envelope, const std::string& who) {
  JsonReader r(envelope, who);
  r.consume("op");
  r.consume("id");
  BatchRequest batch;
  r.field("api_version", batch.api_version);
  r.field("deadline_ms", batch.deadline_ms);
  const JsonValue* items = envelope.find("items");
  r.consume("items");
  r.finish();
  check_wire_version(batch.api_version, who);
  require(items != nullptr && items->kind == JsonValue::Kind::Array,
          who + ": field 'items' must be an array of request envelopes",
          ErrorCode::bad_input);
  for (size_t i = 0; i < items->items.size(); ++i) {
    const JsonValue& item = items->items[i];
    const std::string item_who = who + ".items[" + std::to_string(i) + "]";
    require(item.kind == JsonValue::Kind::Object,
            item_who + ": expected a JSON object", ErrorCode::bad_input);
    const JsonValue* op = item.find("op");
    require(op != nullptr && op->kind == JsonValue::Kind::String,
            item_who + ": field 'op' is required", ErrorCode::bad_input);
    require(op->text != kBatchOp, item_who + ": batches cannot nest batches",
            ErrorCode::bad_input);
    batch.items.push_back(decode_any(op->text, item, item_who, /*top_level=*/false));
  }
  return batch;
}

JsonValue parse_wire_json(const std::string& line) {
  try {
    return obs::parse_json(line);
  } catch (const Error& e) {
    // Whatever code the parser used, at the wire a malformed line is a
    // caller usage error, not a file-format problem.
    throw Error("wire: malformed JSON request line: " + e.message(),
                ErrorCode::bad_input);
  }
}

std::string result_json(const AnyResult& result) {
  return std::visit(
      [](const auto& value) {
        return struct_text(const_cast<std::decay_t<decltype(value)>&>(value));
      },
      result);
}

// One batch item entry: {"op":...,"ok":...,"result"/"error":{...}}.
std::string batch_item_json(const std::string& op, const Expected<AnyResult>& item) {
  JsonWriter w;
  w.field("op", op);
  w.field("ok", item.ok());
  if (item.ok())
    w.raw("result", result_json(item.value()));
  else
    w.raw("error", error_to_json(item.error()));
  return w.finish();
}

}  // namespace

std::string op_of(const AnyRequest& request) {
  return std::visit([](const auto& v) { return std::string(op_name(v)); }, request);
}

std::string op_of(const AnyResult& result) {
  return std::visit([](const auto& v) { return std::string(op_name(v)); }, result);
}

template <typename T>
std::string to_json(const T& value) {
  return struct_text(const_cast<T&>(value));
}

template <typename T>
T from_json_object(const obs::JsonValue& object, const std::string& who) {
  return decode_struct<T>(object, who);
}

template <typename T>
T from_json(const std::string& text, const std::string& who) {
  return decode_struct<T>(parse_wire_json(text), who);
}

// The codec is instantiated for exactly the facade surface; anything
// else fails to link, which keeps the wire contract enumerable.
#define PIM_WIRE_INSTANTIATE(T)                                                  \
  template std::string to_json<T>(const T&);                                     \
  template T from_json_object<T>(const obs::JsonValue&, const std::string&);     \
  template T from_json<T>(const std::string&, const std::string&)
PIM_WIRE_INSTANTIATE(LinkSpec);
PIM_WIRE_INSTANTIATE(TechfileRequest);
PIM_WIRE_INSTANTIATE(CharlibRequest);
PIM_WIRE_INSTANTIATE(FitRequest);
PIM_WIRE_INSTANTIATE(LinkEvalRequest);
PIM_WIRE_INSTANTIATE(BufferRequest);
PIM_WIRE_INSTANTIATE(YieldRequest);
PIM_WIRE_INSTANTIATE(NoiseRequest);
PIM_WIRE_INSTANTIATE(TimerRequest);
PIM_WIRE_INSTANTIATE(CornersRequest);
PIM_WIRE_INSTANTIATE(ExportRequest);
PIM_WIRE_INSTANTIATE(SynthesisRequest);
PIM_WIRE_INSTANTIATE(InvalidateRequest);
PIM_WIRE_INSTANTIATE(CacheAdminRequest);
PIM_WIRE_INSTANTIATE(TechfileResult);
PIM_WIRE_INSTANTIATE(CharlibResult);
PIM_WIRE_INSTANTIATE(FitResult);
PIM_WIRE_INSTANTIATE(LinkEvalResult);
PIM_WIRE_INSTANTIATE(BufferResult);
PIM_WIRE_INSTANTIATE(YieldResult);
PIM_WIRE_INSTANTIATE(NoiseResult);
PIM_WIRE_INSTANTIATE(TimerResult);
PIM_WIRE_INSTANTIATE(CornerTimingRow);
PIM_WIRE_INSTANTIATE(CornersResult);
PIM_WIRE_INSTANTIATE(ExportResult);
PIM_WIRE_INSTANTIATE(SynthesisResult);
PIM_WIRE_INSTANTIATE(InvalidateKindRow);
PIM_WIRE_INSTANTIATE(InvalidateResult);
PIM_WIRE_INSTANTIATE(CacheKindRow);
PIM_WIRE_INSTANTIATE(CacheAdminResult);
#undef PIM_WIRE_INSTANTIATE

std::string write_request_line(int64_t id, const AnyRequest& request) {
  return std::visit(
      [&](const auto& v) {
        JsonWriter w;
        w.field("op", std::string(op_name(v)));
        w.field("id", id);
        bind(w, const_cast<std::decay_t<decltype(v)>&>(v));
        return w.finish();
      },
      request);
}

std::string write_request_line(int64_t id, const BatchRequest& request) {
  JsonWriter w;
  w.field("op", std::string(kBatchOp));
  w.field("id", id);
  w.field("api_version", request.api_version);
  w.field("deadline_ms", request.deadline_ms);
  std::string items = "[";
  for (size_t i = 0; i < request.items.size(); ++i) {
    if (i > 0) items += ',';
    items += std::visit(
        [](const auto& v) {
          JsonWriter item;
          item.field("op", std::string(op_name(v)));
          bind(item, const_cast<std::decay_t<decltype(v)>&>(v));
          return item.finish();
        },
        request.items[i]);
  }
  items += ']';
  w.raw("items", items);
  return w.finish();
}

RequestLine request_from_envelope(const obs::JsonValue& envelope) {
  require(envelope.kind == JsonValue::Kind::Object,
          "wire: request line must be a JSON object", ErrorCode::bad_input);
  RequestLine out;
  if (const JsonValue* id = envelope.find("id")) {
    require(id->kind == JsonValue::Kind::Number &&
                std::nearbyint(id->number) == id->number,
            "wire: field 'id' must be an integer", ErrorCode::bad_input);
    out.has_id = true;
    out.id = static_cast<int64_t>(id->number);
  }
  const JsonValue* op = envelope.find("op");
  require(op != nullptr && op->kind == JsonValue::Kind::String,
          "wire: field 'op' is required", ErrorCode::bad_input);
  out.op = op->text;
  const std::string who = "wire." + out.op;
  if (out.op == kBatchOp) {
    out.is_batch = true;
    out.batch = decode_batch(envelope, who);
  } else {
    out.request = decode_any(out.op, envelope, who, /*top_level=*/true);
  }
  return out;
}

RequestLine parse_request_line(const std::string& line) {
  return request_from_envelope(parse_wire_json(line));
}

std::string write_result_line(const RequestLine& request,
                              const Expected<AnyResult>& result) {
  if (!result.ok())
    return write_error_line(request.has_id, request.id, request.op, result.error());
  JsonWriter w;
  if (request.has_id) w.field("id", request.id);
  w.field("op", request.op);
  w.field("ok", true);
  w.raw("result", result_json(result.value()));
  return w.finish();
}

std::string write_batch_result_line(const RequestLine& request,
                                    const Expected<BatchResult>& result) {
  if (!result.ok())
    return write_error_line(request.has_id, request.id, request.op, result.error());
  const BatchResult& batch = result.value();
  JsonWriter w;
  if (request.has_id) w.field("id", request.id);
  w.field("op", request.op);
  w.field("ok", true);
  std::string body = "{\"failed\":" + std::to_string(batch.failed) +
                     ",\"partial_items\":" + std::to_string(batch.partial_items) +
                     ",\"partial\":" + (batch.partial ? "true" : "false") +
                     ",\"items\":[";
  for (size_t i = 0; i < batch.items.size(); ++i) {
    if (i > 0) body += ',';
    // The op comes from the request item (the result, when it errored,
    // has no alternative to name); sizes are equal by run_batch's
    // contract, with a defensive fallback just in case.
    const std::string op = i < request.batch.items.size()
                               ? op_of(request.batch.items[i])
                               : std::string("?");
    body += batch_item_json(op, batch.items[i]);
  }
  body += "]}";
  w.raw("result", body);
  return w.finish();
}

std::string write_error_line(bool has_id, int64_t id, const std::string& op,
                             const Error& error) {
  JsonWriter w;
  if (has_id) w.field("id", id);
  if (!op.empty()) w.field("op", op);
  w.field("ok", false);
  w.raw("error", error_to_json(error));
  return w.finish();
}

std::string error_to_json(const Error& error) {
  JsonWriter w;
  w.field("code", std::string(error_code_name(error.code())));
  w.field("exit_code", exit_code_for(error.code()));
  w.field("message", error.message());
  std::string context = "[";
  for (size_t i = 0; i < error.context().size(); ++i) {
    if (i > 0) context += ',';
    context += json_quote(error.context()[i]);
  }
  context += ']';
  w.raw("context", context);
  return w.finish();
}

int exit_code_for(ErrorCode code) {
  switch (code) {
    case ErrorCode::bad_input: return 2;
    case ErrorCode::internal: return 4;
    case ErrorCode::deadline_exceeded:
    case ErrorCode::cancelled: return 5;
    default: return 3;
  }
}

std::string execute_line(const std::string& line) {
  return execute_line(line,
                      [](bool, const std::function<void()>& dispatch) { dispatch(); });
}

std::string execute_line(
    const std::string& line,
    const std::function<void(bool uses_deadline, const std::function<void()>& dispatch)>&
        around) {
  bool has_id = false;
  int64_t id = 0;
  std::string op;
  try {
    const JsonValue envelope = parse_wire_json(line);
    // Best-effort identity before the strict decode, so even a decode
    // error echoes whatever id/op the caller sent.
    if (envelope.kind == JsonValue::Kind::Object) {
      if (const JsonValue* v = envelope.find("id");
          v != nullptr && v->kind == JsonValue::Kind::Number &&
          std::nearbyint(v->number) == v->number) {
        has_id = true;
        id = static_cast<int64_t>(v->number);
      }
      if (const JsonValue* v = envelope.find("op");
          v != nullptr && v->kind == JsonValue::Kind::String)
        op = v->text;
    }
    const RequestLine request = request_from_envelope(envelope);
    const auto deadline_of = [](const AnyRequest& r) {
      return std::visit([](const auto& v) { return v.deadline_ms > 0; }, r);
    };
    bool uses_deadline = false;
    if (request.is_batch) {
      uses_deadline = request.batch.deadline_ms > 0;
      for (const AnyRequest& item : request.batch.items)
        uses_deadline = uses_deadline || deadline_of(item);
    } else {
      uses_deadline = deadline_of(request.request);
    }
    std::string response;
    around(uses_deadline, [&] {
      response = request.is_batch
                     ? write_batch_result_line(request, run_batch(request.batch))
                     : write_result_line(request, run_any(request.request));
    });
    return response;
  } catch (const Error& e) {
    return write_error_line(has_id, id, op, e);
  } catch (const std::exception& e) {
    return write_error_line(has_id, id, op,
                            Error(std::string("wire: ") + e.what(), ErrorCode::internal));
  }
}

}  // namespace pim::api::wire
