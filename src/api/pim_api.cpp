#include "api/pim_api.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "buffering/optimize.hpp"
#include "cache/invalidate.hpp"
#include "cache/store.hpp"
#include "charlib/coeffs_io.hpp"
#include "cosi/mesh.hpp"
#include "deadline/deadline.hpp"
#include "obs/metrics.hpp"
#include "cosi/specfile.hpp"
#include "cosi/synthesis.hpp"
#include "cosi/testcases.hpp"
#include "liberty/libertyfile.hpp"
#include "models/baseline.hpp"
#include "models/corners.hpp"
#include "models/proposed.hpp"
#include "obs/trace.hpp"
#include "spice/deck.hpp"
#include "sta/calibrated.hpp"
#include "sta/corners.hpp"
#include "sta/nldm_timer.hpp"
#include "sta/noise.hpp"
#include "sta/signoff.hpp"
#include "sta/spef.hpp"
#include "tech/techfile.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/units.hpp"
#include "variation/variation.hpp"

namespace pim::api {
namespace {

using namespace pim::unit;

void check_version(int version, const char* who) {
  require(version == kApiVersion,
          std::string(who) + ": request api_version " + std::to_string(version) +
              " does not match pim::api::kApiVersion " + std::to_string(kApiVersion),
          ErrorCode::bad_input);
}

// Uniform exception boundary: the facade never throws — every failure
// comes back as an Expected error carrying the ErrorCode taxonomy.
//
// Each run_* call is also a metrics scope: the registry is zeroed on
// entry so a long-lived process making successive facade calls (a
// daemon, a notebook) gets per-request counters/timers in its ledger and
// profile snapshots instead of an accumulation over all prior requests.
// The trace buffer is left alone — span capture belongs to whoever
// enabled tracing (the CLI's span around the whole command must survive
// the call).
//
// And a deadline scope: the request's deadline_ms budget is armed for
// exactly the duration of the body (nested scopes keep the tighter
// deadline); on exit the deadline.remaining_ns gauge is force-set so the
// ledger records how much budget a truncated run had left.
template <typename R, typename F>
Expected<R> guarded(const char* who, int64_t deadline_ms, F&& body) {
  try {
    obs::registry().reset();
    deadline::Scope budget(deadline_ms);
    return body();
  } catch (const Error& e) {
    return Expected<R>(e.with_context(std::string("in pim::api::") + who));
  } catch (const std::exception& e) {
    return Expected<R>(
        Error(std::string(who) + ": " + e.what(), ErrorCode::internal));
  }
}

// Every entry point resolves its tech spec — a built-in node name or a
// .tech file path — to a stable base descriptor. File specs re-read the
// bytes per call, so an on-disk edit is visible to the very next request
// (the invalidation flow depends on this).
const Technology& base_tech_of(const std::string& tech, const char* who) {
  require(!tech.empty(), std::string(who) + ": tech is required", ErrorCode::bad_input);
  return technology_from_spec(tech);
}

DesignStyle style_of(const std::string& style) {
  if (style == "SS") return DesignStyle::SingleSpacing;
  if (style == "DS") return DesignStyle::DoubleSpacing;
  if (style == "SH") return DesignStyle::Shielded;
  fail("link style must be SS, DS, or SH", ErrorCode::bad_input);
}

int resolved_repeaters(const LinkSpec& link) {
  if (link.repeaters > 0) return link.repeaters;
  return static_cast<int>(std::max(1L, std::lround(link.length_mm)));
}

// Resolves a corner name against the base descriptor's scenario set. The
// empty spec is the nominal corner, so requests that never mention
// corners run the exact flow they always did (all derating factors 1.0).
Corner corner_of(const Technology& base, const std::string& spec) {
  if (spec.empty()) return Corner{};
  return base.scenario_set().corner(spec);
}

LinkContext context_of(const Technology& base, const LinkSpec& link, const char* who) {
  require(link.length_mm > 0.0, std::string(who) + ": link.length_mm must be positive",
          ErrorCode::bad_input);
  LinkContext ctx;
  ctx.length = link.length_mm * mm;
  ctx.style = style_of(link.style);
  ctx.input_slew = link.input_slew_ps * ps;
  ctx.frequency = base.clock_frequency;
  return ctx;
}

LinkDesign design_of(const LinkSpec& link) {
  LinkDesign design;
  design.drive = link.drive;
  design.num_repeaters = resolved_repeaters(link);
  return design;
}

// All facade fits go through the resident tier (sta/calibrated.hpp): a
// warm call skips the store read, the payload parse, and the coefficient
// re-hash while preserving every counter/provenance side effect of the
// store path. Call sites that need a value copy (run_fit, synthesis
// model construction) use this; the serving hot paths below share the
// resident model directly.
TechnologyFit fit_of(const Technology& base, const Corner& corner,
                     const std::string& coeffs_path) {
  obs::TraceSpan span("api.calibrate");
  return *resident_corner_fit(base, corner, coeffs_path).fit;
}

// Resident model tier over the resident fits. Constructing a
// ProposedModel re-hashes the coefficient tables for its cache
// signature — two orders of magnitude more work than the sub-microsecond
// evaluate a serving hot loop does per request — so warm requests share
// one immutable instance. Keyed by the fit's content-cache key: two
// requests share a model exactly when they would resolve the same fit
// (tech content at corner + corner id + deck knobs). The memo follows
// the resident fits' bypass rule (cache off / fault harness armed), and
// the Technology reference the model binds is registry-stable for the
// process lifetime (tech/technology.cpp), so a shared model never
// dangles.
std::mutex& model_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, std::shared_ptr<const ProposedModel>>& model_memo() {
  static std::map<std::string, std::shared_ptr<const ProposedModel>> m;
  return m;
}

std::shared_ptr<const ProposedModel> resident_model_of(const Technology& base,
                                                       const Corner& corner,
                                                       const std::string& coeffs_path) {
  obs::TraceSpan span("api.calibrate");
  // Resolved first even on a memo hit: this publishes the fit key into
  // the enclosing provenance scope, so downstream cached wrappers
  // (buffering, Monte-Carlo) keep their upstream fit edge whichever tier
  // served the model.
  const ResidentFit rf = resident_corner_fit(base, corner, coeffs_path);
  const bool memo_enabled = cache::mode() != cache::Mode::Off && !fault::armed();
  if (memo_enabled) {
    std::lock_guard<std::mutex> lock(model_mutex());
    const auto it = model_memo().find(rf.key_hex);
    if (it != model_memo().end()) {
      PIM_COUNT("model.resident.hit");
      return it->second;
    }
  }
  auto model = std::make_shared<const ProposedModel>(corner_technology(base, corner),
                                                     *rf.fit);
  if (memo_enabled) {
    std::lock_guard<std::mutex> lock(model_mutex());
    model_memo()[rf.key_hex] = model;
  }
  return model;
}

SocSpec spec_of(const std::string& which, const char* who) {
  require(!which.empty(),
          std::string(who) + ": spec is required (dvopd, vproc, mpeg4, mwd, or a .soc file)",
          ErrorCode::bad_input);
  if (which == "dvopd") return dvopd_spec();
  if (which == "vproc") return vproc_spec();
  if (which == "mpeg4") return mpeg4_spec();
  if (which == "mwd") return mwd_spec();
  return load_soc_spec(which);
}

std::unique_ptr<InterconnectModel> model_of(const std::string& name,
                                            const Technology& tech,
                                            const std::string& coeffs_path) {
  if (name == "proposed")
    return std::make_unique<ProposedModel>(tech, fit_of(tech, Corner{}, coeffs_path));
  if (name == "bakoglu") return std::make_unique<BakogluModel>(tech);
  if (name == "pamunuwa") return std::make_unique<PamunuwaModel>(tech);
  fail("model must be proposed, bakoglu, or pamunuwa", ErrorCode::bad_input);
}

}  // namespace

Expected<TechfileResult> run_techfile(const TechfileRequest& request) {
  return guarded<TechfileResult>("run_techfile", request.deadline_ms, [&] {
    check_version(request.api_version, "run_techfile");
    TechfileResult result;
    result.text = write_techfile(base_tech_of(request.tech, "run_techfile"));
    return result;
  });
}

Expected<CharlibResult> run_charlib(const CharlibRequest& request) {
  return guarded<CharlibResult>("run_charlib", request.deadline_ms, [&] {
    check_version(request.api_version, "run_charlib");
    const Technology& base = base_tech_of(request.tech, "run_charlib");
    const Technology& tech = corner_technology(base, corner_of(base, request.corner));
    CharacterizationOptions opt;
    if (!request.drives.empty()) opt.drives = request.drives;
    const CellLibrary lib = characterize_library(tech, opt);
    CharlibResult result;
    result.partial = lib.partial();
    result.liberty_text = write_liberty(lib);
    if (request.want_fit)
      result.fit_text = write_fit(calibrate_composition(tech, fit_technology(tech, lib)));
    return result;
  });
}

Expected<FitResult> run_fit(const FitRequest& request) {
  return guarded<FitResult>("run_fit", request.deadline_ms, [&] {
    check_version(request.api_version, "run_fit");
    const Technology& base = base_tech_of(request.tech, "run_fit");
    FitResult result;
    result.fit_text =
        write_fit(fit_of(base, corner_of(base, request.corner), request.coeffs_path));
    return result;
  });
}

Expected<LinkEvalResult> run_evaluate(const LinkEvalRequest& request) {
  return guarded<LinkEvalResult>("run_evaluate", request.deadline_ms, [&] {
    check_version(request.api_version, "run_evaluate");
    const Technology& base = base_tech_of(request.link.tech, "run_evaluate");
    const Corner corner = corner_of(base, request.link.corner);
    const Technology& tech = corner_technology(base, corner);
    const LinkContext ctx = context_of(base, request.link, "run_evaluate");
    const LinkDesign design = design_of(request.link);
    const std::shared_ptr<const ProposedModel> model =
        resident_model_of(base, corner, request.link.coeffs_path);
    const LinkEstimate est = model->evaluate(ctx, design);
    LinkEvalResult result;
    result.tech_name = tech.name;
    result.style_name = design_style_name(ctx.style);
    result.repeaters = design.num_repeaters;
    result.miller_factor = design.miller_factor;
    result.delay_ps = est.delay / ps;
    result.output_slew_ps = est.output_slew / ps;
    result.power_mw = est.total_power() / mW;
    result.area_um2 = est.repeater_area / um2;
    if (request.golden) {
      const SignoffResult golden = signoff_link(tech, ctx, design);
      result.has_golden = true;
      result.golden_delay_ps = golden.delay / ps;
      result.golden_slew_ps = golden.output_slew / ps;
      result.golden_nodes = golden.node_count;
      result.model_error_pct = 100.0 * (est.delay - golden.delay) / golden.delay;
    }
    return result;
  });
}

Expected<BufferResult> run_buffer(const BufferRequest& request) {
  return guarded<BufferResult>("run_buffer", request.deadline_ms, [&] {
    check_version(request.api_version, "run_buffer");
    const Technology& base = base_tech_of(request.link.tech, "run_buffer");
    const Corner corner = corner_of(base, request.link.corner);
    const LinkContext ctx = context_of(base, request.link, "run_buffer");
    BufferingOptions opt;
    opt.weight = request.weight;
    if (request.budget_ps > 0.0) opt.max_delay = request.budget_ps * ps;
    const std::shared_ptr<const ProposedModel> model =
        resident_model_of(base, corner, request.link.coeffs_path);
    const BufferingResult best = optimize_buffering_cached(*model, ctx, opt);
    BufferResult result;
    result.feasible = best.feasible;
    result.evaluations = best.evaluations;
    if (best.feasible) {
      result.kind = cell_kind_name(best.design.kind);
      result.drive = best.design.drive;
      result.repeaters = best.design.num_repeaters;
      result.miller_factor = best.design.miller_factor;
      result.delay_ps = best.estimate.delay / ps;
      result.power_mw = best.estimate.total_power() / mW;
      result.area_um2 = best.estimate.repeater_area / um2;
    }
    return result;
  });
}

Expected<YieldResult> run_yield(const YieldRequest& request) {
  return guarded<YieldResult>("run_yield", request.deadline_ms, [&] {
    check_version(request.api_version, "run_yield");
    require(request.samples >= 1, "run_yield: samples must be at least 1",
            ErrorCode::bad_input);
    const Technology& base = base_tech_of(request.link.tech, "run_yield");
    const Corner corner = corner_of(base, request.link.corner);
    const LinkContext ctx = context_of(base, request.link, "run_yield");
    const LinkDesign design = design_of(request.link);
    const std::shared_ptr<const ProposedModel> model =
        resident_model_of(base, corner, request.link.coeffs_path);
    const MonteCarloResult mc = monte_carlo_link_at_corner(
        *model, corner, ctx, design, request.samples, request.seed);
    YieldResult result;
    result.samples = static_cast<int>(mc.delays.size());
    result.failed_samples = mc.failed_samples;
    result.requested_samples = mc.requested_samples;
    result.nominal_delay_ps = mc.nominal_delay / ps;
    result.mean_delay_ps = mc.mean_delay / ps;
    result.sigma_delay_ps = mc.sigma_delay / ps;
    result.p90_delay_ps = mc.delay_quantile(0.9) / ps;
    result.p99_delay_ps = mc.delay_quantile(0.99) / ps;
    result.yield_at_nominal = mc.yield_at(mc.nominal_delay);
    result.yield_ci95 = mc.yield_ci95(mc.nominal_delay);
    result.partial = mc.partial;
    return result;
  });
}

Expected<NoiseResult> run_noise(const NoiseRequest& request) {
  return guarded<NoiseResult>("run_noise", request.deadline_ms, [&] {
    check_version(request.api_version, "run_noise");
    const Technology& base = base_tech_of(request.link.tech, "run_noise");
    const Corner corner = corner_of(base, request.link.corner);
    const Technology& tech = corner_technology(base, corner);
    const LinkContext ctx = context_of(base, request.link, "run_noise");
    LinkDesign design = design_of(request.link);
    design.num_repeaters = 1;  // noise is per wire segment
    const ResidentFit resident = resident_corner_fit(base, corner, request.link.coeffs_path);
    const TechnologyFit& fit = *resident.fit;
    const NoiseCalibration cal = calibrate_noise(tech, fit);
    const double golden = golden_noise_peak(tech, ctx, design);
    const double model = noise_peak_model(tech, fit, ctx, design, cal.kappa_n);
    NoiseResult result;
    result.tech_name = tech.name;
    result.style_name = design_style_name(ctx.style);
    result.golden_peak_mv = golden * 1e3;
    result.golden_peak_pct_vdd = 100.0 * golden / tech.vdd;
    result.model_peak_mv = model * 1e3;
    result.model_error_pct = 100.0 * (model - golden) / std::max(golden, 1e-9);
    return result;
  });
}

Expected<TimerResult> run_timer(const TimerRequest& request) {
  return guarded<TimerResult>("run_timer", request.deadline_ms, [&] {
    check_version(request.api_version, "run_timer");
    const Technology& base = base_tech_of(request.link.tech, "run_timer");
    const Technology& tech = corner_technology(base, corner_of(base, request.link.corner));
    const LinkContext ctx = context_of(base, request.link, "run_timer");
    const LinkDesign design = design_of(request.link);
    CharacterizationOptions copt;
    copt.drives = {design.drive};
    copt.buffers = design.kind == CellKind::Buffer;
    copt.inverters = design.kind == CellKind::Inverter;
    const CellLibrary lib = characterize_library(tech, copt);
    const NldmTimerResult awe = nldm_link_delay(lib, tech, ctx, design);
    NldmTimerOptions elm;
    elm.wire = WireDelayMethod::Elmore;
    const NldmTimerResult elmore = nldm_link_delay(lib, tech, ctx, design, elm);
    TimerResult result;
    result.tech_name = tech.name;
    result.repeaters = design.num_repeaters;
    result.awe_delay_ps = awe.delay / ps;
    result.awe_slew_ps = awe.output_slew / ps;
    result.elmore_delay_ps = elmore.delay / ps;
    result.partial = lib.partial();
    return result;
  });
}

Expected<CornersResult> run_corners(const CornersRequest& request) {
  return guarded<CornersResult>("run_corners", request.deadline_ms, [&] {
    check_version(request.api_version, "run_corners");
    const Technology& tech = base_tech_of(request.link.tech, "run_corners");
    const LinkContext ctx = context_of(tech, request.link, "run_corners");
    const LinkDesign design = design_of(request.link);
    const std::vector<Corner> corners = tech.scenario_set().resolve(request.corners);
    const CornerModelSet set =
        corner_model_set(tech, corners, request.link.coeffs_path);
    CornerSignoffOptions opt;
    opt.target_period = request.target_period_ps * ps;
    const CornerSignoffResult signoff = signoff_corners(set, ctx, design, opt);
    CornersResult result;
    result.tech_name = tech.name;
    result.style_name = design_style_name(ctx.style);
    result.repeaters = design.num_repeaters;
    result.target_period_ps = signoff.target_period / ps;
    for (const CornerTiming& row : signoff.corners) {
      CornerTimingRow out;
      out.corner = row.corner.name;
      out.delay_ps = row.delay / ps;
      out.output_slew_ps = row.output_slew / ps;
      out.slack_ps = row.slack / ps;
      out.noise_peak_mv = row.noise_peak * 1e3;
      result.corners.push_back(out);
    }
    result.worst_corner = signoff.worst().corner.name;
    result.worst_slack_ps = signoff.worst_slack() / ps;
    return result;
  });
}

Expected<ExportResult> run_export(const ExportRequest& request) {
  return guarded<ExportResult>("run_export", request.deadline_ms, [&] {
    check_version(request.api_version, "run_export");
    const Technology& base = base_tech_of(request.link.tech, "run_export");
    const Technology& tech = corner_technology(base, corner_of(base, request.link.corner));
    const LinkContext ctx = context_of(base, request.link, "run_export");
    const LinkDesign design = design_of(request.link);
    ExportResult result;
    if (request.want_deck) {
      const LinkNetlist net = build_link_netlist(tech, ctx, design);
      result.deck_text = write_deck(net.circuit);
      result.deck_nodes = net.circuit.node_count();
    }
    if (request.want_spef || !request.want_deck)
      result.spef_text = write_spef(tech, ctx, design);
    return result;
  });
}

Expected<SynthesisResult> run_synthesis(const SynthesisRequest& request) {
  return guarded<SynthesisResult>("run_synthesis", request.deadline_ms, [&] {
    check_version(request.api_version, "run_synthesis");
    const Technology& base = base_tech_of(request.tech, "run_synthesis");
    const SocSpec spec = spec_of(request.spec, "run_synthesis");
    const std::unique_ptr<InterconnectModel> model = [&]() -> std::unique_ptr<InterconnectModel> {
      if (request.corners.empty()) return model_of(request.model, base, request.coeffs_path);
      // Worst-corner synthesis: every link the optimizer sizes is
      // evaluated at the per-metric worst case over the corner set, so
      // the synthesized NoC closes at every corner of it.
      require(request.model == "proposed",
              "run_synthesis: --corners requires the proposed model (baselines carry "
              "no per-corner calibration)",
              ErrorCode::bad_input);
      const std::vector<Corner> corners =
          base.scenario_set().resolve(request.corners);
      return std::make_unique<WorstCornerModel>(
          corner_model_set(base, corners, request.coeffs_path));
    }();
    const NocSynthesisResult r = [&] {
      if (request.mesh) {
        MeshOptions shape;
        shape.rows = request.rows;
        shape.cols = request.cols;
        return build_mesh_noc(spec, *model, {}, shape);
      }
      require(request.rows == 0 && request.cols == 0,
              "run_synthesis: rows/cols only apply to mesh construction",
              ErrorCode::bad_input);
      return synthesize_noc(spec, *model);
    }();
    const NocMetrics& m = r.metrics;
    SynthesisResult result;
    result.spec_name = spec.name;
    result.tech_name = base.name;
    result.model_name = model->name();
    result.dynamic_power_mw = m.dynamic_power() / mW;
    result.leakage_power_mw = m.leakage_power() / mW;
    result.worst_link_delay_ps = m.worst_link_delay / ps;
    result.delay_budget_ps = r.delay_budget / ps;
    result.area_mm2 = m.total_area() / mm2;
    result.num_links = m.num_links;
    result.num_routers = m.num_routers;
    result.avg_hops = m.avg_hops;
    result.max_hops = m.max_hops;
    result.merges_applied = r.merges_applied;
    result.partial = r.partial;
    if (request.want_dot) result.dot_text = to_dot(r.architecture);
    return result;
  });
}

Expected<InvalidateResult> run_invalidate(const InvalidateRequest& request) {
  return guarded<InvalidateResult>("run_invalidate", request.deadline_ms, [&] {
    check_version(request.api_version, "run_invalidate");
    const Technology& base = base_tech_of(request.tech, "run_invalidate");
    const std::vector<cache::Facet> changed = technology_facets(base);
    const std::vector<cache::Manifest> manifests = cache::scan_manifests(cache::dir());
    const cache::DirtyCone cone = cache::dirty_cone(manifests, changed);
    InvalidateResult result;
    result.manifests = static_cast<int>(manifests.size());
    result.dirty_keys = static_cast<int>(cone.dirty.size());
    result.reuse_keys = static_cast<int>(cone.reuse.size());
    // Ledger-visible proof of the delta: how much of the cached graph the
    // edit stales vs preserves (docs/observability.md).
    PIM_COUNT_N("cache.dirty.keys", result.dirty_keys);
    PIM_COUNT_N("cache.reuse.keys", result.reuse_keys);
    std::map<std::string, InvalidateKindRow> by_kind;
    for (const cache::CacheKey& key : cone.dirty) ++by_kind[key.kind].dirty;
    for (const cache::CacheKey& key : cone.reuse) ++by_kind[key.kind].reuse;
    for (auto& [kind, row] : by_kind) {
      row.kind = kind;
      result.kinds.push_back(row);
    }
    if (request.apply) {
      result.applied = true;
      result.evicted =
          static_cast<int>(cache::evict_keys(cache::Store::global(), cone.dirty));
    }
    return result;
  });
}

Expected<CacheAdminResult> run_cache_admin(const CacheAdminRequest& request) {
  return guarded<CacheAdminResult>("run_cache_admin", request.deadline_ms, [&] {
    check_version(request.api_version, "run_cache_admin");
    CacheAdminResult result;
    result.action = request.action;
    result.dir = cache::dir();
    if (request.action == "stats") {
      for (const cache::KindStats& k : cache::cache_stats(result.dir)) {
        CacheKindRow row;
        row.kind = k.kind;
        row.entries = static_cast<int64_t>(k.entries);
        row.payload_bytes = static_cast<int64_t>(k.payload_bytes);
        row.manifest_bytes = static_cast<int64_t>(k.manifest_bytes);
        result.total_bytes += row.payload_bytes + row.manifest_bytes;
        result.kinds.push_back(row);
      }
      return result;
    }
    if (request.action == "prune") {
      require(request.budget_bytes >= 0,
              "run_cache_admin: prune budget_bytes must be non-negative",
              ErrorCode::bad_input);
      const cache::PruneResult pruned = cache::prune_cache(
          result.dir, static_cast<size_t>(request.budget_bytes));
      result.scanned_entries = static_cast<int64_t>(pruned.scanned_entries);
      result.removed_entries = static_cast<int64_t>(pruned.removed_entries);
      result.removed_bytes = static_cast<int64_t>(pruned.removed_bytes);
      result.kept_bytes = static_cast<int64_t>(pruned.kept_bytes);
      // Pruned disk entries may still be in the memory LRU; dropping it
      // keeps the two tiers consistent with the budget just enforced.
      if (pruned.removed_entries > 0) cache::Store::global().clear_memory();
      return result;
    }
    if (request.action == "verify") {
      const cache::VerifyResult verified = cache::verify_cache(result.dir);
      result.entries = static_cast<int64_t>(verified.entries);
      result.manifests = static_cast<int64_t>(verified.manifests);
      result.orphan_manifests = static_cast<int64_t>(verified.orphan_manifests);
      result.unmanifested_entries = static_cast<int64_t>(verified.unmanifested_entries);
      result.corrupt_manifests = static_cast<int64_t>(verified.corrupt_manifests);
      result.scrubbed = static_cast<int64_t>(verified.scrubbed());
      return result;
    }
    fail("run_cache_admin: action must be stats, prune, or verify",
         ErrorCode::bad_input);
  });
}

namespace {

// One overload per AnyRequest alternative, so run_any dispatch is a
// compile-time total function — adding a variant member without a
// dispatch overload fails to build instead of failing at runtime.
Expected<TechfileResult> dispatch_one(const TechfileRequest& r) { return run_techfile(r); }
Expected<CharlibResult> dispatch_one(const CharlibRequest& r) { return run_charlib(r); }
Expected<FitResult> dispatch_one(const FitRequest& r) { return run_fit(r); }
Expected<LinkEvalResult> dispatch_one(const LinkEvalRequest& r) { return run_evaluate(r); }
Expected<BufferResult> dispatch_one(const BufferRequest& r) { return run_buffer(r); }
Expected<YieldResult> dispatch_one(const YieldRequest& r) { return run_yield(r); }
Expected<NoiseResult> dispatch_one(const NoiseRequest& r) { return run_noise(r); }
Expected<TimerResult> dispatch_one(const TimerRequest& r) { return run_timer(r); }
Expected<CornersResult> dispatch_one(const CornersRequest& r) { return run_corners(r); }
Expected<ExportResult> dispatch_one(const ExportRequest& r) { return run_export(r); }
Expected<SynthesisResult> dispatch_one(const SynthesisRequest& r) { return run_synthesis(r); }
Expected<InvalidateResult> dispatch_one(const InvalidateRequest& r) { return run_invalidate(r); }
Expected<CacheAdminResult> dispatch_one(const CacheAdminRequest& r) { return run_cache_admin(r); }

// True when the result alternative carries a partial flag and it is set.
bool is_partial(const AnyResult& result) {
  return std::visit(
      [](const auto& value) {
        if constexpr (requires { value.partial; })
          return value.partial;
        else
          return false;
      },
      result);
}

}  // namespace

Expected<AnyResult> run_any(const AnyRequest& request) {
  return std::visit(
      [](const auto& item) -> Expected<AnyResult> {
        auto out = dispatch_one(item);
        if (!out) return Expected<AnyResult>(out.error());
        return Expected<AnyResult>(AnyResult(out.take()));
      },
      request);
}

Expected<BatchResult> run_batch(const BatchRequest& request) {
  return guarded<BatchResult>("run_batch", request.deadline_ms, [&] {
    check_version(request.api_version, "run_batch");
    BatchResult result;
    const size_t n = request.items.size();
    result.items.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      // Shared-budget poll between items: once the batch budget expires
      // (or a cancel lands), every not-yet-started item is answered with
      // the typed stop error without doing work, so a stopped batch
      // still returns exactly n order-aligned entries in bounded time.
      // The item being executed when the stop lands degrades by its own
      // flow's partial semantics, like a direct call would.
      const deadline::StopReason stop = deadline::check();
      if (stop != deadline::StopReason::none) {
        result.partial = true;
        for (size_t j = i; j < n; ++j) {
          result.items.emplace_back(
              deadline::stop_error(stop, j, n)
                  .with_context("batch item " + std::to_string(j) + " never started"));
          ++result.failed;
        }
        break;
      }
      result.items.push_back(run_any(request.items[i]));
      const Expected<AnyResult>& out = result.items.back();
      if (!out.ok()) {
        ++result.failed;
        const ErrorCode code = out.error().code();
        if (code == ErrorCode::deadline_exceeded || code == ErrorCode::cancelled)
          result.partial = true;
      } else if (is_partial(out.value())) {
        ++result.partial_items;
        result.partial = true;
      }
    }
    return result;
  });
}

}  // namespace pim::api
