// The paper's proposed predictive model (§III), assembled from the
// regression-fitted coefficients of pim::charlib:
//
//   stage delay  = i(s) + rd(s, w_r) * c_l            (repeater, §III-A)
//                + r_w (0.4 c_g + (xi/2) c_c + 0.7 c_i)  (wire, §III-B)
//   slew chains through s_o = b0 + b1 s + b2 c_l / w_r,
//   wire resistance includes scattering + barrier corrections,
//   power = leakage (linear-in-width fits) + alpha C V^2 f with
//   C = c_i + c_g + c_c (§III-C),
//   area = regressed repeater area + bus track area (§III-C).
//
// The chain is evaluated for both launch polarities (an inverter chain
// alternates rise/fall) and the worst case is reported, matching how a
// sign-off timer would be queried.
#pragma once

#include "charlib/fit.hpp"
#include "models/model.hpp"

namespace pim {

/// The paper's closed-form link evaluation as a free function over raw
/// (technology, fit) coefficients. ProposedModel::evaluate forwards
/// here; Monte-Carlo sampling calls it directly on perturbed fit copies
/// so the hot loop skips per-sample model construction — a ProposedModel
/// hashes its serialized fit (SHA-256) into a cache signature on
/// construction, which costs orders of magnitude more than one
/// evaluation.
LinkEstimate evaluate_link(const Technology& tech, const TechnologyFit& fit,
                           const LinkContext& context, const LinkDesign& design);

class ProposedModel final : public InterconnectModel {
 public:
  /// Binds the model to a technology and its fitted coefficients (the
  /// fit must have been produced for the same node).
  ProposedModel(const Technology& tech, TechnologyFit fit);

  const std::string& name() const override { return name_; }
  const Technology& tech() const override { return *tech_; }
  const TechnologyFit& fit() const { return fit_; }

  LinkEstimate evaluate(const LinkContext& context,
                        const LinkDesign& design) const override;

  /// "proposed/<tech>/<sha256 of the serialized fit>" — two instances
  /// share cached results exactly when their coefficients are
  /// bit-identical.
  std::string cache_signature() const override { return signature_; }

 private:
  const Technology* tech_;
  TechnologyFit fit_;
  std::string name_ = "proposed";
  std::string signature_;
};

}  // namespace pim
