// Baseline interconnect models the paper compares against (§II, Table II):
//
// BakogluModel — the "classic" model ([2] in the paper) as used by the
// original COSI-OCC: first-principles drive resistance (vdd / Ion,
// slew-independent), wire resistance without scattering or barrier
// effects, NO coupling capacitance anywhere (delay or power), and a
// simplistic area estimate (active device area only, minimum wire pitch).
// This is the paper's "original model" column in Table III.
//
// PamunuwaModel — Pamunuwa et al. ([20]): adds the cross-talk-aware wire
// delay term with the worst-case switch factor, and counts coupling in
// dynamic power, but keeps the slew-independent first-principles drive
// resistance and the uncorrected wire resistivity.
//
// Neither model tracks slew; their reported output slew is a crude
// 2.2 R C estimate.
#pragma once

#include "models/model.hpp"

namespace pim {

class BakogluModel final : public InterconnectModel {
 public:
  explicit BakogluModel(const Technology& tech) : tech_(&tech) {}

  const std::string& name() const override { return name_; }
  const Technology& tech() const override { return *tech_; }

  LinkEstimate evaluate(const LinkContext& context,
                        const LinkDesign& design) const override;

  /// Baselines are pure functions of the built-in technology descriptor.
  std::string cache_signature() const override { return name_ + "/" + tech_->name; }

 private:
  const Technology* tech_;
  std::string name_ = "bakoglu";
};

class PamunuwaModel final : public InterconnectModel {
 public:
  explicit PamunuwaModel(const Technology& tech) : tech_(&tech) {}

  const std::string& name() const override { return name_; }
  const Technology& tech() const override { return *tech_; }

  LinkEstimate evaluate(const LinkContext& context,
                        const LinkDesign& design) const override;

  std::string cache_signature() const override { return name_ + "/" + tech_->name; }

 private:
  const Technology* tech_;
  std::string name_ = "pamunuwa";
};

/// First-principles switching resistance of a device of width `w`:
/// vdd / Ion(vdd). Shared by both baselines.
double first_principles_resistance(const MosfetParams& device, double vdd, double w);

}  // namespace pim
