#include "models/proposed.hpp"

#include <algorithm>

#include "cache/sha256.hpp"
#include "charlib/characterize.hpp"
#include "charlib/coeffs_io.hpp"
#include "models/area.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pim {

ProposedModel::ProposedModel(const Technology& tech, TechnologyFit fit)
    : tech_(&tech), fit_(std::move(fit)) {
  require(fit_.node == tech.node, "ProposedModel: fit/technology node mismatch");
  signature_ = "proposed/" + tech.name + "/" + cache::sha256_hex(write_fit(fit_));
}

LinkEstimate evaluate_link(const Technology& tech, const TechnologyFit& fit,
                           const LinkContext& ctx, const LinkDesign& design) {
  PIM_COUNT("model.link.evaluations");
  const LinkGeometry g(tech, ctx, design);
  const RepeaterSizing sz = repeater_sizing(tech, design.kind, design.drive);

  // Input-pin widths (the stage the wire actually drives): the output
  // stage for inverters, the quarter-size first stage for buffers.
  const double win_n = design.kind == CellKind::Inverter ? sz.wn_out : sz.wn_in;
  const double win_p = design.kind == CellKind::Inverter ? sz.wp_out : sz.wp_in;
  const double ci = fit.gamma * (win_n + win_p);

  const double mf = design.miller_factor;
  const CompositionWeights& comp = fit.composition(ctx.style);
  // Miller-weighted wire capacitance of one segment, and the effective
  // loads the calibrated composition applies to the two parts of the
  // drive resistance (see CompositionWeights).
  const double c_wire = g.seg_cap_ground + mf * g.seg_cap_couple_total;
  const double cl_rho0 = comp.kappa_c * c_wire + ci;
  const double cl_rho1 = comp.kappa_c1 * c_wire + ci;
  const double cl_slew = comp.kappa_c * c_wire + ci;  // load for the slew chain
  // Pamunuwa-form distributed wire delay for one segment, deweighted by
  // the calibrated composition factor.
  const double d_wire =
      comp.kappa_w * g.seg_res *
      (0.4 * g.seg_cap_ground + 0.5 * mf * g.seg_cap_couple_total + 0.7 * ci);

  LinkEstimate est;

  // Delay and slew, worst over the two launch polarities.
  double worst_delay = 0.0;
  double worst_out_slew = 0.0;
  for (const bool launch_rising : {true, false}) {
    double slew = ctx.input_slew;
    double total = 0.0;
    bool edge_rising = launch_rising;
    for (int k = 0; k < design.num_repeaters; ++k) {
      const bool out_rising =
          design.kind == CellKind::Inverter ? !edge_rising : edge_rising;
      const RepeaterEdgeFit& f = fit.edge_fit(design.kind, out_rising);
      const double wr = out_rising ? sz.wp_out : sz.wn_out;
      const double intrinsic = f.a0 + f.a1 * slew + f.a2 * slew * slew;
      const double d_repeater =
          intrinsic + (f.rho0 * cl_rho0 + f.rho1 * slew * cl_rho1) / wr;
      total += d_repeater + d_wire;
      slew = f.eval_out_slew(slew, cl_slew, wr);
      edge_rising = out_rising;
    }
    if (total > worst_delay) {
      worst_delay = total;
      worst_out_slew = slew;
    }
  }
  est.delay = worst_delay;
  est.output_slew = worst_out_slew;

  // Power (§III-C): every stage switches its input pin and its wire
  // segment; coupling counts fully (no Miller factor for energy).
  est.switched_cap = design.num_repeaters * ci +
                     ctx.length * (g.rc.cap_ground_per_m + 2.0 * g.rc.cap_couple_per_m);
  est.dynamic_power =
      ctx.activity * est.switched_cap * tech.vdd * tech.vdd * ctx.frequency;

  double leak_per_repeater = fit.leakage.eval_avg(sz.wn_out, sz.wp_out);
  if (design.kind == CellKind::Buffer)
    leak_per_repeater += fit.leakage.eval_avg(sz.wn_in, sz.wp_in);
  est.leakage_power = design.num_repeaters * leak_per_repeater;

  // Area (§III-C): regressed repeater area (per stage; buffers pay for
  // their first stage too) plus routed track area.
  double area_per_repeater = fit.area0 + fit.area1 * sz.wn_out;
  if (design.kind == CellKind::Buffer)
    area_per_repeater += fit.area0 + fit.area1 * sz.wn_in;
  est.repeater_area = design.num_repeaters * area_per_repeater;
  est.wire_area = bus_wire_area(tech, ctx.layer, ctx.style, 1, ctx.length);
  return est;
}

LinkEstimate ProposedModel::evaluate(const LinkContext& ctx,
                                     const LinkDesign& design) const {
  return evaluate_link(*tech_, fit_, ctx, design);
}

}  // namespace pim
