#include "models/area.hpp"

#include "util/error.hpp"

namespace pim {

double predictive_repeater_area(const Technology& tech, double wn, double wp) {
  require(wn > 0.0 && wp >= 0.0, "predictive_repeater_area: bad widths");
  const double usable = tech.area.row_height - 4.0 * tech.area.contact_pitch;
  require(usable > 0.0, "predictive_repeater_area: row height too small");
  const double fingers = (wn + wp) / usable;  // continuous: no layout yet to quantize
  const double cell_width = (fingers + 1.0) * tech.area.contact_pitch;
  return tech.area.row_height * cell_width;
}

double bus_wire_area(const Technology& tech, WireLayer layer, DesignStyle style,
                     int bits, double length) {
  require(bits >= 1, "bus_wire_area: need at least one bit");
  require(length > 0.0, "bus_wire_area: length must be positive");
  const WireRc rc = extract_wire(tech, layer, style, {});
  // rc.pitch already accounts for shielding (a signal pays for its shield
  // track); the paper's trailing + s_w closes the bus with one spacing.
  const WireLayerGeometry& g =
      layer == WireLayer::Global ? tech.interconnect.global : tech.interconnect.intermediate;
  const double cross_section = bits * rc.pitch + g.spacing;
  return cross_section * length;
}

}  // namespace pim
