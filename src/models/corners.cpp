#include "models/corners.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pim {

CornerModelSet::CornerModelSet(
    TechNode node, const std::vector<std::pair<Corner, TechnologyFit>>& fits) {
  require(!fits.empty(), "CornerModelSet: needs at least one corner",
          ErrorCode::bad_input);
  models_.reserve(fits.size());
  for (const auto& [corner, fit] : fits)
    models_.push_back({corner, ProposedModel(corner_technology(node, corner), fit)});
}

CornerModelSet::CornerModelSet(
    const Technology& base, const std::vector<std::pair<Corner, TechnologyFit>>& fits) {
  require(!fits.empty(), "CornerModelSet: needs at least one corner",
          ErrorCode::bad_input);
  models_.reserve(fits.size());
  for (const auto& [corner, fit] : fits)
    models_.push_back({corner, ProposedModel(corner_technology(base, corner), fit)});
}

const CornerModel& CornerModelSet::at(const std::string& name) const {
  for (const CornerModel& m : models_)
    if (m.corner.name == name) return m;
  fail("CornerModelSet: unknown corner '" + name + "'", ErrorCode::bad_input);
}

WorstCornerModel::WorstCornerModel(CornerModelSet set) : set_(std::move(set)) {
  signature_ = "worst(";
  for (const CornerModel& m : set_.models()) {
    if (signature_.back() != '(') signature_ += ',';
    signature_ += m.corner.name + "=" + m.model.cache_signature();
  }
  signature_ += ')';
}

LinkEstimate WorstCornerModel::evaluate(const LinkContext& context,
                                        const LinkDesign& design) const {
  LinkEstimate worst;
  bool first = true;
  for (const CornerModel& m : set_.models()) {
    const LinkEstimate e = m.model.evaluate(context, design);
    if (first) {
      worst = e;
      first = false;
      continue;
    }
    worst.delay = std::max(worst.delay, e.delay);
    worst.output_slew = std::max(worst.output_slew, e.output_slew);
    worst.switched_cap = std::max(worst.switched_cap, e.switched_cap);
    worst.dynamic_power = std::max(worst.dynamic_power, e.dynamic_power);
    worst.leakage_power = std::max(worst.leakage_power, e.leakage_power);
    // Area stays the reference corner's: layout does not vary with process.
  }
  return worst;
}

const CornerModel& WorstCornerModel::dominating(const LinkContext& context,
                                                const LinkDesign& design) const {
  const CornerModel* argmax = &set_.models().front();
  double max_delay = argmax->model.evaluate(context, design).delay;
  for (const CornerModel& m : set_.models()) {
    const double d = m.model.evaluate(context, design).delay;
    if (d > max_delay) {
      max_delay = d;
      argmax = &m;
    }
  }
  return *argmax;
}

}  // namespace pim
