// Buffered-link problem statement, design point, and estimate — the
// vocabulary shared by all interconnect models (proposed and baselines),
// the buffering optimizer, the sign-off analyzer, and the NoC synthesizer.
//
// A "link" is one bit-line of a global interconnect: a wire of a given
// length on a given layer/design style, divided into equal segments by
// repeaters of one kind and size.
#pragma once

#include "liberty/cell.hpp"
#include "tech/wire.hpp"

namespace pim {

/// Worst-case Miller switching factor of Pamunuwa et al. (neighbors
/// switching in opposition).
inline constexpr double kWorstCaseMiller = 1.51;

/// The problem: where the wire runs and how it is exercised.
struct LinkContext {
  WireLayer layer = WireLayer::Global;
  DesignStyle style = DesignStyle::SingleSpacing;
  double length = 0.0;       ///< end-to-end wire length [m]
  double input_slew = 100e-12;  ///< slew of the edge entering the first repeater [s]
  double activity = 0.15;    ///< switching activity factor for dynamic power
  double frequency = 1e9;    ///< clock frequency for dynamic power [Hz]
  WireModelOptions wire_options;  ///< resistivity-effect toggles (ablations)
};

/// The solution candidate: repeater kind/size/count and the cross-talk
/// assumption (miller_factor = kWorstCaseMiller for simultaneous opposing
/// neighbors, 0 for staggered insertion, paper §III-D).
struct LinkDesign {
  CellKind kind = CellKind::Inverter;
  int drive = 8;
  int num_repeaters = 1;
  double miller_factor = kWorstCaseMiller;
};

/// What a model predicts for one (context, design) pair.
struct LinkEstimate {
  double delay = 0.0;          ///< worst-case 50 % input-to-output delay [s]
  double output_slew = 0.0;    ///< slew at the far end [s]
  double switched_cap = 0.0;   ///< total capacitance switched per transition [F]
  double dynamic_power = 0.0;  ///< alpha * C * vdd^2 * f [W]
  double leakage_power = 0.0;  ///< state-averaged repeater leakage [W]
  double repeater_area = 0.0;  ///< [m^2]
  double wire_area = 0.0;      ///< routed track area [m^2]

  double total_power() const { return dynamic_power + leakage_power; }
  double total_area() const { return repeater_area + wire_area; }
};

/// Per-segment parasitics a model needs repeatedly; derived once from the
/// context by LinkGeometry.
struct LinkGeometry {
  WireRc rc;                ///< per-meter parasitics
  double segment_length = 0.0;
  double seg_res = 0.0;     ///< wire resistance of one segment [ohm]
  double seg_cap_ground = 0.0;
  double seg_cap_couple_total = 0.0;  ///< both neighbors combined [F]

  LinkGeometry(const Technology& tech, const LinkContext& ctx, const LinkDesign& design);
};

}  // namespace pim
