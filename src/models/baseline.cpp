#include "models/baseline.hpp"

#include <algorithm>

#include "charlib/characterize.hpp"
#include "models/area.hpp"
#include "util/error.hpp"

namespace pim {

double first_principles_resistance(const MosfetParams& device, double vdd, double w) {
  require(w > 0.0 && vdd > 0.0, "first_principles_resistance: bad arguments");
  const double ion = eval_alpha_power(device, w, vdd, vdd).ids;
  return vdd / ion;
}

namespace {

// Quantities both baselines share for a given design point.
struct BaselineStage {
  double rd;        // switching resistance (worst polarity)
  double c_self;    // driver's own drain capacitance
  double ci;        // next repeater's input capacitance
  double leak;      // per-repeater leakage power
  double area;      // per-repeater active area ("simplistic assumption")
};

BaselineStage baseline_stage(const Technology& tech, const LinkDesign& design) {
  const RepeaterSizing sz = repeater_sizing(tech, design.kind, design.drive);
  BaselineStage st;
  // Worst-polarity switching resistance from first principles (the weaker
  // PMOS dominates the rise).
  const double rd_fall = first_principles_resistance(tech.nmos, tech.vdd, sz.wn_out);
  const double rd_rise = first_principles_resistance(tech.pmos, tech.vdd, sz.wp_out);
  st.rd = std::max(rd_fall, rd_rise);
  st.c_self = sz.wn_out * tech.nmos.c_drain + sz.wp_out * tech.pmos.c_drain;
  const double win_n = design.kind == CellKind::Inverter ? sz.wn_out : sz.wn_in;
  const double win_p = design.kind == CellKind::Inverter ? sz.wp_out : sz.wp_in;
  st.ci = win_n * tech.nmos.c_gate + win_p * tech.pmos.c_gate;
  st.leak = 0.5 * tech.vdd *
            (off_current(tech.nmos, sz.wn_out, tech.vdd) +
             off_current(tech.pmos, sz.wp_out, tech.vdd));
  // Active area only: total device width times a 2F gate-pitch footprint.
  st.area = (sz.wn_out + sz.wp_out + sz.wn_in + sz.wp_in) * 2.0 * tech.area.feature_size;
  return st;
}

// Both baselines ignore scattering and barrier corrections.
LinkContext uncorrected(const LinkContext& ctx) {
  LinkContext plain = ctx;
  plain.wire_options.scattering = false;
  plain.wire_options.barrier = false;
  return plain;
}

// Minimum-pitch wire area, oblivious to shielding and trailing spacing —
// the "simplistic assumption" the paper calls out in Table III.
double simplistic_wire_area(const Technology& tech, WireLayer layer, double length) {
  const WireLayerGeometry& g =
      layer == WireLayer::Global ? tech.interconnect.global : tech.interconnect.intermediate;
  return (g.width + g.spacing) * length;
}

}  // namespace

LinkEstimate BakogluModel::evaluate(const LinkContext& context,
                                    const LinkDesign& design) const {
  const Technology& tech = *tech_;
  const LinkContext ctx = uncorrected(context);
  const LinkGeometry g(tech, ctx, design);
  const BaselineStage st = baseline_stage(tech, design);

  // Bakoglu stage delay: coupling capacitance does not exist in this
  // model — only ground capacitance loads the stage.
  const double c_wire = g.seg_cap_ground;
  const double stage = 0.69 * st.rd * (st.c_self + c_wire + st.ci) +
                       g.seg_res * (0.38 * c_wire + 0.69 * st.ci);

  LinkEstimate est;
  est.delay = design.num_repeaters * stage;
  est.output_slew = 2.2 * (st.rd * (st.c_self + c_wire + st.ci) + 0.5 * g.seg_res * c_wire);

  est.switched_cap =
      design.num_repeaters * (st.ci + st.c_self) + ctx.length * g.rc.cap_ground_per_m;
  est.dynamic_power = ctx.activity * est.switched_cap * tech.vdd * tech.vdd * ctx.frequency;
  est.leakage_power = design.num_repeaters * st.leak;
  est.repeater_area = design.num_repeaters * st.area;
  est.wire_area = simplistic_wire_area(tech, ctx.layer, ctx.length);
  return est;
}

LinkEstimate PamunuwaModel::evaluate(const LinkContext& context,
                                     const LinkDesign& design) const {
  const Technology& tech = *tech_;
  const LinkContext ctx = uncorrected(context);
  const LinkGeometry g(tech, ctx, design);
  const BaselineStage st = baseline_stage(tech, design);

  // Cross-talk-aware: the driver sees Miller-amplified coupling and the
  // wire term carries the (xi/2) coupling weight.
  const double mf = design.miller_factor;
  const double c_load = g.seg_cap_ground + mf * g.seg_cap_couple_total + st.ci;
  const double stage =
      0.69 * st.rd * (st.c_self + c_load) +
      g.seg_res * (0.4 * g.seg_cap_ground + 0.5 * mf * g.seg_cap_couple_total + 0.7 * st.ci);

  LinkEstimate est;
  est.delay = design.num_repeaters * stage;
  est.output_slew = 2.2 * (st.rd * (st.c_self + c_load) + 0.5 * g.seg_res * c_load);

  est.switched_cap =
      design.num_repeaters * (st.ci + st.c_self) +
      ctx.length * (g.rc.cap_ground_per_m + 2.0 * g.rc.cap_couple_per_m);
  est.dynamic_power = ctx.activity * est.switched_cap * tech.vdd * tech.vdd * ctx.frequency;
  est.leakage_power = design.num_repeaters * st.leak;
  est.repeater_area = design.num_repeaters * st.area;
  est.wire_area = bus_wire_area(tech, ctx.layer, ctx.style, 1, ctx.length);
  return est;
}

}  // namespace pim
