#include "models/link.hpp"

#include "util/error.hpp"

namespace pim {

LinkGeometry::LinkGeometry(const Technology& tech, const LinkContext& ctx,
                           const LinkDesign& design) {
  require(ctx.length > 0.0, "LinkGeometry: length must be positive");
  require(design.num_repeaters >= 1, "LinkGeometry: need at least one repeater");
  require(design.drive >= 1, "LinkGeometry: drive must be >= 1");
  rc = extract_wire(tech, ctx.layer, ctx.style, ctx.wire_options);
  segment_length = ctx.length / design.num_repeaters;
  seg_res = rc.res_per_m * segment_length;
  seg_cap_ground = rc.cap_ground_per_m * segment_length;
  seg_cap_couple_total = 2.0 * rc.cap_couple_per_m * segment_length;
}

}  // namespace pim
