// Area models (paper §III-C).
//
// Repeater area, two flavors:
//   - regressed:   a_r = area0 + area1 * wn (coefficients from Table I) —
//     used when a characterized library exists ("existing technologies");
//   - predictive:  finger count from feature size / contact pitch / row
//     height — usable before any library exists ("future technologies").
//
// Wire (bus) area: a_w = n * (w_w + s_w) + s_w tracks wide, times length,
// where width/spacing come from the routing layer and design style.
#pragma once

#include "tech/wire.hpp"

namespace pim {

/// Predictive repeater area from early-available layout quantities:
/// N_f = (wp + wn) / (h_row - 4 p_contact), w_cell = (N_f + 1) p_contact,
/// a_r = h_row * w_cell. Continuous (non-quantized) variant of the layout
/// model used for golden areas.
double predictive_repeater_area(const Technology& tech, double wn, double wp);

/// Routed area of an n-bit bus of the given length: the paper's
/// a_w = n (w_w + s_w) + s_w cross-section times the run length. The
/// design style sets the effective per-bit pitch (shielded doubles it).
double bus_wire_area(const Technology& tech, WireLayer layer, DesignStyle style,
                     int bits, double length);

}  // namespace pim
