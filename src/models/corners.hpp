// Corner-indexed models: the scenario layer's face inside pim::models.
//
// A CornerModelSet binds one ProposedModel per corner, each against the
// registry-stable derated technology (tech::corner_technology), so every
// downstream consumer written for the InterconnectModel interface can be
// pointed at a specific corner. WorstCornerModel folds a whole set back
// into that same interface by reporting the per-metric worst case, which
// is what predictable synthesis sizes against: a link that closes under
// WorstCornerModel closes at every corner of the set.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "charlib/fit.hpp"
#include "models/proposed.hpp"

namespace pim {

/// One corner's calibrated model.
struct CornerModel {
  Corner corner;
  ProposedModel model;
};

/// A corner-indexed coefficient set: each (corner, fit) pair becomes a
/// ProposedModel bound to corner_technology(node, corner). Order follows
/// the input pairs; by convention the first entry is the reference
/// (nominal) corner.
class CornerModelSet {
 public:
  CornerModelSet(TechNode node, const std::vector<std::pair<Corner, TechnologyFit>>& fits);

  /// Same binding against an arbitrary base descriptor (e.g. one loaded
  /// from a tech file), via corner_technology(base, corner).
  CornerModelSet(const Technology& base,
                 const std::vector<std::pair<Corner, TechnologyFit>>& fits);

  const std::vector<CornerModel>& models() const { return models_; }
  size_t size() const { return models_.size(); }

  /// The entry for `name`; throws pim::Error (bad_input) when absent.
  const CornerModel& at(const std::string& name) const;

 private:
  std::vector<CornerModel> models_;
};

/// Per-metric worst case over a corner set, presented as a plain
/// InterconnectModel. Delay, slew, and the power/capacitance terms each
/// take their maximum over the corners (deliberately pessimistic — the
/// slow corner dominates delay while the fast corner dominates leakage);
/// area comes from the reference corner, since layout does not vary with
/// process. tech() reports the reference corner's descriptor.
class WorstCornerModel final : public InterconnectModel {
 public:
  explicit WorstCornerModel(CornerModelSet set);

  const std::string& name() const override { return name_; }
  const Technology& tech() const override { return set_.models().front().model.tech(); }
  const CornerModelSet& corners() const { return set_; }

  LinkEstimate evaluate(const LinkContext& context,
                        const LinkDesign& design) const override;

  /// The corner whose delay dominates (context, design).
  const CornerModel& dominating(const LinkContext& context,
                                const LinkDesign& design) const;

  /// "worst(<corner>=<sig>,...)" over the member signatures, so two sets
  /// share cached results exactly when every per-corner model does.
  std::string cache_signature() const override { return signature_; }

 private:
  CornerModelSet set_;
  std::string name_ = "proposed@worst";
  std::string signature_;
};

}  // namespace pim
