// Abstract interconnect-model interface.
//
// COSI-OCC and the buffering optimizer are written against this
// interface, so swapping the paper's proposed model for a baseline (or an
// ablated variant) changes *only* the numbers the optimization sees —
// which is exactly the experiment of paper Table III.
#pragma once

#include <string>

#include "models/link.hpp"
#include "tech/technology.hpp"

namespace pim {

/// Predicts delay/power/area of buffered links in one technology.
class InterconnectModel {
 public:
  virtual ~InterconnectModel() = default;

  /// Model name for tables ("proposed", "bakoglu", "pamunuwa").
  virtual const std::string& name() const = 0;

  /// The technology this model instance is bound to.
  virtual const Technology& tech() const = 0;

  /// Evaluates one candidate link implementation.
  virtual LinkEstimate evaluate(const LinkContext& context,
                                const LinkDesign& design) const = 0;

  /// Stable content signature covering everything evaluate() depends on
  /// besides (context, design) — model name, technology, and any fitted
  /// coefficients — for the pim::cache result store. Models returning ""
  /// (the default) opt out of result caching.
  virtual std::string cache_signature() const { return {}; }
};

}  // namespace pim
