#include "tech/technology.hpp"

#include <map>
#include <mutex>

#include "tech/techfile.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pim {

using namespace pim::unit;

const std::vector<TechNode>& all_tech_nodes() {
  static const std::vector<TechNode> nodes = {TechNode::N90, TechNode::N65, TechNode::N45,
                                              TechNode::N32, TechNode::N22, TechNode::N16};
  return nodes;
}

std::string tech_node_name(TechNode node) {
  switch (node) {
    case TechNode::N90: return "90nm";
    case TechNode::N65: return "65nm";
    case TechNode::N45: return "45nm";
    case TechNode::N32: return "32nm";
    case TechNode::N22: return "22nm";
    case TechNode::N16: return "16nm";
  }
  fail("tech_node_name: unknown node");
}

TechNode tech_node_from_name(const std::string& name) {
  for (TechNode n : all_tech_nodes()) {
    const std::string full = tech_node_name(n);
    if (name == full || name + "nm" == full) return n;
  }
  fail("tech_node_from_name: unknown technology '" + name + "'");
}

namespace {

struct NodeSpec {
  double vdd;
  // device
  double vth_n, vth_p;
  double ksat_n, ksat_p;  // A / (m * V^alpha)
  double alpha;
  double lambda;
  double n_sub;
  double c_gate_ff_um;    // fF per um of width
  double c_drain_ff_um;
  // global wire geometry (nm)
  double gw, gs, gt, gh, gk;
  // intermediate wire geometry (nm)
  double iw, is, it, ih, ik;
  // copper stack
  double barrier_nm;
  // layout
  double feature_nm, contact_pitch_nm, row_height_nm;
  double unit_wn_nm;      // 1x repeater NMOS width
  double clock_ghz;
};

// Calibration table. Values synthesized from ITRS/PTM-era trends; see the
// header comment and DESIGN.md for the reasoning per column. Note the
// deliberate vdd step 1.0 -> 1.1 V from 65 to 45 nm (paper Table III).
NodeSpec spec_for(TechNode node) {
  switch (node) {
    case TechNode::N90:
      return {1.20, 0.32, 0.33, 950.0, 480.0, 1.35, 0.06, 2.30, 1.00, 0.55,
              450, 450, 900, 800, 3.3, 220, 220, 450, 400, 3.3,
              12.0, 90, 250, 2520, 360, 1.5};
    case TechNode::N65:
      return {1.00, 0.30, 0.31, 1050.0, 540.0, 1.32, 0.07, 2.35, 0.90, 0.50,
              320, 320, 700, 650, 3.0, 160, 160, 340, 300, 3.0,
              10.0, 65, 190, 1800, 260, 2.25};
    case TechNode::N45:
      return {1.10, 0.32, 0.33, 1200.0, 640.0, 1.30, 0.08, 2.45, 0.80, 0.45,
              225, 225, 520, 480, 2.8, 112, 112, 250, 225, 2.8,
              8.0, 45, 140, 1260, 180, 3.0};
    case TechNode::N32:
      return {0.90, 0.28, 0.29, 1280.0, 700.0, 1.28, 0.09, 2.50, 0.75, 0.42,
              160, 160, 390, 360, 2.6, 80, 80, 180, 165, 2.6,
              6.0, 32, 110, 900, 130, 3.5};
    case TechNode::N22:
      return {0.80, 0.26, 0.27, 1350.0, 760.0, 1.26, 0.10, 2.55, 0.70, 0.40,
              115, 115, 290, 270, 2.4, 58, 58, 132, 120, 2.4,
              4.5, 22, 80, 630, 90, 4.0};
    case TechNode::N16:
      return {0.70, 0.24, 0.25, 1400.0, 800.0, 1.24, 0.11, 2.60, 0.65, 0.38,
              80, 80, 215, 200, 2.2, 40, 40, 98, 90, 2.2,
              3.5, 16, 60, 460, 64, 4.5};
  }
  fail("spec_for: unknown node");
}

Technology build(TechNode node) {
  const NodeSpec s = spec_for(node);
  Technology t;
  t.node = node;
  t.name = tech_node_name(node);
  t.vdd = s.vdd;

  auto device = [&](double vth, double ksat) {
    MosfetParams p;
    p.vth = vth;
    p.k_sat = ksat;
    p.alpha = s.alpha;
    p.k_vdsat = 0.6;
    p.lambda = s.lambda;
    p.n_sub = s.n_sub;
    p.c_gate = s.c_gate_ff_um * fF / um;
    p.c_drain = s.c_drain_ff_um * fF / um;
    return p;
  };
  t.nmos = device(s.vth_n, s.ksat_n);
  t.pmos = device(s.vth_p, s.ksat_p);

  auto layer = [](double w, double sp, double th, double h, double k) {
    WireLayerGeometry g;
    g.width = w * nm;
    g.spacing = sp * nm;
    g.thickness = th * nm;
    g.ild_height = h * nm;
    g.k_dielectric = k;
    return g;
  };
  t.interconnect.global = layer(s.gw, s.gs, s.gt, s.gh, s.gk);
  t.interconnect.intermediate = layer(s.iw, s.is, s.it, s.ih, s.ik);
  t.interconnect.barrier_thickness = s.barrier_nm * nm;
  t.interconnect.rho_bulk = constant::rho_copper_bulk;
  t.interconnect.scattering_coeff = 0.45;

  t.area.feature_size = s.feature_nm * nm;
  t.area.contact_pitch = s.contact_pitch_nm * nm;
  t.area.row_height = s.row_height_nm * nm;

  t.pn_ratio = 2.0;
  t.unit_nmos_width = s.unit_wn_nm * nm;
  t.clock_frequency = s.clock_ghz * GHz;
  return t;
}

}  // namespace

const Technology& technology(TechNode node) {
  static const std::map<TechNode, Technology> cache = [] {
    std::map<TechNode, Technology> m;
    for (TechNode n : all_tech_nodes()) m.emplace(n, build(n));
    // Map nodes survive the move into the static, so these addresses are
    // process-stable and technology_content_hash may memoize them.
    for (const auto& [n, t] : m) register_stable_technology(&t);
    return m;
  }();
  return cache.at(node);
}

Technology Technology::derated(const Corner& corner) const {
  Technology t = *this;
  t.vdd *= corner.vdd_scale;
  t.nmos.k_sat *= corner.nmos_strength;
  t.pmos.k_sat *= corner.pmos_strength;
  for (MosfetParams* p : {&t.nmos, &t.pmos}) {
    p->c_gate *= corner.device_cap;
    p->c_drain *= corner.device_cap;
  }
  t.interconnect.rho_bulk *= corner.wire_res;
  t.interconnect.global.k_dielectric *= corner.wire_cap;
  t.interconnect.intermediate.k_dielectric *= corner.wire_cap;
  return t;
}

const Technology& corner_technology(TechNode node, const Corner& corner) {
  static std::mutex mutex;
  // std::map nodes never move, so returned references stay valid for the
  // life of the process — model layers hold `const Technology*` into it.
  static std::map<std::string, Technology> registry;
  const std::string key = tech_node_name(node) + "@" + corner.cache_id();
  std::lock_guard<std::mutex> lock(mutex);
  const auto it = registry.find(key);
  if (it != registry.end()) return it->second;
  Technology& fresh = registry.emplace(key, technology(node).derated(corner)).first->second;
  register_stable_technology(&fresh);
  return fresh;
}

const Technology& corner_technology(const Technology& base, const Corner& corner) {
  static std::mutex mutex;
  static std::map<std::string, Technology> registry;
  // Keyed by content, not address: two loads of the same tech file (or a
  // reload after a no-op edit) share registry entries and hence fits.
  const std::string key = technology_content_hash(base) + "@" + corner.cache_id();
  std::lock_guard<std::mutex> lock(mutex);
  const auto it = registry.find(key);
  if (it != registry.end()) return it->second;
  Technology& fresh = registry.emplace(key, base.derated(corner)).first->second;
  register_stable_technology(&fresh);
  return fresh;
}

}  // namespace pim
