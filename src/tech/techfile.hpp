// Text serialization of a Technology descriptor — the library's analog of
// LEF/ITF technology inputs. The format is line-based:
//
//   technology "90nm" {
//     vdd 1.2
//     nmos { vth 0.32 ... }
//     interconnect {
//       global { width 4.5e-07 ... }
//       ...
//     }
//   }
//
// Each line is `key value`, `key {` (open block), or `}` (close block);
// `#` starts a comment. All values are SI. Round-tripping a built-in
// technology reproduces it exactly to printed precision.
#pragma once

#include <string>
#include <vector>

#include "cache/manifest.hpp"
#include "tech/technology.hpp"

namespace pim {

/// Serializes `tech` to the tech-file text format.
std::string write_techfile(const Technology& tech);

/// Parses a tech file; throws pim::Error with a line number on syntax
/// errors, unknown keys, or missing required fields.
Technology parse_techfile(const std::string& text);

/// File convenience wrappers.
void save_techfile(const Technology& tech, const std::string& path);
Technology load_techfile(const std::string& path);

/// SHA-256 of the canonical tech-file serialization of `tech` — the
/// content identity fit cache keys and provenance facets carry. Memoized
/// by address for registry-stable instances (register_stable_technology);
/// any other instance serializes and hashes fresh on every call. Timed
/// under cache.key.tech_hash either way, so reports show how much the
/// memo saves.
std::string technology_content_hash(const Technology& tech);

/// Marks `tech` as address-stable for the life of the process (registry
/// entries — technology(), corner_technology(), technology_from_spec()
/// all register theirs), which lets technology_content_hash memoize by
/// pointer without risking a dangling-address collision against a
/// stack-allocated descriptor that happens to reuse the slot.
void register_stable_technology(const Technology* tech);

/// True when `spec` names a built-in node ("45nm" / "45") rather than a
/// tech-file path.
bool is_builtin_tech_spec(const std::string& spec);

/// Resolves a tech spec — a built-in node name or a tech-file path — to
/// a stable Technology reference. File specs are re-read on every call
/// so on-disk edits are observed immediately (the invalidation flow
/// depends on this); parsing is memoized by content hash, and the
/// returned reference stays valid for the life of the process.
const Technology& technology_from_spec(const std::string& spec);

/// The provenance facets an edit to `base` can change: for every corner
/// in its scenario set, the per-corner derated tech-content facet (type
/// "tech", name "<tech>@<corner>") and the corner-identity facet (type
/// "corner", name "<corner>"). Mirrors exactly what
/// corner_calibrated_fit records into its manifests, so handing this
/// list for the edited descriptor to cache::dirty_cone() stales every
/// artifact whose inputs the edit actually touched: a base-parameter
/// edit shifts every per-corner derated hash, a single-corner retune
/// shifts only that corner's.
std::vector<cache::Facet> technology_facets(const Technology& base);

}  // namespace pim
