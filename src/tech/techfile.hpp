// Text serialization of a Technology descriptor — the library's analog of
// LEF/ITF technology inputs. The format is line-based:
//
//   technology "90nm" {
//     vdd 1.2
//     nmos { vth 0.32 ... }
//     interconnect {
//       global { width 4.5e-07 ... }
//       ...
//     }
//   }
//
// Each line is `key value`, `key {` (open block), or `}` (close block);
// `#` starts a comment. All values are SI. Round-tripping a built-in
// technology reproduces it exactly to printed precision.
#pragma once

#include <string>

#include "tech/technology.hpp"

namespace pim {

/// Serializes `tech` to the tech-file text format.
std::string write_techfile(const Technology& tech);

/// Parses a tech file; throws pim::Error with a line number on syntax
/// errors, unknown keys, or missing required fields.
Technology parse_techfile(const std::string& text);

/// File convenience wrappers.
void save_techfile(const Technology& tech, const std::string& path);
Technology load_techfile(const std::string& path);

}  // namespace pim
