// Wire parasitic extraction: per-unit-length RC of a signal wire with its
// neighborhood, per design style.
//
// Resistance model (paper §III-B): bulk copper resistivity enhanced by
//   1) electron scattering — the Shi–Pan-style closed form
//      rho_eff(w) = rho_bulk * (1 + C * lambda_mfp / w_conductor), and
//   2) barrier/liner thickness — the liner eats the conducting
//      cross-section: A = (w - 2 t_b) * (t - t_b).
//
// Capacitance model: Sakurai–Tamaru closed forms for ground and coupling
// capacitance of parallel lines over a plane.
//
// Design styles:
//   SingleSpacing — minimum width/spacing, both neighbors are switching
//                   signals (worst-case Miller factor applies downstream);
//   DoubleSpacing — 2x spacing, neighbors still switch;
//   Shielded      — grounded shields between signals: coupling terms land
//                   on ground, no Miller amplification, 2x routing pitch.
#pragma once

#include "tech/technology.hpp"

namespace pim {

enum class WireLayer { Global, Intermediate };

enum class DesignStyle { SingleSpacing, DoubleSpacing, Shielded };

/// Human-readable style tag ("SS", "DS", "SH") used in tables.
std::string design_style_name(DesignStyle style);

/// Feature toggles for ablation studies; both default on.
struct WireModelOptions {
  bool scattering = true;
  bool barrier = true;
  /// Multiplicative perturbations of the extracted parasitics, used by
  /// the process-variation extension (pim::variation) and for what-if
  /// studies. 1.0 = nominal.
  double res_scale = 1.0;
  double cap_scale = 1.0;
};

/// Per-unit-length parasitics of one victim wire.
struct WireRc {
  double res_per_m = 0.0;         ///< [ohm/m]
  double cap_ground_per_m = 0.0;  ///< to ground planes / shields [F/m]
  double cap_couple_per_m = 0.0;  ///< to EACH switching neighbor [F/m]
  double pitch = 0.0;             ///< width + effective spacing, for area [m]

  /// Total load capacitance per meter if neighbors were quiet (Miller = 1).
  double cap_total_per_m() const { return cap_ground_per_m + 2.0 * cap_couple_per_m; }
};

/// Effective resistivity at conductor width `w_cond` [ohm*m].
double effective_resistivity(const InterconnectTech& tech, double w_cond,
                             const WireModelOptions& options);

/// Resistance per meter of a wire on `layer`, with barrier correction.
double wire_resistance_per_m(const Technology& tech, WireLayer layer,
                             const WireModelOptions& options);

/// Full RC extraction of a wire on `layer` under `style`.
WireRc extract_wire(const Technology& tech, WireLayer layer, DesignStyle style,
                    const WireModelOptions& options = {});

}  // namespace pim
