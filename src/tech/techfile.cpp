#include "tech/techfile.hpp"

#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>

#include "cache/sha256.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace pim {
namespace {

void emit_mosfet(std::ostringstream& os, const char* name, const MosfetParams& p,
                 const char* indent) {
  os << indent << name << " {\n";
  os << indent << "  vth " << format_sig(p.vth, 12) << "\n";
  os << indent << "  k_sat " << format_sig(p.k_sat, 12) << "\n";
  os << indent << "  alpha " << format_sig(p.alpha, 12) << "\n";
  os << indent << "  k_vdsat " << format_sig(p.k_vdsat, 12) << "\n";
  os << indent << "  lambda " << format_sig(p.lambda, 12) << "\n";
  os << indent << "  n_sub " << format_sig(p.n_sub, 12) << "\n";
  os << indent << "  c_gate " << format_sig(p.c_gate, 12) << "\n";
  os << indent << "  c_drain " << format_sig(p.c_drain, 12) << "\n";
  os << indent << "}\n";
}

void emit_layer(std::ostringstream& os, const char* name, const WireLayerGeometry& g,
                const char* indent) {
  os << indent << name << " {\n";
  os << indent << "  width " << format_sig(g.width, 12) << "\n";
  os << indent << "  spacing " << format_sig(g.spacing, 12) << "\n";
  os << indent << "  thickness " << format_sig(g.thickness, 12) << "\n";
  os << indent << "  ild_height " << format_sig(g.ild_height, 12) << "\n";
  os << indent << "  k_dielectric " << format_sig(g.k_dielectric, 12) << "\n";
  os << indent << "}\n";
}

}  // namespace

std::string write_techfile(const Technology& tech) {
  std::ostringstream os;
  os << "technology \"" << tech.name << "\" {\n";
  os << "  vdd " << format_sig(tech.vdd, 12) << "\n";
  os << "  pn_ratio " << format_sig(tech.pn_ratio, 12) << "\n";
  os << "  unit_nmos_width " << format_sig(tech.unit_nmos_width, 12) << "\n";
  os << "  clock_frequency " << format_sig(tech.clock_frequency, 12) << "\n";
  emit_mosfet(os, "nmos", tech.nmos, "  ");
  emit_mosfet(os, "pmos", tech.pmos, "  ");
  os << "  interconnect {\n";
  emit_layer(os, "global", tech.interconnect.global, "    ");
  emit_layer(os, "intermediate", tech.interconnect.intermediate, "    ");
  os << "    barrier_thickness " << format_sig(tech.interconnect.barrier_thickness, 12) << "\n";
  os << "    rho_bulk " << format_sig(tech.interconnect.rho_bulk, 12) << "\n";
  os << "    scattering_coeff " << format_sig(tech.interconnect.scattering_coeff, 12) << "\n";
  os << "  }\n";
  os << "  area {\n";
  os << "    feature_size " << format_sig(tech.area.feature_size, 12) << "\n";
  os << "    contact_pitch " << format_sig(tech.area.contact_pitch, 12) << "\n";
  os << "    row_height " << format_sig(tech.area.row_height, 12) << "\n";
  os << "  }\n";
  if (!tech.corners.empty()) {
    os << "  corners {\n";
    for (const Corner& c : tech.corners.corners()) {
      os << "    " << c.name << " {\n";
      os << "      nmos_strength " << format_sig(c.nmos_strength, 12) << "\n";
      os << "      pmos_strength " << format_sig(c.pmos_strength, 12) << "\n";
      os << "      device_cap " << format_sig(c.device_cap, 12) << "\n";
      os << "      leakage " << format_sig(c.leakage, 12) << "\n";
      os << "      wire_res " << format_sig(c.wire_res, 12) << "\n";
      os << "      wire_cap " << format_sig(c.wire_cap, 12) << "\n";
      os << "      temperature_c " << format_sig(c.temperature_c, 12) << "\n";
      os << "      vdd_scale " << format_sig(c.vdd_scale, 12) << "\n";
      os << "    }\n";
    }
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

namespace {

// Parsed tree: nested blocks of key -> scalar or key -> sub-block.
struct Block {
  std::map<std::string, double> scalars;
  std::map<std::string, Block> blocks;
  std::string label;  // quoted string after the block key, if any
};

class Parser {
 public:
  explicit Parser(const std::string& text) {
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
      ++lineno;
      const size_t hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      const std::string_view t = trim(line);
      if (!t.empty()) lines_.emplace_back(lineno, std::string(t));
    }
  }

  Block parse_top() {
    pos_ = 0;
    require(!lines_.empty(), "techfile: empty input");
    Block root = parse_block_body("technology");
    require(pos_ == lines_.size(), "techfile: trailing content after top-level block");
    return root;
  }

 private:
  [[noreturn]] void syntax_error(size_t idx, const std::string& msg) const {
    fail("techfile: line " + std::to_string(lines_[idx].first) + ": " + msg);
  }

  // Expects lines_[pos_] to open a block with key `expected_key` (or any
  // key when null); consumes through the matching '}'.
  Block parse_block_body(const char* expected_key) {
    auto& [lineno, text] = lines_[pos_];
    (void)lineno;
    const auto tokens = split_whitespace(text);
    require(tokens.back() == "{", "techfile: expected '{' opening a block");
    if (expected_key != nullptr && tokens.front() != expected_key)
      syntax_error(pos_, "expected block '" + std::string(expected_key) + "'");
    Block block;
    // Optional quoted label between the key and '{'.
    if (tokens.size() == 3) {
      std::string label = tokens[1];
      if (label.size() >= 2 && label.front() == '"' && label.back() == '"')
        label = label.substr(1, label.size() - 2);
      block.label = label;
    }
    ++pos_;
    while (true) {
      require(pos_ < lines_.size(), "techfile: unterminated block");
      const std::string& ln = lines_[pos_].second;
      if (ln == "}") {
        ++pos_;
        return block;
      }
      const auto parts = split_whitespace(ln);
      if (parts.back() == "{") {
        const std::string key = parts.front();
        block.blocks[key] = parse_block_body(nullptr);
      } else if (parts.size() == 2) {
        block.scalars[parts[0]] = parse_double(parts[1]);
        ++pos_;
      } else {
        syntax_error(pos_, "expected 'key value', 'key {', or '}'");
      }
    }
  }

  std::vector<std::pair<int, std::string>> lines_;
  size_t pos_ = 0;
};

double need(const Block& b, const std::string& key) {
  const auto it = b.scalars.find(key);
  require(it != b.scalars.end(), "techfile: missing field '" + key + "'");
  return it->second;
}

const Block& need_block(const Block& b, const std::string& key) {
  const auto it = b.blocks.find(key);
  require(it != b.blocks.end(), "techfile: missing block '" + key + "'");
  return it->second;
}

MosfetParams parse_mosfet(const Block& b) {
  MosfetParams p;
  p.vth = need(b, "vth");
  p.k_sat = need(b, "k_sat");
  p.alpha = need(b, "alpha");
  p.k_vdsat = need(b, "k_vdsat");
  p.lambda = need(b, "lambda");
  p.n_sub = need(b, "n_sub");
  p.c_gate = need(b, "c_gate");
  p.c_drain = need(b, "c_drain");
  return p;
}

WireLayerGeometry parse_layer(const Block& b) {
  WireLayerGeometry g;
  g.width = need(b, "width");
  g.spacing = need(b, "spacing");
  g.thickness = need(b, "thickness");
  g.ild_height = need(b, "ild_height");
  g.k_dielectric = need(b, "k_dielectric");
  return g;
}

double optional(const Block& b, const std::string& key, double fallback) {
  const auto it = b.scalars.find(key);
  return it == b.scalars.end() ? fallback : it->second;
}

// `corners { <name> { nmos_strength 0.85 ... } ... }`. Every factor is
// optional and defaults to nominal (1.0, 25 C), so sparse definitions
// like `ss { nmos_strength 0.85 }` work. Blocks are keyed by corner name,
// so parsed sets come back name-sorted; a `nominal` corner is required
// because the CLI default spec resolves to it.
ScenarioSet parse_corners(const Block& b) {
  std::vector<Corner> corners;
  for (const auto& [name, cb] : b.blocks) {
    Corner c;
    c.name = name;
    c.nmos_strength = optional(cb, "nmos_strength", 1.0);
    c.pmos_strength = optional(cb, "pmos_strength", 1.0);
    c.device_cap = optional(cb, "device_cap", 1.0);
    c.leakage = optional(cb, "leakage", 1.0);
    c.wire_res = optional(cb, "wire_res", 1.0);
    c.wire_cap = optional(cb, "wire_cap", 1.0);
    c.temperature_c = optional(cb, "temperature_c", 25.0);
    c.vdd_scale = optional(cb, "vdd_scale", 1.0);
    corners.push_back(c);
  }
  ScenarioSet set{corners};
  require(set.find("nominal") != nullptr,
          "techfile: corners block must define a 'nominal' corner");
  return set;
}

}  // namespace

Technology parse_techfile(const std::string& text) {
  Parser parser(text);
  const Block root = parser.parse_top();

  Technology t;
  require(!root.label.empty(), "techfile: technology block needs a name label");
  t.name = root.label;
  t.node = tech_node_from_name(t.name);
  t.vdd = need(root, "vdd");
  t.pn_ratio = need(root, "pn_ratio");
  t.unit_nmos_width = need(root, "unit_nmos_width");
  t.clock_frequency = need(root, "clock_frequency");
  t.nmos = parse_mosfet(need_block(root, "nmos"));
  t.pmos = parse_mosfet(need_block(root, "pmos"));
  const Block& ic = need_block(root, "interconnect");
  t.interconnect.global = parse_layer(need_block(ic, "global"));
  t.interconnect.intermediate = parse_layer(need_block(ic, "intermediate"));
  t.interconnect.barrier_thickness = need(ic, "barrier_thickness");
  t.interconnect.rho_bulk = need(ic, "rho_bulk");
  t.interconnect.scattering_coeff = need(ic, "scattering_coeff");
  const Block& area = need_block(root, "area");
  t.area.feature_size = need(area, "feature_size");
  t.area.contact_pitch = need(area, "contact_pitch");
  t.area.row_height = need(area, "row_height");
  const auto corners_it = root.blocks.find("corners");
  if (corners_it != root.blocks.end()) t.corners = parse_corners(corners_it->second);
  return t;
}

void save_techfile(const Technology& tech, const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "save_techfile: cannot open '" + path + "'");
  out << write_techfile(tech);
  require(out.good(), "save_techfile: write failed");
}

Technology load_techfile(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "load_techfile: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_techfile(buffer.str());
}

namespace {

// Guards both the stable-address set and the hash memo; content hashing
// itself runs outside the lock.
std::mutex& stable_mutex() {
  static std::mutex m;
  return m;
}

std::set<const Technology*>& stable_addresses() {
  static std::set<const Technology*> s;
  return s;
}

std::map<const Technology*, std::string>& hash_memo() {
  static std::map<const Technology*, std::string> m;
  return m;
}

}  // namespace

void register_stable_technology(const Technology* tech) {
  std::lock_guard<std::mutex> lock(stable_mutex());
  stable_addresses().insert(tech);
}

std::string technology_content_hash(const Technology& tech) {
  static obs::Timer& timer = obs::registry().timer("cache.key.tech_hash");
  obs::ScopedTimer span(timer);
  {
    std::lock_guard<std::mutex> lock(stable_mutex());
    const auto it = hash_memo().find(&tech);
    if (it != hash_memo().end()) return it->second;
  }
  // The corner set is deliberately excluded from the content identity:
  // each corner's factors are tracked by its own `corner` facet
  // (Corner::cache_id), and derated descriptors inherit the base's
  // `corners` member verbatim. Hashing it here would make a one-corner
  // retune shift every corner's tech facet and dirty the whole cache
  // instead of just that corner's cone.
  std::string hash;
  if (tech.corners.empty()) {
    hash = cache::sha256_hex(write_techfile(tech));
  } else {
    Technology stripped = tech;
    stripped.corners = ScenarioSet();
    hash = cache::sha256_hex(write_techfile(stripped));
  }
  std::lock_guard<std::mutex> lock(stable_mutex());
  // Memoize only addresses a registry vouched for: a stack-allocated
  // descriptor can die and a different one reuse its address, so caching
  // by arbitrary pointer would serve the wrong hash.
  if (stable_addresses().count(&tech) > 0) hash_memo().emplace(&tech, hash);
  return hash;
}

bool is_builtin_tech_spec(const std::string& spec) {
  for (TechNode n : all_tech_nodes()) {
    const std::string full = tech_node_name(n);
    if (spec == full || spec + "nm" == full) return true;
  }
  return false;
}

const Technology& technology_from_spec(const std::string& spec) {
  if (is_builtin_tech_spec(spec)) return technology(tech_node_from_name(spec));
  // A tech-file path: re-read the bytes on every call so an edit is
  // observed the moment it lands (cache invalidation diffs depend on
  // this), but parse once per distinct content.
  std::ifstream in(spec);
  require(in.good(),
          "technology_from_spec: '" + spec +
              "' is neither a built-in node nor a readable tech file",
          ErrorCode::bad_input);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::string hash = cache::sha256_hex(text);
  static std::mutex mutex;
  // std::map nodes never move, so returned references stay valid for the
  // life of the process.
  static std::map<std::string, Technology> registry;
  std::lock_guard<std::mutex> lock(mutex);
  const auto it = registry.find(hash);
  if (it != registry.end()) return it->second;
  Technology& fresh = registry.emplace(hash, parse_techfile(text)).first->second;
  register_stable_technology(&fresh);
  return fresh;
}

std::vector<cache::Facet> technology_facets(const Technology& base) {
  std::vector<cache::Facet> out;
  for (const Corner& corner : base.scenario_set().corners()) {
    out.push_back({"tech", base.name + "@" + corner.name,
                   technology_content_hash(base.derated(corner))});
    out.push_back({"corner", corner.name, corner.cache_id()});
  }
  return out;
}

}  // namespace pim
