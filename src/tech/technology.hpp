// Technology descriptors for the six nodes the paper covers
// (90/65/45/32/22/16 nm).
//
// The built-in parameter values are synthesized from published ITRS/PTM-era
// trends (see DESIGN.md, substitutions): absolute numbers are plausible for
// each node, and — more importantly for reproducing the paper's tables —
// the *trends* are faithful: effective wire resistivity blows up at small
// widths (scattering + barrier), coupling dominates ground capacitance,
// leakage grows with scaling, and the supply steps 1.0 V -> 1.1 V between
// the 65 and 45 nm library files (the anomaly the paper calls out in its
// Table III discussion).
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "spice/circuit.hpp"
#include "spice/mosfet.hpp"

namespace pim {

enum class TechNode { N90, N65, N45, N32, N22, N16 };

/// All six nodes, largest feature first.
const std::vector<TechNode>& all_tech_nodes();

/// "90nm", "65nm", ...
std::string tech_node_name(TechNode node);

/// Parses "90nm" / "90" style names; throws on unknown.
TechNode tech_node_from_name(const std::string& name);

/// Wire geometry of one routing-layer class.
struct WireLayerGeometry {
  double width = 0.0;       ///< drawn wire width [m]
  double spacing = 0.0;     ///< minimum spacing to the neighbor [m]
  double thickness = 0.0;   ///< metal thickness [m]
  double ild_height = 0.0;  ///< dielectric height to the return plane [m]
  double k_dielectric = 0.0;///< relative permittivity of the surrounding ILD
};

/// Copper/barrier parameters driving the resistivity model.
struct InterconnectTech {
  WireLayerGeometry global;        ///< top-level global routing layer
  WireLayerGeometry intermediate;  ///< intermediate routing layer
  double barrier_thickness = 0.0;  ///< liner thickness eating the cross-section [m]
  double rho_bulk = 0.0;           ///< bulk resistivity [ohm*m]
  double scattering_coeff = 0.0;   ///< prefactor of the mean-free-path term
};

/// Layout quantities feeding the predictive area model (paper §III-C).
struct AreaTech {
  double feature_size = 0.0;   ///< [m]
  double contact_pitch = 0.0;  ///< [m]
  double row_height = 0.0;     ///< standard-cell row height [m]
};

/// One technology node: devices, interconnect, layout, and defaults.
struct Technology {
  TechNode node = TechNode::N90;
  std::string name;
  double vdd = 0.0;                ///< nominal supply [V]
  MosfetParams nmos;
  MosfetParams pmos;
  InterconnectTech interconnect;
  AreaTech area;
  double pn_ratio = 2.0;           ///< repeater wp / wn sizing ratio
  double unit_nmos_width = 0.0;    ///< NMOS width of a 1x (D1) repeater [m]
  double clock_frequency = 0.0;    ///< NoC synthesis default clock [Hz]
  ScenarioSet corners;             ///< techfile-defined corners (empty = builtin)

  /// Device pair in the form the netlist builders take.
  InverterDevices devices() const { return {nmos, pmos}; }

  /// PMOS width of a repeater whose NMOS width is wn.
  double pmos_width(double wn) const { return pn_ratio * wn; }

  /// NMOS width of a repeater of integer drive strength `drive` (Dk).
  double drive_nmos_width(int drive) const {
    return unit_nmos_width * static_cast<double>(drive);
  }

  /// The corner set this technology is signed off against: the techfile
  /// `corners { ... }` block when present, ScenarioSet::builtin() otherwise.
  const ScenarioSet& scenario_set() const {
    return corners.empty() ? ScenarioSet::builtin() : corners;
  }

  /// Copy of this descriptor derated to `corner`: device strength scales
  /// saturation current per polarity, device_cap scales gate/junction
  /// capacitance, wire_res the bulk resistivity, wire_cap the ILD
  /// permittivity, vdd_scale the supply. Every factor is applied as a
  /// plain multiplication, so the nominal corner (all 1.0) reproduces
  /// this descriptor bit-for-bit.
  Technology derated(const Corner& corner) const;
};

/// The built-in calibrated descriptor for `node`.
const Technology& technology(TechNode node);

/// Stable-reference registry of derated built-in descriptors: the same
/// (node, corner) pair always returns the same Technology object, so
/// model layers that hold `const Technology*` may point at it safely.
const Technology& corner_technology(TechNode node, const Corner& corner);

/// Same stable-reference guarantee for an arbitrary base descriptor
/// (e.g. one loaded from a tech file): the registry is keyed by the
/// base's content hash plus the corner id, so equal-content bases share
/// entries regardless of where they were parsed.
const Technology& corner_technology(const Technology& base, const Corner& corner);

}  // namespace pim
