#include "tech/wire.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace pim {

std::string design_style_name(DesignStyle style) {
  switch (style) {
    case DesignStyle::SingleSpacing: return "SS";
    case DesignStyle::DoubleSpacing: return "DS";
    case DesignStyle::Shielded: return "SH";
  }
  fail("design_style_name: unknown style");
}

double effective_resistivity(const InterconnectTech& tech, double w_cond,
                             const WireModelOptions& options) {
  require(w_cond > 0.0, "effective_resistivity: conductor width must be positive");
  double rho = tech.rho_bulk;
  if (options.scattering)
    rho *= 1.0 + tech.scattering_coeff * constant::copper_mean_free_path / w_cond;
  return rho;
}

namespace {
const WireLayerGeometry& layer_geometry(const Technology& tech, WireLayer layer) {
  return layer == WireLayer::Global ? tech.interconnect.global
                                    : tech.interconnect.intermediate;
}

// Sakurai–Tamaru ground capacitance of a line of width w, thickness t,
// height h over a plane, per unit length.
double sakurai_cg(double w, double t, double h, double k) {
  return constant::eps0 * k * (1.15 * (w / h) + 2.80 * std::pow(t / h, 0.222));
}

// Sakurai–Tamaru coupling capacitance to one parallel neighbor at spacing s.
double sakurai_cc(double w, double t, double h, double s, double k) {
  const double term = 0.03 * (w / h) + 0.83 * (t / h) - 0.07 * std::pow(t / h, 0.222);
  return constant::eps0 * k * term * std::pow(s / h, -1.34);
}
}  // namespace

double wire_resistance_per_m(const Technology& tech, WireLayer layer,
                             const WireModelOptions& options) {
  const WireLayerGeometry& g = layer_geometry(tech, layer);
  const double tb = options.barrier ? tech.interconnect.barrier_thickness : 0.0;
  const double w_cond = g.width - 2.0 * tb;
  const double t_cond = g.thickness - tb;
  require(w_cond > 0.0 && t_cond > 0.0,
          "wire_resistance_per_m: barrier consumes the whole conductor");
  require(options.res_scale > 0.0 && options.cap_scale > 0.0,
          "wire model: perturbation scales must be positive");
  const double rho = effective_resistivity(tech.interconnect, w_cond, options);
  return options.res_scale * rho / (w_cond * t_cond);
}

WireRc extract_wire(const Technology& tech, WireLayer layer, DesignStyle style,
                    const WireModelOptions& options) {
  const WireLayerGeometry& g = layer_geometry(tech, layer);
  WireRc rc;
  rc.res_per_m = wire_resistance_per_m(tech, layer, options);

  const double spacing = style == DesignStyle::DoubleSpacing ? 2.0 * g.spacing : g.spacing;
  const double cg =
      options.cap_scale * sakurai_cg(g.width, g.thickness, g.ild_height, g.k_dielectric);
  const double cc =
      options.cap_scale * sakurai_cc(g.width, g.thickness, g.ild_height, spacing, g.k_dielectric);

  switch (style) {
    case DesignStyle::SingleSpacing:
    case DesignStyle::DoubleSpacing:
      rc.cap_ground_per_m = cg;
      rc.cap_couple_per_m = cc;
      // Signal pitch: one wire plus one spacing.
      rc.pitch = g.width + spacing;
      break;
    case DesignStyle::Shielded:
      // Neighbors are grounded shields: all coupling terminates on ground
      // and no Miller amplification occurs.
      rc.cap_ground_per_m = cg + 2.0 * cc;
      rc.cap_couple_per_m = 0.0;
      // Each signal effectively pays for its own track plus a shield track.
      rc.pitch = 2.0 * (g.width + g.spacing);
      break;
  }
  return rc;
}

}  // namespace pim
