// Output-directory resolution shared by the bench binaries'
// MetricsArtifact/CSV exports and the CLI's report flushing: an explicit
// set_out_dir() (the --out-dir flag) beats the PIM_OUT_DIR environment
// variable, which beats the historical ./bench_out default.
#pragma once

#include <string>

namespace pim {

/// Pins the process output directory; "" restores the automatic
/// resolution (PIM_OUT_DIR, else "bench_out").
void set_out_dir(const std::string& dir);

/// The resolved output directory (not created; see ensure_out_dir).
std::string out_dir();

/// True when --out-dir or PIM_OUT_DIR picked the directory (relative
/// CLI report paths then resolve under it; bare defaults do not move).
bool out_dir_configured();

/// out_dir(), created on demand. Throws Error(io_parse) when the
/// directory cannot be created.
std::string ensure_out_dir();

/// ensure_out_dir() + "/" + name.
std::string out_path(const std::string& name);

}  // namespace pim
