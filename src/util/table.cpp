#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace pim {
namespace {
// Sentinel that marks a separator row; never produced by add_row.
const std::vector<std::string> kSeparator = {};
}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "Table: header must not be empty");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(),
          "Table: row arity does not match header");
  rows_.push_back(std::move(cells));
  ++data_rows_;
}

void Table::add_separator() { rows_.push_back(kSeparator); }

std::string Table::to_string() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.empty()) continue;
    for (size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  auto emit = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };

  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);

  std::ostringstream os;
  emit(os, header_);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    if (row.empty()) {
      os << std::string(total, '-') << '\n';
    } else {
      emit(os, row);
    }
  }
  return os.str();
}

}  // namespace pim
