// CSV writer for exporting bench results to files (one file per
// table/figure, so plots can be regenerated outside the binary).
#pragma once

#include <string>
#include <vector>

namespace pim {

/// Accumulates rows and writes an RFC-4180-ish CSV file (quotes cells that
/// contain commas, quotes, or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a row; must match header arity.
  void add_row(const std::vector<std::string>& cells);

  /// Serializes all rows; also usable for tests without touching the disk.
  std::string to_string() const;

  /// Writes to `path`, throwing pim::Error on I/O failure.
  void write_file(const std::string& path) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pim
