// Minimal leveled logger for command-line tools.
//
// The library itself never logs at Info level from hot paths; benches and
// examples use it to narrate progress. Thread-safe: the level is an
// atomic and emission serializes line writes, so concurrent callers never
// interleave characters (needed now that instrumented flows may run under
// threaded harnesses).
//
// Each line carries an ISO-8601 UTC timestamp:
//   2026-08-05T12:34:56.789Z [warn ] message
//
// The default threshold is Warn; the PIM_LOG_LEVEL environment variable
// (debug|info|warn|error|off) overrides it at startup, and
// set_log_level() overrides both at runtime.
#pragma once

#include <sstream>
#include <string>

namespace pim {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, ErrorLevel = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug|info|warn|error|off" (case-sensitive); returns false and
/// leaves `out` untouched on anything else.
bool log_level_from_name(const std::string& name, LogLevel& out);

/// True when PIM_LOG_LEVEL held a valid level name at startup (tools use
/// this to let the environment beat their built-in default).
bool log_level_env_override();

/// Emits one timestamped line to stderr with a level prefix if `level`
/// passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  append_all(os, rest...);
}
}  // namespace detail

/// Variadic convenience wrappers: log_info("delay=", d, " ps").
template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() > LogLevel::Debug) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::Debug, os.str());
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() > LogLevel::Info) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::Info, os.str());
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() > LogLevel::Warn) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::Warn, os.str());
}

template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() > LogLevel::ErrorLevel) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::ErrorLevel, os.str());
}

}  // namespace pim
