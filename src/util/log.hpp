// Minimal leveled logger for command-line tools.
//
// The library itself never logs at Info level from hot paths; benches and
// examples use it to narrate progress. Thread safety is not required: all
// pim tools are single-threaded.
#pragma once

#include <sstream>
#include <string>

namespace pim {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, ErrorLevel = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr with a level prefix if `level` passes the
/// threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  append_all(os, rest...);
}
}  // namespace detail

/// Variadic convenience wrappers: log_info("delay=", d, " ps").
template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() > LogLevel::Debug) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::Debug, os.str());
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() > LogLevel::Info) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::Info, os.str());
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() > LogLevel::Warn) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::Warn, os.str());
}

}  // namespace pim
