// Library-wide error type, error taxonomy, and contract-checking helpers.
//
// Every failure inside the pim library carries an ErrorCode so callers can
// distinguish recoverable solver conditions (singular matrix, Newton
// non-convergence) from caller mistakes (bad_input) and malformed files
// (io_parse) without string-matching messages. Errors also carry a context
// chain: each layer that re-throws can append a "while ..." note via
// with_context(), so a singular pivot deep inside a characterization sweep
// surfaces with the full story attached. See docs/robustness.md.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace pim {

/// Failure taxonomy. Keep this small: codes drive recovery policy and CLI
/// exit codes, not logging detail (that is what the message is for).
enum class ErrorCode {
  bad_input,        ///< caller violated a precondition / usage error
  singular_matrix,  ///< linear system is singular to working precision
  no_convergence,   ///< iterative solve exhausted its budget
  io_parse,         ///< file missing, unreadable, or malformed
  internal,         ///< invariant violation inside the library
  deadline_exceeded,///< wall-clock budget expired before the work finished
  cancelled,        ///< external cancellation (SIGINT/SIGTERM or API cancel)
  overloaded,       ///< admission control rejected the request (queue full);
                    ///< retryable by contract — the work was never started
};

/// Stable lowercase name of a code, e.g. "singular_matrix".
const char* error_code_name(ErrorCode code);

/// Exception thrown on any contract violation or unrecoverable failure
/// inside the pim library. what() renders the root message, the code name,
/// and the context chain (innermost first).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message, ErrorCode code = ErrorCode::internal);
  Error(const std::string& message, ErrorCode code, std::vector<std::string> context);

  ErrorCode code() const { return code_; }

  /// Root-cause message without code name or context chain.
  const std::string& message() const { return message_; }

  /// Context notes, innermost (closest to the failure) first.
  const std::vector<std::string>& context() const { return context_; }

  /// Copy of this error with one more context note appended.
  Error with_context(const std::string& note) const;

 private:
  static std::string render(const std::string& message, ErrorCode code,
                            const std::vector<std::string>& context);

  ErrorCode code_;
  std::string message_;
  std::vector<std::string> context_;
};

/// Throws pim::Error with `message` when `condition` is false.
/// Used to establish preconditions at public API boundaries.
void require(bool condition, const std::string& message);
void require(bool condition, const std::string& message, ErrorCode code);

/// Unconditionally throws pim::Error; use for unreachable branches.
[[noreturn]] void fail(const std::string& message);
[[noreturn]] void fail(const std::string& message, ErrorCode code);

/// Implementation hook for PIM_REQUIRE: throws with " (file:line)" appended.
[[noreturn]] void fail_at(const char* file, int line, const std::string& message,
                          ErrorCode code = ErrorCode::internal);

}  // namespace pim

/// require() with automatic call-site context: the thrown Error's message
/// ends in " (file.cpp:123)". Use at internal checkpoints where the
/// message alone would not identify the failing code path.
#define PIM_REQUIRE(cond, msg)                              \
  do {                                                      \
    if (!(cond)) ::pim::fail_at(__FILE__, __LINE__, (msg)); \
  } while (0)

/// PIM_REQUIRE with an explicit error code.
#define PIM_REQUIRE_CODE(cond, msg, code)                           \
  do {                                                              \
    if (!(cond)) ::pim::fail_at(__FILE__, __LINE__, (msg), (code)); \
  } while (0)
