// Library-wide error type and contract-checking helpers.
#pragma once

#include <stdexcept>
#include <string>

namespace pim {

/// Exception thrown on any contract violation or unrecoverable failure
/// inside the pim library (bad arguments, singular matrices, unparseable
/// files, non-convergent solves, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws pim::Error with `message` when `condition` is false.
/// Used to establish preconditions at public API boundaries.
void require(bool condition, const std::string& message);

/// Unconditionally throws pim::Error; use for unreachable branches.
[[noreturn]] void fail(const std::string& message);

}  // namespace pim
