#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace pim {
namespace {
bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string quote(const std::string& cell) {
  if (!needs_quoting(cell)) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void emit(std::ostringstream& os, const std::vector<std::string>& row) {
  for (size_t c = 0; c < row.size(); ++c) {
    if (c) os << ',';
    os << quote(row[c]);
  }
  os << '\n';
}
}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "CsvWriter: header must not be empty");
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  require(cells.size() == header_.size(), "CsvWriter: row arity does not match header");
  rows_.push_back(cells);
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  emit(os, header_);
  for (const auto& row : rows_) emit(os, row);
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "CsvWriter: cannot open '" + path + "' for writing");
  out << to_string();
  require(out.good(), "CsvWriter: write to '" + path + "' failed");
}

}  // namespace pim
