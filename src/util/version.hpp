// Library version identity, shared by `pim --version`, the run ledger,
// and anything that stamps artifacts. Semver: the minor tracks the PR
// sequence growing the library; a major stays 0 until the paper
// reproduction is complete.
//
// The API and cache-format numbers are *defined* here (single source of
// truth for artifact stamping) and re-exported under their historical
// names by api/pim_api.hpp (pim::api::kApiVersion) and cache/key.hpp
// (pim::cache::kFormatVersion).
#pragma once

namespace pim {

inline constexpr const char* kVersion = "0.9.0";

/// Version of the pim::api request/result structs (api/pim_api.hpp).
/// v2: every request carries deadline_ms; results grew partial flags.
/// (run_invalidate / run_cache_admin were added additively.)
/// v3: the canonical JSON wire codec (api/wire.hpp) makes every request
/// and result FIELD NAME part of the public contract, and run_batch
/// executes heterogeneous sub-requests under one shared budget. The
/// evolution rule applied: adding run_batch alone would have been
/// additive (no bump), but binding the structs to canonical wire names
/// changes what an api_version means — a v2 peer cannot assume its field
/// spellings are contractual — so the number moves. Future additive
/// fields (new optional members with defaults) keep v3; any rename or
/// meaning change bumps again.
inline constexpr int kApiVersionNumber = 3;

/// Cache canonicalization / payload-layout version (cache/key.hpp).
/// v3: provenance manifests recorded alongside every entry; facets are
/// folded into keys via KeyBuilder::facet (docs/caching.md).
inline constexpr int kCacheFormatVersion = 3;

}  // namespace pim
