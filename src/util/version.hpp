// Library version identity, shared by `pim --version`, the run ledger,
// and anything that stamps artifacts. Semver: the minor tracks the PR
// sequence growing the library; a major stays 0 until the paper
// reproduction is complete.
//
// The API and cache-format numbers are *defined* here (single source of
// truth for artifact stamping) and re-exported under their historical
// names by api/pim_api.hpp (pim::api::kApiVersion) and cache/key.hpp
// (pim::cache::kFormatVersion).
#pragma once

namespace pim {

inline constexpr const char* kVersion = "0.8.0";

/// Version of the pim::api request/result structs (api/pim_api.hpp).
/// v2: every request carries deadline_ms; results grew partial flags.
/// (run_invalidate / run_cache_admin were added additively.)
inline constexpr int kApiVersionNumber = 2;

/// Cache canonicalization / payload-layout version (cache/key.hpp).
/// v3: provenance manifests recorded alongside every entry; facets are
/// folded into keys via KeyBuilder::facet (docs/caching.md).
inline constexpr int kCacheFormatVersion = 3;

}  // namespace pim
