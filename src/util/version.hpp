// Library version identity, shared by `pim --version` and anything that
// stamps artifacts. Semver: the minor tracks the PR sequence growing the
// library; a major stays 0 until the paper reproduction is complete.
#pragma once

namespace pim {

inline constexpr const char* kVersion = "0.5.0";

}  // namespace pim
