#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace pim {

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(trim(text.substr(start)));
      break;
    }
    pieces.emplace_back(trim(text.substr(start, pos - start)));
    start = pos + 1;
  }
  return pieces;
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) tokens.emplace_back(text.substr(start, i - start));
  }
  return tokens;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

double parse_double(std::string_view text) {
  const std::string buffer{trim(text)};
  require(!buffer.empty(), "parse_double: empty input", ErrorCode::bad_input);
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  require(end == buffer.c_str() + buffer.size(),
          "parse_double: trailing characters in '" + buffer + "'",
          ErrorCode::bad_input);
  return value;
}

long parse_long(std::string_view text) {
  const std::string buffer{trim(text)};
  require(!buffer.empty(), "parse_long: empty input", ErrorCode::bad_input);
  char* end = nullptr;
  const long value = std::strtol(buffer.c_str(), &end, 10);
  require(end == buffer.c_str() + buffer.size(),
          "parse_long: trailing characters in '" + buffer + "'",
          ErrorCode::bad_input);
  return value;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

std::string format_sig(double value, int digits) {
  std::string out = format("%.*g", digits, value);
  return out;
}

}  // namespace pim
