#include "util/paths.hpp"

#include <cstdlib>
#include <filesystem>
#include <mutex>

#include "util/error.hpp"

namespace pim {
namespace {

std::mutex& mu() {
  static std::mutex m;
  return m;
}

std::string& override_slot() {
  static std::string dir;
  return dir;
}

}  // namespace

void set_out_dir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu());
  override_slot() = dir;
}

std::string out_dir() {
  {
    std::lock_guard<std::mutex> lock(mu());
    if (!override_slot().empty()) return override_slot();
  }
  if (const char* env = std::getenv("PIM_OUT_DIR"); env != nullptr && *env != '\0')
    return env;
  return "bench_out";
}

bool out_dir_configured() {
  {
    std::lock_guard<std::mutex> lock(mu());
    if (!override_slot().empty()) return true;
  }
  const char* env = std::getenv("PIM_OUT_DIR");
  return env != nullptr && *env != '\0';
}

std::string ensure_out_dir() {
  const std::string dir = out_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  require(!ec && std::filesystem::is_directory(dir),
          "out-dir: cannot create '" + dir + "'", ErrorCode::io_parse);
  return dir;
}

std::string out_path(const std::string& name) { return ensure_out_dir() + "/" + name; }

}  // namespace pim
