// SI unit constants and conversion helpers.
//
// All quantities inside the library are stored in base SI units: seconds,
// meters, ohms, farads, watts, volts, hertz, square meters. These constants
// make literals at the API boundary readable (`5.0 * unit::mm`), and the
// `to_*` helpers convert back for display.
#pragma once

namespace pim::unit {

// --- time ---
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;
inline constexpr double fs = 1e-15;

// --- length ---
inline constexpr double m = 1.0;
inline constexpr double cm = 1e-2;
inline constexpr double mm = 1e-3;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;

// --- capacitance ---
inline constexpr double F = 1.0;
inline constexpr double pF = 1e-12;
inline constexpr double fF = 1e-15;
inline constexpr double aF = 1e-18;

// --- resistance ---
inline constexpr double ohm = 1.0;
inline constexpr double kohm = 1e3;
inline constexpr double Mohm = 1e6;

// --- power / energy / current ---
inline constexpr double W = 1.0;
inline constexpr double mW = 1e-3;
inline constexpr double uW = 1e-6;
inline constexpr double nW = 1e-9;
inline constexpr double J = 1.0;
inline constexpr double fJ = 1e-15;
inline constexpr double A = 1.0;
inline constexpr double mA = 1e-3;
inline constexpr double uA = 1e-6;
inline constexpr double nA = 1e-9;

// --- frequency ---
inline constexpr double Hz = 1.0;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

// --- area ---
inline constexpr double m2 = 1.0;
inline constexpr double mm2 = 1e-6;
inline constexpr double um2 = 1e-12;

// --- display conversions (value in SI -> value in unit) ---
inline constexpr double to_ps(double t) { return t / ps; }
inline constexpr double to_ns(double t) { return t / ns; }
inline constexpr double to_fF(double c) { return c / fF; }
inline constexpr double to_pF(double c) { return c / pF; }
inline constexpr double to_um(double l) { return l / um; }
inline constexpr double to_mm(double l) { return l / mm; }
inline constexpr double to_nm(double l) { return l / nm; }
inline constexpr double to_mW(double p) { return p / mW; }
inline constexpr double to_uW(double p) { return p / uW; }
inline constexpr double to_GHz(double f) { return f / GHz; }
inline constexpr double to_um2(double a) { return a / um2; }
inline constexpr double to_mm2(double a) { return a / mm2; }

}  // namespace pim::unit

namespace pim::constant {

// Vacuum permittivity [F/m].
inline constexpr double eps0 = 8.8541878128e-12;
// Boltzmann constant [J/K].
inline constexpr double k_boltzmann = 1.380649e-23;
// Elementary charge [C].
inline constexpr double q_electron = 1.602176634e-19;
// Thermal voltage kT/q at 300 K [V].
inline constexpr double v_thermal_300k = 0.025852;
// Bulk resistivity of copper [ohm*m].
inline constexpr double rho_copper_bulk = 1.72e-8;
// Electron mean free path in copper [m]; drives the width-dependent
// scattering term of the effective resistivity model.
inline constexpr double copper_mean_free_path = 39.0e-9;

}  // namespace pim::constant
