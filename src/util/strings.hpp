// Small string helpers shared by the text-format parsers (tech files,
// Liberty-lite, SoC specs) and the table/CSV writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pim {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Splits on `separator`, trimming each piece; empty pieces are kept.
std::vector<std::string> split(std::string_view text, char separator);

/// Splits on runs of whitespace; empty tokens are never produced.
std::vector<std::string> split_whitespace(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Parses a floating-point number; throws pim::Error on any trailing junk.
double parse_double(std::string_view text);

/// Parses a non-negative integer; throws pim::Error on any trailing junk.
long parse_long(std::string_view text);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Formats `value` with `digits` significant digits, trimming zeros.
std::string format_sig(double value, int digits);

}  // namespace pim
