// Deterministic pseudo-random generator (SplitMix64) used by tests and the
// NoC testcase generators. Determinism matters: every bench re-generates
// the same workloads on every run, so paper-style tables are reproducible.
#pragma once

#include <cmath>
#include <cstdint>

namespace pim {

/// SplitMix64: tiny, fast, full-period 64-bit generator; adequate for
/// workload synthesis and Monte-Carlo-style sweeps (not cryptographic).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t next_u64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n).
  uint64_t next_below(uint64_t n) { return n ? next_u64() % n : 0; }

  /// Standard normal deviate (Box-Muller; one value per call, the spare
  /// is cached).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = next_double();
    while (u1 <= 1e-300) u1 = next_double();
    const double u2 = next_double();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586;
    spare_ = mag * std::sin(two_pi * u2);
    have_spare_ = true;
    return mag * std::cos(two_pi * u2);
  }

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double sigma) { return mean + sigma * normal(); }

 private:
  uint64_t state_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

/// SplitMix64 finalizer: full-avalanche 64-bit mix.
inline uint64_t mix_u64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seed for the `index`-th substream of `base`: decorrelated streams for
/// per-item RNGs in parallel sweeps (exec engine, fault injection). The
/// mapping is a pure function of (base, index), so a given item draws the
/// same stream at any thread count or execution order.
inline uint64_t derive_stream_seed(uint64_t base, uint64_t index) {
  return mix_u64(base + 0x9e3779b97f4a7c15ULL * (index + 1));
}

}  // namespace pim
