#include "util/error.hpp"

namespace pim {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::bad_input: return "bad_input";
    case ErrorCode::singular_matrix: return "singular_matrix";
    case ErrorCode::no_convergence: return "no_convergence";
    case ErrorCode::io_parse: return "io_parse";
    case ErrorCode::internal: return "internal";
    case ErrorCode::deadline_exceeded: return "deadline_exceeded";
    case ErrorCode::cancelled: return "cancelled";
    case ErrorCode::overloaded: return "overloaded";
  }
  return "internal";
}

std::string Error::render(const std::string& message, ErrorCode code,
                          const std::vector<std::string>& context) {
  std::string out = message;
  out += " [";
  out += error_code_name(code);
  out += "]";
  for (const std::string& note : context) {
    out += "\n  while ";
    out += note;
  }
  return out;
}

Error::Error(const std::string& message, ErrorCode code)
    : Error(message, code, {}) {}

Error::Error(const std::string& message, ErrorCode code, std::vector<std::string> context)
    : std::runtime_error(render(message, code, context)),
      code_(code),
      message_(message),
      context_(std::move(context)) {}

Error Error::with_context(const std::string& note) const {
  std::vector<std::string> chain = context_;
  chain.push_back(note);
  return Error(message_, code_, std::move(chain));
}

void require(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

void require(bool condition, const std::string& message, ErrorCode code) {
  if (!condition) throw Error(message, code);
}

void fail(const std::string& message) { throw Error(message); }

void fail(const std::string& message, ErrorCode code) { throw Error(message, code); }

void fail_at(const char* file, int line, const std::string& message, ErrorCode code) {
  // Strip the directory: call sites only need the basename to be findable.
  const std::string path(file);
  const size_t slash = path.find_last_of('/');
  const std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  throw Error(message + " (" + base + ":" + std::to_string(line) + ")", code);
}

}  // namespace pim
