// Recoverable result type for solver-facing APIs.
//
// Expected<T> holds either a value or a pim::Error. It lets batch flows
// (characterization sweeps, Monte-Carlo loops, NoC link implementation)
// inspect failures and degrade gracefully instead of unwinding the whole
// run, while value() still throws for call sites that want the old
// fail-fast behavior. See docs/robustness.md.
#pragma once

#include <optional>
#include <utility>

#include "util/error.hpp"

namespace pim {

template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Expected(Error error) : error_(std::move(error)) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// The value; throws the stored Error when this holds a failure.
  T& value() & {
    throw_if_error();
    return *value_;
  }
  const T& value() const& {
    throw_if_error();
    return *value_;
  }

  /// Moves the value out; throws the stored Error when this holds a failure.
  T take() {
    throw_if_error();
    return std::move(*value_);
  }

  /// The value, or `fallback` when this holds a failure.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  /// The stored error. Only valid when !ok().
  const Error& error() const { return *error_; }

  /// Failure-preserving context chaining: appends `note` to the error's
  /// context when this holds a failure; no-op on success.
  Expected<T> with_context(const std::string& note) && {
    if (!ok()) return Expected<T>(error_->with_context(note));
    return std::move(*this);
  }

 private:
  void throw_if_error() const {
    if (!ok()) throw *error_;
  }

  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Expected<void>: success/failure with no payload, for operations whose
/// only result is whether they worked (e.g. a factorization attempt).
template <>
class [[nodiscard]] Expected<void> {
 public:
  Expected() = default;
  Expected(Error error) : error_(std::move(error)) {}  // NOLINT: implicit by design

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Throws the stored Error when this holds a failure; no-op on success.
  void value() const {
    if (!ok()) throw *error_;
  }

  const Error& error() const { return *error_; }

  Expected<void> with_context(const std::string& note) && {
    if (!ok()) return Expected<void>(error_->with_context(note));
    return {};
  }

 private:
  std::optional<Error> error_;
};

}  // namespace pim
