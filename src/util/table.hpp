// Console table formatter used by benches to print paper-style tables.
//
// Usage:
//   Table t({"L (mm)", "B%", "P%", "Prop%"});
//   t.add_row({"1", "45.2", "-7.1", "3.9"});
//   std::cout << t.to_string();
#pragma once

#include <string>
#include <vector>

namespace pim {

/// Right-pads cells so columns line up; renders with a header underline.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row. Must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator row.
  void add_separator();

  /// Number of data rows added so far (separators excluded).
  size_t row_count() const { return data_rows_; }

  /// Renders the whole table, each line newline-terminated.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  // A row with exactly one empty sentinel cell marks a separator.
  std::vector<std::vector<std::string>> rows_;
  size_t data_rows_ = 0;
};

}  // namespace pim
