#include "util/faultinject.hpp"

#include <cstdlib>
#include <map>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace pim::fault {
namespace {

// Per-site state. Entries are created on demand and never destroyed (the
// registry lives for the process), so should_fire can hold a SiteState*
// across the draw without racing a concurrent configure()/clear() — only
// the armed/probability/seed fields change, under the registry mutex.
struct SiteState {
  bool armed = false;
  double probability = 1.0;
  uint64_t seed = 1;  // site-name hash already mixed in
  Rng serial_rng{1};  // global sequential stream (serial callers)
  std::atomic<int64_t> fired{0};
  obs::Counter* counter = nullptr;  // "fault.<site>.injected"
};

std::mutex& mu() {
  static std::mutex m;
  return m;
}

std::map<std::string, SiteState>& sites() {
  static std::map<std::string, SiteState> s;
  return s;
}

// Bumped by configure()/clear() so thread-local item streams derived from
// a previous configuration are discarded instead of reused.
std::atomic<uint64_t>& config_epoch() {
  static std::atomic<uint64_t> epoch{0};
  return epoch;
}

// Thread-local per-item stream context, installed by ScopedStream. Each
// (site, item) pair owns an independent SplitMix64 stream seeded as a
// pure function of the site seed and the item index; draws within the
// item advance it sequentially, so a work item sees the same fault
// pattern at any thread count.
struct StreamContext {
  bool active = false;
  uint64_t stream = 0;
  uint64_t epoch = 0;
  std::map<std::string, Rng> item_rngs;
};

StreamContext& stream_context() {
  thread_local StreamContext ctx;
  return ctx;
}

uint64_t site_name_hash(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) h = (h ^ static_cast<uint64_t>(c)) * 0x100000001b3ULL;
  return h;
}

void refresh_armed_flag_locked() {
  bool any = false;
  for (const auto& [name, state] : sites()) any = any || state.armed;
  armed_flag().store(any, std::memory_order_relaxed);
}

}  // namespace

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> names = {
      kLuSingular,      kNewtonDiverge,  kDeckParse, kIoOpen,
      kVariationSample, kDeadlineExpire, kCancelMidchunk};
  return names;
}

void configure(const std::string& spec) {
  struct Parsed {
    std::string name;
    double probability = 1.0;
    uint64_t seed = 1;
  };
  std::vector<Parsed> parsed;
  for (const std::string& entry : split(spec, ',')) {
    const std::string trimmed(trim(entry));
    if (trimmed.empty()) continue;
    const auto parts = split(trimmed, ':');
    require(parts.size() <= 3,
            "fault: expected site[:prob[:seed]], got '" + trimmed + "'",
            ErrorCode::bad_input);
    Parsed p;
    p.name = parts[0];
    bool known = false;
    for (const std::string& s : known_sites()) known = known || s == p.name;
    require(known, "fault: unknown site '" + p.name + "'", ErrorCode::bad_input);
    if (parts.size() >= 2) {
      p.probability = parse_double(parts[1]);
      require(p.probability >= 0.0 && p.probability <= 1.0,
              "fault: probability must be in [0, 1] for site '" + p.name + "'",
              ErrorCode::bad_input);
    }
    if (parts.size() == 3) p.seed = static_cast<uint64_t>(parse_long(parts[2]));
    parsed.push_back(p);
  }
  // An effectively empty spec is a caller mistake (clear() is the way to
  // disarm), and silently arming nothing would hide it.
  require(!parsed.empty(), "fault: empty spec", ErrorCode::bad_input);

  std::lock_guard<std::mutex> lock(mu());
  for (auto& [name, state] : sites()) {
    state.armed = false;
    state.fired.store(0, std::memory_order_relaxed);
  }
  for (const Parsed& p : parsed) {
    SiteState& state = sites()[p.name];
    state.armed = true;
    state.probability = p.probability;
    // Mix the site name into the seed so sites armed with the same seed
    // still draw independent streams.
    state.seed = p.seed ^ site_name_hash(p.name);
    state.serial_rng = Rng(state.seed);
    state.fired.store(0, std::memory_order_relaxed);
    if (state.counter == nullptr)
      state.counter = &obs::registry().counter("fault." + p.name + ".injected");
  }
  refresh_armed_flag_locked();
  config_epoch().fetch_add(1, std::memory_order_relaxed);
}

void configure_from_env() {
  const char* spec = std::getenv("PIM_FAULT");
  if (spec != nullptr && spec[0] != '\0') configure(spec);
}

void clear() {
  std::lock_guard<std::mutex> lock(mu());
  for (auto& [name, state] : sites()) {
    state.armed = false;
    state.fired.store(0, std::memory_order_relaxed);
  }
  armed_flag().store(false, std::memory_order_relaxed);
  config_epoch().fetch_add(1, std::memory_order_relaxed);
}

bool should_fire(const char* site) {
  if (!armed()) return false;
  SiteState* state = nullptr;
  double probability = 0.0;
  uint64_t seed = 0;
  {
    std::lock_guard<std::mutex> lock(mu());
    const auto it = sites().find(site);
    if (it == sites().end() || !it->second.armed) return false;
    state = &it->second;
    probability = state->probability;
    seed = state->seed;
  }

  double draw = 0.0;
  StreamContext& ctx = stream_context();
  if (ctx.active) {
    // Item-stream path: the draw sequence depends only on (site seed,
    // item index), never on other threads, so parallel sweeps inject
    // deterministically. Streams from a stale configuration are dropped.
    const uint64_t epoch = config_epoch().load(std::memory_order_relaxed);
    if (ctx.epoch != epoch) {
      ctx.item_rngs.clear();
      ctx.epoch = epoch;
    }
    const auto [it, inserted] =
        ctx.item_rngs.try_emplace(site, Rng(derive_stream_seed(seed, ctx.stream)));
    draw = it->second.next_double();
  } else {
    // Serial path: one global sequential stream per site, exactly the
    // pre-parallelism behavior; the registry mutex serializes the draw.
    std::lock_guard<std::mutex> lock(mu());
    draw = state->serial_rng.next_double();
  }
  if (draw >= probability) return false;
  state->fired.fetch_add(1, std::memory_order_relaxed);
  // Registry counter is gated on obs::set_enabled like every metric;
  // fired_count() below is the always-on tally for tests that do not
  // collect metrics.
  state->counter->add(1);
  return true;
}

int64_t fired_count(const char* site) {
  std::lock_guard<std::mutex> lock(mu());
  const auto it = sites().find(site);
  if (it == sites().end() || !it->second.armed) return 0;
  return it->second.fired.load(std::memory_order_relaxed);
}

ScopedStream::ScopedStream(uint64_t stream) {
  StreamContext& ctx = stream_context();
  prev_active_ = ctx.active;
  prev_stream_ = ctx.stream;
  ctx.active = true;
  ctx.stream = stream;
  if (!ctx.item_rngs.empty()) ctx.item_rngs.clear();
}

ScopedStream::~ScopedStream() {
  StreamContext& ctx = stream_context();
  ctx.active = prev_active_;
  ctx.stream = prev_stream_;
  if (!ctx.item_rngs.empty()) ctx.item_rngs.clear();
}

}  // namespace pim::fault
