#include "util/faultinject.hpp"

#include <cstdlib>
#include <map>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace pim::fault {
namespace {

struct SiteState {
  double probability = 1.0;
  Rng rng{1};
  int64_t fired = 0;
  obs::Counter* counter = nullptr;  // "fault.<site>.injected"
};

std::mutex& mu() {
  static std::mutex m;
  return m;
}

std::map<std::string, SiteState>& sites() {
  static std::map<std::string, SiteState> s;
  return s;
}

}  // namespace

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> names = {
      kLuSingular, kNewtonDiverge, kDeckParse, kIoOpen, kVariationSample};
  return names;
}

void configure(const std::string& spec) {
  std::map<std::string, SiteState> parsed;
  for (const std::string& entry : split(spec, ',')) {
    const std::string trimmed(trim(entry));
    if (trimmed.empty()) continue;
    const auto parts = split(trimmed, ':');
    require(parts.size() <= 3,
            "fault: expected site[:prob[:seed]], got '" + trimmed + "'",
            ErrorCode::bad_input);
    const std::string& name = parts[0];
    bool known = false;
    for (const std::string& s : known_sites()) known = known || s == name;
    require(known, "fault: unknown site '" + name + "'", ErrorCode::bad_input);

    SiteState state;
    if (parts.size() >= 2) {
      state.probability = parse_double(parts[1]);
      require(state.probability >= 0.0 && state.probability <= 1.0,
              "fault: probability must be in [0, 1] for site '" + name + "'",
              ErrorCode::bad_input);
    }
    uint64_t seed = 1;
    if (parts.size() == 3) seed = static_cast<uint64_t>(parse_long(parts[2]));
    // Mix the site name into the seed so sites armed with the same seed
    // still draw independent streams.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) h = (h ^ static_cast<uint64_t>(c)) * 0x100000001b3ULL;
    state.rng = Rng(seed ^ h);
    state.counter = &obs::registry().counter("fault." + name + ".injected");
    parsed.emplace(name, state);
  }
  // An effectively empty spec is a caller mistake (clear() is the way to
  // disarm), and silently arming nothing would hide it.
  require(!parsed.empty(), "fault: empty spec", ErrorCode::bad_input);

  std::lock_guard<std::mutex> lock(mu());
  sites() = std::move(parsed);
  armed_flag().store(!sites().empty(), std::memory_order_relaxed);
}

void configure_from_env() {
  const char* spec = std::getenv("PIM_FAULT");
  if (spec != nullptr && spec[0] != '\0') configure(spec);
}

void clear() {
  std::lock_guard<std::mutex> lock(mu());
  sites().clear();
  armed_flag().store(false, std::memory_order_relaxed);
}

bool should_fire(const char* site) {
  if (!armed()) return false;
  std::lock_guard<std::mutex> lock(mu());
  const auto it = sites().find(site);
  if (it == sites().end()) return false;
  SiteState& state = it->second;
  if (state.rng.next_double() >= state.probability) return false;
  ++state.fired;
  // Registry counter is gated on obs::set_enabled like every metric;
  // fired_count() below is the always-on tally for tests that do not
  // collect metrics.
  state.counter->add(1);
  return true;
}

int64_t fired_count(const char* site) {
  std::lock_guard<std::mutex> lock(mu());
  const auto it = sites().find(site);
  return it == sites().end() ? 0 : it->second.fired;
}

}  // namespace pim::fault
