#include "util/log.hpp"

#include <iostream>

namespace pim {
namespace {
LogLevel g_level = LogLevel::Warn;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "[debug] ";
    case LogLevel::Info:
      return "[info ] ";
    case LogLevel::Warn:
      return "[warn ] ";
    case LogLevel::ErrorLevel:
      return "[error] ";
    case LogLevel::Off:
      break;
  }
  return "";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  std::cerr << prefix(level) << message << '\n';
}

}  // namespace pim
