#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <mutex>

namespace pim {
namespace {

struct EnvLevel {
  bool present = false;
  LogLevel level = LogLevel::Warn;
};

const EnvLevel& env_level() {
  static const EnvLevel parsed = [] {
    EnvLevel e;
    const char* raw = std::getenv("PIM_LOG_LEVEL");
    if (raw != nullptr) e.present = log_level_from_name(raw, e.level);
    return e;
  }();
  return parsed;
}

std::atomic<int>& level_slot() {
  static std::atomic<int> level{
      static_cast<int>(env_level().present ? env_level().level : LogLevel::Warn)};
  return level;
}

std::mutex& emit_mutex() {
  static std::mutex mu;
  return mu;
}

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "[debug] ";
    case LogLevel::Info:
      return "[info ] ";
    case LogLevel::Warn:
      return "[warn ] ";
    case LogLevel::ErrorLevel:
      return "[error] ";
    case LogLevel::Off:
      break;
  }
  return "";
}

// ISO-8601 UTC with millisecond resolution: 2026-08-05T12:34:56.789Z
std::string timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[40];
  const size_t n = std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%S", &tm_utc);
  std::snprintf(buf + n, sizeof buf - n, ".%03dZ", static_cast<int>(ms));
  return buf;
}

}  // namespace

void set_log_level(LogLevel level) {
  level_slot().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(level_slot().load(std::memory_order_relaxed));
}

bool log_level_from_name(const std::string& name, LogLevel& out) {
  if (name == "debug") {
    out = LogLevel::Debug;
  } else if (name == "info") {
    out = LogLevel::Info;
  } else if (name == "warn") {
    out = LogLevel::Warn;
  } else if (name == "error") {
    out = LogLevel::ErrorLevel;
  } else if (name == "off") {
    out = LogLevel::Off;
  } else {
    return false;
  }
  return true;
}

bool log_level_env_override() { return env_level().present; }

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level() || level == LogLevel::Off) return;
  const std::string stamp = timestamp();
  std::lock_guard<std::mutex> lock(emit_mutex());
  std::cerr << stamp << ' ' << prefix(level) << message << '\n';
}

}  // namespace pim
