// Deterministic, seeded fault-injection harness.
//
// Tests (and operators chasing a robustness bug) arm named fault sites
// with a firing probability and a seed; instrumented code paths then ask
// should_fire(site) at the exact point where the real failure would
// originate. Each armed site owns an independent SplitMix64 stream, so a
// given (site, probability, seed) triple fires on exactly the same draws
// on every run — recovery paths can be exercised and asserted on
// deterministically.
//
// Activation:
//   - CLI: any pim subcommand accepts --inject-fault SPEC
//   - env: PIM_FAULT=SPEC (read once at process start by the CLI)
//   - tests: pim::fault::configure(SPEC) / pim::fault::clear()
//
// SPEC is a comma-separated list of site[:probability[:seed]], e.g.
// "lu.singular:0.05:7,deck.parse:0.5". Probability defaults to 1.0,
// seed to 1. Unknown site names are rejected (bad_input) so typos fail
// loudly instead of silently injecting nothing.
//
// When the harness is disarmed (the default), should_fire() is a single
// relaxed atomic load and branch — instrumented hot paths run at their
// uninstrumented speed. Every fire increments the metrics counter
// "fault.<site>.injected" (PR-1 registry), so tests can assert that a
// recovery path actually fired.
//
// Concurrency (see docs/parallelism.md): all of the above is race-free
// under concurrent callers, and fire counts are exact (atomic fetch_add).
// Serial code draws from one global per-site stream, exactly as before.
// Parallel work items additionally install a ScopedStream with their item
// index (the exec engine does this automatically): draws then come from a
// thread-local stream derived purely from (site seed, item index), so
// WHICH items see an injected fault is identical at any thread count —
// faults stay deterministic even inside parallel sweeps.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pim::fault {

// Canonical site names. Keep in sync with known_sites() and
// docs/robustness.md.
inline constexpr const char* kLuSingular = "lu.singular";          // dense LU pivot
inline constexpr const char* kNewtonDiverge = "newton.diverge";    // spice Newton loop
inline constexpr const char* kDeckParse = "deck.parse";            // spice deck parser
inline constexpr const char* kIoOpen = "io.open";                  // deck/coeffs file I/O
inline constexpr const char* kVariationSample = "variation.sample";// per-MC-sample solve
inline constexpr const char* kDeadlineExpire = "deadline-expire";  // deadline::check() poll
inline constexpr const char* kCancelMidchunk = "cancel-midchunk";  // deadline::check() poll

/// All site names configure() accepts.
const std::vector<std::string>& known_sites();

/// Parses and arms `spec` ("site[:prob[:seed]][,...]"). Replaces any
/// previous configuration. Throws Error(bad_input) on malformed specs,
/// out-of-range probabilities, or unknown sites.
void configure(const std::string& spec);

/// Arms from the PIM_FAULT environment variable when it is set and
/// non-empty; no-op otherwise.
void configure_from_env();

/// Disarms every site (the harness returns to zero-cost mode).
void clear();

inline std::atomic<bool>& armed_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

/// True when at least one site is armed.
inline bool armed() { return armed_flag().load(std::memory_order_relaxed); }

/// Draws from `site`'s stream: true when the fault should be injected
/// here. Always false when the harness is disarmed or the site is not
/// part of the active configuration.
bool should_fire(const char* site);

/// Number of times `site` has fired since it was configured.
int64_t fired_count(const char* site);

/// Installs a deterministic per-item fault stream on the current thread
/// for the scope: every should_fire() draw comes from a stream that is a
/// pure function of (site seed, `stream`), independent of thread count,
/// scheduling, or draws made by other items. The exec engine installs one
/// per work item with the item index; restores the previous context (and
/// any outer item's stream positions are NOT preserved — streams restart
/// per item by design).
class ScopedStream {
 public:
  explicit ScopedStream(uint64_t stream);
  ~ScopedStream();
  ScopedStream(const ScopedStream&) = delete;
  ScopedStream& operator=(const ScopedStream&) = delete;

 private:
  bool prev_active_;
  uint64_t prev_stream_;
};

}  // namespace pim::fault
