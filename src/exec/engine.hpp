// Shared parallel execution core: a work-queue thread pool under
// deterministic-by-construction data-parallel primitives.
//
// Every hot loop in the repo (characterization deck sweeps, Monte-Carlo
// yield sampling, NoC merge-candidate evaluation, bench repetition) is a
// sweep over independent items, so they all run through this one engine
// instead of growing ad-hoc threads per subsystem. Determinism contract
// (docs/parallelism.md):
//
//  - Static chunking: items [0, n) are split into T contiguous chunks by
//    index. Which thread runs a chunk is scheduler-dependent; which items
//    form a chunk is not, and no item's computation depends on another's.
//  - Ordered reduction: results land in a slot vector by item index and
//    callers reduce in index order after the join, so sums, argmins, and
//    "first failure" are identical at any thread count.
//  - Per-item seeded RNG streams: the seeded variants hand item i an
//    Rng(derive_stream_seed(seed, i)) — SplitMix64 substreams that are a
//    pure function of (seed, i), never of execution order.
//  - Fault injection stays deterministic: each item runs under a
//    fault::ScopedStream(i), so armed sites fire on the same items at any
//    thread count (see util/faultinject.hpp).
//  - Metrics stay exact: each chunk buffers counter increments AND timer
//    samples (histogram buckets included) in a per-thread
//    obs::MetricShard merged at join — no lock, no shared cache line on
//    the hot path, and reported totals/quantiles are bit-identical at
//    any thread count. The engine itself exports exec.* scheduler
//    metrics (queue-wait/chunk histograms, busy/idle/imbalance gauges)
//    when collection is on — see docs/observability.md.
//
// Error semantics: parallel_for / parallel_map are fail-fast — the error
// of the LOWEST failing item index is rethrown after the join (chunks
// stop at their first failure; later items of other chunks may still have
// run, which is fine because items are side-effect-free by contract).
// parallel_try_map implements the PR-2 skip-and-record degradation
// semantics: every failure is captured per item and returned alongside
// the surviving values, ascending by item index.
//
// Deadlines & cancellation (docs/robustness.md): every item boundary
// polls pim::deadline::check() under the item's fault stream. A stop is
// reported with *prefix-cutoff* semantics: each chunk records the first
// item index at which the stop triggered, the region's cutoff is the
// minimum over chunks, the completed set is exactly [0, cutoff), and any
// results computed at indices >= cutoff are discarded. Since per-item
// work is index-pure, every item below the cutoff carries a bit-identical
// result at any thread count; with the fault-injected stop sites the
// cutoff itself is also thread-count-invariant. parallel_for/map raise a
// typed deadline_exceeded/cancelled Error carrying the completed count
// (a failure below the cutoff takes precedence — it would have been
// raised without the stop too); parallel_try_map returns the truncated
// BatchResult with stop/completed set so callers can degrade gracefully.
//
// Thread count: threads() resolves set_threads() > PIM_THREADS >
// std::thread::hardware_concurrency, and the CLI's global --threads flag
// feeds set_threads(). Nested parallel regions run inline on the calling
// worker (no pool re-entry), so composed code cannot deadlock the queue.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "deadline/deadline.hpp"
#include "util/error.hpp"
#include "util/expected.hpp"
#include "util/rng.hpp"

namespace pim::exec {

/// std::thread::hardware_concurrency, with a floor of 1.
int hardware_threads();

/// Pins the process-wide default thread count; 0 restores the automatic
/// resolution (PIM_THREADS env, else hardware_threads()).
void set_threads(int n);

/// The resolved default thread count for parallel regions.
int threads();

/// Per-call knobs for the parallel primitives.
struct ParallelOptions {
  /// Worker count for this region; 0 uses the global threads() default.
  int threads = 0;
  /// Minimum items per chunk: regions with fewer than 2*grain items run
  /// on proportionally fewer threads (a 3-item sweep never spins up 8
  /// workers). Chunking stays static either way.
  size_t grain = 1;
};

namespace detail {

/// One captured failure: the item index and the pim::Error it threw.
struct ItemFailure {
  size_t item;
  Error error;
};

/// Everything a region produced: captured failures (all below the
/// cutoff), plus the cooperative-stop outcome. When stop == none the
/// cutoff equals n (every item ran).
struct RegionOutcome {
  std::vector<ItemFailure> failures;  ///< ascending by item index, < cutoff
  deadline::StopReason stop = deadline::StopReason::none;
  size_t cutoff = 0;  ///< completed items are exactly [0, cutoff)
};

/// Core runner: executes body(i) for i in [0, n) over static contiguous
/// chunks on the shared pool, with per-item fault streams, per-item
/// deadline/cancel polls, and per-chunk metric shards. fail_fast stops
/// each chunk at its first failure.
RegionOutcome run_region(size_t n, const ParallelOptions& options,
                         bool fail_fast,
                         const std::function<void(size_t)>& body);

[[noreturn]] void rethrow_first(const ItemFailure& failure);

}  // namespace detail

/// Runs body(i) for every i in [0, n). Rethrows the lowest failing item's
/// error (with the item index appended to its context) after the join.
inline void parallel_for(size_t n, const std::function<void(size_t)>& body,
                         const ParallelOptions& options = {}) {
  auto outcome = detail::run_region(n, options, /*fail_fast=*/true, body);
  if (!outcome.failures.empty()) detail::rethrow_first(outcome.failures.front());
  if (outcome.stop != deadline::StopReason::none)
    throw deadline::stop_error(outcome.stop, outcome.cutoff, n);
}

/// parallel_for with a per-item RNG stream derived from (seed, i).
inline void parallel_for_seeded(size_t n, uint64_t seed,
                                const std::function<void(size_t, Rng&)>& body,
                                const ParallelOptions& options = {}) {
  parallel_for(
      n,
      [&](size_t i) {
        Rng rng(derive_stream_seed(seed, i));
        body(i, rng);
      },
      options);
}

/// Maps fn over [0, n) into a vector ordered by item index (R must be
/// default-constructible). Fail-fast error semantics as parallel_for.
template <typename R>
std::vector<R> parallel_map(size_t n, const std::function<R(size_t)>& fn,
                            const ParallelOptions& options = {}) {
  std::vector<R> out(n);
  parallel_for(n, [&](size_t i) { out[i] = fn(i); }, options);
  return out;
}

/// Outcome of a skip-and-record batch: values for surviving items (by
/// index), plus the failed indices and their errors, ascending. When a
/// deadline/cancel stop truncated the batch, `stop` says why and
/// `completed` is the prefix cutoff: values at indices >= completed are
/// nullopt (discarded even if computed) and every failure index is below
/// it.
template <typename R>
struct BatchResult {
  std::vector<std::optional<R>> values;  ///< size n; nullopt where failed/cut
  std::vector<size_t> failed;            ///< ascending item indices
  std::vector<Error> errors;             ///< errors[k] belongs to failed[k]
  deadline::StopReason stop = deadline::StopReason::none;
  size_t completed = 0;  ///< prefix cutoff; == values.size() when stop == none

  bool all_ok() const { return failed.empty() && stop == deadline::StopReason::none; }
  size_t surviving() const { return completed - failed.size(); }
  /// Lowest failing item's error. Only valid when !failed.empty().
  const Error& first_error() const { return errors.front(); }
  bool truncated() const { return stop != deadline::StopReason::none; }

  /// All values when every item survived, else the first error (a real
  /// failure outranks the stop) — for call sites that want
  /// Expected-style propagation instead of degradation.
  Expected<std::vector<R>> into_expected() && {
    if (!failed.empty()) return Expected<std::vector<R>>(errors.front());
    if (truncated())
      return Expected<std::vector<R>>(
          deadline::stop_error(stop, completed, values.size()));
    std::vector<R> out;
    out.reserve(values.size());
    for (auto& v : values) out.push_back(std::move(*v));
    return Expected<std::vector<R>>(std::move(out));
  }
};

/// Maps fn over [0, n), recording per-item failures instead of aborting
/// the batch (PR-2 degradation semantics; the caller enforces any quorum).
template <typename R>
BatchResult<R> parallel_try_map(size_t n, const std::function<R(size_t)>& fn,
                                const ParallelOptions& options = {}) {
  BatchResult<R> out;
  out.values.resize(n);
  auto outcome = detail::run_region(
      n, options, /*fail_fast=*/false, [&](size_t i) { out.values[i] = fn(i); });
  out.stop = outcome.stop;
  out.completed = outcome.cutoff;
  // Prefix-cutoff discard: a chunk past the cutoff may have computed some
  // values before its own stop triggered; dropping them keeps the
  // completed set exactly [0, cutoff) at any thread count.
  for (size_t i = out.completed; i < n; ++i) out.values[i].reset();
  out.failed.reserve(outcome.failures.size());
  out.errors.reserve(outcome.failures.size());
  for (auto& f : outcome.failures) {
    out.failed.push_back(f.item);
    out.errors.push_back(std::move(f.error));
  }
  return out;
}

/// parallel_try_map with a per-item RNG stream derived from (seed, i).
template <typename R>
BatchResult<R> parallel_try_map_seeded(size_t n, uint64_t seed,
                                       const std::function<R(size_t, Rng&)>& fn,
                                       const ParallelOptions& options = {}) {
  return parallel_try_map<R>(
      n,
      [&](size_t i) {
        Rng rng(derive_stream_seed(seed, i));
        return fn(i, rng);
      },
      options);
}

}  // namespace pim::exec
