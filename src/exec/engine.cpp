#include "exec/engine.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/faultinject.hpp"
#include "util/strings.hpp"

namespace pim::exec {
namespace {

// ------------------------------------------------------------ threads

std::atomic<int>& pinned_threads() {
  static std::atomic<int> pinned{0};
  return pinned;
}

int env_threads() {
  const char* env = std::getenv("PIM_THREADS");
  if (env == nullptr || env[0] == '\0') return 0;
  // A malformed value must not abort the process at an arbitrary point;
  // it just falls back to the hardware default.
  try {
    const long n = parse_long(env);
    return n >= 1 ? static_cast<int>(n) : 0;
  } catch (const Error&) {
    return 0;
  }
}

// -------------------------------------------------------------- pool

// Work-queue thread pool shared by every parallel region. Workers are
// spawned lazily up to the largest count any region has requested and
// parked on the queue's condition variable between regions; the
// destructor (static destruction at process exit) drains and joins them.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  void ensure_workers(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    while (workers_.size() < n) workers_.emplace_back([this] { worker_loop(); });
  }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop requested and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

// True while this thread is executing a chunk of some region; nested
// regions then run inline instead of re-entering the pool.
bool& in_region() {
  thread_local bool inside = false;
  return inside;
}

// ------------------------------------------------------------- chunks

struct ChunkResult {
  std::vector<detail::ItemFailure> failures;  // ascending within the chunk
  // First item index at which a deadline/cancel stop triggered (the item
  // did NOT run); SIZE_MAX when the chunk ran to its end.
  size_t stop_index = SIZE_MAX;
  deadline::StopReason stop = deadline::StopReason::none;
};

// Runs one contiguous chunk of items on the current thread: per-item
// fault stream, per-item deadline/cancel poll, per-chunk metric shard
// (merged before returning), and per-item error capture. fail_fast stops
// the chunk at its first failure.
void run_chunk(size_t begin, size_t end, bool fail_fast,
               const std::function<void(size_t)>& body, ChunkResult& result) {
  obs::MetricShard shard;
  obs::ShardScope scope(shard);
  const bool was_inside = in_region();
  in_region() = true;
  for (size_t i = begin; i < end; ++i) {
    fault::ScopedStream stream(i);
    // Poll under the item's fault stream so the injected stop sites draw
    // index-pure streams — which items trigger a stop is then identical
    // at any thread count (docs/robustness.md).
    const deadline::StopReason stop = deadline::check();
    if (stop != deadline::StopReason::none) {
      result.stop = stop;
      result.stop_index = i;
      break;
    }
    try {
      body(i);
    } catch (const Error& e) {
      result.failures.push_back({i, e});
      if (fail_fast) break;
    } catch (const std::exception& e) {
      result.failures.push_back(
          {i, Error(std::string("parallel item threw a non-pim exception: ") + e.what(),
                    ErrorCode::internal)});
      if (fail_fast) break;
    } catch (...) {
      result.failures.push_back(
          {i, Error("parallel item threw an unknown exception", ErrorCode::internal)});
      if (fail_fast) break;
    }
  }
  in_region() = was_inside;
  shard.flush();
}

// --------------------------------------------------- scheduler metrics

// exec.* scheduler metrics (docs/observability.md). Handles resolve once;
// recording happens once per chunk or region, OUTSIDE the chunk's
// MetricShard (which run_chunk uninstalls before returning), so the
// disabled path costs one relaxed load + branch per chunk — nothing per
// item.
struct ExecMetrics {
  obs::Timer& queue_wait = obs::registry().timer("exec.queue.wait");
  obs::Timer& chunk_run = obs::registry().timer("exec.chunk.run");
  obs::Timer& chunk_items = obs::registry().timer("exec.chunk.items");
  obs::Gauge& busy = obs::registry().gauge("exec.thread.busy_ns");
  obs::Gauge& idle = obs::registry().gauge("exec.thread.idle_ns");
  obs::Gauge& imbalance = obs::registry().gauge("exec.region.imbalance");

  static ExecMetrics& get() {
    static ExecMetrics m;
    return m;
  }
};

// run_chunk plus instrumentation: queue-wait latency (`queued_ns` is the
// submit timestamp; < 0 means the chunk never sat in the pool queue —
// serial regions and the caller-run chunk 0), chunk wall time, chunk size
// histogram, and a chrome-trace span carrying the worker's real thread
// id. Returns the chunk duration in ns (0 when collection is off).
int64_t run_chunk_instr(size_t begin, size_t end, bool fail_fast,
                        const std::function<void(size_t)>& body,
                        ChunkResult& result, int64_t queued_ns) {
  const bool timing = obs::enabled();
  const bool tracing = obs::trace_enabled();
  if (!timing && !tracing) {
    run_chunk(begin, end, fail_fast, body, result);
    return 0;
  }
  ExecMetrics& m = ExecMetrics::get();
  const int64_t start = obs::now_ns();
  if (timing) {
    if (queued_ns >= 0) m.queue_wait.record_ns(start - queued_ns);
    m.chunk_items.record_ns(static_cast<int64_t>(end - begin));
  }
  run_chunk(begin, end, fail_fast, body, result);
  const int64_t dur = obs::now_ns() - start;
  if (timing) m.chunk_run.record_ns(dur);
  obs::record_trace_event("exec.chunk.run", start, dur);
  return dur;
}

}  // namespace

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void set_threads(int n) { pinned_threads().store(n < 0 ? 0 : n, std::memory_order_relaxed); }

int threads() {
  const int pinned = pinned_threads().load(std::memory_order_relaxed);
  if (pinned >= 1) return pinned;
  const int env = env_threads();
  if (env >= 1) return env;
  return hardware_threads();
}

namespace detail {

namespace {

// Reduces chunk results into the region outcome: cutoff = the minimum
// stop index over chunks (completed set = [0, cutoff)), stop reason from
// that chunk, and only failures below the cutoff survive. Single-chunk
// regions pass a span of one.
RegionOutcome reduce_chunks(size_t n, std::vector<ChunkResult>& results) {
  RegionOutcome out;
  out.cutoff = n;
  for (const ChunkResult& r : results) {
    if (r.stop_index < out.cutoff) {
      out.cutoff = r.stop_index;
      out.stop = r.stop;
    }
  }
  // Chunks are contiguous ascending index ranges, so concatenating their
  // failure lists in chunk order keeps item order ascending. Failures at
  // or above the cutoff belong to discarded items and are dropped with
  // them.
  for (ChunkResult& r : results)
    for (ItemFailure& f : r.failures)
      if (f.item < out.cutoff) out.failures.push_back(std::move(f));
  if (out.stop != deadline::StopReason::none)
    deadline::record_stop_metrics(out.cutoff);
  return out;
}

}  // namespace

RegionOutcome run_region(size_t n, const ParallelOptions& options,
                         bool fail_fast,
                         const std::function<void(size_t)>& body) {
  if (n == 0) return {{}, deadline::StopReason::none, 0};
  size_t want = static_cast<size_t>(options.threads >= 1 ? options.threads : threads());
  const size_t grain = options.grain == 0 ? 1 : options.grain;
  want = std::min(want, (n + grain - 1) / grain);
  if (want < 1) want = 1;

  // Serial (or nested) regions run the identical per-item code path on
  // this thread, so results are bit-identical to any parallel schedule.
  if (want == 1 || in_region()) {
    std::vector<ChunkResult> results(1);
    run_chunk_instr(0, n, fail_fast, body, results[0], /*queued_ns=*/-1);
    return reduce_chunks(n, results);
  }

  const bool timing = obs::enabled();
  const int64_t region_start = timing ? obs::now_ns() : 0;

  const size_t chunk = (n + want - 1) / want;  // ceil; last chunk clipped
  std::vector<ChunkResult> results(want);
  // One slot per chunk, written only by the chunk's runner; read after
  // the join to derive the region's busy/idle/imbalance gauges.
  std::vector<int64_t> chunk_dur(want, 0);

  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  } join{{}, {}, want - 1};

  ThreadPool& pool = ThreadPool::instance();
  pool.ensure_workers(want - 1);
  for (size_t c = 1; c < want; ++c) {
    const int64_t submit_ns = timing ? obs::now_ns() : -1;
    pool.submit([&, c, submit_ns] {
      const size_t begin = c * chunk;
      const size_t end = std::min(n, begin + chunk);
      if (begin < end)
        chunk_dur[c] =
            run_chunk_instr(begin, end, fail_fast, body, results[c], submit_ns);
      // Notify under the lock: the caller destroys `join` as soon as it
      // observes remaining == 0, which it can only do after we release
      // the mutex — so the condition variable outlives this call.
      {
        std::lock_guard<std::mutex> lock(join.mu);
        --join.remaining;
        join.cv.notify_one();
      }
    });
  }
  // The calling thread takes chunk 0, then joins.
  chunk_dur[0] = run_chunk_instr(0, std::min(n, chunk), fail_fast, body,
                                 results[0], /*queued_ns=*/-1);
  {
    std::unique_lock<std::mutex> lock(join.mu);
    join.cv.wait(lock, [&] { return join.remaining == 0; });
  }

  if (timing) {
    const int64_t wall = obs::now_ns() - region_start;
    int64_t busy = 0, max_dur = 0;
    for (int64_t d : chunk_dur) {
      busy += d;
      max_dur = std::max(max_dur, d);
    }
    ExecMetrics& m = ExecMetrics::get();
    // busy/idle accumulate over the run; idle is the time the region's
    // thread slots were not executing chunk bodies (queue wait, join).
    m.busy.add(static_cast<double>(busy));
    const int64_t idle = static_cast<int64_t>(want) * wall - busy;
    m.idle.add(static_cast<double>(idle > 0 ? idle : 0));
    // Imbalance = slowest chunk / mean chunk (1.0 = perfectly even); a
    // per-region reading, last region wins.
    if (busy > 0)
      m.imbalance.set(static_cast<double>(max_dur) * static_cast<double>(want) /
                      static_cast<double>(busy));
  }

  return reduce_chunks(n, results);
}

void rethrow_first(const ItemFailure& failure) {
  throw failure.error.with_context("parallel item #" + std::to_string(failure.item));
}

}  // namespace detail
}  // namespace pim::exec
