// EXTENSION beyond the paper: process-variation analysis of buffered
// links (documented in DESIGN.md as an extension; the paper's related-
// work positions its models inside flows that must ultimately close
// timing under variation).
//
// Variation is applied at the model level: each Monte-Carlo sample
// perturbs the fitted device strength (drive resistance), device
// capacitance, leakage, and the wire RC, then re-evaluates the link with
// the proposed closed-form model. This captures die-to-die (one scale
// per link) variation of the quantities the model is sensitive to,
// without re-running characterization per sample.
//
// Monte-Carlo sampling fans out over the pim::exec engine. Sample i
// draws from an RNG stream derived from (seed, i), so yields, failed
// sample counts, and every statistic are bit-identical at any
// --threads count (docs/parallelism.md).
#pragma once

#include <vector>

#include "models/proposed.hpp"
#include "util/rng.hpp"

namespace pim {

/// One sampled corner: multiplicative deviations around nominal (1.0).
struct VariationSample {
  double drive_strength = 1.0;  ///< scales 1/rd (device current)
  double device_cap = 1.0;      ///< scales gamma (and hence c_i)
  double leakage = 1.0;         ///< scales leakage power
  double wire_res = 1.0;        ///< scales wire resistance
  double wire_cap = 1.0;        ///< scales wire capacitance
};

/// Gaussian sigmas of the relative deviations. Defaults are
/// 3-sigma ~ 15 % device strength, 5 % caps, lognormal-ish 30 % leakage,
/// 10 % wire geometry — representative die-to-die magnitudes.
struct VariationSigmas {
  double drive_strength = 0.05;
  double device_cap = 0.017;
  double leakage = 0.10;  ///< sigma of ln(leakage scale)
  double wire_res = 0.033;
  double wire_cap = 0.033;
};

/// Draws one corner; scales are clamped to [0.5, 2.0].
VariationSample sample_variation(Rng& rng, const VariationSigmas& sigmas);

/// Evaluates `design` on a perturbed copy of the model's fit and wire.
LinkEstimate evaluate_with_variation(const ProposedModel& model,
                                     const LinkContext& context,
                                     const LinkDesign& design,
                                     const VariationSample& sample);

/// Monte-Carlo results for one link implementation.
struct MonteCarloResult {
  std::vector<double> delays;   ///< sorted ascending [s]
  double nominal_delay = 0.0;   ///< unperturbed model delay [s]
  double mean_delay = 0.0;
  double sigma_delay = 0.0;
  double mean_power = 0.0;
  /// Samples that failed to evaluate (model error or injected fault) and
  /// were skipped; counted in the "variation.sample.error" metric. The
  /// statistics above cover only the surviving samples.
  int failed_samples = 0;
  /// How many samples the caller asked for. Equals
  /// delays.size() + failed_samples unless the run was truncated.
  int requested_samples = 0;
  /// True when a deadline/cancel stop truncated the batch: statistics
  /// cover the completed prefix only (exactly [0, completed) sample
  /// indices, deterministic at any --threads), and the result is never
  /// written to the cache. yield_ci95() widens accordingly.
  bool partial = false;

  /// Fraction of samples meeting `max_delay`.
  double yield_at(double max_delay) const;

  /// 95 % binomial confidence halfwidth of yield_at(max_delay):
  /// 1.96 * sqrt(p(1-p)/n) over the n surviving samples — the interval a
  /// partial result reports widened, since n shrank.
  double yield_ci95(double max_delay) const;

  /// Delay at the given quantile in [0, 1] (e.g. 0.997 for ~3 sigma).
  double delay_quantile(double q) const;
};

/// Runs `samples` Monte-Carlo corners (deterministic for a given seed).
MonteCarloResult monte_carlo_link(const ProposedModel& model, const LinkContext& context,
                                  const LinkDesign& design, int samples,
                                  uint64_t seed = 1, const VariationSigmas& sigmas = {});

/// monte_carlo_link fronted by the content-addressed result cache
/// (docs/caching.md). The key folds in the model's cache_signature()
/// (which hashes the fitted coefficients), the link context and design,
/// and the sampling plan (samples, seed, sigmas), so a hit returns the
/// exact sorted delay vector and statistics the direct run would
/// produce — bit-identical at any --threads count. Corrupt entries
/// recompute (fail-open); fault injection bypasses the cache so injected
/// sample faults always exercise the real sampling path.
MonteCarloResult monte_carlo_link_cached(const ProposedModel& model,
                                         const LinkContext& context,
                                         const LinkDesign& design, int samples,
                                         uint64_t seed = 1,
                                         const VariationSigmas& sigmas = {});

/// Monte-Carlo around a chosen process corner: `model` must be the
/// corner-calibrated model (corner_model_set / corner_calibrated_fit), so
/// the samples perturb that corner's fit exactly as monte_carlo_link
/// perturbs nominal — same sampler, same RNG streams, bit-identical at
/// any --threads. The cache key folds the corner id next to the model
/// signature, and corner.<name>.mc.samples is counted. At the nominal
/// corner this is exactly monte_carlo_link_cached (which forwards here).
MonteCarloResult monte_carlo_link_at_corner(const ProposedModel& model,
                                            const Corner& corner,
                                            const LinkContext& context,
                                            const LinkDesign& design, int samples,
                                            uint64_t seed = 1,
                                            const VariationSigmas& sigmas = {});

/// WITHIN-DIE variation: each repeater of the chain draws its own
/// device-strength/cap deviation (wire variation stays die-wide). Stage
/// delays then average along the chain, so an N-stage link's relative
/// sigma shrinks like ~1/sqrt(N) compared to the die-to-die case — the
/// classic argument for why repeatered interconnect is naturally robust
/// to random WID variation.
double link_delay_within_die(const ProposedModel& model, const LinkContext& context,
                             const LinkDesign& design, Rng& rng,
                             const VariationSigmas& sigmas = {});

/// Monte-Carlo over within-die corners (wire variation disabled so the
/// pure stage-averaging effect is visible).
MonteCarloResult monte_carlo_link_within_die(const ProposedModel& model,
                                             const LinkContext& context,
                                             const LinkDesign& design, int samples,
                                             uint64_t seed = 1,
                                             const VariationSigmas& sigmas = {});

}  // namespace pim
