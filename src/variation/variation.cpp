#include "variation/variation.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/regression.hpp"
#include "charlib/characterize.hpp"
#include "exec/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"

namespace pim {
namespace {

double clamp_scale(double v) { return std::clamp(v, 0.5, 2.0); }

// Pass/fail tallies at the nominal-delay cutoff — the yield split the
// Choi/Paul/Roy-style sizing loop consumes. Delays are already sorted.
void tally_yield(const MonteCarloResult& result) {
  const auto cut = std::upper_bound(result.delays.begin(), result.delays.end(),
                                    result.nominal_delay);
  const int64_t pass = cut - result.delays.begin();
  PIM_COUNT_N("variation.sample.count", static_cast<int64_t>(result.delays.size()));
  PIM_COUNT_N("variation.sample.pass", pass);
  PIM_COUNT_N("variation.sample.fail",
              static_cast<int64_t>(result.delays.size()) - pass);
}

// A perturbed copy of the fit: drive resistance scales inversely with
// device strength; input capacitance and leakage scale directly.
TechnologyFit perturb_fit(const TechnologyFit& fit, const VariationSample& s) {
  TechnologyFit out = fit;
  const double r_scale = 1.0 / s.drive_strength;
  for (RepeaterEdgeFit* f : {&out.inv_rise, &out.inv_fall, &out.buf_rise, &out.buf_fall}) {
    f->rho0 *= r_scale;
    f->rho1 *= r_scale;
    // Intrinsic delay tracks device speed too.
    f->a0 *= r_scale;
    f->a1 *= r_scale;
    f->a2 *= r_scale;
    // Slower devices also degrade the output slew proportionally.
    f->b0 *= r_scale;
    f->b2 *= r_scale;
  }
  out.gamma *= s.device_cap;
  out.leakage.n0 *= s.leakage;
  out.leakage.n1 *= s.leakage;
  out.leakage.p0 *= s.leakage;
  out.leakage.p1 *= s.leakage;
  return out;
}

}  // namespace

VariationSample sample_variation(Rng& rng, const VariationSigmas& sigmas) {
  VariationSample s;
  s.drive_strength = clamp_scale(rng.normal(1.0, sigmas.drive_strength));
  s.device_cap = clamp_scale(rng.normal(1.0, sigmas.device_cap));
  // Leakage varies lognormally (it is exponential in threshold voltage).
  s.leakage = clamp_scale(std::exp(rng.normal(0.0, sigmas.leakage)));
  s.wire_res = clamp_scale(rng.normal(1.0, sigmas.wire_res));
  s.wire_cap = clamp_scale(rng.normal(1.0, sigmas.wire_cap));
  return s;
}

LinkEstimate evaluate_with_variation(const ProposedModel& model, const LinkContext& context,
                                     const LinkDesign& design,
                                     const VariationSample& sample) {
  const ProposedModel perturbed(model.tech(), perturb_fit(model.fit(), sample));
  LinkContext ctx = context;
  ctx.wire_options.res_scale *= sample.wire_res;
  ctx.wire_options.cap_scale *= sample.wire_cap;
  return perturbed.evaluate(ctx, design);
}

double MonteCarloResult::yield_at(double max_delay) const {
  if (delays.empty()) return 0.0;
  const auto it = std::upper_bound(delays.begin(), delays.end(), max_delay);
  return static_cast<double>(it - delays.begin()) / static_cast<double>(delays.size());
}

double MonteCarloResult::delay_quantile(double q) const {
  require(!delays.empty(), "delay_quantile: empty result");
  require(q >= 0.0 && q <= 1.0, "delay_quantile: q must be in [0, 1]");
  const size_t idx = std::min(delays.size() - 1,
                              static_cast<size_t>(q * static_cast<double>(delays.size())));
  return delays[idx];
}

double link_delay_within_die(const ProposedModel& model, const LinkContext& ctx,
                             const LinkDesign& design, Rng& rng,
                             const VariationSigmas& sigmas) {
  // Rebuild the proposed model's chain stage by stage, drawing a fresh
  // device corner per repeater. Wire parasitics stay nominal here (wire
  // variation is spatially correlated far beyond one segment).
  const Technology& tech = model.tech();
  const TechnologyFit& fit = model.fit();
  const LinkGeometry g(tech, ctx, design);
  const RepeaterSizing sz = repeater_sizing(tech, design.kind, design.drive);
  const double win_n = design.kind == CellKind::Inverter ? sz.wn_out : sz.wn_in;
  const double win_p = design.kind == CellKind::Inverter ? sz.wp_out : sz.wp_in;
  const double ci = fit.gamma * (win_n + win_p);
  const double mf = design.miller_factor;
  const CompositionWeights& comp = fit.composition(ctx.style);
  const double c_wire = g.seg_cap_ground + mf * g.seg_cap_couple_total;
  const double cl_rho0 = comp.kappa_c * c_wire + ci;
  const double cl_rho1 = comp.kappa_c1 * c_wire + ci;
  const double cl_slew = comp.kappa_c * c_wire + ci;
  const double d_wire =
      comp.kappa_w * g.seg_res *
      (0.4 * g.seg_cap_ground + 0.5 * mf * g.seg_cap_couple_total + 0.7 * ci);

  double slew = ctx.input_slew;
  double total = 0.0;
  bool edge_rising = true;
  for (int k = 0; k < design.num_repeaters; ++k) {
    const bool out_rising = design.kind == CellKind::Inverter ? !edge_rising : edge_rising;
    const RepeaterEdgeFit& f = fit.edge_fit(design.kind, out_rising);
    const double wr = out_rising ? sz.wp_out : sz.wn_out;
    // Per-repeater corner: strength scales all delay terms of THIS stage.
    const double strength = clamp_scale(rng.normal(1.0, sigmas.drive_strength));
    const double r_scale = 1.0 / strength;
    const double intrinsic =
        r_scale * (f.a0 + f.a1 * slew + f.a2 * slew * slew);
    const double d_rep =
        intrinsic + r_scale * (f.rho0 * cl_rho0 + f.rho1 * slew * cl_rho1) / wr;
    total += d_rep + d_wire;
    slew = r_scale * f.b0 + f.b1 * slew + r_scale * f.b2 * cl_slew / wr;
    edge_rising = out_rising;
  }
  return total;
}

namespace {

// Shared tail of both Monte-Carlo flavors: ordered reduction over the
// batch (index order, so sums and tallies are bit-identical at any
// thread count), failure accounting, then the summary statistics.
template <typename P>
MonteCarloResult reduce_batch(const exec::BatchResult<P>& batch,
                              const std::function<double(const P&)>& delay_of,
                              const char* who) {
  MonteCarloResult result;
  result.delays.reserve(batch.values.size());
  for (const auto& value : batch.values)
    if (value) result.delays.push_back(delay_of(*value));
  result.failed_samples = static_cast<int>(batch.failed.size());
  PIM_COUNT_N("variation.sample.error", static_cast<int64_t>(batch.failed.size()));
  require(!result.delays.empty(), std::string(who) + ": every sample failed",
          ErrorCode::no_convergence);
  std::sort(result.delays.begin(), result.delays.end());
  result.mean_delay = mean(result.delays);
  double var = 0.0;
  for (double d : result.delays) {
    const double r = d - result.mean_delay;
    var += r * r;
  }
  result.sigma_delay = std::sqrt(var / static_cast<double>(result.delays.size()));
  return result;
}

}  // namespace

MonteCarloResult monte_carlo_link_within_die(const ProposedModel& model,
                                             const LinkContext& ctx,
                                             const LinkDesign& design, int samples,
                                             uint64_t seed,
                                             const VariationSigmas& sigmas) {
  PIM_OBS_SPAN("variation.montecarlo.within_die");
  require(samples >= 1, "monte_carlo_link_within_die: need at least one sample");
  // Sample i draws from its own (seed, i)-derived RNG stream, so the
  // sampled corners — and any injected faults — are a pure function of
  // the seed and the sample index, independent of thread count.
  const auto batch = exec::parallel_try_map_seeded<double>(
      static_cast<size_t>(samples), seed, [&](size_t, Rng& rng) {
        if (fault::should_fire(fault::kVariationSample))
          fail("monte_carlo_link_within_die: injected sample fault", ErrorCode::internal);
        return link_delay_within_die(model, ctx, design, rng, sigmas);
      });
  MonteCarloResult result = reduce_batch<double>(
      batch, [](const double& d) { return d; }, "monte_carlo_link_within_die");
  result.nominal_delay = model.evaluate(ctx, design).delay;
  result.mean_power = model.evaluate(ctx, design).total_power();
  tally_yield(result);
  return result;
}

MonteCarloResult monte_carlo_link(const ProposedModel& model, const LinkContext& context,
                                  const LinkDesign& design, int samples, uint64_t seed,
                                  const VariationSigmas& sigmas) {
  PIM_OBS_SPAN("variation.montecarlo.run");
  require(samples >= 1, "monte_carlo_link: need at least one sample");
  struct SamplePoint {
    double delay = 0.0;
    double power = 0.0;
  };
  // Graceful degradation: a failed corner (bad model arithmetic or an
  // injected fault) is counted and skipped; the statistics cover the
  // surviving samples. Each sample owns a (seed, i)-derived RNG stream
  // and fault stream, so the whole result is bit-identical at any
  // --threads count.
  const auto batch = exec::parallel_try_map_seeded<SamplePoint>(
      static_cast<size_t>(samples), seed, [&](size_t, Rng& rng) {
        const VariationSample s = sample_variation(rng, sigmas);
        if (fault::should_fire(fault::kVariationSample))
          fail("monte_carlo_link: injected sample fault", ErrorCode::internal);
        const LinkEstimate est = evaluate_with_variation(model, context, design, s);
        return SamplePoint{est.delay, est.total_power()};
      });
  MonteCarloResult result = reduce_batch<SamplePoint>(
      batch, [](const SamplePoint& p) { return p.delay; }, "monte_carlo_link");
  result.nominal_delay = model.evaluate(context, design).delay;
  double power_acc = 0.0;
  for (const auto& value : batch.values)
    if (value) power_acc += value->power;
  result.mean_power = power_acc / static_cast<double>(result.delays.size());
  tally_yield(result);
  return result;
}

}  // namespace pim
