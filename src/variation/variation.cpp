#include "variation/variation.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "cache/store.hpp"
#include "deadline/deadline.hpp"
#include "numeric/regression.hpp"
#include "charlib/characterize.hpp"
#include "exec/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/strings.hpp"

namespace pim {
namespace {

double clamp_scale(double v) { return std::clamp(v, 0.5, 2.0); }

// Pass/fail tallies at the nominal-delay cutoff — the yield split the
// Choi/Paul/Roy-style sizing loop consumes. Delays are already sorted.
void tally_yield(const MonteCarloResult& result) {
  const auto cut = std::upper_bound(result.delays.begin(), result.delays.end(),
                                    result.nominal_delay);
  const int64_t pass = cut - result.delays.begin();
  PIM_COUNT_N("variation.sample.count", static_cast<int64_t>(result.delays.size()));
  PIM_COUNT_N("variation.sample.pass", pass);
  PIM_COUNT_N("variation.sample.fail",
              static_cast<int64_t>(result.delays.size()) - pass);
}

// A perturbed copy of the fit: drive resistance scales inversely with
// device strength; input capacitance and leakage scale directly.
TechnologyFit perturb_fit(const TechnologyFit& fit, const VariationSample& s) {
  TechnologyFit out = fit;
  const double r_scale = 1.0 / s.drive_strength;
  for (RepeaterEdgeFit* f : {&out.inv_rise, &out.inv_fall, &out.buf_rise, &out.buf_fall}) {
    f->rho0 *= r_scale;
    f->rho1 *= r_scale;
    // Intrinsic delay tracks device speed too.
    f->a0 *= r_scale;
    f->a1 *= r_scale;
    f->a2 *= r_scale;
    // Slower devices also degrade the output slew proportionally.
    f->b0 *= r_scale;
    f->b2 *= r_scale;
  }
  out.gamma *= s.device_cap;
  out.leakage.n0 *= s.leakage;
  out.leakage.n1 *= s.leakage;
  out.leakage.p0 *= s.leakage;
  out.leakage.p1 *= s.leakage;
  return out;
}

}  // namespace

VariationSample sample_variation(Rng& rng, const VariationSigmas& sigmas) {
  VariationSample s;
  s.drive_strength = clamp_scale(rng.normal(1.0, sigmas.drive_strength));
  s.device_cap = clamp_scale(rng.normal(1.0, sigmas.device_cap));
  // Leakage varies lognormally (it is exponential in threshold voltage).
  s.leakage = clamp_scale(std::exp(rng.normal(0.0, sigmas.leakage)));
  s.wire_res = clamp_scale(rng.normal(1.0, sigmas.wire_res));
  s.wire_cap = clamp_scale(rng.normal(1.0, sigmas.wire_cap));
  return s;
}

LinkEstimate evaluate_with_variation(const ProposedModel& model, const LinkContext& context,
                                     const LinkDesign& design,
                                     const VariationSample& sample) {
  // evaluate_link instead of ProposedModel(...).evaluate(): constructing
  // a model hashes its serialized fit into a cache signature, which at
  // Monte-Carlo sample rates costs far more than the evaluation itself.
  // The perturbed fit never touches the cache, so it needs no signature.
  LinkContext ctx = context;
  ctx.wire_options.res_scale *= sample.wire_res;
  ctx.wire_options.cap_scale *= sample.wire_cap;
  return evaluate_link(model.tech(), perturb_fit(model.fit(), sample), ctx, design);
}

double MonteCarloResult::yield_at(double max_delay) const {
  if (delays.empty()) return 0.0;
  const auto it = std::upper_bound(delays.begin(), delays.end(), max_delay);
  return static_cast<double>(it - delays.begin()) / static_cast<double>(delays.size());
}

double MonteCarloResult::yield_ci95(double max_delay) const {
  if (delays.empty()) return 0.0;
  const double n = static_cast<double>(delays.size());
  const double p = yield_at(max_delay);
  return 1.96 * std::sqrt(p * (1.0 - p) / n);
}

double MonteCarloResult::delay_quantile(double q) const {
  require(!delays.empty(), "delay_quantile: empty result");
  require(q >= 0.0 && q <= 1.0, "delay_quantile: q must be in [0, 1]");
  const size_t idx = std::min(delays.size() - 1,
                              static_cast<size_t>(q * static_cast<double>(delays.size())));
  return delays[idx];
}

double link_delay_within_die(const ProposedModel& model, const LinkContext& ctx,
                             const LinkDesign& design, Rng& rng,
                             const VariationSigmas& sigmas) {
  // Rebuild the proposed model's chain stage by stage, drawing a fresh
  // device corner per repeater. Wire parasitics stay nominal here (wire
  // variation is spatially correlated far beyond one segment).
  const Technology& tech = model.tech();
  const TechnologyFit& fit = model.fit();
  const LinkGeometry g(tech, ctx, design);
  const RepeaterSizing sz = repeater_sizing(tech, design.kind, design.drive);
  const double win_n = design.kind == CellKind::Inverter ? sz.wn_out : sz.wn_in;
  const double win_p = design.kind == CellKind::Inverter ? sz.wp_out : sz.wp_in;
  const double ci = fit.gamma * (win_n + win_p);
  const double mf = design.miller_factor;
  const CompositionWeights& comp = fit.composition(ctx.style);
  const double c_wire = g.seg_cap_ground + mf * g.seg_cap_couple_total;
  const double cl_rho0 = comp.kappa_c * c_wire + ci;
  const double cl_rho1 = comp.kappa_c1 * c_wire + ci;
  const double cl_slew = comp.kappa_c * c_wire + ci;
  const double d_wire =
      comp.kappa_w * g.seg_res *
      (0.4 * g.seg_cap_ground + 0.5 * mf * g.seg_cap_couple_total + 0.7 * ci);

  double slew = ctx.input_slew;
  double total = 0.0;
  bool edge_rising = true;
  for (int k = 0; k < design.num_repeaters; ++k) {
    const bool out_rising = design.kind == CellKind::Inverter ? !edge_rising : edge_rising;
    const RepeaterEdgeFit& f = fit.edge_fit(design.kind, out_rising);
    const double wr = out_rising ? sz.wp_out : sz.wn_out;
    // Per-repeater corner: strength scales all delay terms of THIS stage.
    const double strength = clamp_scale(rng.normal(1.0, sigmas.drive_strength));
    const double r_scale = 1.0 / strength;
    const double intrinsic =
        r_scale * (f.a0 + f.a1 * slew + f.a2 * slew * slew);
    const double d_rep =
        intrinsic + r_scale * (f.rho0 * cl_rho0 + f.rho1 * slew * cl_rho1) / wr;
    total += d_rep + d_wire;
    slew = r_scale * f.b0 + f.b1 * slew + r_scale * f.b2 * cl_slew / wr;
    edge_rising = out_rising;
  }
  return total;
}

namespace {

// Shared tail of both Monte-Carlo flavors: ordered reduction over the
// batch (index order, so sums and tallies are bit-identical at any
// thread count), failure accounting, then the summary statistics.
template <typename P>
MonteCarloResult reduce_batch(const exec::BatchResult<P>& batch,
                              const std::function<double(const P&)>& delay_of,
                              const char* who) {
  MonteCarloResult result;
  result.delays.reserve(batch.values.size());
  for (const auto& value : batch.values)
    if (value) result.delays.push_back(delay_of(*value));
  result.failed_samples = static_cast<int>(batch.failed.size());
  result.requested_samples = static_cast<int>(batch.values.size());
  result.partial = batch.truncated();
  PIM_COUNT_N("variation.sample.error", static_cast<int64_t>(batch.failed.size()));
  // A truncated batch with zero completed samples has nothing to
  // estimate from — that is the one stop that cannot degrade to a
  // partial result and must surface as the typed deadline/cancel error.
  if (result.delays.empty() && batch.truncated())
    throw deadline::stop_error(batch.stop, batch.completed, batch.values.size());
  require(!result.delays.empty(), std::string(who) + ": every sample failed",
          ErrorCode::no_convergence);
  std::sort(result.delays.begin(), result.delays.end());
  result.mean_delay = mean(result.delays);
  double var = 0.0;
  for (double d : result.delays) {
    const double r = d - result.mean_delay;
    var += r * r;
  }
  result.sigma_delay = std::sqrt(var / static_cast<double>(result.delays.size()));
  return result;
}

}  // namespace

MonteCarloResult monte_carlo_link_within_die(const ProposedModel& model,
                                             const LinkContext& ctx,
                                             const LinkDesign& design, int samples,
                                             uint64_t seed,
                                             const VariationSigmas& sigmas) {
  PIM_OBS_SPAN("variation.montecarlo.within_die");
  require(samples >= 1, "monte_carlo_link_within_die: need at least one sample");
  // Sample i draws from its own (seed, i)-derived RNG stream, so the
  // sampled corners — and any injected faults — are a pure function of
  // the seed and the sample index, independent of thread count.
  const auto batch = exec::parallel_try_map_seeded<double>(
      static_cast<size_t>(samples), seed, [&](size_t, Rng& rng) {
        if (fault::should_fire(fault::kVariationSample))
          fail("monte_carlo_link_within_die: injected sample fault", ErrorCode::internal);
        return link_delay_within_die(model, ctx, design, rng, sigmas);
      });
  MonteCarloResult result = reduce_batch<double>(
      batch, [](const double& d) { return d; }, "monte_carlo_link_within_die");
  result.nominal_delay = model.evaluate(ctx, design).delay;
  result.mean_power = model.evaluate(ctx, design).total_power();
  tally_yield(result);
  return result;
}

MonteCarloResult monte_carlo_link(const ProposedModel& model, const LinkContext& context,
                                  const LinkDesign& design, int samples, uint64_t seed,
                                  const VariationSigmas& sigmas) {
  PIM_OBS_SPAN("variation.montecarlo.run");
  require(samples >= 1, "monte_carlo_link: need at least one sample");
  struct SamplePoint {
    double delay = 0.0;
    double power = 0.0;
  };
  // Graceful degradation: a failed corner (bad model arithmetic or an
  // injected fault) is counted and skipped; the statistics cover the
  // surviving samples. Each sample owns a (seed, i)-derived RNG stream
  // and fault stream, so the whole result is bit-identical at any
  // --threads count.
  const auto batch = exec::parallel_try_map_seeded<SamplePoint>(
      static_cast<size_t>(samples), seed, [&](size_t, Rng& rng) {
        const VariationSample s = sample_variation(rng, sigmas);
        if (fault::should_fire(fault::kVariationSample))
          fail("monte_carlo_link: injected sample fault", ErrorCode::internal);
        const LinkEstimate est = evaluate_with_variation(model, context, design, s);
        return SamplePoint{est.delay, est.total_power()};
      });
  MonteCarloResult result = reduce_batch<SamplePoint>(
      batch, [](const SamplePoint& p) { return p.delay; }, "monte_carlo_link");
  result.nominal_delay = model.evaluate(context, design).delay;
  double power_acc = 0.0;
  for (const auto& value : batch.values)
    if (value) power_acc += value->power;
  result.mean_power = power_acc / static_cast<double>(result.delays.size());
  tally_yield(result);
  return result;
}

namespace {

// The corner and sampling plan enter as provenance facets — the corner
// so a retune stales exactly its cone, the samples/seed plan so a deck
// that raises the sample budget shows up as a changed input rather than
// an unrelated key. Everything else folds into the "params" facet.
cache::CacheKey yield_cache_key(const std::string& signature, const Corner& corner,
                                const LinkContext& ctx, const LinkDesign& design,
                                int samples, uint64_t seed,
                                const VariationSigmas& sigmas) {
  cache::KeyBuilder kb("yield");
  kb.field("model", signature);
  kb.facet("corner", corner.name, corner.cache_id());
  kb.field("ctx.layer", static_cast<int>(ctx.layer));
  kb.field("ctx.style", static_cast<int>(ctx.style));
  kb.field("ctx.length", ctx.length);
  kb.field("ctx.input_slew", ctx.input_slew);
  kb.field("ctx.activity", ctx.activity);
  kb.field("ctx.frequency", ctx.frequency);
  kb.field("ctx.wire.scattering", ctx.wire_options.scattering);
  kb.field("ctx.wire.barrier", ctx.wire_options.barrier);
  kb.field("ctx.wire.res_scale", ctx.wire_options.res_scale);
  kb.field("ctx.wire.cap_scale", ctx.wire_options.cap_scale);
  kb.field("design.kind", static_cast<int>(design.kind));
  kb.field("design.drive", design.drive);
  kb.field("design.repeaters", design.num_repeaters);
  kb.field("design.miller", design.miller_factor);
  kb.facet("samples", "mc", std::to_string(samples) + "/" + std::to_string(seed));
  kb.field("sigmas.drive_strength", sigmas.drive_strength);
  kb.field("sigmas.device_cap", sigmas.device_cap);
  kb.field("sigmas.leakage", sigmas.leakage);
  kb.field("sigmas.wire_res", sigmas.wire_res);
  kb.field("sigmas.wire_cap", sigmas.wire_cap);
  return kb.finish();
}

// `key value` lines with one `delays` record carrying the full sorted
// vector at 17 significant digits, so yields and quantiles computed from
// a hit match the direct run bit for bit.
std::string serialize_mc(const MonteCarloResult& r) {
  std::ostringstream os;
  os << "nominal_delay " << format_sig(r.nominal_delay, 17) << "\n";
  os << "mean_delay " << format_sig(r.mean_delay, 17) << "\n";
  os << "sigma_delay " << format_sig(r.sigma_delay, 17) << "\n";
  os << "mean_power " << format_sig(r.mean_power, 17) << "\n";
  os << "failed_samples " << r.failed_samples << "\n";
  os << "delays";
  for (double d : r.delays) os << " " << format_sig(d, 17);
  os << "\n";
  return os.str();
}

MonteCarloResult parse_mc(const std::string& text) {
  std::map<std::string, std::vector<std::string>> fields;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    auto tokens = split_whitespace(line);
    require(tokens.size() >= 2, "yield cache: malformed line", ErrorCode::io_parse);
    const std::string name = tokens.front();
    tokens.erase(tokens.begin());
    fields[name] = std::move(tokens);
  }
  auto need = [&fields](const char* name) -> const std::vector<std::string>& {
    const auto it = fields.find(name);
    require(it != fields.end(),
            std::string("yield cache: missing field '") + name + "'",
            ErrorCode::io_parse);
    return it->second;
  };
  auto scalar = [&need](const char* name) {
    const auto& v = need(name);
    require(v.size() == 1, std::string("yield cache: field '") + name + "' is not scalar",
            ErrorCode::io_parse);
    return parse_double(v.front());
  };
  MonteCarloResult r;
  r.nominal_delay = scalar("nominal_delay");
  r.mean_delay = scalar("mean_delay");
  r.sigma_delay = scalar("sigma_delay");
  r.mean_power = scalar("mean_power");
  r.failed_samples = static_cast<int>(parse_long(need("failed_samples").front()));
  const auto& delays = need("delays");
  r.delays.reserve(delays.size());
  for (const std::string& d : delays) r.delays.push_back(parse_double(d));
  require(std::is_sorted(r.delays.begin(), r.delays.end()),
          "yield cache: delay vector is not sorted", ErrorCode::io_parse);
  return r;
}

}  // namespace

MonteCarloResult monte_carlo_link_cached(const ProposedModel& model,
                                         const LinkContext& context,
                                         const LinkDesign& design, int samples,
                                         uint64_t seed, const VariationSigmas& sigmas) {
  return monte_carlo_link_at_corner(model, Corner{}, context, design, samples, seed,
                                    sigmas);
}

MonteCarloResult monte_carlo_link_at_corner(const ProposedModel& model,
                                            const Corner& corner,
                                            const LinkContext& context,
                                            const LinkDesign& design, int samples,
                                            uint64_t seed, const VariationSigmas& sigmas) {
  obs::registry()
      .counter("corner." + corner.name + ".mc.samples")
      .add(static_cast<int64_t>(samples));
  const std::string signature = model.cache_signature();
  if (signature.empty())
    return monte_carlo_link(model, context, design, samples, seed, sigmas);
  // Provenance scope: corner + sampling-plan facets from the key builder
  // plus upstream edges to the fit artifacts behind the model signature.
  cache::Tracked scope;
  const cache::CacheKey key = yield_cache_key(signature, corner, context,
                                              design, samples, seed, sigmas);
  for (const cache::CacheKey& fit : cache::resolve_artifacts(signature))
    scope.upstream(fit);
  if (auto payload = cache::Store::global().get(key)) {
    try {
      MonteCarloResult cached = parse_mc(*payload);
      require(!cached.delays.empty(), "yield cache: empty delay vector",
              ErrorCode::io_parse);
      cached.requested_samples = samples;  // only complete runs are cached
      tally_yield(cached);
      scope.publish(key);
      return cached;
    } catch (const Error&) {
      // The store vouched for the payload digest, so this parse failure
      // is the only corrupt signal for the lookup — counted once here,
      // never a second time when the recompute below repopulates the
      // entry (fail-open).
      PIM_COUNT("cache.corrupt");
    }
  }
  const MonteCarloResult result =
      monte_carlo_link(model, context, design, samples, seed, sigmas);
  // A truncated run's statistics cover a prefix of the sampling plan the
  // key describes — caching it would poison later full-budget lookups
  // (and an uncached partial gets no manifest either).
  if (!result.partial) {
    cache::Store::global().put(key, serialize_mc(result));
    scope.publish(key);
  }
  return result;
}

}  // namespace pim
