// First-class process corners — the pim::scenario layer.
//
// A Corner is a named operating point of the fab + environment: slow or
// fast devices, dense or sparse dielectric, hot or cold, high or low
// supply. It is expressed as multiplicative derating factors around the
// nominal technology descriptor (1.0 everywhere = nominal), so every
// layer that consumes a Technology can be evaluated "at a corner" by
// derating the descriptor once and running the exact same code path —
// there is no separate nominal flow.
//
// A ScenarioSet is the corner collection one signs off against: the
// built-in set carries nominal plus the four classic device corners
// (SS/FF/SF/FS); tech files may override it with a `corners { ... }`
// block (docs/corners.md).
//
// Downstream contract (threaded through the whole stack):
//  - tech:      Technology::derated(corner) + corner_technology() registry
//  - charlib:   characterization/fitting runs against the derated
//               descriptor; per-corner results are content-cached with the
//               corner id folded into the cache key (sta/calibrated)
//  - models:    CornerModelSet / WorstCornerModel (models/corners.hpp)
//  - sta:       signoff_corners() multi-corner slack analysis (sta/corners.hpp)
//  - variation: monte_carlo_link_at_corner() samples around a corner
//  - cosi:      synthesis sizes links against the worst corner
//  - obs:       per-corner metrics under "corner.<name>.*"
#pragma once

#include <string>
#include <vector>

namespace pim {

/// One process corner: multiplicative derating factors around the
/// nominal descriptor (1.0 = nominal) plus environment tags. Device
/// strength is split by polarity so the mixed SF/FS corners exist.
struct Corner {
  std::string name = "nominal";
  double nmos_strength = 1.0;  ///< scales NMOS saturation current
  double pmos_strength = 1.0;  ///< scales PMOS saturation current
  double device_cap = 1.0;     ///< scales gate + junction capacitance
  double leakage = 1.0;        ///< scales the fitted leakage power
  double wire_res = 1.0;       ///< scales bulk wire resistivity
  double wire_cap = 1.0;       ///< scales the ILD permittivity
  double temperature_c = 25.0; ///< tag: characterization temperature [C]
  double vdd_scale = 1.0;      ///< scales the supply voltage

  /// True when every derating factor is exactly 1.0 — i.e. the corner
  /// describes the nominal operating point regardless of its name.
  bool is_nominal() const;

  /// Canonical "name|factor|..." id covering the name and every factor
  /// at full precision. Folded into cache keys so two corners share
  /// cached results only when they are the same corner, and renaming or
  /// re-tuning a corner re-keys everything derived from it.
  std::string cache_id() const;
};

/// The corner collection a technology is signed off against. Order is
/// meaningful: the first corner is the reference (nominal by
/// convention), and "all" resolves in set order.
class ScenarioSet {
 public:
  /// Empty set; assign or parse corners into it.
  ScenarioSet() = default;

  /// Takes ownership of `corners`; names must be unique and non-empty.
  explicit ScenarioSet(std::vector<Corner> corners);

  /// nominal + SS/FF/SF/FS with representative derating magnitudes
  /// (docs/corners.md lists the exact factors).
  static const ScenarioSet& builtin();

  const std::vector<Corner>& corners() const { return corners_; }
  bool empty() const { return corners_.empty(); }
  size_t size() const { return corners_.size(); }

  /// The corner named `name`, or nullptr.
  const Corner* find(const std::string& name) const;

  /// The corner named `name`; throws pim::Error (bad_input) listing the
  /// known names when absent.
  const Corner& corner(const std::string& name) const;

  /// Resolves a CLI-style corner spec against this set:
  ///   ""          -> { corner("nominal") }
  ///   "all"       -> every corner, in set order
  ///   "a,b,c"     -> those corners, in spec order (throws on unknowns)
  std::vector<Corner> resolve(const std::string& spec) const;

 private:
  std::vector<Corner> corners_;
};

}  // namespace pim
