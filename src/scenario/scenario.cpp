#include "scenario/scenario.hpp"

#include <set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pim {

bool Corner::is_nominal() const {
  return nmos_strength == 1.0 && pmos_strength == 1.0 && device_cap == 1.0 &&
         leakage == 1.0 && wire_res == 1.0 && wire_cap == 1.0 && vdd_scale == 1.0;
}

std::string Corner::cache_id() const {
  // 17 significant digits round-trip IEEE-754 doubles exactly, so the id
  // — and hence every cache key it is folded into — is a pure function
  // of the corner's value, never of formatting quirks.
  std::string id = name;
  for (double f : {nmos_strength, pmos_strength, device_cap, leakage, wire_res,
                   wire_cap, temperature_c, vdd_scale}) {
    id += '|';
    id += format_sig(f, 17);
  }
  return id;
}

ScenarioSet::ScenarioSet(std::vector<Corner> corners) : corners_(std::move(corners)) {
  std::set<std::string> seen;
  for (const Corner& c : corners_) {
    require(!c.name.empty(), "scenario: corner names must be non-empty",
            ErrorCode::bad_input);
    require(seen.insert(c.name).second,
            "scenario: duplicate corner name '" + c.name + "'", ErrorCode::bad_input);
  }
}

const ScenarioSet& ScenarioSet::builtin() {
  // Representative derating magnitudes for a nanometer bulk process:
  // ~15 % device-strength spread, ~5 % capacitance, leakage strongly
  // asymmetric (it is exponential in threshold voltage), ~10 % wire RC,
  // and the timing-signoff convention of low VDD + hot at the slow
  // corner, high VDD + cold at the fast one.
  static const ScenarioSet set(std::vector<Corner>{
      {"nominal", 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 25.0, 1.0},
      {"ss", 0.85, 0.85, 1.05, 0.60, 1.10, 1.05, 125.0, 0.90},
      {"ff", 1.15, 1.15, 0.95, 1.80, 0.90, 0.95, -40.0, 1.10},
      {"sf", 0.87, 1.13, 1.00, 1.00, 1.00, 1.00, 25.0, 1.0},
      {"fs", 1.13, 0.87, 1.00, 1.00, 1.00, 1.00, 25.0, 1.0},
  });
  return set;
}

const Corner* ScenarioSet::find(const std::string& name) const {
  for (const Corner& c : corners_)
    if (c.name == name) return &c;
  return nullptr;
}

const Corner& ScenarioSet::corner(const std::string& name) const {
  if (const Corner* c = find(name)) return *c;
  std::string known;
  for (const Corner& c : corners_) known += (known.empty() ? "" : ", ") + c.name;
  fail("scenario: unknown corner '" + name + "' (known: " + known + ")",
       ErrorCode::bad_input);
}

std::vector<Corner> ScenarioSet::resolve(const std::string& spec) const {
  require(!corners_.empty(), "scenario: empty corner set", ErrorCode::bad_input);
  if (spec.empty()) return {corner("nominal")};
  if (spec == "all") return corners_;
  std::vector<Corner> out;
  for (const std::string& name : split(spec, ','))
    out.push_back(corner(name));
  return out;
}

}  // namespace pim
