#include "cosi/specfile.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pim {

std::string write_soc_spec(const SocSpec& spec) {
  spec.validate();
  std::ostringstream os;
  os << "soc \"" << spec.name << "\" {\n";
  os << "  die " << format_sig(spec.die_width, 17) << ' ' << format_sig(spec.die_height, 17)
     << "\n";
  os << "  data_width " << spec.data_width << "\n";
  for (const Core& c : spec.cores) {
    os << "  core " << c.name << ' ' << format_sig(c.x, 17) << ' ' << format_sig(c.y, 17)
       << ' ' << format_sig(c.width, 17) << ' ' << format_sig(c.height, 17) << "\n";
  }
  for (const Flow& f : spec.flows) {
    os << "  flow " << spec.cores[static_cast<size_t>(f.src)].name << ' '
       << spec.cores[static_cast<size_t>(f.dst)].name << ' '
       << format_sig(f.bandwidth, 17) << "\n";
  }
  os << "}\n";
  return os.str();
}

SocSpec parse_soc_spec(const std::string& text) {
  SocSpec spec;
  std::map<std::string, int> core_index;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  bool in_block = false;
  bool closed = false;

  auto syntax = [&](const std::string& msg) {
    fail("soc spec: line " + std::to_string(lineno) + ": " + msg);
  };

  while (std::getline(is, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto tokens = split_whitespace(line);
    if (tokens.empty()) continue;
    require(!closed, "soc spec: content after closing brace");

    if (!in_block) {
      if (tokens[0] != "soc" || tokens.size() != 3 || tokens.back() != "{")
        syntax("expected 'soc \"name\" {'");
      std::string name = tokens[1];
      if (name.size() >= 2 && name.front() == '"' && name.back() == '"')
        name = name.substr(1, name.size() - 2);
      spec.name = name;
      in_block = true;
      continue;
    }

    if (tokens[0] == "}") {
      if (tokens.size() != 1) syntax("unexpected tokens after '}'");
      closed = true;
    } else if (tokens[0] == "die") {
      if (tokens.size() != 3) syntax("die takes width and height");
      spec.die_width = parse_double(tokens[1]);
      spec.die_height = parse_double(tokens[2]);
    } else if (tokens[0] == "data_width") {
      if (tokens.size() != 2) syntax("data_width takes one value");
      spec.data_width = static_cast<int>(parse_long(tokens[1]));
    } else if (tokens[0] == "core") {
      if (tokens.size() != 6) syntax("core takes name x y width height");
      Core c;
      c.name = tokens[1];
      c.x = parse_double(tokens[2]);
      c.y = parse_double(tokens[3]);
      c.width = parse_double(tokens[4]);
      c.height = parse_double(tokens[5]);
      require(core_index.emplace(c.name, static_cast<int>(spec.cores.size())).second,
              "soc spec: duplicate core '" + c.name + "'");
      spec.cores.push_back(c);
    } else if (tokens[0] == "flow") {
      if (tokens.size() != 4) syntax("flow takes src dst bandwidth");
      const auto src = core_index.find(tokens[1]);
      const auto dst = core_index.find(tokens[2]);
      if (src == core_index.end()) syntax("unknown core '" + tokens[1] + "'");
      if (dst == core_index.end()) syntax("unknown core '" + tokens[2] + "'");
      spec.flows.push_back({src->second, dst->second, parse_double(tokens[3])});
    } else {
      syntax("unknown statement '" + tokens[0] + "'");
    }
  }
  require(closed, "soc spec: missing closing brace");
  spec.validate();
  return spec;
}

void save_soc_spec(const SocSpec& spec, const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "save_soc_spec: cannot open '" + path + "'");
  out << write_soc_spec(spec);
  require(out.good(), "save_soc_spec: write failed");
}

SocSpec load_soc_spec(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "load_soc_spec: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_soc_spec(buffer.str());
}

}  // namespace pim
