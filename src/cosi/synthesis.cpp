#include "cosi/synthesis.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "cosi/mesh.hpp"
#include "deadline/deadline.hpp"
#include "exec/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace pim {
namespace {

// Phase 2: route one flow, reusing a relay chain for identical endpoints.
void route_flow(NocArchitecture& arch, int flow_index, const Flow& flow,
                double max_length, double capacity,
                std::map<std::pair<int, int>, std::vector<int>>& relay_chains) {
  const int src = arch.core_node(flow.src);
  const int dst = arch.core_node(flow.dst);
  const double dist = arch.node_distance(src, dst);

  std::vector<int> waypoints;
  waypoints.push_back(src);
  if (dist > max_length) {
    const auto key = std::make_pair(src, dst);
    auto it = relay_chains.find(key);
    if (it == relay_chains.end()) {
      const int segments = static_cast<int>(std::ceil(dist / max_length));
      std::vector<int> relays;
      const NocNode& a = arch.nodes()[static_cast<size_t>(src)];
      const NocNode& b = arch.nodes()[static_cast<size_t>(dst)];
      for (int k = 1; k < segments; ++k) {
        const double t = static_cast<double>(k) / segments;
        relays.push_back(arch.add_router(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)));
      }
      it = relay_chains.emplace(key, std::move(relays)).first;
    }
    for (int r : it->second) waypoints.push_back(r);
  }
  waypoints.push_back(dst);

  for (size_t w = 0; w + 1 < waypoints.size(); ++w) {
    const int e = arch.allocate_edge(waypoints[w], waypoints[w + 1], flow.bandwidth, capacity);
    arch.append_to_path(flow_index, e);
  }
}

// Architecture-level cost the merging loop minimizes: total power, with
// infeasible links forbidden outright.
struct TrialOutcome {
  bool acceptable = false;
  double cost = 0.0;
};

TrialOutcome assess(const NocArchitecture& arch, const LinkImplementer& impl,
                    const RouterModel& router_model, double clock, int max_ports) {
  PIM_COUNT("cosi.trial.assessed");
  const NocMetrics m = evaluate_noc(arch, impl, router_model, clock);
  TrialOutcome out;
  if (m.infeasible_links > 0) return out;
  for (size_t n = arch.spec().cores.size(); n < arch.nodes().size(); ++n)
    if (arch.port_count(static_cast<int>(n)) > max_ports) return out;
  out.acceptable = true;
  out.cost = m.total_power();
  return out;
}

}  // namespace

NocSynthesisResult synthesize_noc(const SocSpec& spec, const InterconnectModel& model,
                                  const NocSynthesisOptions& options) {
  PIM_OBS_SPAN("cosi.synthesis.run");
  spec.validate();
  const Technology& tech = model.tech();
  const double clock = tech.clock_frequency;
  const double budget = options.delay_budget_fraction / clock;
  const double capacity = options.capacity_fraction * spec.data_width * clock;

  LinkContext base;
  base.layer = options.layer;
  base.style = options.style;
  base.input_slew = options.input_slew;
  base.frequency = clock;

  BufferingOptions buffering = options.buffering;
  if (options.explore_layers)
    buffering.layers = {WireLayer::Global, WireLayer::Intermediate};
  LinkImplementer implementer(model, base, budget, buffering);
  const RouterModel router_model = RouterModel::for_tech(tech, spec.data_width);

  NocSynthesisResult result{NocArchitecture(spec), base, budget, clock, {}, 0};
  NocArchitecture& arch = result.architecture;

  // Cooperative stop: the committed architecture is always a fully
  // assessed, feasible sizing, so on expiry we keep the best one found
  // so far and mark the result partial instead of throwing.
  const auto stop_requested = [&result] {
    const deadline::StopReason s = deadline::check();
    if (s == deadline::StopReason::none) return false;
    result.partial = true;
    PIM_COUNT("cosi.synthesis.partial");
    log_warn("synthesize_noc: ", deadline::stop_reason_name(s), " after ",
             result.merges_applied, " merges; returning best sizing so far");
    deadline::record_stop_metrics(static_cast<size_t>(result.merges_applied));
    return true;
  };

  // Graceful degradation: when constraint-driven synthesis cannot seed a
  // feasible point-to-point network, fall back to the regular mesh — it
  // spends more routers but tolerates tighter per-hop budgets, so the
  // flow still produces an implementable architecture.
  const auto mesh_fallback = [&](const std::string& reason) {
    PIM_COUNT("cosi.synthesis.error");
    PIM_COUNT("cosi.synthesis.mesh_fallback");
    log_warn("synthesize_noc: ", reason, "; falling back to mesh");
    return build_mesh_noc(spec, model, options);
  };

  // Phase 2: point-to-point with relay chains.
  double max_len = 0.0;
  try {
    max_len = implementer.max_feasible_length();
  } catch (const Error& e) {
    return mesh_fallback(e.message());
  }
  if (max_len <= 0.0)
    return mesh_fallback("no implementable wire length at this clock");
  std::map<std::pair<int, int>, std::vector<int>> relay_chains;
  for (size_t f = 0; f < spec.flows.size(); ++f)
    route_flow(arch, static_cast<int>(f), spec.flows[f], max_len, capacity, relay_chains);
  arch.implement_links(implementer);

  TrialOutcome current = assess(arch, implementer, router_model, clock, 1 << 20);
  if (!current.acceptable)
    return mesh_fallback("initial point-to-point network infeasible");

  // Phase 3: greedy merging of nearby routers. Candidate pairs are
  // enumerated serially, their trial assessments fan out over the
  // pim::exec engine (each trial builds a private architecture copy and
  // returns only {acceptable, cost}), and the winner is chosen by an
  // ordered scan in pair order — reproducing the serial loop's
  // first-best-wins tie-breaking, so the synthesized topology is
  // identical at any --threads count. The winning trial is rebuilt
  // serially, keeping peak memory at one extra architecture copy.
  const size_t first_router = spec.cores.size();
  const auto build_trial = [&](int i, int j) {
    NocArchitecture trial = arch;
    const NocNode& ni = trial.nodes()[static_cast<size_t>(i)];
    const NocNode& nj = trial.nodes()[static_cast<size_t>(j)];
    trial.move_node(i, 0.5 * (ni.x + nj.x), 0.5 * (ni.y + nj.y));
    trial.redirect_node(j, i, capacity);
    trial.implement_links(implementer);
    return trial;
  };
  for (int iter = 0; iter < options.max_merges; ++iter) {
    if (stop_requested()) break;
    std::vector<std::pair<int, int>> candidates;
    for (size_t i = first_router; i < arch.nodes().size(); ++i) {
      if (arch.port_count(static_cast<int>(i)) == 0) continue;
      for (size_t j = i + 1; j < arch.nodes().size(); ++j) {
        if (arch.port_count(static_cast<int>(j)) == 0) continue;
        if (arch.node_distance(static_cast<int>(i), static_cast<int>(j)) >
            options.merge_radius)
          continue;
        candidates.emplace_back(static_cast<int>(i), static_cast<int>(j));
      }
    }

    std::vector<TrialOutcome> outcomes;
    try {
      outcomes = exec::parallel_map<TrialOutcome>(
          candidates.size(), [&](size_t k) {
            const NocArchitecture trial =
                build_trial(candidates[k].first, candidates[k].second);
            return assess(trial, implementer, router_model, clock,
                          router_model.max_ports);
          });
    } catch (const Error& e) {
      // A stop mid-assessment discards the whole round (a partially
      // evaluated round cannot pick a deterministic winner) and keeps
      // the architecture from the last committed merge.
      if (e.code() != ErrorCode::deadline_exceeded && e.code() != ErrorCode::cancelled)
        throw;
      result.partial = true;
      PIM_COUNT("cosi.synthesis.partial");
      log_warn("synthesize_noc: merge round stopped (", e.message(),
               "); returning best sizing so far");
      break;
    }

    int best_k = -1;
    double best_cost = current.cost;
    for (size_t k = 0; k < outcomes.size(); ++k) {
      if (outcomes[k].acceptable && outcomes[k].cost < best_cost - 1e-12) {
        best_cost = outcomes[k].cost;
        best_k = static_cast<int>(k);
      }
    }

    if (best_k < 0) break;
    const int best_i = candidates[static_cast<size_t>(best_k)].first;
    const int best_j = candidates[static_cast<size_t>(best_k)].second;
    arch = build_trial(best_i, best_j);
    current.cost = best_cost;
    ++result.merges_applied;
    PIM_COUNT("cosi.merge.applied");
    log_debug("synthesize_noc: merged routers ", best_i, " and ", best_j,
              ", cost now ", best_cost);
  }

  // Phase 4: router placement refinement — move each router to the
  // bandwidth-weighted centroid of its neighbors when that lowers cost
  // (shorter heavy links burn less wire power).
  for (int sweep = 0; sweep < 3 && !result.partial; ++sweep) {
    bool improved = false;
    for (size_t n = first_router; n < arch.nodes().size(); ++n) {
      if (stop_requested()) break;
      const int node = static_cast<int>(n);
      if (arch.port_count(node) == 0) continue;
      double wx = 0.0;
      double wy = 0.0;
      double wsum = 0.0;
      for (const NocEdge& e : arch.edges()) {
        if (!e.alive) continue;
        int other = -1;
        if (e.a == node) other = e.b;
        if (e.b == node) other = e.a;
        if (other < 0) continue;
        const NocNode& peer = arch.nodes()[static_cast<size_t>(other)];
        wx += e.bandwidth * peer.x;
        wy += e.bandwidth * peer.y;
        wsum += e.bandwidth;
      }
      if (wsum <= 0.0) continue;
      NocArchitecture trial = arch;
      trial.move_node(node, wx / wsum, wy / wsum);
      trial.implement_links(implementer);
      const TrialOutcome outcome =
          assess(trial, implementer, router_model, clock, router_model.max_ports);
      if (outcome.acceptable && outcome.cost < current.cost - 1e-12) {
        arch = std::move(trial);
        current.cost = outcome.cost;
        improved = true;
      }
    }
    if (!improved) break;
  }

  // Finalization must complete even after a stop (the committed
  // architecture is already implemented; this re-derives its metrics),
  // so polls are suppressed for this bounded tail.
  deadline::GraceScope grace;
  arch.compact();
  arch.implement_links(implementer);
  result.metrics = evaluate_noc(arch, implementer, router_model, clock);
  return result;
}

}  // namespace pim
