// Constraint-driven NoC synthesis — the COSI-OCC substitute (see
// DESIGN.md substitutions).
//
// Algorithm:
//  1. Implementability bound: the longest wire that still meets the
//     per-hop delay budget under the chosen interconnect model.
//  2. Point-to-point construction: each flow gets a direct link when it
//     fits the bound, otherwise a chain of evenly spaced relay routers
//     (relay chains are shared by flows with identical endpoints).
//     Link bandwidth is capacity-checked; overflows spill into parallel
//     links.
//  3. Greedy cost-driven merging: nearby router pairs are tentatively
//     merged (rewire + deduplicate + re-implement); the merge with the
//     best total-power improvement is committed, until no merge helps.
//     Merges that violate the delay budget, port cap, or capacity are
//     rejected.
//
// Everything the optimization "sees" comes from the InterconnectModel it
// was handed — running the same spec through the original (Bakoglu) and
// the proposed model is exactly the paper's Table III experiment.
#pragma once

#include "cosi/architecture.hpp"

namespace pim {

/// Synthesis knobs.
struct NocSynthesisOptions {
  /// Per-hop delay budget as a fraction of the clock period. The wire
  /// gets half a cycle; router traversal and synchronization consume the
  /// rest.
  double delay_budget_fraction = 0.5;
  /// Links may be filled to this fraction of raw capacity.
  double capacity_fraction = 0.75;
  /// Router pairs farther apart than this are never merged [m].
  double merge_radius = 2.0e-3;
  /// Safety cap on merge iterations.
  int max_merges = 500;
  /// Wire/link environment. When explore_layers is set the per-link
  /// optimizer may also route on the intermediate layer (cheaper tracks,
  /// higher resistance — attractive for short hops).
  WireLayer layer = WireLayer::Global;
  bool explore_layers = false;
  DesignStyle style = DesignStyle::SingleSpacing;
  double input_slew = 100e-12;
  /// Buffering search preferences (max_delay is overridden by the
  /// budget). NoC links default to a balanced delay-power objective —
  /// the synthesizer minimizes power subject to the timing constraint.
  BufferingOptions buffering = {.weight = 0.5};
};

/// Result bundle: the architecture plus the implementer used to build it
/// (kept so metrics can be evaluated consistently afterwards).
struct NocSynthesisResult {
  NocArchitecture architecture;
  LinkContext base_context;   ///< context links were implemented under
  double delay_budget = 0.0;  ///< absolute per-hop budget [s]
  double clock_frequency = 0.0;
  NocMetrics metrics;         ///< metrics under the synthesis model
  int merges_applied = 0;
  /// True when a deadline/cancel stop ended the optimization early: the
  /// architecture is the best feasible sizing found before the budget
  /// expired (every committed merge had been fully assessed), not the
  /// converged optimum.
  bool partial = false;
};

/// Synthesizes a NoC for `spec` using `model`'s view of link cost.
NocSynthesisResult synthesize_noc(const SocSpec& spec, const InterconnectModel& model,
                                  const NocSynthesisOptions& options = {});

}  // namespace pim
