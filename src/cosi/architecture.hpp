// Synthesized NoC architecture: cores plus relay/merge routers, directed
// links carrying allocated bandwidth, and the route of every flow.
// Produced by pim::cosi synthesis and consumed by the metrics evaluator,
// the implementability audit, and the DOT exporter.
#pragma once

#include <string>
#include <vector>

#include "cosi/linkimpl.hpp"
#include "cosi/router.hpp"
#include "cosi/spec.hpp"

namespace pim {

/// A network endpoint: a core (index < spec.cores.size()) or a router.
struct NocNode {
  bool is_router = false;
  std::string name;
  double x = 0.0;
  double y = 0.0;
};

/// A directed link. `impl` is filled by implement_links().
struct NocEdge {
  int a = 0;
  int b = 0;
  double bandwidth = 0.0;  ///< allocated traffic [bit/s]
  bool alive = true;       ///< dead edges are purged by compact()
  ImplementedLink impl;
};

/// The architecture under construction / as synthesized.
class NocArchitecture {
 public:
  explicit NocArchitecture(const SocSpec& spec);

  const SocSpec& spec() const { return *spec_; }

  const std::vector<NocNode>& nodes() const { return nodes_; }
  const std::vector<NocEdge>& edges() const { return edges_; }
  const std::vector<std::vector<int>>& flow_paths() const { return paths_; }

  /// Node id of core `core_index` (identity by construction).
  int core_node(int core_index) const { return core_index; }

  int router_count() const { return static_cast<int>(nodes_.size() - spec_->cores.size()); }

  /// Adds a relay/merge router at (x, y); returns its node id.
  int add_router(double x, double y);

  /// Manhattan length of edge `e`.
  double edge_length(int e) const;

  /// Manhattan distance between two nodes.
  double node_distance(int a, int b) const;

  /// Number of distinct neighbors of a node (its port count).
  int port_count(int node) const;

  /// Total traffic traversing a node over its live incident edges [bit/s]
  /// (counts each edge once).
  double node_traffic(int node) const;

  /// Finds a live a->b edge with spare capacity (bandwidth + extra <=
  /// capacity) or creates one; adds `extra` to it. Returns the edge id.
  int allocate_edge(int a, int b, double extra, double capacity);

  /// Appends edge `e` to flow `f`'s path.
  void append_to_path(int flow, int edge);

  /// Moves node `node` to a new position (router merges).
  void move_node(int node, double x, double y);

  /// Rewires every live edge touching `from` onto `to`, drops loops, and
  /// combines parallel duplicates whose combined bandwidth fits
  /// `capacity`; flow paths are updated. Used by router merging — `from`
  /// must be a router and becomes orphaned (degree 0).
  void redirect_node(int from, int to, double capacity);

  /// Fills every live edge's `impl` through the implementer.
  void implement_links(const LinkImplementer& implementer);

  /// Drops dead edges and remaps flow paths; called after redirect_node.
  void compact();

 private:
  const SocSpec* spec_;
  std::vector<NocNode> nodes_;
  std::vector<NocEdge> edges_;
  std::vector<std::vector<int>> paths_;
};

/// Aggregate figures of merit (paper Table III rows).
struct NocMetrics {
  double link_dynamic_power = 0.0;
  double link_leakage_power = 0.0;
  double router_dynamic_power = 0.0;
  double router_leakage_power = 0.0;
  double link_area = 0.0;
  double router_area = 0.0;
  double worst_link_delay = 0.0;
  double avg_hops = 0.0;
  int max_hops = 0;
  int num_routers = 0;
  int num_links = 0;
  int infeasible_links = 0;

  double dynamic_power() const { return link_dynamic_power + router_dynamic_power; }
  double leakage_power() const { return link_leakage_power + router_leakage_power; }
  double total_power() const { return dynamic_power() + leakage_power(); }
  double total_area() const { return link_area + router_area; }
};

/// Evaluates the architecture under the implementer's model. Links must
/// have been implemented (implement_links) first.
NocMetrics evaluate_noc(const NocArchitecture& arch, const LinkImplementer& implementer,
                        const RouterModel& router_model, double clock_frequency);

/// Implementability audit: re-times every link's *chosen design* under a
/// reference model and counts links whose delay exceeds the budget — the
/// paper's "non-conservative abstraction leads to design solutions that
/// are actually not implementable".
struct AuditResult {
  int links_checked = 0;
  int violations = 0;
  double worst_overshoot = 0.0;  ///< worst delay / budget ratio
};
AuditResult audit_links(const NocArchitecture& arch, const InterconnectModel& reference,
                        const LinkContext& base_context, double delay_budget);

/// Graphviz export (cores as boxes, routers as circles, edge labels in
/// Gb/s).
std::string to_dot(const NocArchitecture& arch);

}  // namespace pim
