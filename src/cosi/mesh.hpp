// Regular 2-D mesh NoC construction — the classic packet-switched
// architecture the NoC literature (paper §I: [8], [11], [12]) proposes,
// used as the reference point that constraint-driven synthesis is
// compared against. Routers sit on a grid over the die, every core
// attaches to its nearest router, and flows follow dimension-ordered
// (XY) routing.
#pragma once

#include "cosi/architecture.hpp"
#include "cosi/synthesis.hpp"

namespace pim {

/// Mesh shape; zero rows/cols = choose automatically from the core count
/// (targeting two to three cores per router).
struct MeshOptions {
  int rows = 0;
  int cols = 0;
};

/// Builds and implements a mesh NoC for `spec` under `model`, using the
/// same budgets and link environment as synthesize_noc — so the two
/// results are directly comparable.
NocSynthesisResult build_mesh_noc(const SocSpec& spec, const InterconnectModel& model,
                                  const NocSynthesisOptions& options = {},
                                  const MeshOptions& mesh = {});

}  // namespace pim
