#include "cosi/architecture.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "models/area.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace pim {

NocArchitecture::NocArchitecture(const SocSpec& spec) : spec_(&spec) {
  spec.validate();
  nodes_.reserve(spec.cores.size());
  for (const Core& c : spec.cores) nodes_.push_back({false, c.name, c.x, c.y});
  paths_.resize(spec.flows.size());
}

int NocArchitecture::add_router(double x, double y) {
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back({true, "r" + std::to_string(router_count()), x, y});
  return id;
}

double NocArchitecture::edge_length(int e) const {
  const NocEdge& edge = edges_.at(static_cast<size_t>(e));
  return node_distance(edge.a, edge.b);
}

double NocArchitecture::node_distance(int a, int b) const {
  const NocNode& na = nodes_.at(static_cast<size_t>(a));
  const NocNode& nb = nodes_.at(static_cast<size_t>(b));
  return std::fabs(na.x - nb.x) + std::fabs(na.y - nb.y);
}

int NocArchitecture::port_count(int node) const {
  std::set<int> neighbors;
  for (const NocEdge& e : edges_) {
    if (!e.alive) continue;
    if (e.a == node) neighbors.insert(e.b);
    if (e.b == node) neighbors.insert(e.a);
  }
  return static_cast<int>(neighbors.size());
}

double NocArchitecture::node_traffic(int node) const {
  double acc = 0.0;
  for (const NocEdge& e : edges_) {
    if (!e.alive) continue;
    if (e.a == node || e.b == node) acc += e.bandwidth;
  }
  return acc;
}

int NocArchitecture::allocate_edge(int a, int b, double extra, double capacity) {
  require(a != b, "allocate_edge: loop edge");
  require(extra > 0.0, "allocate_edge: bandwidth must be positive");
  for (size_t i = 0; i < edges_.size(); ++i) {
    NocEdge& e = edges_[i];
    if (e.alive && e.a == a && e.b == b && e.bandwidth + extra <= capacity) {
      e.bandwidth += extra;
      return static_cast<int>(i);
    }
  }
  NocEdge e;
  e.a = a;
  e.b = b;
  e.bandwidth = extra;
  edges_.push_back(e);
  return static_cast<int>(edges_.size()) - 1;
}

void NocArchitecture::append_to_path(int flow, int edge) {
  paths_.at(static_cast<size_t>(flow)).push_back(edge);
}

void NocArchitecture::move_node(int node, double x, double y) {
  nodes_.at(static_cast<size_t>(node)).x = x;
  nodes_.at(static_cast<size_t>(node)).y = y;
}

void NocArchitecture::redirect_node(int from, int to, double capacity) {
  require(nodes_.at(static_cast<size_t>(from)).is_router, "redirect_node: 'from' must be a router");
  require(from != to, "redirect_node: nothing to do");

  // Rewire; loops die immediately.
  for (NocEdge& e : edges_) {
    if (!e.alive) continue;
    if (e.a == from) e.a = to;
    if (e.b == from) e.b = to;
    if (e.a == e.b) e.alive = false;
  }

  // Combine parallels where the sum fits the capacity: keep the first
  // edge per (a, b), fold later ones into it. edge_remap records where a
  // path reference should now point (-1 = the edge vanished).
  std::vector<int> remap(edges_.size());
  for (size_t i = 0; i < edges_.size(); ++i) remap[i] = static_cast<int>(i);
  std::map<std::pair<int, int>, std::vector<size_t>> groups;
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (!edges_[i].alive) {
      remap[i] = -1;
      continue;
    }
    groups[{edges_[i].a, edges_[i].b}].push_back(i);
  }
  for (const auto& [key, members] : groups) {
    (void)key;
    for (size_t m = 1; m < members.size(); ++m) {
      NocEdge& keeper = edges_[members[0]];
      NocEdge& extra = edges_[members[m]];
      if (keeper.bandwidth + extra.bandwidth <= capacity) {
        keeper.bandwidth += extra.bandwidth;
        extra.alive = false;
        remap[members[m]] = static_cast<int>(members[0]);
      }
    }
  }

  // Patch flow paths (dead loop edges drop out of the path).
  for (auto& path : paths_) {
    std::vector<int> next;
    next.reserve(path.size());
    for (int e : path) {
      const int target = remap[static_cast<size_t>(e)];
      if (target >= 0) next.push_back(target);
    }
    path = std::move(next);
  }
}

void NocArchitecture::implement_links(const LinkImplementer& implementer) {
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (!edges_[i].alive) continue;
    edges_[i].impl = implementer.implement(edge_length(static_cast<int>(i)));
  }
}

void NocArchitecture::compact() {
  std::vector<int> remap(edges_.size(), -1);
  std::vector<NocEdge> live;
  live.reserve(edges_.size());
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (!edges_[i].alive) continue;
    remap[i] = static_cast<int>(live.size());
    live.push_back(edges_[i]);
  }
  edges_ = std::move(live);
  for (auto& path : paths_) {
    for (int& e : path) {
      e = remap[static_cast<size_t>(e)];
      require(e >= 0, "compact: path references a dead edge");
    }
  }
}

NocMetrics evaluate_noc(const NocArchitecture& arch, const LinkImplementer& implementer,
                        const RouterModel& router_model, double clock_frequency) {
  const SocSpec& spec = arch.spec();
  const Technology& tech = implementer.model().tech();
  const LinkContext& base = implementer.base_context();
  const double capacity_bits = spec.data_width * clock_frequency;

  NocMetrics m;
  m.num_routers = arch.router_count();

  for (size_t i = 0; i < arch.edges().size(); ++i) {
    const NocEdge& e = arch.edges()[i];
    if (!e.alive) continue;
    ++m.num_links;
    const double len = arch.edge_length(static_cast<int>(i));
    if (!e.impl.feasible) {
      ++m.infeasible_links;
      continue;
    }
    const double utilization = std::min(1.0, e.bandwidth / capacity_bits);
    const LinkEstimate est = implementer.evaluate(len, e.impl, 0.5 * utilization);
    m.link_dynamic_power += spec.data_width * est.dynamic_power;
    m.link_leakage_power += spec.data_width * est.leakage_power;
    m.link_area += spec.data_width * est.repeater_area +
                   bus_wire_area(tech, e.impl.layer, base.style, spec.data_width, len);
    m.worst_link_delay = std::max(m.worst_link_delay, est.delay);
  }

  for (size_t n = spec.cores.size(); n < arch.nodes().size(); ++n) {
    const int node = static_cast<int>(n);
    const int ports = arch.port_count(node);
    if (ports == 0) continue;  // orphaned by a merge
    m.router_dynamic_power += router_model.dynamic_power(arch.node_traffic(node));
    m.router_leakage_power += ports * router_model.leakage_per_port;
    m.router_area += ports * router_model.area_per_port;
  }

  size_t routed = 0;
  double hop_acc = 0.0;
  for (const auto& path : arch.flow_paths()) {
    if (path.empty()) continue;
    ++routed;
    hop_acc += static_cast<double>(path.size());
    m.max_hops = std::max(m.max_hops, static_cast<int>(path.size()));
  }
  m.avg_hops = routed ? hop_acc / static_cast<double>(routed) : 0.0;
  return m;
}

AuditResult audit_links(const NocArchitecture& arch, const InterconnectModel& reference,
                        const LinkContext& base_context, double delay_budget) {
  require(delay_budget > 0.0, "audit_links: budget must be positive");
  AuditResult out;
  for (size_t i = 0; i < arch.edges().size(); ++i) {
    const NocEdge& e = arch.edges()[i];
    if (!e.alive || !e.impl.feasible) continue;
    ++out.links_checked;
    LinkContext ctx = base_context;
    ctx.length = arch.edge_length(static_cast<int>(i));
    ctx.layer = e.impl.layer;
    const double delay = reference.evaluate(ctx, e.impl.design).delay;
    if (delay > delay_budget) ++out.violations;
    out.worst_overshoot = std::max(out.worst_overshoot, delay / delay_budget);
  }
  return out;
}

std::string to_dot(const NocArchitecture& arch) {
  std::ostringstream os;
  os << "digraph noc {\n  rankdir=LR;\n  node [fontsize=10];\n";
  for (size_t n = 0; n < arch.nodes().size(); ++n) {
    const NocNode& node = arch.nodes()[n];
    os << "  n" << n << " [label=\"" << node.name << "\", shape="
       << (node.is_router ? "circle" : "box") << "];\n";
  }
  for (const NocEdge& e : arch.edges()) {
    if (!e.alive) continue;
    os << "  n" << e.a << " -> n" << e.b << " [label=\""
       << format("%.2f", e.bandwidth / 1e9) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace pim
