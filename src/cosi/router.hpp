// Router cost model for NoC synthesis.
//
// A compact Orion-flavored linear model: traversing a router costs a
// fixed energy per bit, each port contributes static leakage and area.
// Coefficients are derived from the technology's unit inverter so they
// scale sanely across nodes (documented substitution — the paper relies
// on COSI-OCC's built-in router characterization).
#pragma once

#include "tech/technology.hpp"

namespace pim {

/// Linear router cost model (per data_width-bit router).
struct RouterModel {
  double energy_per_bit = 0.0;   ///< J per bit per traversal
  double leakage_per_port = 0.0; ///< W per port (whole data width)
  double area_per_port = 0.0;    ///< m^2 per port
  int max_ports = 8;             ///< synthesis degree cap

  /// Derives coefficients for `tech` and a given link data width.
  static RouterModel for_tech(const Technology& tech, int data_width);

  /// Dynamic power of a router given total traversing traffic [bit/s].
  double dynamic_power(double traffic_bits_per_s) const {
    return energy_per_bit * traffic_bits_per_s;
  }
};

}  // namespace pim
