#include "cosi/linkimpl.hpp"

#include <cmath>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pim {
namespace {
constexpr double kQuantum = 25e-6;  // memoization granularity [m]
}

LinkImplementer::LinkImplementer(const InterconnectModel& model, LinkContext base_context,
                                 double delay_budget, BufferingOptions buffering)
    : model_(&model), base_(base_context), budget_(delay_budget),
      buffering_(std::move(buffering)) {
  require(budget_ > 0.0, "LinkImplementer: delay budget must be positive");
  buffering_.max_delay = budget_;
}

namespace {

// Reports the buffering artifacts a link implementation consumed to the
// caller's provenance scope (if one is open) — memo hits and fresh
// searches alike, so the reuse path and the search path feed the
// artifact graph identically.
void replay_provenance(const std::vector<cache::CacheKey>& keys) {
  if (cache::Tracked* scope = cache::Tracked::current())
    for (const cache::CacheKey& key : keys) scope->upstream(key);
}

}  // namespace

const ImplementedLink& LinkImplementer::implement(double length) const {
  require(length > 0.0, "LinkImplementer::implement: length must be positive");
  const long key = std::max(1L, std::lround(length / kQuantum));
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      PIM_COUNT("cosi.linkcache.hits");
      replay_provenance(it->second.provenance);
      return it->second;
    }
  }
  PIM_COUNT("cosi.link.implemented");

  // The optimizer runs outside the lock so concurrent misses on
  // different lengths do not serialize. Map node references are stable,
  // so handing out `it->second` across later insertions is safe.
  LinkContext ctx = base_;
  ctx.length = static_cast<double>(key) * kQuantum;
  // Cached search: merge trials re-derive the same quantized lengths over
  // and over, and separate synthesis processes share the on-disk tier.
  // The Tracked scope captures which buffering artifact the search
  // resolved to (the cached wrapper publishes its key into it), so the
  // memo entry can replay that dependency on every later reuse.
  ImplementedLink link;
  {
    cache::Tracked scope;
    const BufferingResult best = optimize_buffering_cached(*model_, ctx, buffering_);
    link.feasible = best.feasible;
    if (best.feasible) {
      link.design = best.design;
      link.layer = best.layer;
    }
    link.provenance = scope.upstream_keys();
  }
  replay_provenance(link.provenance);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.emplace(key, std::move(link)).first->second;
}

double LinkImplementer::max_feasible_length() const {
  std::lock_guard<std::mutex> lock(length_mutex_);
  if (max_length_) return *max_length_;
  // Exponential probe up, then bisect.
  double lo = 0.0;
  double hi = 0.5e-3;
  while (implement(hi).feasible && hi < 0.2) {
    lo = hi;
    hi *= 2.0;
  }
  if (hi >= 0.2) {
    // Effectively unconstrained on-chip.
    max_length_ = lo;
    return *max_length_;
  }
  require(lo > 0.0 || implement(kQuantum).feasible,
          "LinkImplementer: even the shortest link misses the delay budget");
  while (hi - lo > 50e-6) {
    const double mid = 0.5 * (lo + hi);
    if (implement(mid).feasible) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  max_length_ = lo;
  return *max_length_;
}

LinkEstimate LinkImplementer::evaluate(double length, const ImplementedLink& link,
                                       double activity) const {
  PIM_COUNT("cosi.link.evaluated");
  LinkContext ctx = base_;
  ctx.length = length;
  ctx.layer = link.layer;
  ctx.activity = activity;
  return model_->evaluate(ctx, link.design);
}

}  // namespace pim
