// Link implementation service for NoC synthesis: given a wire length,
// pick the buffering that meets the clock-period timing budget at minimum
// weighted cost, through whichever interconnect model the synthesizer was
// handed. Results are memoized on a quantized length so the greedy
// merging loop can query thousands of candidates cheaply.
//
// The memo cache is thread-safe: synthesis trial assessment fans out
// over pim::exec, so implement() may be called concurrently. Two threads
// missing the same key both run the optimizer, but the first emplace
// wins and the optimizer is deterministic per key, so the cached value
// is thread-count-invariant (only the hit/miss counters can vary).
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "buffering/optimize.hpp"
#include "cache/manifest.hpp"
#include "models/model.hpp"

namespace pim {

/// One implemented (or unimplementable) link.
struct ImplementedLink {
  bool feasible = false;
  LinkDesign design;
  WireLayer layer = WireLayer::Global;  ///< routing layer the optimizer chose
  /// Keys of the cached buffering artifacts this implementation reused
  /// (empty when the model is uncacheable). Memo hits replay these into
  /// the enclosing provenance scope, so the link-search reuse path feeds
  /// the artifact graph exactly like a fresh search.
  std::vector<cache::CacheKey> provenance;
};

class LinkImplementer {
 public:
  /// `delay_budget` is the absolute per-link delay limit (typically a
  /// fraction of the clock period: each hop is pipelined).
  LinkImplementer(const InterconnectModel& model, LinkContext base_context,
                  double delay_budget, BufferingOptions buffering = {});

  /// Best buffering for a wire of `length`; memoized at 25 um granularity.
  const ImplementedLink& implement(double length) const;

  /// Longest length (to within ~50 um) that is still implementable under
  /// the delay budget; computed once by bisection.
  double max_feasible_length() const;

  /// Evaluates an implemented link at a specific activity factor (on the
  /// layer the implementation chose).
  LinkEstimate evaluate(double length, const ImplementedLink& link, double activity) const;

  const InterconnectModel& model() const { return *model_; }
  const LinkContext& base_context() const { return base_; }
  double delay_budget() const { return budget_; }

 private:
  const InterconnectModel* model_;
  LinkContext base_;
  double budget_;
  BufferingOptions buffering_;
  mutable std::mutex cache_mutex_;    ///< guards cache_
  mutable std::mutex length_mutex_;   ///< guards max_length_
  mutable std::map<long, ImplementedLink> cache_;
  mutable std::optional<double> max_length_;
};

}  // namespace pim
