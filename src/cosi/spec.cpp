#include "cosi/spec.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pim {

void SocSpec::validate() const {
  require(!cores.empty(), "SocSpec: no cores");
  require(data_width >= 1, "SocSpec: data width must be positive");
  require(die_width > 0.0 && die_height > 0.0, "SocSpec: die dimensions must be positive");
  for (const Core& c : cores) {
    require(!c.name.empty(), "SocSpec: core without a name");
    require(c.x >= 0.0 && c.x <= die_width && c.y >= 0.0 && c.y <= die_height,
            "SocSpec: core '" + c.name + "' outside the die");
  }
  const int n = static_cast<int>(cores.size());
  for (const Flow& f : flows) {
    require(f.src >= 0 && f.src < n && f.dst >= 0 && f.dst < n,
            "SocSpec: flow endpoint out of range");
    require(f.src != f.dst, "SocSpec: self-flow");
    require(f.bandwidth > 0.0, "SocSpec: flow bandwidth must be positive");
  }
}

double SocSpec::core_distance(int a, int b) const {
  const Core& ca = cores.at(static_cast<size_t>(a));
  const Core& cb = cores.at(static_cast<size_t>(b));
  return std::fabs(ca.x - cb.x) + std::fabs(ca.y - cb.y);
}

double SocSpec::total_bandwidth() const {
  double acc = 0.0;
  for (const Flow& f : flows) acc += f.bandwidth;
  return acc;
}

}  // namespace pim
