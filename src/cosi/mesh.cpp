#include "cosi/mesh.hpp"

#include <cmath>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace pim {
namespace {

int auto_dim(double extent, double other_extent, int router_target) {
  const double aspect = extent / other_extent;
  return std::max(1, static_cast<int>(std::lround(std::sqrt(router_target * aspect))));
}

}  // namespace

NocSynthesisResult build_mesh_noc(const SocSpec& spec, const InterconnectModel& model,
                                  const NocSynthesisOptions& options,
                                  const MeshOptions& mesh) {
  PIM_OBS_SPAN("cosi.mesh.run");
  spec.validate();
  const Technology& tech = model.tech();
  const double clock = tech.clock_frequency;
  const double budget = options.delay_budget_fraction / clock;
  const double capacity = options.capacity_fraction * spec.data_width * clock;

  LinkContext base;
  base.layer = options.layer;
  base.style = options.style;
  base.input_slew = options.input_slew;
  base.frequency = clock;

  BufferingOptions buffering = options.buffering;
  if (options.explore_layers)
    buffering.layers = {WireLayer::Global, WireLayer::Intermediate};
  LinkImplementer implementer(model, base, budget, buffering);

  int cols = mesh.cols;
  int rows = mesh.rows;
  if (cols <= 0 || rows <= 0) {
    const int router_target =
        std::max(2, static_cast<int>(std::lround(spec.cores.size() / 2.5)));
    cols = auto_dim(spec.die_width, spec.die_height, router_target);
    rows = std::max(1, (router_target + cols - 1) / cols);
  }

  NocSynthesisResult result{NocArchitecture(spec), base, budget, clock, {}, 0};
  NocArchitecture& arch = result.architecture;

  // Router grid (cell centers).
  std::vector<std::vector<int>> router(rows, std::vector<int>(cols));
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      router[static_cast<size_t>(r)][static_cast<size_t>(c)] = arch.add_router(
          (c + 0.5) * spec.die_width / cols, (r + 0.5) * spec.die_height / rows);

  // Core -> nearest router assignment.
  auto home = [&](int core) {
    const Core& k = spec.cores[static_cast<size_t>(core)];
    const int c = std::min(cols - 1, static_cast<int>(k.x / spec.die_width * cols));
    const int r = std::min(rows - 1, static_cast<int>(k.y / spec.die_height * rows));
    return std::pair{r, c};
  };

  // Flows: core -> home router -> XY route -> home router -> core.
  for (size_t f = 0; f < spec.flows.size(); ++f) {
    const Flow& flow = spec.flows[f];
    const auto [r0, c0] = home(flow.src);
    const auto [r1, c1] = home(flow.dst);

    std::vector<int> waypoints;
    waypoints.push_back(arch.core_node(flow.src));
    int r = r0;
    int c = c0;
    waypoints.push_back(router[static_cast<size_t>(r)][static_cast<size_t>(c)]);
    while (c != c1) {
      c += (c1 > c) ? 1 : -1;
      waypoints.push_back(router[static_cast<size_t>(r)][static_cast<size_t>(c)]);
    }
    while (r != r1) {
      r += (r1 > r) ? 1 : -1;
      waypoints.push_back(router[static_cast<size_t>(r)][static_cast<size_t>(c)]);
    }
    waypoints.push_back(arch.core_node(flow.dst));

    for (size_t w = 0; w + 1 < waypoints.size(); ++w) {
      if (waypoints[w] == waypoints[w + 1]) continue;  // core on its router? never, but safe
      const int e =
          arch.allocate_edge(waypoints[w], waypoints[w + 1], flow.bandwidth, capacity);
      arch.append_to_path(static_cast<int>(f), e);
    }
  }

  arch.implement_links(implementer);
  result.metrics = evaluate_noc(arch, implementer, RouterModel::for_tech(tech, spec.data_width),
                                clock);
  return result;
}

}  // namespace pim
