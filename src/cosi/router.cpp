#include "cosi/router.hpp"

#include "spice/mosfet.hpp"
#include "util/error.hpp"

namespace pim {

RouterModel RouterModel::for_tech(const Technology& tech, int data_width) {
  require(data_width >= 1, "RouterModel: data width must be positive");
  RouterModel m;
  // Unit-inverter quantities anchor the scaling.
  const double wn = tech.unit_nmos_width;
  const double wp = tech.pmos_width(wn);
  const double c_unit = wn * tech.nmos.c_gate + wp * tech.pmos.c_gate;
  const double leak_unit =
      tech.vdd * (off_current(tech.nmos, wn, tech.vdd) + off_current(tech.pmos, wp, tech.vdd));

  // ~8 unit-gate capacitances switch per bit through buffer + crossbar +
  // arbitration (Orion-magnitude: a few fJ/bit at 90 nm).
  m.energy_per_bit = 8.0 * c_unit * tech.vdd * tech.vdd;
  // ~30 leaking unit gates per bit of port storage/mux.
  m.leakage_per_port = 30.0 * data_width * leak_unit;
  // Empirical footprint: ~2e4 F^2 of silicon per bit of port.
  const double f2 = tech.area.feature_size * tech.area.feature_size;
  m.area_per_port = 2.0e4 * data_width * f2;
  m.max_ports = 8;
  return m;
}

}  // namespace pim
