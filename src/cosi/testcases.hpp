// Built-in SoC test cases mirroring the paper's Table III designs (see
// DESIGN.md substitutions — the industrial netlists are not public, so
// these preserve the published scale, data width, and traffic structure):
//
//   VPROC — a 42-core video processor, 128-bit data: four 8-stage
//   processing pipelines with stream-in/stream-out cores on the die
//   edges, a shared DRAM controller and a control processor.
//
//   DVOPD — a dual video object plane decoder, 26 cores, 128-bit data:
//   two mirrored 13-core VOPD instances (published VOPD core names and
//   MB/s-scale bandwidths) with cross-instance control and memory
//   traffic.
#pragma once

#include "cosi/spec.hpp"

namespace pim {

/// 42-core video processor on a 10 x 10 mm die.
SocSpec vproc_spec();

/// 26-core dual video object plane decoder on a 6 x 4 mm die.
SocSpec dvopd_spec();

/// 12-core MPEG-4 decoder on a 4 x 3 mm die: the classic SDRAM-centric
/// star traffic pattern of the published benchmark.
SocSpec mpeg4_spec();

/// 12-core multi-window display (MWD) on a 4 x 3 mm die: the published
/// pipelined filter chain with frame memories.
SocSpec mwd_spec();

}  // namespace pim
