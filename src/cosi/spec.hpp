// SoC communication specification: the input to NoC synthesis.
//
// A spec is a set of placed cores and point-to-point flows with bandwidth
// requirements, plus the bus data width — the same abstraction COSI-OCC
// consumes. Distances are Manhattan (on-chip routes are rectilinear).
#pragma once

#include <string>
#include <vector>

namespace pim {

/// One IP core with its floorplan position (center) and extent.
struct Core {
  std::string name;
  double x = 0.0;       ///< center [m]
  double y = 0.0;       ///< center [m]
  double width = 0.0;   ///< [m]
  double height = 0.0;  ///< [m]
};

/// One directed communication requirement.
struct Flow {
  int src = 0;             ///< core index
  int dst = 0;             ///< core index
  double bandwidth = 0.0;  ///< required throughput [bit/s]
};

/// The whole SoC communication problem.
struct SocSpec {
  std::string name;
  std::vector<Core> cores;
  std::vector<Flow> flows;
  int data_width = 128;    ///< link width [bits]
  double die_width = 0.0;  ///< [m]
  double die_height = 0.0; ///< [m]

  /// Throws pim::Error unless the spec is self-consistent (indices in
  /// range, positive bandwidths, cores inside the die, no self-flows).
  void validate() const;

  /// Manhattan distance between two core centers.
  double core_distance(int a, int b) const;

  /// Sum of all flow bandwidths [bit/s].
  double total_bandwidth() const;
};

}  // namespace pim
