#include "cosi/testcases.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace pim {
namespace {

using namespace pim::unit;

constexpr double kMBps = 8.0e6;  // MB/s -> bit/s

// Grid placement helper: core centered in cell (col, row) of an
// ncols x nrows grid over the die.
Core grid_core(const std::string& name, int col, int row, int ncols, int nrows,
               double die_w, double die_h) {
  Core c;
  c.name = name;
  c.x = (col + 0.5) * die_w / ncols;
  c.y = (row + 0.5) * die_h / nrows;
  c.width = 0.8 * die_w / ncols;
  c.height = 0.8 * die_h / nrows;
  return c;
}

}  // namespace

SocSpec vproc_spec() {
  SocSpec spec;
  spec.name = "vproc";
  spec.data_width = 128;
  spec.die_width = 10.0 * mm;
  spec.die_height = 10.0 * mm;
  const int ncols = 10;
  const int nrows = 6;

  auto add = [&](const std::string& name, int col, int row) {
    spec.cores.push_back(grid_core(name, col, row, ncols, nrows, spec.die_width, spec.die_height));
    return static_cast<int>(spec.cores.size()) - 1;
  };
  auto flow = [&](int src, int dst, double mbps) {
    spec.flows.push_back({src, dst, mbps * kMBps});
  };

  // Four 8-stage pipelines on rows 1..4, stream-in on the left edge,
  // stream-out on the right edge.
  std::vector<int> ins, outs;
  std::vector<std::vector<int>> stage(4);
  for (int p = 0; p < 4; ++p) {
    ins.push_back(add(format("in%d", p), 0, p + 1));
    for (int s = 0; s < 8; ++s) stage[p].push_back(add(format("p%d_%d", p, s), s + 1, p + 1));
    outs.push_back(add(format("out%d", p), 9, p + 1));
  }
  const int ctrl = add("ctrl", 4, 0);
  const int dram = add("dram", 5, 5);
  require(spec.cores.size() == 42, "vproc_spec: expected 42 cores");

  for (int p = 0; p < 4; ++p) {
    flow(ins[p], stage[p][0], 250.0);
    for (int s = 0; s + 1 < 8; ++s) flow(stage[p][s], stage[p][s + 1], 320.0);
    flow(stage[p][7], outs[p], 250.0);
    // Frame-buffer traffic from the mid-pipeline stages.
    flow(stage[p][3], dram, 110.0);
    flow(dram, stage[p][4], 110.0);
    // Low-rate control.
    flow(ctrl, stage[p][0], 8.0);
    flow(stage[p][7], ctrl, 8.0);
  }
  flow(ctrl, dram, 16.0);
  spec.validate();
  return spec;
}

SocSpec dvopd_spec() {
  SocSpec spec;
  spec.name = "dvopd";
  spec.data_width = 128;
  spec.die_width = 6.0 * mm;
  spec.die_height = 4.0 * mm;
  const int ncols = 8;
  const int nrows = 4;

  auto add = [&](const std::string& name, int col, int row) {
    spec.cores.push_back(grid_core(name, col, row, ncols, nrows, spec.die_width, spec.die_height));
    return static_cast<int>(spec.cores.size()) - 1;
  };
  auto flow = [&](int src, int dst, double mbps) {
    spec.flows.push_back({src, dst, mbps * kMBps});
  };

  // One VOPD instance: 13 cores in a 4 x 4 quadrant (col offset selects
  // the instance). Core names and MB/s bandwidths follow the published
  // VOPD task graph.
  auto instance = [&](int col0, const char* suffix) {
    std::vector<int> c;
    c.push_back(add(std::string("vld") + suffix, col0 + 0, 0));        // 0
    c.push_back(add(std::string("run_le") + suffix, col0 + 1, 0));     // 1
    c.push_back(add(std::string("inv_scan") + suffix, col0 + 2, 0));   // 2
    c.push_back(add(std::string("ac_dc") + suffix, col0 + 3, 0));      // 3
    c.push_back(add(std::string("stripe") + suffix, col0 + 0, 1));     // 4
    c.push_back(add(std::string("iquant") + suffix, col0 + 1, 1));     // 5
    c.push_back(add(std::string("idct") + suffix, col0 + 2, 1));       // 6
    c.push_back(add(std::string("upsamp") + suffix, col0 + 3, 1));     // 7
    c.push_back(add(std::string("vop_rec") + suffix, col0 + 0, 2));    // 8
    c.push_back(add(std::string("pad") + suffix, col0 + 1, 2));        // 9
    c.push_back(add(std::string("vop_mem") + suffix, col0 + 2, 2));    // 10
    c.push_back(add(std::string("arm") + suffix, col0 + 3, 2));        // 11
    c.push_back(add(std::string("mem_ctrl") + suffix, col0 + 1, 3));   // 12

    flow(c[0], c[1], 70.0);
    flow(c[1], c[2], 362.0);
    flow(c[2], c[3], 362.0);
    flow(c[3], c[4], 49.0);
    flow(c[3], c[5], 357.0);
    flow(c[4], c[5], 27.0);
    flow(c[5], c[6], 353.0);
    flow(c[6], c[7], 300.0);
    flow(c[7], c[8], 313.0);
    flow(c[8], c[9], 500.0);
    flow(c[9], c[10], 94.0);
    flow(c[10], c[9], 500.0);
    flow(c[6], c[11], 16.0);
    flow(c[11], c[7], 16.0);
    flow(c[10], c[12], 250.0);
    flow(c[12], c[0], 150.0);
    return c;
  };

  const auto a = instance(0, "_a");
  const auto b = instance(4, "_b");
  require(spec.cores.size() == 26, "dvopd_spec: expected 26 cores");

  // Cross-instance coordination and shared-memory traffic.
  flow(a[11], b[11], 16.0);
  flow(b[11], a[11], 16.0);
  flow(a[12], b[12], 100.0);

  spec.validate();
  return spec;
}

SocSpec mpeg4_spec() {
  SocSpec spec;
  spec.name = "mpeg4";
  spec.data_width = 128;
  spec.die_width = 4.0 * mm;
  spec.die_height = 3.0 * mm;
  const int ncols = 4;
  const int nrows = 3;

  auto add = [&](const std::string& name, int col, int row) {
    spec.cores.push_back(grid_core(name, col, row, ncols, nrows, spec.die_width, spec.die_height));
    return static_cast<int>(spec.cores.size()) - 1;
  };
  auto flow = [&](int src, int dst, double mbps) {
    spec.flows.push_back({src, dst, mbps * kMBps});
  };

  const int vu = add("vu", 0, 0);
  const int au = add("au", 1, 0);
  const int med_cpu = add("med_cpu", 2, 0);
  const int rast = add("rast", 3, 0);
  const int idct = add("idct", 0, 1);
  const int sdram = add("sdram", 1, 1);   // the star hub
  const int sram1 = add("sram1", 2, 1);
  const int sram2 = add("sram2", 3, 1);
  const int adsp = add("adsp", 0, 2);
  const int up_samp = add("up_samp", 1, 2);
  const int bab = add("bab", 2, 2);
  const int risc = add("risc", 3, 2);
  require(spec.cores.size() == 12, "mpeg4_spec: expected 12 cores");

  // Published-magnitude SDRAM-centric star plus a few peer links (MB/s).
  flow(vu, sdram, 190.0);
  flow(sdram, vu, 190.0);
  flow(au, sdram, 0.5);
  flow(med_cpu, sdram, 60.0);
  flow(rast, sdram, 640.0);
  flow(sdram, rast, 640.0);
  flow(idct, sdram, 250.0);
  flow(adsp, sdram, 0.5);
  flow(up_samp, sdram, 910.0);
  flow(sdram, up_samp, 498.0);
  flow(bab, sdram, 32.0);
  flow(risc, sdram, 500.0);
  flow(sdram, risc, 250.0);
  flow(vu, sram1, 190.0);
  flow(rast, sram1, 640.0);
  flow(med_cpu, sram2, 60.0);
  flow(idct, sram2, 250.0);
  flow(risc, med_cpu, 100.0);
  spec.validate();
  return spec;
}

SocSpec mwd_spec() {
  SocSpec spec;
  spec.name = "mwd";
  spec.data_width = 128;
  spec.die_width = 4.0 * mm;
  spec.die_height = 3.0 * mm;
  const int ncols = 4;
  const int nrows = 3;

  auto add = [&](const std::string& name, int col, int row) {
    spec.cores.push_back(grid_core(name, col, row, ncols, nrows, spec.die_width, spec.die_height));
    return static_cast<int>(spec.cores.size()) - 1;
  };
  auto flow = [&](int src, int dst, double mbps) {
    spec.flows.push_back({src, dst, mbps * kMBps});
  };

  const int in = add("in", 0, 0);
  const int nr = add("nr", 1, 0);
  const int mem1 = add("mem1", 2, 0);
  const int hs = add("hs", 3, 0);
  const int vs = add("vs", 0, 1);
  const int mem2 = add("mem2", 1, 1);
  const int hvs = add("hvs", 2, 1);
  const int mem3 = add("mem3", 3, 1);
  const int jug1 = add("jug1", 0, 2);
  const int jug2 = add("jug2", 1, 2);
  const int se = add("se", 2, 2);
  const int blend = add("blend", 3, 2);
  require(spec.cores.size() == 12, "mwd_spec: expected 12 cores");

  // The published MWD pipeline (MB/s).
  flow(in, nr, 64.0);
  flow(in, jug1, 64.0);
  flow(nr, mem1, 96.0);
  flow(nr, hs, 96.0);
  flow(mem1, hs, 96.0);
  flow(hs, vs, 96.0);
  flow(vs, mem2, 96.0);
  flow(mem2, hvs, 96.0);
  flow(hvs, jug2, 96.0);
  flow(jug1, mem3, 64.0);
  flow(mem3, se, 64.0);
  flow(jug2, mem3, 64.0);
  flow(se, blend, 64.0);
  flow(hvs, blend, 96.0);
  spec.validate();
  return spec;
}

}  // namespace pim
