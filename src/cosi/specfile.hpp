// Text format for SoC communication specs:
//
//   soc "dvopd" {
//     die 4.2e-03 3.1e-03
//     data_width 128
//     core vld  5e-04 5e-04 8e-04 8e-04      # name x y width height
//     core rle  1.5e-03 5e-04 8e-04 8e-04
//     flow vld rle 1.12e+09                  # src dst bits-per-second
//   }
//
// Flows reference cores by name. '#' starts a comment.
#pragma once

#include <string>

#include "cosi/spec.hpp"

namespace pim {

std::string write_soc_spec(const SocSpec& spec);
SocSpec parse_soc_spec(const std::string& text);

void save_soc_spec(const SocSpec& spec, const std::string& path);
SocSpec load_soc_spec(const std::string& path);

}  // namespace pim
