// One-call model construction: characterize -> fit -> composition-
// calibrate, with an optional coefficient-file cache so repeated tool
// runs skip the (simulation-heavy) characterization.
#pragma once

#include <string>

#include "charlib/characterize.hpp"
#include "charlib/fit.hpp"
#include "sta/composition.hpp"

namespace pim {

/// Returns the fully calibrated coefficient set for `node`. When
/// `cache_path` is non-empty and holds a parseable fit for the same node,
/// it is returned directly; otherwise the full flow runs and (when a path
/// was given) the result is saved there.
TechnologyFit calibrated_fit(TechNode node, const std::string& cache_path = "",
                             const CharacterizationOptions& characterization = {},
                             const CompositionOptions& composition = {});

}  // namespace pim
