// One-call model construction: characterize -> fit -> composition-
// calibrate, with an optional coefficient-file cache so repeated tool
// runs skip the (simulation-heavy) characterization.
#pragma once

#include <memory>
#include <string>

#include "charlib/characterize.hpp"
#include "charlib/fit.hpp"
#include "sta/composition.hpp"

namespace pim {

/// Returns the fully calibrated coefficient set for `node`. When
/// `cache_path` is non-empty and holds a parseable fit for the same node,
/// it is returned directly; otherwise the full flow runs and (when a path
/// was given) the result is saved there. Equivalent to
/// `corner_calibrated_fit` at the nominal corner.
TechnologyFit calibrated_fit(TechNode node, const std::string& cache_path = "",
                             const CharacterizationOptions& characterization = {},
                             const CompositionOptions& composition = {});

/// Per-corner calibration: runs the same characterize -> fit -> calibrate
/// flow against the derated descriptor from corner_technology(), applies
/// the corner's leakage derate to the fitted leakage coefficients, and
/// folds the corner id into the content-cache key so each corner caches
/// independently. The `cache_path` coefficient-file tier only applies to
/// the nominal corner (.pimfit files carry no corner identity). Counts
/// corner.<name>.fit.{hit,compute} obs metrics.
TechnologyFit corner_calibrated_fit(TechNode node, const Corner& corner,
                                    const std::string& cache_path = "",
                                    const CharacterizationOptions& characterization = {},
                                    const CompositionOptions& composition = {});

/// Same flow against an arbitrary base descriptor (e.g. one loaded from
/// a tech file) instead of the built-in table: derates via
/// corner_technology(base, corner), so equal-content bases share fits.
TechnologyFit corner_calibrated_fit(const Technology& base, const Corner& corner,
                                    const std::string& cache_path = "",
                                    const CharacterizationOptions& characterization = {},
                                    const CompositionOptions& composition = {});

/// A calibrated fit held resident in process RAM, plus the identities a
/// serving layer keys further memoization on (resident models, cached
/// wrappers). The fit is shared and immutable — safe to read from any
/// thread.
struct ResidentFit {
  std::shared_ptr<const TechnologyFit> fit;
  std::string key_hex;     ///< hex id of the fit's content-cache key
  std::string coeff_hash;  ///< SHA-256 of write_fit(*fit) — the signature token
};

/// corner_calibrated_fit with a process-wide residency memo in front of
/// the content-addressed store: a warm call skips the store read, the
/// payload parse, AND the coefficient re-hash, returning the same shared
/// fit a previous call resolved. Every observable contract of the store
/// path is preserved — corner.<name>.fit.hit is counted, the coefficient
/// hash is registered as the fit artifact, and the fit key is published
/// to the enclosing provenance scope — so downstream manifests are
/// identical whichever tier served the fit. A memo hit additionally
/// counts fit.resident.hit. The memo is bypassed entirely (reads and
/// inserts) while cache mode is `off` or the fault harness is armed,
/// mirroring the store's own bypass semantics. This is the hot path a
/// long-running server (pimd) evaluates millions of links through.
ResidentFit resident_corner_fit(const Technology& base, const Corner& corner,
                                const std::string& cache_path = "",
                                const CharacterizationOptions& characterization = {},
                                const CompositionOptions& composition = {});

/// Drops every resident fit (tests / explicit invalidation flows).
void clear_resident_fits();

}  // namespace pim
