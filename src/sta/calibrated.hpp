// One-call model construction: characterize -> fit -> composition-
// calibrate, with an optional coefficient-file cache so repeated tool
// runs skip the (simulation-heavy) characterization.
#pragma once

#include <string>

#include "charlib/characterize.hpp"
#include "charlib/fit.hpp"
#include "sta/composition.hpp"

namespace pim {

/// Returns the fully calibrated coefficient set for `node`. When
/// `cache_path` is non-empty and holds a parseable fit for the same node,
/// it is returned directly; otherwise the full flow runs and (when a path
/// was given) the result is saved there. Equivalent to
/// `corner_calibrated_fit` at the nominal corner.
TechnologyFit calibrated_fit(TechNode node, const std::string& cache_path = "",
                             const CharacterizationOptions& characterization = {},
                             const CompositionOptions& composition = {});

/// Per-corner calibration: runs the same characterize -> fit -> calibrate
/// flow against the derated descriptor from corner_technology(), applies
/// the corner's leakage derate to the fitted leakage coefficients, and
/// folds the corner id into the content-cache key so each corner caches
/// independently. The `cache_path` coefficient-file tier only applies to
/// the nominal corner (.pimfit files carry no corner identity). Counts
/// corner.<name>.fit.{hit,compute} obs metrics.
TechnologyFit corner_calibrated_fit(TechNode node, const Corner& corner,
                                    const std::string& cache_path = "",
                                    const CharacterizationOptions& characterization = {},
                                    const CompositionOptions& composition = {});

/// Same flow against an arbitrary base descriptor (e.g. one loaded from
/// a tech file) instead of the built-in table: derates via
/// corner_technology(base, corner), so equal-content bases share fits.
TechnologyFit corner_calibrated_fit(const Technology& base, const Corner& corner,
                                    const std::string& cache_path = "",
                                    const CharacterizationOptions& characterization = {},
                                    const CompositionOptions& composition = {});

}  // namespace pim
