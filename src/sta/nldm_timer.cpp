#include "sta/nldm_timer.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sta/awe.hpp"
#include "util/error.hpp"

namespace pim {

NldmTimerResult nldm_link_delay(const CellLibrary& library, const Technology& tech,
                                const LinkContext& ctx, const LinkDesign& design,
                                const NldmTimerOptions& opt) {
  PIM_OBS_SPAN("sta.nldm.link_delay");
  PIM_COUNT("sta.nldm.evaluations");
  require(opt.sections >= 1, "nldm_link_delay: need at least one wire section");
  const RepeaterCell& cell = library.cell(design.kind, design.drive);
  const LinkGeometry g(tech, ctx, design);

  // The lumped load the gate tables see: Miller-weighted segment
  // capacitance plus the next input pin.
  const double c_wire = g.seg_cap_ground + design.miller_factor * g.seg_cap_couple_total;
  const double c_total = c_wire + cell.input_cap;

  // Driverless wire moments to the far end (the gate table already
  // accounts for driving the lumped load).
  RcTree tree(0.5 * c_wire / opt.sections);
  int far = 0;
  for (int k = 0; k < opt.sections; ++k) {
    const double cap = (k + 1 < opt.sections)
                           ? c_wire / opt.sections
                           : 0.5 * c_wire / opt.sections + cell.input_cap;
    far = tree.add_node(far, g.seg_res / opt.sections, cap);
  }
  const RcTree::Moments m = tree.moments(far, 0.0);
  const double wire_delay = opt.wire == WireDelayMethod::Elmore
                                ? 0.69 * m.m1
                                : two_pole_delay(m.m1, m.m2, 0.5);

  NldmTimerResult result;
  double slew = ctx.input_slew;
  double worst_total = 0.0;
  double worst_slew = 0.0;
  for (const bool launch_rising : {true, false}) {
    double s = ctx.input_slew;
    double total = 0.0;
    bool edge_rising = launch_rising;
    for (int k = 0; k < design.num_repeaters; ++k) {
      const bool out_rising =
          design.kind == CellKind::Inverter ? !edge_rising : edge_rising;
      const TimingTable& table = out_rising ? cell.rise : cell.fall;
      total += table.eval_delay(s, c_total) + wire_delay;
      const double gate_out_slew = table.eval_out_slew(s, c_total);
      // PERI rule: slews add in quadrature across the wire; 1.1 * m1
      // approximates the 20-80 % transition of the wire's dominant pole
      // in our full-swing-equivalent slew convention.
      const double wire_slew = 1.1 * m.m1;
      s = std::sqrt(gate_out_slew * gate_out_slew + wire_slew * wire_slew);
      edge_rising = out_rising;
    }
    if (total > worst_total) {
      worst_total = total;
      worst_slew = s;
    }
  }
  (void)slew;
  result.delay = worst_total;
  result.output_slew = worst_slew;
  return result;
}

}  // namespace pim
