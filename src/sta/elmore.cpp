#include "sta/elmore.hpp"

#include <algorithm>

#include "charlib/characterize.hpp"
#include "models/baseline.hpp"
#include "util/error.hpp"

namespace pim {

double elmore_rc_ladder(double r_total, double c_total, double c_load, int sections) {
  require(sections >= 1, "elmore_rc_ladder: need at least one section");
  const double r = r_total / sections;
  const double c = c_total / sections;
  double acc = r_total * c_load;
  for (int k = 1; k <= sections; ++k) acc += k * r * c;
  return acc;
}

double elmore_buffered_line(const Technology& tech, const LinkContext& ctx,
                            const LinkDesign& design) {
  const LinkGeometry g(tech, ctx, design);
  const RepeaterSizing sz = repeater_sizing(tech, design.kind, design.drive);
  const double rd = std::max(
      first_principles_resistance(tech.nmos, tech.vdd, sz.wn_out),
      first_principles_resistance(tech.pmos, tech.vdd, sz.wp_out));
  const double win_n = design.kind == CellKind::Inverter ? sz.wn_out : sz.wn_in;
  const double win_p = design.kind == CellKind::Inverter ? sz.wp_out : sz.wp_in;
  const double ci = win_n * tech.nmos.c_gate + win_p * tech.pmos.c_gate;
  const double c_seg = g.seg_cap_ground + design.miller_factor * g.seg_cap_couple_total;
  const double per_stage = rd * (c_seg + ci) + g.seg_res * (0.5 * c_seg + ci);
  return design.num_repeaters * per_stage;
}

}  // namespace pim
