// Multi-corner calibration and signoff — the scenario layer's face inside
// pim::sta.
//
// corner_fits() runs the characterize -> fit -> calibrate flow once per
// corner (fanned out over pim::exec; each corner's own deck sweeps then
// run inline on that worker), corner_model_set() packages the results as
// a CornerModelSet, and signoff_corners() answers the signoff question:
// per-corner delay/slack/noise for one link, plus which corner dominates.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "models/corners.hpp"
#include "sta/calibrated.hpp"

namespace pim {

/// Calibrated fit per corner, in `corners` order. Corners are fanned out
/// over pim::exec (deterministic ordered results at any --threads); each
/// corner caches independently via corner_calibrated_fit. `cache_path`
/// follows the corner_calibrated_fit contract (nominal corner only).
std::vector<std::pair<Corner, TechnologyFit>> corner_fits(
    TechNode node, const std::vector<Corner>& corners,
    const std::string& cache_path = "",
    const CharacterizationOptions& characterization = {},
    const CompositionOptions& composition = {});

/// Same fan-out against an arbitrary base descriptor (e.g. one loaded
/// from a tech file), via corner_calibrated_fit(base, corner, ...).
std::vector<std::pair<Corner, TechnologyFit>> corner_fits(
    const Technology& base, const std::vector<Corner>& corners,
    const std::string& cache_path = "",
    const CharacterizationOptions& characterization = {},
    const CompositionOptions& composition = {});

/// corner_fits() packaged as a corner-indexed model set.
CornerModelSet corner_model_set(TechNode node, const std::vector<Corner>& corners,
                                const std::string& cache_path = "",
                                const CharacterizationOptions& characterization = {},
                                const CompositionOptions& composition = {});

/// Base-descriptor variant of corner_model_set.
CornerModelSet corner_model_set(const Technology& base, const std::vector<Corner>& corners,
                                const std::string& cache_path = "",
                                const CharacterizationOptions& characterization = {},
                                const CompositionOptions& composition = {});

/// Knobs for signoff_corners.
struct CornerSignoffOptions {
  /// Timing target the slack is measured against [s]; 0 uses one clock
  /// period at the link context's frequency.
  double target_period = 0.0;
  /// Noise-model calibration scalar (see calibrate_noise); 1 = raw
  /// charge-divider model.
  double kappa_n = 1.0;
};

/// One corner's row in a multi-corner signoff report.
struct CornerTiming {
  Corner corner;
  double delay = 0.0;       ///< model delay at this corner [s]
  double output_slew = 0.0; ///< far-end slew [s]
  double slack = 0.0;       ///< target_period - delay [s]
  double noise_peak = 0.0;  ///< modeled glitch peak [V]
};

/// The multi-corner verdict: every corner's timing plus the dominating
/// (minimum-slack) one.
struct CornerSignoffResult {
  std::vector<CornerTiming> corners;  ///< in model-set order
  size_t worst_index = 0;
  double target_period = 0.0;

  const CornerTiming& worst() const { return corners[worst_index]; }
  double worst_slack() const { return worst().slack; }
};

/// Evaluates (context, design) at every corner of `set` and reports
/// per-corner slack/noise and the dominating corner. Counts
/// corner.<name>.signoff obs metrics per evaluated corner.
CornerSignoffResult signoff_corners(const CornerModelSet& set,
                                    const LinkContext& context,
                                    const LinkDesign& design,
                                    const CornerSignoffOptions& options = {});

}  // namespace pim
