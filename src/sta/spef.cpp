#include "sta/spef.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pim {

std::string write_spef(const Technology& tech, const LinkContext& ctx,
                       const LinkDesign& design, const SpefOptions& opt) {
  require(opt.sections_per_segment >= 1, "write_spef: need at least one section");
  const LinkGeometry g(tech, ctx, design);
  const int npi = opt.sections_per_segment;
  const bool coupled = ctx.style != DesignStyle::Shielded;

  std::ostringstream os;
  os << "*SPEF \"IEEE 1481\"\n";
  os << "*DESIGN \"" << opt.design_name << "\"\n";
  os << "*T_UNIT 1 NS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*L_UNIT 1 HENRY\n";
  os << "*DIVIDER /\n*DELIMITER :\n\n";

  const double r_step = g.seg_res / npi;
  const double cg_step = g.seg_cap_ground / npi;
  const double cc_step_side = (0.5 * g.seg_cap_couple_total) / npi;

  for (int seg = 0; seg < design.num_repeaters; ++seg) {
    const std::string net = "victim_" + std::to_string(seg);
    const double total_cap = g.seg_cap_ground + g.seg_cap_couple_total;
    os << "*D_NET " << net << ' ' << format_sig(total_cap / 1e-15, 9) << "\n";
    os << "*CONN\n";
    os << "*I rep" << seg << ":Z O\n";
    os << "*I rep" << seg + 1 << ":A I\n";
    os << "*CAP\n";
    int cap_id = 0;
    for (int k = 0; k <= npi; ++k) {
      const double scale = (k == 0 || k == npi) ? 0.5 : 1.0;
      os << ++cap_id << ' ' << net << ':' << k << ' '
         << format_sig(scale * cg_step / 1e-15, 9) << "\n";
      if (coupled) {
        os << ++cap_id << ' ' << net << ':' << k << " agg_l_" << seg << ':' << k << ' '
           << format_sig(scale * cc_step_side / 1e-15, 9) << "\n";
        os << ++cap_id << ' ' << net << ':' << k << " agg_r_" << seg << ':' << k << ' '
           << format_sig(scale * cc_step_side / 1e-15, 9) << "\n";
      }
    }
    os << "*RES\n";
    for (int k = 0; k < npi; ++k) {
      os << k + 1 << ' ' << net << ':' << k << ' ' << net << ':' << k + 1 << ' '
         << format_sig(r_step, 9) << "\n";
    }
    os << "*END\n\n";
  }
  return os.str();
}

SpefDigest digest_spef(const std::string& text) {
  SpefDigest digest;
  std::istringstream is(text);
  std::string line;
  enum class Section { None, Cap, Res } section = Section::None;
  int lineno = 0;
  bool in_net = false;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string_view t = trim(line);
    if (t.empty()) continue;
    auto syntax = [&](const std::string& msg) {
      fail("spef: line " + std::to_string(lineno) + ": " + msg);
    };
    if (starts_with(t, "*D_NET")) {
      require(!in_net, "spef: nested *D_NET");
      in_net = true;
      ++digest.nets;
      section = Section::None;
    } else if (t == "*CAP") {
      if (!in_net) syntax("*CAP outside a net");
      section = Section::Cap;
    } else if (t == "*RES") {
      if (!in_net) syntax("*RES outside a net");
      section = Section::Res;
    } else if (t == "*END") {
      if (!in_net) syntax("*END outside a net");
      in_net = false;
      section = Section::None;
    } else if (t[0] == '*') {
      section = Section::None;  // header or *CONN content
    } else if (section == Section::Cap) {
      const auto tokens = split_whitespace(t);
      if (tokens.size() == 3) {
        digest.total_ground_cap += parse_double(tokens[2]) * 1e-15;
      } else if (tokens.size() == 4) {
        digest.total_couple_cap += parse_double(tokens[3]) * 1e-15;
      } else {
        syntax("malformed *CAP entry");
      }
      ++digest.cap_entries;
    } else if (section == Section::Res) {
      const auto tokens = split_whitespace(t);
      if (tokens.size() != 4) syntax("malformed *RES entry");
      digest.total_res += parse_double(tokens[3]);
      ++digest.res_entries;
    }
  }
  require(!in_net, "spef: unterminated *D_NET");
  return digest;
}

}  // namespace pim
