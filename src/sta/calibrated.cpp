#include "sta/calibrated.hpp"

#include <fstream>

#include "charlib/coeffs_io.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace pim {

TechnologyFit calibrated_fit(TechNode node, const std::string& cache_path,
                             const CharacterizationOptions& characterization,
                             const CompositionOptions& composition) {
  if (!cache_path.empty()) {
    std::ifstream probe(cache_path);
    if (probe.good()) {
      try {
        TechnologyFit cached = load_fit(cache_path);
        if (cached.node == node) return cached;
        log_warn("calibrated_fit: cache '", cache_path, "' holds a different node; refitting");
      } catch (const Error& e) {
        log_warn("calibrated_fit: ignoring unreadable cache '", cache_path, "': ", e.what());
      }
    }
  }
  const Technology& tech = technology(node);
  log_info("calibrated_fit: characterizing ", tech.name, " (this runs transistor-level sims)");
  const CellLibrary library = characterize_library(tech, characterization);
  TechnologyFit fit = calibrate_composition(tech, fit_technology(tech, library), composition);
  if (!cache_path.empty()) save_fit(fit, cache_path);
  return fit;
}

}  // namespace pim
