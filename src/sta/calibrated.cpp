#include "sta/calibrated.hpp"

#include <fstream>
#include <map>
#include <mutex>

#include "cache/manifest.hpp"
#include "cache/sha256.hpp"
#include "cache/store.hpp"
#include "charlib/coeffs_io.hpp"
#include "deadline/deadline.hpp"
#include "obs/metrics.hpp"
#include "tech/techfile.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"

namespace pim {
namespace {

// Everything that determines a calibrated fit: the technology content
// (as the SHA-256 of its canonical tech-file serialization — a parameter
// tweak changes the bytes and hence the key), the corner identity, plus
// every characterization and composition knob. The tech and corner enter
// as provenance facets, so the manifest records exactly the identities
// the key covers; the tech facet is named per corner ("<tech>@<corner>")
// because the derated descriptor is the actual input — retuning one
// corner must not dirty the others' fits. The corner id covers its
// factors at full precision, so retuning a corner re-keys its fits even
// though the derated tech hash already differs. See docs/caching.md.
cache::CacheKey fit_cache_key(const Technology& tech, const Corner& corner,
                              const CharacterizationOptions& copt,
                              const CompositionOptions& compt) {
  cache::KeyBuilder kb("fit");
  kb.facet("tech", tech.name + "@" + corner.name, technology_content_hash(tech));
  kb.facet("corner", corner.name, corner.cache_id());
  kb.field("char.slew_axis", copt.slew_axis);
  kb.field("char.fanout_axis", copt.fanout_axis);
  kb.field("char.drives", copt.drives);
  kb.field("char.inverters", copt.inverters);
  kb.field("char.buffers", copt.buffers);
  kb.field("char.dt_max", copt.dt_max);
  kb.field("char.sweep_quorum", copt.sweep_quorum);
  kb.field("comp.drives", compt.drives);
  kb.field("comp.segment_lengths", compt.segment_lengths);
  kb.field("comp.input_slews", compt.input_slews);
  kb.field("comp.chain_lengths", compt.chain_lengths);
  kb.field("comp.layer", static_cast<int>(compt.layer));
  kb.field("comp.signoff.pi_per_segment", compt.signoff.pi_per_segment);
  kb.field("comp.signoff.aggressors", static_cast<int>(compt.signoff.aggressors));
  kb.field("comp.signoff.dt", compt.signoff.dt);
  kb.field("comp.signoff.window_margin", compt.signoff.window_margin);
  return kb.finish();
}

void count_corner(const Corner& corner, const char* event) {
  obs::registry().counter("corner." + corner.name + ".fit." + event).add(1);
}

// Advertises the resolved fit as the artifact behind its coefficient
// hash — the token model cache signatures embed — and reports it to any
// enclosing provenance scope, so downstream cached wrappers (buffering,
// Monte-Carlo, cosi) can record the fit key as an upstream edge. Called
// on every return path, hit and compute alike, so the graph is complete
// wherever the fit came from.
TechnologyFit announce_fit(TechnologyFit fit, const cache::CacheKey& key,
                           const cache::Tracked& scope) {
  cache::register_artifact(cache::sha256_hex(write_fit(fit)), key);
  scope.publish(key);
  return fit;
}

TechnologyFit corner_calibrated_fit_impl(const Technology& tech, const Corner& corner,
                                         const std::string& cache_path,
                                         const CharacterizationOptions& characterization,
                                         const CompositionOptions& composition) {
  const TechNode node = tech.node;
  // Provenance scope: facets recorded by fit_cache_key (tech content,
  // corner, deck params) land here and are written as the entry's
  // manifest by Store::put.
  cache::Tracked scope;
  const cache::CacheKey key = fit_cache_key(tech, corner, characterization, composition);
  // The coefficient-file tier carries no corner identity, so it only
  // serves (and is only refreshed by) the nominal corner.
  const bool file_tier = !cache_path.empty() && corner.is_nominal();
  if (file_tier) {
    std::ifstream probe(cache_path);
    if (probe.good()) {
      try {
        TechnologyFit cached = load_fit(cache_path);
        if (cached.node == node) return announce_fit(std::move(cached), key, scope);
        log_warn("calibrated_fit: cache '", cache_path, "' holds a different node; refitting");
      } catch (const Error& e) {
        log_warn("calibrated_fit: ignoring unreadable cache '", cache_path, "': ", e.what());
      }
    }
  }
  // Content-addressed tier: keyed by the derated tech content, the
  // corner id, and every deck parameter, so a hit is exactly the fit
  // this flow would recompute.
  if (auto payload = cache::Store::global().get(key)) {
    try {
      TechnologyFit cached = parse_fit(*payload);
      require(cached.node == node, "calibrated_fit: cached fit node mismatch",
              ErrorCode::io_parse);
      count_corner(corner, "hit");
      if (file_tier) save_fit(cached, cache_path);
      return announce_fit(std::move(cached), key, scope);
    } catch (const Error& e) {
      // Fail-open (the store already verified the payload digest, so
      // this is effectively unreachable): recompute below. The store
      // counted cache.hit for the digest-valid payload but could not see
      // this payload-level corruption, so it is counted exactly once
      // here — never both here and in the store for one lookup.
      PIM_COUNT("cache.corrupt");
      log_warn("calibrated_fit: ignoring unparsable cache entry: ", e.what());
    }
  }
  log_info("calibrated_fit: characterizing ", tech.name, " at corner '", corner.name,
           "' (this runs transistor-level sims)");
  count_corner(corner, "compute");
  const CellLibrary library = characterize_library(tech, characterization);
  // A deadline/cancel stop during characterization yields a
  // neighbor-patched, biased library. Charlib flows have partial
  // semantics for it; a calibrated fit does not — and the cache key
  // carries no deadline state, so storing a fit regressed from patched
  // tables would poison warm full-budget runs. Refuse with the typed
  // stop error instead (docs/robustness.md: flows without partial
  // semantics surface deadline_exceeded/cancelled). The scope unwinds
  // with the exception, so nothing is cached or manifested.
  if (library.partial()) {
    const deadline::StopReason reason = library.stop_reason();
    count_corner(corner, "truncated");
    throw Error("calibrated_fit: characterization of " + tech.name + " at corner '" +
                    corner.name + "' was truncated (" +
                    deadline::stop_reason_name(reason) +
                    "); refusing to fit or cache biased coefficients",
                deadline::error_code_for(reason));
  }
  TechnologyFit fit = calibrate_composition(tech, fit_technology(tech, library), composition);
  // Leakage is exponential in threshold voltage, so it cannot be derived
  // from the strength/cap derates; corners carry it as an explicit factor
  // applied to the fitted coefficients (x1.0 exactly at nominal).
  fit.leakage.n0 *= corner.leakage;
  fit.leakage.n1 *= corner.leakage;
  fit.leakage.p0 *= corner.leakage;
  fit.leakage.p1 *= corner.leakage;
  cache::Store::global().put(key, write_fit(fit));
  if (file_tier) save_fit(fit, cache_path);
  return announce_fit(std::move(fit), key, scope);
}

// ---------------------------------------------------------------- residency

// The process-wide resident tier: parsed fits keyed by their content-
// cache key, shared immutably across threads. Bounded only by the number
// of distinct (tech, corner, deck-knob) combinations a process touches —
// a fit is ~2 KB, so even a server holding every built-in node at every
// corner stays in the tens of kilobytes.
struct ResidentEntry {
  std::shared_ptr<const TechnologyFit> fit;
  std::string coeff_hash;
};

std::mutex& resident_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, ResidentEntry>& resident_memo() {
  static std::map<std::string, ResidentEntry> m;
  return m;
}

}  // namespace

ResidentFit resident_corner_fit(const Technology& base, const Corner& corner,
                                const std::string& cache_path,
                                const CharacterizationOptions& characterization,
                                const CompositionOptions& composition) {
  const Technology& tech = corner_technology(base, corner);
  // Mirror the store's bypass semantics: with the cache off or the fault
  // harness armed, injected faults and cache-off runs must exercise the
  // real compute path instead of yesterday's resident copy.
  const bool memo_enabled = cache::mode() != cache::Mode::Off && !fault::armed();
  std::string key_hex;
  {
    // A local provenance scope absorbs the facets fit_cache_key records,
    // exactly like the store path's scope — the caller's manifest must
    // see the fit as one upstream key, never its raw facets.
    const cache::Tracked scope;
    const cache::CacheKey key =
        fit_cache_key(tech, corner, characterization, composition);
    key_hex = key.hex;
    if (memo_enabled) {
      std::lock_guard<std::mutex> lock(resident_mutex());
      const auto it = resident_memo().find(key.hex);
      if (it != resident_memo().end()) {
        // Same observable side effects as a store hit (minus the store
        // I/O): the corner hit counter, the artifact registration, and
        // the provenance edge into the enclosing scope.
        count_corner(corner, "hit");
        PIM_COUNT("fit.resident.hit");
        cache::register_artifact(it->second.coeff_hash, key);
        scope.publish(key);
        return {it->second.fit, key.hex, it->second.coeff_hash};
      }
    }
  }
  auto fit = std::make_shared<const TechnologyFit>(
      corner_calibrated_fit_impl(tech, corner, cache_path, characterization,
                                 composition));
  const std::string coeff_hash = cache::sha256_hex(write_fit(*fit));
  if (memo_enabled) {
    std::lock_guard<std::mutex> lock(resident_mutex());
    resident_memo()[key_hex] = {fit, coeff_hash};
  }
  return {std::move(fit), key_hex, coeff_hash};
}

void clear_resident_fits() {
  std::lock_guard<std::mutex> lock(resident_mutex());
  resident_memo().clear();
}

TechnologyFit calibrated_fit(TechNode node, const std::string& cache_path,
                             const CharacterizationOptions& characterization,
                             const CompositionOptions& composition) {
  return corner_calibrated_fit(node, Corner{}, cache_path, characterization, composition);
}

TechnologyFit corner_calibrated_fit(TechNode node, const Corner& corner,
                                    const std::string& cache_path,
                                    const CharacterizationOptions& characterization,
                                    const CompositionOptions& composition) {
  return corner_calibrated_fit_impl(corner_technology(node, corner), corner, cache_path,
                                    characterization, composition);
}

TechnologyFit corner_calibrated_fit(const Technology& base, const Corner& corner,
                                    const std::string& cache_path,
                                    const CharacterizationOptions& characterization,
                                    const CompositionOptions& composition) {
  return corner_calibrated_fit_impl(corner_technology(base, corner), corner, cache_path,
                                    characterization, composition);
}

}  // namespace pim
