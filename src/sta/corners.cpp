#include "sta/corners.hpp"

#include "exec/engine.hpp"
#include "obs/metrics.hpp"
#include "sta/noise.hpp"
#include "util/error.hpp"

namespace pim {

std::vector<std::pair<Corner, TechnologyFit>> corner_fits(
    TechNode node, const std::vector<Corner>& corners, const std::string& cache_path,
    const CharacterizationOptions& characterization,
    const CompositionOptions& composition) {
  require(!corners.empty(), "corner_fits: needs at least one corner",
          ErrorCode::bad_input);
  // Corner-level fan-out; the per-corner deck sweeps inside
  // characterize_library detect the nested region and run inline, so the
  // pool is never re-entered. Fail-fast: a corner that cannot be fitted
  // is a real error, not a degradable sample.
  std::vector<TechnologyFit> fits = exec::parallel_map<TechnologyFit>(
      corners.size(), [&](size_t i) {
        return corner_calibrated_fit(node, corners[i], cache_path, characterization,
                                     composition);
      });
  std::vector<std::pair<Corner, TechnologyFit>> out;
  out.reserve(corners.size());
  for (size_t i = 0; i < corners.size(); ++i)
    out.emplace_back(corners[i], std::move(fits[i]));
  return out;
}

std::vector<std::pair<Corner, TechnologyFit>> corner_fits(
    const Technology& base, const std::vector<Corner>& corners,
    const std::string& cache_path, const CharacterizationOptions& characterization,
    const CompositionOptions& composition) {
  require(!corners.empty(), "corner_fits: needs at least one corner",
          ErrorCode::bad_input);
  std::vector<TechnologyFit> fits = exec::parallel_map<TechnologyFit>(
      corners.size(), [&](size_t i) {
        return corner_calibrated_fit(base, corners[i], cache_path, characterization,
                                     composition);
      });
  std::vector<std::pair<Corner, TechnologyFit>> out;
  out.reserve(corners.size());
  for (size_t i = 0; i < corners.size(); ++i)
    out.emplace_back(corners[i], std::move(fits[i]));
  return out;
}

CornerModelSet corner_model_set(TechNode node, const std::vector<Corner>& corners,
                                const std::string& cache_path,
                                const CharacterizationOptions& characterization,
                                const CompositionOptions& composition) {
  return CornerModelSet(
      node, corner_fits(node, corners, cache_path, characterization, composition));
}

CornerModelSet corner_model_set(const Technology& base, const std::vector<Corner>& corners,
                                const std::string& cache_path,
                                const CharacterizationOptions& characterization,
                                const CompositionOptions& composition) {
  return CornerModelSet(
      base, corner_fits(base, corners, cache_path, characterization, composition));
}

CornerSignoffResult signoff_corners(const CornerModelSet& set,
                                    const LinkContext& context,
                                    const LinkDesign& design,
                                    const CornerSignoffOptions& options) {
  CornerSignoffResult result;
  result.target_period =
      options.target_period > 0.0 ? options.target_period : 1.0 / context.frequency;
  result.corners.reserve(set.size());
  for (const CornerModel& m : set.models()) {
    obs::registry().counter("corner." + m.corner.name + ".signoff").add(1);
    const LinkEstimate e = m.model.evaluate(context, design);
    CornerTiming row;
    row.corner = m.corner;
    row.delay = e.delay;
    row.output_slew = e.output_slew;
    row.slack = result.target_period - e.delay;
    row.noise_peak =
        noise_peak_model(m.model.tech(), m.model.fit(), context, design, options.kappa_n);
    if (result.corners.empty() || row.slack < result.worst().slack)
      result.worst_index = result.corners.size();
    result.corners.push_back(row);
  }
  return result;
}

}  // namespace pim
