// Cross-talk noise (glitch) analysis of buffered links — the other half
// of signal integrity beyond the delay push-out the Miller factor
// models: when the victim is QUIET, switching neighbors inject a charge-
// sharing glitch that can flip the next repeater if it approaches the
// switching threshold.
//
// Golden: the implemented line is simulated with the victim held and the
// aggressors switching; the peak deviation at the victim's far end is
// measured.
//
// Model: per segment, the classic charge-divider peak
//     v_peak = vdd * c_c / (c_c + c_g + c_i + c_self)
// attenuated by the holder-strength factor 1 / (1 + tau_agg / tau_hold)
// (a strong holder bleeds the injected charge before the aggressor edge
// completes), with one calibration scalar fitted against golden runs per
// technology — consistent with the library's calibration philosophy.
#pragma once

#include "charlib/fit.hpp"
#include "models/link.hpp"
#include "sta/signoff.hpp"

namespace pim {

/// Golden glitch measurement: victim quiet (held low), both direct
/// aggressors switching upward. Returns the peak victim deviation at the
/// far end of the FIRST wire segment (the repeater boundary where a
/// glitch would be sampled), in volts.
double golden_noise_peak(const Technology& tech, const LinkContext& context,
                         const LinkDesign& design, const SignoffOptions& options = {});

/// Closed-form noise model. `kappa_n` is the calibration scalar
/// (default 1 = raw charge divider with holder attenuation).
double noise_peak_model(const Technology& tech, const TechnologyFit& fit,
                        const LinkContext& context, const LinkDesign& design,
                        double kappa_n = 1.0);

/// Fits kappa_n by zero-intercept regression of golden peaks against the
/// raw model over a small grid of drives and segment lengths.
struct NoiseCalibration {
  double kappa_n = 1.0;
  double worst_rel_error = 0.0;  ///< over the training grid
};
NoiseCalibration calibrate_noise(const Technology& tech, const TechnologyFit& fit);

}  // namespace pim
