#include "sta/awe.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pim {

RcTree::RcTree(double root_cap) {
  require(root_cap >= 0.0, "RcTree: negative capacitance");
  parent_.push_back(-1);
  res_.push_back(0.0);
  cap_.push_back(root_cap);
}

int RcTree::add_node(int parent, double resistance, double capacitance) {
  require(parent >= 0 && parent < node_count(), "RcTree::add_node: bad parent");
  require(resistance > 0.0, "RcTree::add_node: resistance must be positive");
  require(capacitance >= 0.0, "RcTree::add_node: negative capacitance");
  parent_.push_back(parent);
  res_.push_back(resistance);
  cap_.push_back(capacitance);
  return node_count() - 1;
}

void RcTree::add_cap(int node, double capacitance) {
  require(node >= 0 && node < node_count(), "RcTree::add_cap: bad node");
  require(capacitance >= 0.0, "RcTree::add_cap: negative capacitance");
  cap_[static_cast<size_t>(node)] += capacitance;
}

RcTree::Moments RcTree::moments(int node, double root_resistance) const {
  require(node >= 0 && node < node_count(), "RcTree::moments: bad node");
  require(root_resistance >= 0.0, "RcTree::moments: negative resistance");
  const size_t n = parent_.size();

  // Downstream capacitance per node (indices are topological: parents
  // precede children).
  std::vector<double> c_down(cap_);
  for (size_t i = n; i-- > 1;) c_down[static_cast<size_t>(parent_[i])] += c_down[i];

  // First moment: resistance-weighted downstream capacitance along the
  // path, plus the driver term.
  std::vector<double> m1(n);
  m1[0] = root_resistance * c_down[0];
  for (size_t i = 1; i < n; ++i)
    m1[i] = m1[static_cast<size_t>(parent_[i])] + res_[i] * c_down[i];

  // Downstream sum of C_k * m1_k.
  std::vector<double> s_down(n);
  for (size_t i = 0; i < n; ++i) s_down[i] = cap_[i] * m1[i];
  for (size_t i = n; i-- > 1;) s_down[static_cast<size_t>(parent_[i])] += s_down[i];

  // Second moment along the path.
  std::vector<double> m2(n);
  m2[0] = root_resistance * s_down[0];
  for (size_t i = 1; i < n; ++i)
    m2[i] = m2[static_cast<size_t>(parent_[i])] + res_[i] * s_down[i];

  return {m1[static_cast<size_t>(node)], m2[static_cast<size_t>(node)]};
}

double RcTree::elmore(int node, double root_resistance) const {
  return moments(node, root_resistance).m1;
}

double two_pole_delay(double m1, double m2, double threshold) {
  require(m1 > 0.0, "two_pole_delay: m1 must be positive");
  require(threshold > 0.0 && threshold < 1.0, "two_pole_delay: threshold in (0,1)");

  // Pade(0,2): H(s) = 1 / (1 + b1 s + b2 s^2) with b1 = m1,
  // b2 = m1^2 - m2.
  const double b1 = m1;
  const double b2 = m1 * m1 - m2;
  const double disc = b1 * b1 - 4.0 * b2;

  // Degenerate second moment: fall back to the dominant single pole.
  if (b2 <= 0.0 || disc < 0.0) return -m1 * std::log(1.0 - threshold);

  const double sq = std::sqrt(disc);
  const double p1 = (b1 - sq) / (2.0 * b2);  // slow (dominant) rate
  const double p2 = (b1 + sq) / (2.0 * b2);  // fast rate
  if (p1 <= 0.0) return -m1 * std::log(1.0 - threshold);

  auto v = [&](double t) {
    if (p2 - p1 < 1e-9 * p2) {
      // Nearly repeated pole: v = 1 - (1 + p t) e^{-p t}.
      const double p = 0.5 * (p1 + p2);
      return 1.0 - (1.0 + p * t) * std::exp(-p * t);
    }
    return 1.0 - (p2 * std::exp(-p1 * t) - p1 * std::exp(-p2 * t)) / (p2 - p1);
  };

  // Bracket and bisect the threshold crossing (v is monotone for RC).
  double lo = 0.0;
  double hi = 2.0 * m1;
  while (v(hi) < threshold) {
    hi *= 2.0;
    require(hi < 1e6 * m1, "two_pole_delay: response never reaches threshold");
  }
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (v(mid) < threshold) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double awe_ladder_delay(double driver_res, double wire_res, double wire_cap,
                        double load_cap, int sections, double threshold) {
  require(sections >= 1, "awe_ladder_delay: need at least one section");
  // Pi discretization: half a section's capacitance at each end.
  RcTree tree(0.5 * wire_cap / sections);
  int node = 0;
  for (int k = 0; k < sections; ++k) {
    const double cap =
        (k + 1 < sections) ? wire_cap / sections : 0.5 * wire_cap / sections + load_cap;
    node = tree.add_node(node, wire_res / sections, cap);
  }
  const RcTree::Moments m = tree.moments(node, driver_res);
  return two_pole_delay(m.m1, m.m2, threshold);
}

}  // namespace pim
