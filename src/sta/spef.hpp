// SPEF-lite parasitic export: writes the victim net of an implemented
// buffered line in an IEEE-1481-flavored Standard Parasitic Exchange
// Format — the artifact a place-and-route extraction flow would hand to a
// sign-off timer (the paper's flow reads "the parasitics output from SOC
// Encounter in SPEF" into PrimeTime SI).
//
// One *D_NET per inter-repeater wire segment of the victim, with
// distributed *RES sections, grounded *CAP entries, and coupling *CAP
// entries to the neighboring aggressor nets.
#pragma once

#include <string>

#include "models/link.hpp"
#include "tech/technology.hpp"

namespace pim {

/// SPEF serialization controls.
struct SpefOptions {
  int sections_per_segment = 6;  ///< distributed RC sections per wire segment
  std::string design_name = "pim_link";
};

/// Writes the victim-net parasitics of the line (context, design) in
/// SPEF-lite. Totals per segment match the LinkGeometry extraction
/// exactly.
std::string write_spef(const Technology& tech, const LinkContext& context,
                       const LinkDesign& design, const SpefOptions& options = {});

/// Digest of a SPEF-lite text (used by tests and quick inspection).
struct SpefDigest {
  int nets = 0;
  int res_entries = 0;
  int cap_entries = 0;
  double total_res = 0.0;       ///< [ohm]
  double total_ground_cap = 0.0;///< [F]
  double total_couple_cap = 0.0;///< [F]
};

/// Parses the subset write_spef emits and accumulates totals; throws
/// pim::Error on malformed input.
SpefDigest digest_spef(const std::string& text);

}  // namespace pim
