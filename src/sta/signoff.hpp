// Golden sign-off analysis of buffered interconnects — the library's
// stand-in for the paper's SOC Encounter + extraction + PrimeTime SI flow
// (paper §IV): the full line is *implemented* as a transistor-level
// netlist with distributed-pi wire segments and explicit neighbor wires,
// then simulated end-to-end.
//
// Victim and two aggressors run in parallel; each aggressor is an
// identically buffered line. Worst-case switching (Opposing) drives the
// aggressors with the opposite edge at the same instant — the condition
// the Miller factor 1.51 approximates. Shielded design styles have no
// aggressors (their coupling is grounded in extraction).
#pragma once

#include "models/link.hpp"
#include "tech/technology.hpp"

namespace pim {

/// Neighbor activity during the victim transition.
enum class AggressorMode {
  Opposing,      ///< both neighbors switch against the victim (worst case)
  SameDirection, ///< both neighbors switch with the victim (best case)
  Quiet,         ///< neighbors held at ground
  VictimQuiet,   ///< noise analysis: victim input held low (its wire sits
                 ///< high), all neighbors switch upward (their wires fall)
};

/// Controls for the golden analysis.
struct SignoffOptions {
  int pi_per_segment = 6;      ///< distributed-pi sections per wire segment
  AggressorMode aggressors = AggressorMode::Opposing;
  double dt = 0.5e-12;         ///< transient timestep [s]
  double window_margin = 1.0e-9;  ///< extra simulated time beyond the estimate [s]
};

/// What the golden analysis reports.
struct SignoffResult {
  double delay = 0.0;       ///< worst-case 50 % input-to-far-end delay [s]
  double output_slew = 0.0; ///< far-end slew on the worst polarity [s]
  size_t node_count = 0;    ///< circuit size, for reporting
};

/// Implements and simulates the buffered line described by
/// (context, design); returns the sign-off delay and far-end slew.
/// Both launch polarities are analyzed and the worst is returned.
SignoffResult signoff_link(const Technology& tech, const LinkContext& context,
                           const LinkDesign& design,
                           const SignoffOptions& options = {});

/// The implemented line's transistor-level netlist (what signoff_link
/// simulates), exposed for deck export and inspection.
struct LinkNetlist {
  Circuit circuit;
  NodeId victim_in = 0;
  NodeId victim_out = 0;
};

/// Builds (without simulating) the netlist of the implemented line for
/// the given launch polarity.
LinkNetlist build_link_netlist(const Technology& tech, const LinkContext& context,
                               const LinkDesign& design,
                               const SignoffOptions& options = {},
                               bool launch_rising = true);

}  // namespace pim
