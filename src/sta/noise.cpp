#include "sta/noise.hpp"

#include <algorithm>
#include <cmath>

#include "charlib/characterize.hpp"
#include "models/baseline.hpp"
#include "numeric/regression.hpp"
#include "spice/transient.hpp"
#include "util/error.hpp"

namespace pim {

double golden_noise_peak(const Technology& tech, const LinkContext& ctx,
                         const LinkDesign& design, const SignoffOptions& options) {
  require(design.num_repeaters == 1,
          "golden_noise_peak: noise is analyzed per segment (one repeater)");

  SignoffOptions opt = options;
  opt.aggressors = AggressorMode::VictimQuiet;
  const LinkNetlist net = build_link_netlist(tech, ctx, design, opt, true);

  // Window: the aggressor edge plus its settling.
  const double estimate = PamunuwaModel(tech).evaluate(ctx, design).delay;
  TransientOptions sim;
  sim.dt = opt.dt;
  sim.t_stop = 50e-12 + ctx.input_slew + 4.0 * estimate + opt.window_margin;
  sim.t_settle = 2e-9;
  sim.settle_steps = 250;
  const TransientResult res = run_transient(net.circuit, sim, {net.victim_out});

  // The quiet victim wire sits at vdd; the glitch is the dip below it.
  const auto& trace = res.trace(net.victim_out);
  const double v_rest = trace.front();
  double worst = 0.0;
  for (double v : trace) worst = std::max(worst, v_rest - v);
  return worst;
}

double noise_peak_model(const Technology& tech, const TechnologyFit& fit,
                        const LinkContext& ctx, const LinkDesign& design,
                        double kappa_n) {
  const LinkGeometry g(tech, ctx, design);
  if (g.seg_cap_couple_total <= 0.0) return 0.0;

  const RepeaterSizing sz = repeater_sizing(tech, design.kind, design.drive);
  const double ci = fit.gamma * (sz.wn_out + sz.wp_out);
  const double c_self = sz.wn_out * tech.nmos.c_drain + sz.wp_out * tech.pmos.c_drain;
  const double c_total = g.seg_cap_couple_total + g.seg_cap_ground + ci + c_self;

  // Charge divider, attenuated by the holder: the far end of the victim
  // is held through the holder device PLUS half the distributed wire
  // resistance, so longer segments are held more weakly and glitch
  // harder. tau_v competes with the aggressor transition constant tau_a.
  const RepeaterEdgeFit& f = fit.edge_fit(design.kind, true);  // holder is the PMOS
  const double r_hold = f.rho0 / sz.wp_out + 0.5 * g.seg_res;
  const double tau_v = r_hold * c_total;
  const double slew_agg =
      fit.edge_fit(design.kind, false)
          .eval_out_slew(ctx.input_slew, c_total, sz.wn_out);
  const double tau_a = slew_agg / 2.2;
  const double attenuation = tau_v / (tau_v + tau_a);

  return kappa_n * tech.vdd * (g.seg_cap_couple_total / c_total) * attenuation;
}

NoiseCalibration calibrate_noise(const Technology& tech, const TechnologyFit& fit) {
  Vector raw, golden;
  for (int drive : {8, 20}) {
    for (double seg : {0.4e-3, 1.0e-3, 1.8e-3}) {
      LinkContext ctx;
      ctx.length = seg;
      ctx.input_slew = 100e-12;
      LinkDesign d;
      d.kind = CellKind::Inverter;
      d.drive = drive;
      d.num_repeaters = 1;
      raw.push_back(noise_peak_model(tech, fit, ctx, d, 1.0));
      golden.push_back(golden_noise_peak(tech, ctx, d));
    }
  }
  NoiseCalibration cal;
  cal.kappa_n = fit_linear_zero_intercept(raw, golden).slope;
  double worst = 0.0;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (golden[i] < 1e-6) continue;
    worst = std::max(worst, std::fabs(cal.kappa_n * raw[i] - golden[i]) / golden[i]);
  }
  cal.worst_rel_error = worst;
  return cal;
}

}  // namespace pim
