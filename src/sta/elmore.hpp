// Elmore (first-moment) delay estimates — the auxiliary analysis used in
// tests and for quick sanity bounds on the golden simulator. An Elmore
// estimate upper-bounds the 50 % step delay of an RC tree, and the step
// response of a distributed line lands near 0.69x the lumped Elmore.
#pragma once

#include "models/link.hpp"
#include "tech/technology.hpp"

namespace pim {

/// Elmore delay of a uniform N-section RC ladder with total resistance
/// r_total and total capacitance c_total (a lumped load c_load at the
/// end): sum_k (k r/N)(c/N) + r c_load.
double elmore_rc_ladder(double r_total, double c_total, double c_load, int sections);

/// Elmore-style delay of the buffered link: per stage, first-principles
/// drive resistance times total stage load plus the distributed wire
/// contribution. Crude by design — a bracketing estimate, not a model.
double elmore_buffered_line(const Technology& tech, const LinkContext& context,
                            const LinkDesign& design);

}  // namespace pim
