#include "sta/composition.hpp"

#include <algorithm>
#include <cmath>

#include "charlib/characterize.hpp"
#include "numeric/leastsq.hpp"
#include "numeric/regression.hpp"
#include "util/error.hpp"

namespace pim {
namespace {

// One training configuration with its golden measurement.
struct Sample {
  int drive;
  double segment;
  double input_slew;
  int repeaters;
  double golden;
  double ci;
  double c_wire;  // Miller-weighted wire capacitance of one segment
  double d_pam;   // Pamunuwa wire term of one segment
  double wr;      // NMOS width (fall-edge symmetric device)
};

// Fits the two weights of one style class against golden chains. The
// model's inter-stage slew depends on kappa_c (through the stage load),
// so the linear least squares is wrapped in a short fixed-point
// iteration: compute the slew chain with the current weights, refit,
// repeat. Training on multi-stage chains (not just single stages) lets
// the weights absorb the waveform-shape error an NLDM-style slew metric
// cannot see (the long RC tail a real driven wire hands the next stage).
CompositionWeights fit_style_class(const Technology& tech, const TechnologyFit& fit,
                                   DesignStyle style, const CompositionOptions& options) {
  const RepeaterEdgeFit& f = fit.edge_fit(CellKind::Inverter, false);

  std::vector<Sample> samples;
  for (int drive : options.drives) {
    const RepeaterSizing sz = repeater_sizing(tech, CellKind::Inverter, drive);
    for (double seg : options.segment_lengths) {
      for (double slew : options.input_slews) {
        for (int n : options.chain_lengths) {
          LinkContext ctx;
          ctx.layer = options.layer;
          ctx.style = style;
          ctx.length = seg * n;
          ctx.input_slew = slew;

          LinkDesign design;
          design.kind = CellKind::Inverter;
          design.drive = drive;
          design.num_repeaters = n;

          const LinkGeometry g(tech, ctx, design);
          Sample s;
          s.drive = drive;
          s.segment = seg;
          s.input_slew = slew;
          s.repeaters = n;
          s.ci = fit.gamma * (sz.wn_out + sz.wp_out);
          s.c_wire = g.seg_cap_ground + design.miller_factor * g.seg_cap_couple_total;
          s.d_pam = g.seg_res *
                    (0.4 * g.seg_cap_ground +
                     0.5 * design.miller_factor * g.seg_cap_couple_total + 0.7 * s.ci);
          s.wr = sz.wn_out;
          s.golden = signoff_link(tech, ctx, design, options.signoff).delay;
          samples.push_back(s);
        }
      }
    }
  }
  require(samples.size() >= 3, "calibrate_composition: training set too small");

  CompositionWeights w;  // start from the paper's raw composition (1, 1, 1)
  Vector predicted(samples.size());
  Vector y(samples.size());
  for (int iteration = 0; iteration < 3; ++iteration) {
    Matrix a(samples.size(), 3);
    for (size_t i = 0; i < samples.size(); ++i) {
      const Sample& s = samples[i];
      // Rows are scaled by 1/golden so the regression minimizes RELATIVE
      // error: short and long configurations count equally.
      const double scale = 1.0 / s.golden;
      // Slew chain under the current kappa_c.
      double slew = s.input_slew;
      double sum_i = 0.0;
      double sum_rd_ci = 0.0;
      double sum_rho0_cw = 0.0;  // slew-independent driver-wire interaction
      double sum_rho1_cw = 0.0;  // slew-dependent driver-wire interaction
      for (int k = 0; k < s.repeaters; ++k) {
        const double rd = f.drive_resistance(slew, s.wr);
        sum_i += f.a0 + f.a1 * slew + f.a2 * slew * slew;
        sum_rd_ci += rd * s.ci;
        sum_rho0_cw += f.rho0 / s.wr * s.c_wire;
        sum_rho1_cw += f.rho1 * slew / s.wr * s.c_wire;
        slew = f.eval_out_slew(slew, w.kappa_c * s.c_wire + s.ci, s.wr);
      }
      a(i, 0) = scale * sum_rho0_cw;
      a(i, 1) = scale * sum_rho1_cw;
      a(i, 2) = scale * s.repeaters * s.d_pam;
      y[i] = scale * (s.golden - sum_i - sum_rd_ci);
    }
    // Ridge-regularized toward the paper's raw composition (all weights
    // 1): the three predictors are strongly collinear across realistic
    // training sets, and an unregularized solve produces weight triples
    // that fit the training chains but extrapolate poorly to the design
    // points an optimizer later visits.
    const double lambda = 0.2;
    Matrix a_ridge(samples.size() + 3, 3);
    Vector y_ridge(samples.size() + 3);
    // Column scales so the ridge penalty is dimensionless.
    double col_scale[3] = {0.0, 0.0, 0.0};
    for (size_t i = 0; i < samples.size(); ++i)
      for (int c = 0; c < 3; ++c) col_scale[c] += a(i, c) * a(i, c);
    for (int c = 0; c < 3; ++c)
      col_scale[c] = std::sqrt(col_scale[c] / samples.size());
    for (size_t i = 0; i < samples.size(); ++i) {
      for (int c = 0; c < 3; ++c) a_ridge(i, c) = a(i, c);
      y_ridge[i] = y[i];
    }
    for (int c = 0; c < 3; ++c) {
      a_ridge(samples.size() + c, static_cast<size_t>(c)) = lambda * col_scale[c];
      y_ridge[samples.size() + c] = lambda * col_scale[c] * 1.0;  // prior: weight 1
    }
    const Vector k = least_squares(a_ridge, y_ridge);
    // Physical bounds: every weight is a correction around the paper's
    // raw composition, so values far from 1 signal a degenerate solve
    // (collinear training set), not physics.
    auto bound = [](double v) { return std::clamp(v, 0.2, 2.0); };
    w.kappa_c = bound(k[0]);
    w.kappa_c1 = bound(k[1]);
    w.kappa_w = bound(k[2]);
    for (size_t i = 0; i < samples.size(); ++i)
      predicted[i] =
          w.kappa_c * a(i, 0) + w.kappa_c1 * a(i, 1) + w.kappa_w * a(i, 2);
  }
  // Residuals of the 1/golden-scaled rows ARE relative delay errors of
  // the whole chain, so the worst one is the directly meaningful quality
  // metric.
  double worst = 0.0;
  for (size_t i = 0; i < samples.size(); ++i)
    worst = std::max(worst, std::fabs(predicted[i] - y[i]));
  w.worst_rel_error = worst;
  return w;
}

}  // namespace

TechnologyFit calibrate_composition(const Technology& tech, TechnologyFit fit,
                                    const CompositionOptions& options) {
  fit.comp_coupled = fit_style_class(tech, fit, DesignStyle::SingleSpacing, options);
  fit.comp_shielded = fit_style_class(tech, fit, DesignStyle::Shielded, options);
  return fit;
}

}  // namespace pim
