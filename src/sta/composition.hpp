// Composition calibration (the final "calibrated against SPICE" step of
// the modeling methodology).
//
// The paper composes the repeater and wire delays as
//   d_stage = i(s) + rd(s, w) * c_l + r_w (0.4 c_g + (xi/2) c_c + 0.7 c_i).
// Our regressed rd maps a *lumped* load to a full 50 % delay, so applying
// it to the whole wire capacitance and then adding the distributed wire
// term double-counts: the driver really sees a reduced effective wire
// capacitance (resistive shielding). This pass runs a small set of
// single-stage golden simulations spanning the Rw/Rd regime and fits the
// two composition weights (kappa_c, kappa_w) of TechnologyFit by linear
// least squares:
//   d_golden - i - rd c_i  ~=  kappa_c * rd * c_wire  +  kappa_w * d_pamunuwa.
#pragma once

#include "charlib/fit.hpp"
#include "sta/signoff.hpp"

namespace pim {

/// Training-set axes for the calibration. The weights are fitted
/// separately for the coupled style class (trained on SingleSpacing) and
/// the shielded class, because the Miller transient and static grounded
/// coupling compose differently.
struct CompositionOptions {
  std::vector<int> drives = {8, 20};
  std::vector<double> segment_lengths = {0.25e-3, 0.5e-3, 1.0e-3, 1.8e-3};  // [m]
  std::vector<double> input_slews = {50e-12, 300e-12};             // [s]
  /// Repeater counts of the training chains: multi-stage chains teach
  /// the weights the waveform-shape penalty of real driven wires.
  std::vector<int> chain_lengths = {1, 4};
  WireLayer layer = WireLayer::Global;
  SignoffOptions signoff;
};

/// Returns `fit` with comp_coupled / comp_shielded filled in from golden
/// single-stage simulations of `tech`.
TechnologyFit calibrate_composition(const Technology& tech, TechnologyFit fit,
                                    const CompositionOptions& options = {});

}  // namespace pim
