// NLDM static-timing path: evaluates a buffered link from characterized
// Liberty-style tables (gate delay/slew lookups) plus reduced-order wire
// delay (Elmore or the AWE two-pole) and PERI-rule slew degradation —
// the mid-fidelity analysis a conventional STA flow performs, sitting
// between the paper's closed-form model (fastest) and the transistor-
// level golden (most accurate).
//
// Requires the drive strength to exist in the library (unlike the
// closed-form model, tables do not extrapolate across sizes).
#pragma once

#include "liberty/library.hpp"
#include "models/link.hpp"
#include "tech/technology.hpp"

namespace pim {

enum class WireDelayMethod {
  Elmore,   ///< first moment only (pessimistic upper bound flavor)
  AwePade,  ///< two-pole Pade match of the first two moments
};

struct NldmTimerOptions {
  int sections = 6;  ///< wire discretization for the moment computation
  WireDelayMethod wire = WireDelayMethod::AwePade;
};

struct NldmTimerResult {
  double delay = 0.0;        ///< 50 % input-to-far-end delay [s]
  double output_slew = 0.0;  ///< far-end slew [s]
};

/// Times the link (context, design) using the characterized tables in
/// `library`; throws pim::Error if the required cell is missing.
NldmTimerResult nldm_link_delay(const CellLibrary& library, const Technology& tech,
                                const LinkContext& context, const LinkDesign& design,
                                const NldmTimerOptions& options = {});

}  // namespace pim
