#include "sta/signoff.hpp"

#include <algorithm>

#include "charlib/characterize.hpp"
#include "models/baseline.hpp"
#include "spice/measure.hpp"
#include "spice/transient.hpp"
#include "util/error.hpp"

namespace pim {
namespace {

constexpr double kEdgeStart = 50e-12;

// Adds one repeater (inverter or buffer) per line. Nodes are created
// interleaved across lines so the MNA matrix stays banded.
void add_repeaters(Circuit& ckt, const Technology& tech, const LinkDesign& design,
                   const RepeaterSizing& sz, NodeId vdd,
                   std::vector<NodeId>& cur) {
  const size_t lines = cur.size();
  if (design.kind == CellKind::Buffer) {
    std::vector<NodeId> mid(lines);
    for (size_t l = 0; l < lines; ++l) mid[l] = ckt.add_node();
    std::vector<NodeId> out(lines);
    for (size_t l = 0; l < lines; ++l) out[l] = ckt.add_node();
    for (size_t l = 0; l < lines; ++l) {
      ckt.add_inverter(tech.devices(), sz.wn_in, sz.wp_in, cur[l], mid[l], vdd);
      ckt.add_inverter(tech.devices(), sz.wn_out, sz.wp_out, mid[l], out[l], vdd);
    }
    cur = out;
  } else {
    std::vector<NodeId> out(lines);
    for (size_t l = 0; l < lines; ++l) out[l] = ckt.add_node();
    for (size_t l = 0; l < lines; ++l)
      ckt.add_inverter(tech.devices(), sz.wn_out, sz.wp_out, cur[l], out[l], vdd);
    cur = out;
  }
}

// Adds one wire segment as `npi` RC sections with pi-distributed ground
// and coupling capacitance. `cur` holds the segment entry node per line
// and is replaced by the exit nodes.
void add_wire_segment(Circuit& ckt, const LinkGeometry& g, int npi,
                      std::vector<NodeId>& cur) {
  const size_t lines = cur.size();
  const double r_step = g.seg_res / npi;
  const double cg_step = g.seg_cap_ground / npi;
  // Per-side coupling of one section.
  const double cc_step = 0.5 * g.seg_cap_couple_total / npi;

  // Geometric order of the bundle: line 0 (the victim) sits in the
  // middle, its direct aggressors (1, 2) beside it, and the phase-
  // matched guard lines (3, 4) outside — so the victim AND its
  // aggressors each see a full worst-case environment and the bundle
  // stays edge-aligned along the whole chain (the alignment a PrimeTime-
  // SI-style per-stage worst case assumes). Outer flanks couple onward
  // to quiet neighbors (grounded). Each pi section deposits half its
  // capacitance at each end, so interior nodes accumulate a full
  // section's worth and the ends a half.
  std::vector<size_t> geo;
  if (lines == 5) {
    geo = {3, 1, 0, 2, 4};
  } else if (lines == 1) {
    geo = {0};
  } else {
    geo.resize(lines);
    for (size_t l = 0; l < lines; ++l) geo[l] = l;
  }
  auto add_node_caps = [&](const std::vector<NodeId>& nodes, double scale) {
    for (size_t l = 0; l < lines; ++l)
      ckt.add_capacitor(nodes[l], ckt.ground(), scale * cg_step);
    if (lines > 1) {
      for (size_t i = 0; i + 1 < lines; ++i)
        ckt.add_capacitor(nodes[geo[i]], nodes[geo[i + 1]], scale * cc_step);
      ckt.add_capacitor(nodes[geo[0]], ckt.ground(), scale * cc_step);
      ckt.add_capacitor(nodes[geo[lines - 1]], ckt.ground(), scale * cc_step);
    }
  };

  add_node_caps(cur, 0.5);
  for (int step = 0; step < npi; ++step) {
    std::vector<NodeId> next(lines);
    for (size_t l = 0; l < lines; ++l) next[l] = ckt.add_node();
    for (size_t l = 0; l < lines; ++l) ckt.add_resistor(cur[l], next[l], r_step);
    cur = next;
    add_node_caps(cur, step + 1 < npi ? 1.0 : 0.5);
  }
}

LinkNetlist build_line(const Technology& tech, const LinkContext& ctx,
                     const LinkDesign& design, const SignoffOptions& opt,
                     bool launch_rising) {
  const LinkGeometry g(tech, ctx, design);
  const RepeaterSizing sz = repeater_sizing(tech, design.kind, design.drive);
  // Coupled styles get a five-line bundle: victim, two aggressors, two
  // phase-matched guards (see add_wire_segment for the geometry).
  const size_t lines = ctx.style == DesignStyle::Shielded ? 1 : 5;

  LinkNetlist built;
  Circuit& ckt = built.circuit;
  const NodeId vdd = ckt.add_node("vdd");
  ckt.add_vsource(vdd, Waveform::dc(tech.vdd));

  // Line inputs: victim first, then the aggressors.
  std::vector<NodeId> cur(lines);
  for (size_t l = 0; l < lines; ++l) cur[l] = ckt.add_node();
  built.victim_in = cur[0];

  const double v0 = launch_rising ? 0.0 : tech.vdd;
  const double v1 = tech.vdd - v0;
  if (opt.aggressors == AggressorMode::VictimQuiet) {
    ckt.add_vsource(cur[0], Waveform::dc(0.0));
  } else {
    ckt.add_vsource(cur[0], Waveform::ramp(v0, v1, kEdgeStart, ctx.input_slew));
  }
  for (size_t l = 1; l < lines; ++l) {
    // Lines 1 and 2 are the direct aggressors; lines 3 and 4 (when
    // present) are guards phase-matched to the victim so the aggressors
    // themselves see a worst-case environment and stay aligned.
    const bool direct_aggressor = l <= 2;
    switch (opt.aggressors) {
      case AggressorMode::Opposing:
        if (direct_aggressor) {
          ckt.add_vsource(cur[l], Waveform::ramp(v1, v0, kEdgeStart, ctx.input_slew));
        } else {
          ckt.add_vsource(cur[l], Waveform::ramp(v0, v1, kEdgeStart, ctx.input_slew));
        }
        break;
      case AggressorMode::SameDirection:
        ckt.add_vsource(cur[l], Waveform::ramp(v0, v1, kEdgeStart, ctx.input_slew));
        break;
      case AggressorMode::Quiet:
        ckt.add_vsource(cur[l], Waveform::dc(0.0));
        break;
      case AggressorMode::VictimQuiet:
        // All neighbors rise together; their buffered wires fall and
        // couple the quiet (high) victim wire downward.
        ckt.add_vsource(cur[l], Waveform::ramp(0.0, tech.vdd, kEdgeStart, ctx.input_slew));
        break;
    }
  }

  for (int k = 0; k < design.num_repeaters; ++k) {
    add_repeaters(ckt, tech, design, sz, vdd, cur);
    add_wire_segment(ckt, g, opt.pi_per_segment, cur);
  }

  // Receiver: the input pin of an equally sized repeater at the far end.
  const double win_n = design.kind == CellKind::Inverter ? sz.wn_out : sz.wn_in;
  const double win_p = design.kind == CellKind::Inverter ? sz.wp_out : sz.wp_in;
  const double ci = win_n * tech.nmos.c_gate + win_p * tech.pmos.c_gate;
  for (size_t l = 0; l < lines; ++l) ckt.add_capacitor(cur[l], ckt.ground(), ci);

  built.victim_out = cur[0];
  return built;
}

}  // namespace

SignoffResult signoff_link(const Technology& tech, const LinkContext& ctx,
                           const LinkDesign& design, const SignoffOptions& opt) {
  require(opt.pi_per_segment >= 1, "signoff_link: need at least one pi section");

  // Size the simulation window from a cheap analytical estimate.
  const double estimate = PamunuwaModel(tech).evaluate(ctx, design).delay;

  SignoffResult worst;
  for (const bool launch_rising : {true, false}) {
    LinkNetlist built = build_line(tech, ctx, design, opt, launch_rising);

    TransientOptions sim;
    sim.dt = opt.dt;
    sim.t_stop = kEdgeStart + ctx.input_slew + 3.0 * estimate + opt.window_margin;
    sim.t_settle = 2e-9;
    sim.settle_steps = 250;
    const TransientResult res =
        run_transient(built.circuit, sim, {built.victim_in, built.victim_out});

    const bool inverted = design.kind == CellKind::Inverter && (design.num_repeaters % 2 == 1);
    const EdgeKind in_edge = launch_rising ? EdgeKind::Rising : EdgeKind::Falling;
    const EdgeKind out_edge = (launch_rising != inverted) ? EdgeKind::Rising : EdgeKind::Falling;

    const double delay = delay_50(res.time, res.trace(built.victim_in), in_edge,
                                  res.trace(built.victim_out), out_edge, tech.vdd);
    if (delay > worst.delay) {
      worst.delay = delay;
      worst.output_slew =
          measure_slew(res.time, res.trace(built.victim_out), out_edge, tech.vdd);
      worst.node_count = built.circuit.node_count();
    }
  }
  return worst;
}

LinkNetlist build_link_netlist(const Technology& tech, const LinkContext& context,
                               const LinkDesign& design, const SignoffOptions& options,
                               bool launch_rising) {
  return build_line(tech, context, design, options, launch_rising);
}

}  // namespace pim
