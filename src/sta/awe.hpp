// Moment matching / AWE-style reduced-order analysis of RC trees
// (paper §II cites AWE [21] and post-AWE methods as the mainstream
// detailed interconnect analyses that need full parasitics).
//
// Implements exact first and second moments of grounded-capacitor RC
// trees (m1 = Elmore) and a two-pole Pade approximation of the step
// response, from which threshold-crossing delays are solved in closed
// form plus a short bisection. Used as a mid-fidelity timer (between the
// closed-form models and the transistor-level golden) and to validate
// the golden simulator on linear networks.
#pragma once

#include <vector>

namespace pim {

/// A grounded-capacitor RC tree. Node 0 is the root (driven through
/// `root_resistance` from an ideal step source); every other node hangs
/// off its parent through a resistor.
class RcTree {
 public:
  /// Creates the root with its grounded capacitance.
  explicit RcTree(double root_cap);

  /// Adds a node connected to `parent` through `resistance`, with
  /// `capacitance` to ground. Returns the node index.
  int add_node(int parent, double resistance, double capacitance);

  /// Adds extra grounded capacitance at an existing node.
  void add_cap(int node, double capacitance);

  int node_count() const { return static_cast<int>(parent_.size()); }

  /// First moment (Elmore delay) at `node` for a step through
  /// `root_resistance` at the root.
  double elmore(int node, double root_resistance) const;

  /// First two moments (m1, m2) of the transfer function to `node`.
  /// Sign conventions: H(s) = 1 - m1 s + m2 s^2 - ... with m1, m2 > 0
  /// for RC circuits.
  struct Moments {
    double m1 = 0.0;
    double m2 = 0.0;
  };
  Moments moments(int node, double root_resistance) const;

 private:
  std::vector<int> parent_;
  std::vector<double> res_;  // resistance to parent (root: unused)
  std::vector<double> cap_;
};

/// Threshold-crossing time of the two-pole step response matched to
/// (m1, m2): v(t) = 1 - (p2 e^{-p1 t} - p1 e^{-p2 t})/(p2 - p1) for real
/// poles, with the critically-damped/complex cases handled by falling
/// back to a single-pole fit. `threshold` in (0, 1), e.g. 0.5.
double two_pole_delay(double m1, double m2, double threshold);

/// Convenience: 50 % step delay of a uniform ladder through a driver
/// resistance — the AWE counterpart of elmore_rc_ladder.
double awe_ladder_delay(double driver_res, double wire_res, double wire_cap,
                        double load_cap, int sections, double threshold = 0.5);

}  // namespace pim
