// Alpha-power-law MOSFET compact model (Sakurai–Newton style) with a
// softplus-smoothed overdrive so the current and its derivatives are
// continuous from deep subthreshold through strong inversion — a property
// the Newton iteration of the transient engine depends on.
//
// This model stands in for the BSIM decks the paper characterizes against
// (see DESIGN.md, substitutions): it reproduces the phenomena the paper's
// predictive models capture — slew-dependent effective drive resistance,
// size-independent intrinsic delay, load-dependent output slew, and
// width-proportional subthreshold leakage.
#pragma once

namespace pim {

enum class MosType { Nmos, Pmos };

/// Technology parameters of one device polarity. All per-width quantities
/// are per meter of gate width; voltages in volts.
struct MosfetParams {
  double vth = 0.3;       ///< threshold voltage magnitude [V]
  double k_sat = 600.0;   ///< saturation current factor [A / (m * V^alpha)]
  double alpha = 1.3;     ///< velocity-saturation index (2 = long channel)
  double k_vdsat = 0.6;   ///< V_dsat = k_vdsat * (overdrive)^(alpha/2) [V^(1-alpha/2)]
  double lambda = 0.08;   ///< channel-length modulation [1/V]
  double n_sub = 1.45;    ///< subthreshold slope factor (n * kT/q swing)
  double c_gate = 1e-9;   ///< gate capacitance per width [F/m] (1e-9 F/m = 1 fF/um)
  double c_drain = 0.6e-9;///< drain junction capacitance per width [F/m]
};

/// Drain current and small-signal derivatives at one bias point.
struct MosEval {
  double ids = 0.0;   ///< drain-to-source current [A] (positive into drain for NMOS conduction)
  double g_m = 0.0;   ///< d ids / d vgs [S]
  double g_ds = 0.0;  ///< d ids / d vds [S]
};

/// Evaluates an NMOS-polarity device of width `w` [m] at (vgs, vds).
/// Negative vds is handled by the source/drain-swap symmetry. PMOS devices
/// are evaluated through the same function with negated terminal voltages
/// (see Mosfet::eval in circuit.cpp).
MosEval eval_alpha_power(const MosfetParams& p, double w, double vgs, double vds);

/// Subthreshold (off-state) leakage current of a device of width `w` with
/// vgs = 0 and |vds| = vdd; this is what the paper's linear-in-width
/// leakage model is fitted to.
double off_current(const MosfetParams& p, double w, double vdd);

}  // namespace pim
