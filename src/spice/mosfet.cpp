#include "spice/mosfet.hpp"

#include <cmath>

#include "spice/kernels.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pim {

// The model math lives in spice/kernels.hpp so the scalar entry point and
// the batched SoA engine compile the exact same inline functions (the
// determinism contract requires bit-identical currents from both). The
// folded products below associate the same way the original expressions
// did, so no floating-point result changes.
MosEval eval_alpha_power(const MosfetParams& p, double w, double vgs, double vds) {
  require(w > 0.0, "eval_alpha_power: width must be positive");
  return kernels::eval_alpha_power_folded(p.k_sat * w, p.vth, p.alpha, p.k_vdsat,
                                          p.lambda,
                                          p.n_sub * constant::v_thermal_300k,
                                          vgs, vds);
}

double off_current(const MosfetParams& p, double w, double vdd) {
  require(vdd > 0.0, "off_current: vdd must be positive");
  return eval_alpha_power(p, w, 0.0, vdd).ids;
}

}  // namespace pim
