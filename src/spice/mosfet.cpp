#include "spice/mosfet.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace pim {
namespace {

// Softplus-smoothed gate overdrive and its derivative w.r.t. vgs.
// veff -> vgt for strong inversion, -> n*vT*exp(vgt/(n*vT)) in
// subthreshold, giving an emergent exponential subthreshold slope of
// ln(10)*n*vT/alpha volts per decade.
struct Overdrive {
  double veff;
  double dveff;  // d veff / d vgs
};

Overdrive smooth_overdrive(double vgt, double nvt) {
  const double z = vgt / nvt;
  if (z > 40.0) return {vgt, 1.0};
  if (z < -40.0) {
    const double e = std::exp(z);
    return {nvt * e, e};
  }
  const double e = std::exp(z);
  return {nvt * std::log1p(e), e / (1.0 + e)};
}

// Forward-conduction evaluation (vds >= 0).
MosEval eval_forward(const MosfetParams& p, double w, double vgs, double vds) {
  const double nvt = p.n_sub * constant::v_thermal_300k;
  const auto [veff, dveff] = smooth_overdrive(vgs - p.vth, nvt);

  const double i0 = p.k_sat * w * std::pow(veff, p.alpha);
  const double di0 = p.k_sat * w * p.alpha * std::pow(veff, p.alpha - 1.0) * dveff;
  const double vdsat = p.k_vdsat * std::pow(veff, 0.5 * p.alpha);
  const double clm = 1.0 + p.lambda * vds;

  MosEval out;
  if (vdsat < 1e-12 || vds >= vdsat) {
    // Saturation.
    out.ids = i0 * clm;
    out.g_ds = i0 * p.lambda;
    out.g_m = di0 * clm;
  } else {
    // Triode; the quadratic (2 - x)x matches the saturation current and
    // its vds-derivative at x = 1.
    const double x = vds / vdsat;
    const double f = (2.0 - x) * x;
    const double dvdsat = p.k_vdsat * 0.5 * p.alpha * std::pow(veff, 0.5 * p.alpha - 1.0) * dveff;
    const double dx_dvgs = -vds / (vdsat * vdsat) * dvdsat;
    out.ids = i0 * clm * f;
    out.g_ds = i0 * (p.lambda * f + clm * (2.0 - 2.0 * x) / vdsat);
    out.g_m = di0 * clm * f + i0 * clm * (2.0 - 2.0 * x) * dx_dvgs;
  }
  return out;
}

}  // namespace

MosEval eval_alpha_power(const MosfetParams& p, double w, double vgs, double vds) {
  require(w > 0.0, "eval_alpha_power: width must be positive");
  if (vds >= 0.0) return eval_forward(p, w, vgs, vds);

  // Reverse conduction: swap source and drain. With the swapped device
  // I'(vgs', vds') where vgs' = vgs - vds, vds' = -vds, the original
  // current is I = -I', and the chain rule gives the derivatives below.
  const MosEval r = eval_forward(p, w, vgs - vds, -vds);
  MosEval out;
  out.ids = -r.ids;
  out.g_m = -r.g_m;
  out.g_ds = r.g_m + r.g_ds;
  return out;
}

double off_current(const MosfetParams& p, double w, double vdd) {
  require(vdd > 0.0, "off_current: vdd must be positive");
  return eval_alpha_power(p, w, 0.0, vdd).ids;
}

}  // namespace pim
