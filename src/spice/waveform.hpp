// Source waveforms: piecewise-linear voltage vs. time.
//
// Grounded voltage sources in pim::spice are driven by these; the two
// shapes the library needs are DC rails and saturated-ramp edges with a
// controlled transition time (the "input slew" knob of the paper's
// characterization methodology).
#pragma once

#include <vector>

namespace pim {

/// Piecewise-linear waveform. Before the first breakpoint the value is
/// the first level; after the last it is the last level.
class Waveform {
 public:
  /// Constant level for all time.
  static Waveform dc(double level);

  /// Ramp from `v0` to `v1` starting at `t_start`, linear over
  /// `transition`; constant before and after. `transition` is the full
  /// 0-100 % ramp time.
  static Waveform ramp(double v0, double v1, double t_start, double transition);

  /// General PWL from (time, value) breakpoints; times must be strictly
  /// increasing and non-empty.
  static Waveform pwl(std::vector<double> times, std::vector<double> values);

  /// Value at time `t`.
  double value(double t) const;

  /// Largest breakpoint time (0 for DC).
  double last_time() const;

  /// Breakpoint accessors (deck serialization, diagnostics).
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }

 private:
  Waveform() = default;
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace pim
