#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "numeric/banded.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/strings.hpp"

namespace pim {

const std::vector<double>& TransientResult::trace(NodeId node) const {
  if (trace_index_.size() != traces.size()) {
    trace_index_.clear();
    trace_index_.reserve(traces.size());
    for (size_t i = 0; i < traces.size(); ++i) trace_index_.emplace_back(traces[i].node, i);
    std::sort(trace_index_.begin(), trace_index_.end());
  }
  const auto it = std::lower_bound(
      trace_index_.begin(), trace_index_.end(), node,
      [](const std::pair<NodeId, size_t>& e, NodeId n) { return e.first < n; });
  if (it == trace_index_.end() || it->first != node)
    fail("TransientResult::trace: node " + std::to_string(node) + " was not probed",
         ErrorCode::bad_input);
  return traces[it->second].values;
}

namespace {

// Per-terminal linearization of a MOSFET's drain-branch current. With the
// sign conventions below the stamp pattern is identical for both device
// polarities: +i_d leaves the drain node, -i_d leaves the source node.
struct BranchEval {
  double i_d;
  double di_dvg;
  double di_dvd;
  double di_dvs;
};

BranchEval eval_branch(const Mosfet& m, double vg, double vd, double vs) {
  MosEval e;
  double sign;
  if (m.type == MosType::Nmos) {
    e = eval_alpha_power(m.params, m.width, vg - vs, vd - vs);
    sign = 1.0;
  } else {
    e = eval_alpha_power(m.params, m.width, vs - vg, vs - vd);
    sign = -1.0;
  }
  // For both polarities the chain rule collapses to the same Jacobian
  // pattern (see mosfet.cpp for the swap symmetry).
  return {sign * e.ids, e.g_m, e.g_ds, -(e.g_m + e.g_ds)};
}

// Linear system that is either banded or dense, chosen once from the
// netlist's bandwidth under the creation-order node numbering.
class LinearSystem {
 public:
  LinearSystem(size_t n, size_t bandwidth, size_t band_threshold)
      : n_(n), rhs_(n, 0.0) {
    if (bandwidth <= band_threshold) {
      banded_ = std::make_unique<BandedMatrix>(std::max<size_t>(n, 1), bandwidth, bandwidth);
    } else {
      dense_ = std::make_unique<Matrix>(n, n);
    }
  }

  void clear() {
    std::fill(rhs_.begin(), rhs_.end(), 0.0);
    if (banded_) banded_->set_zero();
    if (dense_) dense_->set_zero();
  }

  void add(size_t r, size_t c, double g) {
    if (banded_) {
      banded_->add(r, c, g);
    } else {
      (*dense_)(r, c) += g;
    }
  }

  Vector& rhs() { return rhs_; }

  Vector solve() const {
    if (n_ == 0) return {};
    if (banded_) return BandedLu(*banded_).solve(rhs_);
    return LuDecomposition(*dense_).solve(rhs_);
  }

 private:
  size_t n_;
  Vector rhs_;
  std::unique_ptr<BandedMatrix> banded_;
  std::unique_ptr<Matrix> dense_;
};

class TransientSolver {
 public:
  TransientSolver(const Circuit& circuit, const TransientOptions& options,
                  const std::vector<NodeId>& probes)
      : ckt_(circuit), opt_(options), probes_(probes) {
    require(opt_.dt > 0.0 && opt_.t_stop > 0.0, "run_transient: dt and t_stop must be positive",
            ErrorCode::bad_input);
    index_nodes();
    system_ = std::make_unique<LinearSystem>(
        static_cast<size_t>(unknown_count_), bandwidth(), opt_.band_threshold);
    v_node_.assign(ckt_.node_count(), 0.0);
    cap_current_.assign(ckt_.capacitors().size(), 0.0);
  }

  TransientResult run() {
    PIM_OBS_SPAN("spice.transient.run");
    TransientResult result;
    result.sources.resize(ckt_.vsources().size());
    for (NodeId p : probes_) result.traces.push_back({p, {}});

    // Settling pre-roll: backward Euler, inputs frozen at t = 0, so the
    // main window starts from the DC operating point.
    if (opt_.t_settle > 0.0 && opt_.settle_steps > 0) {
      const double dts = opt_.t_settle / opt_.settle_steps;
      for (int k = 0; k < opt_.settle_steps; ++k)
        advance(0.0, dts, Integrator::BackwardEuler, nullptr, 0);
    }

    // Main window.
    record(0.0, result);
    const long steps = static_cast<long>(std::ceil(opt_.t_stop / opt_.dt - 1e-9));
    for (long k = 1; k <= steps; ++k) {
      const double t = std::min(opt_.t_stop, static_cast<double>(k) * opt_.dt);
      advance(t, opt_.dt, opt_.integrator, &result, 0);
      record(t, result);
    }
    // Tallies are accumulated in plain locals and flushed once per run so
    // the stepping loop carries no atomics.
    PIM_COUNT("spice.transient.runs");
    PIM_COUNT_N("spice.timestep.count", n_timesteps_);
    PIM_COUNT_N("spice.newton.iterations", n_newton_);
    PIM_COUNT_N("spice.lu.solves", n_solves_);
    if (n_retries_ > 0) PIM_COUNT_N("spice.newton.retries", n_retries_);
    return result;
  }

 private:
  void index_nodes() {
    const size_t n = ckt_.node_count();
    unknown_of_node_.assign(n, -1);
    source_value_index_.assign(n, -1);
    for (size_t i = 0; i < ckt_.vsources().size(); ++i)
      source_value_index_[static_cast<size_t>(ckt_.vsources()[i].node)] = static_cast<int>(i);
    unknown_count_ = 0;
    for (size_t node = 1; node < n; ++node) {
      if (source_value_index_[node] >= 0) continue;
      unknown_of_node_[node] = unknown_count_++;
    }
  }

  size_t bandwidth() const {
    size_t band = 0;
    auto pair_band = [&](NodeId a, NodeId b) {
      const int ia = unknown_of_node_[static_cast<size_t>(a)];
      const int ib = unknown_of_node_[static_cast<size_t>(b)];
      if (ia < 0 || ib < 0) return;
      band = std::max(band, static_cast<size_t>(std::abs(ia - ib)));
    };
    for (const auto& r : ckt_.resistors()) pair_band(r.a, r.b);
    for (const auto& c : ckt_.capacitors()) pair_band(c.a, c.b);
    for (const auto& m : ckt_.mosfets()) {
      pair_band(m.gate, m.drain);
      pair_band(m.gate, m.source);
      pair_band(m.drain, m.source);
    }
    return band;
  }

  // Known voltage of ground/source nodes at time t; unknowns read from
  // the current iterate in v_node_.
  void load_known_voltages(double t) {
    v_node_[0] = 0.0;
    for (const auto& src : ckt_.vsources())
      v_node_[static_cast<size_t>(src.node)] = src.wave.value(t);
  }

  // Adds conductance g at matrix position (row_node, col_node), routing
  // known-voltage columns into the right-hand side.
  void stamp(NodeId row, NodeId col, double g) {
    const int ri = unknown_of_node_[static_cast<size_t>(row)];
    if (ri < 0) return;
    const int ci = unknown_of_node_[static_cast<size_t>(col)];
    if (ci >= 0) {
      system_->add(static_cast<size_t>(ri), static_cast<size_t>(ci), g);
    } else {
      system_->rhs()[static_cast<size_t>(ri)] -= g * v_node_[static_cast<size_t>(col)];
    }
  }

  void rhs_add(NodeId node, double value) {
    const int i = unknown_of_node_[static_cast<size_t>(node)];
    if (i >= 0) system_->rhs()[static_cast<size_t>(i)] += value;
  }

  // Advances from t - dt to t, retrying a non-convergent Newton solve
  // with timestep halving: the failed interval is restored to its
  // pre-step state and re-run as two half-steps, recursively, up to
  // opt_.max_step_halvings levels (bounded backoff). Only when the
  // smallest step still diverges does the run surface no_convergence.
  void advance(double t, double dt, Integrator integrator, TransientResult* result,
               int depth) {
    // Snapshot the dynamic state so a failed attempt can be rolled back;
    // everything else (matrices, rhs) is rebuilt per iteration anyway.
    const Vector v_save = v_node_;
    const std::vector<double> cap_save = cap_current_;
    if (step(t, dt, integrator, result)) return;

    if (depth >= opt_.max_step_halvings) {
      PIM_COUNT("spice.transient.error");
      fail("run_transient: Newton failed to converge at t = " + format_sig(t, 6) +
               " s (dt = " + format_sig(dt, 4) + " s, after " + std::to_string(depth) +
               " timestep halvings)",
           ErrorCode::no_convergence);
    }
    ++n_retries_;
    v_node_ = v_save;
    cap_current_ = cap_save;
    const double half = 0.5 * dt;
    advance(t - half, half, integrator, result, depth + 1);
    advance(t, half, integrator, result, depth + 1);
  }

  // One timestep ending at absolute time t; returns whether Newton
  // converged (leaving state mutated either way — advance() rolls back on
  // failure). When `result` is non-null, per-source charge/energy are
  // accumulated (main window only).
  bool step(double t, double dt, Integrator integrator, TransientResult* result) {
    ++n_timesteps_;
    const auto& caps = ckt_.capacitors();
    // Capacitor companion constants for this step, from the *previous*
    // timestep's converged state.
    cap_geq_.resize(caps.size());
    cap_ieq_.resize(caps.size());
    for (size_t i = 0; i < caps.size(); ++i) {
      const double v_ab =
          v_node_[static_cast<size_t>(caps[i].a)] - v_node_[static_cast<size_t>(caps[i].b)];
      if (integrator == Integrator::Trapezoidal) {
        cap_geq_[i] = 2.0 * caps[i].farads / dt;
        cap_ieq_[i] = cap_geq_[i] * v_ab + cap_current_[i];
      } else {
        cap_geq_[i] = caps[i].farads / dt;
        cap_ieq_[i] = cap_geq_[i] * v_ab;
      }
    }

    load_known_voltages(t);

    bool converged = false;
    // Fault site: simulate a diverging Newton loop for this attempt only,
    // so the halving retry path gets exercised deterministically.
    const bool inject = fault::should_fire(fault::kNewtonDiverge);
    for (int iter = 0; !inject && iter < opt_.max_newton; ++iter) {
      ++n_newton_;
      ++n_solves_;
      assemble();
      Vector v_new;
      try {
        v_new = system_->solve();
      } catch (const Error& e) {
        if (e.code() != ErrorCode::singular_matrix) throw;
        // A singular Jacobian at this operating point is retryable: the
        // halved timestep rebuilds the capacitor companion conductances,
        // which re-conditions the system.
        PIM_COUNT("spice.solver.singular");
        break;
      }
      double worst = 0.0;
      for (size_t node = 1; node < v_node_.size(); ++node) {
        const int ui = unknown_of_node_[node];
        if (ui < 0) continue;
        double delta = v_new[static_cast<size_t>(ui)] - v_node_[node];
        delta = std::clamp(delta, -opt_.v_step_limit, opt_.v_step_limit);
        v_node_[node] += delta;
        worst = std::max(worst, std::fabs(delta));
      }
      if (worst < opt_.v_tol) {
        converged = true;
        break;
      }
    }
    if (!converged) return false;

    // Update capacitor branch-current state from the converged solution.
    for (size_t i = 0; i < caps.size(); ++i) {
      const double v_ab =
          v_node_[static_cast<size_t>(caps[i].a)] - v_node_[static_cast<size_t>(caps[i].b)];
      cap_current_[i] = cap_geq_[i] * v_ab - cap_ieq_[i];
    }

    if (result != nullptr) accumulate_sources(*result, dt);
    return true;
  }

  // Assembles the Newton linear system around the current iterate.
  void assemble() {
    system_->clear();

    for (const auto& r : ckt_.resistors()) {
      stamp(r.a, r.a, r.conductance);
      stamp(r.a, r.b, -r.conductance);
      stamp(r.b, r.b, r.conductance);
      stamp(r.b, r.a, -r.conductance);
    }

    const auto& caps = ckt_.capacitors();
    for (size_t i = 0; i < caps.size(); ++i) {
      const double g = cap_geq_[i];
      stamp(caps[i].a, caps[i].a, g);
      stamp(caps[i].a, caps[i].b, -g);
      stamp(caps[i].b, caps[i].b, g);
      stamp(caps[i].b, caps[i].a, -g);
      rhs_add(caps[i].a, cap_ieq_[i]);
      rhs_add(caps[i].b, -cap_ieq_[i]);
    }

    for (const auto& m : ckt_.mosfets()) {
      const double vg = v_node_[static_cast<size_t>(m.gate)];
      const double vd = v_node_[static_cast<size_t>(m.drain)];
      const double vs = v_node_[static_cast<size_t>(m.source)];
      const BranchEval e = eval_branch(m, vg, vd, vs);
      stamp(m.drain, m.gate, e.di_dvg);
      stamp(m.drain, m.drain, e.di_dvd);
      stamp(m.drain, m.source, e.di_dvs);
      stamp(m.source, m.gate, -e.di_dvg);
      stamp(m.source, m.drain, -e.di_dvd);
      stamp(m.source, m.source, -e.di_dvs);
      const double i_eq = e.i_d - e.di_dvg * vg - e.di_dvd * vd - e.di_dvs * vs;
      rhs_add(m.drain, -i_eq);
      rhs_add(m.source, i_eq);
    }
  }

  // Current delivered by each source = sum of branch currents leaving its
  // node, integrated into charge and energy.
  void accumulate_sources(TransientResult& result, double dt) {
    const auto& sources = ckt_.vsources();
    for (size_t si = 0; si < sources.size(); ++si) {
      const NodeId n = sources[si].node;
      double current = 0.0;
      for (const auto& r : ckt_.resistors()) {
        if (r.a == n)
          current += r.conductance * (v_node_[static_cast<size_t>(r.a)] -
                                      v_node_[static_cast<size_t>(r.b)]);
        if (r.b == n)
          current += r.conductance * (v_node_[static_cast<size_t>(r.b)] -
                                      v_node_[static_cast<size_t>(r.a)]);
      }
      const auto& caps = ckt_.capacitors();
      for (size_t i = 0; i < caps.size(); ++i) {
        if (caps[i].a == n) current += cap_current_[i];
        if (caps[i].b == n) current -= cap_current_[i];
      }
      for (const auto& m : ckt_.mosfets()) {
        if (m.drain == n || m.source == n) {
          const BranchEval e = eval_branch(m, v_node_[static_cast<size_t>(m.gate)],
                                           v_node_[static_cast<size_t>(m.drain)],
                                           v_node_[static_cast<size_t>(m.source)]);
          if (m.drain == n) current += e.i_d;
          if (m.source == n) current -= e.i_d;
        }
      }
      result.sources[si].charge += current * dt;
      result.sources[si].energy += current * v_node_[static_cast<size_t>(n)] * dt;
    }
  }

  void record(double t, TransientResult& result) {
    result.time.push_back(t);
    for (auto& trace : result.traces)
      trace.values.push_back(v_node_[static_cast<size_t>(trace.node)]);
  }

  const Circuit& ckt_;
  TransientOptions opt_;
  std::vector<NodeId> probes_;
  std::vector<int> unknown_of_node_;
  std::vector<int> source_value_index_;
  int unknown_count_ = 0;
  std::unique_ptr<LinearSystem> system_;
  Vector v_node_;                    // absolute voltage per node (current iterate)
  std::vector<double> cap_current_;  // converged branch current per capacitor
  std::vector<double> cap_geq_;
  std::vector<double> cap_ieq_;
  long n_timesteps_ = 0;  // settle + main window steps
  long n_newton_ = 0;
  long n_solves_ = 0;
  long n_retries_ = 0;  // timestep-halving retry events
};

}  // namespace

TransientResult run_transient_reference(const Circuit& circuit,
                                        const TransientOptions& options,
                                        const std::vector<NodeId>& probes) {
  return TransientSolver(circuit, options, probes).run();
}

}  // namespace pim
