// Netlist container for the pim circuit simulator.
//
// Supported elements: resistors, capacitors, grounded ideal voltage
// sources (PWL waveforms), and alpha-power-law MOSFETs. This covers the
// paper's whole characterization and sign-off space: repeater chains,
// distributed RC wires, coupled aggressors, and ramp-driven inputs.
//
// Node 0 is ground. Nodes are created through add_node(); element
// endpoints must be valid node ids. A node may carry at most one voltage
// source.
#pragma once

#include <string>
#include <vector>

#include "spice/mosfet.hpp"
#include "spice/waveform.hpp"

namespace pim {

using NodeId = int;

/// Resistor between nodes a and b.
struct Resistor {
  NodeId a;
  NodeId b;
  double conductance;  // 1/ohms
};

/// Capacitor between nodes a and b.
struct Capacitor {
  NodeId a;
  NodeId b;
  double farads;
};

/// Ideal grounded voltage source fixing `node` to `wave`(t).
struct VoltageSource {
  NodeId node;
  Waveform wave;
};

/// MOSFET instance. For Nmos the source is conventionally the lower-rail
/// side; for Pmos the upper-rail side. Any node wiring is accepted.
struct Mosfet {
  MosType type;
  MosfetParams params;
  double width;  // meters of gate width
  NodeId gate;
  NodeId drain;
  NodeId source;
};

/// A CMOS inverter's device pair, used by netlist-building helpers.
struct InverterDevices {
  MosfetParams nmos;
  MosfetParams pmos;
};

/// The netlist. Plain data with validated mutation methods; the transient
/// engine consumes it read-only.
class Circuit {
 public:
  Circuit();

  NodeId ground() const { return 0; }

  /// Creates a node and returns its id. The optional name is kept for
  /// diagnostics only.
  NodeId add_node(std::string name = {});

  size_t node_count() const { return names_.size(); }
  const std::string& node_name(NodeId n) const;

  void add_resistor(NodeId a, NodeId b, double ohms);
  void add_capacitor(NodeId a, NodeId b, double farads);

  /// Fixes `node` to the waveform. A node can only be driven by one
  /// source, and the ground node cannot be driven.
  void add_vsource(NodeId node, Waveform wave);

  void add_mosfet(MosType type, const MosfetParams& params, double width,
                  NodeId gate, NodeId drain, NodeId source);

  /// Adds a static CMOS inverter: NMOS (width wn) to ground, PMOS (width
  /// wp) to `vdd_node`, plus the lumped gate capacitance at `in` and drain
  /// junction capacitance at `out` implied by the device parameters.
  void add_inverter(const InverterDevices& devices, double wn, double wp,
                    NodeId in, NodeId out, NodeId vdd_node);

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<VoltageSource>& vsources() const { return vsources_; }
  const std::vector<Mosfet>& mosfets() const { return mosfets_; }

  /// True when `node` is fixed by a voltage source.
  bool is_source_node(NodeId node) const;

 private:
  void check_node(NodeId n, const char* what) const;

  std::vector<std::string> names_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<VoltageSource> vsources_;
  std::vector<Mosfet> mosfets_;
  std::vector<char> has_source_;  // indexed by node id
};

}  // namespace pim
