// Shared alpha-power device-evaluation kernels.
//
// The scalar model entry point (eval_alpha_power in mosfet.cpp) and the
// batched SoA transient engine (plan.cpp / batch.cpp) must produce
// bit-identical currents and derivatives — the determinism contract keys
// the result cache on them. Both therefore compile exactly the inline
// functions below; there is no second copy of the model math anywhere.
//
// The "folded" parameter forms precompute two products that the model
// only ever uses together, in the same association order the original
// expressions evaluate them:
//   ksw = k_sat * w              (i0   = (k_sat * w) * pow(...))
//   nvt = n_sub * v_thermal_300k (subthreshold swing)
// so folding changes no floating-point result.
//
// PIM_SIMD only toggles vectorization *hints* (restrict-qualified SoA
// pass, GCC ivdep) — never the arithmetic. The build uses strict IEEE
// semantics (no -ffast-math, no FMA contraction), so ON/OFF and
// scalar/batch all produce the same bits; scripts/check_kernels.sh
// enforces this end to end.
#pragma once

#include <cmath>
#include <cstddef>

#include "spice/mosfet.hpp"
#include "util/units.hpp"

namespace pim::kernels {

/// Softplus-smoothed gate overdrive and its derivative w.r.t. vgs.
/// veff -> vgt for strong inversion, -> n*vT*exp(vgt/(n*vT)) in
/// subthreshold, giving an emergent exponential subthreshold slope of
/// ln(10)*n*vT/alpha volts per decade.
struct Overdrive {
  double veff;
  double dveff;  // d veff / d vgs
};

inline Overdrive smooth_overdrive(double vgt, double nvt) {
  const double z = vgt / nvt;
  if (z > 40.0) return {vgt, 1.0};
  if (z < -40.0) {
    const double e = std::exp(z);
    return {nvt * e, e};
  }
  const double e = std::exp(z);
  return {nvt * std::log1p(e), e / (1.0 + e)};
}

/// Forward-conduction evaluation (vds >= 0) with folded parameters.
inline MosEval eval_forward_folded(double ksw, double vth, double alpha,
                                   double k_vdsat, double lambda, double nvt,
                                   double vgs, double vds) {
  const auto [veff, dveff] = smooth_overdrive(vgs - vth, nvt);

  const double i0 = ksw * std::pow(veff, alpha);
  const double di0 = ksw * alpha * std::pow(veff, alpha - 1.0) * dveff;
  const double vdsat = k_vdsat * std::pow(veff, 0.5 * alpha);
  const double clm = 1.0 + lambda * vds;

  MosEval out;
  if (vdsat < 1e-12 || vds >= vdsat) {
    // Saturation.
    out.ids = i0 * clm;
    out.g_ds = i0 * lambda;
    out.g_m = di0 * clm;
  } else {
    // Triode; the quadratic (2 - x)x matches the saturation current and
    // its vds-derivative at x = 1.
    const double x = vds / vdsat;
    const double f = (2.0 - x) * x;
    const double dvdsat = k_vdsat * 0.5 * alpha * std::pow(veff, 0.5 * alpha - 1.0) * dveff;
    const double dx_dvgs = -vds / (vdsat * vdsat) * dvdsat;
    out.ids = i0 * clm * f;
    out.g_ds = i0 * (lambda * f + clm * (2.0 - 2.0 * x) / vdsat);
    out.g_m = di0 * clm * f + i0 * clm * (2.0 - 2.0 * x) * dx_dvgs;
  }
  return out;
}

/// eval_alpha_power with folded parameters: negative vds is handled by
/// the source/drain-swap symmetry (I = -I', g_ds = g_m' + g_ds').
inline MosEval eval_alpha_power_folded(double ksw, double vth, double alpha,
                                       double k_vdsat, double lambda, double nvt,
                                       double vgs, double vds) {
  if (vds >= 0.0)
    return eval_forward_folded(ksw, vth, alpha, k_vdsat, lambda, nvt, vgs, vds);
  const MosEval r =
      eval_forward_folded(ksw, vth, alpha, k_vdsat, lambda, nvt, vgs - vds, -vds);
  MosEval out;
  out.ids = -r.ids;
  out.g_m = -r.g_m;
  out.g_ds = r.g_m + r.g_ds;
  return out;
}

/// Per-terminal linearization of one device's drain-branch current with
/// the transient engine's sign convention: `sign` is +1 for NMOS, -1 for
/// PMOS, and sign*(vg - vs) reproduces the polarity-negated terminal
/// voltages exactly (IEEE negation is exact). The Jacobian entries are
/// polarity-independent (the chain rule collapses — see mosfet.cpp).
inline void eval_branch_folded(double sign, double ksw, double vth, double alpha,
                               double k_vdsat, double lambda, double nvt,
                               double vg, double vd, double vs, double& i_d,
                               double& di_dvg, double& di_dvd, double& di_dvs) {
  const MosEval e = eval_alpha_power_folded(ksw, vth, alpha, k_vdsat, lambda, nvt,
                                            sign * (vg - vs), sign * (vd - vs));
  i_d = sign * e.ids;
  di_dvg = e.g_m;
  di_dvd = e.g_ds;
  di_dvs = -(e.g_m + e.g_ds);
}

/// Structure-of-arrays pass: evaluates `count` devices in one contiguous
/// sweep. All pointers address `count` doubles; the parameter arrays are
/// the folded per-device forms above (per-lane widths enter through ksw).
/// Polarity is handled branch-free through the sign array; the remaining
/// operating-region branches are value-dependent and required for
/// bit-identity with the scalar path.
void eval_alpha_power_batch(size_t count, const double* sign, const double* ksw,
                            const double* vth, const double* alpha,
                            const double* k_vdsat, const double* lambda,
                            const double* nvt, const double* vg, const double* vd,
                            const double* vs, double* i_d, double* di_dvg,
                            double* di_dvd, double* di_dvs);

}  // namespace pim::kernels
