#include "spice/waveform.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pim {

Waveform Waveform::dc(double level) {
  require(std::isfinite(level), "Waveform::dc: level must be finite", ErrorCode::bad_input);
  Waveform w;
  w.times_ = {0.0};
  w.values_ = {level};
  return w;
}

Waveform Waveform::ramp(double v0, double v1, double t_start, double transition) {
  require(transition > 0.0, "Waveform::ramp: transition must be positive",
          ErrorCode::bad_input);
  require(std::isfinite(v0) && std::isfinite(v1) && std::isfinite(t_start) &&
              std::isfinite(transition),
          "Waveform::ramp: breakpoints must be finite", ErrorCode::bad_input);
  Waveform w;
  w.times_ = {t_start, t_start + transition};
  w.values_ = {v0, v1};
  return w;
}

Waveform Waveform::pwl(std::vector<double> times, std::vector<double> values) {
  require(!times.empty() && times.size() == values.size(),
          "Waveform::pwl: need matching non-empty breakpoints", ErrorCode::bad_input);
  for (size_t i = 0; i < times.size(); ++i)
    require(std::isfinite(times[i]) && std::isfinite(values[i]),
            "Waveform::pwl: breakpoints must be finite (index " + std::to_string(i) + ")",
            ErrorCode::bad_input);
  for (size_t i = 1; i < times.size(); ++i)
    require(times[i] > times[i - 1], "Waveform::pwl: times must be strictly increasing",
            ErrorCode::bad_input);
  Waveform w;
  w.times_ = std::move(times);
  w.values_ = std::move(values);
  return w;
}

double Waveform::value(double t) const {
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  // Linear scan is fine: waveforms have a handful of breakpoints.
  size_t i = 0;
  while (times_[i + 1] < t) ++i;
  const double f = (t - times_[i]) / (times_[i + 1] - times_[i]);
  return values_[i] + f * (values_[i + 1] - values_[i]);
}

double Waveform::last_time() const { return times_.back(); }

}  // namespace pim
