#include "spice/plan.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace pim {

CompiledCircuit CompiledCircuit::compile(const Circuit& circuit, size_t band_threshold) {
  CompiledCircuit p;
  p.node_count = circuit.node_count();

  // Node indexing: identical to the scalar engine's index_nodes().
  p.unknown_of_node.assign(p.node_count, -1);
  std::vector<int> source_value_index(p.node_count, -1);
  for (size_t i = 0; i < circuit.vsources().size(); ++i) {
    const auto& src = circuit.vsources()[i];
    source_value_index[static_cast<size_t>(src.node)] = static_cast<int>(i);
    p.vsource_node.push_back(src.node);
    p.vsource_wave.push_back(src.wave);
  }
  p.unknown_count = 0;
  for (size_t node = 1; node < p.node_count; ++node) {
    if (source_value_index[node] >= 0) continue;
    p.unknown_of_node[node] = p.unknown_count++;
  }

  // Bandwidth under the creation-order numbering, same scan as the
  // scalar engine.
  size_t band = 0;
  auto pair_band = [&](NodeId a, NodeId b) {
    const int ia = p.unknown_of_node[static_cast<size_t>(a)];
    const int ib = p.unknown_of_node[static_cast<size_t>(b)];
    if (ia < 0 || ib < 0) return;
    band = std::max(band, static_cast<size_t>(std::abs(ia - ib)));
  };
  for (const auto& r : circuit.resistors()) pair_band(r.a, r.b);
  for (const auto& cp : circuit.capacitors()) pair_band(cp.a, cp.b);
  for (const auto& m : circuit.mosfets()) {
    pair_band(m.gate, m.drain);
    pair_band(m.gate, m.source);
    pair_band(m.drain, m.source);
  }
  p.bandwidth = band;
  p.use_banded = band <= band_threshold;
  p.matrix_rows = std::max<size_t>(static_cast<size_t>(p.unknown_count), 1);
  p.matrix_slots = p.use_banded ? (2 * band + 1) * p.matrix_rows
                                : p.matrix_rows * p.matrix_rows;

  // Classifies one stamp (row, col): matrix slot, RHS route through a
  // known column, or dropped (known row) — the three arms of the scalar
  // engine's stamp().
  auto classify = [&](NodeId row, NodeId col) -> std::pair<int, int> {
    const int ri = p.unknown_of_node[static_cast<size_t>(row)];
    if (ri < 0) return {-1, -1};
    const int ci = p.unknown_of_node[static_cast<size_t>(col)];
    if (ci >= 0) return {p.slot_of(ri, ci), -1};
    return {-1, ri};
  };

  struct StampSite {
    NodeId row, col;
    double sg;
  };

  // Resistors: conductances are constant, so their matrix contributions
  // are accumulated once here (in stamp order) into the static image.
  p.res_matrix.assign(p.matrix_slots, 0.0);
  for (const auto& r : circuit.resistors()) {
    const StampSite ops[4] = {{r.a, r.a, 1.0}, {r.a, r.b, -1.0},
                              {r.b, r.b, 1.0}, {r.b, r.a, -1.0}};
    for (const auto& op : ops) {
      const auto [slot, rhs] = classify(op.row, op.col);
      if (slot >= 0)
        p.res_matrix[static_cast<size_t>(slot)] += op.sg * r.conductance;
      else if (rhs >= 0)
        p.res_rhs_ops.push_back({rhs, op.col, op.sg * r.conductance});
    }
  }

  // Capacitors: stamps carry the per-step companion conductance geq and
  // current ieq, so the ops reference the capacitor index.
  for (size_t i = 0; i < circuit.capacitors().size(); ++i) {
    const auto& cp = circuit.capacitors()[i];
    p.cap_farads.push_back(cp.farads);
    p.cap_a.push_back(cp.a);
    p.cap_b.push_back(cp.b);
    const StampSite ops[4] = {{cp.a, cp.a, 1.0}, {cp.a, cp.b, -1.0},
                              {cp.b, cp.b, 1.0}, {cp.b, cp.a, -1.0}};
    for (const auto& op : ops) {
      const auto [slot, rhs] = classify(op.row, op.col);
      if (slot >= 0)
        p.cap_mat_ops.push_back({slot, op.sg, static_cast<int>(i)});
      else if (rhs >= 0)
        p.cap_rhs_ops.push_back({rhs, static_cast<int>(i), op.sg, op.col, true});
    }
    const int ia = p.unknown_of_node[static_cast<size_t>(cp.a)];
    if (ia >= 0) p.cap_rhs_ops.push_back({ia, static_cast<int>(i), 1.0, 0, false});
    const int ib = p.unknown_of_node[static_cast<size_t>(cp.b)];
    if (ib >= 0) p.cap_rhs_ops.push_back({ib, static_cast<int>(i), -1.0, 0, false});
  }

  // MOSFETs into SoA form with folded parameters (see spice/kernels.hpp:
  // the folds associate exactly like the original expressions).
  const auto& mos = circuit.mosfets();
  DeviceArrays& d = p.devices;
  d.count = mos.size();
  for (const auto& m : mos) {
    require(m.width > 0.0, "eval_alpha_power: width must be positive");
    d.sign.push_back(m.type == MosType::Nmos ? 1.0 : -1.0);
    d.k_sat.push_back(m.params.k_sat);
    d.width.push_back(m.width);
    d.ksw.push_back(m.params.k_sat * m.width);
    d.vth.push_back(m.params.vth);
    d.alpha.push_back(m.params.alpha);
    d.k_vdsat.push_back(m.params.k_vdsat);
    d.lambda.push_back(m.params.lambda);
    d.nvt.push_back(m.params.n_sub * constant::v_thermal_300k);
    d.gate.push_back(m.gate);
    d.drain.push_back(m.drain);
    d.source.push_back(m.source);

    const NodeId rows[6] = {m.drain, m.drain, m.drain, m.source, m.source, m.source};
    const NodeId cols[6] = {m.gate, m.drain, m.source, m.gate, m.drain, m.source};
    std::array<DevStamp, 6> st;
    for (int j = 0; j < 6; ++j) {
      const auto [slot, rhs] = classify(rows[j], cols[j]);
      st[static_cast<size_t>(j)] = {slot, rhs, cols[j]};
    }
    p.dev_stamps.push_back(st);
    p.dev_rhs_drain.push_back(p.unknown_of_node[static_cast<size_t>(m.drain)]);
    p.dev_rhs_source.push_back(p.unknown_of_node[static_cast<size_t>(m.source)]);
  }

  // Per-source element touch lists for the charge/energy tallies, in the
  // scalar engine's scan order (resistors, capacitors, MOSFETs).
  p.source_touches.resize(circuit.vsources().size());
  for (size_t si = 0; si < circuit.vsources().size(); ++si) {
    SourceTouches& t = p.source_touches[si];
    const NodeId n = circuit.vsources()[si].node;
    for (const auto& r : circuit.resistors()) {
      if (r.a == n) t.res.push_back({r.conductance, r.a, r.b});
      if (r.b == n) t.res.push_back({r.conductance, r.b, r.a});
    }
    for (size_t i = 0; i < circuit.capacitors().size(); ++i) {
      if (circuit.capacitors()[i].a == n) t.cap.push_back({static_cast<int>(i), 1.0});
      if (circuit.capacitors()[i].b == n) t.cap.push_back({static_cast<int>(i), -1.0});
    }
    for (size_t i = 0; i < mos.size(); ++i) {
      if (mos[i].drain == n) t.dev.push_back({static_cast<int>(i), 1.0});
      if (mos[i].source == n) t.dev.push_back({static_cast<int>(i), -1.0});
    }
  }

  return p;
}

}  // namespace pim
