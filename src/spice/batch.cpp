#include "spice/batch.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <optional>
#include <utility>

#include "numeric/banded.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "spice/kernels.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/strings.hpp"

namespace pim {
namespace {

// All mutable state of one lane. Lanes never read each other's state:
// the lockstep structure batches the device evaluations, not the math.
struct Lane {
  size_t index = 0;  // position in the caller's lane list

  // Resolved per-lane parameters (base plan values + LaneSpec overrides).
  std::vector<double> cap_farads;
  std::vector<double> ksw;
  std::vector<Waveform> waves;

  // Dynamic state, mirroring the scalar solver exactly.
  Vector v_node;
  std::vector<double> cap_current, cap_geq, cap_ieq;

  // Linear system: per-step base images + reusable factorization.
  std::vector<double> base_mat;
  Vector base_rhs, rhs, v_new;
  std::unique_ptr<BandedLu> band_lu;
  std::unique_ptr<Matrix> work_dense;
  LuDecomposition dense_lu;

  // Depth-0 halving snapshots (solo recursion keeps its own locals).
  Vector v_save;
  std::vector<double> cap_save;

  TransientResult result;
  std::optional<Error> error;
  bool failed = false;

  // Per-step-attempt flags.
  bool newton_active = false;
  bool converged = false;

  // Tallies, flushed once per successful lane like the scalar solver.
  // n_timesteps counts every step the result advances through (replayed
  // steady-state steps included); n_newton/n_solves count numeric work
  // actually performed.
  long n_timesteps = 0, n_newton = 0, n_solves = 0, n_retries = 0;

  // Steady-state cycle replay (docs/kernels.md). One converged per-step
  // state; `src_current` memoizes the per-source delivered current of
  // this state the first time it is replayed with source recording on.
  struct StepState {
    Vector v_node;
    std::vector<double> cap_current;
    std::vector<double> src_current;
    bool src_valid = false;
  };
  std::vector<StepState> ring;   // last few converged states, oldest first
  std::vector<StepState> cycle;  // locked replay sequence, in step order
  int cycle_phase = 0;           // next cycle entry to replay
  double inputs_const_after = 0.0;  // every wave is exactly constant beyond

  bool replaying() const { return !cycle.empty(); }

  void reset_ring() {
    ring.clear();
    cycle.clear();
    cycle_phase = 0;
  }

  void fail_lane(Error e) {
    failed = true;
    error = std::move(e);
  }
};

// Bitwise vector equality: distinguishes -0.0 from +0.0 (their trace
// bytes differ) and treats identical NaN payloads as equal, which is the
// exact induction premise of the steady-state replay.
bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

class BatchEngine {
 public:
  BatchEngine(const CompiledCircuit& plan, const TransientOptions& opt,
              const std::vector<NodeId>& probes, const BatchOptions& bopt)
      : plan_(plan), opt_(opt), probes_(probes), bopt_(bopt) {
    require(opt_.dt > 0.0 && opt_.t_stop > 0.0,
            "run_transient: dt and t_stop must be positive", ErrorCode::bad_input);
    for (NodeId p : probes_)
      require(p >= 0 && static_cast<size_t>(p) < plan_.node_count,
              "run_transient: probe is not a node of the circuit",
              ErrorCode::bad_input);
  }

  TransientBatch run(const std::vector<LaneSpec>& specs) {
    TransientBatch out;
    const size_t n = specs.size();
    out.cutoff = n;
    out.lanes.reserve(n);
    for (size_t i = 0; i < n; ++i)
      out.lanes.push_back(Error("transient batch: lane not run"));

    const size_t wave_width = std::max<size_t>(bopt_.wave_width, 1);
    for (size_t wave_start = 0; wave_start < n; wave_start += wave_width) {
      const size_t wave_end = std::min(n, wave_start + wave_width);
      if (out.stop != deadline::StopReason::none) break;

      // Admission: one deadline poll per lane, drawn under the lane's own
      // fault stream so the cutoff is a pure function of (seed, index).
      size_t admit_end = wave_end;
      if (bopt_.poll_deadline) {
        for (size_t i = wave_start; i < wave_end; ++i) {
          fault::ScopedStream stream(i);
          const deadline::StopReason reason = deadline::check();
          if (reason != deadline::StopReason::none) {
            out.stop = reason;
            out.cutoff = i;
            admit_end = i;
            break;
          }
        }
      }

      std::vector<Lane> wave;
      wave.reserve(admit_end - wave_start);
      for (size_t i = wave_start; i < admit_end; ++i) {
        wave.emplace_back();
        init_lane(wave.back(), i, specs[i]);
      }
      run_wave(wave);
      for (Lane& lane : wave) {
        if (lane.failed)
          out.lanes[lane.index] = std::move(*lane.error);
        else
          out.lanes[lane.index] = std::move(lane.result);
      }
    }

    if (out.stop != deadline::StopReason::none) {
      for (size_t i = out.cutoff; i < n; ++i)
        out.lanes[i] = deadline::stop_error(out.stop, out.cutoff, n);
      deadline::record_stop_metrics(out.cutoff);
    }
    return out;
  }

 private:
  // Resolves LaneSpec overrides onto the plan's base values. Override
  // mistakes fail only this lane, typed bad_input.
  void init_lane(Lane& lane, size_t index, const LaneSpec& spec) {
    lane.index = index;
    lane.cap_farads = plan_.cap_farads;
    lane.ksw = plan_.devices.ksw;
    lane.waves = plan_.vsource_wave;
    for (const auto& [ci, farads] : spec.cap_farads) {
      if (ci >= lane.cap_farads.size()) {
        lane.fail_lane(Error("transient batch: capacitor override index out of range",
                             ErrorCode::bad_input));
        return;
      }
      // NaN/Inf would otherwise pass through the clamp-damped Newton loop
      // as a silently "converged" poisoned state; mirror Circuit's
      // add_capacitor validation instead.
      if (!std::isfinite(farads) || farads < 0.0) {
        lane.fail_lane(Error(
            "transient batch: capacitor override must be finite and non-negative",
            ErrorCode::bad_input));
        return;
      }
      lane.cap_farads[ci] = farads;
    }
    for (const auto& [mi, width] : spec.mosfet_width) {
      if (mi >= lane.ksw.size()) {
        lane.fail_lane(Error("transient batch: mosfet override index out of range",
                             ErrorCode::bad_input));
        return;
      }
      if (!std::isfinite(width) || !(width > 0.0)) {
        lane.fail_lane(Error("eval_alpha_power: width must be positive",
                             ErrorCode::bad_input));
        return;
      }
      lane.ksw[mi] = plan_.devices.k_sat[mi] * width;
    }
    for (const auto& [si, wave] : spec.vsource_wave) {
      if (si >= lane.waves.size()) {
        lane.fail_lane(Error("transient batch: vsource override index out of range",
                             ErrorCode::bad_input));
        return;
      }
      lane.waves[si] = wave;
    }

    lane.v_node.assign(plan_.node_count, 0.0);
    lane.cap_current.assign(lane.cap_farads.size(), 0.0);
    lane.cap_geq.resize(lane.cap_farads.size());
    lane.cap_ieq.resize(lane.cap_farads.size());
    lane.base_mat.assign(plan_.matrix_slots, 0.0);
    const size_t un = static_cast<size_t>(plan_.unknown_count);
    lane.base_rhs.assign(un, 0.0);
    lane.rhs.assign(un, 0.0);
    if (plan_.unknown_count > 0) {
      if (plan_.use_banded) {
        // Assembly lands directly in the factor's storage (same
        // column-compressed layout as base_mat), so each Newton
        // iteration copies the band exactly once.
        lane.band_lu = std::make_unique<BandedLu>(plan_.matrix_rows,
                                                  plan_.bandwidth, plan_.bandwidth);
      } else {
        lane.work_dense = std::make_unique<Matrix>(plan_.matrix_rows,
                                                   plan_.matrix_rows);
      }
    }
    for (const Waveform& w : lane.waves)
      lane.inputs_const_after = std::max(lane.inputs_const_after, w.last_time());
    lane.result.sources.resize(plan_.vsource_node.size());
    for (NodeId p : probes_) lane.result.traces.push_back({p, {}});
  }

  void run_wave(std::vector<Lane>& wave) {
    if (wave.empty()) return;
    // PIM_OBS_SPAN binds its timer per call site, so each name gets one.
    if (wave.size() == 1) {
      PIM_OBS_SPAN("spice.transient.run");
      run_wave_inner(wave);
    } else {
      PIM_OBS_SPAN("spice.transient.batch");
      run_wave_inner(wave);
    }
  }

  void run_wave_inner(std::vector<Lane>& wave) {
    // Steady-state replay stays off while fault injection is armed: a
    // replayed step performs no per-step fault draw, so skipping would
    // shift every later draw in the lane's stream.
    skip_ok_ = bopt_.steady_skip && !fault::armed();

    // Settling pre-roll: backward Euler, inputs frozen at t = 0.
    if (opt_.t_settle > 0.0 && opt_.settle_steps > 0) {
      const double dts = opt_.t_settle / opt_.settle_steps;
      for (int k = 0; k < opt_.settle_steps; ++k)
        lockstep_advance(wave, 0.0, dts, Integrator::BackwardEuler, false,
                         /*inputs_const=*/true);
    }

    // Settle and main cycles never mix: the integrator, dt, and inputs
    // all change at this boundary.
    for (Lane& lane : wave) lane.reset_ring();

    // Main window.
    for (Lane& lane : wave)
      if (!lane.failed) record(lane, 0.0);
    const long steps = static_cast<long>(std::ceil(opt_.t_stop / opt_.dt - 1e-9));
    for (long k = 1; k <= steps; ++k) {
      const double t = std::min(opt_.t_stop, static_cast<double>(k) * opt_.dt);
      lockstep_advance(wave, t, opt_.dt, opt_.integrator, true,
                       /*inputs_const=*/false);
      for (Lane& lane : wave)
        if (!lane.failed) record(lane, t);
    }

    // Tally flush mirrors the scalar solver: only lanes that completed
    // count a run (a failed scalar run throws before its flush).
    for (Lane& lane : wave) {
      if (lane.failed) continue;
      PIM_COUNT("spice.transient.runs");
      PIM_COUNT_N("spice.timestep.count", lane.n_timesteps);
      PIM_COUNT_N("spice.newton.iterations", lane.n_newton);
      PIM_COUNT_N("spice.lu.solves", lane.n_solves);
      if (lane.n_retries > 0) PIM_COUNT_N("spice.newton.retries", lane.n_retries);
    }
  }

  // Depth-0 advance for the whole cohort; lanes whose lockstep attempt
  // fails fall back to the scalar halving recursion solo, reproducing the
  // original advance() sequence per lane exactly. `inputs_const` marks
  // windows (the settle pre-roll) where every wave is read at a frozen
  // time, so steady-state detection needs no per-lane settling check.
  void lockstep_advance(std::vector<Lane>& wave, double t, double dt,
                        Integrator integrator, bool record_sources,
                        bool inputs_const) {
    cohort_.clear();
    for (Lane& lane : wave) {
      if (lane.failed) continue;
      if (lane.replaying()) {
        replay_step(lane, dt, record_sources);
        continue;
      }
      lane.v_save = lane.v_node;
      lane.cap_save = lane.cap_current;
      cohort_.push_back(&lane);
    }
    if (cohort_.empty()) return;
    step_cohort(cohort_, t, dt, integrator, record_sources);

    for (Lane* lane : cohort_) {
      if (lane->failed) continue;
      if (lane->converged) {
        // A clean depth-0 step in a constant-input regime is a candidate
        // cycle state; anything else breaks the recorded sequence.
        if (skip_ok_ && (inputs_const || t >= lane->inputs_const_after))
          note_steady_state(*lane);
        else
          lane->reset_ring();
        continue;
      }
      lane->reset_ring();
      retry_halved(*lane, t, dt, integrator, record_sources, 0,
                   lane->v_save, lane->cap_save);
    }
  }

  // Steady-state cycle detection. The per-step state a lane carries into
  // the next step is exactly (v_node, cap_current); with dt, the
  // integrator, and every wave value constant, the step map is a
  // deterministic function of that state. So the moment the state
  // repeats bit-for-bit with period p, every subsequent step provably
  // reproduces the recorded cycle, and the engine replays it instead of
  // re-solving (docs/kernels.md).
  void note_steady_state(Lane& lane) {
    for (size_t p = 1; p <= lane.ring.size(); ++p) {
      Lane::StepState& past = lane.ring[lane.ring.size() - p];
      if (!bits_equal(past.v_node, lane.v_node) ||
          !bits_equal(past.cap_current, lane.cap_current))
        continue;
      // Lock the cycle: the next step reproduces the state that followed
      // `past`, so the replay sequence is the last p recorded states in
      // chronological order, ending with `past` itself (== the current
      // state).
      lane.cycle.reserve(p);
      for (size_t j = lane.ring.size() - p + 1; j < lane.ring.size(); ++j)
        lane.cycle.push_back(std::move(lane.ring[j]));
      lane.cycle.push_back(std::move(past));
      lane.cycle_phase = 0;
      lane.ring.clear();
      return;
    }
    Lane::StepState state;
    state.v_node = lane.v_node;
    state.cap_current = lane.cap_current;
    lane.ring.push_back(std::move(state));
    if (lane.ring.size() > kMaxCyclePeriod)
      lane.ring.erase(lane.ring.begin());
  }

  // One replayed step: restores the cycle state the full solve would
  // have produced and performs only the per-step bookkeeping arithmetic
  // (trace recording happens in the caller; source accumulation uses the
  // state's memoized currents through the exact accumulate_sources
  // expressions). Replayed steps count as timesteps but perform no
  // Newton iterations or solves.
  void replay_step(Lane& lane, double dt, bool record_sources) {
    Lane::StepState& s = lane.cycle[static_cast<size_t>(lane.cycle_phase)];
    lane.cycle_phase = (lane.cycle_phase + 1) % static_cast<int>(lane.cycle.size());
    lane.v_node = s.v_node;
    lane.cap_current = s.cap_current;
    ++lane.n_timesteps;
    if (!record_sources) return;
    if (!s.src_valid) {
      s.src_current.resize(plan_.source_touches.size());
      for (size_t si = 0; si < plan_.source_touches.size(); ++si)
        s.src_current[si] = source_current(lane, si);
      s.src_valid = true;
    }
    for (size_t si = 0; si < plan_.source_touches.size(); ++si) {
      const double current = s.src_current[si];
      lane.result.sources[si].charge += current * dt;
      lane.result.sources[si].energy +=
          current * lane.v_node[static_cast<size_t>(plan_.vsource_node[si])] * dt;
    }
  }

  // The failure tail of the scalar advance(): called after the depth-`depth`
  // attempt for this interval has already failed.
  void retry_halved(Lane& lane, double t, double dt, Integrator integrator,
                    bool record_sources, int depth, const Vector& v_save,
                    const std::vector<double>& cap_save) {
    if (depth >= opt_.max_step_halvings) {
      PIM_COUNT("spice.transient.error");
      lane.fail_lane(Error(
          "run_transient: Newton failed to converge at t = " + format_sig(t, 6) +
              " s (dt = " + format_sig(dt, 4) + " s, after " + std::to_string(depth) +
              " timestep halvings)",
          ErrorCode::no_convergence));
      return;
    }
    ++lane.n_retries;
    lane.v_node = v_save;
    lane.cap_current = cap_save;
    const double half = 0.5 * dt;
    solo_advance(lane, t - half, half, integrator, record_sources, depth + 1);
    if (lane.failed) return;
    solo_advance(lane, t, half, integrator, record_sources, depth + 1);
  }

  void solo_advance(Lane& lane, double t, double dt, Integrator integrator,
                    bool record_sources, int depth) {
    const Vector v_save = lane.v_node;
    const std::vector<double> cap_save = lane.cap_current;
    solo_.assign(1, &lane);
    step_cohort(solo_, t, dt, integrator, record_sources);
    if (lane.converged) return;
    retry_halved(lane, t, dt, integrator, record_sources, depth, v_save, cap_save);
  }

  // One timestep attempt for every lane in `cohort`, lockstep: shared
  // time grid, per-iteration device evaluation in one contiguous SoA
  // pass across all still-iterating lanes. Sets lane.converged.
  void step_cohort(std::vector<Lane*>& cohort, double t, double dt,
                   Integrator integrator, bool record_sources) {
    const size_t un = static_cast<size_t>(plan_.unknown_count);
    for (Lane* lp : cohort) {
      Lane& lane = *lp;
      ++lane.n_timesteps;
      // Companion constants from the previous converged state.
      for (size_t i = 0; i < lane.cap_farads.size(); ++i) {
        const double v_ab = lane.v_node[static_cast<size_t>(plan_.cap_a[i])] -
                            lane.v_node[static_cast<size_t>(plan_.cap_b[i])];
        if (integrator == Integrator::Trapezoidal) {
          lane.cap_geq[i] = 2.0 * lane.cap_farads[i] / dt;
          lane.cap_ieq[i] = lane.cap_geq[i] * v_ab + lane.cap_current[i];
        } else {
          lane.cap_geq[i] = lane.cap_farads[i] / dt;
          lane.cap_ieq[i] = lane.cap_geq[i] * v_ab;
        }
      }
      // Known voltages for this step.
      lane.v_node[0] = 0.0;
      for (size_t si = 0; si < plan_.vsource_node.size(); ++si)
        lane.v_node[static_cast<size_t>(plan_.vsource_node[si])] =
            lane.waves[si].value(t);
      // Per-step base images: resistor image + capacitor companions, and
      // the RHS contributions that are constant across Newton iterations.
      // Entry-wise this accumulates in the scalar engine's exact order
      // (resistors, then capacitors); device stamps land per iteration.
      lane.base_mat = plan_.res_matrix;
      for (const auto& op : plan_.cap_mat_ops)
        lane.base_mat[static_cast<size_t>(op.slot)] += op.sign * lane.cap_geq[op.cap];
      std::fill(lane.base_rhs.begin(), lane.base_rhs.end(), 0.0);
      for (const auto& op : plan_.res_rhs_ops)
        lane.base_rhs[static_cast<size_t>(op.rhs)] -=
            op.g * lane.v_node[static_cast<size_t>(op.node)];
      for (const auto& op : plan_.cap_rhs_ops) {
        if (op.route)
          lane.base_rhs[static_cast<size_t>(op.rhs)] -=
              (op.sign * lane.cap_geq[op.cap]) *
              lane.v_node[static_cast<size_t>(op.node)];
        else
          lane.base_rhs[static_cast<size_t>(op.rhs)] += op.sign * lane.cap_ieq[op.cap];
      }
      // Fault site: simulate a diverging Newton loop for this attempt
      // only, exercising the halving retry deterministically.
      const bool inject = fault::should_fire(fault::kNewtonDiverge);
      lane.newton_active = !inject;
      lane.converged = false;
    }

    const size_t dev_count = plan_.devices.count;
    for (int iter = 0; iter < opt_.max_newton; ++iter) {
      iterating_.clear();
      for (Lane* lp : cohort)
        if (lp->newton_active) iterating_.push_back(lp);
      if (iterating_.empty()) break;
      for (Lane* lp : iterating_) {
        ++lp->n_newton;
        ++lp->n_solves;
      }

      eval_devices(iterating_);

      for (size_t pi = 0; pi < iterating_.size(); ++pi) {
        Lane& lane = *iterating_[pi];
        const Vector* solution = nullptr;
        if (un > 0) {
          // Assemble: copy the step base, scatter this lane's device
          // stamps through the plan's precomputed slots, factor, solve.
          std::vector<double>& mat = plan_.use_banded
                                         ? lane.band_lu->values()
                                         : lane.work_dense->storage();
          mat = lane.base_mat;
          lane.rhs = lane.base_rhs;
          scatter_devices(lane, pi * dev_count);
          Expected<void> factored =
              plan_.use_banded ? lane.band_lu->refactor()
                               : lane.dense_lu.refactor(*lane.work_dense);
          if (!factored.ok()) {
            if (factored.error().code() != ErrorCode::singular_matrix) {
              lane.fail_lane(factored.error());
              lane.newton_active = false;
              continue;
            }
            // Retryable: the halved timestep rebuilds the companion
            // conductances, which re-conditions the system.
            PIM_COUNT("spice.solver.singular");
            lane.newton_active = false;
            continue;
          }
          if (plan_.use_banded) {
            lane.band_lu->solve_in_place(lane.rhs);
            solution = &lane.rhs;
          } else {
            lane.dense_lu.solve_into(lane.rhs, lane.v_new);
            solution = &lane.v_new;
          }
        }

        double worst = 0.0;
        for (size_t node = 1; node < lane.v_node.size(); ++node) {
          const int ui = plan_.unknown_of_node[node];
          if (ui < 0) continue;
          double delta = (*solution)[static_cast<size_t>(ui)] - lane.v_node[node];
          delta = std::clamp(delta, -opt_.v_step_limit, opt_.v_step_limit);
          lane.v_node[node] += delta;
          worst = std::max(worst, std::fabs(delta));
        }
        if (worst < opt_.v_tol) {
          lane.converged = true;
          lane.newton_active = false;
        }
      }
    }

    for (Lane* lp : cohort) {
      Lane& lane = *lp;
      if (!lane.converged || lane.failed) continue;
      for (size_t i = 0; i < lane.cap_farads.size(); ++i) {
        const double v_ab = lane.v_node[static_cast<size_t>(plan_.cap_a[i])] -
                            lane.v_node[static_cast<size_t>(plan_.cap_b[i])];
        lane.cap_current[i] = lane.cap_geq[i] * v_ab - lane.cap_ieq[i];
      }
      if (record_sources) accumulate_sources(lane, dt);
    }
  }

  // One contiguous SoA pass over all devices of all still-iterating
  // lanes. A single-lane cohort points the kernel straight at the plan's
  // parameter arrays (no tiling) — the common case for large sign-off
  // decks; multi-lane cohorts tile parameters per lane.
  void eval_devices(std::vector<Lane*>& lanes) {
    const DeviceArrays& d = plan_.devices;
    const size_t dn = d.count;
    const size_t total = dn * lanes.size();
    vg_.resize(total);
    vd_.resize(total);
    vs_.resize(total);
    out_id_.resize(total);
    out_dg_.resize(total);
    out_dd_.resize(total);
    out_ds_.resize(total);
    for (size_t pi = 0; pi < lanes.size(); ++pi) {
      const Vector& v = lanes[pi]->v_node;
      const size_t off = pi * dn;
      for (size_t i = 0; i < dn; ++i) {
        vg_[off + i] = v[static_cast<size_t>(d.gate[i])];
        vd_[off + i] = v[static_cast<size_t>(d.drain[i])];
        vs_[off + i] = v[static_cast<size_t>(d.source[i])];
      }
    }
    if (total == 0) return;
    if (lanes.size() == 1) {
      kernels::eval_alpha_power_batch(
          dn, d.sign.data(), lanes[0]->ksw.data(), d.vth.data(), d.alpha.data(),
          d.k_vdsat.data(), d.lambda.data(), d.nvt.data(), vg_.data(), vd_.data(),
          vs_.data(), out_id_.data(), out_dg_.data(), out_dd_.data(),
          out_ds_.data());
      return;
    }
    tile_sign_.resize(total);
    tile_ksw_.resize(total);
    tile_vth_.resize(total);
    tile_alpha_.resize(total);
    tile_kvdsat_.resize(total);
    tile_lambda_.resize(total);
    tile_nvt_.resize(total);
    for (size_t pi = 0; pi < lanes.size(); ++pi) {
      const size_t off = pi * dn;
      std::copy(d.sign.begin(), d.sign.end(), tile_sign_.begin() + off);
      std::copy(lanes[pi]->ksw.begin(), lanes[pi]->ksw.end(), tile_ksw_.begin() + off);
      std::copy(d.vth.begin(), d.vth.end(), tile_vth_.begin() + off);
      std::copy(d.alpha.begin(), d.alpha.end(), tile_alpha_.begin() + off);
      std::copy(d.k_vdsat.begin(), d.k_vdsat.end(), tile_kvdsat_.begin() + off);
      std::copy(d.lambda.begin(), d.lambda.end(), tile_lambda_.begin() + off);
      std::copy(d.nvt.begin(), d.nvt.end(), tile_nvt_.begin() + off);
    }
    kernels::eval_alpha_power_batch(
        total, tile_sign_.data(), tile_ksw_.data(), tile_vth_.data(),
        tile_alpha_.data(), tile_kvdsat_.data(), tile_lambda_.data(),
        tile_nvt_.data(), vg_.data(), vd_.data(), vs_.data(), out_id_.data(),
        out_dg_.data(), out_dd_.data(), out_ds_.data());
  }

  // Scatters one lane's device linearizations into its matrix and RHS,
  // preserving the scalar engine's per-device emission order.
  void scatter_devices(Lane& lane, size_t off) {
    std::vector<double>& mat = plan_.use_banded ? lane.band_lu->values()
                                                : lane.work_dense->storage();
    const size_t dn = plan_.devices.count;
    for (size_t i = 0; i < dn; ++i) {
      const double dg = out_dg_[off + i];
      const double dd = out_dd_[off + i];
      const double ds = out_ds_[off + i];
      const double vals[6] = {dg, dd, ds, -dg, -dd, -ds};
      const auto& stamps = plan_.dev_stamps[i];
      for (int j = 0; j < 6; ++j) {
        const auto& st = stamps[static_cast<size_t>(j)];
        if (st.slot >= 0)
          mat[static_cast<size_t>(st.slot)] += vals[j];
        else if (st.rhs >= 0)
          lane.rhs[static_cast<size_t>(st.rhs)] -=
              vals[j] * lane.v_node[static_cast<size_t>(st.node)];
      }
      const double vg = vg_[off + i];
      const double vd = vd_[off + i];
      const double vs = vs_[off + i];
      const double i_eq =
          out_id_[off + i] - dg * vg - dd * vd - ds * vs;
      if (plan_.dev_rhs_drain[i] >= 0)
        lane.rhs[static_cast<size_t>(plan_.dev_rhs_drain[i])] += -i_eq;
      if (plan_.dev_rhs_source[i] >= 0)
        lane.rhs[static_cast<size_t>(plan_.dev_rhs_source[i])] += i_eq;
    }
  }

  // One source's delivered current from the lane's current state, via
  // the plan's precomputed touch lists (same element scan order and
  // arithmetic as the scalar accumulate_sources()).
  double source_current(const Lane& lane, size_t si) const {
    const DeviceArrays& d = plan_.devices;
    const auto& touches = plan_.source_touches[si];
    double current = 0.0;
    for (const auto& rt : touches.res)
      current += rt.g * (lane.v_node[static_cast<size_t>(rt.hi)] -
                         lane.v_node[static_cast<size_t>(rt.lo)]);
    for (const auto& ct : touches.cap)
      current += ct.sign * lane.cap_current[static_cast<size_t>(ct.cap)];
    for (const auto& dv : touches.dev) {
      const size_t i = static_cast<size_t>(dv.dev);
      double i_d, dg, dd, ds;
      kernels::eval_branch_folded(
          d.sign[i], lane.ksw[i], d.vth[i], d.alpha[i], d.k_vdsat[i],
          d.lambda[i], d.nvt[i], lane.v_node[static_cast<size_t>(d.gate[i])],
          lane.v_node[static_cast<size_t>(d.drain[i])],
          lane.v_node[static_cast<size_t>(d.source[i])], i_d, dg, dd, ds);
      current += dv.sign * i_d;
    }
    return current;
  }

  // Per-source delivered current integrated into charge and energy.
  void accumulate_sources(Lane& lane, double dt) {
    for (size_t si = 0; si < plan_.source_touches.size(); ++si) {
      const double current = source_current(lane, si);
      lane.result.sources[si].charge += current * dt;
      lane.result.sources[si].energy +=
          current * lane.v_node[static_cast<size_t>(plan_.vsource_node[si])] * dt;
    }
  }

  void record(Lane& lane, double t) {
    lane.result.time.push_back(t);
    for (auto& trace : lane.result.traces)
      trace.values.push_back(lane.v_node[static_cast<size_t>(trace.node)]);
  }

  // Longest state-repeat period the steady-state detector recognizes.
  // Converged tails settle either to a true fixed point (period 1) or to
  // a tiny last-ulp limit cycle; period 3 is the longest observed, so 4
  // leaves margin while keeping the per-step comparison trivial.
  static constexpr size_t kMaxCyclePeriod = 4;

  const CompiledCircuit& plan_;
  TransientOptions opt_;
  const std::vector<NodeId>& probes_;
  BatchOptions bopt_;
  bool skip_ok_ = false;

  // Engine scratch (reused across steps/iterations; no per-solve allocs).
  std::vector<Lane*> cohort_, solo_, iterating_;
  std::vector<double> vg_, vd_, vs_, out_id_, out_dg_, out_dd_, out_ds_;
  std::vector<double> tile_sign_, tile_ksw_, tile_vth_, tile_alpha_,
      tile_kvdsat_, tile_lambda_, tile_nvt_;
};

}  // namespace

TransientBatch run_transient_batch(const CompiledCircuit& plan,
                                   const TransientOptions& options,
                                   const std::vector<NodeId>& probes,
                                   const std::vector<LaneSpec>& lanes,
                                   const BatchOptions& batch_options) {
  return BatchEngine(plan, options, probes, batch_options).run(lanes);
}

TransientResult run_transient(const Circuit& circuit, const TransientOptions& options,
                              const std::vector<NodeId>& probes) {
  const CompiledCircuit plan = CompiledCircuit::compile(circuit, options.band_threshold);
  TransientBatch batch = run_transient_batch(plan, options, probes, {LaneSpec{}});
  return std::move(batch.lanes[0]).take();
}

Expected<TransientResult> try_run_transient(const Circuit& circuit,
                                            const TransientOptions& options,
                                            const std::vector<NodeId>& probes) {
  try {
    return run_transient(circuit, options, probes);
  } catch (const Error& e) {
    return e;
  }
}

}  // namespace pim
