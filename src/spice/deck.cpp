#include "spice/deck.hpp"

#include <cctype>
#include <map>
#include <tuple>
#include <sstream>
#include <fstream>

#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/strings.hpp"

namespace pim {
namespace {

// Model-card key for deduplication.
struct ModelKey {
  MosType type;
  MosfetParams p;

  bool operator<(const ModelKey& o) const {
    auto tie = [](const ModelKey& k) {
      return std::tuple(k.type == MosType::Nmos ? 0 : 1, k.p.vth, k.p.k_sat, k.p.alpha,
                        k.p.k_vdsat, k.p.lambda, k.p.n_sub, k.p.c_gate, k.p.c_drain);
    };
    return tie(*this) < tie(o);
  }
};

std::string fmt(double v) { return format_sig(v, 17); }

}  // namespace

std::string write_deck(const Circuit& circuit) {
  std::ostringstream os;
  os << "* pim spice deck\n";

  // Model cards, deduplicated across devices.
  std::map<ModelKey, std::string> models;
  for (const Mosfet& m : circuit.mosfets()) {
    const ModelKey key{m.type, m.params};
    if (models.count(key)) continue;
    const std::string name = "m" + std::to_string(models.size());
    models.emplace(key, name);
  }
  for (const auto& [key, name] : models) {
    os << ".model " << name << " alpha_power type="
       << (key.type == MosType::Nmos ? "nmos" : "pmos") << " vth=" << fmt(key.p.vth)
       << " k_sat=" << fmt(key.p.k_sat) << " alpha=" << fmt(key.p.alpha)
       << " k_vdsat=" << fmt(key.p.k_vdsat) << " lambda=" << fmt(key.p.lambda)
       << " n_sub=" << fmt(key.p.n_sub) << " c_gate=" << fmt(key.p.c_gate)
       << " c_drain=" << fmt(key.p.c_drain) << "\n";
  }

  auto node = [&](NodeId n) { return circuit.node_name(n); };

  int counter = 0;
  for (const VoltageSource& v : circuit.vsources()) {
    os << 'V' << ++counter << ' ' << node(v.node) << " 0 ";
    const auto& times = v.wave.times();
    const auto& values = v.wave.values();
    if (times.size() == 1) {
      os << "DC " << fmt(values[0]);
    } else {
      os << "PWL(";
      for (size_t i = 0; i < times.size(); ++i) {
        if (i) os << ' ';
        os << fmt(times[i]) << ' ' << fmt(values[i]);
      }
      os << ')';
    }
    os << "\n";
  }
  counter = 0;
  for (const Resistor& r : circuit.resistors())
    os << 'R' << ++counter << ' ' << node(r.a) << ' ' << node(r.b) << ' '
       << fmt(1.0 / r.conductance) << "\n";
  counter = 0;
  for (const Capacitor& c : circuit.capacitors())
    os << 'C' << ++counter << ' ' << node(c.a) << ' ' << node(c.b) << ' ' << fmt(c.farads)
       << "\n";
  counter = 0;
  for (const Mosfet& m : circuit.mosfets())
    os << 'M' << ++counter << ' ' << node(m.drain) << ' ' << node(m.gate) << ' '
       << node(m.source) << ' ' << models.at({m.type, m.params}) << " w=" << fmt(m.width)
       << "\n";

  os << ".end\n";
  return os.str();
}

namespace {

class DeckParser {
 public:
  explicit DeckParser(const std::string& text) : input_(text) {}

  Circuit parse() {
    // Fault site: simulate a corrupt deck reaching the parser.
    if (fault::should_fire(fault::kDeckParse))
      fail("deck: injected parse fault", ErrorCode::io_parse);
    std::istringstream is(input_);
    std::string line;
    bool ended = false;
    while (std::getline(is, line)) {
      ++lineno_;
      const std::string_view t = trim(line);
      if (t.empty() || t[0] == '*') continue;
      require(!ended, err("content after .end"), ErrorCode::io_parse);
      if (starts_with(t, ".model")) {
        parse_model(t);
      } else if (t == ".end") {
        ended = true;
      } else {
        switch (std::toupper(static_cast<unsigned char>(t[0]))) {
          case 'V': parse_vsource(t); break;
          case 'R': parse_resistor(t); break;
          case 'C': parse_capacitor(t); break;
          case 'M': parse_mosfet(t); break;
          default: fail(err("unknown card '" + std::string(t) + "'"), ErrorCode::io_parse);
        }
      }
    }
    require(ended, "deck: missing .end", ErrorCode::io_parse);
    return std::move(circuit_);
  }

 private:
  std::string err(const std::string& msg) const {
    return "deck: line " + std::to_string(lineno_) + ": " + msg;
  }

  NodeId node(const std::string& name) {
    if (name == "0") return circuit_.ground();
    const auto it = nodes_.find(name);
    if (it != nodes_.end()) return it->second;
    const NodeId id = circuit_.add_node(name);
    nodes_.emplace(name, id);
    return id;
  }

  // key=value pairs after a fixed token prefix.
  static std::map<std::string, std::string> keyvals(
      const std::vector<std::string>& tokens, size_t from) {
    std::map<std::string, std::string> out;
    for (size_t i = from; i < tokens.size(); ++i) {
      const size_t eq = tokens[i].find('=');
      require(eq != std::string::npos, "deck: expected key=value, got '" + tokens[i] + "'",
              ErrorCode::io_parse);
      out[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
    }
    return out;
  }

  void parse_model(std::string_view line) {
    const auto tokens = split_whitespace(line);
    require(tokens.size() >= 3 && tokens[2] == "alpha_power",
            err("expected '.model <name> alpha_power key=value...'"), ErrorCode::io_parse);
    const auto kv = keyvals(tokens, 3);
    auto need = [&](const char* key) {
      const auto it = kv.find(key);
      require(it != kv.end(), err(std::string("model missing '") + key + "'"),
              ErrorCode::io_parse);
      return it->second;
    };
    MosType type;
    const std::string t = need("type");
    if (t == "nmos") {
      type = MosType::Nmos;
    } else if (t == "pmos") {
      type = MosType::Pmos;
    } else {
      fail(err("model type must be nmos or pmos"), ErrorCode::io_parse);
    }
    MosfetParams p;
    p.vth = parse_double(need("vth"));
    p.k_sat = parse_double(need("k_sat"));
    p.alpha = parse_double(need("alpha"));
    p.k_vdsat = parse_double(need("k_vdsat"));
    p.lambda = parse_double(need("lambda"));
    p.n_sub = parse_double(need("n_sub"));
    p.c_gate = parse_double(need("c_gate"));
    p.c_drain = parse_double(need("c_drain"));
    require(models_.emplace(tokens[1], std::pair{type, p}).second,
            err("duplicate model '" + tokens[1] + "'"), ErrorCode::io_parse);
  }

  void parse_vsource(std::string_view line) {
    const auto tokens = split_whitespace(line);
    require(tokens.size() >= 4, err("V card needs node, 0, and a waveform"),
            ErrorCode::io_parse);
    require(tokens[2] == "0", err("voltage sources must be grounded"), ErrorCode::io_parse);
    const NodeId n = node(tokens[1]);
    if (tokens[3] == "DC") {
      require(tokens.size() == 5, err("DC takes one value"), ErrorCode::io_parse);
      circuit_.add_vsource(n, Waveform::dc(parse_double(tokens[4])));
      return;
    }
    // PWL( t0 v0 t1 v1 ... ) — reassemble and split on parens.
    std::string rest;
    for (size_t i = 3; i < tokens.size(); ++i) rest += tokens[i] + " ";
    const size_t open = rest.find('(');
    const size_t close = rest.rfind(')');
    require(starts_with(trim(rest), "PWL") && open != std::string::npos &&
                close != std::string::npos && close > open,
            err("expected PWL(t v ...)"), ErrorCode::io_parse);
    const auto nums = split_whitespace(rest.substr(open + 1, close - open - 1));
    require(nums.size() >= 2 && nums.size() % 2 == 0, err("PWL needs (t v) pairs"),
            ErrorCode::io_parse);
    std::vector<double> times, values;
    for (size_t i = 0; i < nums.size(); i += 2) {
      times.push_back(parse_double(nums[i]));
      values.push_back(parse_double(nums[i + 1]));
    }
    circuit_.add_vsource(n, Waveform::pwl(std::move(times), std::move(values)));
  }

  void parse_resistor(std::string_view line) {
    const auto tokens = split_whitespace(line);
    require(tokens.size() == 4, err("R card: R<k> a b ohms"), ErrorCode::io_parse);
    circuit_.add_resistor(node(tokens[1]), node(tokens[2]), parse_double(tokens[3]));
  }

  void parse_capacitor(std::string_view line) {
    const auto tokens = split_whitespace(line);
    require(tokens.size() == 4, err("C card: C<k> a b farads"), ErrorCode::io_parse);
    circuit_.add_capacitor(node(tokens[1]), node(tokens[2]), parse_double(tokens[3]));
  }

  void parse_mosfet(std::string_view line) {
    const auto tokens = split_whitespace(line);
    require(tokens.size() == 6, err("M card: M<k> d g s model w=<meters>"),
            ErrorCode::io_parse);
    const auto it = models_.find(tokens[4]);
    require(it != models_.end(), err("unknown model '" + tokens[4] + "'"),
            ErrorCode::io_parse);
    const auto kv = keyvals(tokens, 5);
    const auto w = kv.find("w");
    require(w != kv.end(), err("M card missing w="), ErrorCode::io_parse);
    circuit_.add_mosfet(it->second.first, it->second.second, parse_double(w->second),
                        node(tokens[2]), node(tokens[1]), node(tokens[3]));
  }

  const std::string& input_;
  Circuit circuit_;
  std::map<std::string, NodeId> nodes_;
  std::map<std::string, std::pair<MosType, MosfetParams>> models_;
  int lineno_ = 0;
};

}  // namespace

Circuit parse_deck(const std::string& text) { return DeckParser(text).parse(); }

void save_deck(const Circuit& circuit, const std::string& path) {
  // The injected failure must precede the ofstream: a real open failure
  // leaves the target untouched, so the fault may not truncate it either.
  require(!fault::should_fire(fault::kIoOpen),
          "save_deck: cannot open '" + path + "'", ErrorCode::io_parse);
  std::ofstream out(path);
  require(out.good(), "save_deck: cannot open '" + path + "'",
          ErrorCode::io_parse);
  out << write_deck(circuit);
  require(out.good(), "save_deck: write failed", ErrorCode::io_parse);
}

Circuit load_deck(const std::string& path) {
  std::ifstream in(path);
  require(in.good() && !fault::should_fire(fault::kIoOpen),
          "load_deck: cannot open '" + path + "'", ErrorCode::io_parse);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_deck(buffer.str());
}

}  // namespace pim
