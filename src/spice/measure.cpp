#include "spice/measure.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pim {

double crossing_time(const std::vector<double>& time, const std::vector<double>& values,
                     double level, EdgeKind edge) {
  require(time.size() == values.size(), "crossing_time: size mismatch",
          ErrorCode::bad_input);
  require(time.size() >= 2, "crossing_time: need at least two samples",
          ErrorCode::bad_input);
  require(std::isfinite(level), "crossing_time: level must be finite",
          ErrorCode::bad_input);
  // NaN guard at the stage boundary: a non-finite sample means the solver
  // upstream diverged; surface it as a typed error instead of letting the
  // NaN propagate silently into downstream fits (NaN comparisons are all
  // false, so the scan below would report "never crosses").
  require(std::isfinite(values[0]), "crossing_time: non-finite sample at index 0",
          ErrorCode::bad_input);
  for (size_t i = 1; i < values.size(); ++i) {
    const double a = values[i - 1];
    const double b = values[i];
    require(std::isfinite(b),
            "crossing_time: non-finite sample at index " + std::to_string(i),
            ErrorCode::bad_input);
    const bool crosses = (edge == EdgeKind::Rising) ? (a < level && b >= level)
                                                    : (a > level && b <= level);
    if (!crosses) continue;
    const double f = (level - a) / (b - a);
    return time[i - 1] + f * (time[i] - time[i - 1]);
  }
  fail("crossing_time: waveform never crosses the level", ErrorCode::no_convergence);
}

double delay_50(const std::vector<double>& time, const std::vector<double>& input,
                EdgeKind input_edge, const std::vector<double>& output,
                EdgeKind output_edge, double swing) {
  require(swing > 0.0 && std::isfinite(swing), "delay_50: swing must be positive and finite",
          ErrorCode::bad_input);
  const double t_in = crossing_time(time, input, 0.5 * swing, input_edge);
  const double t_out = crossing_time(time, output, 0.5 * swing, output_edge);
  return t_out - t_in;
}

double measure_slew(const std::vector<double>& time, const std::vector<double>& values,
                    EdgeKind edge, double swing) {
  require(swing > 0.0 && std::isfinite(swing),
          "measure_slew: swing must be positive and finite", ErrorCode::bad_input);
  const double lo = 0.2 * swing;
  const double hi = 0.8 * swing;
  double t_lo, t_hi;
  if (edge == EdgeKind::Rising) {
    t_lo = crossing_time(time, values, lo, EdgeKind::Rising);
    t_hi = crossing_time(time, values, hi, EdgeKind::Rising);
  } else {
    t_hi = crossing_time(time, values, hi, EdgeKind::Falling);
    t_lo = crossing_time(time, values, lo, EdgeKind::Falling);
  }
  return std::fabs(t_hi - t_lo) / 0.6;
}

}  // namespace pim
