#include "spice/measure.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pim {

double crossing_time(const std::vector<double>& time, const std::vector<double>& values,
                     double level, EdgeKind edge) {
  require(time.size() == values.size(), "crossing_time: size mismatch");
  require(time.size() >= 2, "crossing_time: need at least two samples");
  for (size_t i = 1; i < values.size(); ++i) {
    const double a = values[i - 1];
    const double b = values[i];
    const bool crosses = (edge == EdgeKind::Rising) ? (a < level && b >= level)
                                                    : (a > level && b <= level);
    if (!crosses) continue;
    const double f = (level - a) / (b - a);
    return time[i - 1] + f * (time[i] - time[i - 1]);
  }
  fail("crossing_time: waveform never crosses the level");
}

double delay_50(const std::vector<double>& time, const std::vector<double>& input,
                EdgeKind input_edge, const std::vector<double>& output,
                EdgeKind output_edge, double swing) {
  require(swing > 0.0, "delay_50: swing must be positive");
  const double t_in = crossing_time(time, input, 0.5 * swing, input_edge);
  const double t_out = crossing_time(time, output, 0.5 * swing, output_edge);
  return t_out - t_in;
}

double measure_slew(const std::vector<double>& time, const std::vector<double>& values,
                    EdgeKind edge, double swing) {
  require(swing > 0.0, "measure_slew: swing must be positive");
  const double lo = 0.2 * swing;
  const double hi = 0.8 * swing;
  double t_lo, t_hi;
  if (edge == EdgeKind::Rising) {
    t_lo = crossing_time(time, values, lo, EdgeKind::Rising);
    t_hi = crossing_time(time, values, hi, EdgeKind::Rising);
  } else {
    t_hi = crossing_time(time, values, hi, EdgeKind::Falling);
    t_lo = crossing_time(time, values, lo, EdgeKind::Falling);
  }
  return std::fabs(t_hi - t_lo) / 0.6;
}

}  // namespace pim
