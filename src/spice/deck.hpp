// SPICE-deck text format for pim netlists.
//
// A classic deck subset: comment lines (*), `.model` cards for the
// alpha-power MOSFET parameters, element cards (R/C/V/M), and `.end`.
// Write + parse round-trips every circuit the library builds, so golden
// netlists can be inspected, archived, or replayed:
//
//   * pim spice deck
//   .model nm0 alpha_power type=nmos vth=0.3 k_sat=1050 ...
//   V1 vdd 0 DC 1
//   V2 in 0 PWL(0 0 2e-11 0 1.2e-10 1)
//   R1 in n3 250
//   C1 n3 0 2e-14
//   M1 out in 0 nm0 w=2.6e-06
//   .end
//
// Voltage sources are grounded (the only kind the engine supports); PWL
// breakpoints reproduce the waveform exactly.
#pragma once

#include <string>

#include "spice/circuit.hpp"

namespace pim {

/// Serializes the circuit as a SPICE-like deck.
std::string write_deck(const Circuit& circuit);

/// Parses a deck produced by write_deck (or hand-written in the same
/// subset); throws pim::Error with a line number on malformed input.
Circuit parse_deck(const std::string& text);

/// File convenience wrappers.
void save_deck(const Circuit& circuit, const std::string& path);
Circuit load_deck(const std::string& path);

}  // namespace pim
