// Lockstep batched transient engine.
//
// run_transient_batch() runs N parameter-perturbed lanes (variants) of
// the same compiled deck in lockstep: all lanes share one read-only
// CompiledCircuit, advance through the same time grid together, and the
// per-iteration device evaluations of every in-flight lane are gathered
// into one contiguous structure-of-arrays pass over
// kernels::eval_alpha_power_batch. Each lane keeps its own voltages,
// companion state, matrix, and reusable LU factorization, so lanes are
// numerically independent: a lane that fails (Newton divergence, NaN
// poisoning, singular system) carries a typed error while its siblings
// run to completion.
//
// Determinism contract (docs/kernels.md): a single nominal lane is
// bit-identical to the original scalar solver (run_transient_reference),
// and every lane is bit-identical to a scalar run of the same perturbed
// circuit — lane results never depend on batch composition, wave width,
// or thread count. Deadline polling is opt-in and follows the exec
// engine's prefix-cutoff rule per lane: completed lanes are exactly
// [0, cutoff), and the fault sites behind deadline::check() are drawn
// under per-lane ScopedStream(index), making the cutoff index-pure.
#pragma once

#include <vector>

#include "deadline/deadline.hpp"
#include "spice/plan.hpp"
#include "spice/transient.hpp"
#include "util/expected.hpp"

namespace pim {

/// One lane = the compiled base deck plus value overrides. Indices refer
/// to the netlist's element creation order (the plan preserves it).
/// Widths must stay positive; a lane with an out-of-range index or a
/// non-positive width fails typed (bad_input) without touching siblings.
struct LaneSpec {
  std::vector<std::pair<size_t, double>> cap_farads;     ///< capacitor index -> F
  std::vector<std::pair<size_t, double>> mosfet_width;   ///< mosfet index -> m
  std::vector<std::pair<size_t, Waveform>> vsource_wave; ///< vsource index -> wave
};

struct BatchOptions {
  /// Lanes per lockstep cohort. Bounds the engine's working set and sets
  /// the granularity of wall-clock deadline polls; has no effect on any
  /// lane's numeric result.
  size_t wave_width = 8;
  /// When set, one deadline::check() per lane at wave admission (under
  /// fault::ScopedStream(lane index)). Off by default so plain
  /// run_transient and exec-driven callers keep their existing draw
  /// patterns — the exec engine already polls once per item.
  bool poll_deadline = false;
  /// Steady-state cycle replay (docs/kernels.md): once a lane's converged
  /// per-step state repeats bit-exactly with a short period and every
  /// source waveform is past its final breakpoint, the remaining steps
  /// provably repeat that cycle, so the engine replays the recorded
  /// states instead of re-solving them. Results are bit-identical either
  /// way (the replay condition is exact state equality); the toggle
  /// exists for A/B tests and benchmarks. Automatically disabled while
  /// the fault-injection harness is armed, which keeps per-step fault
  /// draw sequences intact.
  bool steady_skip = true;
};

/// Batch outcome. `lanes[i]` holds lane i's result or typed error; on an
/// early stop, lanes [cutoff, n) hold the stop error and `completed`
/// lanes are exactly [0, cutoff) — the prefix-cutoff contract.
struct TransientBatch {
  std::vector<Expected<TransientResult>> lanes;
  deadline::StopReason stop = deadline::StopReason::none;
  size_t cutoff = 0;  ///< lanes.size() when the batch ran to completion

  bool truncated() const { return stop != deadline::StopReason::none; }
};

TransientBatch run_transient_batch(const CompiledCircuit& plan,
                                   const TransientOptions& options,
                                   const std::vector<NodeId>& probes,
                                   const std::vector<LaneSpec>& lanes,
                                   const BatchOptions& batch_options = {});

}  // namespace pim
