#include "spice/kernels.hpp"

namespace pim::kernels {

// The SoA sweep. Under PIM_SIMD the pointers are restrict-qualified and
// the loop carries an ivdep hint so the compiler may vectorize the
// independent per-device evaluations; the arithmetic is the same inline
// function either way, so the bits do not change (strict IEEE build).
#if defined(PIM_SIMD)
#define PIM_KERNEL_RESTRICT __restrict__
#else
#define PIM_KERNEL_RESTRICT
#endif

void eval_alpha_power_batch(size_t count, const double* PIM_KERNEL_RESTRICT sign,
                            const double* PIM_KERNEL_RESTRICT ksw,
                            const double* PIM_KERNEL_RESTRICT vth,
                            const double* PIM_KERNEL_RESTRICT alpha,
                            const double* PIM_KERNEL_RESTRICT k_vdsat,
                            const double* PIM_KERNEL_RESTRICT lambda,
                            const double* PIM_KERNEL_RESTRICT nvt,
                            const double* PIM_KERNEL_RESTRICT vg,
                            const double* PIM_KERNEL_RESTRICT vd,
                            const double* PIM_KERNEL_RESTRICT vs,
                            double* PIM_KERNEL_RESTRICT i_d,
                            double* PIM_KERNEL_RESTRICT di_dvg,
                            double* PIM_KERNEL_RESTRICT di_dvd,
                            double* PIM_KERNEL_RESTRICT di_dvs) {
#if defined(PIM_SIMD) && defined(__GNUC__)
#pragma GCC ivdep
#endif
  for (size_t i = 0; i < count; ++i) {
    eval_branch_folded(sign[i], ksw[i], vth[i], alpha[i], k_vdsat[i], lambda[i],
                       nvt[i], vg[i], vd[i], vs[i], i_d[i], di_dvg[i], di_dvd[i],
                       di_dvs[i]);
  }
}

#undef PIM_KERNEL_RESTRICT

}  // namespace pim::kernels
