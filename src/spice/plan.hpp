// Compile-once execution plan for the batched transient engine.
//
// A Circuit is compiled exactly once per topology into flat
// structure-of-arrays device data (DeviceArrays: folded alpha-power
// parameters per MOSFET) and a StampPlan (per-terminal unknown indices
// and precomputed matrix slots / RHS routes for every conductance stamp).
// The batch engine (spice/batch.hpp) then re-stamps values through the
// plan every Newton iteration without touching the netlist again, and
// many parameter-perturbed lanes of the same deck share one plan
// read-only — the plan is immutable after compile() and safe to share
// across threads.
//
// Bit-identity contract: the op streams below preserve the scalar
// engine's stamp emission order exactly (resistors, then capacitors,
// then MOSFETs, each in netlist creation order), so every matrix entry
// and RHS slot accumulates its contributions in the same floating-point
// order as transient.cpp's assemble() and produces the same bits.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "spice/circuit.hpp"

namespace pim {

/// Flat per-device alpha-power parameters (see spice/kernels.hpp for the
/// folded forms) plus terminal node ids, in netlist order.
struct DeviceArrays {
  size_t count = 0;
  std::vector<double> sign;     ///< +1 NMOS, -1 PMOS
  std::vector<double> ksw;      ///< k_sat * width (nominal width)
  std::vector<double> k_sat;    ///< unfolded, for per-lane width overrides
  std::vector<double> width;    ///< nominal width [m]
  std::vector<double> vth, alpha, k_vdsat, lambda, nvt;
  std::vector<NodeId> gate, drain, source;
};

/// Everything the engine needs to stamp and solve one topology.
struct CompiledCircuit {
  /// Compiles `circuit`. The circuit is copied from — no reference is
  /// retained. `band_threshold` picks banded vs dense storage exactly
  /// like TransientOptions::band_threshold does for the scalar engine.
  static CompiledCircuit compile(const Circuit& circuit, size_t band_threshold);

  // --- indexing (identical to the scalar engine's index_nodes()) ---
  size_t node_count = 0;
  int unknown_count = 0;
  std::vector<int> unknown_of_node;  ///< -1 for ground / source nodes

  // --- voltage sources, in declaration order ---
  std::vector<NodeId> vsource_node;
  std::vector<Waveform> vsource_wave;  ///< nominal waveforms (lane-overridable)

  // --- matrix geometry ---
  size_t bandwidth = 0;
  bool use_banded = true;
  size_t matrix_rows = 0;   ///< max(unknown_count, 1) like the scalar engine
  size_t matrix_slots = 0;  ///< band storage size, or rows*rows when dense

  // --- resistors: static matrix image + per-step RHS routes ---
  /// Resistor conductances accumulated once, in stamp order; each step's
  /// base matrix starts as a copy of this image.
  std::vector<double> res_matrix;
  struct ResRhsOp {
    int rhs;      ///< RHS row
    NodeId node;  ///< known-voltage column: rhs[r] -= g * v[node]
    double g;
  };
  std::vector<ResRhsOp> res_rhs_ops;

  // --- capacitors: companion stamps keyed by per-step geq/ieq ---
  std::vector<double> cap_farads;  ///< nominal values (lane-overridable)
  std::vector<NodeId> cap_a, cap_b;
  struct CapMatOp {
    int slot;     ///< matrix[slot] += sign * geq[cap]
    double sign;  ///< +1 diagonal, -1 off-diagonal
    int cap;
  };
  std::vector<CapMatOp> cap_mat_ops;
  /// One ordered stream for all capacitor RHS contributions, preserving
  /// the scalar per-element emission order (known-column stamp routes
  /// before the two companion-current injections of the same element).
  struct CapRhsOp {
    int rhs;
    int cap;
    double sign;
    NodeId node;  ///< valid when route
    bool route;   ///< true: rhs[r] -= sign * geq * v[node]; else rhs[r] += sign * ieq
  };
  std::vector<CapRhsOp> cap_rhs_ops;

  // --- MOSFETs ---
  DeviceArrays devices;
  /// Where each of the six Jacobian stamps of a device lands. Stamp j
  /// carries value sj * dj with sj = {+1,+1,+1,-1,-1,-1} and dj =
  /// {di_dvg, di_dvd, di_dvs} x {drain row, source row}. slot >= 0:
  /// matrix add; else rhs >= 0: rhs[r] -= value * v[node]; else skipped.
  struct DevStamp {
    int slot = -1;
    int rhs = -1;
    NodeId node = 0;
  };
  std::vector<std::array<DevStamp, 6>> dev_stamps;
  /// Norton-current injections: rhs[r] -= i_eq at the drain, += at the
  /// source; -1 when the row is a known node.
  std::vector<int> dev_rhs_drain, dev_rhs_source;

  // --- per-source current tallies (accumulate_sources), in scan order ---
  struct SourceTouches {
    struct Res { double g; NodeId hi, lo; };       ///< += g * (v[hi] - v[lo])
    struct Cap { int cap; double sign; };          ///< += sign * cap_current
    struct Dev { int dev; double sign; };          ///< += sign * i_d
    std::vector<Res> res;
    std::vector<Cap> cap;
    std::vector<Dev> dev;
  };
  std::vector<SourceTouches> source_touches;

  /// Storage slot of matrix entry (r, c): band-compressed when banded,
  /// row-major otherwise. Both r and c must be unknowns inside the band.
  int slot_of(int r, int c) const {
    if (use_banded)
      return static_cast<int>(
          (static_cast<long>(bandwidth) + r - c) * static_cast<long>(matrix_rows) + c);
    return static_cast<int>(static_cast<long>(r) * static_cast<long>(matrix_rows) + c);
  }
};

}  // namespace pim
