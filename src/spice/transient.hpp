// Fixed-step transient analysis with Newton iteration.
//
// Modified nodal analysis where voltage-source nodes are eliminated
// (their voltages are known at every time point), capacitors become
// trapezoidal (or backward-Euler) companion models, and MOSFETs are
// Newton-linearized each iteration. The linear system is solved with a
// banded LU when the netlist's node numbering yields a narrow band —
// which buffered-interconnect netlists built along the wire always do —
// and a dense LU otherwise.
//
// A backward-Euler settling phase (inputs frozen at t = 0) runs before
// the main window so the circuit starts from its DC operating point; this
// replaces a separate DC solver and is unconditionally robust for the
// RC + CMOS circuits this library builds.
#pragma once

#include <utility>
#include <vector>

#include "spice/circuit.hpp"
#include "util/expected.hpp"

namespace pim {

enum class Integrator { Trapezoidal, BackwardEuler };

/// Knobs for a transient run. Defaults suit repeater-scale circuits; the
/// sign-off analyzer overrides t_stop/dt per line length.
struct TransientOptions {
  double t_stop = 2e-9;       ///< end of the simulated window [s]
  double dt = 1e-12;          ///< fixed timestep [s]
  double t_settle = 2e-9;     ///< pre-roll to reach DC, inputs frozen at t=0 [s]
  int settle_steps = 400;     ///< steps across the settling pre-roll
  Integrator integrator = Integrator::Trapezoidal;
  int max_newton = 60;        ///< Newton iterations per step before retrying
  double v_tol = 1e-6;        ///< convergence: max |dV| between iterations [V]
  double v_step_limit = 0.3;  ///< per-iteration voltage damping clamp [V]
  size_t band_threshold = 48; ///< use dense LU above this half-bandwidth
  /// Retry guardrail: a step whose Newton loop fails is re-run as two
  /// half-steps, recursively, up to this many halvings (dt shrinks by as
  /// much as 2^max_step_halvings) before the run surfaces no_convergence.
  int max_step_halvings = 4;
};

/// Per-source integrated quantities over the main window (not the
/// settling pre-roll), in vsource declaration order.
struct SourceTotals {
  double charge = 0.0;  ///< integral of delivered current [C]
  double energy = 0.0;  ///< integral of v * i [J]
};

/// Sampled node waveform.
struct Trace {
  NodeId node = 0;
  std::vector<double> values;  // one per time sample
};

/// Everything a transient run produces.
struct TransientResult {
  std::vector<double> time;         ///< sample times, t = 0 .. t_stop
  std::vector<Trace> traces;        ///< one per requested probe
  std::vector<SourceTotals> sources;///< per voltage source

  /// The trace for `node`; throws pim::Error(bad_input) naming the node
  /// when it was not probed. Builds a sorted index on first use (and
  /// whenever `traces` changed size), so repeated measurement lookups on
  /// wide decks are O(log n) instead of a linear scan per call.
  const std::vector<double>& trace(NodeId node) const;

 private:
  mutable std::vector<std::pair<NodeId, size_t>> trace_index_;
};

/// Runs a transient analysis of `circuit`, recording the `probes` nodes.
/// Throws pim::Error(no_convergence) when a timestep still fails after
/// the halving retries.
TransientResult run_transient(const Circuit& circuit,
                              const TransientOptions& options,
                              const std::vector<NodeId>& probes);

/// Recoverable variant: returns the result or the error without throwing,
/// for batch flows that skip-and-record failed simulations.
Expected<TransientResult> try_run_transient(const Circuit& circuit,
                                            const TransientOptions& options,
                                            const std::vector<NodeId>& probes);

/// Reference scalar implementation. run_transient() routes through the
/// batched SoA engine (spice/batch.hpp); this entry point keeps the
/// original element-by-element solver, whose output the batched engine is
/// required to reproduce bit-for-bit (tests/test_spice.cpp pins this, and
/// `pim_bench transient_kernel` re-asserts it on every benchmark run).
TransientResult run_transient_reference(const Circuit& circuit,
                                        const TransientOptions& options,
                                        const std::vector<NodeId>& probes);

}  // namespace pim
