// Waveform measurements: threshold crossings, 50 % delay, slew.
//
// Conventions (used consistently by characterization, models, and
// sign-off): delay is measured between 50 %-of-swing crossings, and slew
// is the 20 %-80 % crossing interval scaled by 1/0.6 to a full-swing
// equivalent ramp time — the same convention used to *drive* inputs, so a
// measured slew can be fed back in as an input slew.
#pragma once

#include <vector>

namespace pim {

/// Edge direction of interest.
enum class EdgeKind { Rising, Falling };

/// First time `values` crosses `level` in the direction `edge`, linearly
/// interpolated between samples. Throws pim::Error if it never crosses.
double crossing_time(const std::vector<double>& time, const std::vector<double>& values,
                     double level, EdgeKind edge);

/// 50 %-to-50 % delay from an input edge to an output edge (edges may have
/// opposite polarity, as through an inverter). `swing` is the full voltage
/// swing (vdd).
double delay_50(const std::vector<double>& time, const std::vector<double>& input,
                EdgeKind input_edge, const std::vector<double>& output,
                EdgeKind output_edge, double swing);

/// Full-swing-equivalent transition time of the edge: (t80 - t20) / 0.6.
double measure_slew(const std::vector<double>& time, const std::vector<double>& values,
                    EdgeKind edge, double swing);

}  // namespace pim
