#include "spice/circuit.hpp"

#include "util/error.hpp"

namespace pim {

Circuit::Circuit() {
  names_.push_back("0");  // ground
  has_source_.push_back(0);
}

NodeId Circuit::add_node(std::string name) {
  const NodeId id = static_cast<NodeId>(names_.size());
  if (name.empty()) name = "n" + std::to_string(id);
  names_.push_back(std::move(name));
  has_source_.push_back(0);
  return id;
}

const std::string& Circuit::node_name(NodeId n) const {
  check_node(n, "node_name");
  return names_[static_cast<size_t>(n)];
}

void Circuit::check_node(NodeId n, const char* what) const {
  require(n >= 0 && static_cast<size_t>(n) < names_.size(),
          std::string("Circuit::") + what + ": invalid node id");
}

void Circuit::add_resistor(NodeId a, NodeId b, double ohms) {
  check_node(a, "add_resistor");
  check_node(b, "add_resistor");
  require(a != b, "Circuit::add_resistor: endpoints must differ");
  require(ohms > 0.0, "Circuit::add_resistor: resistance must be positive");
  resistors_.push_back({a, b, 1.0 / ohms});
}

void Circuit::add_capacitor(NodeId a, NodeId b, double farads) {
  check_node(a, "add_capacitor");
  check_node(b, "add_capacitor");
  require(a != b, "Circuit::add_capacitor: endpoints must differ");
  require(farads >= 0.0, "Circuit::add_capacitor: capacitance must be non-negative");
  if (farads == 0.0) return;  // harmless no-op, keeps builders simple
  capacitors_.push_back({a, b, farads});
}

void Circuit::add_vsource(NodeId node, Waveform wave) {
  check_node(node, "add_vsource");
  require(node != ground(), "Circuit::add_vsource: cannot drive ground");
  require(!has_source_[static_cast<size_t>(node)],
          "Circuit::add_vsource: node already has a source");
  has_source_[static_cast<size_t>(node)] = 1;
  vsources_.push_back({node, std::move(wave)});
}

void Circuit::add_mosfet(MosType type, const MosfetParams& params, double width,
                         NodeId gate, NodeId drain, NodeId source) {
  check_node(gate, "add_mosfet");
  check_node(drain, "add_mosfet");
  check_node(source, "add_mosfet");
  require(width > 0.0, "Circuit::add_mosfet: width must be positive");
  mosfets_.push_back({type, params, width, gate, drain, source});
}

void Circuit::add_inverter(const InverterDevices& devices, double wn, double wp,
                           NodeId in, NodeId out, NodeId vdd_node) {
  add_mosfet(MosType::Nmos, devices.nmos, wn, in, out, ground());
  add_mosfet(MosType::Pmos, devices.pmos, wp, in, out, vdd_node);
  // Lumped device parasitics: total gate capacitance at the input, drain
  // junction capacitance at the output.
  add_capacitor(in, ground(), wn * devices.nmos.c_gate + wp * devices.pmos.c_gate);
  add_capacitor(out, ground(), wn * devices.nmos.c_drain + wp * devices.pmos.c_drain);
}

bool Circuit::is_source_node(NodeId node) const {
  check_node(node, "is_source_node");
  return has_source_[static_cast<size_t>(node)] != 0;
}

}  // namespace pim
