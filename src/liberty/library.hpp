// A characterized cell library for one technology node.
#pragma once

#include <string>
#include <vector>

#include "liberty/cell.hpp"
#include "tech/technology.hpp"

namespace pim {

/// The drive strengths characterized per kind — covers the repeater range
/// used for global interconnects (the paper's experiments use INVD4..D20;
/// buffering optimization explores up to D64).
const std::vector<int>& standard_drive_strengths();

/// Cell library: named cells plus the technology identity they were
/// characterized for.
class CellLibrary {
 public:
  CellLibrary() = default;
  CellLibrary(std::string name, TechNode node, double vdd);

  const std::string& name() const { return name_; }
  TechNode node() const { return node_; }
  double vdd() const { return vdd_; }

  void add_cell(RepeaterCell cell);

  const std::vector<RepeaterCell>& cells() const { return cells_; }

  /// Lookup by name; throws if absent.
  const RepeaterCell& cell(const std::string& name) const;

  /// Lookup by kind and drive; throws if absent.
  const RepeaterCell& cell(CellKind kind, int drive) const;

  bool has_cell(const std::string& name) const;

  /// True when any cell's sweep was truncated by a deadline/cancel stop
  /// (its tables are neighbor-patched, quorum permitting).
  bool partial() const {
    for (const RepeaterCell& c : cells_)
      if (c.partial()) return true;
    return false;
  }

  /// The stop that truncated the first partial table; none when the
  /// library is complete.
  deadline::StopReason stop_reason() const {
    for (const RepeaterCell& c : cells_) {
      if (c.rise.stop != deadline::StopReason::none) return c.rise.stop;
      if (c.fall.stop != deadline::StopReason::none) return c.fall.stop;
    }
    return deadline::StopReason::none;
  }

  /// All cells of one kind, ascending drive.
  std::vector<const RepeaterCell*> cells_of_kind(CellKind kind) const;

 private:
  std::string name_;
  TechNode node_ = TechNode::N90;
  double vdd_ = 0.0;
  std::vector<RepeaterCell> cells_;
};

}  // namespace pim
