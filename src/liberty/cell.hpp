// Repeater cell: an inverter or buffer at a given drive strength, carrying
// NLDM-style characterization tables (delay and output slew indexed by
// input slew x load capacitance), leakage, input capacitance, and area —
// the same payload a Liberty .lib provides to a timer.
#pragma once

#include <string>

#include "deadline/deadline.hpp"
#include "numeric/interp.hpp"
#include "numeric/matrix.hpp"

namespace pim {

enum class CellKind { Inverter, Buffer };

/// "INV" / "BUF".
std::string cell_kind_name(CellKind kind);

/// NLDM lookup table pair for one output edge: delay(slew, load) and
/// output_slew(slew, load), bilinear with edge extrapolation.
struct TimingTable {
  Vector slew_axis;  ///< input slew samples [s], strictly increasing
  Vector load_axis;  ///< load cap samples [F], strictly increasing
  Matrix delay;      ///< [slew][load] -> 50 % delay [s]
  Matrix out_slew;   ///< [slew][load] -> output slew [s]
  /// True when a deadline/cancel stop truncated the characterization
  /// sweep: the un-run tail was patched from surviving neighbors (same
  /// path as failed decks), so values are usable but biased.
  bool partial = false;
  /// Why the sweep stopped when `partial` is true (none otherwise).
  /// Flows without partial semantics surface this as the typed error.
  deadline::StopReason stop = deadline::StopReason::none;

  /// True once the table has been populated with a valid grid.
  bool valid() const;

  double eval_delay(double input_slew, double load) const;
  double eval_out_slew(double input_slew, double load) const;
};

/// One library cell.
struct RepeaterCell {
  std::string name;       ///< e.g. "INVD4"
  CellKind kind = CellKind::Inverter;
  int drive = 1;          ///< integer drive strength (Dk)
  double wn = 0.0;        ///< output-stage NMOS width [m]
  double wp = 0.0;        ///< output-stage PMOS width [m]
  double input_cap = 0.0; ///< [F]
  double leakage_nmos = 0.0;  ///< leakage power, output-high state [W]
  double leakage_pmos = 0.0;  ///< leakage power, output-low state [W]
  double area = 0.0;      ///< [m^2]
  TimingTable rise;       ///< output rising edge
  TimingTable fall;       ///< output falling edge

  /// True when either table was truncated by a deadline/cancel stop.
  bool partial() const { return rise.partial || fall.partial; }

  /// State-averaged leakage, the paper's p_s = (p_sn + p_sp) / 2.
  double leakage_avg() const { return 0.5 * (leakage_nmos + leakage_pmos); }

  /// Worst (max) of rise/fall delay at an operating point.
  double worst_delay(double input_slew, double load) const;
};

/// Canonical cell name, e.g. ("INV", 4) -> "INVD4".
std::string repeater_cell_name(CellKind kind, int drive);

}  // namespace pim
