#include "liberty/library.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pim {

const std::vector<int>& standard_drive_strengths() {
  static const std::vector<int> drives = {1, 2, 4, 6, 8, 12, 16, 20, 24, 32, 48, 64};
  return drives;
}

CellLibrary::CellLibrary(std::string name, TechNode node, double vdd)
    : name_(std::move(name)), node_(node), vdd_(vdd) {
  require(vdd_ > 0.0, "CellLibrary: vdd must be positive");
}

void CellLibrary::add_cell(RepeaterCell cell) {
  require(!has_cell(cell.name), "CellLibrary::add_cell: duplicate cell '" + cell.name + "'");
  cells_.push_back(std::move(cell));
}

const RepeaterCell& CellLibrary::cell(const std::string& name) const {
  for (const auto& c : cells_)
    if (c.name == name) return c;
  fail("CellLibrary::cell: no cell named '" + name + "'");
}

const RepeaterCell& CellLibrary::cell(CellKind kind, int drive) const {
  return cell(repeater_cell_name(kind, drive));
}

bool CellLibrary::has_cell(const std::string& name) const {
  return std::any_of(cells_.begin(), cells_.end(),
                     [&](const RepeaterCell& c) { return c.name == name; });
}

std::vector<const RepeaterCell*> CellLibrary::cells_of_kind(CellKind kind) const {
  std::vector<const RepeaterCell*> out;
  for (const auto& c : cells_)
    if (c.kind == kind) out.push_back(&c);
  std::sort(out.begin(), out.end(),
            [](const RepeaterCell* a, const RepeaterCell* b) { return a->drive < b->drive; });
  return out;
}

}  // namespace pim
