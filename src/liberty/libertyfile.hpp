// Liberty-lite text format for characterized cell libraries.
//
// A pragmatic dialect of Liberty: group statements `key (arg) {` with
// matching `}`, attribute statements `key value... ;`, and NLDM tables as
// `row` statements (one per input-slew sample). Example:
//
//   library (pim_65nm) {
//     technology 65nm;
//     voltage 1;
//     cell (INVD4) {
//       kind INV; drive 4;
//       wn 1.04e-06; wp 2.08e-06;
//       input_cap 3.12e-15; area 1.2e-12;
//       leakage_nmos 3.4e-08; leakage_pmos 2.1e-08;
//       timing (rise) {
//         index_1 1e-11 5e-11 1e-10;
//         index_2 1e-15 5e-15;
//         delay { row 1.1e-11 2.0e-11; row 1.4e-11 2.4e-11; row 2e-11 3e-11; }
//         out_slew { ... }
//       }
//       timing (fall) { ... }
//     }
//   }
#pragma once

#include <string>

#include "liberty/library.hpp"

namespace pim {

/// Serializes the library (cells must carry valid timing tables).
std::string write_liberty(const CellLibrary& library);

/// Parses the Liberty-lite dialect; throws pim::Error with a line number
/// on malformed input.
CellLibrary parse_liberty(const std::string& text);

/// File convenience wrappers.
void save_liberty(const CellLibrary& library, const std::string& path);
CellLibrary load_liberty(const std::string& path);

}  // namespace pim
