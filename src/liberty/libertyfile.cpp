#include "liberty/libertyfile.hpp"
#include <algorithm>

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pim {
namespace {

void emit_axis(std::ostringstream& os, const char* key, const Vector& axis,
               const char* indent) {
  os << indent << key;
  for (double v : axis) os << ' ' << format_sig(v, 17);
  os << ";\n";
}

void emit_matrix(std::ostringstream& os, const char* key, const Matrix& m,
                 const char* indent) {
  os << indent << key << " {\n";
  for (size_t r = 0; r < m.rows(); ++r) {
    os << indent << "  row";
    for (size_t c = 0; c < m.cols(); ++c) os << ' ' << format_sig(m(r, c), 17);
    os << ";\n";
  }
  os << indent << "}\n";
}

void emit_timing(std::ostringstream& os, const char* edge, const TimingTable& t) {
  os << "      timing (" << edge << ") {\n";
  emit_axis(os, "index_1", t.slew_axis, "        ");
  emit_axis(os, "index_2", t.load_axis, "        ");
  emit_matrix(os, "delay", t.delay, "        ");
  emit_matrix(os, "out_slew", t.out_slew, "        ");
  os << "      }\n";
}

}  // namespace

std::string write_liberty(const CellLibrary& library) {
  std::ostringstream os;
  os << "library (" << library.name() << ") {\n";
  os << "  technology " << tech_node_name(library.node()) << ";\n";
  os << "  voltage " << format_sig(library.vdd(), 17) << ";\n";
  for (const auto& cell : library.cells()) {
    require(cell.rise.valid() && cell.fall.valid(),
            "write_liberty: cell '" + cell.name + "' has unpopulated timing tables");
    os << "  cell (" << cell.name << ") {\n";
    os << "      kind " << cell_kind_name(cell.kind) << ";\n";
    os << "      drive " << cell.drive << ";\n";
    os << "      wn " << format_sig(cell.wn, 17) << ";\n";
    os << "      wp " << format_sig(cell.wp, 17) << ";\n";
    os << "      input_cap " << format_sig(cell.input_cap, 17) << ";\n";
    os << "      area " << format_sig(cell.area, 17) << ";\n";
    os << "      leakage_nmos " << format_sig(cell.leakage_nmos, 17) << ";\n";
    os << "      leakage_pmos " << format_sig(cell.leakage_pmos, 17) << ";\n";
    emit_timing(os, "rise", cell.rise);
    emit_timing(os, "fall", cell.fall);
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

namespace {

// One logical statement: either a group opener (has_block) with a
// parenthesized argument, an attribute with value tokens, or '}'.
struct Statement {
  int lineno = 0;
  std::string key;
  std::string arg;                  // inside (...), if present
  std::vector<std::string> values;  // attribute values
  bool opens_block = false;
  bool closes_block = false;
};

class LibertyParser {
 public:
  explicit LibertyParser(const std::string& text) {
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
      ++lineno;
      const size_t hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::string_view t = trim(line);
      // Allow multiple statements per line (e.g. "kind INV; drive 4;").
      while (!t.empty()) {
        const size_t brace_open = t.find('{');
        const size_t semi = t.find(';');
        const size_t brace_close = t.find('}');
        size_t cut = std::min({brace_open, semi, brace_close});
        require(cut != std::string_view::npos,
                "liberty: line " + std::to_string(lineno) + ": statement missing terminator");
        parse_statement(t.substr(0, cut + 1), t[cut], lineno);
        t = trim(t.substr(cut + 1));
      }
    }
  }

  CellLibrary parse() {
    pos_ = 0;
    const Statement& top = expect_open("library");
    CellLibrary lib;
    std::string lib_name = top.arg;
    TechNode node = TechNode::N90;
    double vdd = 0.0;
    std::vector<RepeaterCell> cells;
    while (!peek_close()) {
      const Statement& st = next();
      if (st.key == "technology" && !st.opens_block) {
        require(st.values.size() == 1, err(st, "technology takes one value"));
        node = tech_node_from_name(st.values[0]);
      } else if (st.key == "voltage" && !st.opens_block) {
        require(st.values.size() == 1, err(st, "voltage takes one value"));
        vdd = parse_double(st.values[0]);
      } else if (st.key == "cell" && st.opens_block) {
        cells.push_back(parse_cell(st.arg));
      } else {
        fail(err(st, "unexpected statement '" + st.key + "'"));
      }
    }
    consume_close();
    require(vdd > 0.0, "liberty: missing voltage");
    CellLibrary out(lib_name, node, vdd);
    for (auto& c : cells) out.add_cell(std::move(c));
    return out;
  }

 private:
  static std::string err(const Statement& st, const std::string& msg) {
    return "liberty: line " + std::to_string(st.lineno) + ": " + msg;
  }

  void parse_statement(std::string_view text, char terminator, int lineno) {
    Statement st;
    st.lineno = lineno;
    std::string_view body = trim(text.substr(0, text.size() - 1));
    if (terminator == '}') {
      require(body.empty(),
              "liberty: line " + std::to_string(lineno) + ": content before '}'");
      st.closes_block = true;
      statements_.push_back(std::move(st));
      return;
    }
    st.opens_block = (terminator == '{');
    // Optional parenthesized argument.
    const size_t paren = body.find('(');
    if (paren != std::string_view::npos) {
      const size_t close = body.find(')', paren);
      require(close != std::string_view::npos,
              "liberty: line " + std::to_string(lineno) + ": unclosed '('");
      st.arg = std::string(trim(body.substr(paren + 1, close - paren - 1)));
      body = trim(body.substr(0, paren));
      st.key = std::string(body);
      require(!st.key.empty(), "liberty: line " + std::to_string(lineno) + ": missing key");
    } else {
      auto tokens = split_whitespace(body);
      require(!tokens.empty(), "liberty: line " + std::to_string(lineno) + ": empty statement");
      st.key = tokens.front();
      st.values.assign(tokens.begin() + 1, tokens.end());
    }
    statements_.push_back(std::move(st));
  }

  const Statement& next() {
    require(pos_ < statements_.size(), "liberty: unexpected end of input");
    return statements_[pos_++];
  }

  bool peek_close() const {
    require(pos_ < statements_.size(), "liberty: unexpected end of input");
    return statements_[pos_].closes_block;
  }

  void consume_close() {
    const Statement& st = next();
    require(st.closes_block, err(st, "expected '}'"));
  }

  const Statement& expect_open(const char* key) {
    const Statement& st = next();
    require(st.opens_block && st.key == key,
            err(st, std::string("expected '") + key + " (...) {'"));
    return st;
  }

  Vector parse_values(const Statement& st) {
    Vector out;
    out.reserve(st.values.size());
    for (const auto& v : st.values) out.push_back(parse_double(v));
    return out;
  }

  Matrix parse_matrix_block() {
    std::vector<Vector> rows;
    while (!peek_close()) {
      const Statement& st = next();
      require(st.key == "row" && !st.opens_block, err(st, "expected 'row ...;'"));
      rows.push_back(parse_values(st));
      require(rows.back().size() == rows.front().size(),
              err(st, "ragged rows in table"));
    }
    consume_close();
    require(!rows.empty(), "liberty: empty table block");
    Matrix m(rows.size(), rows.front().size());
    for (size_t r = 0; r < rows.size(); ++r)
      for (size_t c = 0; c < rows[r].size(); ++c) m(r, c) = rows[r][c];
    return m;
  }

  TimingTable parse_timing() {
    TimingTable t;
    while (!peek_close()) {
      const Statement& st = next();
      if (st.key == "index_1" && !st.opens_block) {
        t.slew_axis = parse_values(st);
      } else if (st.key == "index_2" && !st.opens_block) {
        t.load_axis = parse_values(st);
      } else if (st.key == "delay" && st.opens_block) {
        t.delay = parse_matrix_block();
      } else if (st.key == "out_slew" && st.opens_block) {
        t.out_slew = parse_matrix_block();
      } else {
        fail(err(st, "unexpected statement in timing block"));
      }
    }
    consume_close();
    require(t.valid(), "liberty: incomplete timing table");
    return t;
  }

  RepeaterCell parse_cell(const std::string& name) {
    RepeaterCell cell;
    cell.name = name;
    bool have_rise = false;
    bool have_fall = false;
    while (!peek_close()) {
      const Statement& st = next();
      auto one = [&](const char* what) {
        require(st.values.size() == 1, err(st, std::string(what) + " takes one value"));
        return st.values[0];
      };
      if (st.key == "kind") {
        const std::string v = one("kind");
        if (v == "INV") {
          cell.kind = CellKind::Inverter;
        } else if (v == "BUF") {
          cell.kind = CellKind::Buffer;
        } else {
          fail(err(st, "unknown cell kind '" + v + "'"));
        }
      } else if (st.key == "drive") {
        cell.drive = static_cast<int>(parse_long(one("drive")));
      } else if (st.key == "wn") {
        cell.wn = parse_double(one("wn"));
      } else if (st.key == "wp") {
        cell.wp = parse_double(one("wp"));
      } else if (st.key == "input_cap") {
        cell.input_cap = parse_double(one("input_cap"));
      } else if (st.key == "area") {
        cell.area = parse_double(one("area"));
      } else if (st.key == "leakage_nmos") {
        cell.leakage_nmos = parse_double(one("leakage_nmos"));
      } else if (st.key == "leakage_pmos") {
        cell.leakage_pmos = parse_double(one("leakage_pmos"));
      } else if (st.key == "timing" && st.opens_block) {
        if (st.arg == "rise") {
          cell.rise = parse_timing();
          have_rise = true;
        } else if (st.arg == "fall") {
          cell.fall = parse_timing();
          have_fall = true;
        } else {
          fail(err(st, "timing edge must be rise or fall"));
        }
      } else {
        fail(err(st, "unexpected statement '" + st.key + "' in cell"));
      }
    }
    consume_close();
    require(have_rise && have_fall, "liberty: cell '" + name + "' missing timing tables");
    return cell;
  }

  std::vector<Statement> statements_;
  size_t pos_ = 0;
};

}  // namespace

CellLibrary parse_liberty(const std::string& text) { return LibertyParser(text).parse(); }

void save_liberty(const CellLibrary& library, const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "save_liberty: cannot open '" + path + "'");
  out << write_liberty(library);
  require(out.good(), "save_liberty: write failed");
}

CellLibrary load_liberty(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "load_liberty: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_liberty(buffer.str());
}

}  // namespace pim
