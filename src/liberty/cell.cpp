#include "liberty/cell.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pim {

std::string cell_kind_name(CellKind kind) {
  switch (kind) {
    case CellKind::Inverter: return "INV";
    case CellKind::Buffer: return "BUF";
  }
  fail("cell_kind_name: unknown kind");
}

bool TimingTable::valid() const {
  return slew_axis.size() >= 2 && load_axis.size() >= 2 &&
         delay.rows() == slew_axis.size() && delay.cols() == load_axis.size() &&
         out_slew.rows() == slew_axis.size() && out_slew.cols() == load_axis.size();
}

double TimingTable::eval_delay(double input_slew, double load) const {
  require(valid(), "TimingTable::eval_delay: table not populated");
  return Grid2D(slew_axis, load_axis, delay).eval(input_slew, load);
}

double TimingTable::eval_out_slew(double input_slew, double load) const {
  require(valid(), "TimingTable::eval_out_slew: table not populated");
  return Grid2D(slew_axis, load_axis, out_slew).eval(input_slew, load);
}

double RepeaterCell::worst_delay(double input_slew, double load) const {
  return std::max(rise.eval_delay(input_slew, load), fall.eval_delay(input_slew, load));
}

std::string repeater_cell_name(CellKind kind, int drive) {
  return cell_kind_name(kind) + "D" + std::to_string(drive);
}

}  // namespace pim
