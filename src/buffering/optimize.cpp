#include "buffering/optimize.hpp"

#include <algorithm>
#include <cmath>

#include "liberty/library.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pim {
namespace {

double candidate_cost(const LinkEstimate& est, double weight) {
  return std::pow(est.delay, weight) * std::pow(est.total_power(), 1.0 - weight);
}

bool meets_constraints(const LinkEstimate& est, const BufferingOptions& opt) {
  return est.delay <= opt.max_delay && est.output_slew <= opt.max_output_slew;
}

}  // namespace

BufferingResult optimize_buffering(const InterconnectModel& model,
                                   const LinkContext& ctx,
                                   const BufferingOptions& options) {
  require(options.weight >= 0.0 && options.weight <= 1.0,
          "optimize_buffering: weight must be in [0, 1]");
  const std::vector<int>& drives =
      options.drives.empty() ? standard_drive_strengths() : options.drives;
  require(!drives.empty() && !options.kinds.empty(),
          "optimize_buffering: empty search space");

  // Repeater-count ceiling: global repeaters are never packed denser than
  // a few per quarter millimeter; scanning to 4/ctx-length covers every
  // sane optimum while keeping the search exhaustive in practice.
  int n_max = options.max_repeaters;
  if (n_max <= 0)
    n_max = std::max(2, static_cast<int>(std::ceil(ctx.length / (0.25 * unit::mm))));

  std::vector<double> millers = {options.miller_factor};
  if (options.try_staggered) millers.push_back(0.0);
  std::vector<WireLayer> layers =
      options.layers.empty() ? std::vector<WireLayer>{ctx.layer} : options.layers;

  BufferingResult best;
  best.layer = layers.front();
  best.cost = std::numeric_limits<double>::infinity();
  for (WireLayer layer : layers) {
    LinkContext layer_ctx = ctx;
    layer_ctx.layer = layer;
    for (CellKind kind : options.kinds) {
      for (int drive : drives) {
        for (double mf : millers) {
          for (int n = 1; n <= n_max; ++n) {
            LinkDesign design;
            design.kind = kind;
            design.drive = drive;
            design.num_repeaters = n;
            design.miller_factor = mf;
            const LinkEstimate est = model.evaluate(layer_ctx, design);
            ++best.evaluations;
            if (!meets_constraints(est, options)) continue;
            const double cost = candidate_cost(est, options.weight);
            if (cost < best.cost) {
              best.cost = cost;
              best.design = design;
              best.layer = layer;
              best.estimate = est;
              best.feasible = true;
            }
          }
        }
      }
    }
  }
  PIM_COUNT("buffering.search.runs");
  PIM_COUNT_N("buffering.search.evaluations", best.evaluations);
  return best;
}

}  // namespace pim
