#include "buffering/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "cache/store.hpp"
#include "liberty/library.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace pim {
namespace {

double candidate_cost(const LinkEstimate& est, double weight) {
  return std::pow(est.delay, weight) * std::pow(est.total_power(), 1.0 - weight);
}

bool meets_constraints(const LinkEstimate& est, const BufferingOptions& opt) {
  return est.delay <= opt.max_delay && est.output_slew <= opt.max_output_slew;
}

}  // namespace

BufferingResult optimize_buffering(const InterconnectModel& model,
                                   const LinkContext& ctx,
                                   const BufferingOptions& options) {
  require(options.weight >= 0.0 && options.weight <= 1.0,
          "optimize_buffering: weight must be in [0, 1]");
  const std::vector<int>& drives =
      options.drives.empty() ? standard_drive_strengths() : options.drives;
  require(!drives.empty() && !options.kinds.empty(),
          "optimize_buffering: empty search space");

  // Repeater-count ceiling: global repeaters are never packed denser than
  // a few per quarter millimeter; scanning to 4/ctx-length covers every
  // sane optimum while keeping the search exhaustive in practice.
  int n_max = options.max_repeaters;
  if (n_max <= 0)
    n_max = std::max(2, static_cast<int>(std::ceil(ctx.length / (0.25 * unit::mm))));

  std::vector<double> millers = {options.miller_factor};
  if (options.try_staggered) millers.push_back(0.0);
  std::vector<WireLayer> layers =
      options.layers.empty() ? std::vector<WireLayer>{ctx.layer} : options.layers;

  BufferingResult best;
  best.layer = layers.front();
  best.cost = std::numeric_limits<double>::infinity();
  for (WireLayer layer : layers) {
    LinkContext layer_ctx = ctx;
    layer_ctx.layer = layer;
    for (CellKind kind : options.kinds) {
      for (int drive : drives) {
        for (double mf : millers) {
          for (int n = 1; n <= n_max; ++n) {
            LinkDesign design;
            design.kind = kind;
            design.drive = drive;
            design.num_repeaters = n;
            design.miller_factor = mf;
            const LinkEstimate est = model.evaluate(layer_ctx, design);
            ++best.evaluations;
            if (!meets_constraints(est, options)) continue;
            const double cost = candidate_cost(est, options.weight);
            if (cost < best.cost) {
              best.cost = cost;
              best.design = design;
              best.layer = layer;
              best.estimate = est;
              best.feasible = true;
            }
          }
        }
      }
    }
  }
  PIM_COUNT("buffering.search.runs");
  PIM_COUNT_N("buffering.search.evaluations", best.evaluations);
  return best;
}

namespace {

cache::CacheKey buffering_cache_key(const std::string& signature,
                                    const LinkContext& ctx,
                                    const BufferingOptions& opt) {
  std::vector<int> kinds;
  for (CellKind k : opt.kinds) kinds.push_back(static_cast<int>(k));
  std::vector<int> layers;
  for (WireLayer l : opt.layers) layers.push_back(static_cast<int>(l));
  cache::KeyBuilder kb("buffering");
  kb.field("model", signature);
  kb.field("ctx.layer", static_cast<int>(ctx.layer));
  kb.field("ctx.style", static_cast<int>(ctx.style));
  kb.field("ctx.length", ctx.length);
  kb.field("ctx.input_slew", ctx.input_slew);
  kb.field("ctx.activity", ctx.activity);
  kb.field("ctx.frequency", ctx.frequency);
  kb.field("ctx.wire.scattering", ctx.wire_options.scattering);
  kb.field("ctx.wire.barrier", ctx.wire_options.barrier);
  kb.field("ctx.wire.res_scale", ctx.wire_options.res_scale);
  kb.field("ctx.wire.cap_scale", ctx.wire_options.cap_scale);
  kb.field("opt.weight", opt.weight);
  kb.field("opt.kinds", kinds);
  kb.field("opt.drives", opt.drives);
  kb.field("opt.try_staggered", opt.try_staggered);
  kb.field("opt.miller_factor", opt.miller_factor);
  kb.field("opt.layers", layers);
  kb.field("opt.max_delay", opt.max_delay);
  kb.field("opt.max_output_slew", opt.max_output_slew);
  kb.field("opt.max_repeaters", opt.max_repeaters);
  return kb.finish();
}

// Line-based `key value` payload; doubles at 17 significant digits so a
// cache hit reproduces the search result bit for bit.
std::string serialize_buffering(const BufferingResult& r) {
  std::ostringstream os;
  auto num = [&os](const char* name, double v) {
    os << name << " " << format_sig(v, 17) << "\n";
  };
  os << "feasible " << (r.feasible ? 1 : 0) << "\n";
  os << "kind " << static_cast<int>(r.design.kind) << "\n";
  os << "drive " << r.design.drive << "\n";
  os << "repeaters " << r.design.num_repeaters << "\n";
  num("miller", r.design.miller_factor);
  os << "layer " << static_cast<int>(r.layer) << "\n";
  num("cost", r.cost);
  os << "evaluations " << r.evaluations << "\n";
  num("delay", r.estimate.delay);
  num("output_slew", r.estimate.output_slew);
  num("switched_cap", r.estimate.switched_cap);
  num("dynamic_power", r.estimate.dynamic_power);
  num("leakage_power", r.estimate.leakage_power);
  num("repeater_area", r.estimate.repeater_area);
  num("wire_area", r.estimate.wire_area);
  return os.str();
}

BufferingResult parse_buffering(const std::string& text) {
  std::map<std::string, std::string> fields;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto tokens = split_whitespace(line);
    require(tokens.size() == 2, "buffering cache: malformed line", ErrorCode::io_parse);
    fields[tokens[0]] = tokens[1];
  }
  auto need = [&fields](const char* name) -> const std::string& {
    const auto it = fields.find(name);
    require(it != fields.end(),
            std::string("buffering cache: missing field '") + name + "'",
            ErrorCode::io_parse);
    return it->second;
  };
  BufferingResult r;
  r.feasible = parse_long(need("feasible")) != 0;
  r.design.kind = static_cast<CellKind>(parse_long(need("kind")));
  r.design.drive = static_cast<int>(parse_long(need("drive")));
  r.design.num_repeaters = static_cast<int>(parse_long(need("repeaters")));
  r.design.miller_factor = parse_double(need("miller"));
  r.layer = static_cast<WireLayer>(parse_long(need("layer")));
  r.cost = parse_double(need("cost"));
  r.evaluations = parse_long(need("evaluations"));
  r.estimate.delay = parse_double(need("delay"));
  r.estimate.output_slew = parse_double(need("output_slew"));
  r.estimate.switched_cap = parse_double(need("switched_cap"));
  r.estimate.dynamic_power = parse_double(need("dynamic_power"));
  r.estimate.leakage_power = parse_double(need("leakage_power"));
  r.estimate.repeater_area = parse_double(need("repeater_area"));
  r.estimate.wire_area = parse_double(need("wire_area"));
  return r;
}

}  // namespace

BufferingResult optimize_buffering_cached(const InterconnectModel& model,
                                          const LinkContext& ctx,
                                          const BufferingOptions& options) {
  const std::string signature = model.cache_signature();
  if (signature.empty()) return optimize_buffering(model, ctx, options);
  // Provenance scope: the context/option fields fold into a "params"
  // facet, and the fit artifacts the model signature embeds become
  // upstream edges — so a stale fit drags its buffering entries along
  // when the invalidation cone is walked.
  cache::Tracked scope;
  const cache::CacheKey key = buffering_cache_key(signature, ctx, options);
  for (const cache::CacheKey& fit : cache::resolve_artifacts(signature))
    scope.upstream(fit);
  if (auto payload = cache::Store::global().get(key)) {
    try {
      BufferingResult cached = parse_buffering(*payload);
      scope.publish(key);
      return cached;
    } catch (const Error&) {
      PIM_COUNT("cache.corrupt");  // fail-open: recompute below
    }
  }
  const BufferingResult best = optimize_buffering(model, ctx, options);
  cache::Store::global().put(key, serialize_buffering(best));
  scope.publish(key);
  return best;
}

}  // namespace pim
