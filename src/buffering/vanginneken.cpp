#include "buffering/vanginneken.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "charlib/characterize.hpp"
#include "liberty/library.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace pim {
namespace {

// Frozen per-size buffer parameters at the nominal slew.
struct BufferChoice {
  int drive;
  double intrinsic;  // [s]
  double rd;         // [ohm]
  double ci;         // [F]
};

// Persistent (shared-suffix) placement list for the DP states.
struct PlacementNode {
  double position;
  int drive;
  std::shared_ptr<const PlacementNode> next;
};

struct State {
  double cap;    // load seen looking downstream [F]
  double delay;  // accumulated downstream delay [s]
  std::shared_ptr<const PlacementNode> placement;
};

// Keeps only non-dominated states: ascending cap must give strictly
// descending delay.
void prune(std::vector<State>& states) {
  std::sort(states.begin(), states.end(), [](const State& a, const State& b) {
    if (a.cap != b.cap) return a.cap < b.cap;
    return a.delay < b.delay;
  });
  std::vector<State> kept;
  double best_delay = std::numeric_limits<double>::infinity();
  for (const State& s : states) {
    if (s.delay < best_delay - 1e-18) {
      kept.push_back(s);
      best_delay = s.delay;
    }
  }
  states = std::move(kept);
}

std::vector<BufferChoice> make_menu(const Technology& tech, const TechnologyFit& fit,
                                    const VanGinnekenOptions& opt) {
  const std::vector<int>& drives =
      opt.drives.empty() ? standard_drive_strengths() : opt.drives;
  require(!drives.empty(), "van_ginneken: empty drive menu");
  const RepeaterEdgeFit& f = fit.edge_fit(CellKind::Inverter, false);
  const double s = opt.nominal_slew;
  std::vector<BufferChoice> menu;
  for (int d : drives) {
    const RepeaterSizing sz = repeater_sizing(tech, CellKind::Inverter, d);
    BufferChoice c;
    c.drive = d;
    c.intrinsic = f.a0 + f.a1 * s + f.a2 * s * s;
    c.rd = f.drive_resistance(s, sz.wn_out);
    c.ci = fit.gamma * (sz.wn_out + sz.wp_out);
    menu.push_back(c);
  }
  return menu;
}

// Per-meter wire parasitics under the DP's (worst-case Miller) view, and
// the composition weights of the context's style class.
struct WireView {
  double r_per_m;
  double c_per_m;  // kappa_c-weighted effective capacitance
};

WireView wire_view(const Technology& tech, const TechnologyFit& fit,
                   const LinkContext& ctx) {
  const WireRc rc = extract_wire(tech, ctx.layer, ctx.style, ctx.wire_options);
  const CompositionWeights& comp = fit.composition(ctx.style);
  WireView v;
  v.r_per_m = rc.res_per_m;
  v.c_per_m =
      comp.kappa_c * (rc.cap_ground_per_m + kWorstCaseMiller * 2.0 * rc.cap_couple_per_m);
  return v;
}

// Upstream traversal of a wire piece: Elmore with distributed self-delay.
void cross_wire(State& s, const WireView& w, double length) {
  const double r = w.r_per_m * length;
  const double c = w.c_per_m * length;
  s.delay += r * (0.5 * c + s.cap);
  s.cap += c;
}

double source_drive_res(const std::vector<BufferChoice>& menu,
                        const VanGinnekenOptions& opt) {
  if (opt.source_drive_res > 0.0) return opt.source_drive_res;
  double best = menu.front().rd;
  for (const BufferChoice& c : menu) best = std::min(best, c.rd);
  return best;
}

double default_sink_cap(const std::vector<BufferChoice>& menu,
                        const VanGinnekenOptions& opt) {
  if (opt.sink_cap > 0.0) return opt.sink_cap;
  double best = 0.0;
  for (const BufferChoice& c : menu) best = std::max(best, c.ci);
  return best;
}

}  // namespace

TaperedBuffering van_ginneken(const Technology& tech, const TechnologyFit& fit,
                              const LinkContext& ctx, const VanGinnekenOptions& opt) {
  PIM_OBS_SPAN("buffering.vanginneken.run");
  require(ctx.length > 0.0, "van_ginneken: length must be positive");
  require(opt.slots >= 1, "van_ginneken: need at least one slot");

  const std::vector<BufferChoice> menu = make_menu(tech, fit, opt);
  const WireView wire = wire_view(tech, fit, ctx);
  const double piece = ctx.length / (opt.slots + 1);

  TaperedBuffering result;

  // Start at the sink.
  std::vector<State> states;
  states.push_back({default_sink_cap(menu, opt), 0.0, nullptr});

  for (int slot = opt.slots; slot >= 1; --slot) {
    // Wire piece between this slot and the next structure downstream.
    for (State& s : states) cross_wire(s, wire, piece);

    // Option per state: leave the slot empty, or insert each menu size.
    const double position = slot * piece;
    std::vector<State> next = states;  // leave empty
    for (const State& s : states) {
      for (const BufferChoice& c : menu) {
        State b;
        b.cap = c.ci;
        b.delay = s.delay + c.intrinsic + c.rd * s.cap;
        b.placement = std::make_shared<PlacementNode>(
            PlacementNode{position, c.drive, s.placement});
        next.push_back(b);
      }
    }
    result.states_explored += static_cast<long>(next.size());
    const size_t before_prune = next.size();
    prune(next);
    PIM_COUNT_N("buffering.candidate.count", static_cast<int64_t>(before_prune));
    PIM_COUNT_N("buffering.prune.count",
                static_cast<int64_t>(before_prune - next.size()));
    states = std::move(next);
  }

  // Final wire piece to the source, then the source driver.
  const double rd_src = source_drive_res(menu, opt);
  double best = std::numeric_limits<double>::infinity();
  const State* winner = nullptr;
  for (State& s : states) {
    cross_wire(s, wire, piece);
    const double total = s.delay + rd_src * s.cap;
    if (total < best) {
      best = total;
      winner = &s;
    }
  }
  require(winner != nullptr, "van_ginneken: no states survived");

  result.delay = best;
  for (auto node = winner->placement; node != nullptr; node = node->next)
    result.repeaters.push_back({node->position, node->drive});
  std::sort(result.repeaters.begin(), result.repeaters.end(),
            [](const TaperedRepeater& a, const TaperedRepeater& b) {
              return a.position < b.position;
            });
  return result;
}

double tapered_delay(const Technology& tech, const TechnologyFit& fit,
                     const LinkContext& ctx,
                     const std::vector<TaperedRepeater>& repeaters,
                     const VanGinnekenOptions& opt) {
  const std::vector<BufferChoice> menu = make_menu(tech, fit, opt);
  const WireView wire = wire_view(tech, fit, ctx);

  auto choice_for = [&](int drive) -> const BufferChoice& {
    for (const BufferChoice& c : menu)
      if (c.drive == drive) return c;
    fail("tapered_delay: drive not in the menu");
  };

  // Walk from the sink upstream.
  std::vector<TaperedRepeater> sorted = repeaters;
  std::sort(sorted.begin(), sorted.end(),
            [](const TaperedRepeater& a, const TaperedRepeater& b) {
              return a.position < b.position;
            });
  State s{default_sink_cap(menu, opt), 0.0, nullptr};
  double at = ctx.length;
  for (size_t i = sorted.size(); i-- > 0;) {
    require(sorted[i].position > 0.0 && sorted[i].position < ctx.length,
            "tapered_delay: repeater outside the wire");
    cross_wire(s, wire, at - sorted[i].position);
    const BufferChoice& c = choice_for(sorted[i].drive);
    s.delay += c.intrinsic + c.rd * s.cap;
    s.cap = c.ci;
    at = sorted[i].position;
  }
  cross_wire(s, wire, at);
  return s.delay + source_drive_res(menu, opt) * s.cap;
}

}  // namespace pim
