// Buffering optimization (paper §III-D): exhaustive search over repeater
// count and size minimizing a weighted delay-power objective.
//
// The objective is the scale-free weighted product
//     cost = delay^weight * power^(1 - weight)
// (weight = 1 -> delay-optimal buffering, which the paper notes yields
// impractically large repeaters; weight < 1 trades delay for power).
// Optionally the staggered variant (Miller factor 0) is explored, and
// hard delay/slew constraints can gate feasibility — that is how the NoC
// synthesizer asks "can a wire of this length run at this clock?".
#pragma once

#include <limits>
#include <vector>

#include "models/model.hpp"

namespace pim {

/// Search space and objective for one buffering run.
struct BufferingOptions {
  /// Delay emphasis in [0, 1]: cost = delay^w * power^(1-w).
  double weight = 1.0;
  /// Repeater kinds to try.
  std::vector<CellKind> kinds = {CellKind::Inverter, CellKind::Buffer};
  /// Drive strengths to try; empty = standard_drive_strengths().
  std::vector<int> drives;
  /// Also try staggered insertion (Miller factor 0)?
  bool try_staggered = false;
  /// Miller factor for the non-staggered candidates.
  double miller_factor = kWorstCaseMiller;
  /// Routing layers to explore; empty = keep the context's layer.
  std::vector<WireLayer> layers;
  /// Hard constraints; candidates violating them are infeasible.
  double max_delay = std::numeric_limits<double>::infinity();
  double max_output_slew = std::numeric_limits<double>::infinity();
  /// Cap on repeater count (0 = automatic from the line length).
  int max_repeaters = 0;
};

/// Outcome of a buffering search.
struct BufferingResult {
  bool feasible = false;     ///< some candidate met the constraints
  LinkDesign design;         ///< best candidate (by cost among feasible)
  WireLayer layer = WireLayer::Global;  ///< routing layer of the winner
  LinkEstimate estimate;     ///< the model's estimate for it
  double cost = 0.0;
  long evaluations = 0;      ///< model invocations spent
};

/// Exhaustive (kind x drive x staggering) search with a scan over the
/// repeater count for each combination.
BufferingResult optimize_buffering(const InterconnectModel& model,
                                   const LinkContext& context,
                                   const BufferingOptions& options = {});

/// optimize_buffering fronted by the content-addressed result cache
/// (docs/caching.md): keyed by the model's cache_signature(), the full
/// context, and every search option, so a hit is bit-identical to the
/// search it replaces. Falls through to the direct search when the model
/// opts out of caching (empty signature) or the cache mode is off; a
/// corrupt entry recomputes (fail-open). NoC synthesis routes every
/// per-link implementation through this, which is what lets merge trials
/// reuse results across runs and across processes.
BufferingResult optimize_buffering_cached(const InterconnectModel& model,
                                          const LinkContext& context,
                                          const BufferingOptions& options = {});

}  // namespace pim
