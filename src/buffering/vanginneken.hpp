// Van Ginneken-style optimal buffer insertion.
//
// The paper's §III-D search assumes UNIFORM repeaters (equal sizes at
// equal spacing) — the practical choice for long point-to-point links.
// This module implements the classic dynamic program that drops the
// uniformity assumption: given candidate buffer slots along the wire and
// a size menu, it computes the delay-optimal placement exactly (under an
// Elmore-composed delay model with the library's fitted coefficients) by
// propagating a pruned Pareto frontier of (load, delay) states from the
// sink to the source.
//
// Used as an ablation of the uniformity assumption: how much delay does
// uniform buffering leave on the table? (Answer in bench/tapered_buffering:
// very little for homogeneous wires — which is why the paper's uniform
// search is the right tool — but the DP wins visibly when the sink load
// is large or slots are constrained.)
#pragma once

#include <vector>

#include "charlib/fit.hpp"
#include "models/link.hpp"

namespace pim {

/// One placed repeater of the tapered solution.
struct TaperedRepeater {
  double position = 0.0;  ///< distance from the source [m]
  int drive = 0;          ///< drive strength
};

/// Result of the dynamic program.
struct TaperedBuffering {
  std::vector<TaperedRepeater> repeaters;  ///< sorted by position
  double delay = 0.0;                      ///< Elmore-composed source-to-sink delay [s]
  long states_explored = 0;                ///< DP work metric
};

/// Options for the DP.
struct VanGinnekenOptions {
  int slots = 40;                 ///< equally spaced candidate positions
  std::vector<int> drives;        ///< size menu; empty = standard list
  double source_drive_res = 0.0;  ///< driver resistance at the source [ohm];
                                  ///< 0 = use the largest menu size's rd
  double sink_cap = 0.0;          ///< receiver load [F]; 0 = input cap of the
                                  ///< largest menu size
  double nominal_slew = 100e-12;  ///< slew at which rd/intrinsic are frozen
};

/// Runs the DP for the wire described by `context` (its style/layer/length)
/// in technology `tech` with fitted coefficients `fit`.
TaperedBuffering van_ginneken(const Technology& tech, const TechnologyFit& fit,
                              const LinkContext& context,
                              const VanGinnekenOptions& options = {});

/// The same Elmore-composed delay metric the DP optimizes, evaluated for
/// an arbitrary placement — lets callers score uniform solutions on the
/// DP's own objective for a fair comparison.
double tapered_delay(const Technology& tech, const TechnologyFit& fit,
                     const LinkContext& context,
                     const std::vector<TaperedRepeater>& repeaters,
                     const VanGinnekenOptions& options = {});

}  // namespace pim
