// Cooperative cancellation and wall-clock time budgets.
//
// One ambient process-wide token carries (a) an absolute steady-clock
// deadline armed from a millisecond budget and (b) an external cancel
// flag tripped by request_cancel() — typically from the CLI's
// SIGINT/SIGTERM handlers. Long-running code does not receive a token
// argument; it polls check() at item boundaries (the exec engine does
// this automatically for every parallel region), which keeps the API
// surface identical whether or not a budget is set.
//
// check() is engineered for the hot path: when no deadline is armed, no
// cancel is pending, and the fault harness is disarmed, it is a single
// relaxed atomic load and branch — regions without budgets run at full
// speed and produce byte-identical output to a build without this layer.
//
// Determinism contract (docs/robustness.md): wall-clock expiry is
// inherently timing-dependent, so the engine converts any stop into a
// *prefix cutoff* — the completed item set is always exactly [0, cutoff)
// and per-item results are bit-identical at any --threads. For tests, the
// `deadline-expire` and `cancel-midchunk` fault sites make the stop
// itself deterministic: their per-item streams are pure functions of
// (seed, item index), so the cutoff is identical at any thread count.
//
// Metrics: cancel.checks counts engaged polls (zero when idle),
// deadline.remaining_ns is force-set at region stops and scope exit so
// the run ledger captures truncated runs even without --profile.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/error.hpp"

namespace pim::deadline {

/// Why a cooperative region stopped early. `none` means it ran to
/// completion.
enum class StopReason {
  none,
  deadline_exceeded,  ///< wall-clock budget expired (or deadline-expire fault)
  cancelled,          ///< external cancel: SIGINT/SIGTERM or request_cancel()
};

/// Stable lowercase name, e.g. "deadline_exceeded".
const char* stop_reason_name(StopReason reason);

/// The ErrorCode a stop maps to (deadline_exceeded / cancelled).
/// `reason` must not be none.
ErrorCode error_code_for(StopReason reason);

/// Arms the ambient wall-clock budget: check() starts reporting
/// deadline_exceeded once `budget_ms` milliseconds of steady-clock time
/// have elapsed from this call. budget_ms <= 0 clears any armed deadline.
/// Does not touch the cancel flag.
void set_budget_ms(int64_t budget_ms);

/// Disarms the deadline AND clears the cancel flag (tests / request
/// boundaries). The CLI's signal handlers can re-trip cancel afterwards.
void reset();

/// Trips the external cancel flag. Async-signal-safe (one lock-free
/// atomic store), so SIGINT/SIGTERM handlers may call it directly.
void request_cancel();

/// True when request_cancel() has been called since the last reset().
bool cancel_requested();

/// Nanoseconds of budget left; INT64_MAX when no deadline is armed,
/// clamped at 0 once expired.
int64_t remaining_ns();

/// True when a deadline is armed or a cancel is pending — i.e. check()
/// is off its zero-cost fast path for a reason other than fault arming.
bool engaged();

/// The poll. Order of precedence: fault sites (deterministic, drawn from
/// the current fault stream so the exec engine's per-item ScopedStream
/// makes them index-pure) > cancel flag > wall clock. Increments
/// cancel.checks only when off the fast path.
StopReason check();

/// Installs SIGINT/SIGTERM handlers that call request_cancel(), with
/// SA_RESETHAND so a second signal force-kills a stuck process. Idempotent.
void install_signal_handlers();

/// The typed error a stopped region raises when it cannot degrade to a
/// partial result: code from error_code_for(reason), message carrying the
/// completed-item count ("stopped after 137/1000 items: deadline
/// exceeded").
Error stop_error(StopReason reason, size_t completed, size_t total);

/// Force-sets the deadline.remaining_ns and partial.items gauges (they
/// appear in reports and the ledger even with collection off, like the
/// proc.* gauges). The exec engine calls this at every stopped region;
/// api entry points call it at scope exit.
void record_stop_metrics(size_t partial_items);

/// Suppresses check() (process-wide) for the scope: every poll reports
/// none while at least one GraceScope is alive. For the *bounded*
/// finalization work that must still complete after a stop was
/// acknowledged — re-evaluating an already-built best-so-far
/// architecture, flushing reports — not for dodging the budget.
class GraceScope {
 public:
  GraceScope();
  ~GraceScope();
  GraceScope(const GraceScope&) = delete;
  GraceScope& operator=(const GraceScope&) = delete;
};

/// RAII budget scope for api entry points: arms set_budget_ms(budget_ms)
/// on entry (<= 0 arms nothing) and on exit restores the previously
/// armed deadline (absolute, not re-derived) and records
/// deadline.remaining_ns. Does not clear the cancel flag — a SIGINT must
/// survive into the caller's finish path.
class Scope {
 public:
  explicit Scope(int64_t budget_ms);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  int64_t prev_deadline_ns_;  // absolute; 0 = none was armed
};

}  // namespace pim::deadline
