#include "deadline/deadline.hpp"

#include <signal.h>

#include <atomic>
#include <chrono>
#include <string>

#include "obs/metrics.hpp"
#include "util/faultinject.hpp"

namespace pim::deadline {
namespace {

int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Absolute steady-clock deadline in ns; 0 = no deadline armed.
std::atomic<int64_t>& deadline_ns_slot() {
  static std::atomic<int64_t> ns{0};
  return ns;
}

std::atomic<bool>& cancel_slot() {
  static std::atomic<bool> flag{false};
  return flag;
}

// Single fast-path flag: true iff a deadline is armed or a cancel is
// pending. Maintained on every state change so check()'s disengaged path
// is one relaxed load (plus the fault-armed load).
std::atomic<bool>& engaged_slot() {
  static std::atomic<bool> flag{false};
  return flag;
}

// Process-wide (not thread-local): grace must also cover pool workers
// running parallel regions inside the graced finalization work.
std::atomic<int>& grace_depth() {
  static std::atomic<int> depth{0};
  return depth;
}

void refresh_engaged() {
  engaged_slot().store(
      deadline_ns_slot().load(std::memory_order_relaxed) != 0 ||
          cancel_slot().load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

void set_deadline_abs_ns(int64_t abs_ns) {
  deadline_ns_slot().store(abs_ns, std::memory_order_relaxed);
  refresh_engaged();
}

extern "C" void pim_deadline_signal_handler(int) {
  // Async-signal-safe: two lock-free atomic stores, nothing else. The
  // engaged flag must be set directly (refresh_engaged reads two slots,
  // which is also safe, but keep the handler minimal).
  cancel_slot().store(true, std::memory_order_relaxed);
  engaged_slot().store(true, std::memory_order_relaxed);
}

}  // namespace

const char* stop_reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::none: return "none";
    case StopReason::deadline_exceeded: return "deadline_exceeded";
    case StopReason::cancelled: return "cancelled";
  }
  return "none";
}

ErrorCode error_code_for(StopReason reason) {
  return reason == StopReason::cancelled ? ErrorCode::cancelled
                                         : ErrorCode::deadline_exceeded;
}

void set_budget_ms(int64_t budget_ms) {
  if (budget_ms <= 0) {
    set_deadline_abs_ns(0);
    return;
  }
  set_deadline_abs_ns(steady_now_ns() + budget_ms * 1'000'000);
}

void reset() {
  deadline_ns_slot().store(0, std::memory_order_relaxed);
  cancel_slot().store(false, std::memory_order_relaxed);
  engaged_slot().store(false, std::memory_order_relaxed);
}

void request_cancel() {
  cancel_slot().store(true, std::memory_order_relaxed);
  engaged_slot().store(true, std::memory_order_relaxed);
}

bool cancel_requested() { return cancel_slot().load(std::memory_order_relaxed); }

int64_t remaining_ns() {
  const int64_t deadline = deadline_ns_slot().load(std::memory_order_relaxed);
  if (deadline == 0) return INT64_MAX;
  const int64_t left = deadline - steady_now_ns();
  return left > 0 ? left : 0;
}

bool engaged() { return engaged_slot().load(std::memory_order_relaxed); }

StopReason check() {
  // Fast path: nothing armed anywhere — one relaxed load each for the
  // deadline/cancel state and the fault harness.
  const bool live = engaged();
  if (!live && !fault::armed()) return StopReason::none;
  if (grace_depth().load(std::memory_order_relaxed) > 0) return StopReason::none;

  // Fault sites first so injected stops are index-pure under the exec
  // engine's per-item streams (the wall clock would otherwise race them).
  if (fault::should_fire(fault::kDeadlineExpire)) return StopReason::deadline_exceeded;
  if (fault::should_fire(fault::kCancelMidchunk)) return StopReason::cancelled;
  if (!live) return StopReason::none;

  PIM_COUNT("cancel.checks");
  if (cancel_slot().load(std::memory_order_relaxed)) return StopReason::cancelled;
  const int64_t deadline = deadline_ns_slot().load(std::memory_order_relaxed);
  if (deadline != 0 && steady_now_ns() >= deadline)
    return StopReason::deadline_exceeded;
  return StopReason::none;
}

void install_signal_handlers() {
  struct sigaction action = {};
  action.sa_handler = pim_deadline_signal_handler;
  sigemptyset(&action.sa_mask);
  // One signal trips the token for a graceful partial exit; a second one
  // falls back to the default disposition (kill) for stuck processes.
  action.sa_flags = SA_RESETHAND;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

Error stop_error(StopReason reason, size_t completed, size_t total) {
  const char* what = reason == StopReason::cancelled ? "cancelled" : "deadline exceeded";
  return Error("stopped after " + std::to_string(completed) + "/" +
                   std::to_string(total) + " items: " + std::string(what),
               error_code_for(reason));
}

void record_stop_metrics(size_t partial_items) {
  // force_set like the proc.* gauges: ledger records of truncated runs
  // carry these even when --profile collection is off.
  const int64_t left = remaining_ns();
  obs::registry().gauge("deadline.remaining_ns")
      .force_set(left == INT64_MAX ? 0.0 : static_cast<double>(left));
  obs::registry().gauge("partial.items").force_set(static_cast<double>(partial_items));
}

GraceScope::GraceScope() { grace_depth().fetch_add(1, std::memory_order_relaxed); }
GraceScope::~GraceScope() { grace_depth().fetch_sub(1, std::memory_order_relaxed); }

Scope::Scope(int64_t budget_ms)
    : prev_deadline_ns_(deadline_ns_slot().load(std::memory_order_relaxed)) {
  if (budget_ms > 0) {
    const int64_t mine = steady_now_ns() + budget_ms * 1'000'000;
    // Never loosen an outer deadline: nested scopes keep the tighter one.
    if (prev_deadline_ns_ == 0 || mine < prev_deadline_ns_)
      set_deadline_abs_ns(mine);
  }
}

Scope::~Scope() {
  const int64_t left = remaining_ns();
  obs::registry().gauge("deadline.remaining_ns")
      .force_set(left == INT64_MAX ? 0.0 : static_cast<double>(left));
  set_deadline_abs_ns(prev_deadline_ns_);
}

}  // namespace pim::deadline
