// pim::serve — the model-serving daemon core behind tools/pimd.cpp.
//
// A Server listens on a Unix-domain socket (and optionally TCP), reads
// newline-delimited JSON request lines (api/wire.hpp), executes each via
// the pim::api facade on a small worker pool, and writes back one JSON
// response line per request, in per-connection request order. Because
// the process stays alive, technologies, calibrated fits, resident
// models, and the content-addressed cache stay warm in RAM across
// millions of evaluations — the paper's "characterize once, evaluate
// cheaply forever" serving shape (ROADMAP item 1).
//
// Semantics (docs/serving.md):
//  - Admission control: a bounded queue of accepted-but-unstarted
//    requests. When full, new requests are rejected immediately with a
//    typed `overloaded` error (exit_code 3) — retryable by contract,
//    since the work never started. Rejections keep per-connection
//    response order like any other response.
//  - Deadlines: a request carrying deadline_ms > 0 runs exclusively
//    (the ambient deadline scope is process-wide, so concurrent workers
//    arming different budgets would truncate each other); deadline-free
//    requests run concurrently under a shared lock. Flows degrade to
//    partial results or typed deadline errors exactly as direct
//    pim::api calls do.
//  - Heavy flows parallelize internally through pim::exec, so a worker
//    here is a dispatcher, not the unit of compute parallelism.
//  - Graceful drain: once stop() is called (pimd calls it when
//    SIGINT/SIGTERM trips the cooperative cancel flag), listeners
//    close, accepted requests finish — in-flight flows see the cancel
//    flag and degrade — every pending response is flushed, and run()
//    returns. Nothing accepted is ever silently dropped.
//  - A {"op":"stats"} request is answered inline by the connection
//    reader (never queued, so it stays live under load) with queue
//    depth, admission counters, cache hit rates, and p50/p99 request
//    latency from the obs histogram.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace pim::serve {

struct ServerOptions {
  /// Unix-domain socket path; empty disables the Unix listener. An
  /// existing socket file at the path is replaced.
  std::string socket_path;
  /// TCP port on 127.0.0.1; -1 disables, 0 binds an ephemeral port
  /// (read it back via tcp_port() — tests do this).
  int tcp_port = -1;
  /// Dispatcher threads executing requests.
  int workers = 1;
  /// Max accepted-but-unstarted requests before admission control
  /// rejects with `overloaded`.
  int queue_limit = 64;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and spawns the accept/worker threads. Throws
  /// pim::Error (io_parse) when a socket cannot be bound.
  void start();

  /// Blocks until stop() is called from another thread OR the
  /// process-wide cancel flag trips (SIGINT/SIGTERM via
  /// deadline::install_signal_handlers), then drains and returns.
  void run();

  /// Initiates drain and joins every thread. Idempotent, callable from
  /// any thread; returns once every accepted request has a flushed
  /// response.
  void stop();

  /// The bound TCP port (resolves an ephemeral bind), or -1.
  int tcp_port() const;

  /// The live stats object ({"schema":"pim.serve.v1",...}).
  std::string stats_json() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pim::serve
