#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "api/wire.hpp"
#include "deadline/deadline.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace pim::serve {
namespace {

using Clock = std::chrono::steady_clock;

// A request line longer than this is a protocol violation, not a
// request — the connection is answered with an error and closed before
// the buffer can grow without bound.
constexpr size_t kMaxLineBytes = size_t{64} * 1024 * 1024;

// One client connection. The reader thread appends response slots to
// the outbox in request order; whichever worker completes the
// head-of-line slot flushes the completed prefix, so responses leave in
// request order no matter how the pool interleaves.
struct Pending {
  bool done = false;  // guarded by Connection::mu
  std::string text;
};

struct Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd;
  std::mutex mu;
  std::deque<std::shared_ptr<Pending>> outbox;
  bool write_failed = false;
};

struct Job {
  std::shared_ptr<Connection> conn;
  std::shared_ptr<Pending> slot;
  std::string line;
};

// Requires conn.mu held. Keeps draining even after a write failure so
// slots are released (the responses just have nowhere to go).
void flush_locked(Connection& conn) {
  while (!conn.outbox.empty() && conn.outbox.front()->done) {
    const std::string& text = conn.outbox.front()->text;
    if (!conn.write_failed) {
      std::string framed = text;
      framed += '\n';
      size_t off = 0;
      while (off < framed.size()) {
        const ssize_t n = ::send(conn.fd, framed.data() + off, framed.size() - off,
                                 MSG_NOSIGNAL);
        if (n <= 0) {
          conn.write_failed = true;
          break;
        }
        off += static_cast<size_t>(n);
      }
    }
    conn.outbox.pop_front();
  }
}

// Best-effort id/op extraction for responses produced outside the
// worker path (stats, admission rejections): never throws, tolerates
// malformed lines (the identity just stays absent).
void envelope_identity(const std::string& line, bool& has_id, int64_t& id,
                       std::string& op) {
  try {
    const obs::JsonValue v = obs::parse_json(line);
    if (v.kind != obs::JsonValue::Kind::Object) return;
    if (const obs::JsonValue* m = v.find("id");
        m != nullptr && m->kind == obs::JsonValue::Kind::Number) {
      has_id = true;
      id = static_cast<int64_t>(m->number);
    }
    if (const obs::JsonValue* m = v.find("op");
        m != nullptr && m->kind == obs::JsonValue::Kind::String)
      op = m->text;
  } catch (...) {
  }
}

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions opts) : options(std::move(opts)) {}

  ServerOptions options;

  std::atomic<bool> stopping{false};
  // Workers may only exit once the reader threads are joined — a reader
  // mid-enqueue after the last worker exited would strand a response.
  std::atomic<bool> drain_workers{false};
  std::once_flag stop_once;

  int unix_fd = -1;
  int tcp_fd = -1;
  int bound_tcp_port = -1;

  std::vector<std::thread> accept_threads;
  std::vector<std::thread> worker_threads;

  // Connection registry + reader lifecycle. Readers are detached (a
  // daemon serves unbounded short-lived connections; a join list would
  // grow without bound) and counted, so drain can wait for the last one.
  std::mutex conn_mu;
  std::condition_variable conn_cv;
  int active_readers = 0;  // guarded by conn_mu
  std::set<std::shared_ptr<Connection>> live;

  mutable std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<Job> queue;

  // Deadline isolation (see api/wire.hpp execute_line): requests that
  // arm a budget take this exclusively; deadline-free requests share.
  std::shared_mutex deadline_mu;

  // Daemon-owned stats. Standalone metric instances, NOT registry
  // entries: every pim::api call resets the global registry on entry,
  // so daemon-lifetime aggregates must live outside it.
  Clock::time_point started = Clock::now();
  std::atomic<int64_t> accepted{0};
  std::atomic<int64_t> rejected{0};
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> errors{0};
  std::atomic<int64_t> store_hits{0};
  std::atomic<int64_t> store_misses{0};
  std::atomic<int64_t> resident_hits{0};
  obs::Timer latency;

  void bind_unix();
  void bind_tcp();
  void accept_loop(int listen_fd);
  void reader_loop(std::shared_ptr<Connection> conn);
  void worker_loop();
  void handle_line(const std::shared_ptr<Connection>& conn, const std::string& line);
  void respond_inline(const std::shared_ptr<Connection>& conn, std::string text);
  void sample_request_counters();
  std::string stats_json() const;
};

void Server::Impl::bind_unix() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(options.socket_path.size() < sizeof(addr.sun_path),
          "pimd: socket path too long: " + options.socket_path, ErrorCode::bad_input);
  std::strncpy(addr.sun_path, options.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  unix_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(unix_fd >= 0, "pimd: socket(AF_UNIX) failed", ErrorCode::io_parse);
  ::unlink(options.socket_path.c_str());
  require(::bind(unix_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
          "pimd: cannot bind " + options.socket_path + ": " + std::strerror(errno),
          ErrorCode::io_parse);
  require(::listen(unix_fd, 64) == 0, "pimd: listen failed on " + options.socket_path,
          ErrorCode::io_parse);
}

void Server::Impl::bind_tcp() {
  tcp_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  require(tcp_fd >= 0, "pimd: socket(AF_INET) failed", ErrorCode::io_parse);
  const int one = 1;
  ::setsockopt(tcp_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.tcp_port));
  require(::bind(tcp_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
          "pimd: cannot bind 127.0.0.1:" + std::to_string(options.tcp_port) + ": " +
              std::strerror(errno),
          ErrorCode::io_parse);
  require(::listen(tcp_fd, 64) == 0, "pimd: listen failed", ErrorCode::io_parse);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  require(::getsockname(tcp_fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
          "pimd: getsockname failed", ErrorCode::io_parse);
  bound_tcp_port = static_cast<int>(ntohs(bound.sin_port));
}

void Server::Impl::accept_loop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop) or fatal — either way, stop accepting
    }
    auto conn = std::make_shared<Connection>(fd);
    {
      std::lock_guard<std::mutex> lock(conn_mu);
      live.insert(conn);
      // A connection that races the drain still gets its reader (so
      // buffered lines are answered), but its read side closes at once.
      if (stopping.load()) ::shutdown(fd, SHUT_RD);
      ++active_readers;
    }
    std::thread([this, conn] { reader_loop(conn); }).detach();
  }
}

void Server::Impl::reader_loop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handle_line(conn, line);
    }
    if (buffer.size() > kMaxLineBytes) {
      respond_inline(conn,
                     api::wire::write_error_line(
                         false, 0, "",
                         Error("pimd: request line exceeds " +
                                   std::to_string(kMaxLineBytes) + " bytes",
                               ErrorCode::bad_input)));
      break;
    }
  }
  // Deregister. Queued jobs and outbox entries keep the Connection (and
  // its fd) alive until their responses flush; the last reference closes
  // it. The notify happens under the lock so a drain waiting in stop()
  // cannot destroy the Impl out from under this call.
  {
    std::lock_guard<std::mutex> lock(conn_mu);
    live.erase(conn);
    --active_readers;
    conn_cv.notify_all();
  }
}

void Server::Impl::respond_inline(const std::shared_ptr<Connection>& conn,
                                  std::string text) {
  auto slot = std::make_shared<Pending>();
  slot->done = true;
  slot->text = std::move(text);
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->outbox.push_back(std::move(slot));
  flush_locked(*conn);
}

void Server::Impl::handle_line(const std::shared_ptr<Connection>& conn,
                               const std::string& line) {
  // Stats stays live under load: answered by the reader, never queued.
  // The substring gate keeps the hot path at a single parse (inside the
  // worker); a false hit only costs this extra parse.
  if (line.find("\"stats\"") != std::string::npos) {
    bool has_id = false;
    int64_t id = 0;
    std::string op;
    envelope_identity(line, has_id, id, op);
    if (op == "stats") {
      std::string text = "{";
      if (has_id) text += "\"id\":" + std::to_string(id) + ",";
      text += "\"op\":\"stats\",\"ok\":true,\"result\":" + stats_json() + "}";
      respond_inline(conn, std::move(text));
      return;
    }
  }
  auto slot = std::make_shared<Pending>();
  {
    std::unique_lock<std::mutex> lock(queue_mu);
    const bool draining = stopping.load();
    if (draining || queue.size() >= static_cast<size_t>(options.queue_limit)) {
      lock.unlock();
      rejected.fetch_add(1);
      bool has_id = false;
      int64_t id = 0;
      std::string op;
      envelope_identity(line, has_id, id, op);
      const Error error =
          draining ? Error("pimd: server is draining; request not accepted",
                           ErrorCode::cancelled)
                   : Error("pimd: request queue is full (" +
                               std::to_string(options.queue_limit) +
                               " pending); retry later",
                           ErrorCode::overloaded);
      respond_inline(conn, api::wire::write_error_line(has_id, id, op, error));
      return;
    }
    accepted.fetch_add(1);
    {
      std::lock_guard<std::mutex> conn_lock(conn->mu);
      conn->outbox.push_back(slot);
    }
    queue.push_back(Job{conn, slot, line});
  }
  queue_cv.notify_one();
}

// After each dispatch, fold the request's registry counters into the
// daemon aggregates. pim::api resets the registry on entry, so at
// --workers 1 the post-call registry holds exactly this request's
// counts; with concurrent workers the attribution is approximate (the
// totals remain a faithful sample, and check_serve.sh pins workers=1
// where it asserts exact hit counts). For a batch, the registry holds
// the last item only — a documented stats approximation, not a
// correctness concern.
void Server::Impl::sample_request_counters() {
  obs::MetricsRegistry& reg = obs::registry();
  store_hits.fetch_add(reg.counter("cache.hit").value());
  store_misses.fetch_add(reg.counter("cache.miss").value());
  resident_hits.fetch_add(reg.counter("fit.resident.hit").value() +
                          reg.counter("model.resident.hit").value());
}

void Server::Impl::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu);
      queue_cv.wait(lock, [&] { return drain_workers.load() || !queue.empty(); });
      if (queue.empty()) {
        if (drain_workers.load()) return;
        continue;
      }
      job = std::move(queue.front());
      queue.pop_front();
    }
    const Clock::time_point t0 = Clock::now();
    const std::string response = api::wire::execute_line(
        job.line, [&](bool uses_deadline, const std::function<void()>& dispatch) {
          if (uses_deadline) {
            std::unique_lock<std::shared_mutex> guard(deadline_mu);
            dispatch();
          } else {
            std::shared_lock<std::shared_mutex> guard(deadline_mu);
            dispatch();
          }
        });
    latency.record_ns(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count());
    sample_request_counters();
    completed.fetch_add(1);
    if (response.find("\"ok\":false") != std::string::npos) errors.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(job.conn->mu);
      job.slot->text = response;
      job.slot->done = true;
      flush_locked(*job.conn);
    }
  }
}

std::string Server::Impl::stats_json() const {
  const int64_t hits = store_hits.load() + resident_hits.load();
  const int64_t lookups = hits + store_misses.load();
  obs::TimerSnapshot lat;
  lat.count = latency.count();
  lat.total_ns = latency.total_ns();
  lat.min_ns = latency.min_ns();
  lat.max_ns = latency.max_ns();
  for (int k = 0; k < obs::Timer::kBuckets; ++k) {
    const int64_t n = latency.bucket(k);
    if (n > 0) lat.buckets.emplace_back(int64_t{1} << (k + 1), n);
  }
  const double to_ms = 1e-6;
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(queue_mu);
    depth = queue.size();
  }
  std::string out = "{\"schema\":\"pim.serve.v1\"";
  out += ",\"uptime_ms\":" + std::to_string(std::chrono::duration_cast<std::chrono::milliseconds>(
                                 Clock::now() - started)
                                 .count());
  out += ",\"workers\":" + std::to_string(options.workers);
  out += ",\"queue_limit\":" + std::to_string(options.queue_limit);
  out += ",\"queue_depth\":" + std::to_string(depth);
  out += ",\"accepted\":" + std::to_string(accepted.load());
  out += ",\"rejected\":" + std::to_string(rejected.load());
  out += ",\"completed\":" + std::to_string(completed.load());
  out += ",\"errors\":" + std::to_string(errors.load());
  out += ",\"cache\":{\"store_hits\":" + std::to_string(store_hits.load());
  out += ",\"store_misses\":" + std::to_string(store_misses.load());
  out += ",\"resident_hits\":" + std::to_string(resident_hits.load());
  out += ",\"hit_rate\":" +
         obs::json_number(lookups == 0 ? 0.0
                                       : static_cast<double>(hits) /
                                             static_cast<double>(lookups));
  out += "},\"latency_ms\":{\"count\":" + std::to_string(lat.count);
  out += ",\"mean\":" + obs::json_number(lat.mean_ns() * to_ms);
  out += ",\"p50\":" + obs::json_number(lat.quantile_ns(0.5) * to_ms);
  out += ",\"p99\":" + obs::json_number(lat.quantile_ns(0.99) * to_ms);
  out += ",\"max\":" + obs::json_number(static_cast<double>(lat.max_ns) * to_ms);
  out += "}}";
  return out;
}

Server::Server(ServerOptions options) : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { stop(); }

void Server::start() {
  Impl& s = *impl_;
  require(s.options.workers >= 1, "pimd: workers must be at least 1",
          ErrorCode::bad_input);
  require(s.options.queue_limit >= 1, "pimd: queue limit must be at least 1",
          ErrorCode::bad_input);
  require(!s.options.socket_path.empty() || s.options.tcp_port >= 0,
          "pimd: no listener configured (need a socket path or a TCP port)",
          ErrorCode::bad_input);
  // Latency histograms and the per-request cache counters the stats
  // endpoint samples both ride the obs registry switch.
  obs::set_enabled(true);
  if (!s.options.socket_path.empty()) s.bind_unix();
  if (s.options.tcp_port >= 0) s.bind_tcp();
  s.started = Clock::now();
  for (int i = 0; i < s.options.workers; ++i)
    s.worker_threads.emplace_back([&s] { s.worker_loop(); });
  if (s.unix_fd >= 0)
    s.accept_threads.emplace_back([&s] { s.accept_loop(s.unix_fd); });
  if (s.tcp_fd >= 0) s.accept_threads.emplace_back([&s] { s.accept_loop(s.tcp_fd); });
  log_info("pimd: serving",
           s.options.socket_path.empty() ? "" : " on " + s.options.socket_path,
           s.bound_tcp_port >= 0 ? " tcp 127.0.0.1:" + std::to_string(s.bound_tcp_port)
                                 : "",
           " (", s.options.workers, " worker(s), queue ", s.options.queue_limit, ")");
}

void Server::run() {
  while (!impl_->stopping.load() && !deadline::cancel_requested())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop();
}

void Server::stop() {
  Impl& s = *impl_;
  std::call_once(s.stop_once, [&s] {
    s.stopping.store(true);
    // 1. Stop accepting: closing the listeners unblocks accept().
    if (s.unix_fd >= 0) {
      ::shutdown(s.unix_fd, SHUT_RDWR);
      ::close(s.unix_fd);
      ::unlink(s.options.socket_path.c_str());
      s.unix_fd = -1;
    }
    if (s.tcp_fd >= 0) {
      ::shutdown(s.tcp_fd, SHUT_RDWR);
      ::close(s.tcp_fd);
      s.tcp_fd = -1;
    }
    for (std::thread& t : s.accept_threads) t.join();
    s.accept_threads.clear();
    // 2. Unblock readers; they finish lines already received (each gets
    // a response — accepted work is never dropped) and exit on EOF.
    // Readers are detached, so drain waits on the live counter instead
    // of joining.
    {
      std::unique_lock<std::mutex> lock(s.conn_mu);
      for (const auto& conn : s.live) ::shutdown(conn->fd, SHUT_RD);
      s.conn_cv.wait(lock, [&s] { return s.active_readers == 0; });
    }
    // 3. Only now may workers drain to empty and exit — no reader can
    // still be enqueueing. In-flight flows observe the cooperative
    // cancel flag (when the drain came from SIGINT/SIGTERM) and degrade
    // to partial results; their responses still flush.
    s.drain_workers.store(true);
    s.queue_cv.notify_all();
    for (std::thread& t : s.worker_threads) t.join();
    s.worker_threads.clear();
    // 4. Drop connections: outboxes are empty, so this closes the fds.
    {
      std::lock_guard<std::mutex> lock(s.conn_mu);
      s.live.clear();
    }
    log_info("pimd: drained (", s.completed.load(), " completed, ",
             s.rejected.load(), " rejected)");
  });
}

int Server::tcp_port() const { return impl_->bound_tcp_port; }

std::string Server::stats_json() const { return impl_->stats_json(); }

}  // namespace pim::serve
