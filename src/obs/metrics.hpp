// Process-global metrics registry: named counters, gauges, and
// histogram-backed timers.
//
// Design constraints (see docs/observability.md):
//  - Hot-path updates are a relaxed atomic plus an enabled check; when
//    collection is disabled (the default) every update degenerates to a
//    single relaxed load and branch, so instrumented code paths run at
//    their uninstrumented speed.
//  - Metric handles returned by the registry are valid for the life of
//    the process, so call sites cache them in function-local statics
//    (the PIM_COUNT / PIM_OBS_SPAN macros do this).
//  - Everything is thread-safe. Counters/gauges/timers update with
//    relaxed atomics, so concurrent writers are race-free; parallel hot
//    loops additionally install per-thread MetricShards (the exec engine
//    does this per chunk) that buffer counter deltas AND timer samples
//    locally and merge them exactly at join, keeping even the atomic
//    traffic off the hot path while totals stay exact.
//
// Names follow the `subsystem.noun.verb` scheme, e.g.
// "spice.newton.iterations" or "buffering.candidate.count".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pim::obs {

/// Globally enables/disables metric collection. Off by default.
void set_enabled(bool on);

inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

inline bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

class Counter;
class Timer;

/// Number of log-2 histogram buckets per Timer (bucket k counts values
/// in [2^k, 2^(k+1)) ns; 2^48 ns ~ 3.3 days, plenty). A namespace-level
/// constant so MetricShard can size its buffered deltas before Timer is
/// defined.
inline constexpr int kTimerBuckets = 48;

/// Exact per-thread aggregate of Timer::record_ns calls buffered by a
/// MetricShard: the same count/total/min/max/bucket state a Timer keeps,
/// accumulated without atomics and merged in one pass at flush.
struct TimerDelta {
  Timer* timer = nullptr;
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t min_ns = INT64_MAX;
  int64_t max_ns = 0;
  int64_t buckets[kTimerBuckets] = {};
};

/// Per-thread metric buffer for parallel hot loops. A worker thread that
/// installs a shard (via ShardScope — the exec engine does this per
/// chunk) turns every Counter::add and Timer::record_ns on that thread
/// into a plain non-atomic accumulation into a small local table;
/// flush() merges the buffered state into the shared atomics in one pass
/// per metric. Totals stay exact — histogram bucket counts included, so
/// reported quantiles are bit-identical at any thread count — and the
/// hot path touches no lock and no shared cache line.
class MetricShard {
 public:
  void add(Counter& counter, int64_t delta);
  void record(Timer& timer, int64_t ns);

  /// Applies every buffered delta to its metric and empties the shard.
  void flush();

 private:
  // Hot loops touch a handful of distinct metrics, so a linear scan over
  // a small vector beats hashing.
  std::vector<std::pair<Counter*, int64_t>> deltas_;
  std::vector<TimerDelta> timers_;
};

/// This thread's active shard slot (null when no shard is installed —
/// the default; updates then go straight to the shared atomics).
inline MetricShard*& shard_slot() {
  thread_local MetricShard* shard = nullptr;
  return shard;
}

/// Installs `shard` as this thread's active shard for the scope; restores
/// the previous slot on exit. Does NOT flush — the owner decides when the
/// buffered deltas merge (the exec engine flushes at chunk join).
class ShardScope {
 public:
  explicit ShardScope(MetricShard& shard) : prev_(shard_slot()) {
    shard_slot() = &shard;
  }
  ~ShardScope() { shard_slot() = prev_; }
  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

 private:
  MetricShard* prev_;
};

/// Monotonically increasing event tally.
class Counter {
 public:
  void add(int64_t delta = 1) {
    if (!enabled()) return;
    if (MetricShard* shard = shard_slot()) {
      shard->add(*this, delta);
      return;
    }
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

  /// Applies a shard-buffered delta directly to the shared atomic,
  /// bypassing the shard path (used by MetricShard::flush).
  void merge(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

inline void MetricShard::add(Counter& counter, int64_t delta) {
  for (auto& [slot, buffered] : deltas_) {
    if (slot == &counter) {
      buffered += delta;
      return;
    }
  }
  deltas_.emplace_back(&counter, delta);
}

/// Last-value-wins measurement (also supports accumulation).
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  /// Stores regardless of the collection switch — for process-level
  /// readings (peak RSS, wall clock) that ledger records and reports
  /// carry even when hot-path collection is off.
  void force_set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    if (!enabled()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Wall-time accumulator with count/total/min/max plus a power-of-two
/// histogram (bucket k counts values in [2^k, 2^(k+1))), from which
/// quantiles are estimated at reporting time. The unit is nanoseconds
/// for duration timers, but the histogram is unit-agnostic — some
/// metrics record sizes (cache.entry.bytes) or counts (exec.chunk.items)
/// to get the same exact distribution machinery.
class Timer {
 public:
  static constexpr int kBuckets = kTimerBuckets;

  void record_ns(int64_t ns) {
    if (!enabled()) return;
    if (ns < 0) ns = 0;
    if (MetricShard* shard = shard_slot()) {
      shard->record(*this, ns);
      return;
    }
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    atomic_min(min_ns_, ns);
    atomic_max(max_ns_, ns);
    buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t total_ns() const { return total_ns_.load(std::memory_order_relaxed); }
  int64_t min_ns() const {
    const int64_t v = min_ns_.load(std::memory_order_relaxed);
    return count() == 0 ? 0 : v;
  }
  int64_t max_ns() const { return max_ns_.load(std::memory_order_relaxed); }
  int64_t bucket(int k) const { return buckets_[k].load(std::memory_order_relaxed); }

  void reset() {
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
    min_ns_.store(INT64_MAX, std::memory_order_relaxed);
    max_ns_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  static int bucket_of(int64_t ns) {
    int k = 0;
    while (ns > 1 && k < kBuckets - 1) {
      ns >>= 1;
      ++k;
    }
    return k;
  }

  /// Applies a shard-buffered aggregate directly to the shared atomics,
  /// bypassing the shard path (used by MetricShard::flush).
  void merge(const TimerDelta& delta) {
    count_.fetch_add(delta.count, std::memory_order_relaxed);
    total_ns_.fetch_add(delta.total_ns, std::memory_order_relaxed);
    atomic_min(min_ns_, delta.min_ns);
    atomic_max(max_ns_, delta.max_ns);
    for (int k = 0; k < kBuckets; ++k)
      if (delta.buckets[k] != 0)
        buckets_[k].fetch_add(delta.buckets[k], std::memory_order_relaxed);
  }

 private:
  static void atomic_min(std::atomic<int64_t>& slot, int64_t v) {
    int64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<int64_t>& slot, int64_t v) {
    int64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> total_ns_{0};
  std::atomic<int64_t> min_ns_{INT64_MAX};
  std::atomic<int64_t> max_ns_{0};
  std::atomic<int64_t> buckets_[kBuckets] = {};
};

inline void MetricShard::record(Timer& timer, int64_t ns) {
  TimerDelta* slot = nullptr;
  for (TimerDelta& d : timers_) {
    if (d.timer == &timer) {
      slot = &d;
      break;
    }
  }
  if (slot == nullptr) {
    timers_.emplace_back();
    slot = &timers_.back();
    slot->timer = &timer;
  }
  ++slot->count;
  slot->total_ns += ns;
  if (ns < slot->min_ns) slot->min_ns = ns;
  if (ns > slot->max_ns) slot->max_ns = ns;
  ++slot->buckets[Timer::bucket_of(ns)];
}

inline void MetricShard::flush() {
  for (auto& [slot, buffered] : deltas_)
    if (buffered != 0) slot->merge(buffered);
  deltas_.clear();
  for (TimerDelta& d : timers_)
    if (d.count != 0) d.timer->merge(d);
  timers_.clear();
}

/// Point-in-time copy of one timer, taken for reporting.
struct TimerSnapshot {
  std::string name;
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t min_ns = 0;
  int64_t max_ns = 0;
  /// (bucket upper bound [ns], count) for the nonzero buckets only.
  std::vector<std::pair<int64_t, int64_t>> buckets;

  double mean_ns() const {
    return count == 0 ? 0.0 : static_cast<double>(total_ns) / static_cast<double>(count);
  }
  /// Quantile estimate from the log-2 histogram (bucket upper bounds).
  double quantile_ns(double q) const;
};

/// Point-in-time copy of the whole registry.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<TimerSnapshot> timers;
};

/// Owns every metric for the process. Registration takes a mutex; the
/// returned references never move or expire.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Timer& timer(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every metric (registrations survive). For tests, repeated
  /// bench phases, and the per-run scope pim::api establishes (every
  /// run_* entry point resets, so successive requests in one process
  /// never bleed into each other's ledger snapshots).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

inline MetricsRegistry& registry() { return MetricsRegistry::global(); }

}  // namespace pim::obs

/// Hot-path counter increment: resolves the counter once per call site,
/// then performs one relaxed atomic add (or a plain branch when
/// collection is disabled).
#define PIM_COUNT(name) PIM_COUNT_N(name, 1)
#define PIM_COUNT_N(name, n)                                                  \
  do {                                                                        \
    static ::pim::obs::Counter& pim_obs_counter_ =                            \
        ::pim::obs::registry().counter(name);                                 \
    pim_obs_counter_.add(n);                                                  \
  } while (0)
