// Reporters: serialize the metrics registry to JSON and CSV, and the
// trace buffer to Chrome `chrome://tracing` JSON.
//
// Also exposes a minimal JSON reader (objects, arrays, strings, numbers,
// booleans, null) so tests and validation scripts can round-trip the
// emitted reports without an external dependency.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pim::obs {

/// `"..."` — JSON string literal with escaping. Shared by the report
/// writers, the run ledger, and the bench harness so every artifact
/// escapes identically.
std::string json_quote(const std::string& s);

/// Shortest double rendering that reparses exactly (never inf/nan).
std::string json_number(double v);

/// Machine-readable registry dump. Shape:
///   { "schema": "pim.metrics.v1",
///     "counters": {"name": 123, ...},
///     "gauges":   {"name": 1.5, ...},
///     "timers":   {"name": {"count": n, "total_ns": ..., "mean_ns": ...,
///                           "min_ns": ..., "max_ns": ...,
///                           "p50_ns": ..., "p99_ns": ...}, ...} }
std::string metrics_to_json(const MetricsSnapshot& snapshot);

/// Flat CSV with one row per metric:
///   kind,name,value,count,total_ns,mean_ns,min_ns,max_ns
/// Counters fill `value` with the tally; gauges with the reading; timers
/// leave `value` empty and fill the timing columns.
std::string metrics_to_csv(const MetricsSnapshot& snapshot);

/// Chrome trace-event JSON ("traceEvents" array of complete "X" events,
/// microsecond timestamps) loadable in chrome://tracing and Perfetto.
std::string trace_to_chrome_json(const std::vector<TraceEvent>& events);

/// Snapshot the global registry / trace buffer and write to `path`,
/// throwing pim::Error on I/O failure.
void save_metrics_json(const std::string& path);
void save_metrics_csv(const std::string& path);
void save_trace(const std::string& path);

/// Minimal parsed-JSON tree for report validation.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Object, Array };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<std::pair<std::string, JsonValue>> members;  // objects
  std::vector<JsonValue> items;                            // arrays

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
};

/// Parses one JSON document, throwing pim::Error on malformed input.
JsonValue parse_json(const std::string& text);

}  // namespace pim::obs
