#include "obs/metrics.hpp"

#include <algorithm>

namespace pim::obs {

void set_enabled(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }

double TimerSnapshot::quantile_ns(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double seen = 0.0;
  for (const auto& [upper, n] : buckets) {
    seen += static_cast<double>(n);
    if (seen >= target) return static_cast<double>(std::min(upper, max_ns));
  }
  return static_cast<double>(max_ns);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Timer& MetricsRegistry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  for (const auto& [name, t] : timers_) {
    TimerSnapshot ts;
    ts.name = name;
    ts.count = t->count();
    ts.total_ns = t->total_ns();
    ts.min_ns = t->min_ns();
    ts.max_ns = t->max_ns();
    for (int k = 0; k < Timer::kBuckets; ++k) {
      const int64_t n = t->bucket(k);
      if (n > 0) ts.buckets.emplace_back(int64_t{1} << (k + 1), n);
    }
    snap.timers.push_back(std::move(ts));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, t] : timers_) t->reset();
}

}  // namespace pim::obs
