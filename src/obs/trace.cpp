#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

#ifdef __linux__
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace pim::obs {
namespace {

struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  size_t capacity = 1 << 16;
  size_t dropped = 0;
  std::atomic<bool> on{false};
};

TraceBuffer& buffer() {
  static TraceBuffer b;
  return b;
}

// Real OS thread id, so exec worker spans line up with what `top -H`,
// perf, and core dumps report. Falls back to a process-local sequential
// id where no kernel tid is available.
uint32_t this_thread_id() {
#ifdef __linux__
  thread_local const uint32_t id =
      static_cast<uint32_t>(::syscall(SYS_gettid));
  return id;
#else
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
#endif
}

thread_local uint16_t t_depth = 0;

}  // namespace

int64_t now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void set_trace_enabled(bool on, size_t capacity) {
  TraceBuffer& b = buffer();
  std::lock_guard<std::mutex> lock(b.mu);
  b.capacity = capacity == 0 ? 1 : capacity;
  b.events.reserve(std::min(b.capacity, size_t{1} << 12));
  b.on.store(on, std::memory_order_relaxed);
}

bool trace_enabled() { return buffer().on.load(std::memory_order_relaxed); }

std::vector<TraceEvent> trace_events() {
  TraceBuffer& b = buffer();
  std::lock_guard<std::mutex> lock(b.mu);
  return b.events;
}

size_t trace_dropped() {
  TraceBuffer& b = buffer();
  std::lock_guard<std::mutex> lock(b.mu);
  return b.dropped;
}

void clear_trace() {
  TraceBuffer& b = buffer();
  std::lock_guard<std::mutex> lock(b.mu);
  b.events.clear();
  b.dropped = 0;
}

void record_trace_event(const char* name, int64_t start_ns, int64_t dur_ns) {
  if (!trace_enabled()) return;
  TraceBuffer& b = buffer();
  std::lock_guard<std::mutex> lock(b.mu);
  if (b.events.size() >= b.capacity) {
    ++b.dropped;
    return;
  }
  b.events.push_back({name, start_ns, dur_ns, this_thread_id(), t_depth});
}

TraceSpan::TraceSpan(Timer& timer, const char* name)
    : timer_(&timer),
      name_(name),
      timing_(enabled()),
      tracing_(trace_enabled()) {
  start_ns_ = (timing_ || tracing_) ? now_ns() : 0;
  if (tracing_) ++t_depth;
}

TraceSpan::TraceSpan(const char* name) : TraceSpan(registry().timer(name), name) {}

TraceSpan::~TraceSpan() {
  if (!timing_ && !tracing_) return;
  const int64_t end = now_ns();
  if (timing_) timer_->record_ns(end - start_ns_);
  if (!tracing_) return;
  --t_depth;
  TraceBuffer& b = buffer();
  std::lock_guard<std::mutex> lock(b.mu);
  if (b.events.size() >= b.capacity) {
    ++b.dropped;
    return;
  }
  b.events.push_back({name_, start_ns_, end - start_ns_, this_thread_id(), t_depth});
}

}  // namespace pim::obs
