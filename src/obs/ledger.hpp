// Run ledger: one JSON-lines record per CLI command / bench run,
// appended to `<out-dir>/ledger.jsonl` so a directory of runs reads as a
// perf history (docs/observability.md documents the schema).
//
// Each record ("pim.ledger.v1") carries the library/API/cache-format
// versions (util/version.hpp), the command with its resolved flags, the
// corner set, the thread count, the cache temperature (hit/miss/bypass
// counts pulled from the metric snapshot), wall-clock, peak RSS, and the
// full counter/gauge/timer snapshot. Records are appended through the
// same exit-code-contract path that flushes --profile reports, so failed
// runs (exit 2/3/4) land in the ledger too, with their exit code.
//
// Layering: obs sits below cache/exec/api, so the caller supplies the
// strings those layers own (cache mode name, thread count); the cache
// counters themselves come out of the metrics registry by name.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pim::obs {

/// Everything a ledger record needs beyond the metric registry itself.
struct LedgerRecord {
  std::string command;  ///< e.g. "yield", "bench.model_eval"
  /// Resolved flags as (name, value) in command-line order; boolean
  /// flags carry "" as the value.
  std::vector<std::pair<std::string, std::string>> flags;
  std::vector<std::string> positionals;
  std::string corners;     ///< corner spec; "" = nominal
  std::string cache_mode;  ///< "auto", "off", ... (caller-supplied)
  int exit_code = 0;
  int threads = 0;     ///< resolved worker count
  int64_t wall_ns = 0;  ///< whole-run wall clock
};

/// Peak resident set size of this process in bytes (getrusage), or 0
/// where unavailable.
int64_t peak_rss_bytes();

/// Refreshes the process gauges `proc.peak_rss_bytes` and `proc.wall_ns`
/// (monotonic ns since process start). Stored unconditionally so every
/// report/ledger carries them even when hot-path collection is off.
void update_process_gauges();

/// One ledger line (no trailing newline): versions + record + a full
/// snapshot of the global metrics registry, taken after refreshing the
/// process gauges.
std::string ledger_record_json(const LedgerRecord& record);

/// Appends `ledger_record_json(record)` + '\n' to `path`, creating the
/// file (and parent directory) as needed. Best-effort by design: ledger
/// I/O failure must never turn a successful run into a failed one, so
/// errors are swallowed.
void append_ledger_record(const std::string& path, const LedgerRecord& record);

}  // namespace pim::obs
