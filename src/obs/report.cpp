#include "obs/report.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/ledger.hpp"
#include "util/error.hpp"

namespace pim::obs {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  require(out.good(), "obs: cannot open '" + path + "' for writing");
  out << content;
  require(out.good(), "obs: failed writing '" + path + "'");
}

}  // namespace

// Shortest-ish double formatting that stays valid JSON (no inf/nan).
std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Round-trippable but ugly; prefer %g when it reparses exactly.
  char shorter[32];
  std::snprintf(shorter, sizeof shorter, "%g", v);
  double back = 0.0;
  std::sscanf(shorter, "%lf", &back);
  return back == v ? shorter : buf;
}

std::string json_quote(const std::string& s) { return '"' + json_escape(s) + '"'; }

std::string metrics_to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"pim.metrics.v1\",\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << '"' << json_escape(snapshot.counters[i].first)
       << "\": " << snapshot.counters[i].second;
  }
  os << (snapshot.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << '"' << json_escape(snapshot.gauges[i].first)
       << "\": " << json_number(snapshot.gauges[i].second);
  }
  os << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n  \"timers\": {";
  for (size_t i = 0; i < snapshot.timers.size(); ++i) {
    const TimerSnapshot& t = snapshot.timers[i];
    os << (i ? ",\n    " : "\n    ") << '"' << json_escape(t.name) << "\": {"
       << "\"count\": " << t.count << ", \"total_ns\": " << t.total_ns
       << ", \"mean_ns\": " << json_number(t.mean_ns()) << ", \"min_ns\": " << t.min_ns
       << ", \"max_ns\": " << t.max_ns
       << ", \"p50_ns\": " << json_number(t.quantile_ns(0.5))
       << ", \"p99_ns\": " << json_number(t.quantile_ns(0.99)) << "}";
  }
  os << (snapshot.timers.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string metrics_to_csv(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "kind,name,value,count,total_ns,mean_ns,min_ns,max_ns\n";
  for (const auto& [name, v] : snapshot.counters)
    os << "counter," << name << ',' << v << ",,,,,\n";
  for (const auto& [name, v] : snapshot.gauges)
    os << "gauge," << name << ',' << json_number(v) << ",,,,,\n";
  for (const TimerSnapshot& t : snapshot.timers)
    os << "timer," << t.name << ",," << t.count << ',' << t.total_ns << ','
       << json_number(t.mean_ns()) << ',' << t.min_ns << ',' << t.max_ns << '\n';
  return os.str();
}

std::string trace_to_chrome_json(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    os << (i ? ",\n" : "\n") << "{\"ph\": \"X\", \"name\": \"" << json_escape(e.name)
       << "\", \"cat\": \"pim\", \"pid\": 1, \"tid\": " << e.tid
       << ", \"ts\": " << json_number(static_cast<double>(e.start_ns) / 1e3)
       << ", \"dur\": " << json_number(static_cast<double>(e.dur_ns) / 1e3)
       << ", \"args\": {\"depth\": " << e.depth << "}}";
  }
  os << (events.empty() ? "" : "\n") << "],\n\"displayTimeUnit\": \"ns\"}\n";
  return os.str();
}

void save_metrics_json(const std::string& path) {
  update_process_gauges();
  write_file(path, metrics_to_json(registry().snapshot()));
}

void save_metrics_csv(const std::string& path) {
  update_process_gauges();
  write_file(path, metrics_to_csv(registry().snapshot()));
}

void save_trace(const std::string& path) {
  write_file(path, trace_to_chrome_json(trace_events()));
}

// ---------------------------------------------------------------------------
// Minimal JSON reader.

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    require(pos_ == text_.size(), "json: trailing content at offset " + std::to_string(pos_));
    return v;
  }

 private:
  char peek() {
    skip_ws();
    require(pos_ < text_.size(), "json: unexpected end of input");
    return text_[pos_];
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  void expect(char c) {
    require(peek() == c, std::string("json: expected '") + c + "' at offset " +
                             std::to_string(pos_));
    ++pos_;
  }

  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::String;
      v.text = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') return parse_keyword(c == 't' ? "true" : "false", c == 't');
    if (c == 'n') {
      match_keyword("null");
      return JsonValue{};
    }
    return parse_number();
  }

  JsonValue parse_keyword(const char* word, bool value) {
    match_keyword(word);
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.boolean = value;
    return v;
  }

  void match_keyword(const std::string& word) {
    require(text_.compare(pos_, word.size(), word) == 0, "json: bad literal at offset " +
                                                             std::to_string(pos_));
    pos_ += word.size();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    if (consume('}')) return v;
    while (true) {
      std::string key = parse_string();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      if (consume('}')) return v;
      expect(',');
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    if (consume(']')) return v;
    while (true) {
      v.items.push_back(parse_value());
      if (consume(']')) return v;
      expect(',');
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      require(pos_ < text_.size(), "json: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      require(pos_ < text_.size(), "json: unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          require(pos_ + 4 <= text_.size(), "json: truncated \\u escape");
          const unsigned code = static_cast<unsigned>(
              std::stoul(text_.substr(pos_, 4), nullptr, 16));
          pos_ += 4;
          // Reports only emit control characters this way; keep it simple
          // and store the low byte (valid for code points < 0x80).
          out += static_cast<char>(code & 0x7f);
          break;
        }
        default:
          fail("json: bad escape '\\" + std::string(1, esc) + "'");
      }
    }
  }

  JsonValue parse_number() {
    skip_ws();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E'))
      ++pos_;
    require(pos_ > start, "json: expected a value at offset " + std::to_string(start));
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("json: bad number '" + text_.substr(start, pos_ - start) + "'");
    }
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

JsonValue parse_json(const std::string& text) { return JsonParser(text).parse_document(); }

}  // namespace pim::obs
