#include "obs/ledger.hpp"

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifdef __unix__
#include <sys/resource.h>
#endif

#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/version.hpp"

namespace pim::obs {
namespace {

// Wall-clock timestamp as UTC ISO-8601 ("2026-08-08T12:34:56Z"). The
// ledger is append-only history, so unlike metric values this is real
// (non-monotonic) time.
std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#ifdef __unix__
  gmtime_r(&now, &tm);
#else
  tm = *std::gmtime(&now);
#endif
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

int64_t snapshot_counter(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.counters)
    if (n == name) return v;
  return 0;
}

}  // namespace

int64_t peak_rss_bytes() {
#ifdef __unix__
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in KiB (BSD reports bytes; this codebase
  // targets Linux — see ROADMAP).
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;
#else
  return 0;
#endif
}

void update_process_gauges() {
  static Gauge& rss = registry().gauge("proc.peak_rss_bytes");
  static Gauge& wall = registry().gauge("proc.wall_ns");
  rss.force_set(static_cast<double>(peak_rss_bytes()));
  wall.force_set(static_cast<double>(now_ns()));
}

std::string ledger_record_json(const LedgerRecord& record) {
  update_process_gauges();
  const MetricsSnapshot snap = registry().snapshot();

  std::ostringstream os;
  os << "{\"schema\": \"pim.ledger.v1\"";
  os << ", \"ts\": " << json_quote(utc_timestamp());
  os << ", \"version\": {\"pim\": " << json_quote(kVersion)
     << ", \"api\": " << kApiVersionNumber
     << ", \"cache_format\": " << kCacheFormatVersion << "}";
  os << ", \"command\": " << json_quote(record.command);
  os << ", \"positionals\": [";
  for (size_t i = 0; i < record.positionals.size(); ++i)
    os << (i ? ", " : "") << json_quote(record.positionals[i]);
  os << "]";
  os << ", \"flags\": {";
  for (size_t i = 0; i < record.flags.size(); ++i)
    os << (i ? ", " : "") << json_quote(record.flags[i].first) << ": "
       << json_quote(record.flags[i].second);
  os << "}";
  os << ", \"corners\": " << json_quote(record.corners);
  os << ", \"threads\": " << record.threads;
  os << ", \"cache\": {\"mode\": " << json_quote(record.cache_mode)
     << ", \"hit\": " << snapshot_counter(snap, "cache.hit")
     << ", \"miss\": " << snapshot_counter(snap, "cache.miss")
     << ", \"bypass\": " << snapshot_counter(snap, "cache.bypass")
     << ", \"disk_hit\": " << snapshot_counter(snap, "cache.disk.hit") << "}";
  os << ", \"exit_code\": " << record.exit_code;
  os << ", \"wall_ns\": " << record.wall_ns;
  os << ", \"peak_rss_bytes\": " << peak_rss_bytes();

  os << ", \"metrics\": {\"counters\": {";
  for (size_t i = 0; i < snap.counters.size(); ++i)
    os << (i ? ", " : "") << json_quote(snap.counters[i].first) << ": "
       << snap.counters[i].second;
  os << "}, \"gauges\": {";
  for (size_t i = 0; i < snap.gauges.size(); ++i)
    os << (i ? ", " : "") << json_quote(snap.gauges[i].first) << ": "
       << json_number(snap.gauges[i].second);
  os << "}, \"timers\": {";
  for (size_t i = 0; i < snap.timers.size(); ++i) {
    const TimerSnapshot& t = snap.timers[i];
    os << (i ? ", " : "") << json_quote(t.name) << ": {\"count\": " << t.count
       << ", \"total_ns\": " << t.total_ns << ", \"min_ns\": " << t.min_ns
       << ", \"max_ns\": " << t.max_ns
       << ", \"p50_ns\": " << json_number(t.quantile_ns(0.5))
       << ", \"p99_ns\": " << json_number(t.quantile_ns(0.99)) << "}";
  }
  os << "}}}";
  return os.str();
}

void append_ledger_record(const std::string& path, const LedgerRecord& record) {
  try {
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
      std::error_code ec;
      std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(p, std::ios::app);
    if (!out.good()) return;
    out << ledger_record_json(record) << '\n';
  } catch (...) {
    // Ledger writes are best-effort: never fail the run they describe.
  }
}

}  // namespace pim::obs
