// RAII timing spans and a bounded in-memory trace buffer.
//
// ScopedTimer records one wall-time sample into a registry Timer.
// TraceSpan does the same and, when tracing is enabled, also appends a
// completed event (name, start, duration, thread, nesting depth) to the
// process-global trace buffer, which serializes to Chrome
// `chrome://tracing` / Perfetto JSON (see obs/report.hpp).
//
// The buffer is bounded: once full, new events are counted as dropped
// instead of growing memory without limit inside long runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace pim::obs {

/// Monotonic nanoseconds since an arbitrary process-local epoch.
int64_t now_ns();

/// Records `now - start` into a Timer at scope exit. Skips the clock
/// reads entirely when collection is disabled at construction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer)
      : timer_(&timer), start_ns_(enabled() ? now_ns() : 0), active_(enabled()) {}
  ~ScopedTimer() {
    if (active_) timer_->record_ns(now_ns() - start_ns_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  int64_t start_ns_;
  bool active_;
};

/// One completed span in the trace buffer. `name` must outlive the
/// buffer; span call sites pass string literals.
struct TraceEvent {
  const char* name;
  int64_t start_ns;
  int64_t dur_ns;
  uint32_t tid;    // small per-thread id, stable within the process
  uint16_t depth;  // nesting depth on that thread at span entry
};

/// Enables/disables trace-event capture (independent of metric
/// collection; a TraceSpan still records its Timer when only metrics are
/// on). `capacity` bounds the buffer; events past it are dropped.
void set_trace_enabled(bool on, size_t capacity = 1 << 16);
bool trace_enabled();

/// Copy of the captured events, in completion order.
std::vector<TraceEvent> trace_events();

/// Number of events discarded because the buffer was full.
size_t trace_dropped();

/// Empties the buffer and zeroes the dropped tally.
void clear_trace();

/// Appends an already-timed complete event attributed to the calling
/// thread — for call sites (the exec engine's chunk runner) that measure
/// the interval themselves because the duration also feeds metrics.
/// No-op unless tracing is enabled. `name` must be a string literal.
void record_trace_event(const char* name, int64_t start_ns, int64_t dur_ns);

/// ScopedTimer that also emits a TraceEvent when tracing is enabled.
class TraceSpan {
 public:
  TraceSpan(Timer& timer, const char* name);
  /// Resolves the timer by name on every construction; fine for
  /// once-per-command spans, wrong for per-iteration hot paths (use the
  /// PIM_OBS_SPAN macro there).
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Timer* timer_;
  const char* name_;
  int64_t start_ns_;
  bool timing_;
  bool tracing_;
};

}  // namespace pim::obs

/// Hot-path span: resolves the timer once per call site, then times the
/// enclosing scope (and traces it when tracing is enabled).
#define PIM_OBS_CONCAT_INNER(a, b) a##b
#define PIM_OBS_CONCAT(a, b) PIM_OBS_CONCAT_INNER(a, b)
#define PIM_OBS_SPAN(name)                                                    \
  static ::pim::obs::Timer& PIM_OBS_CONCAT(pim_obs_timer_, __LINE__) =        \
      ::pim::obs::registry().timer(name);                                     \
  ::pim::obs::TraceSpan PIM_OBS_CONCAT(pim_obs_span_, __LINE__)(              \
      PIM_OBS_CONCAT(pim_obs_timer_, __LINE__), name)
