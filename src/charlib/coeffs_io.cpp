#include "charlib/coeffs_io.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pim {
namespace {

void emit_edge(std::ostringstream& os, const char* name, const RepeaterEdgeFit& f) {
  os << "  " << name << " {\n";
  os << "    a0 " << format_sig(f.a0, 17) << "\n";
  os << "    a1 " << format_sig(f.a1, 17) << "\n";
  os << "    a2 " << format_sig(f.a2, 17) << "\n";
  os << "    rho0 " << format_sig(f.rho0, 17) << "\n";
  os << "    rho1 " << format_sig(f.rho1, 17) << "\n";
  os << "    b0 " << format_sig(f.b0, 17) << "\n";
  os << "    b1 " << format_sig(f.b1, 17) << "\n";
  os << "    b2 " << format_sig(f.b2, 17) << "\n";
  os << "    r2_intrinsic " << format_sig(f.r2_intrinsic, 17) << "\n";
  os << "    r2_drive_res " << format_sig(f.r2_drive_res, 17) << "\n";
  os << "  }\n";
}

}  // namespace

std::string write_fit(const TechnologyFit& fit) {
  std::ostringstream os;
  os << "coefficients \"" << tech_node_name(fit.node) << "\" {\n";
  os << "  vdd " << format_sig(fit.vdd, 17) << "\n";
  os << "  gamma " << format_sig(fit.gamma, 17) << "\n";
  os << "  leak_n0 " << format_sig(fit.leakage.n0, 17) << "\n";
  os << "  leak_n1 " << format_sig(fit.leakage.n1, 17) << "\n";
  os << "  leak_p0 " << format_sig(fit.leakage.p0, 17) << "\n";
  os << "  leak_p1 " << format_sig(fit.leakage.p1, 17) << "\n";
  os << "  area0 " << format_sig(fit.area0, 17) << "\n";
  os << "  area1 " << format_sig(fit.area1, 17) << "\n";
  os << "  kappa_c_coupled " << format_sig(fit.comp_coupled.kappa_c, 17) << "\n";
  os << "  kappa_c1_coupled " << format_sig(fit.comp_coupled.kappa_c1, 17) << "\n";
  os << "  kappa_w_coupled " << format_sig(fit.comp_coupled.kappa_w, 17) << "\n";
  os << "  worst_err_coupled " << format_sig(fit.comp_coupled.worst_rel_error, 17) << "\n";
  os << "  kappa_c_shielded " << format_sig(fit.comp_shielded.kappa_c, 17) << "\n";
  os << "  kappa_c1_shielded " << format_sig(fit.comp_shielded.kappa_c1, 17) << "\n";
  os << "  kappa_w_shielded " << format_sig(fit.comp_shielded.kappa_w, 17) << "\n";
  os << "  worst_err_shielded " << format_sig(fit.comp_shielded.worst_rel_error, 17) << "\n";
  emit_edge(os, "inv_rise", fit.inv_rise);
  emit_edge(os, "inv_fall", fit.inv_fall);
  emit_edge(os, "buf_rise", fit.buf_rise);
  emit_edge(os, "buf_fall", fit.buf_fall);
  os << "}\n";
  return os.str();
}

namespace {

struct Cursor {
  std::vector<std::vector<std::string>> lines;
  size_t pos = 0;

  const std::vector<std::string>& next() {
    require(pos < lines.size(), "coefficients: unexpected end of input");
    return lines[pos++];
  }
};

RepeaterEdgeFit parse_edge(Cursor& cur) {
  std::map<std::string, double> values;
  while (true) {
    const auto& tokens = cur.next();
    if (tokens.size() == 1 && tokens[0] == "}") break;
    require(tokens.size() == 2, "coefficients: expected 'key value' in edge block");
    values[tokens[0]] = parse_double(tokens[1]);
  }
  auto need = [&](const char* key) {
    const auto it = values.find(key);
    require(it != values.end(), std::string("coefficients: missing edge field '") + key + "'");
    return it->second;
  };
  RepeaterEdgeFit f;
  f.a0 = need("a0");
  f.a1 = need("a1");
  f.a2 = need("a2");
  f.rho0 = need("rho0");
  f.rho1 = need("rho1");
  f.b0 = need("b0");
  f.b1 = need("b1");
  f.b2 = need("b2");
  f.r2_intrinsic = need("r2_intrinsic");
  f.r2_drive_res = need("r2_drive_res");
  return f;
}

}  // namespace

TechnologyFit parse_fit(const std::string& text) {
  Cursor cur;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto tokens = split_whitespace(line);
    if (!tokens.empty()) cur.lines.push_back(tokens);
  }

  const auto& head = cur.next();
  require(head.size() == 3 && head[0] == "coefficients" && head[2] == "{",
          "coefficients: expected 'coefficients \"node\" {'");
  std::string name = head[1];
  if (name.size() >= 2 && name.front() == '"' && name.back() == '"')
    name = name.substr(1, name.size() - 2);

  TechnologyFit fit;
  fit.node = tech_node_from_name(name);
  std::map<std::string, double> scalars;
  while (true) {
    const auto& tokens = cur.next();
    if (tokens.size() == 1 && tokens[0] == "}") break;
    if (tokens.size() == 2 && tokens[1] == "{") {
      const std::string& block = tokens[0];
      if (block == "inv_rise") {
        fit.inv_rise = parse_edge(cur);
      } else if (block == "inv_fall") {
        fit.inv_fall = parse_edge(cur);
      } else if (block == "buf_rise") {
        fit.buf_rise = parse_edge(cur);
      } else if (block == "buf_fall") {
        fit.buf_fall = parse_edge(cur);
      } else {
        fail("coefficients: unknown block '" + block + "'");
      }
    } else if (tokens.size() == 2) {
      scalars[tokens[0]] = parse_double(tokens[1]);
    } else {
      fail("coefficients: malformed line");
    }
  }
  auto need = [&](const char* key) {
    const auto it = scalars.find(key);
    require(it != scalars.end(), std::string("coefficients: missing field '") + key + "'");
    return it->second;
  };
  fit.vdd = need("vdd");
  fit.gamma = need("gamma");
  fit.leakage.n0 = need("leak_n0");
  fit.leakage.n1 = need("leak_n1");
  fit.leakage.p0 = need("leak_p0");
  fit.leakage.p1 = need("leak_p1");
  fit.area0 = need("area0");
  fit.area1 = need("area1");
  fit.comp_coupled.kappa_c = need("kappa_c_coupled");
  fit.comp_coupled.kappa_c1 = need("kappa_c1_coupled");
  fit.comp_coupled.kappa_w = need("kappa_w_coupled");
  fit.comp_coupled.worst_rel_error = need("worst_err_coupled");
  fit.comp_shielded.kappa_c = need("kappa_c_shielded");
  fit.comp_shielded.kappa_c1 = need("kappa_c1_shielded");
  fit.comp_shielded.kappa_w = need("kappa_w_shielded");
  fit.comp_shielded.worst_rel_error = need("worst_err_shielded");
  return fit;
}

void save_fit(const TechnologyFit& fit, const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "save_fit: cannot open '" + path + "'");
  out << write_fit(fit);
  require(out.good(), "save_fit: write failed");
}

TechnologyFit load_fit(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "load_fit: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_fit(buffer.str());
}

}  // namespace pim
