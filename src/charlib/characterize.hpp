// Cell characterization: builds NLDM tables, input capacitance, leakage,
// and area for repeater cells by driving transistor-level simulations —
// the library's substitute for running HSPICE against a foundry deck
// (paper §III-E: "the required data set ... can be generated using SPICE
// simulations").
//
// Measurement setup per operating point: the cell input is driven by an
// ideal saturated ramp of the requested slew, a lumped capacitor loads the
// output, and the 50 % delay plus 20-80 % output slew (scaled to
// full-swing) are extracted. Input capacitance is measured as the charge
// the input source delivers across a full swing divided by vdd; leakage
// comes from the device off-current at each static state; area from the
// finger-quantized layout model (paper §III-C).
//
// The (slew x load) deck sweep fans out over the pim::exec engine —
// tables are bit-identical at any --threads count (docs/parallelism.md).
#pragma once

#include "liberty/library.hpp"
#include "tech/technology.hpp"

namespace pim {

/// Sweep axes and simulation controls for characterization.
struct CharacterizationOptions {
  /// Input-slew samples [s]. Defaults span the regime global repeaters see.
  Vector slew_axis = {10e-12, 50e-12, 120e-12, 250e-12, 400e-12};
  /// Load samples expressed as multiples of the cell's own input
  /// capacitance (fanout); converted to farads per cell.
  Vector fanout_axis = {1.0, 4.0, 10.0, 25.0};
  /// Drive strengths to characterize; empty = standard_drive_strengths().
  std::vector<int> drives;
  /// Kinds to characterize.
  bool inverters = true;
  bool buffers = true;
  /// Simulation resolution: timestep ceiling [s].
  double dt_max = 1e-12;
  /// Graceful-degradation quorum: a (slew x load) sweep whose surviving
  /// fraction of points drops below this fails with no_convergence;
  /// above it, failed points are skipped, recorded in the
  /// "charlib.deck.error" counter, and patched from their nearest
  /// surviving neighbor so the downstream fits stay well-posed.
  double sweep_quorum = 0.7;
  /// Use the scalar reference transient engine (one netlist build and
  /// solve per table point) instead of the compiled-plan batched path.
  /// The tables are bit-identical either way (docs/kernels.md); this
  /// exists for A/B verification and as the charlib_sweep benchmark
  /// baseline.
  bool reference_engine = false;
};

/// Widths of the devices making up one repeater cell. For inverters only
/// the output stage exists; buffers have a first (input) stage a quarter
/// of the output stage's size (minimum one unit).
struct RepeaterSizing {
  double wn_out = 0.0;
  double wp_out = 0.0;
  double wn_in = 0.0;  ///< 0 for inverters
  double wp_in = 0.0;  ///< 0 for inverters
};

/// Device sizing for a cell of the given kind/drive in `tech`.
RepeaterSizing repeater_sizing(const Technology& tech, CellKind kind, int drive);

/// Layout ("golden") cell area from the finger-quantization model: the
/// staircase this produces is what the paper's linear area regression
/// approximates to within a few percent.
double golden_cell_area(const Technology& tech, double wn, double wp);

/// Characterizes one cell: fills both timing tables, input cap, leakage,
/// and area.
RepeaterCell characterize_cell(const Technology& tech, CellKind kind, int drive,
                               const CharacterizationOptions& options = {});

/// Characterizes a whole library for `tech`.
CellLibrary characterize_library(const Technology& tech,
                                 const CharacterizationOptions& options = {});

}  // namespace pim
