#include "charlib/characterize.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "deadline/deadline.hpp"
#include "exec/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "spice/batch.hpp"
#include "spice/measure.hpp"
#include "spice/plan.hpp"
#include "spice/transient.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace pim {
namespace {

constexpr double kEdgeStart = 20e-12;  // input edge launch time [s]
constexpr double kTailMargin = 1.2e-9; // window after the edge completes [s]

// Builds the cell under test: returns the circuit plus its pin nodes.
struct CellUnderTest {
  Circuit circuit;
  NodeId vdd = 0;
  NodeId in = 0;
  NodeId out = 0;
};

CellUnderTest build_cell(const Technology& tech, CellKind kind,
                         const RepeaterSizing& sz, const Waveform& input_wave) {
  CellUnderTest cut;
  cut.vdd = cut.circuit.add_node("vdd");
  cut.in = cut.circuit.add_node("in");
  cut.out = cut.circuit.add_node("out");
  cut.circuit.add_vsource(cut.vdd, Waveform::dc(tech.vdd));
  cut.circuit.add_vsource(cut.in, input_wave);
  if (kind == CellKind::Inverter) {
    cut.circuit.add_inverter(tech.devices(), sz.wn_out, sz.wp_out, cut.in, cut.out, cut.vdd);
  } else {
    const NodeId mid = cut.circuit.add_node("mid");
    cut.circuit.add_inverter(tech.devices(), sz.wn_in, sz.wp_in, cut.in, mid, cut.vdd);
    cut.circuit.add_inverter(tech.devices(), sz.wn_out, sz.wp_out, mid, cut.out, cut.vdd);
  }
  return cut;
}

TransientOptions sim_options(double slew, double dt_max) {
  TransientOptions opt;
  opt.dt = std::max(0.25e-12, std::min(dt_max, slew / 40.0));
  opt.t_stop = kEdgeStart + slew + kTailMargin;
  opt.t_settle = 0.5e-9;
  opt.settle_steps = 120;
  return opt;
}

// One (slew, load) timing measurement for the requested *output* edge.
struct TimingPoint {
  double delay;
  double out_slew;
};

// Output polarity follows the input for buffers and inverts for
// inverters.
bool input_rises_for(CellKind kind, EdgeKind out_edge) {
  return (kind == CellKind::Inverter) == (out_edge == EdgeKind::Falling);
}

Waveform input_ramp(const Technology& tech, bool input_rises, double slew) {
  const double v0 = input_rises ? 0.0 : tech.vdd;
  return Waveform::ramp(v0, tech.vdd - v0, kEdgeStart, slew);
}

TimingPoint extract_timing(const TransientResult& res, NodeId in, NodeId out,
                           EdgeKind out_edge, bool input_rises, double vdd) {
  const EdgeKind in_edge = input_rises ? EdgeKind::Rising : EdgeKind::Falling;
  TimingPoint pt;
  pt.delay = delay_50(res.time, res.trace(in), in_edge, res.trace(out),
                      out_edge, vdd);
  pt.out_slew = measure_slew(res.time, res.trace(out), out_edge, vdd);
  return pt;
}

// Scalar reference path: builds and solves one deck per (edge, slew,
// load) point with the original per-Mosfet engine. Kept for A/B
// verification against the batched path and as the charlib_sweep
// benchmark baseline.
TimingPoint measure_timing(const Technology& tech, CellKind kind,
                           const RepeaterSizing& sz, EdgeKind out_edge,
                           double slew, double load, double dt_max) {
  PIM_COUNT("charlib.deck.simulated");
  const bool input_rises = input_rises_for(kind, out_edge);
  CellUnderTest cut = build_cell(tech, kind, sz, input_ramp(tech, input_rises, slew));
  cut.circuit.add_capacitor(cut.out, cut.circuit.ground(), load);
  const TransientResult res = run_transient_reference(
      cut.circuit, sim_options(slew, dt_max), {cut.in, cut.out});
  return extract_timing(res, cut.in, cut.out, out_edge, input_rises, tech.vdd);
}

// Compiled measurement fixture, built once per cell: the deck is
// constructed and compiled a single time, and every (edge, slew, load)
// measurement re-stamps it through lane overrides instead of re-building
// the netlist (docs/kernels.md). The plan is immutable after compile and
// shared read-only across the sweep's exec workers.
struct CellFixture {
  CompiledCircuit plan;
  NodeId in = 0;
  NodeId out = 0;
  size_t input_vsource = 1;  ///< vsources: vdd first, input second
  size_t load_cap = 0;       ///< placeholder load, overridden per lane
};

CellFixture compile_cell(const Technology& tech, CellKind kind,
                         const RepeaterSizing& sz) {
  // Placeholder input wave and load value: every lane overrides both, so
  // the nominal values never reach a solve. The load capacitor is
  // appended last, exactly where measure_timing adds it, keeping the
  // stamp emission order — and therefore every result bit — identical to
  // a deck built directly for the point.
  CellUnderTest cut = build_cell(tech, kind, sz, Waveform::dc(0.0));
  cut.circuit.add_capacitor(cut.out, cut.circuit.ground(), 1e-15);
  CellFixture fx;
  fx.in = cut.in;
  fx.out = cut.out;
  fx.load_cap = cut.circuit.capacitors().size() - 1;
  fx.plan = CompiledCircuit::compile(cut.circuit, TransientOptions{}.band_threshold);
  return fx;
}

// Both output edges of one (slew, load) operating point. Each edge
// carries its own outcome so the rise and fall tables keep independent
// failure bookkeeping (and independent quorums) even though they now
// share one simulation batch.
struct EdgeOutcome {
  std::optional<TimingPoint> point;
  std::optional<Error> error;
};
struct PointOutcome {
  EdgeOutcome rise, fall;
};

constexpr EdgeKind kTableEdges[2] = {EdgeKind::Rising, EdgeKind::Falling};

PointOutcome measure_point(const Technology& tech, CellKind kind,
                           const RepeaterSizing& sz, const CellFixture* fx,
                           double slew, double load, double dt_max) {
  PointOutcome out;
  EdgeOutcome* edges[2] = {&out.rise, &out.fall};
  if (fx == nullptr) {  // scalar reference engine
    for (int e = 0; e < 2; ++e) {
      try {
        edges[e]->point =
            measure_timing(tech, kind, sz, kTableEdges[e], slew, load, dt_max);
      } catch (const Error& err) {
        edges[e]->error = err;
      }
    }
    return out;
  }
  // Batched path: both edges of the point ride one two-lane lockstep
  // batch over the cell's compiled plan (rise lane first, matching the
  // table order). A lane failure is typed and isolated, so one edge can
  // fail while its sibling survives.
  std::vector<LaneSpec> lanes(2);
  bool in_rises[2];
  for (int e = 0; e < 2; ++e) {
    PIM_COUNT("charlib.deck.simulated");
    in_rises[e] = input_rises_for(kind, kTableEdges[e]);
    lanes[e].vsource_wave.emplace_back(fx->input_vsource,
                                       input_ramp(tech, in_rises[e], slew));
    lanes[e].cap_farads.emplace_back(fx->load_cap, load);
  }
  TransientBatch batch = run_transient_batch(fx->plan, sim_options(slew, dt_max),
                                             {fx->in, fx->out}, lanes);
  for (int e = 0; e < 2; ++e) {
    try {
      const TransientResult res = std::move(batch.lanes[e]).take();
      edges[e]->point = extract_timing(res, fx->in, fx->out, kTableEdges[e],
                                       in_rises[e], tech.vdd);
    } catch (const Error& err) {
      edges[e]->error = err;
    }
  }
  return out;
}

// Input capacitance: charge the input source delivers over a full swing.
double measure_input_cap(const Technology& tech, CellKind kind,
                         const RepeaterSizing& sz, double dt_max) {
  PIM_COUNT("charlib.deck.simulated");
  const double slew = 100e-12;
  const Waveform input = Waveform::ramp(0.0, tech.vdd, kEdgeStart, slew);
  CellUnderTest cut = build_cell(tech, kind, sz, input);
  TransientOptions opt = sim_options(slew, dt_max);
  opt.t_stop = kEdgeStart + slew + 0.3e-9;
  const TransientResult res = run_transient(cut.circuit, opt, {});
  // vsources were added in order: vdd first, input second.
  const double q_in = res.sources[1].charge;
  return std::fabs(q_in) / tech.vdd;
}

struct SweepTables {
  TimingTable rise, fall;
};

SweepTables characterize_tables(const Technology& tech, CellKind kind,
                                const RepeaterSizing& sz, const Vector& slew_axis,
                                const Vector& load_axis, double dt_max,
                                double quorum, bool reference_engine) {
  PIM_OBS_SPAN("charlib.sweep.characterize");

  // The points are independent, so the (slew x load) sweep fans out over
  // the exec engine; results land by flattened index, which keeps both
  // tables — and the failure bookkeeping below — bit-identical at any
  // thread count. One exec item covers both output edges of its point
  // (a two-lane batch on the compiled plan), so the per-item deadline
  // draw pattern truncates the rise and fall tables at the same cutoff.
  std::optional<CellFixture> fixture;
  if (!reference_engine) fixture = compile_cell(tech, kind, sz);
  const size_t cols = load_axis.size();
  const auto batch = exec::parallel_try_map<PointOutcome>(
      slew_axis.size() * cols, [&](size_t idx) {
        return measure_point(tech, kind, sz, fixture ? &*fixture : nullptr,
                             slew_axis[idx / cols], load_axis[idx % cols], dt_max);
      });

  SweepTables out;
  TimingTable* tables[2] = {&out.rise, &out.fall};
  for (int e = 0; e < 2; ++e) {
    TimingTable& t = *tables[e];
    t.slew_axis = slew_axis;
    t.load_axis = load_axis;
    t.delay = Matrix(slew_axis.size(), load_axis.size());
    t.out_slew = Matrix(slew_axis.size(), load_axis.size());

    // Graceful degradation: a failed deck (Newton non-convergence,
    // singular system, injected fault) is skipped and recorded rather
    // than aborting the sweep; the fit only fails when survivors drop
    // below the quorum. Each table judges only its own edge's failures.
    std::vector<std::pair<size_t, size_t>> failed;
    std::string first_failure;
    const auto record_failure = [&](size_t idx, const Error& err) {
      PIM_COUNT("charlib.deck.error");
      if (first_failure.empty()) first_failure = err.what();
      log_warn("characterize: ", e == 0 ? "rise" : "fall", " deck failed at slew ",
               format_sig(slew_axis[idx / cols] / 1e-12, 3), " ps, load ",
               format_sig(load_axis[idx % cols] / 1e-15, 3), " fF: ",
               err.message());
      failed.emplace_back(idx / cols, idx % cols);
    };
    for (size_t idx = 0; idx < batch.values.size(); ++idx) {
      if (!batch.values[idx]) continue;
      const EdgeOutcome& eo = e == 0 ? batch.values[idx]->rise : batch.values[idx]->fall;
      if (eo.point) {
        t.delay(idx / cols, idx % cols) = eo.point->delay;
        t.out_slew(idx / cols, idx % cols) = eo.point->out_slew;
      } else if (eo.error) {
        record_failure(idx, *eo.error);
      }
    }
    // A whole-item failure (an exception escaped the point measurement)
    // loses both edges.
    for (size_t k = 0; k < batch.failed.size(); ++k)
      record_failure(batch.failed[k], batch.errors[k]);
    // A deadline/cancel stop leaves the tail of the sweep un-run; those
    // points join the failed list so the same quorum + neighbor-patching
    // path bounds and repairs them. The batch's prefix cutoff is
    // identical at any thread count, so the patched tables are too.
    if (batch.truncated()) {
      t.partial = true;
      t.stop = batch.stop;
      for (size_t idx = batch.completed; idx < batch.values.size(); ++idx) {
        if (batch.values[idx]) continue;  // defensive: engine already discarded
        failed.emplace_back(idx / cols, idx % cols);
      }
      log_warn("characterize: sweep stopped after ", batch.completed, " of ",
               batch.values.size(), " points (",
               deadline::stop_reason_name(batch.stop), "); patching the tail");
    }
    if (failed.empty()) continue;

    const size_t total = slew_axis.size() * load_axis.size();
    const size_t surviving = total - failed.size();
    if (static_cast<double>(surviving) < quorum * static_cast<double>(total)) {
      // Below the quorum nothing trustworthy can be patched. When the
      // shortfall came from a stop, surface the typed deadline/cancel
      // error (the CLI maps it to its own exit code) instead of
      // no_convergence.
      if (batch.truncated())
        throw deadline::stop_error(batch.stop, batch.completed, total);
      throw Error("characterize_table: only " + std::to_string(surviving) + " of " +
                      std::to_string(total) + " sweep points survived (quorum " +
                      format_sig(100.0 * quorum, 3) + " %); first failure: " + first_failure,
                  ErrorCode::no_convergence);
    }

    // Patch each hole from its nearest surviving neighbor (index-space
    // Manhattan distance) so interpolation and the downstream regressions
    // stay well-posed. The patched values slightly bias the fit, which the
    // quorum bounds.
    const auto is_failed = [&](size_t i, size_t j) {
      for (const auto& [fi, fj] : failed)
        if (fi == i && fj == j) return true;
      return false;
    };
    for (const auto& [i, j] : failed) {
      size_t best_i = 0;
      size_t best_j = 0;
      size_t best_d = static_cast<size_t>(-1);
      for (size_t a = 0; a < slew_axis.size(); ++a) {
        for (size_t b = 0; b < load_axis.size(); ++b) {
          if (is_failed(a, b)) continue;
          const size_t d = (a > i ? a - i : i - a) + (b > j ? b - j : j - b);
          if (d < best_d) {
            best_d = d;
            best_i = a;
            best_j = b;
          }
        }
      }
      t.delay(i, j) = t.delay(best_i, best_j);
      t.out_slew(i, j) = t.out_slew(best_i, best_j);
      PIM_COUNT("charlib.point.recovered");
    }
  }
  return out;
}

}  // namespace

RepeaterSizing repeater_sizing(const Technology& tech, CellKind kind, int drive) {
  require(drive >= 1, "repeater_sizing: drive must be >= 1");
  RepeaterSizing sz;
  sz.wn_out = tech.drive_nmos_width(drive);
  sz.wp_out = tech.pmos_width(sz.wn_out);
  if (kind == CellKind::Buffer) {
    // First stage is a quarter of the output stage (min one unit) — the
    // classic staged-buffer recipe that keeps intrinsic delay nearly
    // drive-independent (paper §III-A).
    const int in_drive = std::max(1, drive / 4);
    sz.wn_in = tech.drive_nmos_width(in_drive);
    sz.wp_in = tech.pmos_width(sz.wn_in);
  }
  return sz;
}

double golden_cell_area(const Technology& tech, double wn, double wp) {
  require(wn > 0.0 && wp > 0.0, "golden_cell_area: widths must be positive");
  const double usable = tech.area.row_height - 4.0 * tech.area.contact_pitch;
  require(usable > 0.0, "golden_cell_area: row height too small for contact pitch");
  const double fingers = std::max(1.0, std::ceil((wn + wp) / usable));
  const double cell_width = (fingers + 1.0) * tech.area.contact_pitch;
  return tech.area.row_height * cell_width;
}

RepeaterCell characterize_cell(const Technology& tech, CellKind kind, int drive,
                               const CharacterizationOptions& options) {
  PIM_OBS_SPAN("charlib.cell.characterize");
  PIM_COUNT("charlib.cell.count");
  require(options.slew_axis.size() >= 2, "characterize_cell: need >= 2 slew samples");
  require(options.fanout_axis.size() >= 2, "characterize_cell: need >= 2 load samples");

  const RepeaterSizing sz = repeater_sizing(tech, kind, drive);

  RepeaterCell cell;
  cell.name = repeater_cell_name(kind, drive);
  cell.kind = kind;
  cell.drive = drive;
  cell.wn = sz.wn_out;
  cell.wp = sz.wp_out;
  // The input-cap deck sits outside the sweep's quorum umbrella (there is
  // no neighbor to patch a scalar from), so a transient failure here gets
  // a bounded retry of its own before it can abort the cell.
  for (int attempt = 0;; ++attempt) {
    try {
      cell.input_cap = measure_input_cap(tech, kind, sz, 1e-12 / (1 << attempt));
      break;
    } catch (const Error& e) {
      PIM_COUNT("charlib.deck.error");
      if (e.code() == ErrorCode::bad_input || attempt >= 2)
        throw e.with_context("measuring input cap of " + cell.name);
      log_warn("characterize_cell: input-cap deck failed (attempt ",
               attempt + 1, "): ", e.message());
    }
  }

  // Leakage per output state. Output high: the output-stage NMOS is off
  // (and for buffers the first-stage PMOS, whose input is then high ->
  // internal node low -> its PMOS off... the off devices per state are:
  //   output high: NMOS(out stage) + NMOS(in stage)  [in = low for buffer]
  //   output low : PMOS(out stage) + PMOS(in stage)
  // For a buffer with output high its input is high, internal node low:
  // first stage has input high -> NMOS on, PMOS off -> PMOS(in) leaks.
  {
    const double vdd = tech.vdd;
    double high_state = off_current(tech.nmos, sz.wn_out, vdd);
    double low_state = off_current(tech.pmos, sz.wp_out, vdd);
    if (kind == CellKind::Buffer) {
      high_state += off_current(tech.pmos, sz.wp_in, vdd);
      low_state += off_current(tech.nmos, sz.wn_in, vdd);
    }
    // Layout effect: each device finger adds edge (STI-stress / narrow-
    // width) leakage — a few percent of a unit device per finger. This is
    // the quantized nonlinearity the paper's *linear* leakage regression
    // approximates to within ~11 %.
    const double usable = tech.area.row_height - 4.0 * tech.area.contact_pitch;
    const double total_w = sz.wn_out + sz.wp_out + sz.wn_in + sz.wp_in;
    const double fingers = std::max(1.0, std::ceil(total_w / usable));
    const double edge_w = 0.06 * tech.unit_nmos_width;  // per-finger edge device
    const double edge_leak = fingers * off_current(tech.nmos, edge_w, vdd);
    cell.leakage_nmos = vdd * (high_state + edge_leak);
    cell.leakage_pmos = vdd * (low_state + edge_leak);
  }

  cell.area = golden_cell_area(tech, sz.wn_out + sz.wn_in, sz.wp_out + sz.wp_in);

  Vector loads(options.fanout_axis.size());
  for (size_t i = 0; i < loads.size(); ++i) loads[i] = options.fanout_axis[i] * cell.input_cap;

  try {
    SweepTables tables =
        characterize_tables(tech, kind, sz, options.slew_axis, loads, options.dt_max,
                            options.sweep_quorum, options.reference_engine);
    cell.rise = std::move(tables.rise);
    cell.fall = std::move(tables.fall);
  } catch (const Error& e) {
    throw e.with_context("characterizing cell " + cell.name);
  }
  return cell;
}

CellLibrary characterize_library(const Technology& tech,
                                 const CharacterizationOptions& options) {
  PIM_OBS_SPAN("charlib.library.characterize");
  const std::vector<int>& drives =
      options.drives.empty() ? standard_drive_strengths() : options.drives;
  CellLibrary lib("pim_" + tech.name, tech.node, tech.vdd);
  for (int drive : drives) {
    if (options.inverters)
      lib.add_cell(characterize_cell(tech, CellKind::Inverter, drive, options));
    if (options.buffers)
      lib.add_cell(characterize_cell(tech, CellKind::Buffer, drive, options));
  }
  return lib;
}

}  // namespace pim
