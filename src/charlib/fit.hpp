// Regression fitting of the paper's closed-form model coefficients from
// characterization data (paper §III-A, Table I).
//
// Per repeater kind and output edge:
//   intrinsic delay    i(s)        = a0 + a1 s + a2 s^2          (quadratic)
//   drive resistance   rd(s, wr)   = (rho0 + rho1 s) / wr        (linear in
//                                    slew; both terms ~ 1/size)
//   output slew        so(s,cl,wr) = b0 + b1 s + b2 cl / wr
// with wr = pMOS width for rise transitions and nMOS width for fall
// (paper §III-A).
//
// DEVIATION FROM THE PAPER (documented in DESIGN.md): the paper reports
// the slew coefficient so1 as ~1/size and the load coefficient so2 as
// size-independent. Our alpha-power golden device is exactly
// self-similar — output slew is a function of (s, cl/wr) — so the load
// slope scales as 1/size (it is proportional to the drive resistance)
// while the slew coefficient is size-independent. Applying the paper's
// own methodology (place a 1/wr dependence wherever the per-size
// regressions show one) puts the 1/wr factor on b2 here. Likewise the
// intrinsic-delay curvature a2 comes out slightly negative (saturating)
// rather than positive; the regression machinery is identical either
// way. Shared across kinds:
//   input capacitance  ci          = gamma (wp + wn)             (zero-intercept)
//   leakage            psn/psp     = l0 + l1 w                   (linear)
//   repeater area      ar          = area0 + area1 wn            (linear)
#pragma once

#include "liberty/library.hpp"
#include "tech/technology.hpp"
#include "tech/wire.hpp"

namespace pim {

/// Coefficients of one (kind, edge) delay/slew model.
struct RepeaterEdgeFit {
  // intrinsic delay i(s) = a0 + a1 s + a2 s^2 [s]
  double a0 = 0.0;
  double a1 = 0.0;
  double a2 = 0.0;  // [1/s]
  // drive resistance rd = (rho0 + rho1 s) / wr [ohm], wr in meters
  double rho0 = 0.0;  // [ohm*m]
  double rho1 = 0.0;  // [ohm*m/s]
  // output slew so = b0 + b1 s + b2 cl / wr
  double b0 = 0.0;  // [s]
  double b1 = 0.0;  // [-]
  double b2 = 0.0;  // [s*m/F]
  // goodness of fit diagnostics
  double r2_intrinsic = 0.0;
  double r2_drive_res = 0.0;

  /// d_r = i(s) + rd(s, wr) * cl.
  double eval_delay(double slew, double load, double wr) const {
    return a0 + a1 * slew + a2 * slew * slew + drive_resistance(slew, wr) * load;
  }

  double drive_resistance(double slew, double wr) const {
    return (rho0 + rho1 * slew) / wr;
  }

  double eval_out_slew(double slew, double load, double wr) const {
    return b0 + b1 * slew + b2 * load / wr;
  }
};

/// One style class's composition weights (see TechnologyFit below).
/// The driver's wire load is weighted separately for the slew-independent
/// (rho0) and slew-dependent (rho1) parts of the drive resistance: on a
/// long resistive wire the far capacitance charges late regardless of the
/// input edge, so the slew interaction saturates and needs its own,
/// smaller weight.
struct CompositionWeights {
  double kappa_c = 1.0;   ///< wire-capacitance weight on the rho0 term (and the slew chain)
  double kappa_c1 = 1.0;  ///< wire-capacitance weight on the rho1 * s term
  double kappa_w = 1.0;   ///< weight of the additive distributed-wire term
  /// Worst relative delay error over the calibration training chains.
  double worst_rel_error = 0.0;
};

/// Leakage-power fit, per device polarity: p = l0 + l1 * w [W], w in m.
struct LeakageFit {
  double n0 = 0.0;
  double n1 = 0.0;  // [W/m]
  double p0 = 0.0;
  double p1 = 0.0;

  double eval_nmos(double wn) const { return n0 + n1 * wn; }
  double eval_pmos(double wp) const { return p0 + p1 * wp; }
  /// Paper's state-averaged p_s = (p_sn + p_sp) / 2.
  double eval_avg(double wn, double wp) const {
    return 0.5 * (eval_nmos(wn) + eval_pmos(wp));
  }
};

/// All fitted coefficients of one technology (one Table I column).
struct TechnologyFit {
  TechNode node = TechNode::N90;
  double vdd = 0.0;
  RepeaterEdgeFit inv_rise;
  RepeaterEdgeFit inv_fall;
  RepeaterEdgeFit buf_rise;
  RepeaterEdgeFit buf_fall;
  double gamma = 0.0;   ///< ci = gamma (wp + wn) [F/m]
  LeakageFit leakage;
  double area0 = 0.0;   ///< ar = area0 + area1 wn [m^2]
  double area1 = 0.0;   ///< [m]

  // Composition-calibration weights (fitted by pim::sta against golden
  // single-stage distributed lines; 1.0 = the paper's raw composition).
  // Because the fitted rd maps a LUMPED load to a full 50 % delay, the
  // distributed wire presents a smaller effective capacitance to the
  // driver (kappa_c) and the additive Pamunuwa wire term must be
  // deweighted (kappa_w) to avoid double counting. Coupled styles (the
  // Miller transient) and shielded styles (static coupling to ground)
  // compose differently, so each style class carries its own pair.
  // See DESIGN.md.
  CompositionWeights comp_coupled;
  CompositionWeights comp_shielded;

  /// The composition weights for a design style.
  const CompositionWeights& composition(DesignStyle style) const {
    return style == DesignStyle::Shielded ? comp_shielded : comp_coupled;
  }

  /// The (kind, edge) fit; throws if the kind was not characterized.
  const RepeaterEdgeFit& edge_fit(CellKind kind, bool rising) const;
};

/// Fits all coefficients from a characterized library. The library must
/// contain at least three inverter drives; buffer fits are produced when
/// buffer cells are present.
TechnologyFit fit_technology(const Technology& tech, const CellLibrary& library);

/// Fits one (kind, edge) model from the cells of that kind.
RepeaterEdgeFit fit_repeater_edge(const std::vector<const RepeaterCell*>& cells,
                                  bool rising);

}  // namespace pim
