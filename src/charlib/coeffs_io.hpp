// Text serialization of fitted model coefficients (a Table I column).
// Lets tools characterize once and reload instantly — characterization
// runs thousands of transistor-level simulations, the coefficient file is
// a handful of numbers.
//
// Format: line-based `key value` pairs inside a `coefficients "90nm" {}`
// block, one sub-block per (kind, edge) fit.
#pragma once

#include <string>

#include "charlib/fit.hpp"

namespace pim {

std::string write_fit(const TechnologyFit& fit);
TechnologyFit parse_fit(const std::string& text);

void save_fit(const TechnologyFit& fit, const std::string& path);
TechnologyFit load_fit(const std::string& path);

}  // namespace pim
