#include "charlib/fit.hpp"
#include <algorithm>

#include "numeric/regression.hpp"
#include "util/error.hpp"

namespace pim {

const RepeaterEdgeFit& TechnologyFit::edge_fit(CellKind kind, bool rising) const {
  if (kind == CellKind::Inverter) return rising ? inv_rise : inv_fall;
  return rising ? buf_rise : buf_fall;
}

RepeaterEdgeFit fit_repeater_edge(const std::vector<const RepeaterCell*>& cells,
                                  bool rising) {
  require(cells.size() >= 3, "fit_repeater_edge: need at least three cell sizes");
  RepeaterEdgeFit fit;

  // Per-cell intermediate quantities.
  Vector inv_wr;           // 1 / wr per cell
  Vector rd0_cells;        // slew-intercept of rd per cell
  Vector rd1_cells;        // slew-slope of rd per cell
  Vector so_c1_cells;      // slew coefficient of output slew per cell
  Vector so_c0_cells;      // intercept of output slew per cell
  Vector so_c2_cells;      // load coefficient of output slew per cell
  Vector intrinsic_slews;  // pooled (slew, intercept) samples across cells
  Vector intrinsic_values;

  double r2_rd_worst = 1.0;

  for (const RepeaterCell* cell : cells) {
    const TimingTable& table = rising ? cell->rise : cell->fall;
    require(table.valid(), "fit_repeater_edge: cell '" + cell->name + "' lacks tables");
    // wr is the device that drives this edge: PMOS for rise, NMOS for fall.
    const double wr = rising ? cell->wp : cell->wn;

    // Step 1: per input slew, delay is linear in load: intercept is the
    // intrinsic delay sample, slope is the drive resistance sample.
    Vector rd_samples(table.slew_axis.size());
    for (size_t i = 0; i < table.slew_axis.size(); ++i) {
      Vector d(table.load_axis.size());
      for (size_t j = 0; j < table.load_axis.size(); ++j) d[j] = table.delay(i, j);
      const LinearFit line = fit_linear(table.load_axis, d);
      intrinsic_slews.push_back(table.slew_axis[i]);
      intrinsic_values.push_back(line.intercept);
      rd_samples[i] = line.slope;
    }

    // Step 2: drive resistance is linear in slew for this cell.
    const LinearFit rd_line = fit_linear(table.slew_axis, rd_samples);
    inv_wr.push_back(1.0 / wr);
    rd0_cells.push_back(rd_line.intercept);
    rd1_cells.push_back(rd_line.slope);
    r2_rd_worst = std::min(r2_rd_worst, rd_line.r_squared);

    // Step 3: output slew is multilinear in (slew, load) for this cell.
    std::vector<Vector> predictors(2);
    Vector so;
    for (size_t i = 0; i < table.slew_axis.size(); ++i) {
      for (size_t j = 0; j < table.load_axis.size(); ++j) {
        predictors[0].push_back(table.slew_axis[i]);
        predictors[1].push_back(table.load_axis[j]);
        so.push_back(table.out_slew(i, j));
      }
    }
    const MultiLinearFit so_fit = fit_multilinear(predictors, so);
    so_c0_cells.push_back(so_fit.coeff[0]);
    so_c1_cells.push_back(so_fit.coeff[1]);
    so_c2_cells.push_back(so_fit.coeff[2]);
  }

  // Intrinsic delay: quadratic in slew, pooled across sizes (paper Fig. 1:
  // size-independent).
  const PolynomialFit intrinsic = fit_polynomial(intrinsic_slews, intrinsic_values, 2);
  fit.a0 = intrinsic.coeff[0];
  fit.a1 = intrinsic.coeff[1];
  fit.a2 = intrinsic.coeff[2];
  fit.r2_intrinsic = intrinsic.r_squared;

  // Drive resistance ~ 1/size: zero-intercept regressions on 1/wr.
  fit.rho0 = fit_linear_zero_intercept(inv_wr, rd0_cells).slope;
  fit.rho1 = fit_linear_zero_intercept(inv_wr, rd1_cells).slope;
  fit.r2_drive_res = r2_rd_worst;

  // Output slew: intercept and slew coefficient are size-independent
  // (averages); the load coefficient scales as 1/size (zero-intercept
  // regression) — see the header for the documented deviation from the
  // paper's coefficient placement.
  fit.b0 = mean(so_c0_cells);
  fit.b1 = mean(so_c1_cells);
  fit.b2 = fit_linear_zero_intercept(inv_wr, so_c2_cells).slope;

  return fit;
}

TechnologyFit fit_technology(const Technology& tech, const CellLibrary& library) {
  TechnologyFit fit;
  fit.node = tech.node;
  fit.vdd = library.vdd();

  const auto inverters = library.cells_of_kind(CellKind::Inverter);
  require(inverters.size() >= 3, "fit_technology: need at least three inverter drives");
  fit.inv_rise = fit_repeater_edge(inverters, true);
  fit.inv_fall = fit_repeater_edge(inverters, false);

  const auto buffers = library.cells_of_kind(CellKind::Buffer);
  if (buffers.size() >= 3) {
    fit.buf_rise = fit_repeater_edge(buffers, true);
    fit.buf_fall = fit_repeater_edge(buffers, false);
  }

  // Input capacitance: ci = gamma (wp + wn), zero intercept, inverters
  // (their input pin is the output-stage devices themselves).
  {
    Vector widths, caps;
    for (const RepeaterCell* c : inverters) {
      widths.push_back(c->wn + c->wp);
      caps.push_back(c->input_cap);
    }
    fit.gamma = fit_linear_zero_intercept(widths, caps).slope;
  }

  // Leakage: linear in device width per polarity.
  {
    Vector wn, psn, wp, psp;
    for (const RepeaterCell* c : inverters) {
      wn.push_back(c->wn);
      psn.push_back(c->leakage_nmos);
      wp.push_back(c->wp);
      psp.push_back(c->leakage_pmos);
    }
    const LinearFit n = fit_linear(wn, psn);
    const LinearFit p = fit_linear(wp, psp);
    fit.leakage.n0 = n.intercept;
    fit.leakage.n1 = n.slope;
    fit.leakage.p0 = p.intercept;
    fit.leakage.p1 = p.slope;
  }

  // Area: linear in NMOS width (paper §III-C, "existing technologies").
  {
    Vector wn, area;
    for (const RepeaterCell* c : inverters) {
      wn.push_back(c->wn);
      area.push_back(c->area);
    }
    const LinearFit a = fit_linear(wn, area);
    fit.area0 = a.intercept;
    fit.area1 = a.slope;
  }

  return fit;
}

}  // namespace pim
