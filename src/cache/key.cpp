#include "cache/key.hpp"

#include "util/strings.hpp"

namespace pim::cache {
namespace {

constexpr char kUnitSep = '\x1f';    // between field name and value
constexpr char kRecordSep = '\x1e';  // after each field

}  // namespace

KeyBuilder::KeyBuilder(std::string kind) : kind_(std::move(kind)) {
  raw("pim-cache");
  field("format", static_cast<int64_t>(kFormatVersion));
  field("kind", kind_);
}

void KeyBuilder::raw(std::string_view bytes) { hasher_.update(bytes); }

KeyBuilder& KeyBuilder::field(std::string_view name, std::string_view value) {
  raw(name);
  hasher_.update(&kUnitSep, 1);
  raw(value);
  hasher_.update(&kRecordSep, 1);
  return *this;
}

KeyBuilder& KeyBuilder::field(std::string_view name, double value) {
  // 17 significant digits: the canonical exactly-round-tripping render.
  return field(name, std::string_view(format_sig(value, 17)));
}

KeyBuilder& KeyBuilder::field(std::string_view name, int64_t value) {
  return field(name, std::string_view(std::to_string(value)));
}

KeyBuilder& KeyBuilder::field(std::string_view name, uint64_t value) {
  return field(name, std::string_view(std::to_string(value)));
}

KeyBuilder& KeyBuilder::field(std::string_view name, const std::vector<double>& values) {
  std::string joined;
  for (double v : values) {
    if (!joined.empty()) joined.push_back(',');
    joined += format_sig(v, 17);
  }
  return field(name, std::string_view(joined));
}

KeyBuilder& KeyBuilder::field(std::string_view name, const std::vector<int>& values) {
  std::string joined;
  for (int v : values) {
    if (!joined.empty()) joined.push_back(',');
    joined += std::to_string(v);
  }
  return field(name, std::string_view(joined));
}

KeyBuilder& KeyBuilder::blob(std::string_view name, std::string_view bytes) {
  raw(name);
  hasher_.update(&kUnitSep, 1);
  raw(std::to_string(bytes.size()));
  hasher_.update(&kUnitSep, 1);
  raw(bytes);
  hasher_.update(&kRecordSep, 1);
  return *this;
}

CacheKey KeyBuilder::finish() {
  CacheKey key;
  key.kind = kind_;
  key.hex = hasher_.hex_digest();
  return key;
}

}  // namespace pim::cache
