#include "cache/key.hpp"

#include "cache/manifest.hpp"
#include "util/strings.hpp"

namespace pim::cache {
namespace {

constexpr char kUnitSep = '\x1f';    // between field name and value
constexpr char kRecordSep = '\x1e';  // after each field

}  // namespace

KeyBuilder::KeyBuilder(std::string kind) : kind_(std::move(kind)) {
  internal_ = true;
  raw("pim-cache");
  field("format", static_cast<int64_t>(kFormatVersion));
  field("kind", kind_);
  internal_ = false;
}

void KeyBuilder::raw(std::string_view bytes) { hasher_.update(bytes); }

void KeyBuilder::note_param(std::string_view name, std::string_view value) {
  if (internal_) return;
  params_hasher_.update(name);
  params_hasher_.update(&kUnitSep, 1);
  params_hasher_.update(value);
  params_hasher_.update(&kRecordSep, 1);
  has_params_ = true;
}

KeyBuilder& KeyBuilder::field(std::string_view name, std::string_view value) {
  raw(name);
  hasher_.update(&kUnitSep, 1);
  raw(value);
  hasher_.update(&kRecordSep, 1);
  note_param(name, value);
  return *this;
}

KeyBuilder& KeyBuilder::field(std::string_view name, double value) {
  // 17 significant digits: the canonical exactly-round-tripping render.
  return field(name, std::string_view(format_sig(value, 17)));
}

KeyBuilder& KeyBuilder::field(std::string_view name, int64_t value) {
  return field(name, std::string_view(std::to_string(value)));
}

KeyBuilder& KeyBuilder::field(std::string_view name, uint64_t value) {
  return field(name, std::string_view(std::to_string(value)));
}

KeyBuilder& KeyBuilder::field(std::string_view name, const std::vector<double>& values) {
  std::string joined;
  for (double v : values) {
    if (!joined.empty()) joined.push_back(',');
    joined += format_sig(v, 17);
  }
  return field(name, std::string_view(joined));
}

KeyBuilder& KeyBuilder::field(std::string_view name, const std::vector<int>& values) {
  std::string joined;
  for (int v : values) {
    if (!joined.empty()) joined.push_back(',');
    joined += std::to_string(v);
  }
  return field(name, std::string_view(joined));
}

KeyBuilder& KeyBuilder::blob(std::string_view name, std::string_view bytes) {
  raw(name);
  hasher_.update(&kUnitSep, 1);
  raw(std::to_string(bytes.size()));
  hasher_.update(&kUnitSep, 1);
  raw(bytes);
  hasher_.update(&kRecordSep, 1);
  note_param(name, bytes);
  return *this;
}

KeyBuilder& KeyBuilder::facet(std::string_view type, std::string_view name,
                              std::string_view id) {
  internal_ = true;
  std::string field_name(type);
  field_name += ':';
  field_name += name;
  field(field_name, id);
  internal_ = false;
  if (Tracked* scope = Tracked::current())
    scope->facet(Facet{std::string(type), std::string(name), std::string(id)});
  return *this;
}

CacheKey KeyBuilder::finish() {
  if (Tracked* scope = Tracked::current()) {
    if (has_params_)
      scope->facet(Facet{"params", kind_, params_hasher_.hex_digest()});
    scope->facet(Facet{"format", "version", std::to_string(kFormatVersion)});
  }
  CacheKey key;
  key.kind = kind_;
  key.hex = hasher_.hex_digest();
  return key;
}

}  // namespace pim::cache
