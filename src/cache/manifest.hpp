// Provenance manifests: the metadata that turns the opaque key->blob
// store into an artifact graph.
//
// Every cached entry is written together with a Manifest describing what
// it was computed FROM: a set of typed input facets (tech content hash,
// corner cache_id, deck-parameter hash, fit-coefficient hash, sampling
// plan, format version) plus the CacheKeys of upstream cached artifacts
// it derived from. Manifests are a sidecar file next to the entry
// (store.hpp), written before it and fail-open like everything else in
// this layer — a run with no manifests is merely un-invalidatable, never
// broken.
//
// Capture is automatic, not hand-maintained: a cached wrapper opens a
// `Tracked` scope, and every KeyBuilder::facet() call both hashes the
// value into the key AND records it into the scope, so the provenance a
// manifest claims can never drift from the inputs the key actually
// covers. Plain field()/blob() calls roll up into one "params" facet at
// finish() for the same reason. Nested wrappers (cosi -> buffering ->
// fit) record their resolved artifact keys into the parent scope via
// publish(), which is how the upstream edges of the graph appear.
//
// The dirty rule (invalidate.hpp): a facet is *changed* when a manifest
// holds the same (type, name) with a different id. Same type+name+id is
// an unchanged input; a (type, name) the manifest never consumed is
// irrelevant to it. Upstream edges then propagate dirtiness down the
// graph to a fixpoint (a stale fit drags its buffering searches and
// Monte-Carlo runs along).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cache/key.hpp"
#include "util/expected.hpp"

namespace pim::cache {

/// One typed input of a cached computation. `type` is the facet class
/// ("tech", "corner", "fit", "samples", "params", "format"), `name` the
/// logical identity within it (which tech, which corner), and `id` the
/// content: an edit changes the id while type+name stay put, which is
/// exactly the dirty signal.
struct Facet {
  std::string type;
  std::string name;
  std::string id;

  bool operator==(const Facet& o) const {
    return type == o.type && name == o.name && id == o.id;
  }
};

/// The provenance record of one cached entry.
struct Manifest {
  CacheKey key;                    ///< the entry this manifest describes
  std::vector<Facet> facets;       ///< typed inputs, in capture order
  std::vector<CacheKey> upstream;  ///< cached artifacts this one derived from
  int64_t cost_ns = 0;             ///< wall time of the compute that produced it
};

/// Serializes a manifest as the sidecar file image (pim-manifest v<N>).
std::string encode_manifest(const Manifest& manifest);

/// Parses and validates a sidecar image. Errors use the io_parse
/// taxonomy; a version/layout mismatch is a parse failure (fail-open at
/// every caller).
Expected<Manifest> decode_manifest(std::string_view file);

/// RAII provenance scope for one cached wrapper. Scopes nest per thread
/// (thread-local stack): KeyBuilder::facet() records into the innermost
/// scope, and publish() additionally reports the finished artifact to the
/// PARENT scope as an upstream edge — which is how a cosi link search
/// learns it consumed a specific buffering entry, and a buffering entry
/// that it consumed a fit.
class Tracked {
 public:
  Tracked();
  ~Tracked();
  Tracked(const Tracked&) = delete;
  Tracked& operator=(const Tracked&) = delete;

  /// Innermost scope on this thread, or nullptr when no cached wrapper
  /// is active (facet capture is then a no-op).
  static Tracked* current();

  /// Records a consumed facet. Duplicate (type, name, id) triples are
  /// deduplicated; capture order is otherwise preserved.
  void facet(Facet f);

  /// Records a direct upstream artifact dependency.
  void upstream(const CacheKey& key);

  /// Reports the finished artifact under `key`: records it as an
  /// upstream edge of the parent scope (if any). Call once the entry is
  /// resolved — cache hit and fresh compute alike, so the graph is
  /// complete from either path.
  void publish(const CacheKey& key) const;

  /// The manifest for an entry produced under this scope, with cost_ns
  /// set to the wall time since the scope opened.
  Manifest manifest(const CacheKey& key) const;

  const std::vector<Facet>& facets() const { return facets_; }
  const std::vector<CacheKey>& upstream_keys() const { return upstream_; }

 private:
  std::vector<Facet> facets_;
  std::vector<CacheKey> upstream_;
  int64_t start_ns_ = 0;
  Tracked* parent_ = nullptr;
};

/// Registers a content token (e.g. a fit's coefficient hash) as produced
/// by the artifact under `key`. Model cache signatures embed such tokens,
/// so downstream wrappers can resolve which cached artifacts a composite
/// signature was built from. Process-lifetime, thread-safe, bounded by
/// the number of distinct artifacts a process computes.
void register_artifact(const std::string& token, const CacheKey& key);

/// All registered artifact keys whose token occurs in `signature`
/// (substring match — tokens are 64-hex-char digests, so collisions with
/// unrelated text are not a practical concern). Deterministic order.
std::vector<CacheKey> resolve_artifacts(std::string_view signature);

/// Clears the artifact registry (tests).
void clear_artifact_registry();

}  // namespace pim::cache
