// Minimal SHA-256 (FIPS 180-4) for content-addressed cache keys and
// payload integrity checks. Self-contained — no external crypto
// dependency — and streaming, so large blobs (tech files, coefficient
// tables) hash without an extra copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace pim::cache {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(const void* data, size_t len);
  void update(std::string_view text) { update(text.data(), text.size()); }

  /// Finalizes and returns the 64-character lowercase hex digest. The
  /// hasher must be reset() before further use.
  std::string hex_digest();

 private:
  void process_block(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_bytes_ = 0;
  uint8_t buffer_[64];
  size_t buffered_ = 0;
};

/// One-shot convenience: hex SHA-256 of `text`.
std::string sha256_hex(std::string_view text);

}  // namespace pim::cache
