#include "cache/invalidate.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace pim::cache {
namespace {

namespace fs = std::filesystem;

constexpr const char* kEntryExt = ".pimcache";
constexpr const char* kManifestExt = ".pimmanifest";

std::string key_id(const CacheKey& key) { return key.kind + "/" + key.hex; }

// The kind of an entry/manifest path: <root>/<kind>/<xx>/<hex>.<ext>.
std::string kind_of(const fs::path& path) {
  return path.parent_path().parent_path().filename().string();
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return false;
  out = buffer.str();
  return true;
}

// Path-sorted file census of one cache root. Missing root = empty cache.
std::vector<fs::path> files_with_ext(const std::string& root, const char* ext) {
  std::vector<fs::path> out;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file(ec) && it->path().extension() == ext)
      out.push_back(it->path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t bytes_of(const fs::path& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<size_t>(size);
}

void remove_quiet(const fs::path& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

}  // namespace

std::vector<Manifest> scan_manifests(const std::string& root) {
  std::vector<Manifest> out;
  for (const fs::path& path : files_with_ext(root, kManifestExt)) {
    std::string image;
    if (!read_file(path, image)) continue;
    Expected<Manifest> manifest = decode_manifest(image);
    if (!manifest.ok()) continue;  // fail-open; verify_cache scrubs these
    out.push_back(manifest.take());
  }
  return out;
}

DirtyCone dirty_cone(const std::vector<Manifest>& manifests,
                     const std::vector<Facet>& changed) {
  auto directly_dirty = [&changed](const Manifest& m) {
    for (const Facet& f : m.facets)
      for (const Facet& c : changed)
        if (f.type == c.type && f.name == c.name && f.id != c.id) return true;
    return false;
  };
  std::set<std::string> dirty_ids;
  for (const Manifest& m : manifests)
    if (directly_dirty(m)) dirty_ids.insert(key_id(m.key));
  // Propagate along upstream edges to a fixpoint. Quadratic in the worst
  // case, but cones are shallow (fit -> buffering/mc -> cosi) and the
  // loop exits the first pass that adds nothing.
  for (bool grew = true; grew;) {
    grew = false;
    for (const Manifest& m : manifests) {
      if (dirty_ids.count(key_id(m.key)) > 0) continue;
      for (const CacheKey& up : m.upstream) {
        if (dirty_ids.count(key_id(up)) > 0) {
          dirty_ids.insert(key_id(m.key));
          grew = true;
          break;
        }
      }
    }
  }
  DirtyCone cone;
  for (const Manifest& m : manifests) {
    if (dirty_ids.count(key_id(m.key)) > 0) {
      cone.dirty.push_back(m.key);
    } else {
      cone.reuse.push_back(m.key);
    }
  }
  return cone;
}

size_t evict_keys(Store& store, const std::vector<CacheKey>& keys) {
  size_t removed = 0;
  for (const CacheKey& key : keys)
    if (store.erase(key)) ++removed;
  return removed;
}

std::vector<KindStats> cache_stats(const std::string& root) {
  std::map<std::string, KindStats> by_kind;
  for (const fs::path& path : files_with_ext(root, kEntryExt)) {
    KindStats& stats = by_kind[kind_of(path)];
    ++stats.entries;
    stats.payload_bytes += bytes_of(path);
  }
  for (const fs::path& path : files_with_ext(root, kManifestExt))
    by_kind[kind_of(path)].manifest_bytes += bytes_of(path);
  std::vector<KindStats> out;
  for (auto& [kind, stats] : by_kind) {
    stats.kind = kind;
    out.push_back(std::move(stats));
  }
  return out;
}

PruneResult prune_cache(const std::string& root, size_t budget_bytes) {
  struct Candidate {
    fs::path entry;
    fs::path manifest;
    size_t bytes = 0;
    fs::file_time_type mtime;
  };
  std::vector<Candidate> candidates;
  size_t total = 0;
  for (const fs::path& path : files_with_ext(root, kEntryExt)) {
    Candidate c;
    c.entry = path;
    c.manifest = fs::path(path).replace_extension(kManifestExt);
    c.bytes = bytes_of(c.entry) + bytes_of(c.manifest);
    std::error_code ec;
    c.mtime = fs::last_write_time(c.entry, ec);
    if (ec) c.mtime = fs::file_time_type::min();
    total += c.bytes;
    candidates.push_back(std::move(c));
  }
  // Oldest-modified first; path as the deterministic tiebreak.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.mtime != b.mtime ? a.mtime < b.mtime : a.entry < b.entry;
            });
  PruneResult result;
  result.scanned_entries = candidates.size();
  result.kept_bytes = total;
  for (const Candidate& c : candidates) {
    if (result.kept_bytes <= budget_bytes) break;
    remove_quiet(c.entry);
    remove_quiet(c.manifest);
    ++result.removed_entries;
    result.removed_bytes += c.bytes;
    result.kept_bytes -= c.bytes;
  }
  return result;
}

VerifyResult verify_cache(const std::string& root) {
  VerifyResult result;
  std::set<fs::path> entries, manifests;
  for (const fs::path& p : files_with_ext(root, kEntryExt)) entries.insert(p);
  for (const fs::path& p : files_with_ext(root, kManifestExt)) manifests.insert(p);
  result.entries = entries.size();
  result.manifests = manifests.size();
  for (const fs::path& entry : entries) {
    const fs::path sidecar = fs::path(entry).replace_extension(kManifestExt);
    if (manifests.count(sidecar) == 0) {
      // An entry the reader would refuse anyway: scrub it now.
      PIM_COUNT("cache.corrupt");
      ++result.unmanifested_entries;
      log_warn("cache verify: entry without manifest, scrubbing '",
               entry.string(), "'");
      remove_quiet(entry);
    }
  }
  for (const fs::path& sidecar : manifests) {
    const fs::path entry = fs::path(sidecar).replace_extension(kEntryExt);
    if (entries.count(entry) == 0) {
      PIM_COUNT("cache.corrupt");
      ++result.orphan_manifests;
      log_warn("cache verify: orphan manifest, scrubbing '", sidecar.string(), "'");
      remove_quiet(sidecar);
      continue;
    }
    std::string image;
    Expected<Manifest> manifest =
        read_file(sidecar, image)
            ? decode_manifest(image)
            : Expected<Manifest>(Error("unreadable", ErrorCode::io_parse));
    const std::string hex = sidecar.stem().string();
    if (manifest.ok() && (manifest.value().key.hex != hex ||
                          manifest.value().key.kind != kind_of(sidecar)))
      manifest = Error("key does not match path", ErrorCode::io_parse);
    if (!manifest.ok()) {
      PIM_COUNT("cache.corrupt");
      ++result.corrupt_manifests;
      log_warn("cache verify: corrupt manifest, scrubbing pair '",
               sidecar.string(), "': ", manifest.error().message());
      remove_quiet(sidecar);
      remove_quiet(entry);
    }
  }
  return result;
}

}  // namespace pim::cache
