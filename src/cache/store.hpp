// Two-tier content-addressed result cache: an in-memory LRU in front of
// an on-disk store under PIM_CACHE_DIR (default ~/.cache/pim).
//
// Payloads are opaque byte strings addressed by a CacheKey (canonical
// SHA-256 of the determining inputs, see key.hpp). On-disk entries are
// self-describing — format version, kind, key, payload digest, byte
// count — and every validation failure is FAIL-OPEN: a truncated,
// garbled, or mismatched entry is counted in `cache.corrupt`, removed
// (in read-write mode), and reported as a miss so the caller simply
// recomputes. A cache can therefore never turn a working flow into a
// failing one.
//
// Modes (docs/caching.md): `off` bypasses both tiers, `ro` reads but
// never writes the disk tier, `rw` (the default) does both. The process
// mode resolves set_mode() > PIM_CACHE env > rw. While the deterministic
// fault-injection harness is armed (util/faultinject.hpp) the store
// bypasses itself entirely, so injected faults always exercise the real
// compute paths instead of being papered over by yesterday's results.
//
// Thread safety: the memory tier is mutex-guarded and get()/put() may be
// called from exec-engine workers; counters go through PIM_COUNT, which
// is shard-aware, so parallel sweeps keep exact hit/miss totals. Disk
// writes go to a temp file then rename, so concurrent processes sharing
// one cache directory never observe half-written entries.
//
// Provenance: every entry is written together with a manifest sidecar
// (<hex>.pimmanifest, cache/manifest.hpp) naming the typed input facets
// and upstream artifacts it was computed from — the metadata the
// invalidation engine (cache/invalidate.hpp) walks. The sidecar lands
// before the entry, so a reader never sees an entry without provenance;
// a hit credits the manifest's recorded compute cost to the
// incremental.saved_ns counter.
//
// Metrics: cache.hit, cache.miss, cache.disk.hit, cache.evict,
// cache.corrupt, cache.write, cache.manifest.fail, incremental.saved_ns
// counters; cache.bytes (memory-tier footprint, payload + manifest) and
// cache.hit_rate gauges; cache.mem.load / cache.disk.load per-tier
// load-latency histograms and the cache.entry.bytes payload-size
// histogram (docs/observability.md).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "cache/key.hpp"
#include "cache/manifest.hpp"
#include "util/expected.hpp"

namespace pim::cache {

enum class Mode { Off, ReadOnly, ReadWrite };

/// "off" / "ro" / "rw".
const char* mode_name(Mode mode);

/// Parses "off" | "ro" | "rw"; returns false on anything else.
bool mode_from_name(std::string_view name, Mode& out);

/// The resolved process-wide cache mode: set_mode() override, else the
/// PIM_CACHE environment variable, else ReadWrite. A malformed PIM_CACHE
/// value logs one warning and falls back to the default.
Mode mode();

/// Pins the process cache mode (the CLI's --cache flag).
void set_mode(Mode mode);

/// Drops the set_mode() override (tests).
void reset_mode();

/// The resolved cache directory: set_dir() > PIM_CACHE_DIR >
/// $XDG_CACHE_HOME/pim > $HOME/.cache/pim > ./.pim-cache.
std::string dir();

/// Pins the cache directory; "" restores the automatic resolution.
void set_dir(const std::string& path);

class Store {
 public:
  struct Options {
    size_t max_memory_bytes = 64u << 20;  ///< memory-tier payload budget
    size_t max_memory_entries = 4096;
    /// Disk root; "" resolves dir() per operation (tracks set_dir).
    std::string disk_dir;
  };

  Store() = default;
  explicit Store(Options options) : options_(std::move(options)) {}

  /// The process-wide store every cached flow shares.
  static Store& global();

  /// The payload for `key`, or nullopt on miss / disabled cache /
  /// corrupt entry (fail-open).
  std::optional<std::string> get(const CacheKey& key);

  /// Records `payload` under `key` in the memory tier and (in rw mode)
  /// the disk tier, together with its provenance manifest (captured from
  /// the active cache::Tracked scope; an empty manifest otherwise). The
  /// sidecar is written BEFORE the entry and a sidecar write failure
  /// skips the entry entirely (fail-open full-entry miss), so the disk
  /// tier never holds an entry without provenance. Disk failures are
  /// swallowed after a warning — the cache never fails a computation
  /// that already succeeded.
  void put(const CacheKey& key, std::string_view payload);

  /// Removes `key` from the memory tier and (in rw mode) unlinks its
  /// disk entry + manifest. True when anything was removed. The
  /// invalidation engine's eviction primitive (cache/invalidate.hpp).
  bool erase(const CacheKey& key);

  /// Empties the memory tier (registrations on disk survive). Tests.
  void clear_memory();

  size_t memory_bytes() const;
  size_t memory_entries() const;

  /// Serialized entry-file image for `payload` under `key` (exposed for
  /// tests and external tooling; put() writes exactly this).
  static std::string encode_entry(const CacheKey& key, std::string_view payload);

  /// Parses and validates an entry-file image against `key`. Errors use
  /// the io_parse taxonomy and name the first failed check.
  static Expected<std::string> decode_entry(const CacheKey& key, std::string_view file);

  /// Absolute path an entry for `key` lives at under this store's root.
  std::string entry_path(const CacheKey& key) const;

  /// Absolute path of the provenance-manifest sidecar for `key`.
  std::string manifest_path(const CacheKey& key) const;

 private:
  void insert_memory(const std::string& id, std::string payload,
                     std::string manifest_text, int64_t cost_ns);

  Options options_;
  mutable std::mutex mu_;
  // LRU: most recently used at the front. The map stores list iterators;
  // list splicing keeps them valid. Byte accounting covers payload AND
  // manifest sidecar, so prune budgets are honest about the real
  // footprint an entry carries.
  struct MemEntry {
    std::string id;
    std::string payload;
    std::string manifest;  ///< serialized sidecar image
    int64_t cost_ns = 0;   ///< compute cost the hit saves (manifest cost_ns)
  };
  std::list<MemEntry> lru_;
  std::map<std::string, std::list<MemEntry>::iterator> index_;
  size_t bytes_ = 0;
};

}  // namespace pim::cache
