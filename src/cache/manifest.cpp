#include "cache/manifest.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace pim::cache {
namespace {

// Facet fields are joined with the unit separator: corner ids contain
// '|' and spaces are conceivable in techfile names, but an ASCII control
// character never survives into either.
constexpr char kUnitSep = '\x1f';

thread_local Tracked* g_scope = nullptr;

std::mutex& artifact_mutex() {
  static std::mutex mu;
  return mu;
}

// token (content hash) -> the cached artifact that produced it. A map
// keeps resolve_artifacts() deterministic.
std::map<std::string, CacheKey>& artifact_registry() {
  static std::map<std::string, CacheKey> registry;
  return registry;
}

}  // namespace

std::string encode_manifest(const Manifest& manifest) {
  std::ostringstream os;
  os << "pim-manifest v" << kFormatVersion << "\n";
  os << "kind " << manifest.key.kind << "\n";
  os << "key " << manifest.key.hex << "\n";
  os << "cost_ns " << manifest.cost_ns << "\n";
  for (const Facet& f : manifest.facets)
    os << "facet " << f.type << kUnitSep << f.name << kUnitSep << f.id << "\n";
  for (const CacheKey& k : manifest.upstream)
    os << "upstream " << k.kind << " " << k.hex << "\n";
  return os.str();
}

Expected<Manifest> decode_manifest(std::string_view file) {
  auto bad = [](const std::string& what) {
    return Error("cache manifest: " + what, ErrorCode::io_parse);
  };
  Manifest m;
  bool saw_magic = false, saw_kind = false, saw_key = false, saw_cost = false;
  size_t lineno = 0;
  while (!file.empty()) {
    const size_t nl = file.find('\n');
    if (nl == std::string_view::npos) return bad("missing trailing newline");
    const std::string line(file.substr(0, nl));
    file.remove_prefix(nl + 1);
    ++lineno;
    if (lineno == 1) {
      if (line != "pim-manifest v" + std::to_string(kFormatVersion))
        return bad("unsupported format '" + line + "'");
      saw_magic = true;
      continue;
    }
    const size_t sp = line.find(' ');
    if (sp == std::string::npos) return bad("malformed line " + std::to_string(lineno));
    const std::string tag = line.substr(0, sp);
    const std::string rest = line.substr(sp + 1);
    if (tag == "kind") {
      m.key.kind = rest;
      saw_kind = true;
    } else if (tag == "key") {
      m.key.hex = rest;
      saw_key = true;
    } else if (tag == "cost_ns") {
      try {
        m.cost_ns = parse_long(rest);
      } catch (const Error&) {
        return bad("malformed cost_ns '" + rest + "'");
      }
      saw_cost = true;
    } else if (tag == "facet") {
      const size_t a = rest.find(kUnitSep);
      const size_t b = a == std::string::npos ? a : rest.find(kUnitSep, a + 1);
      if (b == std::string::npos) return bad("malformed facet '" + rest + "'");
      Facet f;
      f.type = rest.substr(0, a);
      f.name = rest.substr(a + 1, b - a - 1);
      f.id = rest.substr(b + 1);
      m.facets.push_back(std::move(f));
    } else if (tag == "upstream") {
      const size_t us = rest.find(' ');
      if (us == std::string::npos) return bad("malformed upstream '" + rest + "'");
      m.upstream.push_back(CacheKey{rest.substr(0, us), rest.substr(us + 1)});
    } else {
      return bad("unknown tag '" + tag + "'");
    }
  }
  if (!saw_magic || !saw_kind || !saw_key || !saw_cost)
    return bad("truncated header");
  if (m.key.hex.size() != 64) return bad("malformed key digest");
  return m;
}

Tracked::Tracked() : start_ns_(obs::now_ns()), parent_(g_scope) { g_scope = this; }

Tracked::~Tracked() { g_scope = parent_; }

Tracked* Tracked::current() { return g_scope; }

void Tracked::facet(Facet f) {
  if (std::find(facets_.begin(), facets_.end(), f) != facets_.end()) return;
  facets_.push_back(std::move(f));
}

void Tracked::upstream(const CacheKey& key) {
  for (const CacheKey& k : upstream_)
    if (k.kind == key.kind && k.hex == key.hex) return;
  upstream_.push_back(key);
}

void Tracked::publish(const CacheKey& key) const {
  if (parent_ != nullptr) parent_->upstream(key);
}

Manifest Tracked::manifest(const CacheKey& key) const {
  Manifest m;
  m.key = key;
  m.facets = facets_;
  m.upstream = upstream_;
  m.cost_ns = obs::now_ns() - start_ns_;
  return m;
}

void register_artifact(const std::string& token, const CacheKey& key) {
  if (token.empty()) return;
  std::lock_guard<std::mutex> lock(artifact_mutex());
  artifact_registry()[token] = key;
}

std::vector<CacheKey> resolve_artifacts(std::string_view signature) {
  std::vector<CacheKey> out;
  std::lock_guard<std::mutex> lock(artifact_mutex());
  for (const auto& [token, key] : artifact_registry())
    if (signature.find(token) != std::string_view::npos) out.push_back(key);
  return out;
}

void clear_artifact_registry() {
  std::lock_guard<std::mutex> lock(artifact_mutex());
  artifact_registry().clear();
}

}  // namespace pim::cache
