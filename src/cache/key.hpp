// Canonical cache-key derivation: a CacheKey is the SHA-256 of a
// deterministic serialization of every input that determines a result
// (tech file bytes, deck parameters, coefficient tables, link specs,
// seeds), plus a `kind` tag and the cache format version.
//
// Canonicalization rules (docs/caching.md):
//  - fields are emitted in the order the call site appends them, each as
//    `name US value RS` (ASCII unit/record separators), so reordering or
//    renaming a field changes the key;
//  - doubles render with 17 significant digits — the shortest form that
//    round-trips IEEE-754 exactly — so a key never depends on printf
//    quirks of shorter precisions;
//  - blobs are length-prefixed, so concatenation ambiguities cannot
//    alias two different input sets to one key;
//  - the format version and kind are folded into the hash itself, so a
//    layout change invalidates every old entry instead of misreading it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cache/sha256.hpp"
#include "util/version.hpp"

namespace pim::cache {

/// Bump when the canonicalization or any cached payload layout changes;
/// folded into every key, so old entries become unreachable (not
/// misread) after an upgrade. The number itself lives in
/// util/version.hpp so artifact stamping (ledger, bench harness) can
/// read it without pulling in the cache layer.
inline constexpr int kFormatVersion = kCacheFormatVersion;

/// A finished key: the kind tag (directory / entry header) plus the
/// 64-hex-character digest.
struct CacheKey {
  std::string kind;
  std::string hex;
};

/// Accumulates named fields into a canonical digest.
///
/// Provenance capture (cache/manifest.hpp): facet() hashes a typed input
/// exactly like a field AND records it into the innermost cache::Tracked
/// scope, so a manifest can never claim inputs the key does not cover.
/// Plain field()/blob() calls are folded into a secondary params digest
/// that finish() records as one "params" facet — an edit to any loose
/// deck knob shows up as a params change without per-knob bookkeeping.
class KeyBuilder {
 public:
  /// `kind` tags what the key addresses ("fit", "buffering", "mc", ...).
  explicit KeyBuilder(std::string kind);

  KeyBuilder& field(std::string_view name, std::string_view value);
  KeyBuilder& field(std::string_view name, double value);
  KeyBuilder& field(std::string_view name, int64_t value);
  KeyBuilder& field(std::string_view name, uint64_t value);
  KeyBuilder& field(std::string_view name, int value) {
    return field(name, static_cast<int64_t>(value));
  }
  KeyBuilder& field(std::string_view name, bool value) {
    return field(name, static_cast<int64_t>(value ? 1 : 0));
  }
  KeyBuilder& field(std::string_view name, const std::vector<double>& values);
  KeyBuilder& field(std::string_view name, const std::vector<int>& values);

  /// Length-prefixed raw bytes (file contents, serialized tables).
  KeyBuilder& blob(std::string_view name, std::string_view bytes);

  /// A typed provenance facet: hashed into the key as field
  /// "<type>:<name>" = id, and captured into the active Tracked scope
  /// (no-op outside one). Use for the inputs invalidation reasons about:
  /// tech content hashes, corner ids, fit hashes, sampling plans.
  KeyBuilder& facet(std::string_view type, std::string_view name, std::string_view id);

  /// Finalizes the digest, recording the rolled-up "params" facet and the
  /// format-version facet into the active Tracked scope. The builder is
  /// spent afterwards.
  CacheKey finish();

 private:
  void raw(std::string_view bytes);
  void note_param(std::string_view name, std::string_view value);

  std::string kind_;
  Sha256 hasher_;
  Sha256 params_hasher_;
  bool has_params_ = false;
  bool internal_ = false;  ///< true while emitting preamble/facet fields
};

}  // namespace pim::cache
