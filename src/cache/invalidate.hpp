// The invalidation engine over the provenance-tracked artifact graph.
//
// scan_manifests() loads every sidecar under a cache root; dirty_cone()
// partitions those artifacts into stale vs reusable for a set of changed
// facets (tech edit, corner retune, deck knob change) by walking facet
// matches and then propagating along upstream edges to a fixpoint; and
// evict_keys() removes the stale cone so the next run recomputes exactly
// it. cache_stats / prune_cache / verify_cache are the admin surface the
// `pim cache` subcommand exposes (docs/caching.md).
//
// Everything here is fail-open, like the store: an unreadable manifest
// is skipped by scans (and scrubbed, with its entry, by verify_cache),
// so damage can cost warm starts but never correctness.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cache/manifest.hpp"
#include "cache/store.hpp"

namespace pim::cache {

/// Every parseable manifest under `root` (all kinds), in a deterministic
/// (path-sorted) order. Unreadable sidecars are skipped fail-open.
std::vector<Manifest> scan_manifests(const std::string& root);

/// The dirty/reuse partition of `manifests` under `changed` facets.
struct DirtyCone {
  std::vector<CacheKey> dirty;  ///< stale: direct facet hit or stale upstream
  std::vector<CacheKey> reuse;  ///< still valid after the edit
};

/// An artifact is DIRECTLY dirty when one of its facets shares (type,
/// name) with a changed facet but differs in id — the same logical input
/// with different content. Dirtiness then propagates along upstream
/// edges to a fixpoint: an artifact derived from a dirty one is dirty.
/// Facets with a (type, name) no changed facet mentions are untouched
/// inputs; artifacts with no dirty facet and no dirty upstream land in
/// `reuse` — their content-addressed keys still resolve after the edit.
DirtyCone dirty_cone(const std::vector<Manifest>& manifests,
                     const std::vector<Facet>& changed);

/// Evicts `keys` from `store` (memory + disk entry + manifest); returns
/// how many had on-disk or in-memory state to remove.
size_t evict_keys(Store& store, const std::vector<CacheKey>& keys);

/// Per-kind entry/byte census of a disk cache root, kind-sorted.
struct KindStats {
  std::string kind;
  size_t entries = 0;
  size_t payload_bytes = 0;   ///< entry-file bytes (header + payload)
  size_t manifest_bytes = 0;  ///< provenance-sidecar bytes
};
std::vector<KindStats> cache_stats(const std::string& root);

/// Result of prune_cache.
struct PruneResult {
  size_t scanned_entries = 0;
  size_t removed_entries = 0;
  size_t removed_bytes = 0;  ///< entry + manifest bytes reclaimed
  size_t kept_bytes = 0;
};

/// Shrinks the disk tier under `root` to at most `budget_bytes` (entry +
/// manifest bytes), removing least-recently-modified entry/manifest
/// pairs first — the disk analogue of the memory tier's LRU.
PruneResult prune_cache(const std::string& root, size_t budget_bytes);

/// Result of verify_cache.
struct VerifyResult {
  size_t entries = 0;                ///< entry files seen
  size_t manifests = 0;              ///< manifest sidecars seen
  size_t orphan_manifests = 0;       ///< manifest without entry (scrubbed)
  size_t unmanifested_entries = 0;   ///< entry without manifest (scrubbed)
  size_t corrupt_manifests = 0;      ///< sidecar failed to parse (pair scrubbed)

  size_t scrubbed() const {
    return orphan_manifests + unmanifested_entries + corrupt_manifests;
  }
};

/// Manifest<->entry consistency check: every entry must have a parseable
/// sidecar naming its own key and vice versa. Violations are scrubbed
/// fail-open (the affected artifact recomputes on next use) and counted
/// under the cache.corrupt metric.
VerifyResult verify_cache(const std::string& root);

}  // namespace pim::cache
