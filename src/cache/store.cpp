#include "cache/store.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pim::cache {
namespace {

namespace fs = std::filesystem;

std::mutex& config_mutex() {
  static std::mutex mu;
  return mu;
}

std::optional<Mode>& mode_override() {
  static std::optional<Mode> value;
  return value;
}

std::string& dir_override() {
  static std::string value;
  return value;
}

void set_bytes_gauge(size_t bytes) {
  obs::registry().gauge("cache.bytes").set(static_cast<double>(bytes));
}

// Bounded retry for disk-cache I/O: transient failures (network
// filesystems, scanners holding locks, tmp-dir races) get three attempts
// with a short backoff before the operation fails open (a read becomes a
// miss, a write is skipped). Retries never change a run's outcome — only
// whether the warm start lands.
constexpr int kIoAttempts = 3;

void backoff_sleep(int attempt) {
  // Attempt-scaled base with a pid-derived jitter so concurrent processes
  // hammering one cache directory desynchronize without an RNG.
  const long base_us = 200L << attempt;
  const long jitter_us =
      (static_cast<long>(::getpid()) * 31L + attempt * 17L) % (base_us / 2 + 1);
  ::usleep(static_cast<useconds_t>(base_us + jitter_us));
}

// Reads `path` into `image`; true on success. A missing file is an
// instant miss — misses are the common path and never retried; any other
// failure retries with backoff and finally gives up (fail-open miss).
bool read_entry_file(const std::string& path, std::string& image) {
  for (int attempt = 0;; ++attempt) {
    std::ifstream in(path, std::ios::binary);
    if (in.good()) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      if (!in.bad()) {
        image = buffer.str();
        return true;
      }
    } else {
      std::error_code ec;
      if (!fs::exists(path, ec)) return false;
    }
    if (attempt + 1 >= kIoAttempts) {
      log_warn("cache: giving up reading '", path, "' after ", kIoAttempts,
               " attempts");
      return false;
    }
    PIM_COUNT("cache.io.retry");
    backoff_sleep(attempt);
  }
}

// cache.* deep metrics (docs/observability.md): per-tier load-latency
// histograms, a payload-size histogram (the Timer machinery is
// unit-agnostic — here the "ns" slots carry bytes), and a hit-rate gauge
// derived from the hit/miss counters so it resets with the registry.
// Handles resolve once; every record is behind obs::enabled(), keeping
// the disabled path at one relaxed load + branch.
struct CacheMetrics {
  obs::Timer& mem_load = obs::registry().timer("cache.mem.load");
  obs::Timer& disk_load = obs::registry().timer("cache.disk.load");
  obs::Timer& entry_bytes = obs::registry().timer("cache.entry.bytes");
  obs::Gauge& hit_rate = obs::registry().gauge("cache.hit_rate");
  obs::Counter& hit = obs::registry().counter("cache.hit");
  obs::Counter& miss = obs::registry().counter("cache.miss");

  static CacheMetrics& get() {
    static CacheMetrics m;
    return m;
  }

  /// Refreshes cache.hit_rate from the counters (call after the lookup's
  /// PIM_COUNT lands). Shard-buffered increments from in-flight parallel
  /// chunks may lag the reading — fine for a gauge; totals stay exact.
  void update_hit_rate() {
    const double h = static_cast<double>(hit.value());
    const double total = h + static_cast<double>(miss.value());
    if (total > 0) hit_rate.set(h / total);
  }
};

}  // namespace

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::Off:
      return "off";
    case Mode::ReadOnly:
      return "ro";
    case Mode::ReadWrite:
      return "rw";
  }
  return "off";
}

bool mode_from_name(std::string_view name, Mode& out) {
  if (name == "off") {
    out = Mode::Off;
  } else if (name == "ro") {
    out = Mode::ReadOnly;
  } else if (name == "rw") {
    out = Mode::ReadWrite;
  } else {
    return false;
  }
  return true;
}

Mode mode() {
  std::lock_guard<std::mutex> lock(config_mutex());
  if (mode_override()) return *mode_override();
  if (const char* env = std::getenv("PIM_CACHE"); env != nullptr && *env != '\0') {
    Mode m;
    if (mode_from_name(env, m)) return m;
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true))
      log_warn("cache: PIM_CACHE='", env, "' is not off|ro|rw; using rw");
  }
  return Mode::ReadWrite;
}

void set_mode(Mode mode) {
  std::lock_guard<std::mutex> lock(config_mutex());
  mode_override() = mode;
}

void reset_mode() {
  std::lock_guard<std::mutex> lock(config_mutex());
  mode_override().reset();
}

std::string dir() {
  {
    std::lock_guard<std::mutex> lock(config_mutex());
    if (!dir_override().empty()) return dir_override();
  }
  if (const char* env = std::getenv("PIM_CACHE_DIR"); env != nullptr && *env != '\0')
    return env;
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg != nullptr && *xdg != '\0')
    return std::string(xdg) + "/pim";
  if (const char* home = std::getenv("HOME"); home != nullptr && *home != '\0')
    return std::string(home) + "/.cache/pim";
  return ".pim-cache";
}

void set_dir(const std::string& path) {
  std::lock_guard<std::mutex> lock(config_mutex());
  dir_override() = path;
}

Store& Store::global() {
  static Store store;
  return store;
}

std::string Store::entry_path(const CacheKey& key) const {
  const std::string root = options_.disk_dir.empty() ? dir() : options_.disk_dir;
  return root + "/" + key.kind + "/" + key.hex.substr(0, 2) + "/" + key.hex +
         ".pimcache";
}

std::string Store::manifest_path(const CacheKey& key) const {
  const std::string root = options_.disk_dir.empty() ? dir() : options_.disk_dir;
  return root + "/" + key.kind + "/" + key.hex.substr(0, 2) + "/" + key.hex +
         ".pimmanifest";
}

std::string Store::encode_entry(const CacheKey& key, std::string_view payload) {
  std::ostringstream os;
  os << "pim-cache v" << kFormatVersion << "\n";
  os << "kind " << key.kind << "\n";
  os << "key " << key.hex << "\n";
  os << "sha256 " << sha256_hex(payload) << "\n";
  os << "bytes " << payload.size() << "\n";
  os << "----\n";
  os << payload;
  return os.str();
}

Expected<std::string> Store::decode_entry(const CacheKey& key, std::string_view file) {
  auto bad = [](const std::string& what) {
    return Error("cache entry: " + what, ErrorCode::io_parse);
  };
  auto take_line = [&file, &bad]() -> Expected<std::string> {
    const size_t nl = file.find('\n');
    if (nl == std::string_view::npos) return bad("truncated header");
    std::string line(file.substr(0, nl));
    file.remove_prefix(nl + 1);
    return line;
  };
  auto expect_field = [&take_line, &bad](const std::string& name) -> Expected<std::string> {
    Expected<std::string> line = take_line();
    if (!line.ok()) return line;
    if (!starts_with(line.value(), name + " "))
      return bad("missing '" + name + "' header field");
    return line.value().substr(name.size() + 1);
  };

  Expected<std::string> magic = take_line();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "pim-cache v" + std::to_string(kFormatVersion))
    return bad("unsupported format '" + magic.value() + "'");
  Expected<std::string> kind = expect_field("kind");
  if (!kind.ok()) return kind.error();
  if (kind.value() != key.kind)
    return bad("kind mismatch: entry is '" + kind.value() + "'");
  Expected<std::string> hex = expect_field("key");
  if (!hex.ok()) return hex.error();
  if (hex.value() != key.hex) return bad("key mismatch");
  Expected<std::string> digest = expect_field("sha256");
  if (!digest.ok()) return digest.error();
  Expected<std::string> bytes = expect_field("bytes");
  if (!bytes.ok()) return bytes.error();
  Expected<std::string> sep = take_line();
  if (!sep.ok()) return sep.error();
  if (sep.value() != "----") return bad("missing payload separator");

  size_t count = 0;
  try {
    count = static_cast<size_t>(parse_long(bytes.value()));
  } catch (const Error&) {
    return bad("malformed byte count '" + bytes.value() + "'");
  }
  if (file.size() != count)
    return bad("payload is " + std::to_string(file.size()) + " bytes, header says " +
               std::to_string(count));
  std::string payload(file);
  if (sha256_hex(payload) != digest.value()) return bad("payload digest mismatch");
  return payload;
}

void Store::insert_memory(const std::string& id, std::string payload,
                          std::string manifest_text, int64_t cost_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = index_.find(id); it != index_.end()) {
    bytes_ -= it->second->payload.size() + it->second->manifest.size();
    bytes_ += payload.size() + manifest_text.size();
    it->second->payload = std::move(payload);
    it->second->manifest = std::move(manifest_text);
    it->second->cost_ns = cost_ns;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    bytes_ += payload.size() + manifest_text.size();
    lru_.push_front(MemEntry{id, std::move(payload), std::move(manifest_text), cost_ns});
    index_[id] = lru_.begin();
  }
  while (!lru_.empty() && (bytes_ > options_.max_memory_bytes ||
                           lru_.size() > options_.max_memory_entries)) {
    const MemEntry& victim = lru_.back();
    bytes_ -= victim.payload.size() + victim.manifest.size();
    index_.erase(victim.id);
    lru_.pop_back();
    PIM_COUNT("cache.evict");
  }
  set_bytes_gauge(bytes_);
}

std::optional<std::string> Store::get(const CacheKey& key) {
  // Fault-armed bypass is neither a hit nor a miss: the caller recomputes
  // under injection without touching (or mis-counting) cache state, so it
  // gets its own counter and the hit/miss/corrupt tallies stay a pure
  // function of actual cache traffic.
  if (fault::armed()) {
    PIM_COUNT("cache.bypass");
    return std::nullopt;
  }
  if (mode() == Mode::Off) return std::nullopt;
  const bool timing = obs::enabled();
  CacheMetrics* metrics = timing ? &CacheMetrics::get() : nullptr;
  const int64_t start = timing ? obs::now_ns() : 0;
  const std::string id = key.kind + "/" + key.hex;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = index_.find(id); it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      PIM_COUNT("cache.hit");
      // The hit just saved the compute the manifest priced: the
      // incremental.saved_ns counter is the warm path's receipt.
      if (it->second->cost_ns > 0)
        PIM_COUNT_N("incremental.saved_ns", it->second->cost_ns);
      if (metrics) {
        metrics->mem_load.record_ns(obs::now_ns() - start);
        metrics->update_hit_rate();
      }
      return it->second->payload;
    }
  }
  const int64_t disk_start = timing ? obs::now_ns() : 0;
  const std::string path = entry_path(key);
  std::string image;
  if (!read_entry_file(path, image)) {
    PIM_COUNT("cache.miss");
    if (metrics) metrics->update_hit_rate();
    return std::nullopt;
  }
  // An entry is only served together with its provenance sidecar: put()
  // writes the manifest first, so a valid entry missing one is damage
  // (or a pre-manifest leftover) and fails open like any corruption.
  const std::string mpath = manifest_path(key);
  std::string manifest_image;
  Expected<std::string> payload = decode_entry(key, image);
  Expected<Manifest> manifest =
      payload.ok() && read_entry_file(mpath, manifest_image)
          ? decode_manifest(manifest_image)
          : Expected<Manifest>(Error("cache manifest: missing sidecar",
                                     ErrorCode::io_parse));
  if (manifest.ok() &&
      (manifest.value().key.kind != key.kind || manifest.value().key.hex != key.hex))
    manifest = Error("cache manifest: key mismatch", ErrorCode::io_parse);
  if (!payload.ok() || !manifest.ok()) {
    // Fail-open: a corrupt entry (or orphaned/garbled sidecar) is a
    // miss, never an error. Scrub the pair so the recompute's put()
    // replaces both with a consistent one.
    PIM_COUNT("cache.corrupt");
    PIM_COUNT("cache.miss");
    if (metrics) metrics->update_hit_rate();
    const Error& why = payload.ok() ? manifest.error() : payload.error();
    log_warn("cache: ignoring corrupt entry '", path, "': ", why.message());
    if (mode() == Mode::ReadWrite) {
      std::error_code ec;
      fs::remove(path, ec);
      fs::remove(mpath, ec);
    }
    return std::nullopt;
  }
  PIM_COUNT("cache.hit");
  PIM_COUNT("cache.disk.hit");
  const int64_t cost_ns = manifest.value().cost_ns;
  if (cost_ns > 0) PIM_COUNT_N("incremental.saved_ns", cost_ns);
  std::string value = payload.take();
  if (metrics) {
    metrics->disk_load.record_ns(obs::now_ns() - disk_start);
    metrics->entry_bytes.record_ns(static_cast<int64_t>(value.size()));
    metrics->update_hit_rate();
  }
  insert_memory(id, value, std::move(manifest_image), cost_ns);
  return value;
}

namespace {

// Atomic file write (tmp + rename) with the store's bounded retry. True
// on success; a failure is logged and fails open.
bool write_file_atomic(const std::string& path, const std::string& image,
                       const char* what) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  for (int attempt = 0;; ++attempt) {
    try {
      fs::create_directories(fs::path(path).parent_path());
      {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        require(out.good(), "cache: cannot open '" + tmp + "'", ErrorCode::io_parse);
        out.write(image.data(), static_cast<std::streamsize>(image.size()));
        require(out.good(), "cache: write failed for '" + tmp + "'",
                ErrorCode::io_parse);
      }
      fs::rename(tmp, path);
      return true;
    } catch (const std::exception& e) {
      // A failed rename (or a later attempt bailing early) must not
      // strand the tmp file in the cache dir.
      std::error_code ec;
      fs::remove(tmp, ec);
      if (attempt + 1 >= kIoAttempts) {
        log_warn("cache: ", what, " write skipped after ", kIoAttempts,
                 " attempts: ", e.what());
        return false;
      }
      PIM_COUNT("cache.io.retry");
      backoff_sleep(attempt);
    }
  }
}

}  // namespace

void Store::put(const CacheKey& key, std::string_view payload) {
  if (fault::armed()) {
    PIM_COUNT("cache.bypass");
    return;
  }
  if (mode() == Mode::Off) return;
  if (obs::enabled())
    CacheMetrics::get().entry_bytes.record_ns(static_cast<int64_t>(payload.size()));
  // Provenance travels with the entry: the active Tracked scope (opened
  // by the cached wrapper that computed `payload`) knows every facet the
  // key hashed and every upstream artifact consumed. Outside a scope the
  // manifest is empty but still present, so the entry<->manifest
  // invariant holds unconditionally.
  const Manifest manifest = Tracked::current() != nullptr
                                ? Tracked::current()->manifest(key)
                                : Manifest{key, {}, {}, 0};
  const std::string manifest_image = encode_manifest(manifest);
  insert_memory(key.kind + "/" + key.hex, std::string(payload), manifest_image,
                manifest.cost_ns);
  if (mode() != Mode::ReadWrite) return;
  // Disk failures only cost future warm starts, so they retry with
  // backoff and finally demote to a warning instead of failing the
  // computation that produced `payload`. Order matters: the manifest
  // sidecar lands first, and a sidecar failure downgrades the whole put
  // to a fail-open full-entry miss — the disk tier must never hold an
  // entry without provenance (a reader would scrub it as corrupt).
  const std::string path = entry_path(key);
  const std::string mpath = manifest_path(key);
  if (!write_file_atomic(mpath, manifest_image, "manifest")) {
    PIM_COUNT("cache.manifest.fail");
    return;
  }
  if (!write_file_atomic(path, encode_entry(key, payload), "entry")) {
    // Entry write failed after the sidecar landed: scrub the sidecar so
    // verify_cache never reports this put as an orphan manifest.
    std::error_code ec;
    fs::remove(mpath, ec);
    return;
  }
  PIM_COUNT("cache.write");
}

bool Store::erase(const CacheKey& key) {
  const std::string id = key.kind + "/" + key.hex;
  bool removed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = index_.find(id); it != index_.end()) {
      bytes_ -= it->second->payload.size() + it->second->manifest.size();
      lru_.erase(it->second);
      index_.erase(it);
      set_bytes_gauge(bytes_);
      removed = true;
    }
  }
  if (mode() != Mode::ReadWrite) return removed;
  std::error_code ec;
  // Entry first, then manifest: a concurrent reader that loses the race
  // sees manifest-without-entry (a plain miss), never the reverse.
  removed = fs::remove(entry_path(key), ec) || removed;
  removed = fs::remove(manifest_path(key), ec) || removed;
  return removed;
}

void Store::clear_memory() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  set_bytes_gauge(0);
}

size_t Store::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

size_t Store::memory_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace pim::cache
