// Tests for the pim::scenario layer — process corners threaded through
// tech derating, per-corner characterization/fitting (with per-corner
// content caching), corner-indexed models, multi-corner signoff, and
// corner-aware Monte-Carlo — plus the Liberty round-trip at a derated
// corner.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "cache/store.hpp"
#include "charlib/characterize.hpp"
#include "liberty/libertyfile.hpp"
#include "models/corners.hpp"
#include "obs/metrics.hpp"
#include "scenario/scenario.hpp"
#include "sta/calibrated.hpp"
#include "sta/corners.hpp"
#include "sta/nldm_timer.hpp"
#include "tech/techfile.hpp"
#include "tech/technology.hpp"
#include "util/error.hpp"
#include "util/units.hpp"
#include "variation/variation.hpp"

namespace pim {
namespace {

using namespace pim::unit;

// Cheap-but-real characterization/composition settings (mirrors the
// variation test fixture) so per-corner flows stay fast.
CharacterizationOptions cheap_characterization() {
  CharacterizationOptions copt;
  copt.drives = {2, 8, 32};
  copt.buffers = false;
  return copt;
}

CompositionOptions cheap_composition() {
  CompositionOptions comp;
  comp.drives = {8, 32};
  comp.segment_lengths = {0.5e-3, 1.5e-3};
  comp.input_slews = {50e-12, 300e-12};
  comp.chain_lengths = {1, 3};
  return comp;
}

LinkContext link_ctx() {
  LinkContext c;
  c.length = 3 * mm;
  c.input_slew = 100 * ps;
  return c;
}

LinkDesign link_design() {
  LinkDesign d;
  d.drive = 16;
  d.num_repeaters = 3;
  return d;
}

// Metric collection is off by default; counter assertions turn it on for
// their scope only.
struct MetricsOn {
  MetricsOn() { obs::set_enabled(true); }
  ~MetricsOn() { obs::set_enabled(false); }
};

// ------------------------------------------------------------- corners

TEST(Corner, DefaultIsNominal) {
  const Corner c;
  EXPECT_EQ(c.name, "nominal");
  EXPECT_TRUE(c.is_nominal());
  EXPECT_DOUBLE_EQ(c.nmos_strength, 1.0);
  EXPECT_DOUBLE_EQ(c.vdd_scale, 1.0);
}

TEST(Corner, IsNominalTracksFactorsNotName) {
  Corner renamed;
  renamed.name = "typ";
  EXPECT_TRUE(renamed.is_nominal());
  Corner off;
  off.wire_cap = 1.01;
  EXPECT_FALSE(off.is_nominal());
}

TEST(Corner, CacheIdCoversNameAndFactors) {
  const Corner a;
  Corner b;
  EXPECT_EQ(a.cache_id(), b.cache_id());
  b.name = "renamed";
  EXPECT_NE(a.cache_id(), b.cache_id());
  Corner c;
  c.leakage = 1.0000001;  // tiny re-tune must re-key
  EXPECT_NE(a.cache_id(), c.cache_id());
}

TEST(ScenarioSet, BuiltinCarriesTheClassicCorners) {
  const ScenarioSet& set = ScenarioSet::builtin();
  ASSERT_EQ(set.size(), 5u);
  EXPECT_EQ(set.corners()[0].name, "nominal");
  EXPECT_TRUE(set.corners()[0].is_nominal());
  for (const char* name : {"nominal", "ss", "ff", "sf", "fs"}) {
    EXPECT_NE(set.find(name), nullptr) << name;
  }
  const Corner& ss = set.corner("ss");
  EXPECT_LT(ss.nmos_strength, 1.0);
  EXPECT_LT(ss.pmos_strength, 1.0);
  EXPECT_GT(ss.device_cap, 1.0);
  EXPECT_LT(ss.leakage, 1.0);
  EXPECT_GT(ss.wire_res, 1.0);
  EXPECT_LT(ss.vdd_scale, 1.0);
  EXPECT_GT(ss.temperature_c, 100.0);
  const Corner& ff = set.corner("ff");
  EXPECT_GT(ff.nmos_strength, 1.0);
  EXPECT_GT(ff.leakage, 1.0);
  EXPECT_LT(ff.temperature_c, 0.0);
  // The mixed corners skew the polarities in opposite directions.
  const Corner& sf = set.corner("sf");
  EXPECT_LT(sf.nmos_strength, 1.0);
  EXPECT_GT(sf.pmos_strength, 1.0);
  const Corner& fs = set.corner("fs");
  EXPECT_GT(fs.nmos_strength, 1.0);
  EXPECT_LT(fs.pmos_strength, 1.0);
}

TEST(ScenarioSet, RejectsDuplicateOrEmptyNames) {
  Corner a;
  Corner b;
  b.name = "a";
  a.name = "a";
  EXPECT_THROW(ScenarioSet({a, b}), Error);
  Corner unnamed;
  unnamed.name = "";
  EXPECT_THROW(ScenarioSet({unnamed}), Error);
}

TEST(ScenarioSet, ResolveSpecs) {
  const ScenarioSet& set = ScenarioSet::builtin();
  const std::vector<Corner> nominal_only = set.resolve("");
  ASSERT_EQ(nominal_only.size(), 1u);
  EXPECT_EQ(nominal_only[0].name, "nominal");

  const std::vector<Corner> all = set.resolve("all");
  ASSERT_EQ(all.size(), set.size());
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].name, set.corners()[i].name);

  const std::vector<Corner> pair = set.resolve("ff,ss");
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_EQ(pair[0].name, "ff");  // spec order, not set order
  EXPECT_EQ(pair[1].name, "ss");

  EXPECT_THROW(set.resolve("ss,bogus"), Error);
  EXPECT_THROW(set.corner("bogus"), Error);
  EXPECT_EQ(set.find("bogus"), nullptr);
}

// ------------------------------------------------------------ derating

TEST(Derating, NominalCornerIsBitIdentical) {
  const Technology& t = technology(TechNode::N65);
  const Technology d = t.derated(Corner{});
  EXPECT_DOUBLE_EQ(d.vdd, t.vdd);
  EXPECT_DOUBLE_EQ(d.nmos.k_sat, t.nmos.k_sat);
  EXPECT_DOUBLE_EQ(d.pmos.k_sat, t.pmos.k_sat);
  EXPECT_DOUBLE_EQ(d.nmos.c_gate, t.nmos.c_gate);
  EXPECT_DOUBLE_EQ(d.pmos.c_drain, t.pmos.c_drain);
  EXPECT_DOUBLE_EQ(d.interconnect.rho_bulk, t.interconnect.rho_bulk);
  EXPECT_DOUBLE_EQ(d.interconnect.global.k_dielectric, t.interconnect.global.k_dielectric);
  EXPECT_DOUBLE_EQ(d.interconnect.intermediate.k_dielectric,
                   t.interconnect.intermediate.k_dielectric);
}

TEST(Derating, FactorsScaleTheRightFields) {
  const Technology& t = technology(TechNode::N65);
  const Corner& ss = ScenarioSet::builtin().corner("ss");
  const Technology d = t.derated(ss);
  EXPECT_DOUBLE_EQ(d.vdd, t.vdd * ss.vdd_scale);
  EXPECT_DOUBLE_EQ(d.nmos.k_sat, t.nmos.k_sat * ss.nmos_strength);
  EXPECT_DOUBLE_EQ(d.pmos.k_sat, t.pmos.k_sat * ss.pmos_strength);
  EXPECT_DOUBLE_EQ(d.nmos.c_gate, t.nmos.c_gate * ss.device_cap);
  EXPECT_DOUBLE_EQ(d.nmos.c_drain, t.nmos.c_drain * ss.device_cap);
  EXPECT_DOUBLE_EQ(d.interconnect.rho_bulk, t.interconnect.rho_bulk * ss.wire_res);
  EXPECT_DOUBLE_EQ(d.interconnect.global.k_dielectric,
                   t.interconnect.global.k_dielectric * ss.wire_cap);
  // Geometry and layout are process-independent in this abstraction.
  EXPECT_DOUBLE_EQ(d.interconnect.global.width, t.interconnect.global.width);
  EXPECT_DOUBLE_EQ(d.area.feature_size, t.area.feature_size);
}

TEST(Derating, CornerTechnologyRegistryIsStable) {
  const Corner& ss = ScenarioSet::builtin().corner("ss");
  const Technology& a = corner_technology(TechNode::N65, ss);
  const Technology& b = corner_technology(TechNode::N65, ss);
  EXPECT_EQ(&a, &b);  // stable address: models may hold the pointer
  const Technology& ff = corner_technology(TechNode::N65, ScenarioSet::builtin().corner("ff"));
  EXPECT_NE(&a, &ff);
  // The registry's nominal entry matches the built-in descriptor.
  const Technology& nom = corner_technology(TechNode::N65, Corner{});
  EXPECT_DOUBLE_EQ(nom.vdd, technology(TechNode::N65).vdd);
  EXPECT_DOUBLE_EQ(nom.nmos.k_sat, technology(TechNode::N65).nmos.k_sat);
}

// ------------------------------------------------------------ techfile

TEST(TechfileCorners, BuiltinTechfileHasNoCornersBlock) {
  // Built-in descriptors carry no techfile corners, so their serialized
  // form must be byte-compatible with the pre-scenario format.
  const std::string text = write_techfile(technology(TechNode::N90));
  EXPECT_EQ(text.find("corners"), std::string::npos);
}

TEST(TechfileCorners, RoundTripPreservesCustomCorners) {
  Technology tech = technology(TechNode::N65);
  Corner hot;
  hot.name = "hot";
  hot.nmos_strength = 0.91;
  hot.pmos_strength = 0.93;
  hot.device_cap = 1.02;
  hot.leakage = 2.5;
  hot.wire_res = 1.07;
  hot.wire_cap = 1.01;
  hot.temperature_c = 110.0;
  hot.vdd_scale = 0.95;
  tech.corners = ScenarioSet({Corner{}, hot});

  const std::string text = write_techfile(tech);
  EXPECT_NE(text.find("corners"), std::string::npos);
  const Technology parsed = parse_techfile(text);
  ASSERT_EQ(parsed.corners.size(), 2u);
  ASSERT_NE(parsed.corners.find("hot"), nullptr);
  const Corner& r = parsed.corners.corner("hot");
  EXPECT_NEAR(r.nmos_strength, hot.nmos_strength, 1e-9);
  EXPECT_NEAR(r.pmos_strength, hot.pmos_strength, 1e-9);
  EXPECT_NEAR(r.device_cap, hot.device_cap, 1e-9);
  EXPECT_NEAR(r.leakage, hot.leakage, 1e-9);
  EXPECT_NEAR(r.wire_res, hot.wire_res, 1e-9);
  EXPECT_NEAR(r.wire_cap, hot.wire_cap, 1e-9);
  EXPECT_NEAR(r.temperature_c, hot.temperature_c, 1e-6);
  EXPECT_NEAR(r.vdd_scale, hot.vdd_scale, 1e-9);
  EXPECT_TRUE(parsed.corners.corner("nominal").is_nominal());
  // scenario_set() prefers the techfile block over the builtin set.
  EXPECT_EQ(parsed.scenario_set().size(), 2u);
  EXPECT_EQ(technology(TechNode::N65).scenario_set().size(), 5u);
}

TEST(TechfileCorners, ParseRequiresANominalCorner) {
  Technology tech = technology(TechNode::N65);
  Corner only;
  only.name = "hot";
  only.leakage = 2.0;
  tech.corners = ScenarioSet({only});
  EXPECT_THROW(parse_techfile(write_techfile(tech)), Error);
}

// ----------------------------------------------- per-corner calibration

// Calibrates nominal/ss/ff once for the whole suite (the expensive part)
// against a private cache directory so runs never touch the user cache.
class CornerFlowFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Per-process suffix: ctest runs each test in its own process, and a
    // shared path would let one process's TearDownTestSuite remove_all
    // the cache out from under a sibling still reading it.
    dir_ = new std::string(::testing::TempDir() + "pim_scenario_cache_" +
                           std::to_string(::getpid()));
    std::filesystem::remove_all(*dir_);
    cache::set_dir(*dir_);
    cache::set_mode(cache::Mode::ReadWrite);
    cache::Store::global().clear_memory();

    const ScenarioSet& set = ScenarioSet::builtin();
    corners_ = new std::vector<Corner>{set.corner("nominal"), set.corner("ss"),
                                       set.corner("ff")};
    fits_ = new std::vector<std::pair<Corner, TechnologyFit>>(corner_fits(
        TechNode::N65, *corners_, "", cheap_characterization(), cheap_composition()));
    set_ = new CornerModelSet(TechNode::N65, *fits_);
  }
  static void TearDownTestSuite() {
    delete set_;
    delete fits_;
    delete corners_;
    cache::Store::global().clear_memory();
    cache::reset_mode();
    cache::set_dir("");
    std::filesystem::remove_all(*dir_);
    delete dir_;
  }

  static std::string* dir_;
  static std::vector<Corner>* corners_;
  static std::vector<std::pair<Corner, TechnologyFit>>* fits_;
  static CornerModelSet* set_;
};

std::string* CornerFlowFixture::dir_ = nullptr;
std::vector<Corner>* CornerFlowFixture::corners_ = nullptr;
std::vector<std::pair<Corner, TechnologyFit>>* CornerFlowFixture::fits_ = nullptr;
CornerModelSet* CornerFlowFixture::set_ = nullptr;

TEST_F(CornerFlowFixture, SlowAndFastCornersBracketNominal) {
  const double nominal = set_->at("nominal").model.evaluate(link_ctx(), link_design()).delay;
  const double ss = set_->at("ss").model.evaluate(link_ctx(), link_design()).delay;
  const double ff = set_->at("ff").model.evaluate(link_ctx(), link_design()).delay;
  EXPECT_GT(ss, nominal);
  EXPECT_LT(ff, nominal);
}

TEST_F(CornerFlowFixture, NominalCornerFitMatchesCalibratedFit) {
  // calibrated_fit is documented as corner_calibrated_fit at nominal;
  // the coefficient sets must be bit-identical.
  const TechnologyFit plain =
      calibrated_fit(TechNode::N65, "", cheap_characterization(), cheap_composition());
  const TechnologyFit& nominal = set_->at("nominal").model.fit();
  EXPECT_DOUBLE_EQ(plain.vdd, nominal.vdd);
  EXPECT_DOUBLE_EQ(plain.gamma, nominal.gamma);
  EXPECT_DOUBLE_EQ(plain.inv_rise.a0, nominal.inv_rise.a0);
  EXPECT_DOUBLE_EQ(plain.inv_rise.rho0, nominal.inv_rise.rho0);
  EXPECT_DOUBLE_EQ(plain.leakage.n0, nominal.leakage.n0);
  EXPECT_DOUBLE_EQ(plain.leakage.p1, nominal.leakage.p1);
  EXPECT_DOUBLE_EQ(plain.area0, nominal.area0);
  EXPECT_DOUBLE_EQ(plain.comp_coupled.kappa_c, nominal.comp_coupled.kappa_c);
}

TEST_F(CornerFlowFixture, LeakageDerateScalesTheFittedCoefficients) {
  const TechnologyFit& nominal = set_->at("nominal").model.fit();
  const Corner& ff = ScenarioSet::builtin().corner("ff");
  const TechnologyFit& fast = set_->at("ff").model.fit();
  // FF leakage blows up both through the derated devices and the final
  // corner.leakage scale; it must land well above nominal.
  EXPECT_GT(fast.leakage.eval_avg(1e-6, 2e-6),
            ff.leakage * 0.5 * nominal.leakage.eval_avg(1e-6, 2e-6));
}

TEST_F(CornerFlowFixture, WarmPerCornerCacheIsBitIdenticalToCold) {
  const MetricsOn metrics;
  const Corner& ss = ScenarioSet::builtin().corner("ss");
  auto& hits = obs::registry().counter("corner.ss.fit.hit");
  const int64_t hits_before = hits.value();
  // Force the disk tier: the fixture computed this fit already, so a
  // fresh lookup after dropping the memory tier must replay the stored
  // payload bit-for-bit.
  cache::Store::global().clear_memory();
  const TechnologyFit warm = corner_calibrated_fit(TechNode::N65, ss, "",
                                                   cheap_characterization(),
                                                   cheap_composition());
  EXPECT_EQ(hits.value(), hits_before + 1);
  const TechnologyFit& cold = set_->at("ss").model.fit();
  EXPECT_DOUBLE_EQ(warm.vdd, cold.vdd);
  EXPECT_DOUBLE_EQ(warm.gamma, cold.gamma);
  EXPECT_DOUBLE_EQ(warm.inv_rise.a0, cold.inv_rise.a0);
  EXPECT_DOUBLE_EQ(warm.inv_rise.rho0, cold.inv_rise.rho0);
  EXPECT_DOUBLE_EQ(warm.inv_fall.b2, cold.inv_fall.b2);
  EXPECT_DOUBLE_EQ(warm.leakage.n0, cold.leakage.n0);
  EXPECT_DOUBLE_EQ(warm.leakage.p1, cold.leakage.p1);
  EXPECT_DOUBLE_EQ(warm.area0, cold.area0);
  EXPECT_DOUBLE_EQ(warm.area1, cold.area1);
  EXPECT_DOUBLE_EQ(warm.comp_coupled.kappa_c, cold.comp_coupled.kappa_c);
  EXPECT_DOUBLE_EQ(warm.comp_shielded.kappa_w, cold.comp_shielded.kappa_w);
  // Same model behavior, not just same stored numbers.
  const ProposedModel m(corner_technology(TechNode::N65, ss), warm);
  EXPECT_DOUBLE_EQ(m.evaluate(link_ctx(), link_design()).delay,
                   set_->at("ss").model.evaluate(link_ctx(), link_design()).delay);
}

TEST_F(CornerFlowFixture, CornerModelSetLookup) {
  EXPECT_EQ(set_->size(), 3u);
  EXPECT_EQ(set_->models().front().corner.name, "nominal");
  EXPECT_EQ(set_->at("ss").corner.name, "ss");
  EXPECT_THROW(set_->at("bogus"), Error);
}

TEST_F(CornerFlowFixture, WorstCornerModelTakesPerMetricMax) {
  const WorstCornerModel worst(CornerModelSet(TechNode::N65, *fits_));
  EXPECT_EQ(worst.name(), "proposed@worst");
  EXPECT_NE(worst.cache_signature().find("worst("), std::string::npos);

  const LinkEstimate w = worst.evaluate(link_ctx(), link_design());
  double max_delay = 0.0;
  double max_leak = 0.0;
  for (const CornerModel& m : set_->models()) {
    const LinkEstimate e = m.model.evaluate(link_ctx(), link_design());
    max_delay = std::max(max_delay, e.delay);
    max_leak = std::max(max_leak, e.leakage_power);
  }
  EXPECT_DOUBLE_EQ(w.delay, max_delay);
  EXPECT_DOUBLE_EQ(w.leakage_power, max_leak);
  // Area is layout, not process: it reports the reference corner's value.
  EXPECT_DOUBLE_EQ(w.repeater_area,
                   set_->models().front().model.evaluate(link_ctx(), link_design()).repeater_area);
  EXPECT_EQ(worst.dominating(link_ctx(), link_design()).corner.name, "ss");
}

TEST_F(CornerFlowFixture, SignoffReportsWorstCornerAndBracketsNominal) {
  const CornerSignoffResult r = signoff_corners(*set_, link_ctx(), link_design());
  ASSERT_EQ(r.corners.size(), 3u);
  EXPECT_DOUBLE_EQ(r.target_period, 1.0 / link_ctx().frequency);
  EXPECT_EQ(r.worst().corner.name, "ss");

  double nominal_slack = 0.0, ss_slack = 0.0, ff_slack = 0.0;
  for (const CornerTiming& row : r.corners) {
    EXPECT_GT(row.delay, 0.0);
    EXPECT_GT(row.output_slew, 0.0);
    EXPECT_GT(row.noise_peak, 0.0);
    EXPECT_DOUBLE_EQ(row.slack, r.target_period - row.delay);
    if (row.corner.name == "nominal") nominal_slack = row.slack;
    if (row.corner.name == "ss") ss_slack = row.slack;
    if (row.corner.name == "ff") ff_slack = row.slack;
  }
  EXPECT_LT(ss_slack, nominal_slack);
  EXPECT_LT(nominal_slack, ff_slack);
  EXPECT_DOUBLE_EQ(r.worst_slack(), ss_slack);

  CornerSignoffOptions tight;
  tight.target_period = 10 * ps;  // far below any corner's delay
  const CornerSignoffResult t = signoff_corners(*set_, link_ctx(), link_design(), tight);
  EXPECT_LT(t.worst_slack(), 0.0);
  EXPECT_DOUBLE_EQ(t.target_period, 10 * ps);
}

TEST_F(CornerFlowFixture, MonteCarloAtNominalCornerMatchesCachedFlow) {
  const ProposedModel& model = set_->at("nominal").model;
  const MonteCarloResult direct =
      monte_carlo_link_cached(model, link_ctx(), link_design(), 200, 7);
  const MonteCarloResult at_nominal = monte_carlo_link_at_corner(
      model, Corner{}, link_ctx(), link_design(), 200, 7);
  ASSERT_EQ(at_nominal.delays.size(), direct.delays.size());
  for (size_t i = 0; i < direct.delays.size(); ++i) {
    EXPECT_DOUBLE_EQ(at_nominal.delays[i], direct.delays[i]) << i;
  }
  EXPECT_DOUBLE_EQ(at_nominal.mean_delay, direct.mean_delay);
  EXPECT_DOUBLE_EQ(at_nominal.sigma_delay, direct.sigma_delay);
  EXPECT_DOUBLE_EQ(at_nominal.nominal_delay, direct.nominal_delay);
}

TEST_F(CornerFlowFixture, MonteCarloAtSlowCornerShiftsTheDistribution) {
  const MetricsOn metrics;
  const Corner& ss = ScenarioSet::builtin().corner("ss");
  auto& samples = obs::registry().counter("corner.ss.mc.samples");
  const int64_t before = samples.value();
  const MonteCarloResult slow = monte_carlo_link_at_corner(
      set_->at("ss").model, ss, link_ctx(), link_design(), 200, 7);
  EXPECT_EQ(samples.value(), before + 200);
  const MonteCarloResult nominal = monte_carlo_link_at_corner(
      set_->at("nominal").model, Corner{}, link_ctx(), link_design(), 200, 7);
  EXPECT_GT(slow.mean_delay, nominal.mean_delay);
  EXPECT_GT(slow.nominal_delay, nominal.nominal_delay);
}

// -------------------------------------- Liberty round-trip at a corner

TEST(LibertyAtCorner, ExportTimerRoundTripAtSlowCorner) {
  const Corner& ss = ScenarioSet::builtin().corner("ss");
  const Technology& ss_tech = corner_technology(TechNode::N65, ss);
  CharacterizationOptions copt;
  copt.drives = {8};
  copt.buffers = false;
  const CellLibrary lib = characterize_library(ss_tech, copt);
  const CellLibrary reparsed = parse_liberty(write_liberty(lib));

  LinkContext ctx;
  ctx.length = 2 * mm;
  ctx.input_slew = 100 * ps;
  LinkDesign d;
  d.drive = 8;
  d.num_repeaters = 2;
  const NldmTimerResult direct = nldm_link_delay(lib, ss_tech, ctx, d);
  const NldmTimerResult round = nldm_link_delay(reparsed, ss_tech, ctx, d);
  EXPECT_GT(direct.delay, 0.0);
  EXPECT_NEAR(round.delay, direct.delay, 1e-6 * direct.delay);
  EXPECT_NEAR(round.output_slew, direct.output_slew, 1e-6 * direct.output_slew);

  // The derated library is genuinely slower than the nominal one.
  const CellLibrary nominal_lib = characterize_library(technology(TechNode::N65), copt);
  const NldmTimerResult nominal = nldm_link_delay(nominal_lib, technology(TechNode::N65), ctx, d);
  EXPECT_GT(direct.delay, nominal.delay);
}

}  // namespace
}  // namespace pim
