// Unit + property tests for pim::numeric — matrices, LU, banded LU,
// least squares, regression, optimization, interpolation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>

#include "numeric/banded.hpp"
#include "numeric/interp.hpp"
#include "numeric/leastsq.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "numeric/optimize.hpp"
#include "numeric/regression.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pim {
namespace {

TEST(Matrix, MultiplyVector) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Vector y = a.multiply({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Matrix, MultiplyMatrixMatchesIdentity) {
  Matrix a(3, 3);
  Rng rng(5);
  for (size_t r = 0; r < 3; ++r)
    for (size_t c = 0; c < 3; ++c) a(r, c) = rng.uniform(-1, 1);
  const Matrix prod = a.multiply(Matrix::identity(3));
  for (size_t r = 0; r < 3; ++r)
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(prod(r, c), a(r, c));
}

TEST(Matrix, TransposedSwapsShape) {
  Matrix a(2, 3);
  a(0, 2) = 7.0;
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
}

TEST(VectorOps, Norms) {
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf({-3.0, 2.0}), 3.0);
  EXPECT_DOUBLE_EQ(dot({1, 2}, {3, 4}), 11.0);
}

// Property: LU solve recovers x from b = A x for random well-conditioned A.
class LuRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomTest, SolveRecoversKnownSolution) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 7919);
  Matrix a(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += n;  // diagonal dominance keeps it well-conditioned
  }
  Vector x_true(n);
  for (int i = 0; i < n; ++i) x_true[i] = rng.uniform(-10.0, 10.0);
  const Vector b = a.multiply(x_true);
  const Vector x = solve_dense(a, b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomTest, ::testing::Values(1, 2, 3, 5, 10, 25, 60));

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const Vector x = solve_dense(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(solve_dense(a, {1.0, 1.0}), Error);
}

TEST(Lu, CreateReportsSingularityWithoutThrowing) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;  // rank 1
  const Expected<LuDecomposition> lu = LuDecomposition::create(a);
  ASSERT_FALSE(lu.ok());
  EXPECT_EQ(lu.error().code(), ErrorCode::singular_matrix);
  // The message names the failing pivot column and the retry context.
  EXPECT_NE(std::string(lu.error().what()).find("pivot"), std::string::npos);
  EXPECT_NE(std::string(lu.error().what()).find("equilibration"), std::string::npos);

  const Expected<Vector> x = try_solve_dense(a, {1.0, 1.0});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.error().code(), ErrorCode::singular_matrix);
}

TEST(Lu, ConditionEstimateFlagsIllConditioning) {
  Matrix well(2, 2);
  well(0, 0) = 2.0;
  well(1, 1) = 1.0;
  Matrix ill(2, 2);
  ill(0, 0) = 1.0;
  ill(0, 1) = 1.0;
  ill(1, 0) = 1.0;
  ill(1, 1) = 1.0 + 1e-10;
  const LuDecomposition lu_well{well};
  const LuDecomposition lu_ill{ill};
  EXPECT_GE(lu_well.condition_estimate(), 1.0);
  EXPECT_LT(lu_well.condition_estimate(), 10.0);
  EXPECT_GT(lu_ill.condition_estimate(), 1e8);
  EXPECT_FALSE(lu_well.equilibrated());
}

// Property: banded solve agrees with dense solve on random banded systems.
class BandedTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BandedTest, MatchesDense) {
  const auto [n, band] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 31 + band));
  BandedMatrix bm(n, band, band);
  for (int r = 0; r < n; ++r) {
    for (int c = std::max(0, r - band); c <= std::min(n - 1, r + band); ++c)
      bm.add(r, c, rng.uniform(-1.0, 1.0));
    bm.add(r, r, 2.0 * band + 3.0);  // diagonal dominance: safe without pivoting
  }
  Vector b(n);
  for (int i = 0; i < n; ++i) b[i] = rng.uniform(-5.0, 5.0);
  const Vector x_band = BandedLu(bm).solve(b);
  const Vector x_dense = solve_dense(bm.to_dense(), b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x_band[i], x_dense[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BandedTest,
                         ::testing::Values(std::make_tuple(1, 0), std::make_tuple(5, 1),
                                           std::make_tuple(20, 2), std::make_tuple(50, 4),
                                           std::make_tuple(120, 7), std::make_tuple(300, 3)));

TEST(Banded, RejectsOutOfBandEntry) {
  BandedMatrix bm(5, 1, 1);
  EXPECT_THROW(bm.add(0, 3, 1.0), Error);
  EXPECT_DOUBLE_EQ(bm.at(0, 3), 0.0);
}

TEST(Banded, MultiplyMatchesDense) {
  BandedMatrix bm(4, 1, 1);
  bm.add(0, 0, 2.0);
  bm.add(0, 1, -1.0);
  bm.add(1, 0, -1.0);
  bm.add(1, 1, 2.0);
  bm.add(2, 2, 1.5);
  bm.add(3, 3, 1.0);
  const Vector x = {1.0, 2.0, 3.0, 4.0};
  const Vector y_band = bm.multiply(x);
  const Vector y_dense = bm.to_dense().multiply(x);
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(y_band[i], y_dense[i]);
}

TEST(LeastSquares, ExactSystemSolvedExactly) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 0.0;
  a(1, 0) = 0.0;
  a(1, 1) = 4.0;
  const Vector x = least_squares(a, {2.0, 8.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LeastSquares, OverdeterminedMinimizesResidual) {
  // y = 3 + 2x with symmetric noise; LS must recover the exact line
  // because the noise is orthogonal to the design by construction.
  Matrix a(4, 2);
  Vector b(4);
  const double xs[4] = {0, 1, 2, 3};
  const double noise[4] = {0.1, -0.1, -0.1, 0.1};
  for (int i = 0; i < 4; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = xs[i];
    b[i] = 3.0 + 2.0 * xs[i] + noise[i];
  }
  const Vector c = least_squares(a, b);
  EXPECT_NEAR(c[0], 3.0, 0.11);
  EXPECT_NEAR(c[1], 2.0, 0.11);
  // Residual must not exceed the noise norm.
  EXPECT_LE(residual_norm(a, c, b), norm2({0.1, 0.1, 0.1, 0.1}) + 1e-12);
}

TEST(LeastSquares, RankDeficientRecoveredByRegularization) {
  // Duplicate columns: classic rank deficiency. QR fails, the Tikhonov
  // fallback must still return a finite solution whose residual matches
  // the best single-column fit.
  Matrix a(4, 2);
  Vector b(4);
  const double col[] = {1.0, 2.0, 3.0, 4.0};
  for (size_t r = 0; r < 4; ++r) {
    a(r, 0) = col[r];
    a(r, 1) = col[r];
    b[r] = 2.0 * col[r] + ((r % 2 == 0) ? 0.01 : -0.01);
  }
  const Vector x = least_squares(a, b);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_TRUE(std::isfinite(x[0]) && std::isfinite(x[1]));
  // Combined coefficient ~2 (the direction the data determines).
  EXPECT_NEAR(x[0] + x[1], 2.0, 1e-3);

  // Residual must match the well-posed one-column problem's.
  Matrix a1(4, 1);
  for (size_t r = 0; r < 4; ++r) a1(r, 0) = col[r];
  const Vector x1 = least_squares(a1, b);
  EXPECT_NEAR(residual_norm(a, x, b), residual_norm(a1, x1, b), 1e-6);

  const Expected<Vector> rx = try_least_squares(a, b);
  ASSERT_TRUE(rx.ok());
}

TEST(LeastSquares, ExplicitRidgeDampsTowardZero) {
  Matrix a(3, 1);
  Vector b(3);
  for (size_t r = 0; r < 3; ++r) {
    a(r, 0) = 1.0;
    b[r] = 6.0;
  }
  const Expected<Vector> light = least_squares_regularized(a, b, 1e-8);
  const Expected<Vector> heavy = least_squares_regularized(a, b, 10.0);
  ASSERT_TRUE(light.ok());
  ASSERT_TRUE(heavy.ok());
  EXPECT_NEAR(light.value()[0], 6.0, 1e-6);
  EXPECT_LT(heavy.value()[0], 6.0);  // damping shrinks the estimate
}

TEST(LeastSquares, DimensionMismatchRejected) {
  Matrix a(3, 2);
  for (int i = 0; i < 3; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 2.0;
  }
  // Historically a rank-deficient system threw here; the regularized
  // fallback now handles it (see RankDeficientRecoveredByRegularization).
  // Caller mistakes still fail fast, and typed.
  try {
    least_squares(a, {1.0, 2.0});  // b has the wrong length
    FAIL() << "expected bad_input";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::bad_input);
  }
  EXPECT_THROW(least_squares(Matrix(2, 3), {1.0, 2.0}), Error);  // rows < cols
}

TEST(Regression, LinearRecoversLine) {
  const Vector x = {1, 2, 3, 4, 5};
  Vector y(5);
  for (size_t i = 0; i < 5; ++i) y[i] = -2.0 + 0.5 * x[i];
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-10);
  EXPECT_NEAR(fit.slope, 0.5, 1e-10);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Regression, ZeroInterceptForcedThroughOrigin) {
  const Vector x = {1, 2, 4};
  const Vector y = {3.1, 5.9, 12.1};  // roughly 3x
  const LinearFit fit = fit_linear_zero_intercept(x, y);
  EXPECT_DOUBLE_EQ(fit.intercept, 0.0);
  EXPECT_NEAR(fit.slope, 3.0, 0.05);
}

TEST(Regression, QuadraticRecoversParabola) {
  Vector x, y;
  for (int i = -5; i <= 5; ++i) {
    x.push_back(i);
    y.push_back(1.0 + 2.0 * i + 0.5 * i * i);
  }
  const PolynomialFit fit = fit_polynomial(x, y, 2);
  ASSERT_EQ(fit.coeff.size(), 3u);
  EXPECT_NEAR(fit.coeff[0], 1.0, 1e-9);
  EXPECT_NEAR(fit.coeff[1], 2.0, 1e-9);
  EXPECT_NEAR(fit.coeff[2], 0.5, 1e-9);
}

TEST(Regression, MultilinearRecoversPlane) {
  // y = 1 + 2 x1 - 3 x2 over a grid.
  std::vector<Vector> xs(2);
  Vector y;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      xs[0].push_back(i);
      xs[1].push_back(j);
      y.push_back(1.0 + 2.0 * i - 3.0 * j);
    }
  }
  const MultiLinearFit fit = fit_multilinear(xs, y);
  ASSERT_EQ(fit.coeff.size(), 3u);
  EXPECT_NEAR(fit.coeff[0], 1.0, 1e-9);
  EXPECT_NEAR(fit.coeff[1], 2.0, 1e-9);
  EXPECT_NEAR(fit.coeff[2], -3.0, 1e-9);
  EXPECT_NEAR(fit.eval({2.0, 1.0}), 2.0, 1e-9);
}

TEST(Regression, Stats) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_NEAR(max_relative_error({1.1, 2.0}, {1.0, 2.0}), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(r_squared({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(Optimize, GoldenSectionFindsParabolaMinimum) {
  const auto res = golden_section_minimize([](double x) { return (x - 1.7) * (x - 1.7); },
                                           -10.0, 10.0, 1e-8);
  EXPECT_NEAR(res.x, 1.7, 1e-6);
  EXPECT_NEAR(res.value, 0.0, 1e-10);
}

TEST(Optimize, TernarySearchExactOnUnimodal) {
  const auto res = ternary_search_min([](long x) { return static_cast<double>((x - 37) * (x - 37)); },
                                      0, 1000);
  EXPECT_EQ(res.x, 37);
  EXPECT_DOUBLE_EQ(res.value, 0.0);
}

TEST(Optimize, ScanMinIsExact) {
  const auto res = scan_min([](long x) { return std::fabs(static_cast<double>(x) - 5.0); }, -3, 20);
  EXPECT_EQ(res.x, 5);
}

TEST(Interp, LinearInterpolatesAndExtrapolates) {
  const Vector xs = {0.0, 1.0, 2.0};
  const Vector ys = {0.0, 10.0, 40.0};
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 1.5), 25.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 3.0), 70.0);   // extrapolation
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, -1.0), -10.0); // extrapolation
}

TEST(Interp, Grid2DBilinear) {
  Matrix v(2, 2);
  v(0, 0) = 0.0;
  v(0, 1) = 1.0;
  v(1, 0) = 2.0;
  v(1, 1) = 3.0;
  Grid2D g({0.0, 1.0}, {0.0, 1.0}, v);
  EXPECT_DOUBLE_EQ(g.eval(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(g.eval(1.0, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(g.eval(0.5, 0.5), 1.5);
  // Bilinear surface is exact for the plane z = 2r + c.
  EXPECT_DOUBLE_EQ(g.eval(0.25, 0.75), 2 * 0.25 + 0.75);
}

// Property: polynomial fitting recovers random polynomials exactly when
// the sample count exceeds the degree.
class PolyRecovery : public ::testing::TestWithParam<int> {};

TEST_P(PolyRecovery, RecoversRandomPolynomial) {
  const int degree = GetParam();
  Rng rng(static_cast<uint64_t>(degree) * 1337 + 7);
  Vector coeff(static_cast<size_t>(degree) + 1);
  for (double& c : coeff) c = rng.uniform(-3.0, 3.0);
  Vector x, y;
  for (int i = 0; i <= degree + 5; ++i) {
    const double xi = -1.0 + 2.0 * i / (degree + 5);
    double p = 0.0;
    for (size_t k = coeff.size(); k-- > 0;) p = p * xi + coeff[k];
    x.push_back(xi);
    y.push_back(p);
  }
  const PolynomialFit fit = fit_polynomial(x, y, degree);
  ASSERT_EQ(fit.coeff.size(), coeff.size());
  for (size_t k = 0; k < coeff.size(); ++k)
    EXPECT_NEAR(fit.coeff[k], coeff[k], 1e-7 * (1.0 + std::fabs(coeff[k]))) << k;
  EXPECT_GT(fit.r_squared, 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolyRecovery, ::testing::Values(0, 1, 2, 3, 4, 6));

// Property: least squares on noisy data has residual no larger than any
// candidate solution we can construct.
TEST(LeastSquares, ResidualIsMinimalAgainstPerturbations) {
  Rng rng(99);
  Matrix a(12, 3);
  Vector b(12);
  for (size_t r = 0; r < 12; ++r) {
    for (size_t c = 0; c < 3; ++c) a(r, c) = rng.uniform(-2.0, 2.0);
    b[r] = rng.uniform(-5.0, 5.0);
  }
  const Vector x = least_squares(a, b);
  const double best = residual_norm(a, x, b);
  for (int trial = 0; trial < 50; ++trial) {
    Vector y = x;
    for (double& v : y) v += rng.uniform(-0.1, 0.1);
    EXPECT_GE(residual_norm(a, y, b), best - 1e-12);
  }
}

// Property: asymmetric banded systems (kl != ku) agree with dense.
class BandedAsymmetric
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BandedAsymmetric, MatchesDense) {
  const auto [n, kl, ku] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 7 + kl * 3 + ku));
  BandedMatrix bm(n, kl, ku);
  for (int r = 0; r < n; ++r) {
    for (int c = std::max(0, r - kl); c <= std::min(n - 1, r + ku); ++c)
      bm.add(r, c, rng.uniform(-1.0, 1.0));
    bm.add(r, r, kl + ku + 3.0);
  }
  Vector b(n);
  for (int i = 0; i < n; ++i) b[i] = rng.uniform(-5.0, 5.0);
  const Vector xb = BandedLu(bm).solve(b);
  const Vector xd = solve_dense(bm.to_dense(), b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(xb[i], xd[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BandedAsymmetric,
                         ::testing::Values(std::make_tuple(10, 0, 2),
                                           std::make_tuple(30, 3, 1),
                                           std::make_tuple(50, 1, 5),
                                           std::make_tuple(80, 6, 0)));

TEST(Interp, BadAxisRejected) {
  EXPECT_THROW(interp_linear({1.0, 1.0}, {0.0, 0.0}, 0.5), Error);
  EXPECT_THROW(interp_linear({1.0}, {0.0}, 0.5), Error);
}

// ------------------------------------------- symbolic/numeric LU reuse

// The batched transient engine leans on refactor() being *exactly* the
// fresh factorization (same elimination, same metric/fault draws), so
// these pin bitwise identity, not closeness.

BandedMatrix random_banded(size_t n, size_t band, uint64_t seed) {
  BandedMatrix a(n, band, band);
  Rng rng(seed);
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < n; ++c)
      if (a.in_band(r, c)) a.add(r, c, r == c ? 8.0 + rng.uniform(0, 1) : rng.uniform(-1, 1));
  return a;
}

TEST(BandedLu, RefactorIsBitwiseIdenticalToFreshFactorization) {
  const size_t n = 24, band = 3;
  BandedLu reused(n, band, band);
  EXPECT_FALSE(reused.factored());
  // Two different value sets through the same symbolic shape: each
  // refactor must match a from-scratch BandedLu on the same matrix.
  for (uint64_t seed : {11u, 12u}) {
    const BandedMatrix a = random_banded(n, band, seed);
    ASSERT_TRUE(reused.refactor(a).ok());
    EXPECT_TRUE(reused.factored());
    const BandedLu fresh(a);
    Rng rng(99 + seed);
    Vector b(n);
    for (double& v : b) v = rng.uniform(-1, 1);
    const Vector x_fresh = fresh.solve(b);
    Vector x_reused = b;
    reused.solve_in_place(x_reused);
    for (size_t i = 0; i < n; ++i)
      EXPECT_EQ(std::memcmp(&x_fresh[i], &x_reused[i], sizeof(double)), 0) << i;
  }
}

TEST(BandedLu, RefactorRejectsShapeMismatchAndBatchedSolveMatches) {
  BandedLu lu(8, 2, 2);
  EXPECT_THROW(lu.refactor(random_banded(8, 1, 5)), Error);
  EXPECT_THROW(lu.refactor(random_banded(9, 2, 5)), Error);

  const BandedMatrix a = random_banded(8, 2, 21);
  ASSERT_TRUE(lu.refactor(a).ok());
  std::vector<Vector> rhs;
  Rng rng(7);
  for (int k = 0; k < 3; ++k) {
    Vector b(8);
    for (double& v : b) v = rng.uniform(-1, 1);
    rhs.push_back(b);
  }
  std::vector<Vector> batched = rhs;
  lu.solve_many_in_place(batched);
  for (int k = 0; k < 3; ++k) {
    const Vector solo = lu.solve(rhs[static_cast<size_t>(k)]);
    for (size_t i = 0; i < 8; ++i)
      EXPECT_EQ(batched[static_cast<size_t>(k)][i], solo[i]);
  }
}

TEST(Lu, RefactorMatchesCreateBitwiseAndRecoversAfterSingular) {
  const size_t n = 12;
  Matrix a(n, n);
  Rng rng(31);
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < n; ++c) a(r, c) = (r == c ? 6.0 : 0.0) + rng.uniform(-1, 1);

  LuDecomposition reused;
  EXPECT_FALSE(reused.factored());
  ASSERT_TRUE(reused.refactor(a).ok());
  const LuDecomposition fresh(a);
  Vector b(n);
  for (double& v : b) v = rng.uniform(-1, 1);
  const Vector x_fresh = fresh.solve(b);
  Vector x_reused;
  reused.solve_into(b, x_reused);
  for (size_t i = 0; i < n; ++i)
    EXPECT_EQ(std::memcmp(&x_fresh[i], &x_reused[i], sizeof(double)), 0) << i;

  // A singular refactor reports typed failure without poisoning the
  // object: the next refactor on a good matrix works again.
  Matrix singular(n, n);  // all zeros
  const Expected<void> bad = reused.refactor(singular);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), ErrorCode::singular_matrix);
  EXPECT_FALSE(reused.factored());
  ASSERT_TRUE(reused.refactor(a).ok());
  Vector again;
  reused.solve_into(b, again);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(again[i], x_fresh[i]);
}

}  // namespace
}  // namespace pim
