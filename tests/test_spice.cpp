// Tests for pim::spice — device model consistency, transient accuracy on
// circuits with closed-form solutions, charge/energy accounting, banded
// vs. dense solver agreement, and inverter behavior the paper's models
// rely on (load-dependent delay/slew, size-dependent drive).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <tuple>

#include "deadline/deadline.hpp"
#include "spice/batch.hpp"
#include "spice/circuit.hpp"
#include "spice/measure.hpp"
#include "spice/mosfet.hpp"
#include "spice/transient.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/units.hpp"

namespace pim {
namespace {

using namespace pim::unit;

MosfetParams test_nmos() {
  MosfetParams p;
  p.vth = 0.30;
  p.k_sat = 1000.0;
  p.alpha = 1.3;
  p.k_vdsat = 0.6;
  p.lambda = 0.08;
  p.n_sub = 1.45;
  p.c_gate = 1.0e-9;   // 1 fF/um
  p.c_drain = 0.6e-9;
  return p;
}

MosfetParams test_pmos() {
  MosfetParams p = test_nmos();
  p.k_sat = 500.0;  // weaker holes
  return p;
}

InverterDevices test_devices() { return {test_nmos(), test_pmos()}; }

constexpr double kVdd = 1.0;

// ---------------------------------------------------------------- mosfet

TEST(Mosfet, SaturationCurrentScalesWithWidth) {
  const MosfetParams p = test_nmos();
  const double i1 = eval_alpha_power(p, 1.0 * um, kVdd, kVdd).ids;
  const double i2 = eval_alpha_power(p, 2.0 * um, kVdd, kVdd).ids;
  EXPECT_NEAR(i2 / i1, 2.0, 1e-9);
  EXPECT_GT(i1, 0.0);
}

TEST(Mosfet, CurrentMonotonicInVgs) {
  const MosfetParams p = test_nmos();
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= 1.2; vgs += 0.05) {
    const double i = eval_alpha_power(p, 1.0 * um, vgs, 0.8).ids;
    EXPECT_GT(i, prev);
    prev = i;
  }
}

TEST(Mosfet, ZeroVdsGivesZeroCurrent) {
  const MosfetParams p = test_nmos();
  EXPECT_NEAR(eval_alpha_power(p, 1.0 * um, kVdd, 0.0).ids, 0.0, 1e-15);
}

TEST(Mosfet, ReverseConductionAntisymmetric) {
  const MosfetParams p = test_nmos();
  // With vgs measured from the *source-side* terminal, forward(vg, vd=x)
  // and reverse conduction obey I(vgs, -x) = -I(vgs + x evaluated at
  // swapped terminals); spot-check the sign and continuity at vds = 0.
  const double i_neg = eval_alpha_power(p, 1.0 * um, 0.8, -0.3).ids;
  EXPECT_LT(i_neg, 0.0);
  const double i_eps_pos = eval_alpha_power(p, 1.0 * um, 0.8, 1e-6).ids;
  const double i_eps_neg = eval_alpha_power(p, 1.0 * um, 0.8, -1e-6).ids;
  EXPECT_NEAR(i_eps_pos, -i_eps_neg, 1e-8);
}

TEST(Mosfet, SubthresholdSlopeIsExponential) {
  const MosfetParams p = test_nmos();
  // One decade of current per ~ln(10)*n*vT/alpha volts of vgs below vth.
  const double i1 = eval_alpha_power(p, 1.0 * um, 0.10, kVdd).ids;
  const double i2 = eval_alpha_power(p, 1.0 * um, 0.20, kVdd).ids;
  const double swing = 0.1 / std::log10(i2 / i1);  // V per decade
  const double expected = std::log(10.0) * p.n_sub * constant::v_thermal_300k / p.alpha;
  EXPECT_NEAR(swing, expected, 0.2 * expected);
}

TEST(Mosfet, OffCurrentLinearInWidth) {
  const MosfetParams p = test_nmos();
  const double i1 = off_current(p, 1.0 * um, kVdd);
  const double i3 = off_current(p, 3.0 * um, kVdd);
  EXPECT_GT(i1, 0.0);
  EXPECT_NEAR(i3 / i1, 3.0, 1e-9);
}

// Property: analytic derivatives match central finite differences over a
// bias grid spanning subthreshold, triode, saturation, and reverse biases.
class MosfetDerivativeTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MosfetDerivativeTest, AnalyticMatchesFiniteDifference) {
  const auto [vgs, vds] = GetParam();
  const MosfetParams p = test_nmos();
  const double w = 1.0 * um;
  const double h = 1e-6;
  const MosEval e = eval_alpha_power(p, w, vgs, vds);
  const double gm_fd = (eval_alpha_power(p, w, vgs + h, vds).ids -
                        eval_alpha_power(p, w, vgs - h, vds).ids) /
                       (2 * h);
  const double gds_fd = (eval_alpha_power(p, w, vgs, vds + h).ids -
                         eval_alpha_power(p, w, vgs, vds - h).ids) /
                        (2 * h);
  const double scale = std::max({std::fabs(e.g_m), std::fabs(e.g_ds), 1e-9});
  EXPECT_NEAR(e.g_m, gm_fd, 2e-3 * scale) << "vgs=" << vgs << " vds=" << vds;
  EXPECT_NEAR(e.g_ds, gds_fd, 2e-3 * scale) << "vgs=" << vgs << " vds=" << vds;
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, MosfetDerivativeTest,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.4, 0.7, 1.0, 1.2),
                       ::testing::Values(-0.8, -0.2, 0.05, 0.3, 0.7, 1.2)));

// ---------------------------------------------------------------- circuit

TEST(Circuit, ValidatesElements) {
  Circuit c;
  const NodeId a = c.add_node("a");
  EXPECT_THROW(c.add_resistor(a, a, 100.0), Error);
  EXPECT_THROW(c.add_resistor(a, 99, 100.0), Error);
  EXPECT_THROW(c.add_resistor(a, c.ground(), -5.0), Error);
  EXPECT_THROW(c.add_capacitor(a, c.ground(), -1e-15), Error);
  EXPECT_THROW(c.add_vsource(c.ground(), Waveform::dc(1.0)), Error);
  c.add_vsource(a, Waveform::dc(1.0));
  EXPECT_THROW(c.add_vsource(a, Waveform::dc(2.0)), Error);
  EXPECT_TRUE(c.is_source_node(a));
  EXPECT_FALSE(c.is_source_node(c.ground()));
}

TEST(Circuit, ZeroCapacitorIsDropped) {
  Circuit c;
  const NodeId a = c.add_node();
  c.add_capacitor(a, c.ground(), 0.0);
  EXPECT_TRUE(c.capacitors().empty());
}

TEST(Waveform, RampShape) {
  const Waveform w = Waveform::ramp(0.0, 1.0, 1.0 * ns, 100.0 * ps);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(1.0 * ns), 0.0);
  EXPECT_NEAR(w.value(1.05 * ns), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(w.value(2.0 * ns), 1.0);
}

TEST(Waveform, PwlValidation) {
  EXPECT_THROW(Waveform::pwl({1.0, 1.0}, {0.0, 1.0}), Error);
  EXPECT_THROW(Waveform::pwl({}, {}), Error);
}

// -------------------------------------------------------------- transient

// RC charge: v(t) = Vdd (1 - exp(-t/RC)), t50 = RC ln 2, and the source
// delivers exactly C*Vdd of charge.
TEST(Transient, SingleRcMatchesClosedForm) {
  Circuit c;
  const NodeId in = c.add_node("in");
  const NodeId out = c.add_node("out");
  const double R = 1.0 * kohm;
  const double C = 1.0 * pF;
  c.add_vsource(in, Waveform::ramp(0.0, 1.0, 0.0, 1.0 * ps));
  c.add_resistor(in, out, R);
  c.add_capacitor(out, c.ground(), C);

  TransientOptions opt;
  opt.t_stop = 6.0 * ns;
  opt.dt = 1.0 * ps;
  const TransientResult res = run_transient(c, opt, {in, out});

  const double tau = R * C;
  // Sample a few points along the curve (offset by the ramp midpoint).
  for (double frac : {0.5, 1.0, 2.0, 3.0}) {
    const double t = frac * tau;
    // Find nearest sample.
    size_t k = static_cast<size_t>(t / opt.dt);
    const double expected = 1.0 - std::exp(-(res.time[k] - 0.5 * ps) / tau);
    EXPECT_NEAR(res.trace(out)[k], expected, 0.01);
  }
  const double t50 = crossing_time(res.time, res.trace(out), 0.5, EdgeKind::Rising);
  EXPECT_NEAR(t50, tau * std::log(2.0), 0.02 * tau);
  // Charge conservation.
  EXPECT_NEAR(res.sources[0].charge, C * 1.0, 0.02 * C);
  // Energy: source delivers C*V^2, half stored, half burned in R.
  EXPECT_NEAR(res.sources[0].energy, C * 1.0 * 1.0, 0.05 * C);
}

TEST(Transient, BackwardEulerAlsoAccurate) {
  Circuit c;
  const NodeId in = c.add_node();
  const NodeId out = c.add_node();
  c.add_vsource(in, Waveform::ramp(0.0, 1.0, 0.0, 1.0 * ps));
  c.add_resistor(in, out, 1.0 * kohm);
  c.add_capacitor(out, c.ground(), 1.0 * pF);
  TransientOptions opt;
  opt.t_stop = 4.0 * ns;
  opt.dt = 0.5 * ps;
  opt.integrator = Integrator::BackwardEuler;
  const TransientResult res = run_transient(c, opt, {out});
  const double t50 = crossing_time(res.time, res.trace(out), 0.5, EdgeKind::Rising);
  EXPECT_NEAR(t50, 1.0 * ns * std::log(2.0), 0.03 * ns);
}

// A uniform RC ladder's 50 % step delay should be near 0.69 * Elmore for
// the lumped single segment and grow ~quadratically with segment count.
TEST(Transient, RcLadderDelayGrowsQuadratically) {
  auto ladder_delay = [](int n) {
    Circuit c;
    const NodeId in = c.add_node();
    c.add_vsource(in, Waveform::ramp(0.0, 1.0, 0.0, 1.0 * ps));
    NodeId prev = in;
    for (int i = 0; i < n; ++i) {
      const NodeId next = c.add_node();
      c.add_resistor(prev, next, 100.0);
      c.add_capacitor(next, c.ground(), 100.0 * fF);
      prev = next;
    }
    TransientOptions opt;
    opt.t_stop = 10.0 * ns;
    opt.dt = 1.0 * ps;
    const TransientResult res = run_transient(c, opt, {prev});
    return crossing_time(res.time, res.trace(prev), 0.5, EdgeKind::Rising);
  };
  const double d5 = ladder_delay(5);
  const double d10 = ladder_delay(10);
  // Elmore of the N-ladder is R*C*N(N+1)/2: ratio (10*11)/(5*6) = 3.67.
  EXPECT_NEAR(d10 / d5, 110.0 / 30.0, 0.5);
}

TEST(Transient, BandedAndDensePathsAgree) {
  auto build = [] {
    Circuit c;
    const NodeId in = c.add_node();
    c.add_vsource(in, Waveform::ramp(0.0, 1.0, 0.0, 50.0 * ps));
    NodeId prev = in;
    for (int i = 0; i < 12; ++i) {
      const NodeId next = c.add_node();
      c.add_resistor(prev, next, 250.0);
      c.add_capacitor(next, c.ground(), 20.0 * fF);
      prev = next;
    }
    return std::pair{std::move(c), prev};
  };
  auto [c1, out1] = build();
  TransientOptions banded;
  banded.t_stop = 1.0 * ns;
  banded.dt = 1.0 * ps;
  const TransientResult r_band = run_transient(c1, banded, {out1});

  auto [c2, out2] = build();
  TransientOptions dense = banded;
  dense.band_threshold = 0;  // force dense
  const TransientResult r_dense = run_transient(c2, dense, {out2});

  ASSERT_EQ(r_band.time.size(), r_dense.time.size());
  for (size_t i = 0; i < r_band.time.size(); ++i)
    EXPECT_NEAR(r_band.trace(out1)[i], r_dense.trace(out2)[i], 1e-7);
}

// ------------------------------------------------------------- inverter

struct InverterRun {
  double delay;
  double out_slew;
  double vdd_charge;
};

InverterRun run_inverter(double wn_um, double load_ff, double in_slew_ps,
                         EdgeKind in_edge) {
  Circuit c;
  const NodeId vdd = c.add_node("vdd");
  const NodeId in = c.add_node("in");
  const NodeId out = c.add_node("out");
  c.add_vsource(vdd, Waveform::dc(kVdd));
  const double v0 = in_edge == EdgeKind::Rising ? 0.0 : kVdd;
  const double v1 = kVdd - v0;
  c.add_vsource(in, Waveform::ramp(v0, v1, 20.0 * ps, in_slew_ps * ps));
  c.add_inverter(test_devices(), wn_um * um, 2.0 * wn_um * um, in, out, vdd);
  c.add_capacitor(out, c.ground(), load_ff * fF);

  TransientOptions opt;
  opt.t_stop = 3.0 * ns;
  opt.dt = 0.5 * ps;
  const TransientResult res = run_transient(c, opt, {in, out});
  const EdgeKind out_edge = in_edge == EdgeKind::Rising ? EdgeKind::Falling : EdgeKind::Rising;
  InverterRun r;
  r.delay = delay_50(res.time, res.trace(in), in_edge, res.trace(out), out_edge, kVdd);
  r.out_slew = measure_slew(res.time, res.trace(out), out_edge, kVdd);
  r.vdd_charge = res.sources[0].charge;
  return r;
}

TEST(Inverter, DcLevelsCorrectAfterSettle) {
  Circuit c;
  const NodeId vdd = c.add_node();
  const NodeId in = c.add_node();
  const NodeId out = c.add_node();
  c.add_vsource(vdd, Waveform::dc(kVdd));
  c.add_vsource(in, Waveform::dc(0.0));
  c.add_inverter(test_devices(), 1.0 * um, 2.0 * um, in, out, vdd);
  c.add_capacitor(out, c.ground(), 5.0 * fF);
  TransientOptions opt;
  opt.t_stop = 0.1 * ns;
  opt.dt = 1.0 * ps;
  const TransientResult res = run_transient(c, opt, {out});
  // Input low -> output pulled to vdd (minus negligible leakage droop).
  EXPECT_NEAR(res.trace(out).front(), kVdd, 0.02);
}

TEST(Inverter, DelayIncreasesWithLoad) {
  const double d1 = run_inverter(2.0, 5.0, 50.0, EdgeKind::Rising).delay;
  const double d2 = run_inverter(2.0, 20.0, 50.0, EdgeKind::Rising).delay;
  const double d3 = run_inverter(2.0, 80.0, 50.0, EdgeKind::Rising).delay;
  EXPECT_GT(d2, d1);
  EXPECT_GT(d3, d2);
  // Load-dependent part should be roughly linear in c_l: the increments
  // scale by roughly 4x when the load increment scales by 4x (the real
  // device bends this somewhat — that residual is exactly what the
  // paper's slew-dependent drive-resistance term absorbs).
  const double inc1 = d2 - d1;
  const double inc2 = d3 - d2;
  EXPECT_GT(inc2 / inc1, 1.5);
  EXPECT_LT(inc2 / inc1, 6.5);
}

TEST(Inverter, DelayDecreasesWithSize) {
  const double small = run_inverter(1.0, 40.0, 50.0, EdgeKind::Rising).delay;
  const double big = run_inverter(4.0, 40.0, 50.0, EdgeKind::Rising).delay;
  EXPECT_LT(big, small);
}

TEST(Inverter, OutputSlewIncreasesWithLoad) {
  const double s1 = run_inverter(2.0, 5.0, 50.0, EdgeKind::Rising).out_slew;
  const double s2 = run_inverter(2.0, 40.0, 50.0, EdgeKind::Rising).out_slew;
  EXPECT_GT(s2, s1);
}

TEST(Inverter, DelayIncreasesWithInputSlew) {
  const double fast = run_inverter(2.0, 20.0, 20.0, EdgeKind::Rising).delay;
  const double slow = run_inverter(2.0, 20.0, 300.0, EdgeKind::Rising).delay;
  EXPECT_GT(slow, fast);
}

TEST(Inverter, RisingOutputDrawsSupplyCharge) {
  // Input falls -> output rises -> PMOS charges the load: the supply must
  // deliver roughly (C_load + C_drain) * Vdd.
  const double load = 40.0;
  const InverterRun r = run_inverter(2.0, load, 50.0, EdgeKind::Falling);
  const double c_drain =
      (2.0 * um) * test_nmos().c_drain + (4.0 * um) * test_pmos().c_drain;
  const double expected = (load * fF + c_drain) * kVdd;
  EXPECT_NEAR(r.vdd_charge, expected, 0.25 * expected);
}

// Property: single-RC step response crossing matches the closed form
// across a grid of (R, C) and both integrators.
class RcClosedForm
    : public ::testing::TestWithParam<std::tuple<double, double, Integrator>> {};

TEST_P(RcClosedForm, FiftyPercentDelayIsRcLn2) {
  const auto [r_kohm, c_ff, integ] = GetParam();
  const double R = r_kohm * kohm;
  const double C = c_ff * fF;
  Circuit c;
  const NodeId in = c.add_node();
  const NodeId out = c.add_node();
  c.add_vsource(in, Waveform::ramp(0.0, 1.0, 0.0, 0.5 * ps));
  c.add_resistor(in, out, R);
  c.add_capacitor(out, c.ground(), C);
  const double tau = R * C;
  TransientOptions opt;
  opt.integrator = integ;
  opt.dt = std::max(0.05 * ps, tau / 400.0);
  opt.t_stop = 6.0 * tau + 2.0 * ps;
  const TransientResult res = run_transient(c, opt, {out});
  const double t50 = crossing_time(res.time, res.trace(out), 0.5, EdgeKind::Rising);
  EXPECT_NEAR(t50, tau * std::log(2.0) + 0.25 * ps, 0.02 * tau + 0.2 * ps);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RcClosedForm,
    ::testing::Combine(::testing::Values(0.1, 1.0, 10.0),     // kohm
                       ::testing::Values(10.0, 100.0, 1000.0), // fF
                       ::testing::Values(Integrator::Trapezoidal,
                                         Integrator::BackwardEuler)));

// Pass-gate-flavored configuration: an NMOS whose source is NOT a rail,
// exercising the reverse-conduction branch inside a real solve.
TEST(Transient, NmosPassGateTransfersCharge) {
  const MosfetParams n = test_nmos();
  Circuit c;
  const NodeId gate = c.add_node();
  const NodeId src = c.add_node();
  const NodeId out = c.add_node();
  c.add_vsource(gate, Waveform::dc(1.0));
  c.add_vsource(src, Waveform::ramp(0.0, 1.0, 10 * ps, 50 * ps));
  c.add_mosfet(MosType::Nmos, n, 2 * um, gate, out, src);
  c.add_capacitor(out, c.ground(), 20 * fF);
  TransientOptions opt;
  opt.t_stop = 3 * ns;
  opt.dt = 1 * ps;
  const TransientResult res = run_transient(c, opt, {out});
  // The pass gate charges the output toward vdd - vth (body-effect-free
  // alpha-power device: conduction dies as vgs approaches vth).
  const double final_v = res.trace(out).back();
  EXPECT_GT(final_v, 0.45);
  EXPECT_LT(final_v, 0.85);
  // Monotone rise, no spurious dips below -1 mV.
  for (double v : res.trace(out)) EXPECT_GT(v, -1e-3);
}

// --------------------------------------------------------------- measure

TEST(Measure, CrossingAndSlewOfIdealRamp) {
  std::vector<double> t, v;
  for (int i = 0; i <= 100; ++i) {
    t.push_back(i * 1.0 * ps);
    v.push_back(std::min(1.0, i / 50.0));  // 0 -> 1 over 50 ps
  }
  EXPECT_NEAR(crossing_time(t, v, 0.5, EdgeKind::Rising), 25.0 * ps, 0.01 * ps);
  // 20-80 % of a linear ramp spans 0.6 of it; scaled back by 1/0.6 the
  // measured slew equals the full ramp time.
  EXPECT_NEAR(measure_slew(t, v, EdgeKind::Rising, 1.0), 50.0 * ps, 0.5 * ps);
  EXPECT_THROW(crossing_time(t, v, 2.0, EdgeKind::Rising), Error);
}

TEST(Measure, FallingEdge) {
  std::vector<double> t, v;
  for (int i = 0; i <= 100; ++i) {
    t.push_back(i * 1.0 * ps);
    v.push_back(std::max(0.0, 1.0 - i / 40.0));
  }
  EXPECT_NEAR(crossing_time(t, v, 0.5, EdgeKind::Falling), 20.0 * ps, 0.01 * ps);
  EXPECT_NEAR(measure_slew(t, v, EdgeKind::Falling, 1.0), 40.0 * ps, 0.5 * ps);
}

// ------------------------------------------------ batched engine identity

// Byte-level equality: the contract is bit-identity, not closeness, so
// compare the raw representations (EXPECT_EQ would let -0.0 == +0.0 slip).
bool bits_equal(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

void expect_bit_identical(const TransientResult& a, const TransientResult& b) {
  ASSERT_EQ(a.time.size(), b.time.size());
  for (size_t i = 0; i < a.time.size(); ++i)
    ASSERT_TRUE(bits_equal(a.time[i], b.time[i])) << "time[" << i << "]";
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (size_t t = 0; t < a.traces.size(); ++t) {
    ASSERT_EQ(a.traces[t].node, b.traces[t].node);
    ASSERT_EQ(a.traces[t].values.size(), b.traces[t].values.size());
    for (size_t i = 0; i < a.traces[t].values.size(); ++i)
      ASSERT_TRUE(bits_equal(a.traces[t].values[i], b.traces[t].values[i]))
          << "trace " << t << " sample " << i;
  }
  ASSERT_EQ(a.sources.size(), b.sources.size());
  for (size_t s = 0; s < a.sources.size(); ++s) {
    ASSERT_TRUE(bits_equal(a.sources[s].charge, b.sources[s].charge)) << s;
    ASSERT_TRUE(bits_equal(a.sources[s].energy, b.sources[s].energy)) << s;
  }
}

// 12-segment RC ladder (banded path) driven by a ramp.
std::pair<Circuit, NodeId> build_ladder() {
  Circuit c;
  const NodeId in = c.add_node();
  c.add_vsource(in, Waveform::ramp(0.0, 1.0, 0.0, 50.0 * ps));
  NodeId prev = in;
  for (int i = 0; i < 12; ++i) {
    const NodeId next = c.add_node();
    c.add_resistor(prev, next, 250.0);
    c.add_capacitor(next, c.ground(), 20.0 * fF);
    prev = next;
  }
  return {std::move(c), prev};
}

// Inverter built from explicit add_mosfet calls so width perturbations
// change only the device drive (LaneSpec semantics), not the parasitics
// that add_inverter derives from the width.
struct ManualInverter {
  Circuit c;
  NodeId in = 0, out = 0;
};

ManualInverter manual_inverter(double wn_um_val, double wp_um_val, double load_ff,
                               double slew_ps) {
  ManualInverter m;
  const NodeId vdd = m.c.add_node("vdd");
  m.in = m.c.add_node("in");
  m.out = m.c.add_node("out");
  m.c.add_vsource(vdd, Waveform::dc(kVdd));
  m.c.add_vsource(m.in, Waveform::ramp(0.0, kVdd, 20.0 * ps, slew_ps * ps));
  m.c.add_mosfet(MosType::Nmos, test_nmos(), wn_um_val * um, m.in, m.out, m.c.ground());
  m.c.add_mosfet(MosType::Pmos, test_pmos(), wp_um_val * um, m.in, m.out, vdd);
  m.c.add_capacitor(m.out, m.c.ground(), load_ff * fF);
  return m;
}

TransientOptions batch_test_options() {
  TransientOptions opt;
  opt.t_stop = 0.5 * ns;
  opt.dt = 1.0 * ps;
  return opt;
}

TEST(TransientBatch, SingleLaneMatchesReferenceBitExact) {
  // RC ladder, trapezoidal + backward Euler, banded path.
  auto [ladder, tail] = build_ladder();
  for (Integrator integ : {Integrator::Trapezoidal, Integrator::BackwardEuler}) {
    TransientOptions opt = batch_test_options();
    opt.integrator = integ;
    expect_bit_identical(run_transient(ladder, opt, {tail}),
                         run_transient_reference(ladder, opt, {tail}));
  }
  // Inverter, banded and forced-dense paths.
  ManualInverter inv = manual_inverter(1.0, 2.0, 10.0, 30.0);
  for (size_t threshold : {size_t{48}, size_t{0}}) {
    TransientOptions opt = batch_test_options();
    opt.band_threshold = threshold;
    expect_bit_identical(run_transient(inv.c, opt, {inv.in, inv.out}),
                         run_transient_reference(inv.c, opt, {inv.in, inv.out}));
  }
}

TEST(TransientBatch, PerturbedLanesMatchSoloScalarRunsBitExact) {
  const TransientOptions opt = batch_test_options();
  ManualInverter base = manual_inverter(1.0, 2.0, 10.0, 30.0);
  const CompiledCircuit plan = CompiledCircuit::compile(base.c, opt.band_threshold);
  const Waveform slow_in = Waveform::ramp(0.0, kVdd, 20.0 * ps, 60.0 * ps);

  std::vector<LaneSpec> lanes(4);
  lanes[1].cap_farads.push_back({0, 15.0 * fF});
  lanes[2].mosfet_width.push_back({0, 1.25 * um});
  lanes[3].vsource_wave.push_back({1, slow_in});

  // Scalar references: the same perturbations baked into fresh netlists.
  std::vector<TransientResult> ref;
  ref.push_back(run_transient_reference(base.c, opt, {base.in, base.out}));
  ManualInverter heavy = manual_inverter(1.0, 2.0, 15.0, 30.0);
  ref.push_back(run_transient_reference(heavy.c, opt, {heavy.in, heavy.out}));
  ManualInverter wide = manual_inverter(1.25, 2.0, 10.0, 30.0);
  ref.push_back(run_transient_reference(wide.c, opt, {wide.in, wide.out}));
  ManualInverter slow = manual_inverter(1.0, 2.0, 10.0, 60.0);
  ref.push_back(run_transient_reference(slow.c, opt, {slow.in, slow.out}));

  // Lane results must not depend on the cohort width either.
  for (size_t wave_width : {size_t{1}, size_t{2}, size_t{8}}) {
    BatchOptions bopt;
    bopt.wave_width = wave_width;
    TransientBatch batch =
        run_transient_batch(plan, opt, {base.in, base.out}, lanes, bopt);
    EXPECT_FALSE(batch.truncated());
    ASSERT_EQ(batch.lanes.size(), 4u);
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(batch.lanes[i].ok()) << "lane " << i;
      expect_bit_identical(batch.lanes[i].value(), ref[i]);
    }
  }
}

TEST(TransientBatch, SteadyStateReplayIsBitExactAndActuallySkipsSolves) {
  // Long flat tail after a 30 ps edge: the converged state settles into
  // a short bit-exact cycle, which the engine replays instead of
  // re-solving (docs/kernels.md). The replayed result must match full
  // stepping bit-for-bit — traces AND accumulated source charge/energy.
  TransientOptions opt = batch_test_options();
  opt.t_stop = 2.0 * ns;
  opt.t_settle = 0.5 * ns;
  opt.settle_steps = 120;
  ManualInverter inv = manual_inverter(1.0, 2.0, 10.0, 30.0);
  const CompiledCircuit plan = CompiledCircuit::compile(inv.c, opt.band_threshold);
  std::vector<LaneSpec> lanes(2);
  lanes[1].cap_farads.push_back({0, 15.0 * fF});

  obs::registry().reset();
  obs::set_enabled(true);
  BatchOptions full;
  full.steady_skip = false;
  TransientBatch stepped = run_transient_batch(plan, opt, {inv.in, inv.out}, lanes, full);
  const int64_t solves_full = obs::registry().counter("spice.lu.solves").value();

  obs::registry().reset();
  TransientBatch replayed = run_transient_batch(plan, opt, {inv.in, inv.out}, lanes);
  const int64_t solves_skip = obs::registry().counter("spice.lu.solves").value();
  const int64_t steps_skip = obs::registry().counter("spice.timestep.count").value();
  obs::set_enabled(false);
  obs::registry().reset();

  for (size_t i = 0; i < lanes.size(); ++i) {
    ASSERT_TRUE(stepped.lanes[i].ok());
    ASSERT_TRUE(replayed.lanes[i].ok());
    expect_bit_identical(replayed.lanes[i].value(), stepped.lanes[i].value());
  }
  // The skip must be real work avoidance, not a no-op: most of the tail
  // is replayed, while every advanced step still counts as a timestep.
  EXPECT_LT(solves_skip, solves_full / 2) << "steady-state replay never engaged";
  EXPECT_GT(steps_skip, solves_skip);
}

TEST(TransientBatch, BadLaneIsIsolatedFromSiblings) {
  const TransientOptions opt = batch_test_options();
  ManualInverter base = manual_inverter(1.0, 2.0, 10.0, 30.0);
  const CompiledCircuit plan = CompiledCircuit::compile(base.c, opt.band_threshold);

  std::vector<LaneSpec> lanes(4);
  lanes[1].cap_farads.push_back({0, std::numeric_limits<double>::quiet_NaN()});
  lanes[2].mosfet_width.push_back({0, std::numeric_limits<double>::infinity()});
  TransientBatch batch = run_transient_batch(plan, opt, {base.out}, lanes);

  ASSERT_FALSE(batch.lanes[1].ok());
  EXPECT_EQ(batch.lanes[1].error().code(), ErrorCode::bad_input);
  ASSERT_FALSE(batch.lanes[2].ok());
  EXPECT_EQ(batch.lanes[2].error().code(), ErrorCode::bad_input);
  // Healthy siblings are untouched: bit-identical to a solo scalar run,
  // with every sample finite.
  const TransientResult ref = run_transient_reference(base.c, opt, {base.out});
  for (size_t i : {size_t{0}, size_t{3}}) {
    ASSERT_TRUE(batch.lanes[i].ok()) << "lane " << i;
    expect_bit_identical(batch.lanes[i].value(), ref);
    for (double v : batch.lanes[i].value().trace(base.out)) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(TransientResultTrace, MissingProbeIsTypedAndNamesTheNode) {
  auto [ladder, tail] = build_ladder();
  const TransientResult res = run_transient(ladder, batch_test_options(), {tail});
  EXPECT_EQ(res.trace(tail).size(), res.time.size());
  try {
    res.trace(tail - 1);
    FAIL() << "expected bad_input";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::bad_input);
    EXPECT_NE(std::string(e.what()).find("node " + std::to_string(tail - 1)),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("was not probed"), std::string::npos);
  }
}

// Fault-driven paths: the batched engine must reproduce the scalar
// solver's draw sequence (one Newton-diverge draw per step attempt, one
// LU draw per factorization), so injected retries land on the same steps
// and the outputs stay bit-identical.
class BatchFaultFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::clear();
    deadline::reset();
  }
  void TearDown() override {
    fault::clear();
    deadline::reset();
  }
};

TEST_F(BatchFaultFixture, HalvingRetriesStayBitIdenticalToReference) {
  auto [ladder, tail] = build_ladder();
  TransientOptions opt = batch_test_options();
  opt.t_stop = 2.0 * ns;

  fault::configure("newton.diverge:0.02:3");
  const TransientResult faulty_batch = run_transient(ladder, opt, {tail});
  EXPECT_GT(fault::fired_count(fault::kNewtonDiverge), 0);

  fault::configure("newton.diverge:0.02:3");  // identical replay
  const TransientResult faulty_ref = run_transient_reference(ladder, opt, {tail});
  expect_bit_identical(faulty_batch, faulty_ref);

  fault::configure("lu.singular:0.05:7");
  const TransientResult singular_batch = run_transient(ladder, opt, {tail});
  EXPECT_GT(fault::fired_count(fault::kLuSingular), 0);
  fault::configure("lu.singular:0.05:7");
  const TransientResult singular_ref = run_transient_reference(ladder, opt, {tail});
  expect_bit_identical(singular_batch, singular_ref);
}

TEST_F(BatchFaultFixture, PerLaneDeadlineCutoffIsAPureFunctionOfIndex) {
  constexpr size_t kLanes = 6;
  // Find a seed whose deadline-expire stream first fires strictly inside
  // the batch, replaying the engine's per-lane admission poll.
  auto predicted = [] {
    for (size_t i = 0; i < kLanes; ++i) {
      fault::ScopedStream stream(i);
      if (fault::should_fire(fault::kDeadlineExpire)) return i;
    }
    return kLanes;
  };
  std::string spec;
  size_t cutoff = 0;
  for (int seed = 1; seed < 64; ++seed) {
    spec = "deadline-expire:0.3:" + std::to_string(seed);
    fault::configure(spec);
    cutoff = predicted();
    if (cutoff > 0 && cutoff < kLanes) break;
  }
  ASSERT_GT(cutoff, 0u);
  ASSERT_LT(cutoff, kLanes);

  const TransientOptions opt = batch_test_options();
  ManualInverter base = manual_inverter(1.0, 2.0, 10.0, 30.0);
  const CompiledCircuit plan = CompiledCircuit::compile(base.c, opt.band_threshold);
  std::vector<LaneSpec> lanes(kLanes);
  for (size_t i = 0; i < kLanes; ++i)
    lanes[i].cap_farads.push_back({0, (10.0 + static_cast<double>(i)) * fF});

  std::vector<TransientResult> ref;
  for (size_t i = 0; i < kLanes; ++i) {
    ManualInverter solo = manual_inverter(1.0, 2.0, 10.0 + static_cast<double>(i), 30.0);
    ref.push_back(run_transient_reference(solo.c, opt, {solo.out}));
  }

  // The same prefix must complete at any cohort width.
  for (size_t wave_width : {size_t{1}, size_t{2}, size_t{8}}) {
    fault::configure(spec);
    BatchOptions bopt;
    bopt.wave_width = wave_width;
    bopt.poll_deadline = true;
    TransientBatch batch = run_transient_batch(plan, opt, {base.out}, lanes, bopt);
    EXPECT_TRUE(batch.truncated()) << wave_width;
    EXPECT_EQ(batch.stop, deadline::StopReason::deadline_exceeded) << wave_width;
    EXPECT_EQ(batch.cutoff, cutoff) << wave_width;
    for (size_t i = 0; i < cutoff; ++i) {
      ASSERT_TRUE(batch.lanes[i].ok()) << wave_width << " lane " << i;
      expect_bit_identical(batch.lanes[i].value(), ref[i]);
    }
    for (size_t i = cutoff; i < kLanes; ++i) {
      ASSERT_FALSE(batch.lanes[i].ok()) << wave_width << " lane " << i;
      EXPECT_EQ(batch.lanes[i].error().code(), ErrorCode::deadline_exceeded);
    }
  }
}

}  // namespace
}  // namespace pim
