// Tests for pim::spice — device model consistency, transient accuracy on
// circuits with closed-form solutions, charge/energy accounting, banded
// vs. dense solver agreement, and inverter behavior the paper's models
// rely on (load-dependent delay/slew, size-dependent drive).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "spice/circuit.hpp"
#include "spice/measure.hpp"
#include "spice/mosfet.hpp"
#include "spice/transient.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pim {
namespace {

using namespace pim::unit;

MosfetParams test_nmos() {
  MosfetParams p;
  p.vth = 0.30;
  p.k_sat = 1000.0;
  p.alpha = 1.3;
  p.k_vdsat = 0.6;
  p.lambda = 0.08;
  p.n_sub = 1.45;
  p.c_gate = 1.0e-9;   // 1 fF/um
  p.c_drain = 0.6e-9;
  return p;
}

MosfetParams test_pmos() {
  MosfetParams p = test_nmos();
  p.k_sat = 500.0;  // weaker holes
  return p;
}

InverterDevices test_devices() { return {test_nmos(), test_pmos()}; }

constexpr double kVdd = 1.0;

// ---------------------------------------------------------------- mosfet

TEST(Mosfet, SaturationCurrentScalesWithWidth) {
  const MosfetParams p = test_nmos();
  const double i1 = eval_alpha_power(p, 1.0 * um, kVdd, kVdd).ids;
  const double i2 = eval_alpha_power(p, 2.0 * um, kVdd, kVdd).ids;
  EXPECT_NEAR(i2 / i1, 2.0, 1e-9);
  EXPECT_GT(i1, 0.0);
}

TEST(Mosfet, CurrentMonotonicInVgs) {
  const MosfetParams p = test_nmos();
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= 1.2; vgs += 0.05) {
    const double i = eval_alpha_power(p, 1.0 * um, vgs, 0.8).ids;
    EXPECT_GT(i, prev);
    prev = i;
  }
}

TEST(Mosfet, ZeroVdsGivesZeroCurrent) {
  const MosfetParams p = test_nmos();
  EXPECT_NEAR(eval_alpha_power(p, 1.0 * um, kVdd, 0.0).ids, 0.0, 1e-15);
}

TEST(Mosfet, ReverseConductionAntisymmetric) {
  const MosfetParams p = test_nmos();
  // With vgs measured from the *source-side* terminal, forward(vg, vd=x)
  // and reverse conduction obey I(vgs, -x) = -I(vgs + x evaluated at
  // swapped terminals); spot-check the sign and continuity at vds = 0.
  const double i_neg = eval_alpha_power(p, 1.0 * um, 0.8, -0.3).ids;
  EXPECT_LT(i_neg, 0.0);
  const double i_eps_pos = eval_alpha_power(p, 1.0 * um, 0.8, 1e-6).ids;
  const double i_eps_neg = eval_alpha_power(p, 1.0 * um, 0.8, -1e-6).ids;
  EXPECT_NEAR(i_eps_pos, -i_eps_neg, 1e-8);
}

TEST(Mosfet, SubthresholdSlopeIsExponential) {
  const MosfetParams p = test_nmos();
  // One decade of current per ~ln(10)*n*vT/alpha volts of vgs below vth.
  const double i1 = eval_alpha_power(p, 1.0 * um, 0.10, kVdd).ids;
  const double i2 = eval_alpha_power(p, 1.0 * um, 0.20, kVdd).ids;
  const double swing = 0.1 / std::log10(i2 / i1);  // V per decade
  const double expected = std::log(10.0) * p.n_sub * constant::v_thermal_300k / p.alpha;
  EXPECT_NEAR(swing, expected, 0.2 * expected);
}

TEST(Mosfet, OffCurrentLinearInWidth) {
  const MosfetParams p = test_nmos();
  const double i1 = off_current(p, 1.0 * um, kVdd);
  const double i3 = off_current(p, 3.0 * um, kVdd);
  EXPECT_GT(i1, 0.0);
  EXPECT_NEAR(i3 / i1, 3.0, 1e-9);
}

// Property: analytic derivatives match central finite differences over a
// bias grid spanning subthreshold, triode, saturation, and reverse biases.
class MosfetDerivativeTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MosfetDerivativeTest, AnalyticMatchesFiniteDifference) {
  const auto [vgs, vds] = GetParam();
  const MosfetParams p = test_nmos();
  const double w = 1.0 * um;
  const double h = 1e-6;
  const MosEval e = eval_alpha_power(p, w, vgs, vds);
  const double gm_fd = (eval_alpha_power(p, w, vgs + h, vds).ids -
                        eval_alpha_power(p, w, vgs - h, vds).ids) /
                       (2 * h);
  const double gds_fd = (eval_alpha_power(p, w, vgs, vds + h).ids -
                         eval_alpha_power(p, w, vgs, vds - h).ids) /
                        (2 * h);
  const double scale = std::max({std::fabs(e.g_m), std::fabs(e.g_ds), 1e-9});
  EXPECT_NEAR(e.g_m, gm_fd, 2e-3 * scale) << "vgs=" << vgs << " vds=" << vds;
  EXPECT_NEAR(e.g_ds, gds_fd, 2e-3 * scale) << "vgs=" << vgs << " vds=" << vds;
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, MosfetDerivativeTest,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.4, 0.7, 1.0, 1.2),
                       ::testing::Values(-0.8, -0.2, 0.05, 0.3, 0.7, 1.2)));

// ---------------------------------------------------------------- circuit

TEST(Circuit, ValidatesElements) {
  Circuit c;
  const NodeId a = c.add_node("a");
  EXPECT_THROW(c.add_resistor(a, a, 100.0), Error);
  EXPECT_THROW(c.add_resistor(a, 99, 100.0), Error);
  EXPECT_THROW(c.add_resistor(a, c.ground(), -5.0), Error);
  EXPECT_THROW(c.add_capacitor(a, c.ground(), -1e-15), Error);
  EXPECT_THROW(c.add_vsource(c.ground(), Waveform::dc(1.0)), Error);
  c.add_vsource(a, Waveform::dc(1.0));
  EXPECT_THROW(c.add_vsource(a, Waveform::dc(2.0)), Error);
  EXPECT_TRUE(c.is_source_node(a));
  EXPECT_FALSE(c.is_source_node(c.ground()));
}

TEST(Circuit, ZeroCapacitorIsDropped) {
  Circuit c;
  const NodeId a = c.add_node();
  c.add_capacitor(a, c.ground(), 0.0);
  EXPECT_TRUE(c.capacitors().empty());
}

TEST(Waveform, RampShape) {
  const Waveform w = Waveform::ramp(0.0, 1.0, 1.0 * ns, 100.0 * ps);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(1.0 * ns), 0.0);
  EXPECT_NEAR(w.value(1.05 * ns), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(w.value(2.0 * ns), 1.0);
}

TEST(Waveform, PwlValidation) {
  EXPECT_THROW(Waveform::pwl({1.0, 1.0}, {0.0, 1.0}), Error);
  EXPECT_THROW(Waveform::pwl({}, {}), Error);
}

// -------------------------------------------------------------- transient

// RC charge: v(t) = Vdd (1 - exp(-t/RC)), t50 = RC ln 2, and the source
// delivers exactly C*Vdd of charge.
TEST(Transient, SingleRcMatchesClosedForm) {
  Circuit c;
  const NodeId in = c.add_node("in");
  const NodeId out = c.add_node("out");
  const double R = 1.0 * kohm;
  const double C = 1.0 * pF;
  c.add_vsource(in, Waveform::ramp(0.0, 1.0, 0.0, 1.0 * ps));
  c.add_resistor(in, out, R);
  c.add_capacitor(out, c.ground(), C);

  TransientOptions opt;
  opt.t_stop = 6.0 * ns;
  opt.dt = 1.0 * ps;
  const TransientResult res = run_transient(c, opt, {in, out});

  const double tau = R * C;
  // Sample a few points along the curve (offset by the ramp midpoint).
  for (double frac : {0.5, 1.0, 2.0, 3.0}) {
    const double t = frac * tau;
    // Find nearest sample.
    size_t k = static_cast<size_t>(t / opt.dt);
    const double expected = 1.0 - std::exp(-(res.time[k] - 0.5 * ps) / tau);
    EXPECT_NEAR(res.trace(out)[k], expected, 0.01);
  }
  const double t50 = crossing_time(res.time, res.trace(out), 0.5, EdgeKind::Rising);
  EXPECT_NEAR(t50, tau * std::log(2.0), 0.02 * tau);
  // Charge conservation.
  EXPECT_NEAR(res.sources[0].charge, C * 1.0, 0.02 * C);
  // Energy: source delivers C*V^2, half stored, half burned in R.
  EXPECT_NEAR(res.sources[0].energy, C * 1.0 * 1.0, 0.05 * C);
}

TEST(Transient, BackwardEulerAlsoAccurate) {
  Circuit c;
  const NodeId in = c.add_node();
  const NodeId out = c.add_node();
  c.add_vsource(in, Waveform::ramp(0.0, 1.0, 0.0, 1.0 * ps));
  c.add_resistor(in, out, 1.0 * kohm);
  c.add_capacitor(out, c.ground(), 1.0 * pF);
  TransientOptions opt;
  opt.t_stop = 4.0 * ns;
  opt.dt = 0.5 * ps;
  opt.integrator = Integrator::BackwardEuler;
  const TransientResult res = run_transient(c, opt, {out});
  const double t50 = crossing_time(res.time, res.trace(out), 0.5, EdgeKind::Rising);
  EXPECT_NEAR(t50, 1.0 * ns * std::log(2.0), 0.03 * ns);
}

// A uniform RC ladder's 50 % step delay should be near 0.69 * Elmore for
// the lumped single segment and grow ~quadratically with segment count.
TEST(Transient, RcLadderDelayGrowsQuadratically) {
  auto ladder_delay = [](int n) {
    Circuit c;
    const NodeId in = c.add_node();
    c.add_vsource(in, Waveform::ramp(0.0, 1.0, 0.0, 1.0 * ps));
    NodeId prev = in;
    for (int i = 0; i < n; ++i) {
      const NodeId next = c.add_node();
      c.add_resistor(prev, next, 100.0);
      c.add_capacitor(next, c.ground(), 100.0 * fF);
      prev = next;
    }
    TransientOptions opt;
    opt.t_stop = 10.0 * ns;
    opt.dt = 1.0 * ps;
    const TransientResult res = run_transient(c, opt, {prev});
    return crossing_time(res.time, res.trace(prev), 0.5, EdgeKind::Rising);
  };
  const double d5 = ladder_delay(5);
  const double d10 = ladder_delay(10);
  // Elmore of the N-ladder is R*C*N(N+1)/2: ratio (10*11)/(5*6) = 3.67.
  EXPECT_NEAR(d10 / d5, 110.0 / 30.0, 0.5);
}

TEST(Transient, BandedAndDensePathsAgree) {
  auto build = [] {
    Circuit c;
    const NodeId in = c.add_node();
    c.add_vsource(in, Waveform::ramp(0.0, 1.0, 0.0, 50.0 * ps));
    NodeId prev = in;
    for (int i = 0; i < 12; ++i) {
      const NodeId next = c.add_node();
      c.add_resistor(prev, next, 250.0);
      c.add_capacitor(next, c.ground(), 20.0 * fF);
      prev = next;
    }
    return std::pair{std::move(c), prev};
  };
  auto [c1, out1] = build();
  TransientOptions banded;
  banded.t_stop = 1.0 * ns;
  banded.dt = 1.0 * ps;
  const TransientResult r_band = run_transient(c1, banded, {out1});

  auto [c2, out2] = build();
  TransientOptions dense = banded;
  dense.band_threshold = 0;  // force dense
  const TransientResult r_dense = run_transient(c2, dense, {out2});

  ASSERT_EQ(r_band.time.size(), r_dense.time.size());
  for (size_t i = 0; i < r_band.time.size(); ++i)
    EXPECT_NEAR(r_band.trace(out1)[i], r_dense.trace(out2)[i], 1e-7);
}

// ------------------------------------------------------------- inverter

struct InverterRun {
  double delay;
  double out_slew;
  double vdd_charge;
};

InverterRun run_inverter(double wn_um, double load_ff, double in_slew_ps,
                         EdgeKind in_edge) {
  Circuit c;
  const NodeId vdd = c.add_node("vdd");
  const NodeId in = c.add_node("in");
  const NodeId out = c.add_node("out");
  c.add_vsource(vdd, Waveform::dc(kVdd));
  const double v0 = in_edge == EdgeKind::Rising ? 0.0 : kVdd;
  const double v1 = kVdd - v0;
  c.add_vsource(in, Waveform::ramp(v0, v1, 20.0 * ps, in_slew_ps * ps));
  c.add_inverter(test_devices(), wn_um * um, 2.0 * wn_um * um, in, out, vdd);
  c.add_capacitor(out, c.ground(), load_ff * fF);

  TransientOptions opt;
  opt.t_stop = 3.0 * ns;
  opt.dt = 0.5 * ps;
  const TransientResult res = run_transient(c, opt, {in, out});
  const EdgeKind out_edge = in_edge == EdgeKind::Rising ? EdgeKind::Falling : EdgeKind::Rising;
  InverterRun r;
  r.delay = delay_50(res.time, res.trace(in), in_edge, res.trace(out), out_edge, kVdd);
  r.out_slew = measure_slew(res.time, res.trace(out), out_edge, kVdd);
  r.vdd_charge = res.sources[0].charge;
  return r;
}

TEST(Inverter, DcLevelsCorrectAfterSettle) {
  Circuit c;
  const NodeId vdd = c.add_node();
  const NodeId in = c.add_node();
  const NodeId out = c.add_node();
  c.add_vsource(vdd, Waveform::dc(kVdd));
  c.add_vsource(in, Waveform::dc(0.0));
  c.add_inverter(test_devices(), 1.0 * um, 2.0 * um, in, out, vdd);
  c.add_capacitor(out, c.ground(), 5.0 * fF);
  TransientOptions opt;
  opt.t_stop = 0.1 * ns;
  opt.dt = 1.0 * ps;
  const TransientResult res = run_transient(c, opt, {out});
  // Input low -> output pulled to vdd (minus negligible leakage droop).
  EXPECT_NEAR(res.trace(out).front(), kVdd, 0.02);
}

TEST(Inverter, DelayIncreasesWithLoad) {
  const double d1 = run_inverter(2.0, 5.0, 50.0, EdgeKind::Rising).delay;
  const double d2 = run_inverter(2.0, 20.0, 50.0, EdgeKind::Rising).delay;
  const double d3 = run_inverter(2.0, 80.0, 50.0, EdgeKind::Rising).delay;
  EXPECT_GT(d2, d1);
  EXPECT_GT(d3, d2);
  // Load-dependent part should be roughly linear in c_l: the increments
  // scale by roughly 4x when the load increment scales by 4x (the real
  // device bends this somewhat — that residual is exactly what the
  // paper's slew-dependent drive-resistance term absorbs).
  const double inc1 = d2 - d1;
  const double inc2 = d3 - d2;
  EXPECT_GT(inc2 / inc1, 1.5);
  EXPECT_LT(inc2 / inc1, 6.5);
}

TEST(Inverter, DelayDecreasesWithSize) {
  const double small = run_inverter(1.0, 40.0, 50.0, EdgeKind::Rising).delay;
  const double big = run_inverter(4.0, 40.0, 50.0, EdgeKind::Rising).delay;
  EXPECT_LT(big, small);
}

TEST(Inverter, OutputSlewIncreasesWithLoad) {
  const double s1 = run_inverter(2.0, 5.0, 50.0, EdgeKind::Rising).out_slew;
  const double s2 = run_inverter(2.0, 40.0, 50.0, EdgeKind::Rising).out_slew;
  EXPECT_GT(s2, s1);
}

TEST(Inverter, DelayIncreasesWithInputSlew) {
  const double fast = run_inverter(2.0, 20.0, 20.0, EdgeKind::Rising).delay;
  const double slow = run_inverter(2.0, 20.0, 300.0, EdgeKind::Rising).delay;
  EXPECT_GT(slow, fast);
}

TEST(Inverter, RisingOutputDrawsSupplyCharge) {
  // Input falls -> output rises -> PMOS charges the load: the supply must
  // deliver roughly (C_load + C_drain) * Vdd.
  const double load = 40.0;
  const InverterRun r = run_inverter(2.0, load, 50.0, EdgeKind::Falling);
  const double c_drain =
      (2.0 * um) * test_nmos().c_drain + (4.0 * um) * test_pmos().c_drain;
  const double expected = (load * fF + c_drain) * kVdd;
  EXPECT_NEAR(r.vdd_charge, expected, 0.25 * expected);
}

// Property: single-RC step response crossing matches the closed form
// across a grid of (R, C) and both integrators.
class RcClosedForm
    : public ::testing::TestWithParam<std::tuple<double, double, Integrator>> {};

TEST_P(RcClosedForm, FiftyPercentDelayIsRcLn2) {
  const auto [r_kohm, c_ff, integ] = GetParam();
  const double R = r_kohm * kohm;
  const double C = c_ff * fF;
  Circuit c;
  const NodeId in = c.add_node();
  const NodeId out = c.add_node();
  c.add_vsource(in, Waveform::ramp(0.0, 1.0, 0.0, 0.5 * ps));
  c.add_resistor(in, out, R);
  c.add_capacitor(out, c.ground(), C);
  const double tau = R * C;
  TransientOptions opt;
  opt.integrator = integ;
  opt.dt = std::max(0.05 * ps, tau / 400.0);
  opt.t_stop = 6.0 * tau + 2.0 * ps;
  const TransientResult res = run_transient(c, opt, {out});
  const double t50 = crossing_time(res.time, res.trace(out), 0.5, EdgeKind::Rising);
  EXPECT_NEAR(t50, tau * std::log(2.0) + 0.25 * ps, 0.02 * tau + 0.2 * ps);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RcClosedForm,
    ::testing::Combine(::testing::Values(0.1, 1.0, 10.0),     // kohm
                       ::testing::Values(10.0, 100.0, 1000.0), // fF
                       ::testing::Values(Integrator::Trapezoidal,
                                         Integrator::BackwardEuler)));

// Pass-gate-flavored configuration: an NMOS whose source is NOT a rail,
// exercising the reverse-conduction branch inside a real solve.
TEST(Transient, NmosPassGateTransfersCharge) {
  const MosfetParams n = test_nmos();
  Circuit c;
  const NodeId gate = c.add_node();
  const NodeId src = c.add_node();
  const NodeId out = c.add_node();
  c.add_vsource(gate, Waveform::dc(1.0));
  c.add_vsource(src, Waveform::ramp(0.0, 1.0, 10 * ps, 50 * ps));
  c.add_mosfet(MosType::Nmos, n, 2 * um, gate, out, src);
  c.add_capacitor(out, c.ground(), 20 * fF);
  TransientOptions opt;
  opt.t_stop = 3 * ns;
  opt.dt = 1 * ps;
  const TransientResult res = run_transient(c, opt, {out});
  // The pass gate charges the output toward vdd - vth (body-effect-free
  // alpha-power device: conduction dies as vgs approaches vth).
  const double final_v = res.trace(out).back();
  EXPECT_GT(final_v, 0.45);
  EXPECT_LT(final_v, 0.85);
  // Monotone rise, no spurious dips below -1 mV.
  for (double v : res.trace(out)) EXPECT_GT(v, -1e-3);
}

// --------------------------------------------------------------- measure

TEST(Measure, CrossingAndSlewOfIdealRamp) {
  std::vector<double> t, v;
  for (int i = 0; i <= 100; ++i) {
    t.push_back(i * 1.0 * ps);
    v.push_back(std::min(1.0, i / 50.0));  // 0 -> 1 over 50 ps
  }
  EXPECT_NEAR(crossing_time(t, v, 0.5, EdgeKind::Rising), 25.0 * ps, 0.01 * ps);
  // 20-80 % of a linear ramp spans 0.6 of it; scaled back by 1/0.6 the
  // measured slew equals the full ramp time.
  EXPECT_NEAR(measure_slew(t, v, EdgeKind::Rising, 1.0), 50.0 * ps, 0.5 * ps);
  EXPECT_THROW(crossing_time(t, v, 2.0, EdgeKind::Rising), Error);
}

TEST(Measure, FallingEdge) {
  std::vector<double> t, v;
  for (int i = 0; i <= 100; ++i) {
    t.push_back(i * 1.0 * ps);
    v.push_back(std::max(0.0, 1.0 - i / 40.0));
  }
  EXPECT_NEAR(crossing_time(t, v, 0.5, EdgeKind::Falling), 20.0 * ps, 0.01 * ps);
  EXPECT_NEAR(measure_slew(t, v, EdgeKind::Falling, 1.0), 40.0 * ps, 0.5 * ps);
}

}  // namespace
}  // namespace pim
