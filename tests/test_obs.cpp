// Tests for the observability subsystem: metrics registry, scoped timers,
// trace buffer bounding, and the JSON/CSV reporters.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace pim::obs {
namespace {

// reset() zeroes values but keeps registrations alive (call sites cache
// handles), so tests locate their own metrics by name rather than
// asserting on registry-wide sizes.
const TimerSnapshot* find_timer(const MetricsSnapshot& snap, const std::string& name) {
  for (const TimerSnapshot& t : snap.timers)
    if (t.name == name) return &t;
  return nullptr;
}

const int64_t* find_counter(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.counters)
    if (n == name) return &v;
  return nullptr;
}

// Every test starts from a zeroed, enabled registry and empty trace buffer;
// collection is switched back off on exit so other suites see the default.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry().reset();
    clear_trace();
    set_enabled(true);
  }
  void TearDown() override {
    set_trace_enabled(false);
    set_enabled(false);
    registry().reset();
    clear_trace();
  }
};

TEST_F(ObsTest, CounterRegistrationAndIncrement) {
  Counter& c = registry().counter("test.counter.hits");
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  // Same name returns the same counter.
  EXPECT_EQ(&registry().counter("test.counter.hits"), &c);
  EXPECT_EQ(registry().counter("test.counter.hits").value(), 42);
}

TEST_F(ObsTest, CounterIgnoredWhenDisabled) {
  Counter& c = registry().counter("test.counter.gated");
  set_enabled(false);
  c.add(100);
  EXPECT_EQ(c.value(), 0);
  set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 1);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  Gauge& g = registry().gauge("test.gauge.level");
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST_F(ObsTest, TimerRecordsDurations) {
  Timer& t = registry().timer("test.timer.span");
  t.record_ns(1000);
  t.record_ns(3000);
  const MetricsSnapshot snap = registry().snapshot();
  const TimerSnapshot* found = find_timer(snap, "test.timer.span");
  ASSERT_NE(found, nullptr);
  const TimerSnapshot& ts = *found;
  EXPECT_EQ(ts.count, 2);
  EXPECT_EQ(ts.total_ns, 4000);
  EXPECT_EQ(ts.min_ns, 1000);
  EXPECT_EQ(ts.max_ns, 3000);
  EXPECT_DOUBLE_EQ(ts.mean_ns(), 2000.0);
  EXPECT_GE(ts.quantile_ns(0.99), ts.quantile_ns(0.5));
  EXPECT_LE(ts.quantile_ns(1.0), ts.max_ns);
}

TEST_F(ObsTest, ScopedTimerMeasuresSomething) {
  Timer& t = registry().timer("test.timer.scoped");
  {
    ScopedTimer st(t);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const MetricsSnapshot snap = registry().snapshot();
  const TimerSnapshot* ts = find_timer(snap, "test.timer.scoped");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->count, 1);
  EXPECT_GE(ts->total_ns, 1'000'000);  // at least the 1 ms sleep
}

TEST_F(ObsTest, ConcurrentIncrementsAreLossless) {
  Counter& c = registry().counter("test.counter.concurrent");
  Timer& t = registry().timer("test.timer.concurrent");
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&] {
      for (int k = 0; k < kIters; ++k) {
        c.add();
        t.record_ns(100 + k % 7);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<int64_t>(kThreads) * kIters);
  const MetricsSnapshot snap = registry().snapshot();
  const TimerSnapshot* ts = find_timer(snap, "test.timer.concurrent");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->count, static_cast<int64_t>(kThreads) * kIters);
}

TEST_F(ObsTest, ConcurrentRegistrationReturnsStableHandles) {
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      Counter& c = registry().counter("test.counter.race");
      c.add();
      seen[static_cast<size_t>(i)] = &c;
    });
  }
  for (auto& w : workers) w.join();
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(seen[size_t(i)], seen[0]);
  EXPECT_EQ(registry().counter("test.counter.race").value(), kThreads);
}

TEST_F(ObsTest, JsonReportRoundTrips) {
  registry().counter("alpha.beta.count").add(7);
  registry().gauge("alpha.beta.level").set(1.5);
  registry().timer("alpha.beta.time").record_ns(2500);
  const std::string json = metrics_to_json(registry().snapshot());

  const JsonValue root = parse_json(json);
  ASSERT_EQ(root.kind, JsonValue::Kind::Object);
  const JsonValue* schema = root.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->text, "pim.metrics.v1");

  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* beta = counters->find("alpha.beta.count");
  ASSERT_NE(beta, nullptr);
  EXPECT_DOUBLE_EQ(beta->number, 7.0);

  const JsonValue* gauges = root.find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->find("alpha.beta.level"), nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("alpha.beta.level")->number, 1.5);

  const JsonValue* timers = root.find("timers");
  ASSERT_NE(timers, nullptr);
  const JsonValue* t = timers->find("alpha.beta.time");
  ASSERT_NE(t, nullptr);
  ASSERT_NE(t->find("count"), nullptr);
  EXPECT_DOUBLE_EQ(t->find("count")->number, 1.0);
  EXPECT_DOUBLE_EQ(t->find("total_ns")->number, 2500.0);
  ASSERT_NE(t->find("p50_ns"), nullptr);
  ASSERT_NE(t->find("p99_ns"), nullptr);
}

TEST_F(ObsTest, JsonEscapesAwkwardNames) {
  registry().counter("weird.\"name\"\\with\nstuff").add(1);
  const std::string json = metrics_to_json(registry().snapshot());
  const JsonValue root = parse_json(json);  // must not throw
  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("weird.\"name\"\\with\nstuff"), nullptr);
  EXPECT_DOUBLE_EQ(counters->find("weird.\"name\"\\with\nstuff")->number, 1.0);
}

TEST_F(ObsTest, CsvReportListsEveryMetric) {
  registry().counter("c.one.count").add(3);
  registry().gauge("g.two.level").set(0.25);
  registry().timer("t.three.time").record_ns(10);
  const std::string csv = metrics_to_csv(registry().snapshot());
  EXPECT_NE(csv.find("kind,name,value,count,total_ns,mean_ns,min_ns,max_ns"),
            std::string::npos);
  EXPECT_NE(csv.find("counter,c.one.count,3"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g.two.level,0.25"), std::string::npos);
  EXPECT_NE(csv.find("timer,t.three.time"), std::string::npos);
}

TEST_F(ObsTest, TraceBufferRecordsNestedSpans) {
  set_trace_enabled(true, 64);
  {
    TraceSpan outer("outer");
    TraceSpan inner("inner");
  }
  const std::vector<TraceEvent> events = trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Spans complete innermost-first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_EQ(trace_dropped(), 0u);
}

TEST_F(ObsTest, TraceBufferIsBounded) {
  set_trace_enabled(true, 8);
  for (int i = 0; i < 20; ++i) TraceSpan span("bounded");
  EXPECT_EQ(trace_events().size(), 8u);
  EXPECT_EQ(trace_dropped(), 12u);
  clear_trace();
  EXPECT_TRUE(trace_events().empty());
  EXPECT_EQ(trace_dropped(), 0u);
}

TEST_F(ObsTest, ChromeTraceJsonParses) {
  set_trace_enabled(true, 64);
  {
    TraceSpan span("chrome.export");
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  const std::string json = trace_to_chrome_json(trace_events());
  const JsonValue root = parse_json(json);
  ASSERT_EQ(root.kind, JsonValue::Kind::Object);
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::Array);
  ASSERT_EQ(events->items.size(), 1u);
  const JsonValue& ev = events->items[0];
  EXPECT_EQ(ev.find("name")->text, "chrome.export");
  EXPECT_EQ(ev.find("ph")->text, "X");
  EXPECT_GT(ev.find("dur")->number, 0.0);
}

TEST_F(ObsTest, ResetZeroesButKeepsRegistrations) {
  // reset() must keep the registered objects alive (call sites cache
  // references in function-local statics) and only zero their values.
  Counter& c = registry().counter("kept.after.reset");
  Timer& t = registry().timer("kept.after.timer");
  c.add(5);
  t.record_ns(1);
  registry().reset();
  EXPECT_EQ(c.value(), 0);
  const MetricsSnapshot snap = registry().snapshot();
  const int64_t* cv = find_counter(snap, "kept.after.reset");
  ASSERT_NE(cv, nullptr);
  EXPECT_EQ(*cv, 0);
  const TimerSnapshot* ts = find_timer(snap, "kept.after.timer");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->count, 0);
  EXPECT_EQ(ts->total_ns, 0);
  (void)t;
  // The handle is still the registered object.
  c.add(2);
  EXPECT_EQ(registry().counter("kept.after.reset").value(), 2);
}

TEST_F(ObsTest, MacroCachesHandleAndCounts) {
  for (int i = 0; i < 5; ++i) PIM_COUNT("macro.cached.count");
  PIM_COUNT_N("macro.cached.count", 10);
  EXPECT_EQ(registry().counter("macro.cached.count").value(), 15);
}

// --- histogram quantile math -------------------------------------------

TEST_F(ObsTest, BucketOfFollowsLog2Boundaries) {
  // Bucket k holds [2^k, 2^(k+1)); 0 and 1 both land in bucket 0.
  EXPECT_EQ(Timer::bucket_of(0), 0);
  EXPECT_EQ(Timer::bucket_of(1), 0);
  EXPECT_EQ(Timer::bucket_of(2), 1);
  EXPECT_EQ(Timer::bucket_of(3), 1);
  EXPECT_EQ(Timer::bucket_of(4), 2);
  EXPECT_EQ(Timer::bucket_of(7), 2);
  EXPECT_EQ(Timer::bucket_of(8), 3);
  EXPECT_EQ(Timer::bucket_of(1023), 9);
  EXPECT_EQ(Timer::bucket_of(1024), 10);
  // Everything past 2^47 saturates into the last bucket.
  EXPECT_EQ(Timer::bucket_of(int64_t{1} << 47), Timer::kBuckets - 1);
  EXPECT_EQ(Timer::bucket_of(INT64_MAX), Timer::kBuckets - 1);
}

TEST_F(ObsTest, QuantileOfEmptyTimerIsZero) {
  registry().timer("quant.empty.time");
  const MetricsSnapshot snap = registry().snapshot();
  const TimerSnapshot* ts = find_timer(snap, "quant.empty.time");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->count, 0);
  EXPECT_DOUBLE_EQ(ts->quantile_ns(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ts->quantile_ns(0.99), 0.0);
}

TEST_F(ObsTest, QuantileSingleSampleClampsToMax) {
  // 1000 ns lands in bucket 9 (upper bound 1024); the quantile clamps the
  // bucket upper bound to the observed max, so it reports 1000 exactly.
  Timer& t = registry().timer("quant.single.time");
  t.record_ns(1000);
  const MetricsSnapshot snap = registry().snapshot();
  const TimerSnapshot* ts = find_timer(snap, "quant.single.time");
  ASSERT_NE(ts, nullptr);
  ASSERT_EQ(ts->buckets.size(), 1u);
  EXPECT_EQ(ts->buckets[0].first, 1024);
  EXPECT_DOUBLE_EQ(ts->quantile_ns(0.5), 1000.0);
  EXPECT_DOUBLE_EQ(ts->quantile_ns(1.0), 1000.0);
}

TEST_F(ObsTest, QuantileWalksBucketsInOrder) {
  // 90 fast samples (bucket upper 16) and 10 slow ones: the median sits
  // in the fast bucket, the p99 in the slow one.
  Timer& t = registry().timer("quant.mixed.time");
  for (int i = 0; i < 90; ++i) t.record_ns(10);
  for (int i = 0; i < 10; ++i) t.record_ns(1'000'000);
  const MetricsSnapshot snap = registry().snapshot();
  const TimerSnapshot* ts = find_timer(snap, "quant.mixed.time");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->count, 100);
  EXPECT_DOUBLE_EQ(ts->quantile_ns(0.5), 16.0);
  EXPECT_DOUBLE_EQ(ts->quantile_ns(0.99), 1'000'000.0);  // clamped to max
}

TEST_F(ObsTest, SaturatedSampleStaysInLastBucket) {
  Timer& t = registry().timer("quant.saturated.time");
  t.record_ns(INT64_MAX);
  EXPECT_EQ(t.bucket(Timer::kBuckets - 1), 1);
  const MetricsSnapshot snap = registry().snapshot();
  const TimerSnapshot* ts = find_timer(snap, "quant.saturated.time");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->max_ns, INT64_MAX);
  // The last bucket's nominal upper bound (2^48) is below max here, so
  // the estimate is the bound — finite, not max-clamped.
  EXPECT_DOUBLE_EQ(ts->quantile_ns(1.0), static_cast<double>(int64_t{1} << 48));
}

TEST_F(ObsTest, NegativeDurationsClampToZero) {
  Timer& t = registry().timer("quant.negative.time");
  t.record_ns(-5);
  EXPECT_EQ(t.count(), 1);
  EXPECT_EQ(t.total_ns(), 0);
  EXPECT_EQ(t.min_ns(), 0);
  EXPECT_EQ(t.bucket(0), 1);
}

// --- shard-buffered timers ---------------------------------------------

TEST_F(ObsTest, ShardBuffersTimerSamplesUntilFlush) {
  Timer& t = registry().timer("shard.buffered.time");
  MetricShard shard;
  {
    ShardScope scope(shard);
    t.record_ns(100);
    t.record_ns(200);
    // Buffered: nothing has reached the shared timer yet.
    EXPECT_EQ(t.count(), 0);
  }
  // Scope exit restores the slot but does not flush.
  EXPECT_EQ(t.count(), 0);
  shard.flush();
  EXPECT_EQ(t.count(), 2);
  EXPECT_EQ(t.total_ns(), 300);
  EXPECT_EQ(t.min_ns(), 100);
  EXPECT_EQ(t.max_ns(), 200);
  EXPECT_EQ(t.bucket(Timer::bucket_of(100)), 1);
  EXPECT_EQ(t.bucket(Timer::bucket_of(200)), 1);
}

TEST_F(ObsTest, ShardMergedTimerIsBitIdenticalToDirect) {
  // The same sample sequence recorded directly and through a shard must
  // produce identical count/total/min/max and identical histograms.
  Timer& direct = registry().timer("shard.direct.time");
  Timer& sharded = registry().timer("shard.merged.time");
  MetricShard shard;
  for (int i = 0; i < 1000; ++i) {
    const int64_t ns = 100 + 37 * (i % 13) * (i % 13);
    direct.record_ns(ns);
    ShardScope scope(shard);
    sharded.record_ns(ns);
  }
  shard.flush();
  EXPECT_EQ(sharded.count(), direct.count());
  EXPECT_EQ(sharded.total_ns(), direct.total_ns());
  EXPECT_EQ(sharded.min_ns(), direct.min_ns());
  EXPECT_EQ(sharded.max_ns(), direct.max_ns());
  for (int k = 0; k < Timer::kBuckets; ++k)
    EXPECT_EQ(sharded.bucket(k), direct.bucket(k)) << "bucket " << k;
}

TEST_F(ObsTest, ShardScopeRestoresPreviousSlot) {
  MetricShard outer_shard;
  MetricShard inner_shard;
  EXPECT_EQ(shard_slot(), nullptr);
  {
    ShardScope outer(outer_shard);
    EXPECT_EQ(shard_slot(), &outer_shard);
    {
      ShardScope inner(inner_shard);
      EXPECT_EQ(shard_slot(), &inner_shard);
    }
    EXPECT_EQ(shard_slot(), &outer_shard);
  }
  EXPECT_EQ(shard_slot(), nullptr);
}

// --- process gauges and the run ledger ---------------------------------

TEST_F(ObsTest, ForceSetStoresEvenWhenDisabled) {
  Gauge& g = registry().gauge("proc.test.level");
  set_enabled(false);
  g.set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);  // regular set is gated
  g.force_set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);  // force_set is not
}

TEST_F(ObsTest, ProcessGaugesAreAlwaysAvailable) {
  set_enabled(false);  // even with collection off
  update_process_gauges();
  const MetricsSnapshot snap = registry().snapshot();
  double rss = -1.0, wall = -1.0;
  for (const auto& [name, v] : snap.gauges) {
    if (name == "proc.peak_rss_bytes") rss = v;
    if (name == "proc.wall_ns") wall = v;
  }
  EXPECT_GT(rss, 0.0);   // a running process has resident pages
  EXPECT_GT(wall, 0.0);  // monotonic clock has advanced since start
}

TEST_F(ObsTest, LedgerRecordJsonCarriesRunContext) {
  registry().counter("cache.hit").add(3);
  registry().counter("cache.miss").add(1);
  registry().timer("ledger.span.time").record_ns(500);

  LedgerRecord record;
  record.command = "yield";
  record.flags = {{"out-dir", "/tmp/x"}, {"profile", ""}};
  record.positionals = {"design.json"};
  record.corners = "tt,ff";
  record.cache_mode = "auto";
  record.exit_code = 2;
  record.threads = 4;
  record.wall_ns = 123456;

  const JsonValue root = parse_json(ledger_record_json(record));
  ASSERT_EQ(root.kind, JsonValue::Kind::Object);
  EXPECT_EQ(root.find("schema")->text, "pim.ledger.v1");
  EXPECT_EQ(root.find("command")->text, "yield");
  EXPECT_EQ(root.find("corners")->text, "tt,ff");
  EXPECT_DOUBLE_EQ(root.find("exit_code")->number, 2.0);
  EXPECT_DOUBLE_EQ(root.find("threads")->number, 4.0);
  EXPECT_DOUBLE_EQ(root.find("wall_ns")->number, 123456.0);
  EXPECT_GT(root.find("peak_rss_bytes")->number, 0.0);
  // ISO-8601 UTC timestamp.
  ASSERT_NE(root.find("ts"), nullptr);
  EXPECT_EQ(root.find("ts")->text.size(), 20u);
  EXPECT_EQ(root.find("ts")->text.back(), 'Z');

  const JsonValue* version = root.find("version");
  ASSERT_NE(version, nullptr);
  EXPECT_FALSE(version->find("pim")->text.empty());

  const JsonValue* flags = root.find("flags");
  ASSERT_NE(flags, nullptr);
  EXPECT_EQ(flags->find("out-dir")->text, "/tmp/x");

  const JsonValue* cache = root.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->find("mode")->text, "auto");
  EXPECT_DOUBLE_EQ(cache->find("hit")->number, 3.0);
  EXPECT_DOUBLE_EQ(cache->find("miss")->number, 1.0);

  const JsonValue* metrics = root.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* timers = metrics->find("timers");
  ASSERT_NE(timers, nullptr);
  const JsonValue* span = timers->find("ledger.span.time");
  ASSERT_NE(span, nullptr);
  EXPECT_DOUBLE_EQ(span->find("count")->number, 1.0);
  ASSERT_NE(span->find("p50_ns"), nullptr);
  ASSERT_NE(span->find("p99_ns"), nullptr);
}

TEST_F(ObsTest, AppendLedgerRecordAccumulatesJsonLines) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "pim_obs_ledger_test";
  std::filesystem::remove_all(dir);
  const std::string path = (dir / "sub" / "ledger.jsonl").string();

  LedgerRecord record;
  record.command = "first";
  append_ledger_record(path, record);  // creates parent directories
  record.command = "second";
  record.exit_code = 3;
  append_ledger_record(path, record);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  const JsonValue first = parse_json(lines[0]);
  const JsonValue second = parse_json(lines[1]);
  EXPECT_EQ(first.find("command")->text, "first");
  EXPECT_EQ(second.find("command")->text, "second");
  EXPECT_DOUBLE_EQ(second.find("exit_code")->number, 3.0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pim::obs
