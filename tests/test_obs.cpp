// Tests for the observability subsystem: metrics registry, scoped timers,
// trace buffer bounding, and the JSON/CSV reporters.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace pim::obs {
namespace {

// reset() zeroes values but keeps registrations alive (call sites cache
// handles), so tests locate their own metrics by name rather than
// asserting on registry-wide sizes.
const TimerSnapshot* find_timer(const MetricsSnapshot& snap, const std::string& name) {
  for (const TimerSnapshot& t : snap.timers)
    if (t.name == name) return &t;
  return nullptr;
}

const int64_t* find_counter(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.counters)
    if (n == name) return &v;
  return nullptr;
}

// Every test starts from a zeroed, enabled registry and empty trace buffer;
// collection is switched back off on exit so other suites see the default.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry().reset();
    clear_trace();
    set_enabled(true);
  }
  void TearDown() override {
    set_trace_enabled(false);
    set_enabled(false);
    registry().reset();
    clear_trace();
  }
};

TEST_F(ObsTest, CounterRegistrationAndIncrement) {
  Counter& c = registry().counter("test.counter.hits");
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  // Same name returns the same counter.
  EXPECT_EQ(&registry().counter("test.counter.hits"), &c);
  EXPECT_EQ(registry().counter("test.counter.hits").value(), 42);
}

TEST_F(ObsTest, CounterIgnoredWhenDisabled) {
  Counter& c = registry().counter("test.counter.gated");
  set_enabled(false);
  c.add(100);
  EXPECT_EQ(c.value(), 0);
  set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 1);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  Gauge& g = registry().gauge("test.gauge.level");
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST_F(ObsTest, TimerRecordsDurations) {
  Timer& t = registry().timer("test.timer.span");
  t.record_ns(1000);
  t.record_ns(3000);
  const MetricsSnapshot snap = registry().snapshot();
  const TimerSnapshot* found = find_timer(snap, "test.timer.span");
  ASSERT_NE(found, nullptr);
  const TimerSnapshot& ts = *found;
  EXPECT_EQ(ts.count, 2);
  EXPECT_EQ(ts.total_ns, 4000);
  EXPECT_EQ(ts.min_ns, 1000);
  EXPECT_EQ(ts.max_ns, 3000);
  EXPECT_DOUBLE_EQ(ts.mean_ns(), 2000.0);
  EXPECT_GE(ts.quantile_ns(0.99), ts.quantile_ns(0.5));
  EXPECT_LE(ts.quantile_ns(1.0), ts.max_ns);
}

TEST_F(ObsTest, ScopedTimerMeasuresSomething) {
  Timer& t = registry().timer("test.timer.scoped");
  {
    ScopedTimer st(t);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const TimerSnapshot* ts = find_timer(registry().snapshot(), "test.timer.scoped");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->count, 1);
  EXPECT_GE(ts->total_ns, 1'000'000);  // at least the 1 ms sleep
}

TEST_F(ObsTest, ConcurrentIncrementsAreLossless) {
  Counter& c = registry().counter("test.counter.concurrent");
  Timer& t = registry().timer("test.timer.concurrent");
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&] {
      for (int k = 0; k < kIters; ++k) {
        c.add();
        t.record_ns(100 + k % 7);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<int64_t>(kThreads) * kIters);
  const TimerSnapshot* ts = find_timer(registry().snapshot(), "test.timer.concurrent");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->count, static_cast<int64_t>(kThreads) * kIters);
}

TEST_F(ObsTest, ConcurrentRegistrationReturnsStableHandles) {
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      Counter& c = registry().counter("test.counter.race");
      c.add();
      seen[static_cast<size_t>(i)] = &c;
    });
  }
  for (auto& w : workers) w.join();
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(seen[size_t(i)], seen[0]);
  EXPECT_EQ(registry().counter("test.counter.race").value(), kThreads);
}

TEST_F(ObsTest, JsonReportRoundTrips) {
  registry().counter("alpha.beta.count").add(7);
  registry().gauge("alpha.beta.level").set(1.5);
  registry().timer("alpha.beta.time").record_ns(2500);
  const std::string json = metrics_to_json(registry().snapshot());

  const JsonValue root = parse_json(json);
  ASSERT_EQ(root.kind, JsonValue::Kind::Object);
  const JsonValue* schema = root.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->text, "pim.metrics.v1");

  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* beta = counters->find("alpha.beta.count");
  ASSERT_NE(beta, nullptr);
  EXPECT_DOUBLE_EQ(beta->number, 7.0);

  const JsonValue* gauges = root.find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->find("alpha.beta.level"), nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("alpha.beta.level")->number, 1.5);

  const JsonValue* timers = root.find("timers");
  ASSERT_NE(timers, nullptr);
  const JsonValue* t = timers->find("alpha.beta.time");
  ASSERT_NE(t, nullptr);
  ASSERT_NE(t->find("count"), nullptr);
  EXPECT_DOUBLE_EQ(t->find("count")->number, 1.0);
  EXPECT_DOUBLE_EQ(t->find("total_ns")->number, 2500.0);
  ASSERT_NE(t->find("p50_ns"), nullptr);
  ASSERT_NE(t->find("p99_ns"), nullptr);
}

TEST_F(ObsTest, JsonEscapesAwkwardNames) {
  registry().counter("weird.\"name\"\\with\nstuff").add(1);
  const std::string json = metrics_to_json(registry().snapshot());
  const JsonValue root = parse_json(json);  // must not throw
  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("weird.\"name\"\\with\nstuff"), nullptr);
  EXPECT_DOUBLE_EQ(counters->find("weird.\"name\"\\with\nstuff")->number, 1.0);
}

TEST_F(ObsTest, CsvReportListsEveryMetric) {
  registry().counter("c.one.count").add(3);
  registry().gauge("g.two.level").set(0.25);
  registry().timer("t.three.time").record_ns(10);
  const std::string csv = metrics_to_csv(registry().snapshot());
  EXPECT_NE(csv.find("kind,name,value,count,total_ns,mean_ns,min_ns,max_ns"),
            std::string::npos);
  EXPECT_NE(csv.find("counter,c.one.count,3"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g.two.level,0.25"), std::string::npos);
  EXPECT_NE(csv.find("timer,t.three.time"), std::string::npos);
}

TEST_F(ObsTest, TraceBufferRecordsNestedSpans) {
  set_trace_enabled(true, 64);
  {
    TraceSpan outer("outer");
    TraceSpan inner("inner");
  }
  const std::vector<TraceEvent> events = trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Spans complete innermost-first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_EQ(trace_dropped(), 0u);
}

TEST_F(ObsTest, TraceBufferIsBounded) {
  set_trace_enabled(true, 8);
  for (int i = 0; i < 20; ++i) TraceSpan span("bounded");
  EXPECT_EQ(trace_events().size(), 8u);
  EXPECT_EQ(trace_dropped(), 12u);
  clear_trace();
  EXPECT_TRUE(trace_events().empty());
  EXPECT_EQ(trace_dropped(), 0u);
}

TEST_F(ObsTest, ChromeTraceJsonParses) {
  set_trace_enabled(true, 64);
  {
    TraceSpan span("chrome.export");
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  const std::string json = trace_to_chrome_json(trace_events());
  const JsonValue root = parse_json(json);
  ASSERT_EQ(root.kind, JsonValue::Kind::Object);
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::Array);
  ASSERT_EQ(events->items.size(), 1u);
  const JsonValue& ev = events->items[0];
  EXPECT_EQ(ev.find("name")->text, "chrome.export");
  EXPECT_EQ(ev.find("ph")->text, "X");
  EXPECT_GT(ev.find("dur")->number, 0.0);
}

TEST_F(ObsTest, ResetZeroesButKeepsRegistrations) {
  // reset() must keep the registered objects alive (call sites cache
  // references in function-local statics) and only zero their values.
  Counter& c = registry().counter("kept.after.reset");
  Timer& t = registry().timer("kept.after.timer");
  c.add(5);
  t.record_ns(1);
  registry().reset();
  EXPECT_EQ(c.value(), 0);
  const MetricsSnapshot snap = registry().snapshot();
  const int64_t* cv = find_counter(snap, "kept.after.reset");
  ASSERT_NE(cv, nullptr);
  EXPECT_EQ(*cv, 0);
  const TimerSnapshot* ts = find_timer(snap, "kept.after.timer");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->count, 0);
  EXPECT_EQ(ts->total_ns, 0);
  (void)t;
  // The handle is still the registered object.
  c.add(2);
  EXPECT_EQ(registry().counter("kept.after.reset").value(), 2);
}

TEST_F(ObsTest, MacroCachesHandleAndCounts) {
  for (int i = 0; i < 5; ++i) PIM_COUNT("macro.cached.count");
  PIM_COUNT_N("macro.cached.count", 10);
  EXPECT_EQ(registry().counter("macro.cached.count").value(), 15);
}

}  // namespace
}  // namespace pim::obs
