// Fault-injection matrix: arms each site of the deterministic harness
// (util/faultinject) and asserts both the failure surface (typed errors
// with the right codes) and the recovery guardrails — transient timestep
// halving, LU equilibration, Monte-Carlo sample skipping, charlib sweep
// degradation, and the cosi mesh fallback.
//
// Every test disarms the harness on entry and exit via the fixture so
// injection state never leaks between cases.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "charlib/characterize.hpp"
#include "cosi/mesh.hpp"
#include "cosi/synthesis.hpp"
#include "models/baseline.hpp"
#include "models/proposed.hpp"
#include "numeric/lu.hpp"
#include "obs/metrics.hpp"
#include "spice/deck.hpp"
#include "spice/measure.hpp"
#include "spice/transient.hpp"
#include "tech/technology.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/units.hpp"
#include "variation/variation.hpp"

namespace pim {
namespace {

using namespace pim::unit;

class FaultFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::clear();
    obs::registry().reset();
    obs::set_enabled(true);
  }
  void TearDown() override {
    fault::clear();
    obs::set_enabled(false);
    obs::registry().reset();
  }
};

// ------------------------------------------------------------------ rc

// The canonical RC step-response circuit from test_spice: linear, so any
// Newton failure below is the harness's doing.
TransientResult run_rc(const TransientOptions& opt, NodeId* out_node) {
  Circuit c;
  const NodeId in = c.add_node("in");
  const NodeId out = c.add_node("out");
  c.add_vsource(in, Waveform::ramp(0.0, 1.0, 0.0, 1.0 * ps));
  c.add_resistor(in, out, 1.0 * kohm);
  c.add_capacitor(out, c.ground(), 1.0 * pF);
  if (out_node != nullptr) *out_node = out;
  return run_transient(c, opt, {out});
}

TEST_F(FaultFixture, NewtonAlwaysDivergingExhaustsHalvings) {
  fault::configure("newton.diverge:1");
  TransientOptions opt;
  opt.t_stop = 0.1 * ns;
  try {
    run_rc(opt, nullptr);
    FAIL() << "expected no_convergence";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::no_convergence);
    EXPECT_NE(std::string(e.what()).find("halvings"), std::string::npos);
  }
  EXPECT_GT(fault::fired_count(fault::kNewtonDiverge), 0);
  EXPECT_GT(obs::registry().counter("spice.transient.error").value(), 0);
}

TEST_F(FaultFixture, TimestepHalvingRecoversSporadicDivergence) {
  TransientOptions opt;
  opt.t_stop = 4.0 * ns;
  opt.dt = 1.0 * ps;
  NodeId out = 0;
  const TransientResult clean = run_rc(opt, &out);
  const double t50_clean =
      crossing_time(clean.time, clean.trace(out), 0.5, EdgeKind::Rising);

  fault::configure("newton.diverge:0.02:3");
  const TransientResult faulty = run_rc(opt, &out);
  EXPECT_GT(fault::fired_count(fault::kNewtonDiverge), 0);
  EXPECT_GT(obs::registry().counter("spice.newton.retries").value(), 0);
  for (double v : faulty.trace(out)) ASSERT_TRUE(std::isfinite(v));
  // The halved re-steps must not disturb the solution: same RC answer.
  const double t50_faulty =
      crossing_time(faulty.time, faulty.trace(out), 0.5, EdgeKind::Rising);
  EXPECT_NEAR(t50_faulty, t50_clean, 0.02 * t50_clean);
}

TEST_F(FaultFixture, SingularSolverInTransientRetriesAtSmallerStep) {
  TransientOptions opt;
  opt.t_stop = 4.0 * ns;
  opt.dt = 1.0 * ps;
  fault::configure("lu.singular:0.05:7");
  NodeId out = 0;
  const TransientResult res = run_rc(opt, &out);
  EXPECT_GT(fault::fired_count(fault::kLuSingular), 0);
  EXPECT_GT(obs::registry().counter("spice.solver.singular").value(), 0);
  EXPECT_GT(obs::registry().counter("numeric.lu.error").value(), 0);
  const double t50 = crossing_time(res.time, res.trace(out), 0.5, EdgeKind::Rising);
  EXPECT_NEAR(t50, 1.0 * ns * std::log(2.0), 0.03 * ns);
}

// ------------------------------------------------------------------ lu

TEST_F(FaultFixture, LuInjectionIsDeterministicPerSeed) {
  Matrix a(3, 3);
  a(0, 0) = 4.0; a(0, 1) = 1.0; a(0, 2) = 0.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0; a(1, 2) = 1.0;
  a(2, 0) = 0.0; a(2, 1) = 1.0; a(2, 2) = 2.0;

  auto run_pattern = [&] {
    std::vector<bool> failed;
    for (int i = 0; i < 40; ++i)
      failed.push_back(!LuDecomposition::create(a).ok());
    return failed;
  };
  fault::configure("lu.singular:0.5:42");
  const std::vector<bool> first = run_pattern();
  const int64_t fired_first = fault::fired_count(fault::kLuSingular);
  fault::configure("lu.singular:0.5:42");
  EXPECT_EQ(run_pattern(), first);
  EXPECT_EQ(fault::fired_count(fault::kLuSingular), fired_first);
  EXPECT_GT(fired_first, 0);
  // fault counter mirrors fired_count when metrics are on.
  EXPECT_EQ(obs::registry().counter("fault.lu.singular.injected").value(),
            2 * fired_first);
}

TEST_F(FaultFixture, LuEquilibrationRescuesSingleFire) {
  Matrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  const Vector b = {5.0, 10.0};

  // p = 0.5: some creates fire on the first attempt only, so the
  // equilibrated retry must rescue them and still solve correctly.
  fault::configure("lu.singular:0.5:9");
  int recovered = 0;
  int errored = 0;
  for (int i = 0; i < 60; ++i) {
    const Expected<LuDecomposition> lu = LuDecomposition::create(a);
    if (!lu.ok()) {
      ++errored;
      EXPECT_EQ(lu.error().code(), ErrorCode::singular_matrix);
      EXPECT_NE(std::string(lu.error().what()).find("[injected]"),
                std::string::npos);
      continue;
    }
    if (lu.value().equilibrated()) ++recovered;
    const Vector x = lu.value().solve(b);
    EXPECT_NEAR(x[0], 1.0, 1e-9);
    EXPECT_NEAR(x[1], 3.0, 1e-9);
  }
  EXPECT_GT(recovered, 0);  // fired once, rescued
  EXPECT_GT(errored, 0);    // fired twice, surfaced
  EXPECT_EQ(obs::registry().counter("numeric.lu.recovered").value(), recovered);
  EXPECT_GE(obs::registry().counter("numeric.lu.error").value(), errored);
}

// ---------------------------------------------------------------- deck

TEST_F(FaultFixture, DeckParseFaultSurfacesAsIoParse) {
  Circuit c;
  const NodeId a = c.add_node("a");
  c.add_vsource(a, Waveform::dc(1.0));
  const std::string text = write_deck(c);
  EXPECT_NO_THROW(parse_deck(text));

  fault::configure("deck.parse:1");
  try {
    parse_deck(text);
    FAIL() << "expected io_parse";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::io_parse);
  }
  EXPECT_GT(fault::fired_count(fault::kDeckParse), 0);
}

TEST_F(FaultFixture, IoOpenFaultFailsSaveAndLoad) {
  Circuit c;
  const NodeId a = c.add_node("a");
  c.add_vsource(a, Waveform::dc(1.0));
  const std::string path = ::testing::TempDir() + "pim_fault_deck.sp";
  save_deck(c, path);  // disarmed: works

  fault::configure("io.open:1");
  try {
    save_deck(c, path);
    FAIL() << "expected io_parse";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::io_parse);
  }
  EXPECT_THROW(load_deck(path), Error);
  EXPECT_GT(fault::fired_count(fault::kIoOpen), 0);

  fault::clear();
  EXPECT_NO_THROW(load_deck(path));
  std::remove(path.c_str());
}

// ----------------------------------------------------------- variation

// A hand-filled fit with representative magnitudes: the MC tests only
// need the closed-form evaluation to produce finite positive numbers,
// not to match a real technology.
TechnologyFit synthetic_fit(const Technology& tech) {
  TechnologyFit fit;
  fit.node = tech.node;
  fit.vdd = tech.vdd;
  RepeaterEdgeFit e;
  e.a0 = 5e-12;
  e.a1 = 0.05;
  e.rho0 = 2e-3;
  e.rho1 = 1e6;
  e.b0 = 2e-12;
  e.b1 = 0.3;
  e.b2 = 5e-4;
  fit.inv_rise = fit.inv_fall = fit.buf_rise = fit.buf_fall = e;
  fit.gamma = 7e-10;
  fit.leakage.n0 = fit.leakage.p0 = 1e-9;
  fit.leakage.n1 = fit.leakage.p1 = 1e-2;
  fit.area0 = 1e-12;
  fit.area1 = 1e-6;
  return fit;
}

TEST_F(FaultFixture, MonteCarloSkipsFailedSamples) {
  const Technology& tech = technology(TechNode::N65);
  const ProposedModel model(tech, synthetic_fit(tech));
  LinkContext ctx;
  ctx.length = 2 * mm;
  LinkDesign design;
  design.num_repeaters = 3;

  const MonteCarloResult clean = monte_carlo_link(model, ctx, design, 200, 5);
  EXPECT_EQ(clean.failed_samples, 0);
  ASSERT_EQ(clean.delays.size(), 200u);

  fault::configure("variation.sample:0.25:13");
  const MonteCarloResult mc = monte_carlo_link(model, ctx, design, 200, 5);
  EXPECT_GT(mc.failed_samples, 0);
  EXPECT_LT(mc.failed_samples, 200);
  EXPECT_EQ(mc.delays.size() + static_cast<size_t>(mc.failed_samples), 200u);
  EXPECT_EQ(obs::registry().counter("variation.sample.error").value(),
            mc.failed_samples);
  // Surviving statistics stay well-formed.
  EXPECT_TRUE(std::isfinite(mc.mean_delay));
  EXPECT_GT(mc.mean_delay, 0.0);
  EXPECT_TRUE(std::isfinite(mc.mean_power));

  // Exactly one draw per sample: the failure pattern is seed-deterministic.
  fault::configure("variation.sample:0.25:13");
  const MonteCarloResult again = monte_carlo_link(model, ctx, design, 200, 5);
  EXPECT_EQ(again.failed_samples, mc.failed_samples);

  fault::configure("variation.sample:1");
  EXPECT_THROW(monte_carlo_link(model, ctx, design, 50, 5), Error);
}

TEST_F(FaultFixture, WithinDieMonteCarloAlsoDegrades) {
  const Technology& tech = technology(TechNode::N65);
  const ProposedModel model(tech, synthetic_fit(tech));
  LinkContext ctx;
  ctx.length = 2 * mm;
  LinkDesign design;
  design.num_repeaters = 4;

  fault::configure("variation.sample:0.2:21");
  const MonteCarloResult mc = monte_carlo_link_within_die(model, ctx, design, 150, 5);
  EXPECT_GT(mc.failed_samples, 0);
  EXPECT_EQ(mc.delays.size() + static_cast<size_t>(mc.failed_samples), 150u);
}

// ------------------------------------------------------------- charlib

TEST_F(FaultFixture, CharacterizationQuorumFailureIsTyped) {
  fault::configure("newton.diverge:1");
  CharacterizationOptions opt;
  opt.slew_axis = {20 * ps, 100 * ps};
  opt.fanout_axis = {2.0, 8.0};
  try {
    characterize_cell(technology(TechNode::N65), CellKind::Inverter, 8, opt);
    FAIL() << "expected no_convergence";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::no_convergence);
  }
}

// ---------------------------------------------------------------- cosi

TEST_F(FaultFixture, InfeasibleSynthesisFallsBackToMesh) {
  SocSpec spec;
  spec.name = "tiny";
  spec.die_width = 4 * mm;
  spec.die_height = 4 * mm;
  spec.data_width = 32;
  spec.cores = {{"a", 0.5 * mm, 0.5 * mm, 0.5 * mm, 0.5 * mm},
                {"b", 3.5 * mm, 0.5 * mm, 0.5 * mm, 0.5 * mm},
                {"c", 2.0 * mm, 3.5 * mm, 0.5 * mm, 0.5 * mm}};
  spec.flows = {{0, 1, 2e9}, {1, 2, 1e9}, {0, 2, 0.5e9}};

  const BakogluModel model(technology(TechNode::N65));
  NocSynthesisOptions opt;
  opt.delay_budget_fraction = 1e-4;  // no wire length can meet this
  const NocSynthesisResult r = synthesize_noc(spec, model, opt);
  EXPECT_EQ(obs::registry().counter("cosi.synthesis.mesh_fallback").value(), 1);
  EXPECT_GT(obs::registry().counter("cosi.synthesis.error").value(), 0);
  EXPECT_GT(r.architecture.router_count(), 0);  // the mesh got built
}

// ------------------------------------------------------------ parsing

TEST_F(FaultFixture, SpecParsingRejectsGarbage) {
  try {
    fault::configure("lu.sungular:0.5");  // typo'd site
    FAIL() << "expected bad_input";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::bad_input);
  }
  EXPECT_THROW(fault::configure("lu.singular:1.5"), Error);   // prob > 1
  EXPECT_THROW(fault::configure("lu.singular:-0.1"), Error);  // prob < 0
  EXPECT_THROW(fault::configure("lu.singular:abc"), Error);
  EXPECT_THROW(fault::configure(""), Error);
  EXPECT_FALSE(fault::armed());  // failed configure leaves harness off

  EXPECT_NO_THROW(fault::configure("lu.singular:0.5:7,deck.parse"));
  EXPECT_TRUE(fault::armed());
  for (const std::string& site : fault::known_sites())
    EXPECT_NO_THROW(fault::configure(site));
}

// ------------------------------------------------------------- hygiene

TEST_F(FaultFixture, ClearDisarmsEverySite) {
  fault::configure("lu.singular:1,newton.diverge:1,deck.parse:1");
  EXPECT_TRUE(fault::armed());
  fault::clear();
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::should_fire(fault::kLuSingular));
  EXPECT_EQ(fault::fired_count(fault::kLuSingular), 0);
}

}  // namespace
}  // namespace pim
