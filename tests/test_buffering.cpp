// Tests for pim::buffering — exhaustiveness, weight semantics,
// constraint handling, and staggering. Runs on the (cheap, closed-form)
// baseline models so no characterization is needed.
#include <gtest/gtest.h>

#include "buffering/optimize.hpp"
#include "buffering/vanginneken.hpp"
#include "models/baseline.hpp"
#include "util/error.hpp"
#include "util/units.hpp"
#include <algorithm>
#include <cmath>
#include <limits>

namespace pim {
namespace {

using namespace pim::unit;

LinkContext ctx_mm(double len) {
  LinkContext ctx;
  ctx.length = len * mm;
  ctx.input_slew = 100 * ps;
  return ctx;
}

TEST(Buffering, DelayOptimalBeatsEveryScannedCandidate) {
  const PamunuwaModel model(technology(TechNode::N65));
  const LinkContext ctx = ctx_mm(5.0);
  BufferingOptions opt;
  opt.weight = 1.0;
  const BufferingResult best = optimize_buffering(model, ctx, opt);
  ASSERT_TRUE(best.feasible);
  // Re-scan a coarse grid; nothing may beat the optimizer's answer.
  for (int drive : {4, 8, 16, 32, 64}) {
    for (int n : {1, 2, 4, 8, 16, 24}) {
      LinkDesign d;
      d.drive = drive;
      d.num_repeaters = n;
      EXPECT_GE(model.evaluate(ctx, d).delay, best.estimate.delay - 1e-18);
    }
  }
  EXPECT_GT(best.evaluations, 100);
}

TEST(Buffering, WeightTradesDelayForPower) {
  const PamunuwaModel model(technology(TechNode::N65));
  const LinkContext ctx = ctx_mm(5.0);
  BufferingOptions fast;
  fast.weight = 1.0;
  BufferingOptions frugal;
  frugal.weight = 0.2;
  const BufferingResult r_fast = optimize_buffering(model, ctx, fast);
  const BufferingResult r_frugal = optimize_buffering(model, ctx, frugal);
  ASSERT_TRUE(r_fast.feasible && r_frugal.feasible);
  EXPECT_LE(r_fast.estimate.delay, r_frugal.estimate.delay);
  EXPECT_LE(r_frugal.estimate.total_power(), r_fast.estimate.total_power());
  // The power-leaning design uses smaller or fewer repeaters.
  EXPECT_LE(r_frugal.design.drive * r_frugal.design.num_repeaters,
            r_fast.design.drive * r_fast.design.num_repeaters);
}

TEST(Buffering, ConstraintsGateFeasibility) {
  const PamunuwaModel model(technology(TechNode::N65));
  const LinkContext ctx = ctx_mm(8.0);
  BufferingOptions opt;
  opt.max_delay = 1 * ps;  // impossible
  EXPECT_FALSE(optimize_buffering(model, ctx, opt).feasible);
  opt.max_delay = 10 * ns;  // trivial
  const BufferingResult r = optimize_buffering(model, ctx, opt);
  EXPECT_TRUE(r.feasible);
  EXPECT_LE(r.estimate.delay, opt.max_delay);
}

TEST(Buffering, ConstrainedOptimumMeetsBudgetTightly) {
  const PamunuwaModel model(technology(TechNode::N65));
  const LinkContext ctx = ctx_mm(6.0);
  // Find the unconstrained delay-optimal first.
  BufferingOptions fastest;
  fastest.weight = 1.0;
  const double d_min = optimize_buffering(model, ctx, fastest).estimate.delay;
  // Power-optimize with a 40 % slack budget: result must fit the budget
  // and burn no more power than the delay-optimal design.
  BufferingOptions frugal;
  frugal.weight = 0.0;
  frugal.max_delay = 1.4 * d_min;
  const BufferingResult r = optimize_buffering(model, ctx, frugal);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.estimate.delay, frugal.max_delay);
  EXPECT_LE(r.estimate.total_power(),
            optimize_buffering(model, ctx, fastest).estimate.total_power());
}

TEST(Buffering, StaggeringExploredWhenEnabled) {
  const PamunuwaModel model(technology(TechNode::N65));
  const LinkContext ctx = ctx_mm(5.0);
  BufferingOptions opt;
  opt.weight = 1.0;
  opt.try_staggered = true;
  const BufferingResult r = optimize_buffering(model, ctx, opt);
  ASSERT_TRUE(r.feasible);
  // With worst-case coupling on the table, the staggered variant (Miller
  // factor 0) is strictly faster under Pamunuwa, so it must win.
  EXPECT_DOUBLE_EQ(r.design.miller_factor, 0.0);
}

TEST(Buffering, SlewConstraintHonored) {
  const PamunuwaModel model(technology(TechNode::N65));
  const LinkContext ctx = ctx_mm(5.0);
  BufferingOptions opt;
  opt.weight = 0.3;
  opt.max_output_slew = 120 * ps;
  const BufferingResult r = optimize_buffering(model, ctx, opt);
  if (r.feasible) EXPECT_LE(r.estimate.output_slew, opt.max_output_slew);
}

TEST(Buffering, InvalidOptionsRejected) {
  const PamunuwaModel model(technology(TechNode::N65));
  BufferingOptions opt;
  opt.weight = 1.5;
  EXPECT_THROW(optimize_buffering(model, ctx_mm(1.0), opt), Error);
  BufferingOptions empty;
  empty.kinds.clear();
  EXPECT_THROW(optimize_buffering(model, ctx_mm(1.0), empty), Error);
}

TEST(Buffering, LayerExplorationChoosesAndRecords) {
  const PamunuwaModel model(technology(TechNode::N65));
  BufferingOptions opt;
  opt.weight = 1.0;
  opt.layers = {WireLayer::Global, WireLayer::Intermediate};
  // Long link: the fat global layer must win the delay race.
  const BufferingResult long_link = optimize_buffering(model, ctx_mm(8.0), opt);
  ASSERT_TRUE(long_link.feasible);
  EXPECT_EQ(long_link.layer, WireLayer::Global);
  // Power-only objective on a short hop: the narrow intermediate layer
  // (lower capacitance per meter at min pitch) can win; either way the
  // explored winner must never be worse than the single-layer answer.
  BufferingOptions frugal = opt;
  frugal.weight = 0.0;
  frugal.max_delay = 500 * ps;
  const BufferingResult both = optimize_buffering(model, ctx_mm(0.5), frugal);
  BufferingOptions global_only = frugal;
  global_only.layers = {WireLayer::Global};
  const BufferingResult global_r = optimize_buffering(model, ctx_mm(0.5), global_only);
  ASSERT_TRUE(both.feasible && global_r.feasible);
  EXPECT_LE(both.cost, global_r.cost + 1e-18);
}

TEST(Buffering, EmptyLayerListKeepsContextLayer) {
  const PamunuwaModel model(technology(TechNode::N65));
  LinkContext ctx = ctx_mm(2.0);
  ctx.layer = WireLayer::Intermediate;
  BufferingOptions opt;
  const BufferingResult r = optimize_buffering(model, ctx, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.layer, WireLayer::Intermediate);
}

TEST(Buffering, RestrictedDriveListRespected) {
  const PamunuwaModel model(technology(TechNode::N65));
  BufferingOptions opt;
  opt.drives = {4, 8};
  const BufferingResult r = optimize_buffering(model, ctx_mm(3.0), opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.design.drive == 4 || r.design.drive == 8);
}

// ------------------------------------------------------- van Ginneken

// Hand-filled plausible coefficients: the DP needs a TechnologyFit but
// not a characterized one, which keeps these tests instant and exact.
TechnologyFit synthetic_fit(const Technology& t) {
  TechnologyFit f;
  f.node = t.node;
  f.vdd = t.vdd;
  RepeaterEdgeFit e;
  e.a0 = 3e-12;
  e.a1 = 0.11;
  e.a2 = 0.0;
  e.rho0 = 650e-6;   // 650 ohm*um
  e.rho1 = 1.9e6;    // ~1900 ohm*um/ns
  e.b0 = 1e-12;
  e.b1 = 0.14;
  e.b2 = 1.5e-3;     // 1.5 ps*um/fF
  f.inv_rise = f.inv_fall = f.buf_rise = f.buf_fall = e;
  f.gamma = 0.9e-9;  // 0.9 fF/um
  f.leakage = {1e-9, 40.0, 1e-9, 17.0};
  f.area0 = 4e-13;
  f.area1 = 1e-6;
  return f;
}

TEST(VanGinneken, MatchesBruteForceOnSmallInstance) {
  const Technology& t = technology(TechNode::N65);
  const TechnologyFit fit = synthetic_fit(t);
  LinkContext ctx;
  ctx.length = 3 * mm;

  VanGinnekenOptions opt;
  opt.slots = 3;
  opt.drives = {4, 16};
  const TaperedBuffering dp = van_ginneken(t, fit, ctx, opt);

  // Enumerate every assignment of {empty, D4, D16} to the three slots.
  const double piece = ctx.length / 4.0;
  double best = std::numeric_limits<double>::infinity();
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int c = 0; c < 3; ++c) {
        std::vector<TaperedRepeater> placement;
        const int choice[3] = {a, b, c};
        for (int slot = 0; slot < 3; ++slot) {
          if (choice[slot] == 0) continue;
          placement.push_back({(slot + 1) * piece, choice[slot] == 1 ? 4 : 16});
        }
        best = std::min(best, tapered_delay(t, fit, ctx, placement, opt));
      }
    }
  }
  EXPECT_NEAR(dp.delay, best, 1e-9 * best);
  EXPECT_GT(dp.states_explored, 0);
}

TEST(VanGinneken, NeverWorseThanUniformOnItsOwnObjective) {
  const Technology& t = technology(TechNode::N65);
  const TechnologyFit fit = synthetic_fit(t);
  LinkContext ctx;
  ctx.length = 8 * mm;
  VanGinnekenOptions opt;
  opt.slots = 40;
  opt.drives = {4, 8, 16, 32};

  const TaperedBuffering dp = van_ginneken(t, fit, ctx, opt);
  // The DP is optimal over ITS slot grid, so snap the uniform candidates
  // onto that grid to stay inside the search space.
  const double piece = ctx.length / (opt.slots + 1);
  for (int n = 1; n <= 12; ++n) {
    for (int drive : opt.drives) {
      std::vector<TaperedRepeater> uniform;
      for (int k = 1; k <= n; ++k) {
        const double ideal = k * ctx.length / (n + 1);
        const double snapped =
            std::clamp(std::round(ideal / piece), 1.0, static_cast<double>(opt.slots)) *
            piece;
        if (!uniform.empty() && uniform.back().position == snapped) continue;
        uniform.push_back({snapped, drive});
      }
      EXPECT_LE(dp.delay, tapered_delay(t, fit, ctx, uniform, opt) * (1.0 + 1e-12))
          << "n=" << n << " drive=" << drive;
    }
  }
  // Long wire: the optimum uses several repeaters, sorted by position.
  EXPECT_GE(dp.repeaters.size(), 3u);
  for (size_t i = 1; i < dp.repeaters.size(); ++i)
    EXPECT_GT(dp.repeaters[i].position, dp.repeaters[i - 1].position);
}

TEST(VanGinneken, ShortWireNeedsNoBuffers) {
  const Technology& t = technology(TechNode::N65);
  const TechnologyFit fit = synthetic_fit(t);
  LinkContext ctx;
  ctx.length = 0.15 * mm;
  VanGinnekenOptions opt;
  opt.slots = 10;
  opt.drives = {4, 16};
  const TaperedBuffering dp = van_ginneken(t, fit, ctx, opt);
  EXPECT_TRUE(dp.repeaters.empty());
  EXPECT_NEAR(dp.delay, tapered_delay(t, fit, ctx, {}, opt), 1e-20);
}

TEST(VanGinneken, HeavySinkPullsABufferClose) {
  const Technology& t = technology(TechNode::N65);
  const TechnologyFit fit = synthetic_fit(t);
  LinkContext ctx;
  ctx.length = 4 * mm;
  VanGinnekenOptions opt;
  opt.slots = 30;
  opt.drives = {4, 8, 16, 32, 64};
  opt.sink_cap = 1e-12;  // a 1 pF sink
  const TaperedBuffering dp = van_ginneken(t, fit, ctx, opt);
  ASSERT_FALSE(dp.repeaters.empty());
  // The last repeater sits in the sink half and is a big one.
  const TaperedRepeater& last = dp.repeaters.back();
  EXPECT_GT(last.position, 0.5 * ctx.length);
  EXPECT_GE(last.drive, 32);
  // Buffering beats driving the fat sink straight.
  EXPECT_LT(dp.delay, tapered_delay(t, fit, ctx, {}, opt));
}

TEST(VanGinneken, DelayMonotoneInLength) {
  const Technology& t = technology(TechNode::N65);
  const TechnologyFit fit = synthetic_fit(t);
  VanGinnekenOptions opt;
  opt.slots = 20;
  opt.drives = {8, 32};
  double prev = 0.0;
  for (double len : {1.0, 3.0, 6.0, 12.0}) {
    LinkContext ctx;
    ctx.length = len * mm;
    const double d = van_ginneken(t, fit, ctx, opt).delay;
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(VanGinneken, ValidationErrors) {
  const Technology& t = technology(TechNode::N65);
  const TechnologyFit fit = synthetic_fit(t);
  LinkContext ctx;
  ctx.length = 1 * mm;
  VanGinnekenOptions opt;
  opt.slots = 0;
  EXPECT_THROW(van_ginneken(t, fit, ctx, opt), Error);
  opt.slots = 4;
  EXPECT_THROW(tapered_delay(t, fit, ctx, {{2 * mm, 8}}, opt), Error);  // off-wire
  EXPECT_THROW(tapered_delay(t, fit, ctx, {{0.5 * mm, 999}}, opt), Error);  // bad drive
}

}  // namespace
}  // namespace pim
