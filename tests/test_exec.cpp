// pim::exec engine suite: thread-count resolution, full coverage of the
// parallel primitives, and the determinism contract — bit-identical
// results at any --threads count for seeded RNG streams, Monte-Carlo
// yield, characterization tables, and NoC synthesis, with and without
// injected faults. Also the concurrency-exactness guarantees: metric
// shards lose no counts and fault fire counts stay exact under threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "charlib/characterize.hpp"
#include "cosi/synthesis.hpp"
#include "cosi/testcases.hpp"
#include "exec/engine.hpp"
#include "models/baseline.hpp"
#include "models/proposed.hpp"
#include "obs/metrics.hpp"
#include "tech/technology.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/units.hpp"
#include "variation/variation.hpp"

namespace pim {
namespace {

using namespace pim::unit;

class ExecFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    exec::set_threads(0);
    fault::clear();
    obs::registry().reset();
    obs::set_enabled(true);
  }
  void TearDown() override {
    exec::set_threads(0);
    fault::clear();
    obs::set_enabled(false);
    obs::registry().reset();
  }
};

// ---------------------------------------------------------- resolution

TEST_F(ExecFixture, ThreadResolutionPrecedence) {
  EXPECT_GE(exec::hardware_threads(), 1);
  EXPECT_GE(exec::threads(), 1);

  setenv("PIM_THREADS", "5", 1);
  EXPECT_EQ(exec::threads(), 5);
  exec::set_threads(3);  // pinned beats the environment
  EXPECT_EQ(exec::threads(), 3);
  exec::set_threads(0);
  EXPECT_EQ(exec::threads(), 5);
  setenv("PIM_THREADS", "junk", 1);  // malformed -> hardware fallback
  EXPECT_EQ(exec::threads(), exec::hardware_threads());
  unsetenv("PIM_THREADS");
  EXPECT_EQ(exec::threads(), exec::hardware_threads());
}

// ---------------------------------------------------------- primitives

TEST_F(ExecFixture, ParallelForRunsEveryItemExactlyOnce) {
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  exec::parallel_for(n, [&](size_t i) { hits[i].fetch_add(1); },
                     {.threads = 8});
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "item " << i;
}

TEST_F(ExecFixture, ParallelMapKeepsItemOrder) {
  const auto out = exec::parallel_map<size_t>(
      257, [](size_t i) { return i * i; }, {.threads = 8});
  ASSERT_EQ(out.size(), 257u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST_F(ExecFixture, SeededStreamsAreThreadCountInvariant) {
  const uint64_t seed = 2026;
  const size_t n = 64;
  const auto draw = [&](int t) {
    std::vector<double> out(n);
    exec::parallel_for_seeded(
        n, seed, [&](size_t i, Rng& rng) { out[i] = rng.next_double(); },
        {.threads = t});
    return out;
  };
  const std::vector<double> serial = draw(1);
  EXPECT_EQ(draw(2), serial);
  EXPECT_EQ(draw(8), serial);
  // The stream is a pure function of (seed, i), not of the schedule.
  for (size_t i = 0; i < n; ++i) {
    Rng expect(derive_stream_seed(seed, i));
    EXPECT_EQ(serial[i], expect.next_double()) << "item " << i;
  }
}

TEST_F(ExecFixture, FailFastRethrowsLowestFailingItem) {
  try {
    exec::parallel_for(
        100,
        [](size_t i) {
          if (i == 37 || i == 80)
            fail("boom at " + std::to_string(i), ErrorCode::internal);
        },
        {.threads = 8});
    FAIL() << "expected the item error to propagate";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::internal);
    EXPECT_NE(std::string(e.what()).find("parallel item #37"), std::string::npos)
        << e.what();
  }
}

TEST_F(ExecFixture, NonPimExceptionsAreWrapped) {
  try {
    exec::parallel_for(
        8, [](size_t i) { if (i == 3) throw std::runtime_error("plain"); },
        {.threads = 4});
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::internal);
    EXPECT_NE(std::string(e.what()).find("plain"), std::string::npos);
  }
}

TEST_F(ExecFixture, TryMapRecordsFailuresAscendingAndKeepsSurvivors) {
  const auto batch = exec::parallel_try_map<int>(
      50,
      [](size_t i) {
        if (i % 7 == 0) fail("multiple of seven", ErrorCode::bad_input);
        return static_cast<int>(2 * i);
      },
      {.threads = 8});
  ASSERT_EQ(batch.values.size(), 50u);
  std::vector<size_t> expect_failed;
  for (size_t i = 0; i < 50; i += 7) expect_failed.push_back(i);
  EXPECT_EQ(batch.failed, expect_failed);
  ASSERT_EQ(batch.errors.size(), expect_failed.size());
  EXPECT_FALSE(batch.all_ok());
  EXPECT_EQ(batch.surviving(), 50u - expect_failed.size());
  EXPECT_EQ(batch.first_error().code(), ErrorCode::bad_input);
  for (size_t i = 0; i < 50; ++i) {
    if (i % 7 == 0) {
      EXPECT_FALSE(batch.values[i].has_value());
    } else {
      ASSERT_TRUE(batch.values[i].has_value());
      EXPECT_EQ(*batch.values[i], static_cast<int>(2 * i));
    }
  }
}

TEST_F(ExecFixture, IntoExpectedPropagatesFirstErrorOrAllValues) {
  auto bad = exec::parallel_try_map<int>(10, [](size_t i) {
    if (i == 4) fail("only four", ErrorCode::no_convergence);
    return static_cast<int>(i);
  });
  const Expected<std::vector<int>> failed = std::move(bad).into_expected();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code(), ErrorCode::no_convergence);

  auto good =
      exec::parallel_try_map<int>(10, [](size_t i) { return static_cast<int>(i); });
  const Expected<std::vector<int>> ok = std::move(good).into_expected();
  ASSERT_TRUE(ok.ok());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(ok.value()[i], static_cast<int>(i));
}

TEST_F(ExecFixture, NestedRegionsRunInlineWithoutDeadlock) {
  std::atomic<int> total{0};
  exec::parallel_for(
      4,
      [&](size_t) {
        exec::parallel_for(
            8, [&](size_t) { total.fetch_add(1); }, {.threads = 8});
      },
      {.threads = 4});
  EXPECT_EQ(total.load(), 32);
}

TEST_F(ExecFixture, EmptyAndTinyRegionsWork) {
  exec::parallel_for(0, [](size_t) { FAIL() << "no items to run"; });
  const auto one = exec::parallel_map<int>(
      1, [](size_t) { return 41; }, {.threads = 8});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 41);
  // grain keeps short sweeps from fanning out, without changing results.
  const auto coarse = exec::parallel_map<size_t>(
      12, [](size_t i) { return i; }, {.threads = 8, .grain = 6});
  for (size_t i = 0; i < 12; ++i) EXPECT_EQ(coarse[i], i);
}

// ------------------------------------------------------------- metrics

TEST_F(ExecFixture, MetricShardsLoseNoCounts) {
  const size_t n = 10000;
  exec::parallel_for(
      n, [](size_t) { PIM_COUNT("exec.test.items"); }, {.threads = 8});
  EXPECT_EQ(obs::registry().counter("exec.test.items").value(),
            static_cast<int64_t>(n));
}

TEST_F(ExecFixture, ShardMergedTimersAreBitIdenticalAtAnyThreadCount) {
  // Timer samples recorded inside a region are buffered per chunk and
  // merged at join; every aggregate — histogram buckets included — must
  // equal the serial recording no matter the schedule.
  const size_t n = 1000;
  const auto sample_ns = [](size_t i) {
    return static_cast<int64_t>(100 + 37 * (i % 13) * (i % 13));
  };

  obs::Timer& ref = obs::registry().timer("exec.test.ref.time");
  for (size_t i = 0; i < n; ++i) ref.record_ns(sample_ns(i));
  const int64_t want_count = ref.count();
  const int64_t want_total = ref.total_ns();
  const int64_t want_min = ref.min_ns();
  const int64_t want_max = ref.max_ns();
  std::vector<int64_t> want_buckets(obs::Timer::kBuckets);
  for (int k = 0; k < obs::Timer::kBuckets; ++k) want_buckets[k] = ref.bucket(k);

  obs::Timer& timer = obs::registry().timer("exec.test.span.time");
  for (int t : {1, 2, 8}) {
    timer.reset();
    exec::parallel_for(
        n, [&](size_t i) { timer.record_ns(sample_ns(i)); }, {.threads = t});
    EXPECT_EQ(timer.count(), want_count) << "threads=" << t;
    EXPECT_EQ(timer.total_ns(), want_total) << "threads=" << t;
    EXPECT_EQ(timer.min_ns(), want_min) << "threads=" << t;
    EXPECT_EQ(timer.max_ns(), want_max) << "threads=" << t;
    for (int k = 0; k < obs::Timer::kBuckets; ++k)
      EXPECT_EQ(timer.bucket(k), want_buckets[k]) << "threads=" << t
                                                  << " bucket " << k;
  }
}

TEST_F(ExecFixture, SchedulerMetricsCoverQueueWaitAndChunkShape) {
  // An explicit thread request forces the pool even on one core, so the
  // submitted chunks (every chunk but the caller's) record queue wait.
  const size_t n = 1000;
  exec::parallel_for(n, [](size_t) {}, {.threads = 4});

  obs::Timer& chunk_run = obs::registry().timer("exec.chunk.run");
  obs::Timer& chunk_items = obs::registry().timer("exec.chunk.items");
  obs::Timer& queue_wait = obs::registry().timer("exec.queue.wait");
  EXPECT_EQ(chunk_run.count(), 4);   // one span per chunk
  EXPECT_EQ(chunk_items.count(), 4);
  EXPECT_EQ(chunk_items.total_ns(), static_cast<int64_t>(n));  // items, not ns
  EXPECT_EQ(queue_wait.count(), 3);  // caller chunk 0 never queues

  // Region gauges: busy accumulates chunk time; imbalance is
  // slowest/mean, so 1.0 is its floor.
  EXPECT_GT(obs::registry().gauge("exec.thread.busy_ns").value(), 0.0);
  EXPECT_GE(obs::registry().gauge("exec.region.imbalance").value(), 1.0);

  // A serial region adds chunk spans but no queue wait.
  exec::parallel_for(16, [](size_t) {}, {.threads = 1});
  EXPECT_EQ(chunk_run.count(), 5);
  EXPECT_EQ(queue_wait.count(), 3);
}

// -------------------------------------------------------------- faults

TEST_F(ExecFixture, FaultFiresAreExactAndThreadCountInvariant) {
  const size_t n = 400;
  const auto pattern = [&](int t) {
    fault::configure("variation.sample:0.3:42");  // also resets fired counts
    std::vector<char> fired(n, 0);
    exec::parallel_for(
        n,
        [&](size_t i) {
          fired[i] = fault::should_fire(fault::kVariationSample) ? 1 : 0;
        },
        {.threads = t});
    return fired;
  };
  const std::vector<char> serial = pattern(1);
  int64_t expected_fired = 0;
  for (char f : serial) expected_fired += f;
  EXPECT_GT(expected_fired, 0);
  EXPECT_LT(expected_fired, static_cast<int64_t>(n));
  EXPECT_EQ(fault::fired_count(fault::kVariationSample), expected_fired);

  EXPECT_EQ(pattern(2), serial);
  EXPECT_EQ(fault::fired_count(fault::kVariationSample), expected_fired);
  EXPECT_EQ(pattern(8), serial);
  EXPECT_EQ(fault::fired_count(fault::kVariationSample), expected_fired);
  // The injected-fire counter is shard-buffered inside regions yet exact.
  EXPECT_EQ(obs::registry().counter("fault.variation.sample.injected").value(),
            3 * expected_fired);
}

// ------------------------------------------------- flow-level identity

// Hand-filled fit with representative magnitudes (as in test_faults):
// the determinism checks only need finite, positive closed-form numbers.
TechnologyFit synthetic_fit(const Technology& tech) {
  TechnologyFit fit;
  fit.node = tech.node;
  fit.vdd = tech.vdd;
  RepeaterEdgeFit e;
  e.a0 = 5e-12;
  e.a1 = 0.05;
  e.rho0 = 2e-3;
  e.rho1 = 1e6;
  e.b0 = 2e-12;
  e.b1 = 0.3;
  e.b2 = 5e-4;
  fit.inv_rise = fit.inv_fall = fit.buf_rise = fit.buf_fall = e;
  fit.gamma = 7e-10;
  fit.leakage.n0 = fit.leakage.p0 = 1e-9;
  fit.leakage.n1 = fit.leakage.p1 = 1e-2;
  fit.area0 = 1e-12;
  fit.area1 = 1e-6;
  return fit;
}

TEST_F(ExecFixture, MonteCarloYieldIsBitIdenticalAcrossThreadCounts) {
  const Technology& tech = technology(TechNode::N65);
  const ProposedModel model(tech, synthetic_fit(tech));
  LinkContext ctx;
  ctx.length = 2 * mm;
  LinkDesign design;
  design.num_repeaters = 3;

  const auto run = [&](int t) {
    exec::set_threads(t);
    return monte_carlo_link(model, ctx, design, 400, 2026);
  };
  const MonteCarloResult serial = run(1);
  for (int t : {2, 8}) {
    const MonteCarloResult mc = run(t);
    EXPECT_EQ(mc.delays, serial.delays) << "threads=" << t;
    EXPECT_EQ(mc.mean_delay, serial.mean_delay);
    EXPECT_EQ(mc.sigma_delay, serial.sigma_delay);
    EXPECT_EQ(mc.mean_power, serial.mean_power);
    EXPECT_EQ(mc.failed_samples, serial.failed_samples);
  }

  // Same contract with faults injected: which samples fail is a pure
  // function of the site seed and the sample index.
  const auto run_faulty = [&](int t) {
    exec::set_threads(t);
    fault::configure("variation.sample:0.25:13");
    return monte_carlo_link(model, ctx, design, 400, 2026);
  };
  const MonteCarloResult f1 = run_faulty(1);
  EXPECT_GT(f1.failed_samples, 0);
  for (int t : {2, 8}) {
    const MonteCarloResult ft = run_faulty(t);
    EXPECT_EQ(ft.delays, f1.delays) << "threads=" << t;
    EXPECT_EQ(ft.failed_samples, f1.failed_samples);
  }

  // Within-die flavor draws many values per sample; same guarantee.
  exec::set_threads(1);
  fault::clear();
  const MonteCarloResult w1 = monte_carlo_link_within_die(model, ctx, design, 200, 7);
  exec::set_threads(8);
  const MonteCarloResult w8 = monte_carlo_link_within_die(model, ctx, design, 200, 7);
  EXPECT_EQ(w8.delays, w1.delays);
  EXPECT_EQ(w8.sigma_delay, w1.sigma_delay);
}

TEST_F(ExecFixture, CharacterizationTablesAreBitIdenticalAcrossThreadCounts) {
  CharacterizationOptions opt;
  opt.slew_axis = {20 * ps, 100 * ps};
  opt.fanout_axis = {2.0, 8.0};
  const Technology& tech = technology(TechNode::N65);

  exec::set_threads(1);
  const RepeaterCell serial = characterize_cell(tech, CellKind::Inverter, 8, opt);
  exec::set_threads(8);
  const RepeaterCell threaded = characterize_cell(tech, CellKind::Inverter, 8, opt);

  EXPECT_EQ(threaded.input_cap, serial.input_cap);
  EXPECT_EQ(threaded.leakage_nmos, serial.leakage_nmos);
  EXPECT_EQ(threaded.area, serial.area);
  for (const auto table : {&RepeaterCell::rise, &RepeaterCell::fall}) {
    const TimingTable& a = serial.*table;
    const TimingTable& b = threaded.*table;
    ASSERT_EQ(b.delay.rows(), a.delay.rows());
    ASSERT_EQ(b.delay.cols(), a.delay.cols());
    for (size_t i = 0; i < a.delay.rows(); ++i)
      for (size_t j = 0; j < a.delay.cols(); ++j) {
        EXPECT_EQ(b.delay(i, j), a.delay(i, j)) << i << "," << j;
        EXPECT_EQ(b.out_slew(i, j), a.out_slew(i, j)) << i << "," << j;
      }
  }
}

TEST_F(ExecFixture, SynthesisTopologyIsIdenticalAcrossThreadCounts) {
  const SocSpec spec = mpeg4_spec();
  const BakogluModel model(technology(TechNode::N65));

  exec::set_threads(1);
  const NocSynthesisResult serial = synthesize_noc(spec, model);
  exec::set_threads(8);
  const NocSynthesisResult threaded = synthesize_noc(spec, model);

  EXPECT_EQ(threaded.merges_applied, serial.merges_applied);
  EXPECT_EQ(threaded.architecture.router_count(), serial.architecture.router_count());
  EXPECT_EQ(threaded.metrics.total_power(), serial.metrics.total_power());
  const auto& na = serial.architecture.nodes();
  const auto& nb = threaded.architecture.nodes();
  ASSERT_EQ(nb.size(), na.size());
  for (size_t i = 0; i < na.size(); ++i) {
    EXPECT_EQ(nb[i].x, na[i].x) << "node " << i;
    EXPECT_EQ(nb[i].y, na[i].y) << "node " << i;
  }
  const auto& ea = serial.architecture.edges();
  const auto& eb = threaded.architecture.edges();
  ASSERT_EQ(eb.size(), ea.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(eb[i].a, ea[i].a) << "edge " << i;
    EXPECT_EQ(eb[i].b, ea[i].b) << "edge " << i;
    EXPECT_EQ(eb[i].alive, ea[i].alive) << "edge " << i;
  }
}

}  // namespace
}  // namespace pim
