// Tests for the CLI argument parser and global observability flags
// (tools/cli_args), plus an end-to-end check that the pim binary's
// --profile flag emits valid metrics JSON.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "../tools/cli_args.hpp"
#include "api/pim_api.hpp"
#include "api/wire.hpp"
#include "cache/key.hpp"
#include "cache/store.hpp"
#include "exec/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/ledger.hpp"
#include "util/error.hpp"
#include "util/paths.hpp"
#include "util/version.hpp"

namespace pim::cli {
namespace {

Args make(std::vector<std::string> tokens) {
  static std::vector<std::string> storage;
  storage = std::move(tokens);
  static std::vector<char*> argv;
  argv.clear();
  argv.push_back(const_cast<char*>("pim"));
  for (auto& t : storage) argv.push_back(t.data());
  return Args(static_cast<int>(argv.size()), argv.data(), 1);
}

TEST(CliArgs, PositionalsAndFlags) {
  const Args args = make({"evaluate", "65nm", "--length", "5", "--golden"});
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positional(0), "evaluate");
  EXPECT_EQ(args.positional(1), "65nm");
  EXPECT_EQ(args.positional(9, "dflt"), "dflt");
  EXPECT_TRUE(args.has("length"));
  EXPECT_TRUE(args.has("golden"));
  EXPECT_FALSE(args.has("style"));
  EXPECT_DOUBLE_EQ(args.get_double("length", 0.0), 5.0);
  EXPECT_EQ(args.get("golden"), "");  // switch: no value
}

TEST(CliArgs, TypedGettersWithFallbacks) {
  const Args args = make({"--n", "7", "--x", "2.5"});
  EXPECT_EQ(args.get_long("n", 0), 7);
  EXPECT_EQ(args.get_long("missing", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_THROW(args.get_long("x", 0), Error);  // "2.5" is not an integer
}

TEST(CliArgs, SwitchFollowedByFlag) {
  const Args args = make({"--golden", "--length", "3"});
  EXPECT_TRUE(args.has("golden"));
  EXPECT_EQ(args.get("golden"), "");
  EXPECT_DOUBLE_EQ(args.get_double("length", 0.0), 3.0);
}

TEST(CliArgs, UnknownFlagCheck) {
  const Args args = make({"--length", "3", "--bogus"});
  EXPECT_THROW(args.check_known({"length"}), Error);
  EXPECT_NO_THROW(args.check_known({"length", "bogus"}));
}

TEST(CliArgs, BareDoubleDashRejected) {
  EXPECT_THROW(make({"--"}), Error);
}

TEST(CliArgs, GlobalFlagsPassUnknownCheck) {
  const Args args = make({"evaluate", "--length", "3", "--profile", "out.json",
                          "--trace", "out.trace.json", "--log-level", "debug"});
  EXPECT_THROW(args.check_known({"length"}), Error);
  EXPECT_NO_THROW(check_known_with_globals(args, {"length"}));
}

TEST(CliArgs, ApplyGlobalFlagsRejectsBadLogLevel) {
  EXPECT_THROW(apply_global_flags(make({"--log-level", "loud"})), Error);
  EXPECT_THROW(apply_global_flags(make({"--trace"})), Error);  // needs a path
}

TEST(CliArgs, ThreadsFlagPinsTheEngine) {
  exec::set_threads(0);
  apply_global_flags(make({"--threads", "3"}));
  EXPECT_EQ(exec::threads(), 3);
  exec::set_threads(0);
  EXPECT_THROW(apply_global_flags(make({"--threads", "0"})), Error);
  EXPECT_THROW(apply_global_flags(make({"--threads", "-2"})), Error);
  EXPECT_THROW(apply_global_flags(make({"--threads"})), Error);  // needs a value
  EXPECT_THROW(apply_global_flags(make({"--threads", "many"})), Error);
  const Args args = make({"yield", "--threads", "4"});
  EXPECT_NO_THROW(check_known_with_globals(args, {}));
  exec::set_threads(0);
}

TEST(CliArgs, ProfileFlagEnablesCollection) {
  obs::set_enabled(false);
  apply_global_flags(make({"--profile", "out.json"}));
  EXPECT_TRUE(obs::enabled());
  obs::set_enabled(false);
}

TEST(CliArgs, WriteReportsProducesParsableJsonFile) {
  obs::registry().reset();
  obs::set_enabled(true);
  obs::registry().counter("cli.test.count").add(3);
  const std::string path = ::testing::TempDir() + "pim_cli_profile.json";
  write_observability_reports(make({"--profile", path}));
  obs::set_enabled(false);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const obs::JsonValue root = obs::parse_json(buf.str());
  ASSERT_NE(root.find("schema"), nullptr);
  EXPECT_EQ(root.find("schema")->text, "pim.metrics.v1");
  const obs::JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("cli.test.count"), nullptr);
  EXPECT_DOUBLE_EQ(counters->find("cli.test.count")->number, 3.0);
  std::remove(path.c_str());
  obs::registry().reset();
}

// End-to-end: run the actual pim binary with --profile and check the
// emitted JSON carries the command's metrics. `techfile` is the cheapest
// subcommand (no characterization).
TEST(CliProfile, BinaryWritesValidMetricsJson) {
  const std::string out = ::testing::TempDir() + "pim_techfile_profile.json";
  const std::string cmd = std::string(PIM_CLI_PATH) + " techfile 45nm --profile " +
                          out + " --log-level off > /dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0);

  std::ifstream in(out);
  ASSERT_TRUE(in.good()) << "profile file not written: " << out;
  std::stringstream buf;
  buf << in.rdbuf();
  const obs::JsonValue root = obs::parse_json(buf.str());
  ASSERT_EQ(root.kind, obs::JsonValue::Kind::Object);
  ASSERT_NE(root.find("schema"), nullptr);
  EXPECT_EQ(root.find("schema")->text, "pim.metrics.v1");
  ASSERT_NE(root.find("counters"), nullptr);
  ASSERT_NE(root.find("timers"), nullptr);
  // The command's own span must be present with one recorded run.
  const obs::JsonValue* timer = root.find("timers")->find("cli.techfile");
  ASSERT_NE(timer, nullptr);
  ASSERT_NE(timer->find("count"), nullptr);
  EXPECT_DOUBLE_EQ(timer->find("count")->number, 1.0);
  EXPECT_GT(timer->find("total_ns")->number, 0.0);
  std::remove(out.c_str());
}

// Exit-code contract: 0 ok, 2 usage, 3 runtime failure, 4 internal.
// std::system returns a wait status, so unwrap it before comparing.
int run_cli(const std::string& tail) {
  const std::string cmd =
      std::string(PIM_CLI_PATH) + " " + tail + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(CliExitCodes, NoArgumentsIsUsageError) {
  EXPECT_EQ(run_cli(""), 2);
}

TEST(CliExitCodes, MissingRequiredFlagIsUsageError) {
  EXPECT_EQ(run_cli("evaluate 65nm"), 2);  // --length missing
}

TEST(CliExitCodes, ThreadsFlagAcceptedOnAnyCommand) {
  EXPECT_EQ(run_cli("techfile 45nm --threads 2"), 0);
  EXPECT_EQ(run_cli("techfile 45nm --threads 0"), 2);   // must be >= 1
  EXPECT_EQ(run_cli("techfile 45nm --threads junk"), 2);
}

TEST(CliExitCodes, UnknownFaultSiteIsUsageError) {
  EXPECT_EQ(run_cli("techfile 45nm --inject-fault bogus.site"), 2);
}

TEST(CliExitCodes, InjectedIoFaultIsRuntimeError) {
  const std::string deck = ::testing::TempDir() + "pim_cli_fault_deck.sp";
  EXPECT_EQ(run_cli("export 45nm --length 1 --deck " + deck +
                    " --inject-fault io.open:1"),
            3);
  std::remove(deck.c_str());
}

// One exit-code contract across both surfaces (docs/api.md): the number
// cli::exit_code_for maps an Error to is the same number the wire
// protocol embeds as "exit_code" in every error envelope.
TEST(CliExitCodes, ContractMatchesTheWireEnvelope) {
  using pim::Error;
  using pim::ErrorCode;
  const auto code = [](ErrorCode c) {
    return exit_code_for(Error("probe", c));
  };
  EXPECT_EQ(code(ErrorCode::bad_input), 2);
  EXPECT_EQ(code(ErrorCode::internal), 4);
  EXPECT_EQ(code(ErrorCode::deadline_exceeded), 5);
  EXPECT_EQ(code(ErrorCode::cancelled), 5);
  EXPECT_EQ(code(ErrorCode::io_parse), 3);
  EXPECT_EQ(code(ErrorCode::overloaded), 3);
  EXPECT_EQ(code(ErrorCode::singular_matrix), 3);
  EXPECT_EQ(code(ErrorCode::bad_input), api::wire::exit_code_for(ErrorCode::bad_input));
  EXPECT_EQ(code(ErrorCode::internal), api::wire::exit_code_for(ErrorCode::internal));
  EXPECT_EQ(code(ErrorCode::cancelled), api::wire::exit_code_for(ErrorCode::cancelled));
  EXPECT_EQ(code(ErrorCode::io_parse), api::wire::exit_code_for(ErrorCode::io_parse));
}

// `pim serve` exits with the worst exit_code any response carried, so
// scripted wire sessions compose with the same contract.
int run_cli_stdin(const std::string& input, const std::string& tail) {
  const std::string cmd = "printf '%s\\n' '" + input + "' | " +
                          std::string(PIM_CLI_PATH) + " " + tail +
                          " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(CliServeExitCodes, NoTransportSelectedIsUsageError) {
  EXPECT_EQ(run_cli("serve"), 2);
  EXPECT_EQ(run_cli("serve --local --socket /tmp/x.sock"), 2);  // exclusive
}

TEST(CliServeExitCodes, LocalSuccessIsZero) {
  EXPECT_EQ(run_cli_stdin("{\"op\":\"techfile\",\"tech\":\"45nm\"}",
                          "serve --local"),
            0);
}

TEST(CliServeExitCodes, MalformedLineIsUsageError) {
  EXPECT_EQ(run_cli_stdin("not json", "serve --local"), 2);
}

TEST(CliServeExitCodes, WorstResponseWins) {
  // A good line followed by a malformed one: the session exits 2.
  const std::string input =
      "{\"op\":\"techfile\",\"tech\":\"45nm\"}\\nnot json";
  EXPECT_EQ(run_cli_stdin(input, "serve --local"), 2);
}

TEST(CliServeExitCodes, ConnectFailureIsRuntimeError) {
  EXPECT_EQ(run_cli_stdin("{\"op\":\"techfile\",\"tech\":\"45nm\"}",
                          "serve --socket /tmp/pim-no-such-daemon.sock"),
            3);
}

TEST(CliServeExitCodes, DeadlineStopIsPartialExit) {
  // The deadline-expire fault site makes the first deadline poll fire, so
  // the stop is deterministic, not a wall-clock race. exit_code 5 rides
  // the error envelope back through the client.
  EXPECT_EQ(run_cli_stdin(
                "{\"op\":\"fit\",\"tech\":\"45nm\",\"deadline_ms\":60000}",
                "serve --local --cache off --inject-fault deadline-expire:1"),
            5);
}

// ---------------------------------------------------------------------------
// run ledger (docs/observability.md): one JSON-lines record per run
// ---------------------------------------------------------------------------

std::vector<obs::JsonValue> read_ledger(const std::string& path) {
  std::ifstream in(path);
  std::vector<obs::JsonValue> records;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) records.push_back(obs::parse_json(line));
  return records;
}

TEST(CliLedger, BinaryAppendsOneRecordPerRunIncludingFailures) {
  const std::string dir = ::testing::TempDir() + "pim_cli_ledger";
  std::filesystem::remove_all(dir);
  // A run that succeeds, then one that fails flag validation (exit 2):
  // both must land in the same ledger, in run order, with their codes.
  EXPECT_EQ(run_cli("techfile 45nm --out-dir " + dir + " --log-level off"), 0);
  EXPECT_EQ(run_cli("techfile 45nm --out-dir " + dir + " --bogus-flag"), 2);

  const auto records = read_ledger(dir + "/ledger.jsonl");
  ASSERT_EQ(records.size(), 2u);

  const obs::JsonValue& ok = records[0];
  EXPECT_EQ(ok.find("schema")->text, "pim.ledger.v1");
  EXPECT_EQ(ok.find("command")->text, "techfile");
  EXPECT_DOUBLE_EQ(ok.find("exit_code")->number, 0.0);
  EXPECT_GT(ok.find("wall_ns")->number, 0.0);
  EXPECT_GT(ok.find("peak_rss_bytes")->number, 0.0);
  ASSERT_NE(ok.find("version"), nullptr);
  EXPECT_EQ(ok.find("version")->find("pim")->text, kVersion);
  ASSERT_NE(ok.find("flags"), nullptr);
  EXPECT_EQ(ok.find("flags")->find("out-dir")->text, dir);
  // proc.* gauges ride along in every record, profile flag or not.
  const obs::JsonValue* gauges = ok.find("metrics")->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_GT(gauges->find("proc.peak_rss_bytes")->number, 0.0);
  EXPECT_GT(gauges->find("proc.wall_ns")->number, 0.0);

  EXPECT_DOUBLE_EQ(records[1].find("exit_code")->number, 2.0);
  std::filesystem::remove_all(dir);
}

TEST(CliLedger, OffSwitchSuppressesTheLedger) {
  const std::string dir = ::testing::TempDir() + "pim_cli_ledger_off";
  std::filesystem::remove_all(dir);
  EXPECT_EQ(run_cli("techfile 45nm --out-dir " + dir + " --ledger off"), 0);
  EXPECT_FALSE(std::filesystem::exists(dir + "/ledger.jsonl"));
  std::filesystem::remove_all(dir);
}

TEST(CliLedger, EnvVarSuppressesButExplicitFlagWins) {
  const std::string dir = ::testing::TempDir() + "pim_cli_ledger_env";
  std::filesystem::remove_all(dir);
  const std::string env = "PIM_LEDGER=off ";
  const std::string cmd = env + std::string(PIM_CLI_PATH) +
                          " techfile 45nm --out-dir " + dir +
                          " > /dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()) , 0);
  EXPECT_FALSE(std::filesystem::exists(dir + "/ledger.jsonl"));

  const std::string forced = env + std::string(PIM_CLI_PATH) +
                             " techfile 45nm --out-dir " + dir +
                             " --ledger ledger.jsonl > /dev/null 2>&1";
  ASSERT_EQ(std::system(forced.c_str()), 0);
  EXPECT_EQ(read_ledger(dir + "/ledger.jsonl").size(), 1u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// --flag=value binding and the declarative registry
// ---------------------------------------------------------------------------

TEST(CliArgs, EqualsFormBindsValues) {
  const Args args = make({"evaluate", "65nm", "--length=5", "--style=DS", "--golden"});
  EXPECT_EQ(args.positionals().size(), 2u);
  EXPECT_DOUBLE_EQ(args.get_double("length", 0.0), 5.0);
  EXPECT_EQ(args.get("style"), "DS");
  EXPECT_TRUE(args.has("golden"));
  // An explicit empty value is still a value, not a switch.
  EXPECT_EQ(make({"--style="}).get("style", "x"), "");
  EXPECT_THROW(make({"--=value"}), Error);  // nameless flag
}

TEST(CliRegistry, UsageListsEveryCommandAndGlobalFlag) {
  const std::string usage = usage_text();
  for (const CommandSpec& spec : command_registry())
    EXPECT_NE(usage.find(spec.name), std::string::npos) << spec.name;
  for (const FlagSpec& flag : global_flag_specs())
    EXPECT_NE(usage.find("--" + flag.name), std::string::npos) << flag.name;
  EXPECT_NE(usage.find("exit codes"), std::string::npos);
}

TEST(CliRegistry, HelpTextCoversEveryDeclaredFlag) {
  for (const CommandSpec& spec : command_registry()) {
    ASSERT_EQ(find_command(spec.name), &spec);
    const std::string help = help_text(spec);
    EXPECT_NE(help.find(spec.name), std::string::npos);
    for (const FlagSpec& flag : spec.flags)
      EXPECT_NE(help.find("--" + flag.name), std::string::npos)
          << spec.name << " is missing --" << flag.name;
  }
  EXPECT_EQ(find_command("frobnicate"), nullptr);
}

TEST(CliRegistry, CheckKnownForAcceptsDeclaredAndGlobalFlags) {
  const CommandSpec* spec = find_command("evaluate");
  ASSERT_NE(spec, nullptr);
  EXPECT_NO_THROW(check_known_for(
      make({"evaluate", "65nm", "--length", "5", "--threads", "2", "--cache", "off"}),
      *spec));
  EXPECT_THROW(check_known_for(make({"evaluate", "65nm", "--bogus"}), *spec), Error);
}

TEST(CliArgs, CacheFlagsPinModeAndDirectory) {
  cache::reset_mode();
  apply_global_flags(make({"--cache", "off"}));
  EXPECT_EQ(cache::mode(), cache::Mode::Off);
  apply_global_flags(make({"--cache=ro"}));
  EXPECT_EQ(cache::mode(), cache::Mode::ReadOnly);
  EXPECT_THROW(apply_global_flags(make({"--cache", "bogus"})), Error);
  EXPECT_THROW(apply_global_flags(make({"--cache"})), Error);  // needs a value
  cache::reset_mode();

  const std::string dir = ::testing::TempDir() + "pim_cli_cache_dir";
  apply_global_flags(make({"--cache-dir", dir}));
  EXPECT_EQ(cache::dir(), dir);
  EXPECT_THROW(apply_global_flags(make({"--cache-dir"})), Error);
  cache::set_dir("");
}

TEST(CliArgs, OutDirFlagConfiguresArtifactRoot) {
  set_out_dir("");
  const std::string dir = ::testing::TempDir() + "pim_cli_out_dir";
  apply_global_flags(make({"--out-dir", dir}));
  EXPECT_TRUE(out_dir_configured());
  EXPECT_EQ(out_dir(), dir);
  EXPECT_THROW(apply_global_flags(make({"--out-dir"})), Error);
  set_out_dir("");
}

// Relative --profile paths land under --out-dir when one is configured.
TEST(CliArgs, ReportsResolveUnderOutDir) {
  obs::registry().reset();
  const std::string dir = ::testing::TempDir() + "pim_cli_report_out";
  std::filesystem::remove_all(dir);
  apply_global_flags(make({"--out-dir", dir, "--profile", "nested_profile.json"}));
  obs::registry().counter("cli.outdir.count").add(1);
  write_observability_reports(make({"--profile", "nested_profile.json"}));
  obs::set_enabled(false);
  set_out_dir("");
  std::ifstream in(dir + "/nested_profile.json");
  EXPECT_TRUE(in.good());
  std::filesystem::remove_all(dir);
  obs::registry().reset();
}

TEST(CliExitCodes, HelpScreensExitZero) {
  EXPECT_EQ(run_cli("--help"), 0);
  EXPECT_EQ(run_cli("help"), 0);
  EXPECT_EQ(run_cli("evaluate --help"), 0);
}

TEST(CliExitCodes, UnknownCommandIsUsageError) {
  EXPECT_EQ(run_cli("frobnicate"), 2);
}

// ---------------------------------------------------------------------------
// pim cache: provenance-aware administration and invalidation
// ---------------------------------------------------------------------------

std::string run_cli_capture(const std::string& tail, int* exit_code = nullptr) {
  const std::string cmd = std::string(PIM_CLI_PATH) + " " + tail + " 2>/dev/null";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  std::string out;
  if (pipe != nullptr) {
    char buf[512];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0) out.append(buf, n);
    const int status = ::pclose(pipe);
    if (exit_code != nullptr)
      *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  } else if (exit_code != nullptr) {
    *exit_code = -1;
  }
  return out;
}

TEST(CliCache, ActionValidation) {
  EXPECT_EQ(run_cli("cache"), 2);           // missing action
  EXPECT_EQ(run_cli("cache frobnicate"), 2);
  EXPECT_EQ(run_cli("cache diff"), 2);      // diff needs a tech spec
  EXPECT_EQ(run_cli("cache invalidate"), 2);
}

TEST(CliCache, StatsDiffInvalidateFlowAgainstEditedTechfile) {
  const std::string dir = ::testing::TempDir() + "pim_cli_cache_flow";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string cache = dir + "/cache";
  const std::string tech = dir + "/edit.tech";
  const std::string common =
      " --cache-dir " + cache + " --out-dir " + dir + " --log-level off";

  // Materialize a tech file and warm the cache with a fit keyed on it.
  ASSERT_EQ(std::system((std::string(PIM_CLI_PATH) + " techfile 45nm > " + tech +
                         " 2>/dev/null")
                            .c_str()),
            0);
  ASSERT_EQ(run_cli("fit " + tech + common), 0);

  int rc = -1;
  std::string out = run_cli_capture("cache stats" + common, &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("fit"), std::string::npos);

  out = run_cli_capture("cache verify" + common, &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("scrubbed 0"), std::string::npos);

  // Unedited: the whole cache is reusable.
  out = run_cli_capture("cache diff " + tech + common, &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("0 dirty"), std::string::npos);

  // Edit the file, then diff: the fit's cone goes stale; invalidate
  // evicts it and leaves an empty cache behind.
  ASSERT_EQ(std::system(("sed -i '0,/vth /s/vth [0-9.]*/vth 0.399/' " + tech).c_str()),
            0);
  out = run_cli_capture("cache diff " + tech + common, &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(out.find("0 dirty"), std::string::npos);
  EXPECT_NE(out.find("dirty"), std::string::npos);

  out = run_cli_capture("cache invalidate " + tech + common, &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("evicted"), std::string::npos);

  out = run_cli_capture("cache stats" + common, &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("total 0 bytes"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(CliCache, PruneHonorsByteBudget) {
  const std::string dir = ::testing::TempDir() + "pim_cli_cache_prune";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string common = " --cache-dir " + dir + "/cache --out-dir " + dir +
                             " --log-level off";
  ASSERT_EQ(run_cli("fit 45nm" + common), 0);
  int rc = -1;
  const std::string out =
      run_cli_capture("cache prune --budget-bytes 0" + common, &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("pruned"), std::string::npos);
  EXPECT_NE(run_cli_capture("cache stats" + common, &rc).find("total 0 bytes"),
            std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(CliTechSpec, TechfilePathAcceptedWhereverATechNameIs) {
  const std::string dir = ::testing::TempDir() + "pim_cli_techspec";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string tech = dir + "/n45.tech";
  ASSERT_EQ(std::system((std::string(PIM_CLI_PATH) + " techfile 45nm > " + tech +
                         " 2>/dev/null")
                            .c_str()),
            0);
  // The dump of a file-loaded tech equals the builtin's dump: the two
  // spec forms resolve to identical descriptors (and share cache keys).
  int rc = -1;
  const std::string via_file = run_cli_capture("techfile " + tech, &rc);
  EXPECT_EQ(rc, 0);
  const std::string via_name = run_cli_capture("techfile 45nm", &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(via_file, via_name);
  EXPECT_EQ(run_cli("techfile " + dir + "/missing.tech"), 2);
  std::filesystem::remove_all(dir);
}

TEST(CliExitCodes, BadCacheModeIsUsageError) {
  EXPECT_EQ(run_cli("techfile 45nm --cache bogus"), 2);
  EXPECT_EQ(run_cli("techfile 45nm --cache=off"), 0);
}

TEST(CliExitCodes, UnknownCornerIsUsageError) {
  EXPECT_EQ(run_cli("evaluate 45nm --length 1 --corner bogus"), 2);
  EXPECT_EQ(run_cli("signoff 45nm --length 1 --corners nominal,bogus"), 2);
}

// ---------------------------------------------------------------------------
// --deadline-ms / PIM_DEADLINE_MS and the partial-result exit code (5)
// ---------------------------------------------------------------------------

TEST(CliArgs, DeadlineFlagResolvesWithEnvFallback) {
  ::unsetenv("PIM_DEADLINE_MS");
  EXPECT_EQ(resolved_deadline_ms(make({"techfile", "45nm"})), 0);
  EXPECT_EQ(resolved_deadline_ms(make({"--deadline-ms", "1500"})), 1500);
  EXPECT_THROW(apply_global_flags(make({"--deadline-ms", "-5"})), Error);
  EXPECT_THROW(apply_global_flags(make({"--deadline-ms"})), Error);

  ::setenv("PIM_DEADLINE_MS", "700", 1);
  EXPECT_EQ(resolved_deadline_ms(make({"techfile", "45nm"})), 700);
  // The explicit flag always beats the environment.
  EXPECT_EQ(resolved_deadline_ms(make({"--deadline-ms", "2"})), 2);
  ::setenv("PIM_DEADLINE_MS", "-1", 1);
  EXPECT_THROW(resolved_deadline_ms(make({"techfile", "45nm"})), Error);
  ::unsetenv("PIM_DEADLINE_MS");
}

TEST(CliExitCodes, DeadlineErrorsMapToExitFive) {
  EXPECT_EQ(exit_code_for(Error("late", ErrorCode::deadline_exceeded)),
            kExitPartial);
  EXPECT_EQ(exit_code_for(Error("stop", ErrorCode::cancelled)), kExitPartial);
  EXPECT_EQ(run_cli("techfile 45nm --deadline-ms 0"), 0);  // 0 = unlimited
  EXPECT_EQ(run_cli("techfile 45nm --deadline-ms -3"), 2);
  EXPECT_EQ(run_cli("techfile 45nm --deadline-ms soon"), 2);
}

TEST(CliExitCodes, ZeroProgressStopIsTypedExitFive) {
  // A charlib sweep stopped before its first item cannot be patched:
  // the run exits 5 through the typed-error path, not 3.
  EXPECT_EQ(run_cli("characterize 65nm --cache off"
                    " --inject-fault deadline-expire:1"),
            kExitPartial);
}

TEST(CliLedger, PartialRunStillPrintsAndLandsInLedger) {
  const std::string dir = ::testing::TempDir() + "pim_cli_ledger_partial";
  std::filesystem::remove_all(dir);
  const std::string out = dir + "/noc.txt";
  std::filesystem::create_directories(dir);
  // cancel-midchunk:1 trips the first stop poll in the merge loop: the
  // pre-merge topology is still reported, then the run exits 5.
  const std::string cmd = std::string(PIM_CLI_PATH) +
                          " noc dvopd 65nm --model bakoglu --out-dir " + dir +
                          " --inject-fault cancel-midchunk:1 --log-level off > " +
                          out + " 2>&1";
  const int status = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), kExitPartial);

  std::ifstream in(out);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("dvopd"), std::string::npos) << buf.str();
  EXPECT_NE(buf.str().find("links"), std::string::npos) << buf.str();

  const auto records = read_ledger(dir + "/ledger.jsonl");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].find("command")->text, "noc");
  EXPECT_DOUBLE_EQ(records[0].find("exit_code")->number,
                   static_cast<double>(kExitPartial));
  std::filesystem::remove_all(dir);
}

// SIGTERM mid-run trips the cooperative cancel token: the process still
// exits through the normal finish path, so the ledger record and the
// --profile report are flushed rather than lost.
TEST(CliSignals, SigtermMidRunFlushesLedgerAndProfile) {
  const std::string dir = ::testing::TempDir() + "pim_cli_sigterm";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string cmd =
      std::string("sh -c '") + PIM_CLI_PATH + " characterize 65nm --cache off" +
      " --out-dir " + dir + " --profile profile.json --lib " + dir +
      "/out.lib --log-level off > /dev/null 2>&1 & pid=$!; sleep 0.3;" +
      " kill -TERM $pid 2>/dev/null; wait $pid; echo $? > " + dir + "/rc'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);

  std::ifstream rc_in(dir + "/rc");
  int rc = -1;
  rc_in >> rc;
  EXPECT_EQ(rc, kExitPartial);

  const auto records = read_ledger(dir + "/ledger.jsonl");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].find("schema")->text, "pim.ledger.v1");
  EXPECT_EQ(records[0].find("command")->text, "characterize");
  EXPECT_DOUBLE_EQ(records[0].find("exit_code")->number,
                   static_cast<double>(kExitPartial));
  EXPECT_GT(records[0].find("wall_ns")->number, 0.0);

  std::ifstream in(dir + "/profile.json");
  ASSERT_TRUE(in.good()) << "profile not flushed on SIGTERM";
  std::stringstream buf;
  buf << in.rdbuf();
  const obs::JsonValue root = obs::parse_json(buf.str());
  ASSERT_EQ(root.kind, obs::JsonValue::Kind::Object);
  ASSERT_NE(root.find("schema"), nullptr);
  EXPECT_EQ(root.find("schema")->text, "pim.metrics.v1");
  ASSERT_NE(root.find("counters"), nullptr);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// --version
// ---------------------------------------------------------------------------

TEST(CliVersion, TextCarriesSemverAndFormatVersions) {
  const std::string text = version_text();
  EXPECT_NE(text.find(std::string("pim ") + kVersion), std::string::npos);
  EXPECT_NE(text.find("api-version " + std::to_string(api::kApiVersion)),
            std::string::npos);
  EXPECT_NE(text.find("cache-format " + std::to_string(cache::kFormatVersion)),
            std::string::npos);
  EXPECT_NE(text.find("compiler "), std::string::npos);
}

TEST(CliVersion, BinaryPrintsVersionAndExitsZero) {
  const std::string out = ::testing::TempDir() + "pim_version.txt";
  for (const char* invocation : {"--version", "version", "techfile 45nm --version"}) {
    const std::string cmd = std::string(PIM_CLI_PATH) + " " + invocation + " > " +
                            out + " 2>/dev/null";
    const int status = std::system(cmd.c_str());
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << invocation;
    std::ifstream in(out);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), version_text()) << invocation;
  }
  std::remove(out.c_str());
}

// ---------------------------------------------------------------------------
// pim::api facade round trips (the CLI is a thin printer over these)
// ---------------------------------------------------------------------------

TEST(ApiFacade, VersionMismatchIsBadInputNotMisread) {
  api::TechfileRequest req;
  req.api_version = 99;
  req.tech = "65nm";
  const auto result = api::run_techfile(req);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::bad_input);
  EXPECT_NE(std::string(result.error().what()).find("api_version"),
            std::string::npos);
}

TEST(ApiFacade, TechfileRoundTrip) {
  api::TechfileRequest req;
  req.tech = "45nm";
  const auto result = api::run_techfile(req);
  ASSERT_TRUE(result.ok()) << result.error().what();
  EXPECT_NE(result.value().text.find("45"), std::string::npos);
}

TEST(ApiFacade, ErrorsComeBackAsExpectedWithApiContext) {
  api::LinkEvalRequest req;
  req.link.tech = "65nm";
  req.link.length_mm = 5.0;
  req.link.style = "XX";  // checked before the expensive calibration
  auto bad_style = api::run_evaluate(req);
  ASSERT_FALSE(bad_style.ok());
  EXPECT_EQ(bad_style.error().code(), ErrorCode::bad_input);
  EXPECT_NE(std::string(bad_style.error().what()).find("pim::api::run_evaluate"),
            std::string::npos);

  req.link.style = "SS";
  req.link.length_mm = 0.0;
  const auto bad_length = api::run_evaluate(req);
  ASSERT_FALSE(bad_length.ok());
  EXPECT_EQ(bad_length.error().code(), ErrorCode::bad_input);

  api::TechfileRequest unknown_tech;
  unknown_tech.tech = "3nm";
  EXPECT_FALSE(api::run_techfile(unknown_tech).ok());
}

TEST(ApiFacade, SynthesisRejectsMeshShapeWithoutMesh) {
  api::SynthesisRequest req;
  req.spec = "dvopd";
  req.tech = "65nm";
  req.model = "bakoglu";  // closed-form: no characterization needed
  req.rows = 4;
  const auto result = api::run_synthesis(req);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::bad_input);
}

TEST(ApiFacade, SynthesisWithBaselineModelRoundTrip) {
  api::SynthesisRequest req;
  req.spec = "dvopd";
  req.tech = "65nm";
  req.model = "bakoglu";
  req.want_dot = true;
  const auto result = api::run_synthesis(req);
  ASSERT_TRUE(result.ok()) << result.error().what();
  EXPECT_EQ(result.value().spec_name, "dvopd");
  EXPECT_EQ(result.value().model_name, "bakoglu");
  EXPECT_GT(result.value().num_links, 0);
  EXPECT_GT(result.value().dynamic_power_mw, 0.0);
  EXPECT_NE(result.value().dot_text.find("digraph"), std::string::npos);
}

TEST(ApiFacade, SuccessiveRunsDoNotBleedMetrics) {
  // Every run_* entry point opens a fresh metric scope: counters left
  // over from a previous request in the same process must not leak into
  // the next request's reports or ledger snapshot.
  obs::set_enabled(true);
  obs::registry().counter("stale.request.count").add(99);
  obs::registry().timer("stale.request.time").record_ns(1234);

  api::TechfileRequest req;
  req.tech = "45nm";
  ASSERT_TRUE(api::run_techfile(req).ok());

  EXPECT_EQ(obs::registry().counter("stale.request.count").value(), 0);
  EXPECT_EQ(obs::registry().timer("stale.request.time").count(), 0);
  obs::set_enabled(false);
  obs::registry().reset();
}

}  // namespace
}  // namespace pim::cli
