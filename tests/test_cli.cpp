// Tests for the CLI argument parser (tools/cli_args).
#include <gtest/gtest.h>

#include "../tools/cli_args.hpp"
#include "util/error.hpp"

namespace pim::cli {
namespace {

Args make(std::vector<std::string> tokens) {
  static std::vector<std::string> storage;
  storage = std::move(tokens);
  static std::vector<char*> argv;
  argv.clear();
  argv.push_back(const_cast<char*>("pim"));
  for (auto& t : storage) argv.push_back(t.data());
  return Args(static_cast<int>(argv.size()), argv.data(), 1);
}

TEST(CliArgs, PositionalsAndFlags) {
  const Args args = make({"evaluate", "65nm", "--length", "5", "--golden"});
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positional(0), "evaluate");
  EXPECT_EQ(args.positional(1), "65nm");
  EXPECT_EQ(args.positional(9, "dflt"), "dflt");
  EXPECT_TRUE(args.has("length"));
  EXPECT_TRUE(args.has("golden"));
  EXPECT_FALSE(args.has("style"));
  EXPECT_DOUBLE_EQ(args.get_double("length", 0.0), 5.0);
  EXPECT_EQ(args.get("golden"), "");  // switch: no value
}

TEST(CliArgs, TypedGettersWithFallbacks) {
  const Args args = make({"--n", "7", "--x", "2.5"});
  EXPECT_EQ(args.get_long("n", 0), 7);
  EXPECT_EQ(args.get_long("missing", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_THROW(args.get_long("x", 0), Error);  // "2.5" is not an integer
}

TEST(CliArgs, SwitchFollowedByFlag) {
  const Args args = make({"--golden", "--length", "3"});
  EXPECT_TRUE(args.has("golden"));
  EXPECT_EQ(args.get("golden"), "");
  EXPECT_DOUBLE_EQ(args.get_double("length", 0.0), 3.0);
}

TEST(CliArgs, UnknownFlagCheck) {
  const Args args = make({"--length", "3", "--bogus"});
  EXPECT_THROW(args.check_known({"length"}), Error);
  EXPECT_NO_THROW(args.check_known({"length", "bogus"}));
}

TEST(CliArgs, BareDoubleDashRejected) {
  EXPECT_THROW(make({"--"}), Error);
}

}  // namespace
}  // namespace pim::cli
