// Tests for pim::cosi — specs and their text format, the built-in
// testcases, router cost scaling, link implementation service, the
// architecture container's merge mechanics, and end-to-end synthesis
// invariants. Uses the closed-form baseline models so no transistor-level
// characterization is required.
#include <gtest/gtest.h>

#include "cache/manifest.hpp"
#include "cosi/architecture.hpp"
#include "cosi/mesh.hpp"
#include "cosi/specfile.hpp"
#include "cosi/synthesis.hpp"
#include "cosi/testcases.hpp"
#include "models/baseline.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pim {
namespace {

using namespace pim::unit;

SocSpec tiny_spec() {
  SocSpec spec;
  spec.name = "tiny";
  spec.die_width = 4 * mm;
  spec.die_height = 4 * mm;
  spec.data_width = 32;
  spec.cores = {{"a", 0.5 * mm, 0.5 * mm, 0.5 * mm, 0.5 * mm},
                {"b", 3.5 * mm, 0.5 * mm, 0.5 * mm, 0.5 * mm},
                {"c", 2.0 * mm, 3.5 * mm, 0.5 * mm, 0.5 * mm}};
  spec.flows = {{0, 1, 2e9}, {1, 2, 1e9}, {0, 2, 0.5e9}};
  return spec;
}

TEST(Spec, ValidationCatchesErrors) {
  SocSpec s = tiny_spec();
  EXPECT_NO_THROW(s.validate());
  s.flows.push_back({0, 0, 1e9});
  EXPECT_THROW(s.validate(), Error);
  s = tiny_spec();
  s.flows.push_back({0, 9, 1e9});
  EXPECT_THROW(s.validate(), Error);
  s = tiny_spec();
  s.flows[0].bandwidth = -1.0;
  EXPECT_THROW(s.validate(), Error);
  s = tiny_spec();
  s.cores[0].x = 100 * mm;
  EXPECT_THROW(s.validate(), Error);
}

TEST(Spec, DistanceAndBandwidth) {
  const SocSpec s = tiny_spec();
  EXPECT_NEAR(s.core_distance(0, 1), 3.0 * mm, 1e-9);
  EXPECT_NEAR(s.core_distance(0, 2), 1.5 * mm + 3.0 * mm, 1e-9);
  EXPECT_NEAR(s.total_bandwidth(), 3.5e9, 1.0);
}

TEST(SpecFile, RoundTripPreservesSpec) {
  const SocSpec s = dvopd_spec();
  const SocSpec r = parse_soc_spec(write_soc_spec(s));
  EXPECT_EQ(r.name, s.name);
  EXPECT_EQ(r.cores.size(), s.cores.size());
  EXPECT_EQ(r.flows.size(), s.flows.size());
  EXPECT_EQ(r.data_width, s.data_width);
  EXPECT_DOUBLE_EQ(r.die_width, s.die_width);
  for (size_t i = 0; i < s.cores.size(); ++i) {
    EXPECT_EQ(r.cores[i].name, s.cores[i].name);
    EXPECT_DOUBLE_EQ(r.cores[i].x, s.cores[i].x);
  }
  for (size_t i = 0; i < s.flows.size(); ++i) {
    EXPECT_EQ(r.flows[i].src, s.flows[i].src);
    EXPECT_DOUBLE_EQ(r.flows[i].bandwidth, s.flows[i].bandwidth);
  }
}

TEST(SpecFile, RejectsMalformedInput) {
  EXPECT_THROW(parse_soc_spec(""), Error);
  EXPECT_THROW(parse_soc_spec("soc \"x\" {\n"), Error);                       // unterminated
  EXPECT_THROW(parse_soc_spec("soc \"x\" {\n bogus 1\n}\n"), Error);          // unknown key
  EXPECT_THROW(parse_soc_spec("soc \"x\" {\n die 1e-3 1e-3\n flow a b 1\n}\n"),
               Error);  // unknown core
  // Duplicate core name.
  std::string text = write_soc_spec(tiny_spec());
  const size_t pos = text.find("  core b");
  std::string dup = text;
  dup.insert(pos, text.substr(pos, text.find('\n', pos) - pos + 1));
  EXPECT_THROW(parse_soc_spec(dup), Error);
}

TEST(Testcases, Mpeg4AndMwdValid) {
  const SocSpec mpeg4 = mpeg4_spec();
  EXPECT_EQ(mpeg4.cores.size(), 12u);
  EXPECT_GE(mpeg4.flows.size(), 15u);
  // The known MPEG4 signature: SDRAM-centric star (the hub touches most
  // of the traffic).
  const int sdram = 5;
  double hub = 0.0;
  for (const Flow& f : mpeg4.flows)
    if (f.src == sdram || f.dst == sdram) hub += f.bandwidth;
  EXPECT_GT(hub, 0.6 * mpeg4.total_bandwidth());

  const SocSpec mwd = mwd_spec();
  EXPECT_EQ(mwd.cores.size(), 12u);
  EXPECT_GE(mwd.flows.size(), 12u);
  // Both synthesize cleanly.
  const BakogluModel model(technology(TechNode::N65));
  EXPECT_EQ(synthesize_noc(mpeg4, model).metrics.infeasible_links, 0);
  EXPECT_EQ(synthesize_noc(mwd, model).metrics.infeasible_links, 0);
}

TEST(Testcases, MatchPaperScale) {
  const SocSpec vproc = vproc_spec();
  EXPECT_EQ(vproc.cores.size(), 42u);
  EXPECT_EQ(vproc.data_width, 128);
  EXPECT_GT(vproc.flows.size(), 40u);
  const SocSpec dvopd = dvopd_spec();
  EXPECT_EQ(dvopd.cores.size(), 26u);
  EXPECT_EQ(dvopd.data_width, 128);
  EXPECT_EQ(dvopd.flows.size(), 2u * 16u + 3u);
}

TEST(RouterModelTest, ScalesAcrossNodes) {
  const RouterModel r90 = RouterModel::for_tech(technology(TechNode::N90), 128);
  const RouterModel r45 = RouterModel::for_tech(technology(TechNode::N45), 128);
  EXPECT_GT(r90.energy_per_bit, r45.energy_per_bit);  // smaller caps, lower vdd
  EXPECT_GT(r90.area_per_port, r45.area_per_port);
  EXPECT_GT(r45.energy_per_bit, 0.0);
  // Energy magnitude sanity: single-digit fJ/bit.
  EXPECT_LT(r90.energy_per_bit, 100e-15);
  EXPECT_GT(r90.energy_per_bit, 0.1e-15);
}

TEST(LinkImplementerTest, MemoizesAndBoundsLength) {
  const BakogluModel model(technology(TechNode::N45));
  LinkContext base;
  base.input_slew = 100 * ps;
  base.frequency = 3 * GHz;
  LinkImplementer impl(model, base, 0.9 / (3 * GHz));
  const ImplementedLink& a = impl.implement(1.0 * mm);
  const ImplementedLink& b = impl.implement(1.0 * mm + 2 * um);  // same quantum
  EXPECT_EQ(&a, &b);
  const double max_len = impl.max_feasible_length();
  EXPECT_GT(max_len, 0.5 * mm);
  EXPECT_TRUE(impl.implement(0.8 * max_len).feasible);
  EXPECT_FALSE(impl.implement(2.5 * max_len).feasible);
}

TEST(LinkImplementerTest, RecordsProvenanceOfCachedSearches) {
  const BakogluModel model(technology(TechNode::N45));
  LinkContext base;
  base.input_slew = 100 * unit::ps;
  base.frequency = 3 * unit::GHz;
  LinkImplementer impl(model, base, 0.9 / (3 * unit::GHz));
  cache::Tracked scope;
  const ImplementedLink& a = impl.implement(1.0 * unit::mm);
  // The fresh search records which buffering artifacts it consumed, and
  // replays them into the enclosing provenance scope.
  ASSERT_FALSE(a.provenance.empty());
  EXPECT_EQ(a.provenance[0].kind, "buffering");
  ASSERT_EQ(scope.upstream_keys().size(), a.provenance.size());
  EXPECT_EQ(scope.upstream_keys()[0].hex, a.provenance[0].hex);
  {
    // A memo hit replays the SAME provenance — reuse and fresh-search
    // paths feed the invalidation graph identically.
    cache::Tracked rescope;
    const ImplementedLink& b = impl.implement(1.0 * unit::mm);
    EXPECT_EQ(&a, &b);
    ASSERT_EQ(rescope.upstream_keys().size(), a.provenance.size());
    EXPECT_EQ(rescope.upstream_keys()[0].hex, a.provenance[0].hex);
  }
}

TEST(LinkImplementerTest, LongerBudgetAllowsLongerWires) {
  const BakogluModel model(technology(TechNode::N45));
  LinkContext base;
  LinkImplementer tight(model, base, 150 * ps);
  LinkImplementer loose(model, base, 600 * ps);
  EXPECT_GT(loose.max_feasible_length(), tight.max_feasible_length());
}

TEST(Architecture, EdgeAllocationSpillsOverCapacity) {
  const SocSpec spec = tiny_spec();
  NocArchitecture arch(spec);
  const double cap = 3e9;
  const int e1 = arch.allocate_edge(0, 1, 2e9, cap);
  const int e2 = arch.allocate_edge(0, 1, 0.5e9, cap);  // fits -> same edge
  EXPECT_EQ(e1, e2);
  const int e3 = arch.allocate_edge(0, 1, 2e9, cap);  // spills -> parallel edge
  EXPECT_NE(e1, e3);
  EXPECT_EQ(arch.edges().size(), 2u);
  EXPECT_THROW(arch.allocate_edge(1, 1, 1e9, cap), Error);
}

TEST(Architecture, RedirectMergesParallelsAndDropsLoops) {
  const SocSpec spec = tiny_spec();
  NocArchitecture arch(spec);
  const int r1 = arch.add_router(1 * mm, 1 * mm);
  const int r2 = arch.add_router(1.2 * mm, 1 * mm);
  const double cap = 1e12;
  const int e_a = arch.allocate_edge(0, r1, 1e9, cap);
  const int e_b = arch.allocate_edge(0, r2, 1e9, cap);
  const int e_mid = arch.allocate_edge(r1, r2, 1e9, cap);
  arch.append_to_path(0, e_a);
  arch.append_to_path(1, e_b);
  arch.append_to_path(2, e_mid);

  arch.redirect_node(r2, r1, cap);
  // e_b now runs 0 -> r1, parallel with e_a: combined. e_mid is a loop: dead.
  int live = 0;
  for (const NocEdge& e : arch.edges())
    if (e.alive) ++live;
  EXPECT_EQ(live, 1);
  EXPECT_EQ(arch.flow_paths()[0], arch.flow_paths()[1]);
  EXPECT_TRUE(arch.flow_paths()[2].empty());  // loop edge vanished
  EXPECT_NEAR(arch.edges()[static_cast<size_t>(e_a)].bandwidth, 2e9, 1.0);

  arch.compact();
  EXPECT_EQ(arch.edges().size(), 1u);
  EXPECT_EQ(arch.flow_paths()[0].front(), 0);
}

TEST(Architecture, PortCountsDistinctNeighbors) {
  const SocSpec spec = tiny_spec();
  NocArchitecture arch(spec);
  const int r = arch.add_router(2 * mm, 2 * mm);
  arch.allocate_edge(0, r, 1e9, 1e12);
  arch.allocate_edge(r, 1, 1e9, 1e12);
  arch.allocate_edge(1, r, 1e9, 1e12);  // same neighbor, opposite direction
  EXPECT_EQ(arch.port_count(r), 2);
  EXPECT_NEAR(arch.node_traffic(r), 3e9, 1.0);
}

// ------------------------------------------------------------ synthesis

TEST(Synthesis, DvopdAllFlowsRoutedAndFeasible) {
  const SocSpec spec = dvopd_spec();
  const BakogluModel model(technology(TechNode::N65));
  const NocSynthesisResult r = synthesize_noc(spec, model);
  for (const auto& path : r.architecture.flow_paths()) EXPECT_FALSE(path.empty());
  EXPECT_EQ(r.metrics.infeasible_links, 0);
  EXPECT_GT(r.metrics.total_power(), 0.0);
  EXPECT_GT(r.metrics.total_area(), 0.0);
  EXPECT_GE(r.metrics.avg_hops, 1.0);
  EXPECT_LE(r.metrics.worst_link_delay, r.delay_budget);
  // Self-audit must be clean.
  const AuditResult audit =
      audit_links(r.architecture, model, r.base_context, r.delay_budget);
  EXPECT_EQ(audit.violations, 0);
}

TEST(Synthesis, FlowPathsConnectEndpoints) {
  const SocSpec spec = vproc_spec();
  const BakogluModel model(technology(TechNode::N45));
  const NocSynthesisResult r = synthesize_noc(spec, model);
  const NocArchitecture& arch = r.architecture;
  for (size_t f = 0; f < spec.flows.size(); ++f) {
    const auto& path = arch.flow_paths()[f];
    ASSERT_FALSE(path.empty());
    // Path edges chain from src to dst.
    int at = arch.core_node(spec.flows[f].src);
    for (int e : path) {
      ASSERT_EQ(arch.edges()[static_cast<size_t>(e)].a, at);
      at = arch.edges()[static_cast<size_t>(e)].b;
    }
    EXPECT_EQ(at, arch.core_node(spec.flows[f].dst));
  }
}

TEST(Synthesis, FasterClockNeedsRelayRouters) {
  // At the 45 nm clock (3 GHz) the VPROC die spans several hop budgets
  // under a model that sees the full wire delay (Pamunuwa includes
  // coupling): relay routers must appear and multi-hop paths with them.
  // (Under the optimistic Bakoglu model they may NOT appear — that is
  // the paper's Table III implementability point, exercised in the
  // bench.)
  const SocSpec spec = vproc_spec();
  const PamunuwaModel model(technology(TechNode::N45));
  const NocSynthesisResult r = synthesize_noc(spec, model);
  EXPECT_GT(r.architecture.router_count(), 0);
  EXPECT_GT(r.metrics.max_hops, 1);
}

TEST(Synthesis, CapacityNeverExceeded) {
  const SocSpec spec = dvopd_spec();
  const BakogluModel model(technology(TechNode::N65));
  const NocSynthesisResult r = synthesize_noc(spec, model);
  const double capacity = 0.75 * spec.data_width * r.clock_frequency;
  for (const NocEdge& e : r.architecture.edges()) {
    if (!e.alive) continue;
    EXPECT_LE(e.bandwidth, capacity * (1.0 + 1e-9));
  }
}

// Property: random (but valid) specs synthesize to consistent networks.
class SynthesisFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SynthesisFuzz, RandomSpecInvariantsHold) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  SocSpec spec;
  spec.name = "fuzz";
  spec.die_width = 8 * mm;
  spec.die_height = 6 * mm;
  spec.data_width = 64;
  const int n_cores = 6 + static_cast<int>(rng.next_below(10));
  for (int i = 0; i < n_cores; ++i) {
    Core c;
    c.name = "c" + std::to_string(i);
    c.x = rng.uniform(0.2, 7.8) * mm;
    c.y = rng.uniform(0.2, 5.8) * mm;
    c.width = 0.5 * mm;
    c.height = 0.5 * mm;
    spec.cores.push_back(c);
  }
  const int n_flows = 8 + static_cast<int>(rng.next_below(12));
  for (int i = 0; i < n_flows; ++i) {
    const int src = static_cast<int>(rng.next_below(n_cores));
    int dst = static_cast<int>(rng.next_below(n_cores));
    if (dst == src) dst = (dst + 1) % n_cores;
    spec.flows.push_back({src, dst, rng.uniform(0.1, 4.0) * 1e9});
  }
  spec.validate();

  const PamunuwaModel model(technology(TechNode::N45));
  const NocSynthesisResult r = synthesize_noc(spec, model);
  const NocArchitecture& arch = r.architecture;

  // Every flow routed along a connected path; capacity respected.
  const double capacity = 0.75 * spec.data_width * r.clock_frequency;
  for (size_t f = 0; f < spec.flows.size(); ++f) {
    const auto& path = arch.flow_paths()[f];
    ASSERT_FALSE(path.empty());
    int at = arch.core_node(spec.flows[f].src);
    for (int e : path) {
      ASSERT_EQ(arch.edges()[static_cast<size_t>(e)].a, at);
      at = arch.edges()[static_cast<size_t>(e)].b;
    }
    EXPECT_EQ(at, arch.core_node(spec.flows[f].dst));
  }
  for (const NocEdge& e : arch.edges()) {
    if (!e.alive) continue;
    EXPECT_LE(e.bandwidth, capacity * (1.0 + 1e-9));
    EXPECT_TRUE(e.impl.feasible);
  }
  EXPECT_EQ(r.metrics.infeasible_links, 0);
  EXPECT_LE(r.metrics.worst_link_delay, r.delay_budget);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisFuzz, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Synthesis, LayerExplorationStaysFeasible) {
  const SocSpec spec = dvopd_spec();
  const PamunuwaModel model(technology(TechNode::N45));
  NocSynthesisOptions opt;
  opt.explore_layers = true;
  const NocSynthesisResult r = synthesize_noc(spec, model, opt);
  EXPECT_EQ(r.metrics.infeasible_links, 0);
  // The audit against the synthesis model itself must be clean even with
  // mixed layers (the audit re-times each link on ITS chosen layer).
  const AuditResult audit =
      audit_links(r.architecture, model, r.base_context, r.delay_budget);
  EXPECT_EQ(audit.violations, 0);
}

// ----------------------------------------------------------------- mesh

TEST(Mesh, PathsConnectAndStayFeasible) {
  const SocSpec spec = dvopd_spec();
  const PamunuwaModel model(technology(TechNode::N65));
  const NocSynthesisResult r = build_mesh_noc(spec, model);
  const NocArchitecture& arch = r.architecture;
  EXPECT_GT(arch.router_count(), 3);
  EXPECT_EQ(r.metrics.infeasible_links, 0);
  for (size_t f = 0; f < spec.flows.size(); ++f) {
    const auto& path = arch.flow_paths()[f];
    ASSERT_FALSE(path.empty());
    int at = arch.core_node(spec.flows[f].src);
    for (int e : path) {
      ASSERT_EQ(arch.edges()[static_cast<size_t>(e)].a, at);
      at = arch.edges()[static_cast<size_t>(e)].b;
    }
    EXPECT_EQ(at, arch.core_node(spec.flows[f].dst));
    // XY routing: at least core->router->...->router->core.
    EXPECT_GE(path.size(), 2u);
  }
}

TEST(Mesh, ExplicitShapeRespected) {
  const SocSpec spec = dvopd_spec();
  const PamunuwaModel model(technology(TechNode::N65));
  MeshOptions shape;
  shape.rows = 2;
  shape.cols = 5;
  const NocSynthesisResult r = build_mesh_noc(spec, model, {}, shape);
  EXPECT_EQ(r.architecture.router_count(), 10);
}

TEST(Mesh, MoreHopsThanSynthesizedPointToPoint) {
  // On a small design whose flows are all short, synthesis stays
  // point-to-point (1 hop) while the mesh forces router traversals.
  const SocSpec spec = dvopd_spec();
  const PamunuwaModel model(technology(TechNode::N65));
  const NocSynthesisResult custom = synthesize_noc(spec, model);
  const NocSynthesisResult mesh = build_mesh_noc(spec, model);
  EXPECT_GT(mesh.metrics.avg_hops, custom.metrics.avg_hops);
  EXPECT_GT(mesh.metrics.total_power(), custom.metrics.total_power());
}

TEST(Synthesis, DotExportListsTopology) {
  const SocSpec spec = tiny_spec();
  const BakogluModel model(technology(TechNode::N90));
  const NocSynthesisResult r = synthesize_noc(spec, model);
  const std::string dot = to_dot(r.architecture);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"a\""), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace pim
