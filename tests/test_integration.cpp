// Cross-module integration tests: the full characterize -> fit ->
// calibrate -> model -> optimize -> sign-off flow, and consistency of
// every serialization format with the computation that consumes it.
// Axes are trimmed so the whole binary stays fast.
#include <gtest/gtest.h>

#include "buffering/optimize.hpp"
#include "charlib/coeffs_io.hpp"
#include "liberty/libertyfile.hpp"
#include "models/proposed.hpp"
#include "sta/calibrated.hpp"
#include "sta/signoff.hpp"
#include "tech/techfile.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pim {
namespace {

using namespace pim::unit;

CharacterizationOptions trimmed_char() {
  CharacterizationOptions opt;
  opt.drives = {2, 8, 32};
  opt.slew_axis = {30e-12, 120e-12, 300e-12};
  opt.fanout_axis = {2.0, 8.0, 20.0};
  opt.buffers = false;
  return opt;
}

CompositionOptions trimmed_comp() {
  CompositionOptions opt;
  opt.drives = {8, 32};
  opt.segment_lengths = {0.5e-3, 1.5e-3};
  opt.input_slews = {50e-12, 300e-12};
  opt.chain_lengths = {1, 3};
  return opt;
}

// One shared 90 nm flow for the whole binary (different node than the
// other fixtures, so the 90 nm path gets end-to-end coverage too).
class FlowFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fit_ = new TechnologyFit(
        calibrated_fit(TechNode::N90, "", trimmed_char(), trimmed_comp()));
    model_ = new ProposedModel(technology(TechNode::N90), *fit_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete fit_;
    model_ = nullptr;
    fit_ = nullptr;
  }
  static TechnologyFit* fit_;
  static ProposedModel* model_;
};

TechnologyFit* FlowFixture::fit_ = nullptr;
ProposedModel* FlowFixture::model_ = nullptr;

TEST_F(FlowFixture, OptimizedLinkMeetsSignoffWithinTolerance) {
  const Technology& tech = technology(TechNode::N90);
  LinkContext ctx;
  ctx.length = 4 * mm;
  ctx.input_slew = 150 * ps;

  BufferingOptions bopt;
  bopt.weight = 0.7;
  bopt.kinds = {CellKind::Inverter};
  bopt.drives = {4, 8, 12, 16, 20};
  const BufferingResult best = optimize_buffering(*model_, ctx, bopt);
  ASSERT_TRUE(best.feasible);

  const SignoffResult golden = signoff_link(tech, ctx, best.design);
  EXPECT_NEAR(best.estimate.delay, golden.delay, 0.22 * golden.delay);
}

TEST_F(FlowFixture, CoefficientFileReproducesModelExactly) {
  const TechnologyFit reloaded = parse_fit(write_fit(*fit_));
  const ProposedModel twin(technology(TechNode::N90), reloaded);
  LinkContext ctx;
  ctx.length = 6 * mm;
  LinkDesign d;
  d.drive = 16;
  d.num_repeaters = 5;
  const LinkEstimate a = model_->evaluate(ctx, d);
  const LinkEstimate b = twin.evaluate(ctx, d);
  EXPECT_DOUBLE_EQ(a.delay, b.delay);
  EXPECT_DOUBLE_EQ(a.dynamic_power, b.dynamic_power);
  EXPECT_DOUBLE_EQ(a.leakage_power, b.leakage_power);
  EXPECT_DOUBLE_EQ(a.repeater_area, b.repeater_area);
}

TEST(IntegrationFormats, TechfileRoundTripPreservesCharacterization) {
  // Characterizing from a parsed tech file must give exactly the same
  // cell as the built-in descriptor: the text format carries everything
  // the simulation consumes.
  const Technology& original = technology(TechNode::N45);
  const Technology reparsed = parse_techfile(write_techfile(original));
  CharacterizationOptions opt;
  opt.slew_axis = {50e-12, 200e-12};
  opt.fanout_axis = {2.0, 10.0};
  const RepeaterCell a = characterize_cell(original, CellKind::Inverter, 8, opt);
  const RepeaterCell b = characterize_cell(reparsed, CellKind::Inverter, 8, opt);
  // Last-ulp differences can creep in through the decimal round trip of
  // derived quantities; anything beyond that is a lost field.
  EXPECT_NEAR(a.input_cap, b.input_cap, 1e-9 * a.input_cap);
  EXPECT_NEAR(a.leakage_nmos, b.leakage_nmos, 1e-9 * a.leakage_nmos);
  for (size_t i = 0; i < a.fall.slew_axis.size(); ++i)
    for (size_t j = 0; j < a.fall.load_axis.size(); ++j)
      EXPECT_NEAR(a.fall.delay(i, j), b.fall.delay(i, j), 1e-9 * a.fall.delay(i, j));
}

TEST(IntegrationFormats, LibertyRoundTripPreservesTableEvaluation) {
  const Technology& tech = technology(TechNode::N32);
  CharacterizationOptions opt;
  opt.slew_axis = {50e-12, 200e-12};
  opt.fanout_axis = {2.0, 10.0};
  opt.drives = {4, 16};
  opt.buffers = false;
  const CellLibrary lib = characterize_library(tech, opt);
  const CellLibrary reparsed = parse_liberty(write_liberty(lib));
  const RepeaterCell& a = lib.cell("INVD16");
  const RepeaterCell& b = reparsed.cell("INVD16");
  // Interpolated evaluation anywhere on the grid must agree.
  for (double slew : {60e-12, 150e-12}) {
    for (double load_f : {3.0, 7.5}) {
      const double load = load_f * a.input_cap;
      EXPECT_DOUBLE_EQ(a.worst_delay(slew, load), b.worst_delay(slew, load));
      EXPECT_DOUBLE_EQ(a.rise.eval_out_slew(slew, load), b.rise.eval_out_slew(slew, load));
    }
  }
}

TEST(IntegrationSmallNodes, SixteenNanometerFlowWorks) {
  // The smallest node exercises the extreme end of every physical model
  // (thinnest barrier, strongest scattering, lowest vdd).
  const Technology& tech = technology(TechNode::N16);
  CharacterizationOptions copt = trimmed_char();
  CompositionOptions comp = trimmed_comp();
  const TechnologyFit fit = calibrate_composition(
      tech, fit_technology(tech, characterize_library(tech, copt)), comp);
  const ProposedModel model(tech, fit);
  LinkContext ctx;
  ctx.length = 2 * mm;
  LinkDesign d;
  d.drive = 16;
  d.num_repeaters = 4;
  const double model_delay = model.evaluate(ctx, d).delay;
  const double golden = signoff_link(tech, ctx, d).delay;
  EXPECT_NEAR(model_delay, golden, 0.25 * golden);
  EXPECT_GT(fit.leakage.n1, 0.0);
}

}  // namespace
}  // namespace pim
